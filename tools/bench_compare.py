#!/usr/bin/env python3
"""Compare a BENCH_qpricer.json run against a checked-in baseline.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold=PCT] [--metric=M]
  bench_compare.py --self-test

Exits non-zero when any scenario regresses by more than the threshold
(default 25%) on the compared metric (default p50_ns), or when a baseline
scenario is missing from the current run. New scenarios (present only in
the current run) are reported but do not fail the comparison — they have
no baseline yet. `--self-test` injects a synthetic 2x slowdown and checks
that the comparison catches it (also wired up as a ctest).
"""

import argparse
import copy
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        report = json.load(f)
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError(f"{path}: no 'scenarios' object")
    return report, scenarios


def compare(baseline, current, threshold_pct, metric):
    """Returns (rows, failures); rows power the delta table."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base_value = baseline[name].get(metric)
        if name not in current:
            failures.append(f"{name}: missing from current run")
            rows.append((name, base_value, None, None, "MISSING"))
            continue
        cur_value = current[name].get(metric)
        if not base_value:
            rows.append((name, base_value, cur_value, None, "no-baseline"))
            continue
        delta_pct = 100.0 * (cur_value - base_value) / base_value
        status = "ok"
        if delta_pct > threshold_pct:
            status = "REGRESSED"
            failures.append(
                f"{name}: {metric} {base_value} -> {cur_value} "
                f"(+{delta_pct:.1f}% > {threshold_pct:.0f}%)"
            )
        rows.append((name, base_value, cur_value, delta_pct, status))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name].get(metric), None, "new"))
    return rows, failures


def print_table(rows, metric):
    print(f"{'scenario':<28} {'base ' + metric:>16} {'current':>16} "
          f"{'delta':>9}  status")
    for name, base_value, cur_value, delta_pct, status in rows:
        base_text = str(base_value) if base_value is not None else "-"
        cur_text = str(cur_value) if cur_value is not None else "-"
        delta_text = f"{delta_pct:+.1f}%" if delta_pct is not None else "-"
        print(f"{name:<28} {base_text:>16} {cur_text:>16} {delta_text:>9}  "
              f"{status}")


def self_test():
    baseline = {
        "steady": {"p50_ns": 1000, "p95_ns": 1500},
        "slowed": {"p50_ns": 2000, "p95_ns": 2500},
        "gone": {"p50_ns": 3000, "p95_ns": 3500},
    }
    # Injected 2x slowdown on one scenario, one missing scenario.
    current = copy.deepcopy(baseline)
    current["slowed"]["p50_ns"] = 4000
    del current["gone"]

    rows, failures = compare(baseline, current, 25.0, "p50_ns")
    print_table(rows, "p50_ns")
    assert any("slowed" in f for f in failures), "2x slowdown not flagged"
    assert any("gone" in f for f in failures), "missing scenario not flagged"
    assert len(failures) == 2, f"unexpected failures: {failures}"

    # Within-threshold noise must pass.
    noisy = copy.deepcopy(baseline)
    noisy["slowed"]["p50_ns"] = 2400  # +20%
    _, noise_failures = compare(baseline, noisy, 25.0, "p50_ns")
    assert not noise_failures, f"noise flagged: {noise_failures}"

    print("self-test: ok (2x slowdown and missing scenario both flagged)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_qpricer.json runs")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed regression, percent (default 25)")
    parser.add_argument("--metric", default="p50_ns",
                        help="scenario field to compare (default p50_ns)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify an injected 2x slowdown fails the "
                             "comparison")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required (or --self-test)")

    _, baseline = load_scenarios(args.baseline)
    _, current = load_scenarios(args.current)
    rows, failures = compare(baseline, current, args.threshold, args.metric)
    print_table(rows, args.metric)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) over "
              f"{args.threshold:.0f}% on {args.metric}:")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"\nok: no scenario regressed over {args.threshold:.0f}% on "
          f"{args.metric}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
