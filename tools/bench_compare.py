#!/usr/bin/env python3
"""Compare a BENCH_qpricer.json run against a checked-in baseline.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold=PCT]
                   [--p95-threshold=PCT] [--metric=M] [--filter=SUBSTR]
  bench_compare.py --self-test

Exits non-zero when any scenario regresses by more than the threshold on
the primary metric (default p50_ns, 25%), by more than the p95 threshold
on p95_ns (default 60% — an unbounded tail is exactly what the parallel
solvers could grow), by more than the p99 threshold on p99_ns (default
150%), or when a baseline scenario is missing from the current run.

Tail gates require sample support. A percentile q needs at least
100/(100-q) samples before it is a percentile at all — below that the
nearest-rank rank lands on the maximum, so "p99 regressed" just means
"the single slowest iteration moved", which is noise, not a tail (a
40-iteration run's recorded p99_ns literally equals its max_ns). Each
scenario's recorded `iterations` drives this: p95_ns is gated only when
both sides have >= 20 iterations, p99_ns only at >= 100; under-sampled
rows are shown as "under-sampled" and never fail. Rows with no
`iterations` field (older baselines) are gated as before. The blanket
quick-run exemption (the report's own "quick" flag) still drops every
tail gate: with 3-10 iterations even p95 is just the slowest sample.

New scenarios (present only in the current run) are reported but do not
fail the comparison — they have no baseline yet. `--filter=SUBSTR`
restricts the comparison to scenarios whose name contains SUBSTR, on
both sides — that is how a partial run (e.g. the server-e2e job's
`serve_`-only bench) is gated without the full suite's rows counting as
missing. `--self-test` injects a synthetic 2x slowdown, a p95-only tail
regression, a missing scenario, and an under-sampled p99 spike, and
checks that the comparison catches the first three, exempts the spike
until the sample count supports a p99, and that a quick run's tail is
exempt (also wired up as a ctest).
"""

import argparse
import copy
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        report = json.load(f)
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError(f"{path}: no 'scenarios' object")
    return report, scenarios


def filter_scenarios(scenarios, substring):
    """Scenario-name substring filter, applied to both sides so a partial
    current run is never charged for rows it was not asked to produce."""
    return {name: value for name, value in scenarios.items()
            if substring in name}


def supports_percentile(scenario, min_iterations):
    """True when the scenario's recorded iteration count can express the
    percentile (or predates the iterations field and can't be checked)."""
    iterations = scenario.get("iterations")
    return iterations is None or iterations >= min_iterations


def compare(baseline, current, threshold_pct, metric, min_iterations=0):
    """Returns (rows, failures); rows power the delta table. Scenarios
    where either side records fewer than `min_iterations` iterations are
    shown but never gated — their `metric` is not a real percentile."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base_value = baseline[name].get(metric)
        if name not in current:
            failures.append(f"{name}: missing from current run")
            rows.append((name, base_value, None, None, "MISSING"))
            continue
        cur_value = current[name].get(metric)
        if not base_value:
            rows.append((name, base_value, cur_value, None, "no-baseline"))
            continue
        if not (supports_percentile(baseline[name], min_iterations)
                and supports_percentile(current[name], min_iterations)):
            rows.append((name, base_value, cur_value, None,
                         f"under-sampled (<{min_iterations} iters)"))
            continue
        delta_pct = 100.0 * (cur_value - base_value) / base_value
        status = "ok"
        if delta_pct > threshold_pct:
            status = "REGRESSED"
            failures.append(
                f"{name}: {metric} {base_value} -> {cur_value} "
                f"(+{delta_pct:.1f}% > {threshold_pct:.0f}%)"
            )
        rows.append((name, base_value, cur_value, delta_pct, status))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name].get(metric), None, "new"))
    return rows, failures


def print_table(rows, metric):
    print(f"{'scenario':<28} {'base ' + metric:>16} {'current':>16} "
          f"{'delta':>9}  status")
    for name, base_value, cur_value, delta_pct, status in rows:
        base_text = str(base_value) if base_value is not None else "-"
        cur_text = str(cur_value) if cur_value is not None else "-"
        delta_text = f"{delta_pct:+.1f}%" if delta_pct is not None else "-"
        print(f"{name:<28} {base_text:>16} {cur_text:>16} {delta_text:>9}  "
              f"{status}")


# A percentile q needs 100/(100-q) samples before the nearest-rank rank
# moves off the maximum.
P95_MIN_ITERATIONS = 20
P99_MIN_ITERATIONS = 100


def compare_both(baseline, current, threshold_pct, p95_threshold_pct, metric,
                 gate_tails=True, p99_threshold_pct=150.0):
    """Primary-metric gate plus the p95/p99 tail gates. The tail passes
    skip the missing-scenario failures the primary pass already reported,
    so each problem is counted once. Each tail gate additionally requires
    both sides to record enough iterations to support the percentile.
    `gate_tails=False` (quick runs) drops the tail gates entirely: a
    quick scenario's p95 is its slowest of a handful of samples, not a
    percentile."""
    rows, failures = compare(baseline, current, threshold_pct, metric)
    print_table(rows, metric)
    if not gate_tails:
        print("\nquick run: p95_ns/p99_ns gates skipped (tail of <=10 "
              "samples is a max, not a percentile)")
        return failures
    for tail_metric, tail_threshold, min_iters in (
            ("p95_ns", p95_threshold_pct, P95_MIN_ITERATIONS),
            ("p99_ns", p99_threshold_pct, P99_MIN_ITERATIONS)):
        if metric == tail_metric:
            continue
        tail_rows, tail_failures = compare(baseline, current, tail_threshold,
                                           tail_metric, min_iters)
        print()
        print_table(tail_rows, tail_metric)
        failures += [f for f in tail_failures if "missing from" not in f]
    return failures


def self_test():
    baseline = {
        "steady": {"p50_ns": 1000, "p95_ns": 1500},
        "slowed": {"p50_ns": 2000, "p95_ns": 2500},
        "tailed": {"p50_ns": 5000, "p95_ns": 6000},
        "gone": {"p50_ns": 3000, "p95_ns": 3500},
    }
    # Injected: a 2x p50 slowdown, a p95-only tail regression (p50 flat),
    # and a missing scenario.
    current = copy.deepcopy(baseline)
    current["slowed"]["p50_ns"] = 4000
    current["slowed"]["p95_ns"] = 5000
    current["tailed"]["p95_ns"] = 12000
    del current["gone"]

    failures = compare_both(baseline, current, 25.0, 60.0, "p50_ns")
    assert any("slowed" in f and "p50_ns" in f for f in failures), \
        "2x p50 slowdown not flagged"
    assert any("slowed" in f and "p95_ns" in f for f in failures), \
        "2x p95 slowdown not flagged"
    assert any("tailed" in f and "p95_ns" in f for f in failures), \
        "p95-only tail regression not flagged"
    assert not any("tailed" in f and "p50_ns" in f for f in failures), \
        "flat p50 wrongly flagged"
    assert sum("gone" in f for f in failures) == 1, \
        "missing scenario must fail exactly once"
    assert len(failures) == 4, f"unexpected failures: {failures}"

    # Noise within both thresholds must pass: +20% on p50, +50% on p95.
    noisy = copy.deepcopy(baseline)
    noisy["slowed"]["p50_ns"] = 2400
    noisy["tailed"]["p95_ns"] = 9000  # +50%, inside the tail gate
    noise_failures = compare_both(baseline, noisy, 25.0, 60.0, "p50_ns")
    assert not noise_failures, f"noise flagged: {noise_failures}"

    # A quick run's tail is exempt: the same p95-only regression that
    # failed above must pass with gate_tails=False, while a p50 regression
    # still fails.
    quick = copy.deepcopy(baseline)
    quick["tailed"]["p95_ns"] = 12000
    quick_failures = compare_both(baseline, quick, 25.0, 60.0, "p50_ns",
                                  gate_tails=False)
    assert not quick_failures, \
        f"quick-run tail wrongly flagged: {quick_failures}"
    quick["slowed"]["p50_ns"] = 4000
    quick_failures = compare_both(baseline, quick, 25.0, 60.0, "p50_ns",
                                  gate_tails=False)
    assert any("slowed" in f and "p50_ns" in f for f in quick_failures), \
        "quick-run p50 slowdown not flagged"

    # Sample-support gating. At 40 iterations a run's p99 is its max (the
    # nearest-rank rank for q=99 sits on the last sample until n >= 100),
    # so a "p99 spike" is one slow iteration and must not flake the gate
    # — this reproduces the BENCH_qpricer.json rows where p99_ns ==
    # max_ns. The same spike with 400-iteration support is a real tail
    # regression and must fail. p95 needs only 20 samples, so a
    # 40-iteration p95 regression still gates.
    spiky_base = {
        "spiky": {"p50_ns": 1000, "p95_ns": 1500, "p99_ns": 2000,
                  "iterations": 40},
    }
    spiky = copy.deepcopy(spiky_base)
    spiky["spiky"]["p99_ns"] = 20000  # 10x, but n=40: that's the max moving
    spike_failures = compare_both(spiky_base, spiky, 25.0, 60.0, "p50_ns")
    assert not spike_failures, \
        f"under-sampled p99 spike wrongly flagged: {spike_failures}"
    spiky["spiky"]["p95_ns"] = 6000  # 4x at n=40: p95 IS supported -> fails
    spike_failures = compare_both(spiky_base, spiky, 25.0, 60.0, "p50_ns")
    assert any("spiky" in f and "p95_ns" in f for f in spike_failures), \
        "supported p95 regression not flagged at 40 iterations"
    assert not any("p99_ns" in f for f in spike_failures), \
        "under-sampled p99 still wrongly flagged"
    for side in (spiky_base, spiky):
        side["spiky"]["iterations"] = 400
    spike_failures = compare_both(spiky_base, spiky, 25.0, 60.0, "p50_ns")
    assert any("spiky" in f and "p99_ns" in f for f in spike_failures), \
        "well-sampled p99 regression not flagged"
    # One under-sampled side is enough to withhold the gate: a baseline
    # re-recorded at full depth must not arm against a shallow current.
    spiky["spiky"]["iterations"] = 40
    spike_failures = compare_both(spiky_base, spiky, 25.0, 60.0, "p50_ns")
    assert not any("p99_ns" in f for f in spike_failures), \
        "mixed-support p99 wrongly gated"

    # The filter scopes both sides: a current run holding only the
    # filtered scenarios must pass even though the rest of the baseline is
    # absent from it, while a regression inside the filter still fails.
    partial = {"slowed": copy.deepcopy(baseline["slowed"])}
    filtered_failures = compare_both(
        filter_scenarios(baseline, "slow"), filter_scenarios(partial, "slow"),
        25.0, 60.0, "p50_ns")
    assert not filtered_failures, \
        f"filtered partial run wrongly failed: {filtered_failures}"
    partial["slowed"]["p50_ns"] = 4000
    filtered_failures = compare_both(
        filter_scenarios(baseline, "slow"), filter_scenarios(partial, "slow"),
        25.0, 60.0, "p50_ns")
    assert any("slowed" in f and "p50_ns" in f for f in filtered_failures), \
        "regression inside the filter not flagged"
    assert not any("gone" in f for f in filtered_failures), \
        "filtered-out scenario wrongly counted as missing"

    print("self-test: ok (p50 slowdown, p95 tail regression, and missing "
          "scenario all flagged; quick-run tail exempt; under-sampled p99 "
          "exempt until n >= 100; filter scopes both sides)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_qpricer.json runs")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed regression on the primary metric, "
                             "percent (default 25)")
    parser.add_argument("--p95-threshold", type=float, default=60.0,
                        help="max allowed p95_ns regression, percent "
                             "(default 60; gated only at >= 20 iterations)")
    parser.add_argument("--p99-threshold", type=float, default=150.0,
                        help="max allowed p99_ns regression, percent "
                             "(default 150; gated only at >= 100 "
                             "iterations)")
    parser.add_argument("--metric", default="p50_ns",
                        help="primary scenario field to compare (default "
                             "p50_ns); p95_ns and p99_ns are gated too, "
                             "sample count permitting")
    parser.add_argument("--filter", default="",
                        help="only compare scenarios whose name contains "
                             "this substring (applied to baseline and "
                             "current)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify injected p50/p95 regressions fail the "
                             "comparison")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required (or --self-test)")

    _, baseline = load_scenarios(args.baseline)
    current_report, current = load_scenarios(args.current)
    if args.filter:
        baseline = filter_scenarios(baseline, args.filter)
        current = filter_scenarios(current, args.filter)
        if not baseline and not current:
            print(f"FAIL: --filter={args.filter!r} matched no scenarios")
            return 1
    quick = bool(current_report.get("quick"))
    failures = compare_both(baseline, current, args.threshold,
                            args.p95_threshold, args.metric,
                            gate_tails=not quick,
                            p99_threshold_pct=args.p99_threshold)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    gated = (f"{args.metric}" if quick
             else f"{args.metric}, {args.p95_threshold:.0f}% on p95_ns, or "
                  f"{args.p99_threshold:.0f}% on p99_ns (sample count "
                  f"permitting)")
    print(f"\nok: no scenario regressed over {args.threshold:.0f}% on "
          f"{gated}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
