#!/usr/bin/env python3
"""Compare a BENCH_qpricer.json run against a checked-in baseline.

Usage:
  bench_compare.py BASELINE.json CURRENT.json [--threshold=PCT]
                   [--p95-threshold=PCT] [--metric=M] [--filter=SUBSTR]
  bench_compare.py --self-test

Exits non-zero when any scenario regresses by more than the threshold on
the primary metric (default p50_ns, 25%), by more than the p95 threshold
on p95_ns (default 60% — an unbounded tail is exactly what the parallel
solvers could grow), or when a baseline scenario is missing from the
current run. The p95 gate is skipped when the current report was a
`--quick` run (the report's own "quick" flag): with 3-10 iterations the
"p95" is just the slowest sample, and gating a max against a full-run
percentile is pure noise — the nightly full bench still gates tails. New
scenarios (present only in the current run) are reported but do not fail
the comparison — they have no baseline yet. `--filter=SUBSTR` restricts
the comparison to scenarios whose name contains SUBSTR, on both sides —
that is how a partial run (e.g. the server-e2e job's `serve_`-only bench)
is gated without the full suite's rows counting as missing. `--self-test` injects a
synthetic 2x slowdown, a p95-only tail regression, and a missing
scenario, and checks that the comparison catches all three and that a
quick run's tail is exempt (also wired up as a ctest).
"""

import argparse
import copy
import json
import sys


def load_scenarios(path):
    with open(path) as f:
        report = json.load(f)
    scenarios = report.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError(f"{path}: no 'scenarios' object")
    return report, scenarios


def filter_scenarios(scenarios, substring):
    """Scenario-name substring filter, applied to both sides so a partial
    current run is never charged for rows it was not asked to produce."""
    return {name: value for name, value in scenarios.items()
            if substring in name}


def compare(baseline, current, threshold_pct, metric):
    """Returns (rows, failures); rows power the delta table."""
    rows = []
    failures = []
    for name in sorted(baseline):
        base_value = baseline[name].get(metric)
        if name not in current:
            failures.append(f"{name}: missing from current run")
            rows.append((name, base_value, None, None, "MISSING"))
            continue
        cur_value = current[name].get(metric)
        if not base_value:
            rows.append((name, base_value, cur_value, None, "no-baseline"))
            continue
        delta_pct = 100.0 * (cur_value - base_value) / base_value
        status = "ok"
        if delta_pct > threshold_pct:
            status = "REGRESSED"
            failures.append(
                f"{name}: {metric} {base_value} -> {cur_value} "
                f"(+{delta_pct:.1f}% > {threshold_pct:.0f}%)"
            )
        rows.append((name, base_value, cur_value, delta_pct, status))
    for name in sorted(set(current) - set(baseline)):
        rows.append((name, None, current[name].get(metric), None, "new"))
    return rows, failures


def print_table(rows, metric):
    print(f"{'scenario':<28} {'base ' + metric:>16} {'current':>16} "
          f"{'delta':>9}  status")
    for name, base_value, cur_value, delta_pct, status in rows:
        base_text = str(base_value) if base_value is not None else "-"
        cur_text = str(cur_value) if cur_value is not None else "-"
        delta_text = f"{delta_pct:+.1f}%" if delta_pct is not None else "-"
        print(f"{name:<28} {base_text:>16} {cur_text:>16} {delta_text:>9}  "
              f"{status}")


def compare_both(baseline, current, threshold_pct, p95_threshold_pct, metric,
                 gate_p95=True):
    """Primary-metric gate plus the p95 tail gate. The p95 pass skips the
    missing-scenario failures the primary pass already reported, so each
    problem is counted once. `gate_p95=False` (quick runs) drops the tail
    gate entirely: a quick scenario's p95 is its slowest of a handful of
    samples, not a percentile."""
    rows, failures = compare(baseline, current, threshold_pct, metric)
    print_table(rows, metric)
    if metric != "p95_ns" and gate_p95:
        p95_rows, p95_failures = compare(baseline, current, p95_threshold_pct,
                                         "p95_ns")
        print()
        print_table(p95_rows, "p95_ns")
        failures += [f for f in p95_failures if "missing from" not in f]
    elif not gate_p95:
        print("\nquick run: p95_ns gate skipped (tail of <=10 samples is a "
              "max, not a percentile)")
    return failures


def self_test():
    baseline = {
        "steady": {"p50_ns": 1000, "p95_ns": 1500},
        "slowed": {"p50_ns": 2000, "p95_ns": 2500},
        "tailed": {"p50_ns": 5000, "p95_ns": 6000},
        "gone": {"p50_ns": 3000, "p95_ns": 3500},
    }
    # Injected: a 2x p50 slowdown, a p95-only tail regression (p50 flat),
    # and a missing scenario.
    current = copy.deepcopy(baseline)
    current["slowed"]["p50_ns"] = 4000
    current["slowed"]["p95_ns"] = 5000
    current["tailed"]["p95_ns"] = 12000
    del current["gone"]

    failures = compare_both(baseline, current, 25.0, 60.0, "p50_ns")
    assert any("slowed" in f and "p50_ns" in f for f in failures), \
        "2x p50 slowdown not flagged"
    assert any("slowed" in f and "p95_ns" in f for f in failures), \
        "2x p95 slowdown not flagged"
    assert any("tailed" in f and "p95_ns" in f for f in failures), \
        "p95-only tail regression not flagged"
    assert not any("tailed" in f and "p50_ns" in f for f in failures), \
        "flat p50 wrongly flagged"
    assert sum("gone" in f for f in failures) == 1, \
        "missing scenario must fail exactly once"
    assert len(failures) == 4, f"unexpected failures: {failures}"

    # Noise within both thresholds must pass: +20% on p50, +50% on p95.
    noisy = copy.deepcopy(baseline)
    noisy["slowed"]["p50_ns"] = 2400
    noisy["tailed"]["p95_ns"] = 9000  # +50%, inside the tail gate
    noise_failures = compare_both(baseline, noisy, 25.0, 60.0, "p50_ns")
    assert not noise_failures, f"noise flagged: {noise_failures}"

    # A quick run's tail is exempt: the same p95-only regression that
    # failed above must pass with gate_p95=False, while a p50 regression
    # still fails.
    quick = copy.deepcopy(baseline)
    quick["tailed"]["p95_ns"] = 12000
    quick_failures = compare_both(baseline, quick, 25.0, 60.0, "p50_ns",
                                  gate_p95=False)
    assert not quick_failures, \
        f"quick-run tail wrongly flagged: {quick_failures}"
    quick["slowed"]["p50_ns"] = 4000
    quick_failures = compare_both(baseline, quick, 25.0, 60.0, "p50_ns",
                                  gate_p95=False)
    assert any("slowed" in f and "p50_ns" in f for f in quick_failures), \
        "quick-run p50 slowdown not flagged"

    # The filter scopes both sides: a current run holding only the
    # filtered scenarios must pass even though the rest of the baseline is
    # absent from it, while a regression inside the filter still fails.
    partial = {"slowed": copy.deepcopy(baseline["slowed"])}
    filtered_failures = compare_both(
        filter_scenarios(baseline, "slow"), filter_scenarios(partial, "slow"),
        25.0, 60.0, "p50_ns")
    assert not filtered_failures, \
        f"filtered partial run wrongly failed: {filtered_failures}"
    partial["slowed"]["p50_ns"] = 4000
    filtered_failures = compare_both(
        filter_scenarios(baseline, "slow"), filter_scenarios(partial, "slow"),
        25.0, 60.0, "p50_ns")
    assert any("slowed" in f and "p50_ns" in f for f in filtered_failures), \
        "regression inside the filter not flagged"
    assert not any("gone" in f for f in filtered_failures), \
        "filtered-out scenario wrongly counted as missing"

    print("self-test: ok (p50 slowdown, p95 tail regression, and missing "
          "scenario all flagged; quick-run tail exempt; filter scopes "
          "both sides)")
    return 0


def main():
    parser = argparse.ArgumentParser(
        description="compare BENCH_qpricer.json runs")
    parser.add_argument("baseline", nargs="?")
    parser.add_argument("current", nargs="?")
    parser.add_argument("--threshold", type=float, default=25.0,
                        help="max allowed regression on the primary metric, "
                             "percent (default 25)")
    parser.add_argument("--p95-threshold", type=float, default=60.0,
                        help="max allowed p95_ns regression, percent "
                             "(default 60)")
    parser.add_argument("--metric", default="p50_ns",
                        help="primary scenario field to compare (default "
                             "p50_ns); p95_ns is always gated too")
    parser.add_argument("--filter", default="",
                        help="only compare scenarios whose name contains "
                             "this substring (applied to baseline and "
                             "current)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify injected p50/p95 regressions fail the "
                             "comparison")
    args = parser.parse_args()

    if args.self_test:
        return self_test()
    if not args.baseline or not args.current:
        parser.error("baseline and current are required (or --self-test)")

    _, baseline = load_scenarios(args.baseline)
    current_report, current = load_scenarios(args.current)
    if args.filter:
        baseline = filter_scenarios(baseline, args.filter)
        current = filter_scenarios(current, args.filter)
        if not baseline and not current:
            print(f"FAIL: --filter={args.filter!r} matched no scenarios")
            return 1
    quick = bool(current_report.get("quick"))
    failures = compare_both(baseline, current, args.threshold,
                            args.p95_threshold, args.metric,
                            gate_p95=not quick)
    if failures:
        print(f"\nFAIL: {len(failures)} regression(s):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    gated = (f"{args.metric}" if quick
             else f"{args.metric} or {args.p95_threshold:.0f}% on p95_ns")
    print(f"\nok: no scenario regressed over {args.threshold:.0f}% on "
          f"{gated}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
