// qpricer_load — load client for qpricerd: N concurrent connections,
// each issuing a mixed QUOTE / QUOTE_BATCH / INSERT trace against the
// daemon's generated business-market shards, reporting end-to-end
// throughput and latency percentiles. Closed-loop by default (each
// worker's next request waits for the previous reply); --open-loop
// switches to a fixed arrival schedule, the honest way to measure an
// overloaded server — latency is then counted from the request's
// *scheduled* arrival time, so server-side queueing cannot hide by
// slowing the request stream down.
//
// Usage:
//   qpricer_load --port=N [flags]
//
// Flags:
//   --host=A           server address (default 127.0.0.1)
//   --port=N           server port (required)
//   --connections=N    concurrent client connections (default 8)
//   --requests=N       requests per connection (default 200; ignored
//                      when --duration-s is set)
//   --duration-s=N     run for N seconds of wall clock instead of a fixed
//                      request count (each worker stops at the deadline)
//   --shards=N         shards to spread load across (default 2; must not
//                      exceed the daemon's shard count)
//   --insert-every=N   every Nth request is an INSERT (default 8;
//                      0 = quotes only)
//   --batch-every=N    every Nth request is a QUOTE_BATCH of 8 queries
//                      (default 16; 0 = none)
//   --open-loop        arrivals on a fixed schedule instead of reply-
//                      clocked; a worker that falls behind issues late
//                      requests back-to-back and the backlog shows up as
//                      latency (measured from the scheduled arrival)
//   --rate=N           total open-loop arrivals per second across all
//                      connections (default 200; requires --open-loop)
//   --expect-controller  after the run, fetch METRICS and assert the
//                      server's overload controller is ticking
//                      (qp.server.ctl.ticks > 0); pairs with --smoke in
//                      the CI live-daemon step
//   --smoke            CI smoke mode: assert nonzero quote and insert
//                      successes and zero protocol failures (shed
//                      requests are not failures), print "SMOKE OK"
//   --shutdown         send a SHUTDOWN frame after the run
//   --out=PATH         write a JSON result row: overall qps / p50_ns /
//                      p95_ns / p99_ns, shed / approximate counts,
//                      revenue_per_s, plus per-op-type {count, p50_ns,
//                      p95_ns} blocks for quote, insert, and batch
//
// Shed vs failed: a ResourceExhausted reply (connection shed at the
// door, batch query over the admission cap) is the server keeping its
// latency objective under overload — counted separately as "shed",
// never as a failure. Failures are protocol or server errors.
//
// Exit status: 0 on success; 1 when any request failed (or a --smoke /
// --expect-controller assertion does not hold).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "qp/obs/window.h"
#include "qp/server/client.h"

namespace {

struct Flags {
  std::string host = "127.0.0.1";
  long port = 0;
  int connections = 8;
  int requests = 200;
  long duration_s = 0;
  int shards = 2;
  int insert_every = 8;
  int batch_every = 16;
  bool open_loop = false;
  long rate = 200;
  bool expect_controller = false;
  bool smoke = false;
  bool shutdown = false;
  std::string out;
};

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

/// Round-trip types tracked separately in the latency report: a warm
/// cache moves quote latency without touching insert latency, and the
/// aggregate would hide exactly that split.
enum OpType { kOpQuote = 0, kOpInsert = 1, kOpBatch = 2, kNumOpTypes = 3 };

const char* kOpNames[kNumOpTypes] = {"quote", "insert", "batch"};

/// The quote mix: selection-heavy conjunctive queries over the generated
/// business market (Business/Email/InState/InCounty), a boolean probe,
/// and one join that exercises the non-trivial solver paths.
const char* kQuoteMix[] = {
    "Q(b) :- Email(b), InState(b,'WA')",
    "Q(b) :- Business(b), InState(b,'OR')",
    "Q(b) :- Email(b), InCounty(b,'WA/c0')",
    "Q(b) :- InState(b,'S2')",
    "Q() :- Email(x), InState(x,'WA')",
    "Q(b) :- Business(b), Email(b), InState(b,'S3')",
};
constexpr int kQuoteMixSize = 6;

struct WorkerResult {
  uint64_t quotes_ok = 0;
  uint64_t inserts_ok = 0;
  uint64_t rows_inserted = 0;
  uint64_t failures = 0;
  /// ResourceExhausted replies: the server shedding load on purpose.
  uint64_t shed = 0;
  /// Quotes served as deadline-degraded admissible over-estimates.
  uint64_t approx_quotes = 0;
  /// Sum of quoted prices (cents) across successful quotes — the
  /// graceful-degradation metric: under overload revenue per second
  /// should decay, not collapse.
  uint64_t revenue = 0;
  std::vector<uint64_t> latencies_ns[kNumOpTypes];
  std::string first_error;
};

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool IsShed(const qp::Status& status) {
  return status.code() == qp::StatusCode::kResourceExhausted;
}

/// Sheds are the server keeping its objective, not a client failure.
void Fail(WorkerResult* result, const qp::Status& status) {
  if (IsShed(status)) {
    ++result->shed;
    return;
  }
  ++result->failures;
  if (result->first_error.empty()) result->first_error = status.ToString();
}

void RunWorker(const Flags& flags, int worker_id, WorkerResult* result) {
  auto client = qp::PricingClient::Connect(
      flags.host, static_cast<uint16_t>(flags.port));
  if (!client.ok()) {
    Fail(result, client.status());
    if (!flags.open_loop) return;
  }
  uint32_t shard = static_cast<uint32_t>(
      flags.shards > 0 ? worker_id % flags.shards : 0);
  // Fixed request count, or open-ended until the wall-clock deadline.
  const uint64_t t0 = NowNs();
  const uint64_t deadline_ns =
      flags.duration_s > 0
          ? t0 + static_cast<uint64_t>(flags.duration_s) * 1000000000ull
          : 0;
  // Open loop: this worker owns every `connections`-th arrival of the
  // configured aggregate rate.
  const uint64_t period_ns =
      flags.rate > 0 ? static_cast<uint64_t>(flags.connections) *
                           1000000000ull / static_cast<uint64_t>(flags.rate)
                     : 0;
  for (int i = 0;
       deadline_ns > 0 ? NowNs() < deadline_ns : i < flags.requests; ++i) {
    uint64_t start = NowNs();
    if (flags.open_loop) {
      // Latency runs from the scheduled arrival: if the previous reply
      // made us late, the excess is queueing delay the server caused and
      // must be charged to it, exactly what a reply-clocked loop hides.
      const uint64_t scheduled =
          t0 + static_cast<uint64_t>(i) * period_ns;
      while (NowNs() < scheduled) {
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
      start = scheduled;
      if (!client.ok()) {
        // The previous arrival's connection was shed or broken; each new
        // arrival retries so the server is continuously re-offered load.
        client = qp::PricingClient::Connect(
            flags.host, static_cast<uint16_t>(flags.port));
        if (!client.ok()) {
          Fail(result, client.status());
          continue;
        }
      }
    }
    OpType op = kOpQuote;
    bool request_failed = false;
    if (flags.insert_every > 0 && i % flags.insert_every == 1) {
      op = kOpInsert;
      // Spread inserts over distinct businesses per worker so most are
      // fresh rows; duplicates are valid no-op inserts either way.
      int bid = (worker_id * flags.requests + i * 7) % 120;
      auto reply = client->Insert(
          shard, "Email",
          {{qp::Value::Str("biz" + std::to_string(bid))}});
      if (!reply.ok()) {
        Fail(result, reply.status());
        request_failed = true;
      } else {
        ++result->inserts_ok;
        result->rows_inserted += reply->rows_inserted;
      }
    } else if (flags.batch_every > 0 && i % flags.batch_every == 2) {
      op = kOpBatch;
      std::vector<std::string> texts;
      for (int q = 0; q < 8; ++q) {
        texts.push_back(kQuoteMix[(i + q) % kQuoteMixSize]);
      }
      auto reply = client->QuoteBatch(shard, texts);
      if (!reply.ok()) {
        Fail(result, reply.status());
        request_failed = true;
      } else {
        for (const auto& item : reply->items) {
          if (item.status_code ==
              static_cast<uint8_t>(qp::StatusCode::kResourceExhausted)) {
            ++result->shed;  // over the batch admission cap: on purpose
            continue;
          }
          if (item.status_code != 0) {
            Fail(result, qp::Status::Internal("batch item: " + item.message));
            continue;
          }
          ++result->quotes_ok;
          result->revenue += static_cast<uint64_t>(item.price);
          if (item.approximate) ++result->approx_quotes;
        }
      }
    } else {
      auto reply = client->Quote(shard, kQuoteMix[i % kQuoteMixSize]);
      if (!reply.ok()) {
        Fail(result, reply.status());
        request_failed = true;
      } else {
        ++result->quotes_ok;
        result->revenue += static_cast<uint64_t>(reply->price);
        if (reply->approximate) ++result->approx_quotes;
      }
    }
    if (request_failed && flags.open_loop) {
      // Shed connections are closed server-side; reconnect on the next
      // scheduled arrival rather than spraying errors at a dead socket.
      client = qp::Status::Internal("reconnect pending");
      continue;
    }
    result->latencies_ns[op].push_back(NowNs() - start);
  }
  if (flags.shutdown && worker_id == 0 && client.ok()) {
    qp::Status status = client->Shutdown();
    if (!status.ok()) Fail(result, status);
  }
}

/// Nearest-rank percentile, `q` in percent. The previous in-tool
/// implementation used the floor-interpolation rank q*(n-1), which reads
/// one sample low on small n (e.g. p95 of 20 samples picked index 18,
/// not 19) and disagreed with the server's histogram percentiles; the
/// shared qp::NearestRankPercentile pins both to the same definition
/// (obs/window_test.cc holds the two to the same answers on a fixture).
uint64_t Percentile(const std::vector<uint64_t>& sorted, int q) {
  return qp::NearestRankPercentile(sorted, q);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseIntFlag(argv[i], "--port", &v)) {
      flags.port = v;
    } else if (ParseIntFlag(argv[i], "--connections", &v)) {
      flags.connections = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--requests", &v)) {
      flags.requests = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--duration-s", &v)) {
      flags.duration_s = v;
    } else if (ParseIntFlag(argv[i], "--shards", &v)) {
      flags.shards = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--insert-every", &v)) {
      flags.insert_every = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--batch-every", &v)) {
      flags.batch_every = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--open-loop") == 0) {
      flags.open_loop = true;
    } else if (ParseIntFlag(argv[i], "--rate", &v)) {
      flags.rate = v;
    } else if (std::strcmp(argv[i], "--expect-controller") == 0) {
      flags.expect_controller = true;
    } else if (std::strncmp(argv[i], "--host=", 7) == 0) {
      flags.host = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      flags.smoke = true;
    } else if (std::strcmp(argv[i], "--shutdown") == 0) {
      flags.shutdown = true;
    } else if (std::strncmp(argv[i], "--out=", 6) == 0) {
      flags.out = argv[i] + 6;
    } else {
      std::fprintf(stderr, "qpricer_load: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  if (flags.port <= 0 || flags.port > 65535) {
    std::fprintf(stderr, "qpricer_load: --port=N is required\n");
    return 2;
  }
  if (flags.open_loop && flags.rate <= 0) {
    std::fprintf(stderr, "qpricer_load: --open-loop needs --rate > 0\n");
    return 2;
  }
  if (flags.smoke) {
    flags.connections = std::max(flags.connections, 8);
    flags.requests = std::min(flags.requests, 50);
  }

  std::vector<WorkerResult> results(flags.connections);
  std::vector<std::thread> threads;
  uint64_t wall_start = NowNs();
  for (int c = 0; c < flags.connections; ++c) {
    threads.emplace_back(RunWorker, flags, c, &results[c]);
  }
  for (std::thread& t : threads) t.join();
  uint64_t wall_ns = NowNs() - wall_start;

  uint64_t quotes_ok = 0, inserts_ok = 0, rows = 0, failures = 0, ops = 0;
  uint64_t shed = 0, approx = 0, revenue = 0;
  std::vector<uint64_t> latencies;
  std::vector<uint64_t> op_latencies[kNumOpTypes];
  std::string first_error;
  for (const WorkerResult& r : results) {
    quotes_ok += r.quotes_ok;
    inserts_ok += r.inserts_ok;
    rows += r.rows_inserted;
    failures += r.failures;
    shed += r.shed;
    approx += r.approx_quotes;
    revenue += r.revenue;
    for (int op = 0; op < kNumOpTypes; ++op) {
      ops += r.latencies_ns[op].size();
      latencies.insert(latencies.end(), r.latencies_ns[op].begin(),
                       r.latencies_ns[op].end());
      op_latencies[op].insert(op_latencies[op].end(),
                              r.latencies_ns[op].begin(),
                              r.latencies_ns[op].end());
    }
    if (first_error.empty()) first_error = r.first_error;
  }
  std::sort(latencies.begin(), latencies.end());
  uint64_t p50 = Percentile(latencies, 50);
  uint64_t p95 = Percentile(latencies, 95);
  uint64_t p99 = Percentile(latencies, 99);
  uint64_t op_p50[kNumOpTypes], op_p95[kNumOpTypes];
  for (int op = 0; op < kNumOpTypes; ++op) {
    std::sort(op_latencies[op].begin(), op_latencies[op].end());
    op_p50[op] = Percentile(op_latencies[op], 50);
    op_p95[op] = Percentile(op_latencies[op], 95);
  }
  // qps counts request round-trips per second (a batch is one request).
  double qps = wall_ns > 0 ? static_cast<double>(ops) * 1e9 /
                                 static_cast<double>(wall_ns)
                           : 0.0;
  double revenue_per_s = wall_ns > 0 ? static_cast<double>(revenue) * 1e9 /
                                           static_cast<double>(wall_ns)
                                     : 0.0;

  std::printf(
      "qpricer_load: %d connections, %llu requests in %.1f ms%s\n",
      flags.connections, static_cast<unsigned long long>(ops),
      static_cast<double>(wall_ns) / 1e6,
      flags.open_loop ? " (open loop)" : "");
  std::printf(
      "  quotes_ok=%llu inserts_ok=%llu rows_inserted=%llu failures=%llu "
      "shed=%llu approx=%llu\n",
      static_cast<unsigned long long>(quotes_ok),
      static_cast<unsigned long long>(inserts_ok),
      static_cast<unsigned long long>(rows),
      static_cast<unsigned long long>(failures),
      static_cast<unsigned long long>(shed),
      static_cast<unsigned long long>(approx));
  std::printf(
      "  qps=%.0f p50=%.3f ms p95=%.3f ms p99=%.3f ms revenue/s=$%.2f\n",
      qps, static_cast<double>(p50) / 1e6, static_cast<double>(p95) / 1e6,
      static_cast<double>(p99) / 1e6, revenue_per_s / 100.0);
  for (int op = 0; op < kNumOpTypes; ++op) {
    if (op_latencies[op].empty()) continue;
    std::printf("  %s: n=%zu p50=%.3f ms p95=%.3f ms\n", kOpNames[op],
                op_latencies[op].size(),
                static_cast<double>(op_p50[op]) / 1e6,
                static_cast<double>(op_p95[op]) / 1e6);
  }
  if (failures > 0) {
    std::printf("  first error: %s\n", first_error.c_str());
  }

  if (!flags.out.empty()) {
    std::ofstream out(flags.out);
    out << "{\"connections\": " << flags.connections
        << ", \"requests\": " << ops << ", \"quotes_ok\": " << quotes_ok
        << ", \"inserts_ok\": " << inserts_ok
        << ", \"failures\": " << failures << ", \"shed\": " << shed
        << ", \"approximate\": " << approx << ", \"qps\": " << qps
        << ", \"revenue_per_s\": " << revenue_per_s
        << ", \"p50_ns\": " << p50 << ", \"p95_ns\": " << p95
        << ", \"p99_ns\": " << p99;
    for (int op = 0; op < kNumOpTypes; ++op) {
      out << ", \"" << kOpNames[op] << "\": {\"count\": "
          << op_latencies[op].size() << ", \"p50_ns\": " << op_p50[op]
          << ", \"p95_ns\": " << op_p95[op] << "}";
    }
    out << "}\n";
  }

  if (flags.expect_controller) {
    // The controller proves itself through its own telemetry: a ticking
    // qp.server.ctl.ticks counter in the METRICS frame.
    bool ticking = false;
    auto probe = qp::PricingClient::Connect(
        flags.host, static_cast<uint16_t>(flags.port));
    if (probe.ok()) {
      auto metrics = probe->Metrics();
      if (metrics.ok()) {
        const std::string& json = metrics->json;
        size_t pos = json.find("\"qp.server.ctl.ticks\": ");
        if (pos != std::string::npos) {
          long ticks = std::strtol(
              json.c_str() + pos + std::strlen("\"qp.server.ctl.ticks\": "),
              nullptr, 10);
          std::printf("  controller ticks=%ld\n", ticks);
          ticking = ticks > 0;
        }
      }
    }
    if (!ticking) {
      std::printf("EXPECT-CONTROLLER FAILED (no qp.server.ctl.ticks)\n");
      return 1;
    }
  }
  if (flags.smoke) {
    if (failures == 0 && quotes_ok > 0 && inserts_ok > 0) {
      std::printf("SMOKE OK\n");
      return 0;
    }
    std::printf("SMOKE FAILED\n");
    return 1;
  }
  return failures == 0 ? 0 : 1;
}
