#!/usr/bin/env bash
# Check-only formatting gate: fails if any tracked C++ file deviates from
# .clang-format. Skips (exit 0 with a notice) when clang-format is not
# installed, so local environments without LLVM keep working; CI installs
# it and enforces. Pass --fix to rewrite files in place instead.
set -u

cd "$(dirname "$0")/.."

if ! command -v clang-format > /dev/null 2>&1; then
  echo "format_check: clang-format not installed; skipping (CI enforces)"
  exit 0
fi

mode="--dry-run"
if [ "${1:-}" = "--fix" ]; then
  mode="-i"
fi

files=$(git ls-files 'src/**/*.cc' 'src/**/*.h' 'tests/*.cc' 'tests/*.h' \
                     'tools/*.cc')
if [ -z "$files" ]; then
  echo "format_check: no files to check"
  exit 0
fi

# shellcheck disable=SC2086
clang-format $mode -Werror --style=file $files
status=$?
if [ $status -eq 0 ]; then
  echo "format_check: OK ($(echo "$files" | wc -l) files)"
else
  echo "format_check: formatting differences found (run tools/format_check.sh --fix)"
fi
exit $status
