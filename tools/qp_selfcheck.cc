// qp_selfcheck: differential correctness check of the pricing solvers.
//
// Re-prices randomized small instances with the exhaustive oracle and
// cross-validates the chain/GChQ/clause/bundle solvers against it, audits
// every quote against the paper's invariants (Prop 2.8, Equation 2), and
// replays the Example 3.8 fixture (arbitrage-price 6, consistent seller).
// Exit status 0 iff everything agrees — wired into CI as the `selfcheck`
// gate and usable locally:
//
//   qp_selfcheck [--instances=N] [--seed=S] [--level=log|abort|off]
//                [--deadline-ms=N]
//
// With --deadline-ms=N the engine side runs under an N-millisecond serving
// budget per quote; approximate quotes are validated against the Lemma 3.1
// admissibility contract (engine price >= exact oracle price) instead of
// exact equality. This is the CI gate for the deadline-degradation path.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "qp/check/check.h"
#include "qp/selfcheck/cross_solver.h"
#include "qp/pricing/invariants.h"
#include "qp/pricing/engine.h"
#include "qp/query/parser.h"
#include "qp/relational/instance.h"

namespace qp {
namespace {

/// The running example of the paper (Example 3.8 / Figure 1); the expected
/// arbitrage-price of Q(x,y) :- R(x), S(x,y), T(y) is 6.
Status CheckExample38() {
  Catalog catalog;
  QP_RETURN_IF_ERROR(catalog.AddRelation("R", {"X"}).status());
  QP_RETURN_IF_ERROR(catalog.AddRelation("S", {"X", "Y"}).status());
  QP_RETURN_IF_ERROR(catalog.AddRelation("T", {"Y"}).status());
  std::vector<Value> col_x = {Value::Str("a1"), Value::Str("a2"),
                              Value::Str("a3"), Value::Str("a4")};
  std::vector<Value> col_y = {Value::Str("b1"), Value::Str("b2"),
                              Value::Str("b3")};
  QP_RETURN_IF_ERROR(catalog.SetColumn("R", "X", col_x));
  QP_RETURN_IF_ERROR(catalog.SetColumn("S", "X", col_x));
  QP_RETURN_IF_ERROR(catalog.SetColumn("S", "Y", col_y));
  QP_RETURN_IF_ERROR(catalog.SetColumn("T", "Y", col_y));

  Instance db(&catalog);
  QP_RETURN_IF_ERROR(db.Insert("R", {Value::Str("a1")}).status());
  QP_RETURN_IF_ERROR(db.Insert("R", {Value::Str("a2")}).status());
  QP_RETURN_IF_ERROR(
      db.Insert("S", {Value::Str("a1"), Value::Str("b1")}).status());
  QP_RETURN_IF_ERROR(
      db.Insert("S", {Value::Str("a1"), Value::Str("b2")}).status());
  QP_RETURN_IF_ERROR(
      db.Insert("S", {Value::Str("a2"), Value::Str("b2")}).status());
  QP_RETURN_IF_ERROR(
      db.Insert("S", {Value::Str("a4"), Value::Str("b1")}).status());
  QP_RETURN_IF_ERROR(db.Insert("T", {Value::Str("b1")}).status());
  QP_RETURN_IF_ERROR(db.Insert("T", {Value::Str("b3")}).status());

  SelectionPriceSet prices;
  QP_RETURN_IF_ERROR(prices.SetUniform(catalog, "R", "X", 1));
  QP_RETURN_IF_ERROR(prices.SetUniform(catalog, "S", "X", 1));
  QP_RETURN_IF_ERROR(prices.SetUniform(catalog, "S", "Y", 1));
  QP_RETURN_IF_ERROR(prices.SetUniform(catalog, "T", "Y", 1));

  auto query =
      ParseQuery(catalog.schema(), "Q(x,y) :- R(x), S(x,y), T(y)");
  QP_RETURN_IF_ERROR(query.status());

  // The uniform $1 prices of the running example are arbitrage-free.
  CheckSellerConsistency(catalog, prices, "qp_selfcheck example38");

  auto report = CrossValidate(db, prices, {*query});
  QP_RETURN_IF_ERROR(report.status());
  if (!report->ok()) {
    return Status::Internal("Example 3.8 cross-validation failed:\n" +
                            report->Summary());
  }

  PricingEngine engine(&db, &prices);
  auto quote = engine.Price(*query);
  QP_RETURN_IF_ERROR(quote.status());
  if (quote->solution.price != 6) {
    return Status::Internal(
        "Example 3.8 arbitrage-price is " +
        MoneyToString(quote->solution.price) + ", expected $0.06 (6)");
  }
  return Status::Ok();
}

int Run(int instances, uint64_t seed, int64_t deadline_ms) {
  std::printf("qp_selfcheck: Example 3.8 fixture...\n");
  Status example = CheckExample38();
  if (!example.ok()) {
    std::printf("FAILED: %s\n", example.ToString().c_str());
    return 1;
  }
  CrossSolverOptions options;
  options.deadline_ms = deadline_ms;
  std::printf("qp_selfcheck: %d randomized instances (seed %llu%s)...\n",
              instances, static_cast<unsigned long long>(seed),
              deadline_ms > 0
                  ? (", deadline " + std::to_string(deadline_ms) + "ms").c_str()
                  : "");
  auto report = CrossValidateRandom(instances, seed, options);
  if (!report.ok()) {
    std::printf("FAILED: %s\n", report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", report->Summary().c_str());
  // Flow-kernel axis: Dinic vs push-relabel vs warm-start-after-k-updates
  // on randomized chain/star/cycle instances (always unbudgeted — the warm
  // path is never taken under a serving budget).
  std::printf(
      "qp_selfcheck: %d flow-backend instances "
      "(dinic / push-relabel / warm-start)...\n",
      instances);
  auto flow_report = CrossValidateFlowBackends(instances, seed);
  if (!flow_report.ok()) {
    std::printf("FAILED: %s\n", flow_report.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", flow_report->Summary().c_str());
  uint64_t invariant_failures = CheckFailureCount();
  if (invariant_failures > 0) {
    std::printf("FAILED: %llu invariant violations (last: %s)\n",
                static_cast<unsigned long long>(invariant_failures),
                LastCheckFailure().c_str());
    return 1;
  }
  if (!report->ok() || !flow_report->ok()) return 1;
  std::printf("OK\n");
  return 0;
}

}  // namespace
}  // namespace qp

int main(int argc, char** argv) {
  int instances = 100;
  uint64_t seed = 42;
  int64_t deadline_ms = 0;
  // `log` keeps counting past the first violation so one run reports the
  // full damage; pass --level=abort to die on the first one instead.
  qp::SetCheckLevel(qp::CheckLevel::kLog);
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--instances=", 12) == 0) {
      instances = std::atoi(arg + 12);
    } else if (std::strncmp(arg, "--seed=", 7) == 0) {
      seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      deadline_ms = std::strtoll(arg + 14, nullptr, 10);
    } else if (std::strcmp(arg, "--level=abort") == 0) {
      qp::SetCheckLevel(qp::CheckLevel::kAbort);
    } else if (std::strcmp(arg, "--level=off") == 0) {
      qp::SetCheckLevel(qp::CheckLevel::kOff);
    } else if (std::strcmp(arg, "--level=log") == 0) {
      qp::SetCheckLevel(qp::CheckLevel::kLog);
    } else {
      std::printf(
          "usage: qp_selfcheck [--instances=N] [--seed=S] "
          "[--level=log|abort|off] [--deadline-ms=N]\n");
      return 2;
    }
  }
  if (instances <= 0) {
    std::printf("--instances must be positive\n");
    return 2;
  }
  if (deadline_ms < 0) {
    std::printf("--deadline-ms must be non-negative\n");
    return 2;
  }
  return qp::Run(instances, seed, deadline_ms);
}
