// qpricerd — the pricing daemon: serves arbitrage-free quotes over the
// length-prefixed binary protocol of qp/server/wire.h, one catalog shard
// per seller, with multi-version snapshot isolation (an INSERT publishes
// a new catalog generation without blocking in-flight quotes).
//
// Usage:
//   qpricerd [flags]
//
// Flags:
//   --port=N             listen port (default 0 = ephemeral; the bound
//                        port is printed on the "listening" line)
//   --shards=N           generated business-market shards (default 2)
//   --businesses=N       businesses per generated shard (default 120)
//   --market=PATH        serve a single shard loaded from a market file
//                        (qp/market/catalog_io.h format) instead
//   --workers=N          connection worker threads (default 8)
//   --max-connections=N  admission limit before shedding (default 64)
//   --deadline-ms=N      per-quote serving deadline (default 0 = none)
//   --admission-cap=N    per-batch admission cap (default 0 = unlimited)
//   --no-warm            disable publish-triggered cache warming
//                        (invalidate-only; the serve_churn A/B baseline)
//   --hot-set-size=N     hottest cached queries re-priced per publish
//                        (default 16; 0 also disables warming)
//   --target-p99-ms=N    request-latency objective the overload
//                        controller defends (default 50; the deadline /
//                        admission-cap / max-connections flags become
//                        the baseline it tightens from under pressure)
//   --controller-tick-ms=N  control period and telemetry window
//                        (default 50)
//   --no-controller      static serving: knobs stay exactly at their
//                        configured values (pre-controller behavior)
//
// On startup the daemon prints exactly one line
//   qpricerd listening on 127.0.0.1:<port> (<k> shards)
// to stdout and serves until SIGTERM/SIGINT or a SHUTDOWN frame, then
// drains and exits 0. CI greps that line for the port, runs the load
// client, and asserts the clean exit.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <chrono>
#include <memory>
#include <string>
#include <thread>

#include "qp/market/catalog_io.h"
#include "qp/server/pricing_server.h"
#include "qp/workload/business.h"

namespace {

volatile std::sig_atomic_t g_signal = 0;

void HandleSignal(int sig) { g_signal = sig; }

struct Flags {
  uint16_t port = 0;
  int shards = 2;
  int businesses = 120;
  std::string market_file;
  int workers = 8;
  int max_connections = 64;
  int64_t deadline_ms = 0;
  int admission_cap = 0;
  bool warm_on_publish = true;
  int hot_set_size = 16;
  int64_t target_p99_ms = 50;
  int64_t controller_tick_ms = 50;
};

bool ParseIntFlag(const char* arg, const char* name, long* out) {
  size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *out = std::strtol(arg + len + 1, nullptr, 10);
  return true;
}

int Usage(const char* msg) {
  std::fprintf(stderr, "qpricerd: %s\n", msg);
  std::fprintf(stderr,
               "usage: qpricerd [--port=N] [--shards=N] [--businesses=N] "
               "[--market=PATH]\n"
               "                [--workers=N] [--max-connections=N] "
               "[--deadline-ms=N] [--admission-cap=N]\n"
               "                [--no-warm] [--hot-set-size=N]\n"
               "                [--target-p99-ms=N] [--controller-tick-ms=N] "
               "[--no-controller]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    long v = 0;
    if (ParseIntFlag(argv[i], "--port", &v)) {
      flags.port = static_cast<uint16_t>(v);
    } else if (ParseIntFlag(argv[i], "--shards", &v)) {
      flags.shards = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--businesses", &v)) {
      flags.businesses = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--workers", &v)) {
      flags.workers = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--max-connections", &v)) {
      flags.max_connections = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--deadline-ms", &v)) {
      flags.deadline_ms = v;
    } else if (ParseIntFlag(argv[i], "--admission-cap", &v)) {
      flags.admission_cap = static_cast<int>(v);
    } else if (std::strcmp(argv[i], "--no-warm") == 0) {
      flags.warm_on_publish = false;
    } else if (ParseIntFlag(argv[i], "--hot-set-size", &v)) {
      flags.hot_set_size = static_cast<int>(v);
    } else if (ParseIntFlag(argv[i], "--target-p99-ms", &v)) {
      flags.target_p99_ms = v;
    } else if (ParseIntFlag(argv[i], "--controller-tick-ms", &v)) {
      flags.controller_tick_ms = v;
    } else if (std::strcmp(argv[i], "--no-controller") == 0) {
      flags.target_p99_ms = 0;
    } else if (std::strncmp(argv[i], "--market=", 9) == 0) {
      flags.market_file = argv[i] + 9;
    } else {
      return Usage((std::string("unknown flag ") + argv[i]).c_str());
    }
  }
  if (flags.shards < 1 && flags.market_file.empty()) {
    return Usage("--shards must be >= 1");
  }

  qp::ShardMap shards;
  if (!flags.market_file.empty()) {
    auto seller = std::make_unique<qp::Seller>("market");
    qp::Status status =
        qp::LoadSellerFromFile(seller.get(), flags.market_file);
    if (!status.ok()) {
      std::fprintf(stderr, "qpricerd: %s\n", status.ToString().c_str());
      return 1;
    }
    auto report = seller->Publish();
    if (!report.ok() || !report->consistent) {
      std::fprintf(stderr, "qpricerd: market file fails publish checks\n");
      return 1;
    }
    status = shards.AddShard("market", std::move(seller));
    if (!status.ok()) {
      std::fprintf(stderr, "qpricerd: %s\n", status.ToString().c_str());
      return 1;
    }
  } else {
    for (int i = 0; i < flags.shards; ++i) {
      std::string name = "shard" + std::to_string(i);
      auto seller = std::make_unique<qp::Seller>(name);
      qp::BusinessMarketParams params;
      params.num_businesses = flags.businesses;
      params.seed = 7 + static_cast<uint64_t>(i);
      qp::Status status = qp::PopulateBusinessMarket(seller.get(), params);
      if (!status.ok()) {
        std::fprintf(stderr, "qpricerd: %s\n", status.ToString().c_str());
        return 1;
      }
      auto report = seller->Publish();
      if (!report.ok() || !report->consistent) {
        std::fprintf(stderr, "qpricerd: shard %s fails publish checks\n",
                     name.c_str());
        return 1;
      }
      status = shards.AddShard(name, std::move(seller));
      if (!status.ok()) {
        std::fprintf(stderr, "qpricerd: %s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  size_t num_shards = shards.size();

  qp::PricingServerOptions options;
  options.port = flags.port;
  options.num_workers = flags.workers;
  options.max_connections = flags.max_connections;
  options.deadline_ms = flags.deadline_ms;
  options.admission_cap = flags.admission_cap;
  options.warm_on_publish = flags.warm_on_publish;
  options.hot_set_size = flags.hot_set_size;
  options.target_p99_ms = flags.target_p99_ms;
  options.controller_tick_ms = flags.controller_tick_ms;
  qp::PricingServer server(std::move(shards), options);
  qp::Status status = server.Start();
  if (!status.ok()) {
    std::fprintf(stderr, "qpricerd: %s\n", status.ToString().c_str());
    return 1;
  }

  std::signal(SIGTERM, HandleSignal);
  std::signal(SIGINT, HandleSignal);

  std::printf("qpricerd listening on 127.0.0.1:%u (%zu shards)\n",
              static_cast<unsigned>(server.port()), num_shards);
  std::fflush(stdout);

  // Serve until a signal lands or a SHUTDOWN frame flips the stop flag.
  while (g_signal == 0 && !server.stop_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  server.Stop();
  std::printf("qpricerd shut down cleanly\n");
  return 0;
}
