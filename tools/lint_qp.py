#!/usr/bin/env python3
"""Project-specific lint pass for the qp codebase.

Enforces repo conventions that clang-tidy cannot express:

  no-assert          src/ must not use <cassert>/assert(); contracts go
                     through QP_ASSERT / QP_INVARIANT (qp/check/check.h)
                     so they survive NDEBUG and respect QP_CHECK_LEVEL.
  money-float        Money is integer cents; pricing code must never touch
                     float/double (silent rounding breaks Equation 2).
  quote-cache-lock   Every QuoteCache member function that touches entries_
                     or stats_ must take MutexLock first — the cache is
                     shared across BatchPricer worker threads.
  unchecked-status   Status/Result returns must be consumed (assigned,
                     returned, or passed through QP_RETURN_IF_ERROR /
                     QP_ASSIGN_OR_RETURN / an assertion macro), never
                     dropped as a bare statement.
  header-guard       Include guards must be QP_<PATH>_H_ derived from the
                     header's path under src/.
  flow-builder       Solver code (src/qp/pricing/) must not construct a
                     FlowNetwork directly; graphs go through
                     FlowGraphBuilder (qp/flow/graph_builder.h) so every
                     edge carries a FlowEdgeTag and cut extraction cannot
                     silently desynchronize from the edge layout.
  raw-mutex          qp/util/thread_annotations.h is the only file allowed
                     to name std::mutex / std::lock_guard /
                     std::condition_variable and friends; everything else
                     locks through the annotated qp::Mutex / qp::MutexLock
                     so Clang thread-safety analysis sees every lock.
  guarded-by-coverage A class holding a qp::Mutex must say, member by
                     member, what that mutex protects: every non-atomic,
                     non-const data member needs QP_GUARDED_BY /
                     QP_PT_GUARDED_BY (or a NOLINT with a justifying
                     comment, e.g. written-before-threads-exist state).

A line carrying `// NOLINT(<rule>)` is exempt from that rule (for the
rare true negative, e.g. a void method that shares a name with a
Status-returning one). A region between `// NOLINTBEGIN(<rule>)` and
`// NOLINTEND(<rule>)` is exempt as a block; every use must carry a
comment justifying it.

Exit status: 0 clean, 1 findings, 2 usage error.
Usage: tools/lint_qp.py [root]   (default root: src/)
"""

import os
import re
import sys

# Functions returning Status/Result whose value must not be dropped.
# Method names only — the linter matches `<expr>.Name(` and `Name(` calls
# used as full statements.
STATUS_RETURNING = {
    "AddRelation",
    "SetColumn",
    "SetUniform",
    "Insert",
    "Set",
    "Watch",
    "Price",
    "PriceBundle",
    "PriceUnion",
}

STRING_OR_COMMENT = re.compile(r'"(?:[^"\\]|\\.)*"|//.*$')

NOLINT_BEGIN = re.compile(r"NOLINTBEGIN\((\w[\w-]*)\)")
NOLINT_END = re.compile(r"NOLINTEND\((\w[\w-]*)\)")


def strip_strings_and_comments(line: str) -> str:
    return STRING_OR_COMMENT.sub('""', line)


def iter_source_files(root):
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                yield os.path.join(dirpath, name)


def in_block_comment_mask(lines):
    """Yields (line, inside_block_comment) pairs."""
    inside = False
    for line in lines:
        yield line, inside
        # Cheap state machine; good enough for this codebase's comment style.
        stripped = strip_strings_and_comments(line)
        i = 0
        while i < len(stripped) - 1:
            pair = stripped[i : i + 2]
            if not inside and pair == "/*":
                inside = True
                i += 2
            elif inside and pair == "*/":
                inside = False
                i += 2
            else:
                i += 1


def suppressed_lines(lines, rule):
    """Line numbers (1-based) exempt from `rule` via NOLINT markers."""
    out = set()
    active = False
    for lineno, line in enumerate(lines, 1):
        begin = NOLINT_BEGIN.search(line)
        if begin is not None and begin.group(1) == rule:
            active = True
        if active:
            out.add(lineno)
        end = NOLINT_END.search(line)
        if end is not None and end.group(1) == rule:
            active = False
        if f"NOLINT({rule})" in line:
            out.add(lineno)
    return out


def check_no_assert(path, lines, findings):
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        code = strip_strings_and_comments(line)
        if "<cassert>" in code or "<assert.h>" in code:
            findings.append(
                (path, lineno, "no-assert",
                 "use qp/check/check.h instead of <cassert>"))
        elif re.search(r"(^|[^\w.])assert\s*\(", code):
            findings.append(
                (path, lineno, "no-assert",
                 "use QP_ASSERT/QP_INVARIANT instead of assert()"))


def check_money_float(path, lines, findings):
    if f"{os.sep}pricing{os.sep}" not in path:
        return
    pattern = re.compile(r"\b(float|double)\b")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        code = strip_strings_and_comments(line)
        if pattern.search(code):
            findings.append(
                (path, lineno, "money-float",
                 "pricing code must stay in integer Money (cents); "
                 "no float/double"))


def check_quote_cache_lock(path, lines, findings):
    if not path.endswith(os.sep + "quote_cache.cc"):
        return
    # Walk function bodies; inside each QuoteCache:: body, any touch of
    # entries_/stats_ must be preceded by a MutexLock. A signature may span
    # lines, so arm on `QuoteCache::` and start the body at the next `{`;
    # depths are tracked relative to the enclosing namespace, not zero.
    depth = 0
    pending = False
    body_depth = None  # brace depth inside the current body, or None
    locked = False
    for lineno, line in enumerate(lines, 1):
        code = strip_strings_and_comments(line)
        if body_depth is None and not pending and "QuoteCache::" in code:
            pending = True
            locked = False
        if pending and "{" in code:
            pending = False
            body_depth = depth + 1
        if body_depth is not None and not pending:
            if "MutexLock" in code:
                locked = True
            if re.search(r"\b(entries_|stats_)\b", code) and not locked:
                findings.append(
                    (path, lineno, "quote-cache-lock",
                     "QuoteCache state touched before taking mu_"))
        depth += code.count("{") - code.count("}")
        if body_depth is not None and depth < body_depth:
            body_depth = None


def check_unchecked_status(path, lines, findings):
    names = "|".join(sorted(STATUS_RETURNING))
    # A full-statement call: optional receiver chain, a known name, balanced
    # up to the trailing `;` on the same line. By construction nothing
    # consumes the value — an assignment (`x = db.Insert(...)`), a `return`,
    # a `(void)` cast or a wrapping macro (`QP_RETURN_IF_ERROR(db.Insert(`)
    # all break the receiver-chain anchor and cannot match. (A previous
    # version additionally searched the whole line for consumer tokens like
    # `= ` or `<<`, which let argument text — `db.Insert(rel, x << 2)`,
    # `Set(key, val = fallback)` — mask genuinely dropped returns.)
    call = re.compile(
        r"^\s*(?:[A-Za-z_][\w]*(?:\.|->|::))*(" + names + r")\s*\(.*\)\s*;\s*$")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        if "NOLINT(unchecked-status)" in line:
            continue
        code = strip_strings_and_comments(line)
        m = call.match(code)
        if not m:
            continue
        # A continuation of a consumer macro spanning lines has surplus
        # closing parens; a self-contained statement balances.
        if code.count("(") != code.count(")"):
            continue
        # `.status()`, `.ok()`, `.value()` etc. consume the Result in place.
        if re.search(r"\)\s*\.\s*\w+\s*\(", code):
            continue
        findings.append(
            (path, lineno, "unchecked-status",
             f"result of {m.group(1)}() is dropped; assign it or wrap in "
             "QP_RETURN_IF_ERROR"))


def check_header_guard(path, lines, findings):
    if not path.endswith(".h"):
        return
    rel = path
    marker = "src" + os.sep
    idx = rel.find(marker)
    if idx >= 0:
        rel = rel[idx + len(marker):]
    expected = re.sub(r"[^\w]", "_", rel).upper() + "_"
    if not expected.startswith("QP_"):
        expected = "QP_" + expected  # project guards are QP_-prefixed
    text = "\n".join(lines)
    m = re.search(r"#ifndef\s+(\w+)", text)
    if m is None:
        findings.append((path, 1, "header-guard", "missing include guard"))
        return
    guard = m.group(1)
    if guard != expected:
        findings.append(
            (path, m.string[: m.start()].count("\n") + 1, "header-guard",
             f"guard {guard} should be {expected}"))
        return
    if f"#define {guard}" not in text or f"#endif  // {guard}" not in text:
        findings.append(
            (path, 1, "header-guard",
             f"guard {guard} missing #define or '#endif  // {guard}' trailer"))


def check_flow_builder(path, lines, findings):
    if f"{os.sep}pricing{os.sep}" not in path:
        return
    # Declaring a FlowNetwork value/member (or make_unique'ing one) in
    # solver code bypasses the tag bookkeeping of FlowGraphBuilder.
    pattern = re.compile(
        r"\bFlowNetwork\s+\w+|\bmake_unique<\s*FlowNetwork\s*>|"
        r"\bnew\s+FlowNetwork\b")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        if "NOLINT(flow-builder)" in line:
            continue
        code = strip_strings_and_comments(line)
        if pattern.search(code):
            findings.append(
                (path, lineno, "flow-builder",
                 "solvers must build flow graphs through FlowGraphBuilder "
                 "(qp/flow/graph_builder.h), not a raw FlowNetwork"))


# The wrapper header itself; the one place raw std primitives may appear.
RAW_MUTEX_ALLOWED = "qp/util/thread_annotations.h"

RAW_MUTEX = re.compile(
    r"std::(recursive_|shared_|timed_)?mutex\b|"
    r"std::(lock_guard|unique_lock|scoped_lock|shared_lock)\b|"
    r"std::condition_variable(_any)?\b|"
    r"#include\s+<(mutex|shared_mutex|condition_variable)>")


def check_raw_mutex(path, lines, findings):
    if path.replace(os.sep, "/").endswith(RAW_MUTEX_ALLOWED):
        return
    exempt = suppressed_lines(lines, "raw-mutex")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment or lineno in exempt:
            continue
        code = strip_strings_and_comments(line)
        if RAW_MUTEX.search(code):
            findings.append(
                (path, lineno, "raw-mutex",
                 "lock through qp::Mutex/qp::MutexLock/qp::CondVar "
                 "(qp/util/thread_annotations.h) so thread-safety analysis "
                 "sees it; raw std mutexes are invisible to it"))


# A qp::Mutex member: `Mutex mu_;` / `mutable Mutex mu;`.
MUTEX_MEMBER = re.compile(r"^\s*(?:mutable\s+)?Mutex\s+\w+\s*;")
CLASS_OPEN = re.compile(r"^\s*(?:class|struct)\s+(?:QP_\w+(?:\(.*?\))?\s+)?"
                        r"(\w+)[^;{]*\{")
ANNOTATION = re.compile(r"QP_(?:PT_)?GUARDED_BY\s*\([^)]*\)")


def _member_candidate(code):
    """True if a (single) line inside a class body declares a data member
    that guarded-by-coverage should inspect."""
    stripped = ANNOTATION.sub("", code).strip()
    if not stripped.endswith(";"):
        return False
    if "(" in stripped or ")" in stripped:
        return False  # function declaration (or function-typed member)
    if re.match(r"^(public|private|protected)\s*:", stripped):
        return False
    first = stripped.split()[0] if stripped.split() else ""
    if first in ("using", "typedef", "friend", "static", "enum", "return",
                 "break", "continue", "goto", "delete", "#include", "if",
                 "else", "namespace"):
        return False
    # `name;` alone (e.g. `};`, labels) or expressions aren't declarations.
    if not re.search(r"[\w>&*\]]\s+[\w\[\]]+\s*(?:=[^=].*)?;$", stripped):
        return False
    return True


def check_guarded_by_coverage(path, lines, findings):
    exempt = suppressed_lines(lines, "guarded-by-coverage")
    masked = [
        strip_strings_and_comments(line) if not in_c else ""
        for line, in_c in in_block_comment_mask(lines)
    ]
    # Brace depth at the *start* of each line.
    depth_at = []
    depth = 0
    for code in masked:
        depth_at.append(depth)
        depth += code.count("{") - code.count("}")
    # Pass 1: find class bodies [open, close] holding a qp::Mutex member.
    classes = []  # (name, open_lineno, close_lineno, body_depth)
    stack = []
    depth = 0
    for lineno, code in enumerate(masked, 1):
        m = CLASS_OPEN.match(code)
        opens = code.count("{")
        closes = code.count("}")
        if m is not None and opens > 0:
            stack.append((m.group(1), depth + 1, lineno))
        depth += opens - closes
        while stack and depth < stack[-1][1]:
            name, body_depth, open_lineno = stack.pop()
            classes.append((name, open_lineno, lineno, body_depth))
    # Pass 2: per class, if it holds a Mutex, every candidate member must be
    # annotated, atomic, const, or itself a synchronization object.
    for name, open_lineno, close_lineno, body_depth in classes:
        body = range(open_lineno, close_lineno + 1)
        has_mutex = any(
            MUTEX_MEMBER.match(masked[ln - 1]) for ln in body
            if depth_at[ln - 1] == body_depth)
        if not has_mutex:
            continue
        for ln in body:
            if ln in exempt:
                continue
            code = masked[ln - 1]
            if depth_at[ln - 1] != body_depth:
                continue
            if not _member_candidate(code):
                continue
            if ANNOTATION.search(strip_strings_and_comments(lines[ln - 1])):
                continue
            if re.search(r"\bstd::atomic\b|\bMutex\b|\bCondVar\b", code):
                continue
            # Const exempts the *member*, not a template argument: a
            # shared_ptr<const T> is still a mutable pointer (the RCU head
            # in qp/market/snapshot.h is exactly this shape and must be
            # guarded). Strip <...> before looking for const.
            outside_args = code
            while re.search(r"<[^<>]*>", outside_args):
                outside_args = re.sub(r"<[^<>]*>", "", outside_args)
            if re.search(r"\bconst\b", outside_args):
                continue
            findings.append(
                (path, ln, "guarded-by-coverage",
                 f"class {name} holds a qp::Mutex; member must be "
                 "QP_GUARDED_BY(<mu>) (or const/atomic, or NOLINT with a "
                 "reason)"))


CHECKS = (
    check_no_assert,
    check_money_float,
    check_quote_cache_lock,
    check_unchecked_status,
    check_header_guard,
    check_flow_builder,
    check_raw_mutex,
    check_guarded_by_coverage,
)


def main(argv):
    root = argv[1] if len(argv) > 1 else "src"
    if len(argv) > 2 or root in ("-h", "--help"):
        print(__doc__)
        return 2
    if not os.path.isdir(root):
        print(f"lint_qp: no such directory: {root}", file=sys.stderr)
        return 2
    findings = []
    files = 0
    for path in iter_source_files(root):
        files += 1
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for check in CHECKS:
            check(path, lines, findings)
    for path, lineno, rule, msg in findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    summary = f"lint_qp: {files} files, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
