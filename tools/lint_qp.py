#!/usr/bin/env python3
"""Project-specific lint pass for the qp codebase.

Enforces repo conventions that clang-tidy cannot express:

  no-assert          src/ must not use <cassert>/assert(); contracts go
                     through QP_ASSERT / QP_INVARIANT (qp/check/check.h)
                     so they survive NDEBUG and respect QP_CHECK_LEVEL.
  money-float        Money is integer cents; pricing code must never touch
                     float/double (silent rounding breaks Equation 2).
  quote-cache-lock   Every QuoteCache member function that touches entries_
                     or stats_ must take std::lock_guard first — the cache
                     is shared across BatchPricer worker threads.
  unchecked-status   Status/Result returns must be consumed (assigned,
                     returned, or passed through QP_RETURN_IF_ERROR /
                     QP_ASSIGN_OR_RETURN / an assertion macro), never
                     dropped as a bare statement.
  header-guard       Include guards must be QP_<PATH>_H_ derived from the
                     header's path under src/.
  flow-builder       Solver code (src/qp/pricing/) must not construct a
                     FlowNetwork directly; graphs go through
                     FlowGraphBuilder (qp/flow/graph_builder.h) so every
                     edge carries a FlowEdgeTag and cut extraction cannot
                     silently desynchronize from the edge layout.

A line carrying `// NOLINT(<rule>)` is exempt from that rule (for the
rare true negative, e.g. a void method that shares a name with a
Status-returning one).

Exit status: 0 clean, 1 findings, 2 usage error.
Usage: tools/lint_qp.py [root]   (default root: src/)
"""

import os
import re
import sys

# Functions returning Status/Result whose value must not be dropped.
# Method names only — the linter matches `<expr>.Name(` and `Name(` calls
# used as full statements.
STATUS_RETURNING = {
    "AddRelation",
    "SetColumn",
    "SetUniform",
    "Insert",
    "Set",
    "Watch",
    "Price",
    "PriceBundle",
    "PriceUnion",
}

# Macros / sinks that legitimately consume a Status or Result expression.
CONSUMERS = re.compile(
    r"QP_RETURN_IF_ERROR|QP_ASSIGN_OR_RETURN|QP_ASSERT_OK|ASSERT_OK|"
    r"EXPECT_OK|ASSERT_TRUE|EXPECT_TRUE|ASSERT_FALSE|EXPECT_FALSE|"
    r"QP_ASSERT|QP_INVARIANT|return |= |\breturn\b|<<"
)

STRING_OR_COMMENT = re.compile(r'"(?:[^"\\]|\\.)*"|//.*$')


def strip_strings_and_comments(line: str) -> str:
    return STRING_OR_COMMENT.sub('""', line)


def iter_source_files(root):
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                yield os.path.join(dirpath, name)


def in_block_comment_mask(lines):
    """Yields (line, inside_block_comment) pairs."""
    inside = False
    for line in lines:
        yield line, inside
        # Cheap state machine; good enough for this codebase's comment style.
        stripped = strip_strings_and_comments(line)
        i = 0
        while i < len(stripped) - 1:
            pair = stripped[i : i + 2]
            if not inside and pair == "/*":
                inside = True
                i += 2
            elif inside and pair == "*/":
                inside = False
                i += 2
            else:
                i += 1


def check_no_assert(path, lines, findings):
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        code = strip_strings_and_comments(line)
        if "<cassert>" in code or "<assert.h>" in code:
            findings.append(
                (path, lineno, "no-assert",
                 "use qp/check/check.h instead of <cassert>"))
        elif re.search(r"(^|[^\w.])assert\s*\(", code):
            findings.append(
                (path, lineno, "no-assert",
                 "use QP_ASSERT/QP_INVARIANT instead of assert()"))


def check_money_float(path, lines, findings):
    if f"{os.sep}pricing{os.sep}" not in path:
        return
    pattern = re.compile(r"\b(float|double)\b")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        code = strip_strings_and_comments(line)
        if pattern.search(code):
            findings.append(
                (path, lineno, "money-float",
                 "pricing code must stay in integer Money (cents); "
                 "no float/double"))


def check_quote_cache_lock(path, lines, findings):
    if not path.endswith(os.sep + "quote_cache.cc"):
        return
    # Walk function bodies at brace depth; inside each QuoteCache:: body,
    # any touch of entries_/stats_ must be preceded by a lock_guard.
    depth = 0
    body_start = None
    locked = False
    for lineno, line in enumerate(lines, 1):
        code = strip_strings_and_comments(line)
        if depth == 0 and "QuoteCache::" in code and "{" in code:
            body_start = lineno
            locked = False
        if body_start is not None:
            if "std::lock_guard" in code or "std::unique_lock" in code:
                locked = True
            if re.search(r"\b(entries_|stats_)\b", code) and not locked:
                findings.append(
                    (path, lineno, "quote-cache-lock",
                     "QuoteCache state touched before taking mu_"))
        depth += code.count("{") - code.count("}")
        if depth == 0 and body_start is not None and "}" in code:
            body_start = None


def check_unchecked_status(path, lines, findings):
    names = "|".join(sorted(STATUS_RETURNING))
    # A full-statement call: optional receiver chain, a known name, balanced
    # up to the trailing `;` on the same line, nothing consuming the value.
    call = re.compile(
        r"^\s*(?:[A-Za-z_][\w]*(?:\.|->|::))*(" + names + r")\s*\(.*\)\s*;\s*$")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        if "NOLINT(unchecked-status)" in line:
            continue
        code = strip_strings_and_comments(line)
        m = call.match(code)
        if not m:
            continue
        # A continuation of a consumer macro spanning lines has surplus
        # closing parens; a self-contained statement balances.
        if code.count("(") != code.count(")"):
            continue
        if CONSUMERS.search(code):
            continue
        # `.status()`, `.ok()`, `.value()` etc. consume the Result in place.
        if re.search(r"\)\s*\.\s*\w+\s*\(", code):
            continue
        findings.append(
            (path, lineno, "unchecked-status",
             f"result of {m.group(1)}() is dropped; assign it or wrap in "
             "QP_RETURN_IF_ERROR"))


def check_header_guard(path, lines, findings):
    if not path.endswith(".h"):
        return
    rel = path
    marker = "src" + os.sep
    idx = rel.find(marker)
    if idx >= 0:
        rel = rel[idx + len(marker):]
    expected = re.sub(r"[^\w]", "_", rel).upper() + "_"
    if not expected.startswith("QP_"):
        expected = "QP_" + expected  # project guards are QP_-prefixed
    text = "\n".join(lines)
    m = re.search(r"#ifndef\s+(\w+)", text)
    if m is None:
        findings.append((path, 1, "header-guard", "missing include guard"))
        return
    guard = m.group(1)
    if guard != expected:
        findings.append(
            (path, m.string[: m.start()].count("\n") + 1, "header-guard",
             f"guard {guard} should be {expected}"))
        return
    if f"#define {guard}" not in text or f"#endif  // {guard}" not in text:
        findings.append(
            (path, 1, "header-guard",
             f"guard {guard} missing #define or '#endif  // {guard}' trailer"))


def check_flow_builder(path, lines, findings):
    if f"{os.sep}pricing{os.sep}" not in path:
        return
    # Declaring a FlowNetwork value/member (or make_unique'ing one) in
    # solver code bypasses the tag bookkeeping of FlowGraphBuilder.
    pattern = re.compile(
        r"\bFlowNetwork\s+\w+|\bmake_unique<\s*FlowNetwork\s*>|"
        r"\bnew\s+FlowNetwork\b")
    for lineno, (line, in_comment) in enumerate(in_block_comment_mask(lines), 1):
        if in_comment:
            continue
        if "NOLINT(flow-builder)" in line:
            continue
        code = strip_strings_and_comments(line)
        if pattern.search(code):
            findings.append(
                (path, lineno, "flow-builder",
                 "solvers must build flow graphs through FlowGraphBuilder "
                 "(qp/flow/graph_builder.h), not a raw FlowNetwork"))


CHECKS = (
    check_no_assert,
    check_money_float,
    check_quote_cache_lock,
    check_unchecked_status,
    check_header_guard,
    check_flow_builder,
)


def main(argv):
    root = argv[1] if len(argv) > 1 else "src"
    if len(argv) > 2 or root in ("-h", "--help"):
        print(__doc__)
        return 2
    if not os.path.isdir(root):
        print(f"lint_qp: no such directory: {root}", file=sys.stderr)
        return 2
    findings = []
    files = 0
    for path in iter_source_files(root):
        files += 1
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        for check in CHECKS:
            check(path, lines, findings)
    for path, lineno, rule, msg in findings:
        print(f"{path}:{lineno}: [{rule}] {msg}")
    summary = f"lint_qp: {files} files, {len(findings)} finding(s)"
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
