#!/usr/bin/env python3
"""Include-DAG layering checker for the qp codebase.

The library is layered (DESIGN.md §13); an `#include` may only point at the
same module or a module on a strictly lower layer:

    layer 0   qp/util        (no qp dependencies at all)
    layer 1   qp/check       (contract machinery; implements the
                              qp/util/contract.h seam)
    layer 2   qp/obs, qp/relational
    layer 3   qp/query
    layer 4   qp/eval
    layer 5   qp/determinacy, qp/flow
    layer 6   qp/pricing
    layer 7   qp/market
    layer 8   qp/workload
    layer 9   qp/selfcheck
    layer 10  qp/server      (the qpricerd serving core: wire protocol,
                              shard map, connection handling)
    (top)     tools/, tests/, bench/, examples/ — may include anything

Enforced per include edge, so a violation names the exact file and line:

  * unknown-module   an #include "qp/..." pointing into a module not in the
                     map above (adding a module means placing it here and in
                     DESIGN.md §13, deliberately);
  * layer-violation  an include of a module on the same or a higher layer
                     (same-layer modules are independent by construction:
                     qp/obs must not know about qp/relational);
  * include-cycle    any cycle in the header include graph, reported with
                     the full path (belt and braces: the layer map already
                     rules out inter-module cycles, this also catches
                     intra-module header cycles).

Exit status: 0 clean, 1 violations, 2 usage error.
Usage: tools/check_layering.py [root]   (default root: src/)
"""

import os
import re
import sys

# module -> layer index. An include from module A into module B is legal
# iff A == B or LAYER[B] < LAYER[A].
LAYERS = {
    "util": 0,
    "check": 1,
    "obs": 2,
    "relational": 2,
    "query": 3,
    "eval": 4,
    "determinacy": 5,
    "flow": 5,
    "pricing": 6,
    "market": 7,
    "workload": 8,
    "selfcheck": 9,
    "server": 10,
}

INCLUDE = re.compile(r'^\s*#include\s+"(qp/([a-z_]+)/[^"]+)"')


def iter_source_files(root):
    for dirpath, _, filenames in os.walk(root):
        for name in sorted(filenames):
            if name.endswith((".cc", ".h")):
                yield os.path.join(dirpath, name)


def module_of(path, root):
    """qp module name for a file under root, or None (e.g. a stray file)."""
    rel = os.path.relpath(path, root)
    parts = rel.split(os.sep)
    if len(parts) >= 2 and parts[0] == "qp":
        return parts[1]
    return None


def collect_edges(root):
    """Returns (file_edges, findings) where file_edges maps an include path
    like "qp/flow/max_flow.h" to the list of (lineno, target) includes."""
    findings = []
    file_edges = {}
    for path in iter_source_files(root):
        module = module_of(path, root)
        if module is None:
            continue
        if module not in LAYERS:
            findings.append(
                (path, 1, "unknown-module",
                 f"module qp/{module} is not in the layer map; place it in "
                 "tools/check_layering.py and DESIGN.md §13"))
            continue
        rel = os.path.relpath(path, root).replace(os.sep, "/")
        edges = []
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                m = INCLUDE.match(line)
                if m is None:
                    continue
                target, target_module = m.group(1), m.group(2)
                edges.append((lineno, target))
                if target_module == module:
                    continue
                target_layer = LAYERS.get(target_module)
                if target_layer is None:
                    findings.append(
                        (path, lineno, "unknown-module",
                         f"include of unmapped module qp/{target_module}"))
                elif target_layer >= LAYERS[module]:
                    findings.append(
                        (path, lineno, "layer-violation",
                         f"qp/{module} (layer {LAYERS[module]}) must not "
                         f"include qp/{target_module} (layer "
                         f"{target_layer}); the DAG points strictly "
                         "downward"))
        file_edges[rel] = edges
    return file_edges, findings


def find_include_cycle(file_edges):
    """DFS over the header graph; returns one cycle as a path, or None."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {}
    stack = []

    def visit(node):
        color[node] = GREY
        stack.append(node)
        for _, target in file_edges.get(node, ()):
            if target not in file_edges:
                continue  # include of a file outside root; not our edge
            state = color.get(target, WHITE)
            if state == GREY:
                return stack[stack.index(target):] + [target]
            if state == WHITE:
                cycle = visit(target)
                if cycle is not None:
                    return cycle
        stack.pop()
        color[node] = BLACK
        return None

    for node in sorted(file_edges):
        if color.get(node, WHITE) == WHITE:
            cycle = visit(node)
            if cycle is not None:
                return cycle
    return None


def main(argv):
    root = argv[1] if len(argv) > 1 else "src"
    if len(argv) > 2 or root in ("-h", "--help"):
        print(__doc__)
        return 2
    if not os.path.isdir(root):
        print(f"check_layering: no such directory: {root}", file=sys.stderr)
        return 2
    file_edges, findings = collect_edges(root)
    cycle = find_include_cycle(file_edges)
    if cycle is not None:
        findings.append(
            (os.path.join(root, cycle[0]), 1, "include-cycle",
             "header include cycle: " + " -> ".join(cycle)))
    for path, lineno, rule, msg in sorted(findings):
        print(f"{path}:{lineno}: [{rule}] {msg}")
    summary = (f"check_layering: {len(file_edges)} files, "
               f"{len(findings)} violation(s)")
    print(summary, file=sys.stderr)
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
