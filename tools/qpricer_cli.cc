// qpricer_cli — command-line front end for the query-pricing marketplace.
//
// Usage:
//   qpricer_cli [serving flags] <market-file> [command args...]
//   qpricer_cli [serving flags] <market-file>   # interactive (reads stdin)
//
// Serving flags (before the market file):
//   --deadline-ms=N     per-quote serving deadline; on expiry quotes
//                       degrade to an admissible approximate price
//                       instead of erroring (0 = none, default)
//   --threads=N         worker threads for batch quoting (0 = hardware)
//   --admission-cap=N   max queries admitted per batch (0 = unlimited)
//
// Commands:
//   price <datalog query>      quote the arbitrage-free price
//   buy <buyer> <query>        purchase: price + answers + receipt
//   explain <query>            show uncertain answers for the empty view
//                              set (why the query costs money at all)
//   consistency                check the price points for arbitrage
//   catalog                    list relations, columns and price points
//   metrics [json]             dump serving-path metrics (text or JSON)
//   save <path>                write the offering back to a file
//   help, quit
//
// The market file format is documented in qp/market/catalog_io.h; see
// examples/data/fig1.market for the paper's running example.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "qp/determinacy/selection_determinacy.h"
#include "qp/market/catalog_io.h"
#include "qp/market/marketplace.h"
#include "qp/query/parser.h"
#include "qp/util/strings.h"

namespace {

void PrintCatalog(const qp::Seller& seller) {
  const qp::Schema& schema = seller.catalog().schema();
  for (qp::RelationId r = 0; r < schema.num_relations(); ++r) {
    std::printf("relation %s(", schema.relation_name(r).c_str());
    for (int p = 0; p < schema.arity(r); ++p) {
      std::printf("%s%s", p > 0 ? ", " : "",
                  schema.attr_name(qp::AttrRef{r, p}).c_str());
    }
    std::printf(")  [%zu rows]\n", seller.db().NumTuples(r));
  }
  std::printf("%zu explicit price points\n", seller.prices().size());
}

int RunCommand(qp::Seller& seller, qp::Marketplace& market,
               const std::string& command, const std::string& args) {
  if (command == "price") {
    auto quote = market.Quote(args);
    if (!quote.ok()) {
      std::printf("error: %s\n", quote.status().ToString().c_str());
      return 1;
    }
    std::printf("price: %s  [%s: %s]\n",
                qp::MoneyToString(quote->solution.price).c_str(),
                quote->solver.c_str(), quote->explanation.c_str());
    for (const qp::SelectionView& v : quote->solution.support) {
      std::printf("  support %s @ %s\n",
                  SelectionViewToString(seller.catalog(), v).c_str(),
                  qp::MoneyToString(seller.prices().Get(v)).c_str());
    }
    return 0;
  }
  if (command == "buy") {
    std::istringstream in(args);
    std::string buyer;
    in >> buyer;
    std::string query;
    std::getline(in, query);
    auto purchase = market.Purchase(buyer, std::string(qp::Trim(query)));
    if (!purchase.ok()) {
      std::printf("error: %s\n", purchase.status().ToString().c_str());
      return 1;
    }
    std::printf("order #%lld: %s paid %s for %zu row(s)\n",
                static_cast<long long>(purchase->receipt.order_id),
                purchase->receipt.buyer.c_str(),
                qp::MoneyToString(purchase->receipt.price).c_str(),
                purchase->receipt.answer_rows);
    for (const qp::Tuple& t : purchase->answers) {
      std::printf(" ");
      for (qp::ValueId v : t) {
        std::printf(" %s",
                    seller.catalog().dict().Get(v).ToString().c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  if (command == "explain") {
    auto query = qp::ParseQuery(seller.catalog().schema(), args);
    if (!query.ok()) {
      std::printf("error: %s\n", query.status().ToString().c_str());
      return 1;
    }
    auto explanation =
        qp::ExplainSelectionDeterminacy(seller.db(), {}, *query);
    if (!explanation.ok()) {
      std::printf("error: %s\n", explanation.status().ToString().c_str());
      return 1;
    }
    if (explanation->determined) {
      std::printf("the empty view set already determines this query "
                  "(price 0)\n");
      return 0;
    }
    std::printf("open answers without purchasing any views:\n");
    for (const qp::Tuple& t : explanation->uncertain_answers) {
      std::printf(" ");
      for (qp::ValueId v : t) {
        std::printf(" %s",
                    seller.catalog().dict().Get(v).ToString().c_str());
      }
      std::printf("\n");
    }
    return 0;
  }
  if (command == "consistency") {
    auto report = qp::CheckSelectionConsistency(seller.catalog(),
                                                seller.prices());
    std::printf("consistent: %s\n", report.consistent ? "yes" : "no");
    for (const auto& v : report.violations) {
      std::printf("  %s\n", v.ToString(seller.catalog()).c_str());
    }
    return report.consistent ? 0 : 1;
  }
  if (command == "catalog") {
    PrintCatalog(seller);
    return 0;
  }
  if (command == "metrics") {
    qp::MetricsSnapshot snapshot = market.MetricsSnapshot();
    std::string rendered = (qp::Trim(args) == "json")
                               ? qp::MetricsToJson(snapshot)
                               : qp::MetricsToText(snapshot);
    std::printf("%s", rendered.c_str());
    if (!rendered.empty() && rendered.back() != '\n') std::printf("\n");
    return 0;
  }
  if (command == "ledger") {
    for (const qp::Receipt& r : market.ledger()) {
      std::printf("#%lld %s %s \"%s\"\n",
                  static_cast<long long>(r.order_id), r.buyer.c_str(),
                  qp::MoneyToString(r.price).c_str(), r.query_text.c_str());
    }
    std::printf("revenue: %s\n",
                qp::MoneyToString(market.total_revenue()).c_str());
    return 0;
  }
  if (command == "save") {
    auto status = qp::SaveSellerToFile(seller, args);
    std::printf("%s\n", status.ok() ? "saved" : status.ToString().c_str());
    return status.ok() ? 0 : 1;
  }
  if (command == "help") {
    std::printf(
        "commands: price <q> | buy <buyer> <q> | explain <q> | consistency "
        "| catalog | ledger | metrics [json] | save <path> | quit\n");
    return 0;
  }
  std::printf("unknown command '%s' (try: help)\n", command.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  qp::Marketplace::ServingOptions serving;
  int arg_index = 1;
  while (arg_index < argc && std::strncmp(argv[arg_index], "--", 2) == 0) {
    const char* arg = argv[arg_index];
    if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
      serving.deadline_ms = std::strtoll(arg + 14, nullptr, 10);
    } else if (std::strncmp(arg, "--threads=", 10) == 0) {
      serving.num_threads = std::atoi(arg + 10);
    } else if (std::strncmp(arg, "--admission-cap=", 16) == 0) {
      serving.admission_cap = std::atoi(arg + 16);
    } else {
      std::fprintf(stderr, "unknown flag %s\n", arg);
      return 2;
    }
    ++arg_index;
  }
  if (arg_index >= argc) {
    std::fprintf(stderr,
                 "usage: %s [--deadline-ms=N] [--threads=N] "
                 "[--admission-cap=N] <market-file> [command args...]\n",
                 argv[0]);
    return 2;
  }
  qp::Seller seller("cli");
  qp::Status loaded = qp::LoadSellerFromFile(&seller, argv[arg_index]);
  if (!loaded.ok()) {
    std::fprintf(stderr, "cannot load %s: %s\n", argv[arg_index],
                 loaded.ToString().c_str());
    return 2;
  }
  qp::Marketplace market(&seller, serving);

  if (arg_index + 1 < argc) {
    std::string command = argv[arg_index + 1];
    std::string args;
    for (int i = arg_index + 2; i < argc; ++i) {
      if (i > arg_index + 2) args += " ";
      args += argv[i];
    }
    return RunCommand(seller, market, command, args);
  }

  std::printf("qpricer marketplace (%zu price points). Type 'help'.\n",
              seller.prices().size());
  std::string line;
  while (std::printf("> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    std::string trimmed(qp::Trim(line));
    if (trimmed.empty()) continue;
    if (trimmed == "quit" || trimmed == "exit") break;
    size_t space = trimmed.find(' ');
    std::string command = trimmed.substr(0, space);
    std::string args =
        space == std::string::npos
            ? ""
            : std::string(qp::Trim(trimmed.substr(space + 1)));
    RunCommand(seller, market, command, args);
  }
  return 0;
}
