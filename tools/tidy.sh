#!/usr/bin/env bash
# clang-tidy gate over the library sources, driven by the repo's .clang-tidy
# (bugprone / performance / concurrency / narrowing, warnings-as-errors).
# Skips (exit 0 with a notice) when clang-tidy is not installed; CI installs
# it and enforces. Extra arguments are forwarded to clang-tidy.
set -u

cd "$(dirname "$0")/.."

TIDY=${CLANG_TIDY:-clang-tidy}
if ! command -v "$TIDY" > /dev/null 2>&1; then
  echo "tidy: $TIDY not installed; skipping (CI enforces)"
  exit 0
fi

BUILD_DIR=${BUILD_DIR:-build}
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null \
    || exit 1
fi

files=$(git ls-files 'src/**/*.cc')
# shellcheck disable=SC2086
"$TIDY" -p "$BUILD_DIR" --warnings-as-errors='*' --quiet "$@" $files
status=$?
if [ $status -eq 0 ]; then
  echo "tidy: OK ($(echo "$files" | wc -l) files)"
fi
exit $status
