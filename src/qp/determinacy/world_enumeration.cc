#include "qp/determinacy/world_enumeration.h"

#include <algorithm>
#include <unordered_map>

#include "qp/eval/evaluator.h"
#include "qp/util/hash.h"

namespace qp {
namespace {

/// Relations mentioned by a bundle, appended unsorted (callers sort and
/// deduplicate the combined list once).
void CollectRelations(const QueryBundle& bundle, std::vector<RelationId>* out) {
  for (const UnionQuery& uq : bundle.queries) {
    for (const ConjunctiveQuery& cq : uq.disjuncts) {
      for (const Atom& a : cq.atoms()) out->push_back(a.rel);
    }
  }
}

/// Sorted, deduplicated relations of both bundles — a flat vector instead
/// of a std::set; two bundles mention a handful of relations.
std::vector<RelationId> RelationsOfBundles(const QueryBundle& views,
                                           const QueryBundle& query) {
  std::vector<RelationId> rels;
  CollectRelations(views, &rels);
  CollectRelations(query, &rels);
  std::sort(rels.begin(), rels.end());
  rels.erase(std::unique(rels.begin(), rels.end()), rels.end());
  return rels;
}

/// The answer of a bundle on an instance: one sorted answer list per
/// member query.
Result<std::vector<std::vector<Tuple>>> EvalBundle(const Instance& db,
                                                   const QueryBundle& bundle) {
  Evaluator eval(&db);
  std::vector<std::vector<Tuple>> out;
  out.reserve(bundle.queries.size());
  for (const UnionQuery& uq : bundle.queries) {
    auto answers = eval.EvalUnion(uq);
    if (!answers.ok()) return answers.status();
    out.push_back(std::move(*answers));
  }
  return out;
}

/// Componentwise subset test on bundle images (answer lists are sorted).
bool BundleImageSubset(const std::vector<std::vector<Tuple>>& a,
                       const std::vector<std::vector<Tuple>>& b) {
  for (size_t i = 0; i < a.size(); ++i) {
    if (!std::includes(b[i].begin(), b[i].end(), a[i].begin(),
                       a[i].end())) {
      return false;
    }
  }
  return true;
}

/// Flattens a bundle image into a comparable key.
std::vector<uint32_t> ImageKey(const std::vector<std::vector<Tuple>>& image) {
  std::vector<uint32_t> key;
  size_t total = 0;
  for (const auto& answers : image) {
    total += 1 + answers.size();
    for (const Tuple& t : answers) total += t.size();
  }
  key.reserve(total);
  for (const auto& answers : image) {
    key.push_back(0xfffffffeu);  // query separator
    for (const Tuple& t : answers) {
      key.push_back(0xffffffffu);  // tuple separator
      key.insert(key.end(), t.begin(), t.end());
    }
  }
  return key;
}

struct ImageKeyHasher {
  size_t operator()(const std::vector<uint32_t>& key) const {
    return HashRange(key);
  }
};

struct CandidateSpace {
  std::vector<std::pair<RelationId, Tuple>> tuples;
};

/// All candidate tuples (column cross products) of the given relations.
Result<CandidateSpace> BuildCandidateSpace(const Catalog& catalog,
                                           const std::vector<RelationId>& rels,
                                           size_t max_tuples) {
  CandidateSpace space;
  for (RelationId rel : rels) {
    const int arity = catalog.schema().arity(rel);
    std::vector<const std::vector<ValueId>*> cols(arity);
    size_t count = 1;
    for (int p = 0; p < arity; ++p) {
      AttrRef attr{rel, p};
      if (!catalog.HasColumn(attr)) {
        return Status::FailedPrecondition(
            "world enumeration requires a column on " +
            catalog.schema().AttrToString(attr));
      }
      cols[p] = &catalog.Column(attr);
      count *= cols[p]->size();
    }
    if (count == 0) continue;
    if (space.tuples.size() + count > max_tuples) {
      return Status::ResourceExhausted(
          "candidate tuple space exceeds max_candidate_tuples (" +
          std::to_string(max_tuples) + "); world enumeration would need 2^" +
          std::to_string(space.tuples.size() + count) + " worlds");
    }
    Tuple tuple(arity);
    std::vector<size_t> idx(arity, 0);
    while (true) {
      for (int p = 0; p < arity; ++p) tuple[p] = (*cols[p])[idx[p]];
      space.tuples.emplace_back(rel, tuple);
      int p = arity - 1;
      while (p >= 0 && ++idx[p] == cols[p]->size()) idx[p--] = 0;
      if (p < 0) break;
    }
  }
  return space;
}

/// Invokes `fn(world)` for every world over the candidate space, visiting
/// worlds in Gray-code order so consecutive worlds differ by one tuple.
/// `fn` returns false to abort the enumeration.
template <typename Fn>
Status ForEachWorld(const Instance& db, const CandidateSpace& space, Fn fn) {
  Instance world(&db.catalog());
  const size_t n = space.tuples.size();
  if (!fn(world)) return Status::Ok();
  for (uint64_t i = 1; i < (uint64_t{1} << n); ++i) {
    int bit = __builtin_ctzll(i);
    const auto& [rel, tuple] = space.tuples[bit];
    if (world.Contains(rel, tuple)) {
      world.Erase(rel, tuple);
    } else {
      auto inserted = world.Insert(rel, tuple);
      if (!inserted.ok()) return inserted.status();
    }
    if (!fn(world)) return Status::Ok();
  }
  return Status::Ok();
}

}  // namespace

Result<bool> EnumerationDetermines(const Instance& db,
                                   const QueryBundle& views,
                                   const QueryBundle& query,
                                   const WorldEnumerationOptions& options) {
  auto space = BuildCandidateSpace(db.catalog(), RelationsOfBundles(views, query),
                                   options.max_candidate_tuples);
  if (!space.ok()) return space.status();

  auto v_image = EvalBundle(db, views);
  if (!v_image.ok()) return v_image.status();
  auto q_image = EvalBundle(db, query);
  if (!q_image.ok()) return q_image.status();

  bool determined = true;
  Status inner = Status::Ok();
  Status loop = ForEachWorld(db, *space, [&](const Instance& world) {
    auto v = EvalBundle(world, views);
    if (!v.ok()) {
      inner = v.status();
      return false;
    }
    if (*v != *v_image) return true;  // not a possible world
    auto q = EvalBundle(world, query);
    if (!q.ok()) {
      inner = q.status();
      return false;
    }
    if (*q != *q_image) {
      determined = false;
      return false;
    }
    return true;
  });
  QP_RETURN_IF_ERROR(loop);
  QP_RETURN_IF_ERROR(inner);
  return determined;
}

Result<bool> RestrictedEnumerationDetermines(
    const Instance& db, const QueryBundle& views, const QueryBundle& query,
    const WorldEnumerationOptions& options) {
  auto space = BuildCandidateSpace(db.catalog(), RelationsOfBundles(views, query),
                                   options.max_candidate_tuples);
  if (!space.ok()) return space.status();

  auto v_image = EvalBundle(db, views);
  if (!v_image.ok()) return v_image.status();

  // Group worlds by their view image. For every group whose image is
  // contained in V(D), all members must agree on Q. Only membership and
  // the stored Q-image matter, so a hash map beats the ordered map this
  // hot loop used to rebalance on every fresh image.
  std::unordered_map<std::vector<uint32_t>, std::vector<std::vector<Tuple>>,
                     ImageKeyHasher>
      groups;
  bool determined = true;
  Status inner = Status::Ok();
  Status loop = ForEachWorld(db, *space, [&](const Instance& world) {
    auto v = EvalBundle(world, views);
    if (!v.ok()) {
      inner = v.status();
      return false;
    }
    if (!BundleImageSubset(*v, *v_image)) return true;
    auto q = EvalBundle(world, query);
    if (!q.ok()) {
      inner = q.status();
      return false;
    }
    auto [it, fresh] = groups.emplace(ImageKey(*v), *q);
    if (!fresh && it->second != *q) {
      determined = false;
      return false;
    }
    return true;
  });
  QP_RETURN_IF_ERROR(loop);
  QP_RETURN_IF_ERROR(inner);
  return determined;
}

}  // namespace qp
