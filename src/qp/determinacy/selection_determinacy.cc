#include "qp/determinacy/selection_determinacy.h"

#include <algorithm>
#include <set>

#include "qp/eval/evaluator.h"

namespace qp {

CoverageIndex::CoverageIndex(const std::vector<SelectionView>& views) {
  for (const SelectionView& v : views) covered_.insert(v);
}

Instance BuildDmin(const Instance& db, const CoverageIndex& coverage,
                   const std::vector<RelationId>& relations) {
  Instance dmin(&db.catalog());
  for (RelationId rel : relations) {
    for (const Tuple& t : db.Relation(rel)) {
      if (coverage.CoversTuple(rel, t)) {
        auto inserted = dmin.Insert(rel, t);
        (void)inserted;  // cannot fail: t satisfied the constraints in db
      }
    }
  }
  return dmin;
}

namespace {

/// Enumerates the cross product of the columns of `rel`, invoking `fn` on
/// each candidate tuple. Returns false if `fn` returns false (abort).
template <typename Fn>
bool ForEachCandidateTuple(const Catalog& catalog, RelationId rel, Fn fn) {
  const int arity = catalog.schema().arity(rel);
  std::vector<const std::vector<ValueId>*> cols(arity);
  for (int p = 0; p < arity; ++p) {
    cols[p] = &catalog.Column(AttrRef{rel, p});
    if (cols[p]->empty()) return true;  // empty column: no candidates
  }
  Tuple tuple(arity);
  std::vector<size_t> idx(arity, 0);
  while (true) {
    for (int p = 0; p < arity; ++p) tuple[p] = (*cols[p])[idx[p]];
    if (!fn(tuple)) return false;
    int p = arity - 1;
    while (p >= 0 && ++idx[p] == cols[p]->size()) idx[p--] = 0;
    if (p < 0) return true;
  }
}

}  // namespace

Result<Instance> BuildDmax(const Instance& db, const CoverageIndex& coverage,
                           const std::vector<RelationId>& relations,
                           size_t max_tuples) {
  const Catalog& catalog = db.catalog();
  // Size guard.
  size_t total = 0;
  for (RelationId rel : relations) {
    size_t count = 1;
    for (int p = 0; p < catalog.schema().arity(rel); ++p) {
      AttrRef attr{rel, p};
      if (!catalog.HasColumn(attr)) {
        return Status::FailedPrecondition(
            "BuildDmax requires a column on " +
            catalog.schema().AttrToString(attr));
      }
      count *= catalog.Column(attr).size();
      if (count > max_tuples) break;
    }
    total += count;
    if (total > max_tuples) {
      return Status::ResourceExhausted(
          "candidate tuple space too large for Dmax construction");
    }
  }

  Instance dmax = BuildDmin(db, coverage, relations);
  for (RelationId rel : relations) {
    ForEachCandidateTuple(catalog, rel, [&](const Tuple& t) {
      if (!coverage.CoversTuple(rel, t)) {
        auto inserted = dmax.Insert(rel, t);
        (void)inserted;
      }
      return true;
    });
  }
  return dmax;
}

std::vector<RelationId> RelationsOf(const ConjunctiveQuery& q) {
  std::set<RelationId> rels;
  for (const Atom& a : q.atoms()) rels.insert(a.rel);
  return std::vector<RelationId>(rels.begin(), rels.end());
}

std::vector<RelationId> RelationsOf(const std::vector<ConjunctiveQuery>& qs) {
  std::set<RelationId> rels;
  for (const ConjunctiveQuery& q : qs) {
    for (const Atom& a : q.atoms()) rels.insert(a.rel);
  }
  return std::vector<RelationId>(rels.begin(), rels.end());
}

Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const std::vector<ConjunctiveQuery>& qs) {
  std::vector<RelationId> relations = RelationsOf(qs);
  CoverageIndex coverage(views);
  Instance dmin = BuildDmin(db, coverage, relations);
  auto dmax = BuildDmax(db, coverage, relations);
  if (!dmax.ok()) return dmax.status();
  Evaluator min_eval(&dmin);
  Evaluator max_eval(&*dmax);
  for (const ConjunctiveQuery& q : qs) {
    auto lo = min_eval.EvalToSet(q);
    if (!lo.ok()) return lo.status();
    auto hi = max_eval.EvalToSet(q);
    if (!hi.ok()) return hi.status();
    if (*lo != *hi) return false;
  }
  return true;
}

Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const ConjunctiveQuery& q) {
  return SelectionViewsDetermine(db, views,
                                 std::vector<ConjunctiveQuery>{q});
}

Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const UnionQuery& q) {
  std::vector<RelationId> relations = RelationsOf(q.disjuncts);
  CoverageIndex coverage(views);
  Instance dmin = BuildDmin(db, coverage, relations);
  auto dmax = BuildDmax(db, coverage, relations);
  if (!dmax.ok()) return dmax.status();
  Evaluator min_eval(&dmin);
  Evaluator max_eval(&*dmax);
  auto lo = min_eval.EvalUnion(q);
  if (!lo.ok()) return lo.status();
  auto hi = max_eval.EvalUnion(q);
  if (!hi.ok()) return hi.status();
  return *lo == *hi;
}

Result<DeterminacyExplanation> ExplainSelectionDeterminacy(
    const Instance& db, const std::vector<SelectionView>& views,
    const ConjunctiveQuery& q, size_t max_examples) {
  std::vector<RelationId> relations = RelationsOf({q});
  CoverageIndex coverage(views);
  Instance dmin = BuildDmin(db, coverage, relations);
  auto dmax = BuildDmax(db, coverage, relations);
  if (!dmax.ok()) return dmax.status();
  Evaluator min_eval(&dmin);
  Evaluator max_eval(&*dmax);
  auto lo = min_eval.EvalToSet(q);
  if (!lo.ok()) return lo.status();
  auto hi = max_eval.Eval(q);  // sorted
  if (!hi.ok()) return hi.status();
  DeterminacyExplanation out;
  for (const Tuple& t : *hi) {
    if (lo->count(t) == 0) {
      if (out.uncertain_answers.size() < max_examples) {
        out.uncertain_answers.push_back(t);
      }
    }
  }
  // Monotone query: Q(Dmin) ⊆ Q(Dmax), so the difference being empty is
  // exactly determinacy.
  out.determined = out.uncertain_answers.empty();
  return out;
}

bool SelectionViewsDetermineSelection(const Catalog& catalog,
                                      const std::vector<SelectionView>& views,
                                      const SelectionView& target) {
  for (const SelectionView& v : views) {
    if (v == target) return true;
  }
  const int arity = catalog.schema().arity(target.attr.rel);
  CoverageIndex coverage(views);
  for (int p = 0; p < arity; ++p) {
    AttrRef attr{target.attr.rel, p};
    if (!catalog.HasColumn(attr)) continue;
    bool full = true;
    for (ValueId v : catalog.Column(attr)) {
      if (!coverage.CoversValue(attr, v)) {
        full = false;
        break;
      }
    }
    if (full && !catalog.Column(attr).empty()) return true;
  }
  return false;
}

}  // namespace qp
