#ifndef QP_DETERMINACY_SELECTION_DETERMINACY_H_
#define QP_DETERMINACY_SELECTION_DETERMINACY_H_

#include <unordered_set>
#include <vector>

#include "qp/query/selection_view.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Fast membership structure over a set of selection views: answers "is
/// tuple t of relation R covered by some view?" (a view σ_{R.X=a} covers t
/// iff t.X = a).
class CoverageIndex {
 public:
  explicit CoverageIndex(const std::vector<SelectionView>& views);

  bool CoversValue(AttrRef attr, ValueId value) const {
    return covered_.count(SelectionView{attr, value}) > 0;
  }

  bool CoversTuple(RelationId rel, const Tuple& tuple) const {
    for (int p = 0; p < static_cast<int>(tuple.size()); ++p) {
      if (CoversValue(AttrRef{rel, p}, tuple[p])) return true;
    }
    return false;
  }

 private:
  std::unordered_set<SelectionView, SelectionViewHasher> covered_;
};

/// The certain world Dmin: exactly the tuples of D covered by the views
/// (tuples every possible world must contain). Restricted to `relations`.
Instance BuildDmin(const Instance& db, const CoverageIndex& coverage,
                   const std::vector<RelationId>& relations);

/// The maximal world Dmax: Dmin plus every uncovered candidate tuple from
/// the column cross product (tuples some possible world may contain).
/// Restricted to `relations`; requires columns on all their attributes.
/// Fails with ResourceExhausted if the candidate space exceeds
/// `max_tuples`.
Result<Instance> BuildDmax(const Instance& db, const CoverageIndex& coverage,
                           const std::vector<RelationId>& relations,
                           size_t max_tuples = 50'000'000);

/// Relations mentioned by a query / bundle (sorted, deduplicated).
std::vector<RelationId> RelationsOf(const ConjunctiveQuery& q);
std::vector<RelationId> RelationsOf(const std::vector<ConjunctiveQuery>& qs);

/// Decides instance-based determinacy D ⊢ V ։ Q for a set of *selection*
/// views and a bundle of monotone CQs (Theorem 3.3): every possible world
/// D' with V(D') = V(D) satisfies Dmin ⊆ D' ⊆ Dmax, so for monotone Q
/// determinacy holds iff Q(Dmin) = Q(Dmax). PTIME data complexity.
Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const std::vector<ConjunctiveQuery>& qs);

/// Single-query convenience overload.
Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const ConjunctiveQuery& q);

/// Union-of-CQs overload (UCQs are monotone, so Theorem 3.3 applies: the
/// union is determined iff it agrees on Dmin and Dmax).
Result<bool> SelectionViewsDetermine(const Instance& db,
                                     const std::vector<SelectionView>& views,
                                     const UnionQuery& q);

/// Diagnostic form of the Theorem 3.3 check: when the views do *not*
/// determine the query, reports the uncertain answers — tuples in
/// Q(Dmax) \ Q(Dmin), i.e. answers whose membership varies across
/// possible worlds. Useful for explaining quotes to sellers ("you must
/// price these views because these answers are still open").
struct DeterminacyExplanation {
  bool determined = false;
  /// Answers present in some possible world but not all (sorted; capped
  /// at `max_examples`).
  std::vector<Tuple> uncertain_answers;
};

Result<DeterminacyExplanation> ExplainSelectionDeterminacy(
    const Instance& db, const std::vector<SelectionView>& views,
    const ConjunctiveQuery& q, size_t max_examples = 10);

/// Lemma 3.1: D ⊢ V ։ σ_{R.X=a} iff σ_{R.X=a} ∈ V or V fully covers some
/// attribute Y of R. (Exposed for tests and the consistency check.)
bool SelectionViewsDetermineSelection(const Catalog& catalog,
                                      const std::vector<SelectionView>& views,
                                      const SelectionView& target);

}  // namespace qp

#endif  // QP_DETERMINACY_SELECTION_DETERMINACY_H_
