#ifndef QP_DETERMINACY_WORLD_ENUMERATION_H_
#define QP_DETERMINACY_WORLD_ENUMERATION_H_

#include <cstddef>

#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

struct WorldEnumerationOptions {
  /// Maximum number of candidate tuples (the world space is 2^candidates).
  /// The generic check mirrors the coNP data complexity of Theorem 2.3, so
  /// it is exponential by nature; this guard keeps it usable for testing
  /// and for the Section 2 generic pricing framework on small instances.
  size_t max_candidate_tuples = 18;
};

/// Decides instance-based determinacy D ⊢ V ։ Q (Definition 2.2) for
/// arbitrary bundles of UCQ views and queries, by enumerating every
/// possible world D' over the column space and checking that
/// V(D') = V(D) implies Q(D') = Q(D). Exact but exponential; use
/// SelectionViewsDetermine for the PTIME selection-view case.
///
/// Requires columns on all attributes of the relations mentioned by V or Q.
Result<bool> EnumerationDetermines(
    const Instance& db, const QueryBundle& views, const QueryBundle& query,
    const WorldEnumerationOptions& options = {});

/// Decides the restricted determinacy relation D ⊢ V ։* Q of
/// Proposition 2.24: for every D0 with V(D0) ⊆ V(D), D0 ⊢ V ։ Q.
/// The restriction is itself a determinacy relation, and is *monotone* for
/// monotone views, which makes the dynamic arbitrage-price monotone under
/// insertions. Exponential (world enumeration), same guard as above.
Result<bool> RestrictedEnumerationDetermines(
    const Instance& db, const QueryBundle& views, const QueryBundle& query,
    const WorldEnumerationOptions& options = {});

}  // namespace qp

#endif  // QP_DETERMINACY_WORLD_ENUMERATION_H_
