#ifndef QP_OBS_WINDOW_H_
#define QP_OBS_WINDOW_H_

#include <cstdint>
#include <vector>

#include "qp/obs/metrics.h"

namespace qp {

/// Exact nearest-rank percentile over an ascending-sorted sample vector:
/// rank = ceil(count * q / 100), clamped to [1, count]; returns
/// sorted[rank - 1] (0 when empty). This is the reference semantics every
/// percentile reporter in the tree follows — MetricHistogram::Percentile
/// is the same rank rule quantized to power-of-two bucket edges, and the
/// load client's report uses this helper directly, so the two can only
/// disagree by bucket rounding, never by rank convention.
uint64_t NearestRankPercentile(const std::vector<uint64_t>& sorted, int q);

/// A windowed reader over a cumulative MetricHistogram: Advance()
/// snapshots the bucket counts, and Percentile() answers over only the
/// samples recorded since the *previous* Advance. The process histograms
/// are lifetime-cumulative — after an hour of calm traffic a burst barely
/// moves their p99 — so a feedback controller that wants "tail latency
/// over the last tick" diffs bucket snapshots instead.
///
/// Not thread-safe: one owner advances and reads (the overload
/// controller's ticks are serialized). The underlying histogram may be
/// written concurrently — bucket counts are monotone relaxed atomics, so
/// a racing Record lands in either this window or the next, never lost.
class WindowedPercentile {
 public:
  /// `hist` must outlive this reader (registry histograms live for the
  /// process). The window starts empty; the first Advance() baselines
  /// against the histogram's current state.
  explicit WindowedPercentile(const MetricHistogram* hist);

  /// Closes the current window: samples recorded since the previous
  /// Advance become the window Percentile()/Count() answer over.
  void Advance();

  /// Samples in the closed window.
  uint64_t Count() const { return window_count_; }

  /// Nearest-rank percentile over the window, as the upper edge of the
  /// covering power-of-two bucket (same quantization as
  /// MetricHistogram::Percentile). 0 when the window is empty.
  uint64_t Percentile(int q) const;

 private:
  const MetricHistogram* hist_;
  uint64_t prev_[MetricHistogram::kNumBuckets] = {};
  uint64_t window_[MetricHistogram::kNumBuckets] = {};
  uint64_t window_count_ = 0;
};

}  // namespace qp

#endif  // QP_OBS_WINDOW_H_
