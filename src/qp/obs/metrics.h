#ifndef QP_OBS_METRICS_H_
#define QP_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qp/util/thread_annotations.h"

namespace qp {

/// Process-wide observability layer: monotonic counters, gauges and
/// fixed-bucket latency histograms, registered by name in a lock-striped
/// registry and read out as an immutable MetricsSnapshot.
///
/// Hot-path contract: instrumentation sites resolve their metric once
/// (a function-local static holding the handle) and then touch only
/// relaxed atomics — no locks, no allocation, no string hashing per
/// event. When the library is configured with QP_METRICS=OFF (the
/// QP_METRICS_DISABLED preprocessor define), every QP_METRIC_* macro
/// expands to nothing and the serving path carries zero instrumentation.
///
/// Everything stays in integer arithmetic: histogram percentiles are the
/// upper edge of the covering power-of-two bucket, clamped to the
/// observed [min, max] (so a single-sample histogram reports that exact
/// sample for every percentile). No float/double anywhere — the same
/// discipline the pricing layer follows for Money.

/// A monotonic counter. Increments are relaxed atomic adds; the total is
/// read by MetricsRegistry::Snapshot.
class MetricCounter {
 public:
  void Add(uint64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  void Increment() { Add(1); }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Test-only: Snapshot deltas stay meaningful because instrument sites
  /// cache the handle, which Reset never invalidates.
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A last-write-wins gauge (cache sizes, revenue, pool depths).
class MetricGauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// A fixed-bucket histogram for non-negative values (by convention
/// nanoseconds; name such metrics with an `_ns` suffix). Bucket i holds
/// values whose bit width is i (i.e. v in [2^(i-1), 2^i - 1]), so Record
/// is one std::bit_width plus relaxed atomics; quantiles are exact to the
/// covering power of two and clamped to the observed min/max.
class MetricHistogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(uint64_t value);

  uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// 0 when empty.
  uint64_t Min() const;
  uint64_t Max() const { return max_.load(std::memory_order_relaxed); }
  /// The q-th percentile (q in [0, 100]) by cumulative bucket walk:
  /// the upper edge of the bucket containing the rank, clamped to
  /// [Min(), Max()]. 0 when empty.
  uint64_t Percentile(int q) const;

  /// Raw count of bucket `index` (relaxed read). Powers windowed readers
  /// (qp/obs/window.h) that diff bucket snapshots between ticks.
  uint64_t BucketCount(int index) const {
    return buckets_[index].load(std::memory_order_relaxed);
  }

  /// Upper edge of bucket `index`: the largest value whose bit width is
  /// `index` (0 for bucket 0, UINT64_MAX for the top bucket).
  static uint64_t BucketUpperEdge(int index);

  void Reset();

 private:
  static int BucketIndex(uint64_t value) {
    int width = std::bit_width(value);
    return width < kNumBuckets ? width : kNumBuckets - 1;
  }

  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> min_{UINT64_MAX};
  std::atomic<uint64_t> max_{0};
};

struct CounterSample {
  std::string name;
  uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;
  uint64_t max = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
};

/// A point-in-time copy of every registered metric, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Value of a counter, or `fallback` when it was never registered.
  uint64_t CounterValue(std::string_view name, uint64_t fallback = 0) const;
  int64_t GaugeValue(std::string_view name, int64_t fallback = 0) const;
  const HistogramSample* FindHistogram(std::string_view name) const;
};

/// Human-readable dump, one metric per line.
std::string MetricsToText(const MetricsSnapshot& snapshot);

/// Machine-readable dump:
/// {"counters": {...}, "gauges": {...}, "histograms": {name: {...}}}.
std::string MetricsToJson(const MetricsSnapshot& snapshot);

/// The name -> metric registry. Lookups are striped by name hash so
/// concurrent registration from pool workers does not serialize; metric
/// objects are heap-allocated once and their addresses stay stable for
/// the process lifetime (Reset zeroes values, never frees), which is what
/// lets instrument sites cache raw pointers in function-local statics.
class MetricsRegistry {
 public:
  /// The process-wide registry every QP_METRIC_* macro records into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Finds or creates the named metric. A name registered as one kind
  /// must not be reused as another (checked: the mismatched kind gets its
  /// own slot with a "!kind" suffix rather than aliasing).
  MetricCounter* GetCounter(std::string_view name);
  MetricGauge* GetGauge(std::string_view name);
  MetricHistogram* GetHistogram(std::string_view name);

  MetricsSnapshot Snapshot() const;

  /// Zeroes every metric without invalidating handles (test isolation).
  void Reset();

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    mutable Mutex mu;
    std::unordered_map<std::string, std::unique_ptr<MetricCounter>> counters
        QP_GUARDED_BY(mu);
    std::unordered_map<std::string, std::unique_ptr<MetricGauge>> gauges
        QP_GUARDED_BY(mu);
    std::unordered_map<std::string, std::unique_ptr<MetricHistogram>>
        histograms QP_GUARDED_BY(mu);
  };

  Stripe& StripeFor(std::string_view name);

  Stripe stripes_[kStripes];
};

/// Monotonic clock in nanoseconds (steady_clock), the time base of every
/// `_ns` histogram.
inline uint64_t MetricClockNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// RAII latency probe: records elapsed nanoseconds into a histogram on
/// destruction. Null histogram = disarmed (records nothing).
class ScopedTimer {
 public:
  explicit ScopedTimer(MetricHistogram* hist)
      : hist_(hist), start_ns_(MetricClockNowNs()) {}
  ~ScopedTimer() {
    if (hist_ != nullptr) hist_->Record(MetricClockNowNs() - start_ns_);
  }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  MetricHistogram* hist_;
  uint64_t start_ns_;
};

}  // namespace qp

/// QP_METRICS_ENABLED is 1 unless the build sets QP_METRICS_DISABLED
/// (cmake -DQP_METRICS=OFF). Instrument through the macros below, never
/// through the registry directly, so the OFF build compiles the serving
/// path with no trace of the instrumentation (arguments are not
/// evaluated; sizeof keeps variables "used" for -Werror).
#ifdef QP_METRICS_DISABLED
#define QP_METRICS_ENABLED 0
#else
#define QP_METRICS_ENABLED 1
#endif

#define QP_METRIC_INTERNAL_CAT2(a, b) a##b
#define QP_METRIC_INTERNAL_CAT(a, b) QP_METRIC_INTERNAL_CAT2(a, b)

#if QP_METRICS_ENABLED

/// Adds `delta` to the named monotonic counter.
#define QP_METRIC_COUNT(name, delta)                                       \
  do {                                                                     \
    static ::qp::MetricCounter* qp_metric_counter =                        \
        ::qp::MetricsRegistry::Global().GetCounter(name);                  \
    qp_metric_counter->Add(static_cast<uint64_t>(delta));                  \
  } while (0)

/// Sets the named gauge to `value`.
#define QP_METRIC_GAUGE_SET(name, value)                                   \
  do {                                                                     \
    static ::qp::MetricGauge* qp_metric_gauge =                            \
        ::qp::MetricsRegistry::Global().GetGauge(name);                    \
    qp_metric_gauge->Set(static_cast<int64_t>(value));                     \
  } while (0)

/// Records `value` into the named histogram.
#define QP_METRIC_RECORD(name, value)                                      \
  do {                                                                     \
    static ::qp::MetricHistogram* qp_metric_hist =                         \
        ::qp::MetricsRegistry::Global().GetHistogram(name);                \
    qp_metric_hist->Record(static_cast<uint64_t>(value));                  \
  } while (0)

/// MetricClockNowNs(), or the constant 0 in the OFF build (so timestamp
/// plumbing around QP_METRIC_RECORD also compiles out).
#define QP_METRIC_NOW_NS() ::qp::MetricClockNowNs()

/// Times the enclosing scope into the named `_ns` histogram.
#define QP_METRIC_SCOPED_TIMER(name)                                       \
  static ::qp::MetricHistogram* QP_METRIC_INTERNAL_CAT(                    \
      qp_metric_timer_hist_, __LINE__) =                                   \
      ::qp::MetricsRegistry::Global().GetHistogram(name);                  \
  ::qp::ScopedTimer QP_METRIC_INTERNAL_CAT(qp_metric_timer_, __LINE__)(    \
      QP_METRIC_INTERNAL_CAT(qp_metric_timer_hist_, __LINE__))

#else  // !QP_METRICS_ENABLED

#define QP_METRIC_COUNT(name, delta)                                       \
  do {                                                                     \
    (void)sizeof(delta);                                                   \
  } while (0)
#define QP_METRIC_GAUGE_SET(name, value)                                   \
  do {                                                                     \
    (void)sizeof(value);                                                   \
  } while (0)
#define QP_METRIC_RECORD(name, value)                                      \
  do {                                                                     \
    (void)sizeof(value);                                                   \
  } while (0)
#define QP_METRIC_NOW_NS() uint64_t{0}
#define QP_METRIC_SCOPED_TIMER(name) ((void)0)

#endif  // QP_METRICS_ENABLED

/// One-increment shorthand.
#define QP_METRIC_INCR(name) QP_METRIC_COUNT(name, 1)

#endif  // QP_OBS_METRICS_H_
