#include "qp/obs/metrics.h"

#include <algorithm>
#include <memory>

namespace qp {
namespace {

/// Relaxed atomic min/max via CAS; contention is rare (only ties for the
/// extreme) so the loop almost always runs once.
void AtomicMin(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (value < current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<uint64_t>* slot, uint64_t value) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (value > current &&
         !slot->compare_exchange_weak(current, value,
                                      std::memory_order_relaxed)) {
  }
}

void AppendJsonString(std::string* out, std::string_view s) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        out->push_back(c);
    }
  }
  out->push_back('"');
}

}  // namespace

void MetricHistogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  AtomicMin(&min_, value);
  AtomicMax(&max_, value);
}

uint64_t MetricHistogram::BucketUpperEdge(int index) {
  if (index <= 0) return 0;
  if (index >= kNumBuckets - 1) return UINT64_MAX;
  return (uint64_t{1} << index) - 1;
}

uint64_t MetricHistogram::Min() const {
  uint64_t v = min_.load(std::memory_order_relaxed);
  return v == UINT64_MAX ? 0 : v;
}

uint64_t MetricHistogram::Percentile(int q) const {
  uint64_t count = Count();
  if (count == 0) return 0;
  if (q < 0) q = 0;
  if (q > 100) q = 100;
  // Nearest-rank (1-based): the smallest rank covering q% of samples.
  uint64_t rank = (count * static_cast<uint64_t>(q) + 99) / 100;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (seen >= rank) {
      return std::clamp(BucketUpperEdge(i), Min(), Max());
    }
  }
  // Concurrent Record between count_ and bucket reads can leave the walk
  // short; the max is the honest answer then.
  return Max();
}

void MetricHistogram::Reset() {
  for (auto& bucket : buckets_) bucket.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(UINT64_MAX, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricsRegistry::Stripe& MetricsRegistry::StripeFor(std::string_view name) {
  return stripes_[std::hash<std::string_view>{}(name) % kStripes];
}

MetricCounter* MetricsRegistry::GetCounter(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(&stripe.mu);
  auto& slot = stripe.counters[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return slot.get();
}

MetricGauge* MetricsRegistry::GetGauge(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(&stripe.mu);
  auto& slot = stripe.gauges[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return slot.get();
}

MetricHistogram* MetricsRegistry::GetHistogram(std::string_view name) {
  Stripe& stripe = StripeFor(name);
  MutexLock lock(&stripe.mu);
  auto& slot = stripe.histograms[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  for (const Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    for (const auto& [name, counter] : stripe.counters) {
      snapshot.counters.push_back(CounterSample{name, counter->Value()});
    }
    for (const auto& [name, gauge] : stripe.gauges) {
      snapshot.gauges.push_back(GaugeSample{name, gauge->Value()});
    }
    for (const auto& [name, hist] : stripe.histograms) {
      snapshot.histograms.push_back(HistogramSample{
          name, hist->Count(), hist->Sum(), hist->Min(), hist->Max(),
          hist->Percentile(50), hist->Percentile(95), hist->Percentile(99)});
    }
  }
  auto by_name = [](const auto& a, const auto& b) { return a.name < b.name; };
  std::sort(snapshot.counters.begin(), snapshot.counters.end(), by_name);
  std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), by_name);
  std::sort(snapshot.histograms.begin(), snapshot.histograms.end(), by_name);
  return snapshot;
}

void MetricsRegistry::Reset() {
  for (Stripe& stripe : stripes_) {
    MutexLock lock(&stripe.mu);
    for (auto& [name, counter] : stripe.counters) counter->Reset();
    for (auto& [name, gauge] : stripe.gauges) gauge->Reset();
    for (auto& [name, hist] : stripe.histograms) hist->Reset();
  }
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name,
                                       uint64_t fallback) const {
  for (const CounterSample& c : counters) {
    if (c.name == name) return c.value;
  }
  return fallback;
}

int64_t MetricsSnapshot::GaugeValue(std::string_view name,
                                    int64_t fallback) const {
  for (const GaugeSample& g : gauges) {
    if (g.name == name) return g.value;
  }
  return fallback;
}

const HistogramSample* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSample& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

std::string MetricsToText(const MetricsSnapshot& snapshot) {
  if (snapshot.counters.empty() && snapshot.gauges.empty() &&
      snapshot.histograms.empty()) {
    return "(no metrics recorded)\n";
  }
  std::string out;
  for (const CounterSample& c : snapshot.counters) {
    out += c.name + " " + std::to_string(c.value) + "\n";
  }
  for (const GaugeSample& g : snapshot.gauges) {
    out += g.name + " " + std::to_string(g.value) + "\n";
  }
  for (const HistogramSample& h : snapshot.histograms) {
    out += h.name + " count=" + std::to_string(h.count) +
           " sum=" + std::to_string(h.sum) + " min=" + std::to_string(h.min) +
           " p50=" + std::to_string(h.p50) + " p95=" + std::to_string(h.p95) +
           " p99=" + std::to_string(h.p99) + " max=" + std::to_string(h.max) +
           "\n";
  }
  return out;
}

std::string MetricsToJson(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSample& c : snapshot.counters) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, c.name);
    out += ": " + std::to_string(c.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const GaugeSample& g : snapshot.gauges) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, g.name);
    out += ": " + std::to_string(g.value);
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const HistogramSample& h : snapshot.histograms) {
    if (!first) out += ",";
    first = false;
    out += "\n    ";
    AppendJsonString(&out, h.name);
    out += ": {\"count\": " + std::to_string(h.count) +
           ", \"sum\": " + std::to_string(h.sum) +
           ", \"min\": " + std::to_string(h.min) +
           ", \"p50\": " + std::to_string(h.p50) +
           ", \"p95\": " + std::to_string(h.p95) +
           ", \"p99\": " + std::to_string(h.p99) +
           ", \"max\": " + std::to_string(h.max) + "}";
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

}  // namespace qp
