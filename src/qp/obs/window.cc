#include "qp/obs/window.h"

namespace qp {

uint64_t NearestRankPercentile(const std::vector<uint64_t>& sorted, int q) {
  if (sorted.empty()) return 0;
  if (q < 0) q = 0;
  if (q > 100) q = 100;
  const uint64_t count = sorted.size();
  uint64_t rank = (count * static_cast<uint64_t>(q) + 99) / 100;
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

WindowedPercentile::WindowedPercentile(const MetricHistogram* hist)
    : hist_(hist) {
  // Baseline at construction: the first Advance() must not report the
  // histogram's whole cumulative history as one giant window.
  for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
    prev_[i] = hist_->BucketCount(i);
  }
}

void WindowedPercentile::Advance() {
  window_count_ = 0;
  for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
    // Bucket counts are monotone, so cur >= prev even against racing
    // writers; the guard only covers a torn relaxed read ordering.
    uint64_t cur = hist_->BucketCount(i);
    window_[i] = cur >= prev_[i] ? cur - prev_[i] : 0;
    window_count_ += window_[i];
    prev_[i] = cur;
  }
}

uint64_t WindowedPercentile::Percentile(int q) const {
  if (window_count_ == 0) return 0;
  if (q < 0) q = 0;
  if (q > 100) q = 100;
  uint64_t rank = (window_count_ * static_cast<uint64_t>(q) + 99) / 100;
  if (rank == 0) rank = 1;
  uint64_t seen = 0;
  for (int i = 0; i < MetricHistogram::kNumBuckets; ++i) {
    seen += window_[i];
    if (seen >= rank) return MetricHistogram::BucketUpperEdge(i);
  }
  return MetricHistogram::BucketUpperEdge(MetricHistogram::kNumBuckets - 1);
}

}  // namespace qp
