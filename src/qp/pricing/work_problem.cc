#include "qp/pricing/work_problem.h"

#include <algorithm>
#include <cstdint>

namespace qp {
namespace {

/// Lexicographically sorts and deduplicates the rows of a flattened
/// row-major buffer with the given stride.
void SortUniqueRows(std::vector<ValueId>* data, size_t arity) {
  if (arity == 0 || data->empty()) return;
  const size_t n = data->size() / arity;
  std::vector<uint32_t> order(n);
  for (size_t r = 0; r < n; ++r) order[r] = static_cast<uint32_t>(r);
  const ValueId* base = data->data();
  auto row_less = [&](uint32_t x, uint32_t y) {
    return std::lexicographical_compare(
        base + x * arity, base + (x + 1) * arity, base + y * arity,
        base + (y + 1) * arity);
  };
  std::sort(order.begin(), order.end(), row_less);
  std::vector<ValueId> out;
  out.reserve(data->size());
  for (size_t i = 0; i < n; ++i) {
    const ValueId* row = base + order[i] * arity;
    if (i > 0) {
      const ValueId* prev = base + order[i - 1] * arity;
      if (std::equal(row, row + arity, prev)) continue;
    }
    out.insert(out.end(), row, row + arity);
  }
  *data = std::move(out);
}

}  // namespace

Result<WorkProblem> BuildWorkProblem(const Instance& db,
                                     const SelectionPriceSet& prices,
                                     const ConjunctiveQuery& query) {
  if (query.HasSelfJoin()) {
    return Status::InvalidArgument(
        "the GChQ pipeline requires a query without self-joins");
  }
  const Catalog& catalog = db.catalog();
  const Schema& schema = catalog.schema();

  WorkProblem problem;
  problem.num_vars = query.num_vars();

  // Positions of each original variable (for column intersections), plus
  // fresh singleton-domain variables for constants.
  struct PosRef {
    int atom;
    int pos;
    AttrRef attr;
  };
  std::vector<std::vector<PosRef>> var_positions(query.num_vars());

  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const Atom& atom = query.atoms()[a];
    WorkAtom work_atom;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      AttrRef attr{atom.rel, static_cast<int>(p)};
      if (!catalog.HasColumn(attr)) {
        return Status::FailedPrecondition(
            "pricing requires a declared column on " +
            schema.AttrToString(attr));
      }
      WorkPosition pos;
      const Term& t = atom.args[p];
      if (t.is_var()) {
        pos.var = t.var;
        var_positions[t.var].push_back(
            {static_cast<int>(a), static_cast<int>(p), attr});
      } else {
        // Constant: fresh variable whose domain is {constant} ∩ column
        // (Theorem 3.16 removes constants via hanging-variable elimination).
        pos.var = problem.num_vars++;
        var_positions.push_back(
            {{static_cast<int>(a), static_cast<int>(p), attr}});
        std::vector<ValueId> domain;
        auto id = catalog.dict().Find(t.constant);
        if (id.has_value() && catalog.InColumn(attr, *id)) {
          domain.push_back(*id);
        }
        problem.var_domain.resize(problem.num_vars);
        problem.var_domain[pos.var] = std::move(domain);
      }
      work_atom.positions.push_back(std::move(pos));
    }
    problem.atoms.push_back(std::move(work_atom));
  }
  problem.var_domain.resize(problem.num_vars);

  // Domains of original variables: column intersection filtered by the
  // interpreted predicates (Step 1).
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (var_positions[v].empty()) {
      return Status::InvalidArgument("variable '" + query.var_name(v) +
                                     "' does not occur in the body");
    }
    std::vector<ValueId> domain;
    const auto& first_col = catalog.Column(var_positions[v][0].attr);
    for (ValueId value : first_col) {
      bool in_all = true;
      for (size_t i = 1; i < var_positions[v].size() && in_all; ++i) {
        in_all = catalog.InColumn(var_positions[v][i].attr, value);
      }
      if (!in_all) continue;
      bool passes = true;
      for (const UnaryPredicate& pred : query.predicates()) {
        if (pred.var == v && !pred.Eval(catalog.dict().Get(value))) {
          passes = false;
          break;
        }
      }
      if (passes) domain.push_back(value);
    }
    std::sort(domain.begin(), domain.end());
    problem.var_domain[v] = std::move(domain);
  }

  // Materialize per-position prices over the variable domains.
  for (size_t a = 0; a < problem.atoms.size(); ++a) {
    WorkAtom& work_atom = problem.atoms[a];
    for (size_t p = 0; p < work_atom.positions.size(); ++p) {
      WorkPosition& pos = work_atom.positions[p];
      AttrRef attr{query.atoms()[a].rel, static_cast<int>(p)};
      const std::vector<ValueId>& domain = problem.var_domain[pos.var];
      pos.SetUnavailable(domain.size());
      for (size_t i = 0; i < domain.size(); ++i) {
        SelectionView view{attr, domain[i]};
        Money price = prices.Get(view);
        if (!IsInfinite(price)) {
          pos.cost[i] = price;
          pos.origin[i] = view;
          pos.has_origin[i] = 1;
        }
      }
    }
  }

  // Data: tuples filtered to the (harmonized) domains. var_domain is
  // sorted, so membership is a binary search on it directly — no per-call
  // set materialization.
  for (size_t a = 0; a < problem.atoms.size(); ++a) {
    WorkAtom& work_atom = problem.atoms[a];
    std::vector<const std::vector<ValueId>*> domains;
    domains.reserve(work_atom.positions.size());
    for (const WorkPosition& pos : work_atom.positions) {
      domains.push_back(&problem.var_domain[pos.var]);
    }
    const auto& rel = db.Relation(query.atoms()[a].rel);
    const size_t arity = work_atom.positions.size();
    work_atom.tuple_data.reserve(rel.size() * arity);
    for (const Tuple& t : rel) {
      bool keep = true;
      for (size_t p = 0; p < arity && keep; ++p) {
        keep = std::binary_search(domains[p]->begin(), domains[p]->end(),
                                  t[p]);
      }
      if (keep) {
        work_atom.tuple_data.insert(work_atom.tuple_data.end(), t.begin(),
                                    t.end());
      }
    }
  }
  return problem;
}

void MergeRepeatedVarsInAtoms(WorkProblem* problem,
                              std::vector<AtomMergeSpec>* specs) {
  if (specs != nullptr) specs->clear();
  for (WorkAtom& atom : problem->atoms) {
    // Map var -> first position index.
    std::vector<int> keep;
    std::vector<int> merged_into(atom.positions.size());
    std::vector<VarId> seen_vars;
    for (size_t p = 0; p < atom.positions.size(); ++p) {
      VarId v = atom.positions[p].var;
      auto it = std::find(seen_vars.begin(), seen_vars.end(), v);
      if (it == seen_vars.end()) {
        seen_vars.push_back(v);
        merged_into[p] = static_cast<int>(keep.size());
        keep.push_back(static_cast<int>(p));
      } else {
        int target = static_cast<int>(it - seen_vars.begin());
        merged_into[p] = target;
        // Merge prices: min of the two positions per value (Step 2). Both
        // positions bind the same variable, so their tables are aligned.
        WorkPosition& dst = atom.positions[keep[target]];
        const WorkPosition& src = atom.positions[p];
        for (size_t i = 0; i < dst.cost.size(); ++i) {
          if (src.cost[i] < dst.cost[i]) {
            dst.cost[i] = src.cost[i];
            dst.origin[i] = src.origin[i];
            dst.has_origin[i] = src.has_origin[i];
          }
        }
      }
    }
    if (specs != nullptr) specs->push_back(AtomMergeSpec{keep, merged_into});
    if (keep.size() == atom.positions.size()) continue;

    // Filter tuples: merged positions must agree; then project.
    const size_t old_arity = atom.positions.size();
    std::vector<ValueId> new_data;
    new_data.reserve(atom.tuple_data.size());
    for (size_t r = 0; r < atom.tuple_data.size(); r += old_arity) {
      const ValueId* t = atom.tuple_data.data() + r;
      bool agree = true;
      for (size_t p = 0; p < old_arity && agree; ++p) {
        agree = (t[keep[merged_into[p]]] == t[p]);
      }
      if (!agree) continue;
      for (int p : keep) new_data.push_back(t[p]);
    }
    SortUniqueRows(&new_data, keep.size());
    atom.tuple_data = std::move(new_data);

    std::vector<WorkPosition> new_positions;
    new_positions.reserve(keep.size());
    for (int p : keep) new_positions.push_back(std::move(atom.positions[p]));
    atom.positions = std::move(new_positions);
  }
}

std::vector<VarId> WorkHangingVars(const WorkProblem& problem) {
  std::vector<int> occurrences(problem.num_vars, 0);
  for (const WorkAtom& atom : problem.atoms) {
    for (const WorkPosition& pos : atom.positions) ++occurrences[pos.var];
  }
  std::vector<VarId> hanging;
  for (const WorkAtom& atom : problem.atoms) {
    if (atom.positions.size() < 2) continue;
    for (const WorkPosition& pos : atom.positions) {
      if (occurrences[pos.var] == 1) hanging.push_back(pos.var);
    }
  }
  return hanging;
}

Result<std::vector<WorkLink>> BuildWorkChain(const WorkProblem& problem) {
  const int num_atoms = static_cast<int>(problem.atoms.size());
  if (num_atoms == 0) return Status::InvalidArgument("no atoms");
  std::vector<WorkLink> links;
  links.reserve(num_atoms);

  const WorkAtom& first = problem.atoms[0];
  if (first.positions.size() > 2) {
    return Status::InvalidArgument("work atom has more than two positions");
  }
  if (first.positions.size() != 1) {
    return Status::InvalidArgument(
        "first atom of a normalized chain must be unary");
  }
  links.push_back(WorkLink{0, true, 0, 0});
  VarId current = first.positions[0].var;

  for (int a = 1; a < num_atoms; ++a) {
    const WorkAtom& atom = problem.atoms[a];
    WorkLink link;
    link.atom = a;
    if (atom.positions.size() == 1) {
      if (atom.positions[0].var != current) {
        return Status::InvalidArgument(
            "unary atom does not continue the chain");
      }
      link.unary = true;
      link.entry_pos = link.exit_pos = 0;
    } else if (atom.positions.size() == 2) {
      link.unary = false;
      if (atom.positions[0].var == current &&
          atom.positions[1].var != current) {
        link.entry_pos = 0;
        link.exit_pos = 1;
      } else if (atom.positions[1].var == current &&
                 atom.positions[0].var != current) {
        link.entry_pos = 1;
        link.exit_pos = 0;
      } else {
        return Status::InvalidArgument(
            "binary atom does not continue the chain");
      }
      current = atom.positions[link.exit_pos].var;
    } else {
      return Status::InvalidArgument(
          "work atom has more than two positions");
    }
    links.push_back(link);
  }
  if (!links.back().unary) {
    return Status::InvalidArgument(
        "last atom of a normalized chain must be unary");
  }
  return links;
}


void WorkProjectOutPosition(WorkProblem* problem, int atom_idx, int pos) {
  WorkAtom& atom = problem->atoms[atom_idx];
  const size_t old_arity = atom.positions.size();
  atom.positions.erase(atom.positions.begin() + pos);
  std::vector<ValueId> projected;
  projected.reserve(atom.tuple_data.size());
  for (size_t r = 0; r < atom.tuple_data.size(); r += old_arity) {
    const ValueId* t = atom.tuple_data.data() + r;
    for (size_t p = 0; p < old_arity; ++p) {
      if (static_cast<int>(p) != pos) projected.push_back(t[p]);
    }
  }
  SortUniqueRows(&projected, old_arity - 1);
  atom.tuple_data = std::move(projected);
}

bool WorkFindVarPosition(const WorkProblem& problem, VarId var,
                         int* atom_idx, int* pos) {
  for (size_t a = 0; a < problem.atoms.size(); ++a) {
    const WorkAtom& atom = problem.atoms[a];
    for (size_t p = 0; p < atom.positions.size(); ++p) {
      if (atom.positions[p].var == var) {
        *atom_idx = static_cast<int>(a);
        *pos = static_cast<int>(p);
        return true;
      }
    }
  }
  return false;
}

}  // namespace qp
