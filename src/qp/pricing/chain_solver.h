#ifndef QP_PRICING_CHAIN_SOLVER_H_
#define QP_PRICING_CHAIN_SOLVER_H_

#include <functional>

#include "qp/flow/graph_builder.h"
#include "qp/pricing/solution.h"
#include "qp/pricing/work_problem.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"

namespace qp {

struct ChainSolverOptions {
  /// How partial answers are wired into the flow graph:
  ///  * kDirect — the literal construction of Section 3.1: one skip edge per
  ///    partial answer pair (O(k^2 n^2) edges).
  ///  * kHubs — an equivalent compressed construction routing skips through
  ///    per-slot hub nodes (O(k n^2) edges, dominated by tuple edges).
  /// Both produce the same min-cut value (property-tested).
  enum class SkipMode { kHubs, kDirect };
  SkipMode skip_mode = SkipMode::kHubs;
  /// Max-flow backend for the Theorem 3.13 solve. All backends produce the
  /// same min-cut value (property-tested by the cross-solver flow axis);
  /// kAuto picks per graph shape.
  FlowSolver flow_solver = FlowSolver::kAuto;
  /// Shared serving budget. Min-cut solves are PTIME, so the budget is
  /// only consulted at entry (an already-expired deadline skips the solve
  /// and lets the engine serve the full-cover fallback).
  SearchBudget budget;
};

/// Size counters of the constructed flow graph (for the Figure 1
/// reproduction and the scaling benchmarks).
struct ChainGraphStats {
  int64_t nodes = 0;
  int64_t edges = 0;
  int64_t view_edges = 0;
  int64_t max_flow = 0;
};

/// Optional multi-attribute selection prices (Section 4): price of
/// σ_{R.X=a, R.Y=b} for the binary atom of `link_index`, where `entry` and
/// `exit` are the values at the link's entry/exit positions. Return
/// kInfiniteMoney when the pair view is not for sale.
using PairPriceFn = std::function<Money(int link_index, ValueId entry,
                                        ValueId exit)>;

/// A finite-capacity tuple edge that ended up in the min cut: the pair
/// view σ of `link_index`'s atom at (entry, exit) was purchased.
struct CutPairEdge {
  int link = -1;
  ValueId entry = 0;
  ValueId exit = 0;
};

/// Prices a normalized chain problem by reduction to Min-Cut
/// (Theorem 3.13): builds the flow graph whose finite-capacity edges are
/// exactly the explicit selection views, computes the max flow / min cut,
/// and reports the cut's views as the optimal support.
///
/// `links` must come from BuildWorkChain on the same problem.
///
/// `scratch`, when given, is the graph builder to build into (Reset is
/// called first): callers that solve many chains in a row reuse one
/// arena's buffers instead of reallocating per solve.
Result<PricingSolution> SolveChainMinCut(const WorkProblem& problem,
                                         const std::vector<WorkLink>& links,
                                         const ChainSolverOptions& options = {},
                                         ChainGraphStats* stats = nullptr,
                                         const PairPriceFn* pair_prices =
                                             nullptr,
                                         std::vector<CutPairEdge>* cut_pairs =
                                             nullptr,
                                         FlowGraphBuilder* scratch = nullptr);

}  // namespace qp

#endif  // QP_PRICING_CHAIN_SOLVER_H_
