#ifndef QP_PRICING_CLASSIFIER_H_
#define QP_PRICING_CLASSIFIER_H_

#include <string>
#include <vector>

#include "qp/query/query.h"

namespace qp {

/// The pricing-complexity class of a query per the dichotomy theorem
/// (Theorem 3.16), which also selects the solver the engine dispatches to.
enum class PricingClass {
  /// Generalized chain query: PTIME via the min-cut pipeline (Thm 3.7).
  kGChQ,
  /// Cycle query Ck: PTIME per Theorem 3.15. The concrete algorithm lives
  /// only in the paper's unpublished full version; we price cycles exactly
  /// with the clause solver (see DESIGN.md, Substitutions).
  kCycle,
  /// Full CQ without self-joins that is neither: NP-complete (Thm 3.16).
  kNPHardFull,
  /// Non-full, non-boolean: NP-complete (Thm 3.16).
  kNonFull,
  /// Boolean query: same complexity as its full version (Thm 3.16).
  kBoolean,
  /// Has self-joins: outside the dichotomy; priced exactly, complexity
  /// label unknown (H3 of Theorem 3.5 shows some are NP-complete).
  kOutsideDichotomy,
  /// Multiple connected components, composed via Proposition 3.14.
  kDisconnected,
  /// Union of conjunctive queries: NP upper bound (Corollary 3.4), priced
  /// exactly by branch-and-bound over view subsets.
  kUnion,
};

std::string_view PricingClassName(PricingClass cls);

struct QueryClassification {
  PricingClass cls = PricingClass::kNPHardFull;
  /// Whether the dichotomy places the query in PTIME.
  bool ptime = false;
  /// Valid GChQ atom order when cls == kGChQ.
  std::vector<int> gchq_order;
  /// Human-readable explanation of the classification.
  std::string reason;
};

/// Classifies a *connected* query per Theorem 3.16:
///  1. boolean → class of its full version;
///  2. neither full nor boolean → NP-complete;
///  3. full: normalize (drop constants, merge repeated variables within an
///     atom, drop hanging variables) and test GChQ, then cycle;
///     otherwise NP-complete.
/// Queries with self-joins are reported kOutsideDichotomy.
QueryClassification ClassifyConnectedQuery(const ConjunctiveQuery& q);

/// Structural normalization used by the classifier: removes constants,
/// repeated variables within an atom, and hanging variables (keeping at
/// least one argument per atom). Atom count and order are preserved.
ConjunctiveQuery StructurallyNormalize(const ConjunctiveQuery& q);

}  // namespace qp

#endif  // QP_PRICING_CLASSIFIER_H_
