#include "qp/pricing/money.h"

namespace qp {

std::string MoneyToString(Money m) {
  if (IsInfinite(m)) return "unpriced";
  std::string sign = m < 0 ? "-" : "";
  if (m < 0) m = -m;
  std::string cents = std::to_string(m % 100);
  if (cents.size() < 2) cents = "0" + cents;
  return sign + "$" + std::to_string(m / 100) + "." + cents;
}

}  // namespace qp
