#include "qp/pricing/batch_pricer.h"

#include <algorithm>
#include <string>

#include "qp/check/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/util/thread_pool.h"

namespace qp {

BatchPricer::BatchPricer(const PricingEngine* engine,
                         BatchPricerOptions options)
    : engine_(engine),
      cache_(options.cache),
      num_threads_(options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads) {}

Result<PriceQuote> BatchPricer::Price(const ConjunctiveQuery& query) const {
  QP_METRIC_SCOPED_TIMER("qp.batch.solve_ns");
  if (cache_ == nullptr) return engine_->Price(query);
  std::string fingerprint = query.Fingerprint();
  if (auto cached = cache_->Lookup(fingerprint, engine_->db())) {
    // Cache-served quotes bypass the engine's return-boundary checks, so
    // re-assert Prop 2.8 non-negativity here (guards against a corrupted
    // or wrongly-keyed entry).
    CheckPriceNonNegative(cached->solution.price, "BatchPricer::Price");
    return *std::move(cached);
  }
  auto quote = engine_->Price(query);
  if (quote.ok()) {
    cache_->Store(fingerprint, query, engine_->db(), *quote);
  }
  return quote;
}

std::vector<Result<PriceQuote>> BatchPricer::PriceAll(
    const std::vector<ConjunctiveQuery>& queries) const {
  const int n = static_cast<int>(queries.size());
  std::vector<Result<PriceQuote>> out(
      n, Result<PriceQuote>(Status::Internal("not priced")));
  if (n == 0) return out;
  QP_METRIC_INCR("qp.batch.runs");
  QP_METRIC_COUNT("qp.batch.queries", n);
  if (num_threads_ <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) out[i] = Price(queries[i]);
    return out;
  }
  // No point spawning more workers than queries.
  ThreadPool pool(std::min(num_threads_, n));
  // Queue wait = batch submission to task start: how long a quote request
  // sat behind other work before a worker picked it up (the serving-path
  // saturation signal, as opposed to qp.batch.solve_ns, the solver time).
  const uint64_t batch_start_ns = QP_METRIC_NOW_NS();
  pool.ParallelFor(n, [&](int i) {
    QP_METRIC_RECORD("qp.batch.queue_wait_ns",
                     QP_METRIC_NOW_NS() - batch_start_ns);
    out[i] = Price(queries[i]);
  });
  return out;
}

}  // namespace qp
