#include "qp/pricing/batch_pricer.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "qp/pricing/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/util/thread_pool.h"

namespace qp {

BatchPricer::BatchPricer(const PricingEngine* engine,
                         BatchPricerOptions options)
    : engine_(engine),
      cache_(options.cache),
      num_threads_(options.num_threads == 0 ? ThreadPool::DefaultThreads()
                                            : options.num_threads),
      deadline_ms_(options.deadline_ms),
      admission_cap_(options.admission_cap),
      controls_(options.controls) {}

bool BatchPricer::pool_initialized() const {
  MutexLock lock(&pool_mu_);
  return pool_ != nullptr;
}

void BatchPricer::Rebind(const PricingEngine* engine, QuoteCache* cache) {
  engine_ = engine;
  cache_ = cache;
}

Result<PriceQuote> BatchPricer::Price(const ConjunctiveQuery& query) const {
  if (cache_ == nullptr) return Price(query, std::string());
  return Price(query, query.Fingerprint());
}

Result<PriceQuote> BatchPricer::Price(const ConjunctiveQuery& query,
                                      const std::string& fingerprint) const {
  QP_METRIC_SCOPED_TIMER("qp.batch.solve_ns");
  // Each query gets a fresh budget: the deadline bounds one solve, not the
  // whole batch. With no deadline the engine's own default budget (usually
  // inactive) applies untouched — bit-identical to the unbudgeted engine.
  // Snapshotted once per call: the overload controller may retune the
  // controls concurrently, and this quote must run under one deadline.
  const int64_t deadline = deadline_ms();
  auto price_one = [&]() {
    return deadline > 0
               ? engine_->Price(query,
                                SearchBudget::Deadline(
                                    std::chrono::milliseconds(deadline)))
               : engine_->Price(query);
  };
  if (cache_ == nullptr) return price_one();
  if (auto cached = cache_->Lookup(fingerprint, engine_->db())) {
    // Cache-served quotes bypass the engine's return-boundary checks, so
    // re-assert Prop 2.8 non-negativity here (guards against a corrupted
    // or wrongly-keyed entry).
    CheckPriceNonNegative(cached->solution.price, "BatchPricer::Price");
    return *std::move(cached);
  }
  auto quote = price_one();
  // Approximate (deadline-degraded) quotes stay out of the cache: a later
  // request without time pressure should get the exact price, not a stale
  // over-estimate.
  if (quote.ok() && !quote->solution.approximate) {
    cache_->Store(fingerprint, query, engine_->db(), *quote);
  }
  return quote;
}

std::vector<Result<PriceQuote>> BatchPricer::PriceAll(
    const std::vector<ConjunctiveQuery>& queries) const {
  const int total = static_cast<int>(queries.size());
  std::vector<Result<PriceQuote>> out(
      total, Result<PriceQuote>(Status::Internal("not priced")));
  if (total == 0) return out;
  QP_METRIC_INCR("qp.batch.runs");
  QP_METRIC_COUNT("qp.batch.queries", total);
  // Admission control: under overload, shed the tail of the batch instead
  // of queuing it behind an unbounded backlog. One snapshot of the live
  // cap per batch — the whole frame is admitted under the same rule.
  const int cap = admission_cap();
  int n = total;
  if (cap > 0 && total > cap) {
    n = cap;
    QP_METRIC_COUNT("qp.batch.shed", static_cast<uint64_t>(total - n));
    for (int i = n; i < total; ++i) {
      out[i] = Status::ResourceExhausted(
          "batch admission cap reached (" + std::to_string(cap) +
          "); query shed");
    }
  }
  if (num_threads_ <= 1 || n == 1) {
    for (int i = 0; i < n; ++i) out[i] = Price(queries[i]);
    return out;
  }
  // Persistent pool, built on first parallel batch and reused after: a
  // fresh pool per batch charged worker startup to every batch's
  // qp.batch.queue_wait_ns. Concurrent PriceAll calls serialize here.
  MutexLock lock(&pool_mu_);
  if (pool_ == nullptr) {
    pool_ = std::make_unique<ThreadPool>(num_threads_);
  }
  // Queue wait = enqueue to task start: how long a quote request sat
  // behind other work before a worker picked it up (the serving-path
  // saturation signal, as opposed to qp.batch.solve_ns, the solver time).
  const uint64_t enqueue_ns = QP_METRIC_NOW_NS();
  pool_->ParallelFor(n, [&](int i) {
    QP_METRIC_RECORD("qp.batch.queue_wait_ns",
                     QP_METRIC_NOW_NS() - enqueue_ns);
    out[i] = Price(queries[i]);
  });
  return out;
}

}  // namespace qp
