#ifndef QP_PRICING_BNB_COVERAGE_ORACLE_H_
#define QP_PRICING_BNB_COVERAGE_ORACLE_H_

#include <cstdint>
#include <vector>

#include "qp/pricing/bnb/bitset.h"
#include "qp/pricing/price_points.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp::bnb {

/// Determinacy as a function of covered cells (DESIGN.md §10).
///
/// The candidate cells of a solve are the column cross products of the
/// query's relations — exactly the tuples BuildDmax enumerates. For any
/// selection-view set V, Theorem 3.3's worlds depend on V only through
/// which cells V covers:
///   Dmin = { cell : covered ∧ in D }      Dmax = Dmin ∪ { cell : ¬covered }
/// so D ⊢ V ։ Q is a monotone function of the coverage bitset C(V). The
/// branch-and-bound search exploits that: per-view bitsets are built once,
/// per-node coverage is an OR over words, and the Theorem 3.3 evaluation
/// runs only on memo misses. The instance-level oracle
/// (SelectionViewsDetermine) is kept solely as a one-time validation.
class CoverageOracle {
 public:
  struct Options {
    /// Cap on the candidate-cell universe; beyond it the caller falls
    /// back to the instance-level oracle (each evaluation materializes
    /// up to this many tuples).
    size_t max_cells = 4096;
  };

  /// Builds the cell universe for a bundle of CQs (pass `union_query ==
  /// nullptr`) or a UCQ (pass `bundle == nullptr`). Fails with
  /// ResourceExhausted / FailedPrecondition when the universe is too
  /// large, a column is missing, or the instance holds tuples outside
  /// its columns — callers treat those as "fall back", not as errors.
  /// `db`, `bundle` / `union_query` must outlive the oracle.
  static Result<CoverageOracle> Build(
      const Instance& db, const std::vector<RelationId>& relations,
      const std::vector<ConjunctiveQuery>* bundle,
      const UnionQuery* union_query, const Options& options);

  size_t num_cells() const { return cells_.size(); }

  /// The cells selected by one view (cells of the view's relation whose
  /// `pos` component equals the view's value).
  Bitset CoverageOf(const SelectionView& view) const;

  /// Theorem 3.3 on the worlds induced by a coverage set: builds Dmin and
  /// Dmax from the bitset and compares the query images.
  Result<bool> DeterminedFromCoverage(const Bitset& covered) const;

  /// One-time validation of the construction: compares this oracle
  /// against the instance-level SelectionViewsDetermine on the full view
  /// set and on the empty set. Any disagreement is an Internal error (a
  /// bug, never a fallback).
  Status ValidateAgainstInstanceOracle(
      const std::vector<SelectionView>& views) const;

 private:
  struct Cell {
    RelationId rel;
    Tuple tuple;
  };

  const Instance* db_ = nullptr;
  const std::vector<ConjunctiveQuery>* bundle_ = nullptr;
  const UnionQuery* union_query_ = nullptr;
  std::vector<RelationId> relations_;
  /// Per-relation [begin, end) ranges into cells_, parallel to relations_.
  std::vector<std::pair<size_t, size_t>> ranges_;
  std::vector<Cell> cells_;
  std::vector<char> in_db_;
};

}  // namespace qp::bnb

#endif  // QP_PRICING_BNB_COVERAGE_ORACLE_H_
