#ifndef QP_PRICING_BNB_SUBSET_BNB_H_
#define QP_PRICING_BNB_SUBSET_BNB_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "qp/pricing/bnb/bitset.h"
#include "qp/pricing/money.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"

namespace qp::bnb {

/// One selectable item of a subset search: a weight and the set of
/// candidate cells it covers. Item order is the canonical decision order
/// (the caller sorts; the exhaustive solver uses price-descending with
/// view-ascending tie-break).
struct SubsetItem {
  Money weight = 0;
  Bitset coverage;
};

/// Exact monotone predicate over coverage bitsets: "does covering exactly
/// these cells determine the query?". Must be monotone (C ⊆ C' and
/// determined(C) ⇒ determined(C')) and deterministic; the engine
/// memoizes it and only calls through on cache misses.
using CoverageDeterminacyFn = std::function<Result<bool>(const Bitset&)>;

struct SubsetBnbOptions {
  /// Worker threads for parallel subtree exploration (<= 1: sequential).
  /// Results are bit-identical across thread counts: pruning is strict
  /// (`cost + bound > best`), so every optimal subset is enumerated under
  /// any schedule, and ties are broken by DFS order, not arrival order.
  int threads = 1;
  /// Cap on search nodes (< 0 = unlimited); setup probes don't count.
  int64_t node_limit = -1;
  /// Shared serving budget (deadline / cancel / global node cap). Unlike
  /// `node_limit` — whose exhaustion is an error to the caller — budget
  /// exhaustion degrades: the result carries the best known feasible
  /// subset (incumbent or greedy seed) with `budget_exhausted` set.
  SearchBudget budget;
  /// Cap on required-cell probing during setup (each probe is one oracle
  /// evaluation; cells beyond the cap simply don't strengthen the bound).
  size_t max_probe_cells = 512;
  /// Frontier sizing for the parallel phase.
  int tasks_per_thread = 4;
  size_t max_frontier_depth = 10;
};

struct SubsetBnbStats {
  int64_t nodes = 0;
  int64_t oracle_evals = 0;
  /// Memo hits plus required-mask short-circuits (the word-compare fast
  /// path that answers "undetermined" without any evaluation).
  int64_t memo_hits = 0;
  int64_t bound_pruned = 0;
  int64_t infeasible_pruned = 0;
  int64_t dominated_items = 0;
  int64_t required_cells = 0;
  int64_t tasks = 0;
};

struct SubsetBnbResult {
  Money cost = kInfiniteMoney;
  /// Indexes into the caller's item vector, ascending. Among equal-cost
  /// optima this is always the DFS-earliest one (include explored before
  /// exclude), independent of thread count. On an aborted search this is
  /// instead the best known *feasible* subset — the incumbent, or the
  /// greedy upper-bound cover when no incumbent was accepted yet — and
  /// `found` reports whether one exists; the cost is then an upper bound
  /// on the optimum, not the optimum.
  std::vector<int> chosen;
  /// False when no subset (not even all items) satisfies the oracle, or
  /// when an aborted search had no feasible subset in hand.
  bool found = false;
  /// True when the node limit or the serving budget aborted the search.
  bool aborted = false;
  /// True when the abort came from `options.budget` (deadline / cancel /
  /// global cap) rather than the per-solve `node_limit`.
  bool budget_exhausted = false;
};

/// Minimum-weight subset search: finds the cheapest item subset whose
/// OR-ed coverage satisfies `oracle`, by branch-and-bound with dominated-
/// item pruning, coverage-keyed memoization, an admissible disjoint-
/// packing lower bound over probed required cells, and optional parallel
/// subtree exploration (DESIGN.md §10). `num_cells` is the coverage
/// width; every item's bitset must have it.
Result<SubsetBnbResult> SolveSubsetBnb(const std::vector<SubsetItem>& items,
                                       size_t num_cells,
                                       const CoverageDeterminacyFn& oracle,
                                       const SubsetBnbOptions& options = {},
                                       SubsetBnbStats* stats = nullptr);

}  // namespace qp::bnb

#endif  // QP_PRICING_BNB_SUBSET_BNB_H_
