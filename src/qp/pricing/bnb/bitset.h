#ifndef QP_PRICING_BNB_BITSET_H_
#define QP_PRICING_BNB_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "qp/util/hash.h"

namespace qp::bnb {

/// A fixed-width dynamic bitset backed by uint64_t words: the currency of
/// the branch-and-bound pricing engine. Coverage sets over candidate
/// cells and decision vectors over view indexes both live here, so
/// per-node determinacy and tie-breaking reduce to word-wise OR / compare
/// (see DESIGN.md §10). Widths routinely exceed 64 (cells) and may exceed
/// 64 (views when max_views is raised), hence no std::bitset.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(size_t num_bits)
      : num_bits_(num_bits), words_((num_bits + 63) / 64, 0) {}

  size_t num_bits() const { return num_bits_; }
  const std::vector<uint64_t>& words() const { return words_; }

  void Set(size_t i) { words_[i >> 6] |= uint64_t{1} << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(uint64_t{1} << (i & 63)); }
  bool Test(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & uint64_t{1};
  }

  void Clear() {
    for (uint64_t& w : words_) w = 0;
  }

  void OrWith(const Bitset& other) {
    for (size_t w = 0; w < words_.size(); ++w) words_[w] |= other.words_[w];
  }

  /// out = a | b without allocating; `out` must already have the width.
  static void OrInto(const Bitset& a, const Bitset& b, Bitset* out) {
    for (size_t w = 0; w < a.words_.size(); ++w) {
      out->words_[w] = a.words_[w] | b.words_[w];
    }
  }

  /// this ⊆ other, i.e. this & ~other == 0.
  bool IsSubsetOf(const Bitset& other) const {
    for (size_t w = 0; w < words_.size(); ++w) {
      if (words_[w] & ~other.words_[w]) return false;
    }
    return true;
  }

  bool None() const {
    for (uint64_t w : words_) {
      if (w != 0) return false;
    }
    return true;
  }

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(__builtin_popcountll(w));
    return n;
  }

  /// |a \ b| — how many bits a would newly contribute on top of b.
  static size_t CountAndNot(const Bitset& a, const Bitset& b) {
    size_t n = 0;
    for (size_t w = 0; w < a.words_.size(); ++w) {
      n += static_cast<size_t>(
          __builtin_popcountll(a.words_[w] & ~b.words_[w]));
    }
    return n;
  }

  bool operator==(const Bitset& other) const {
    return words_ == other.words_;
  }
  bool operator!=(const Bitset& other) const { return !(*this == other); }

  size_t Hash() const { return HashRange(words_); }

  /// Depth-first-search order of two decision vectors over the same view
  /// list (bit i set = view i included; the DFS explores include before
  /// exclude). Returns > 0 if `a` is visited earlier than `b`, < 0 if
  /// later, 0 if equal: the first differing view index decides, and the
  /// vector that *includes* that view is the earlier one.
  static int CompareDfsOrder(const Bitset& a, const Bitset& b) {
    for (size_t w = 0; w < a.words_.size(); ++w) {
      uint64_t diff = a.words_[w] ^ b.words_[w];
      if (diff == 0) continue;
      uint64_t lowest = diff & (~diff + 1);
      return (a.words_[w] & lowest) ? 1 : -1;
    }
    return 0;
  }

 private:
  size_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

struct BitsetHasher {
  size_t operator()(const Bitset& b) const { return b.Hash(); }
};

}  // namespace qp::bnb

#endif  // QP_PRICING_BNB_BITSET_H_
