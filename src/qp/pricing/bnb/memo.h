#ifndef QP_PRICING_BNB_MEMO_H_
#define QP_PRICING_BNB_MEMO_H_

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "qp/pricing/bnb/bitset.h"
#include "qp/util/thread_annotations.h"

namespace qp::bnb {

/// Thread-safe memo of determinacy outcomes keyed by coverage bitset.
/// Keying by coverage (rather than by view subset) collapses every view
/// subset with the same covered-cell set into one entry: determinacy is a
/// function of coverage alone (DESIGN.md §10), so the cache is exact, not
/// heuristic. Lock striping keeps the parallel search off a single mutex.
class CoverageMemo {
 public:
  std::optional<bool> Lookup(const Bitset& key) const {
    const Stripe& stripe = stripes_[StripeOf(key)];
    MutexLock lock(&stripe.mu);
    auto it = stripe.map.find(key);
    if (it == stripe.map.end()) return std::nullopt;
    return it->second;
  }

  void Insert(const Bitset& key, bool determined) {
    Stripe& stripe = stripes_[StripeOf(key)];
    MutexLock lock(&stripe.mu);
    stripe.map.emplace(key, determined);
  }

  size_t Size() const {
    size_t n = 0;
    for (const Stripe& stripe : stripes_) {
      MutexLock lock(&stripe.mu);
      n += stripe.map.size();
    }
    return n;
  }

 private:
  static constexpr size_t kStripes = 16;

  struct Stripe {
    mutable Mutex mu;
    std::unordered_map<Bitset, bool, BitsetHasher> map QP_GUARDED_BY(mu);
  };

  static size_t StripeOf(const Bitset& key) { return key.Hash() % kStripes; }

  Stripe stripes_[kStripes];
};

}  // namespace qp::bnb

#endif  // QP_PRICING_BNB_MEMO_H_
