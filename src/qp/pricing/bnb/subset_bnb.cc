#include "qp/pricing/bnb/subset_bnb.h"

#include <algorithm>
#include <atomic>
#include <utility>

#include "qp/pricing/bnb/bounds.h"
#include "qp/pricing/bnb/memo.h"
#include "qp/util/thread_annotations.h"
#include "qp/util/thread_pool.h"

namespace qp::bnb {
namespace {

/// Per-task scratch: one coverage slot per depth for include children (the
/// exclude child reuses the parent's slot by reference), the mutable
/// decision vector, a feasibility temp, and the epoch-stamped "used" array
/// of the packing bound. No allocation happens per node.
struct TaskContext {
  std::vector<Bitset> c_stack;
  Bitset key;
  Bitset tmp;
  std::vector<uint32_t> lb_stamp;
  uint32_t lb_epoch = 0;

  TaskContext(size_t num_items, size_t num_cells)
      : c_stack(num_items + 1, Bitset(num_cells)),
        key(num_items),
        tmp(num_cells),
        lb_stamp(num_items, 0) {}
};

struct FrontierNode {
  Money cost = 0;
  Bitset coverage;
  Bitset key;
};

class Solver {
 public:
  Solver(const std::vector<SubsetItem>& items, size_t num_cells,
         const CoverageDeterminacyFn& oracle, const SubsetBnbOptions& options,
         SubsetBnbStats* stats)
      : num_cells_(num_cells),
        oracle_(oracle),
        options_(options),
        stats_(stats),
        required_(num_cells),
        root_coverage_(num_cells) {
    // Canonical order = caller order; dominated items are dropped but the
    // relative order (and hence the DFS tie-break) of survivors is kept.
    std::vector<Money> all_weights;
    std::vector<Bitset> all_cov;
    all_weights.reserve(items.size());
    all_cov.reserve(items.size());
    for (const SubsetItem& item : items) {
      all_weights.push_back(item.weight);
      all_cov.push_back(item.coverage);
    }
    std::vector<char> dominated = StrictlyDominatedItems(all_weights, all_cov);
    for (size_t i = 0; i < items.size(); ++i) {
      if (dominated[i]) continue;
      original_index_.push_back(static_cast<int>(i));
      weights_.push_back(all_weights[i]);
      cov_.push_back(std::move(all_cov[i]));
    }
    if (stats_ != nullptr) {
      stats_->dominated_items =
          static_cast<int64_t>(items.size() - weights_.size());
    }
    m_ = weights_.size();

    suffix_or_.assign(m_ + 1, Bitset(num_cells_));
    for (size_t i = m_; i-- > 0;) {
      suffix_or_[i] = suffix_or_[i + 1];
      suffix_or_[i].OrWith(cov_[i]);
    }
  }

  Result<SubsetBnbResult> Run() {
    SubsetBnbResult result;

    // Root feasibility: is the query determined with everything included?
    // (Dominance preserves this: every dominated item's coverage is
    // contained in a surviving dominator's.)
    bool all_feasible = Determined(suffix_or_[0]);
    if (Status err = CurrentError(); !err.ok()) return err;
    if (!all_feasible) {
      result.found = false;
      FillStats(0);
      return result;
    }

    ProbeRequiredCells();
    if (Status err = CurrentError(); !err.ok()) return err;
    BuildRequiredCellItems();
    SeedGreedyUpperBound();
    if (Status err = CurrentError(); !err.ok()) return err;

    int64_t tasks = RunSearch();

    MutexLock lock(&mu_);
    if (!error_.ok()) return error_;
    result.aborted = aborted_.load(std::memory_order_relaxed);
    FillStats(tasks);
    if (result.aborted) {
      result.budget_exhausted =
          budget_exhausted_.load(std::memory_order_relaxed);
      // Degrade instead of discarding: hand back the best feasible subset
      // in hand (the incumbent, else the greedy seed) so a budget-bounded
      // caller can quote it as an admissible over-estimate (Lemma 3.1).
      if (have_incumbent_) {
        result.found = true;
        result.cost = best_.load(std::memory_order_relaxed);
        for (size_t i = 0; i < m_; ++i) {
          if (incumbent_key_.Test(i)) {
            result.chosen.push_back(original_index_[i]);
          }
        }
      } else if (!IsInfinite(greedy_cost_)) {
        result.found = true;
        result.cost = greedy_cost_;
        result.chosen = greedy_chosen_;
      } else {
        result.cost = best_.load(std::memory_order_relaxed);
      }
      return result;
    }
    if (!have_incumbent_) {
      // The strict-pruning argument guarantees an incumbent whenever the
      // root is feasible; reaching here means the bound or oracle broke
      // its contract.
      return Status::Internal(
          "subset branch-and-bound terminated without an incumbent on a "
          "feasible instance");
    }
    result.found = true;
    result.cost = best_.load(std::memory_order_relaxed);
    for (size_t i = 0; i < m_; ++i) {
      if (incumbent_key_.Test(i)) result.chosen.push_back(original_index_[i]);
    }
    return result;
  }

 private:
  /// Memoized determinacy of a coverage set. The required-cell mask gives
  /// a word-compare fast path: a set missing any required cell is
  /// undetermined without consulting the memo or the oracle.
  bool Determined(const Bitset& c) {
    if (!required_.IsSubsetOf(c)) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    auto cached = memo_.Lookup(c);
    if (cached.has_value()) {
      memo_hits_.fetch_add(1, std::memory_order_relaxed);
      return *cached;
    }
    oracle_evals_.fetch_add(1, std::memory_order_relaxed);
    auto r = oracle_(c);
    if (!r.ok()) {
      LatchError(r.status());
      return false;
    }
    memo_.Insert(c, *r);  // void insert  NOLINT(unchecked-status)
    return *r;
  }

  void LatchError(Status status) QP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    if (error_.ok()) error_ = std::move(status);
    aborted_.store(true, std::memory_order_relaxed);
  }

  /// Locked copy of the latched error for the sequential phases; the
  /// parallel search never reads it (workers poll `aborted_` instead).
  Status CurrentError() QP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    return error_;
  }

  /// A cell is required iff dropping it from the full coverage breaks
  /// determinacy; monotonicity then forces every determining set to
  /// contain it. Probing is capped: unprobed cells just don't strengthen
  /// the bound (still admissible).
  void ProbeRequiredCells() {
    const Bitset& all = suffix_or_[0];
    Bitset probe(num_cells_);
    size_t probes = 0;
    for (size_t cell = 0; cell < num_cells_ && !aborted_.load(); ++cell) {
      if (!all.Test(cell)) continue;
      if (probes++ >= options_.max_probe_cells) break;
      probe = all;
      probe.Reset(cell);
      bool det = Determined(probe);
      if (!CurrentError().ok()) return;
      if (!det) {
        required_.Set(cell);  // void bit set  NOLINT(unchecked-status)
        required_cell_ids_.push_back(cell);
      }
    }
    if (stats_ != nullptr) {
      stats_->required_cells =
          static_cast<int64_t>(required_cell_ids_.size());
    }
  }

  void BuildRequiredCellItems() {
    required_cell_items_.resize(required_cell_ids_.size());
    for (size_t rc = 0; rc < required_cell_ids_.size(); ++rc) {
      for (size_t i = 0; i < m_; ++i) {
        if (cov_[i].Test(required_cell_ids_[rc])) {
          required_cell_items_[rc].push_back(static_cast<int>(i));
        }
      }
    }
  }

  /// Greedy set-cover pass (best new-cells-per-weight ratio) to seed the
  /// incumbent *bound* — never the incumbent *solution*, which must stay
  /// the canonical DFS-earliest optimum. The greedy pick set is recorded
  /// separately as the budget-abort fallback cover.
  void SeedGreedyUpperBound() {
    Bitset g(num_cells_);
    Money cost = 0;
    std::vector<char> picked(m_, 0);
    while (true) {
      bool det = Determined(g);
      if (!CurrentError().ok()) return;
      if (det) {
        best_.store(cost, std::memory_order_relaxed);
        greedy_cost_ = cost;
        for (size_t i = 0; i < m_; ++i) {
          if (picked[i]) greedy_chosen_.push_back(original_index_[i]);
        }
        return;
      }
      size_t best_item = m_;
      size_t best_new = 0;
      for (size_t i = 0; i < m_; ++i) {
        if (picked[i]) continue;
        size_t fresh = Bitset::CountAndNot(cov_[i], g);
        if (fresh == 0) continue;
        if (best_item == m_) {
          best_item = i;
          best_new = fresh;
          continue;
        }
        // Higher fresh/weight ratio wins; cross-multiply in 128-bit to
        // stay in integers.
        __int128 lhs = static_cast<__int128>(fresh) * weights_[best_item];
        __int128 rhs = static_cast<__int128>(best_new) * weights_[i];
        if (lhs > rhs || (lhs == rhs && weights_[i] < weights_[best_item])) {
          best_item = i;
          best_new = fresh;
        }
      }
      if (best_item == m_) return;  // no progress possible
      picked[best_item] = 1;
      g.OrWith(cov_[best_item]);
      cost = AddMoney(cost, weights_[best_item]);
    }
  }

  bool CountNode() {
    int64_t n = nodes_.fetch_add(1, std::memory_order_relaxed) + 1;
    if (options_.node_limit >= 0 && n > options_.node_limit) {
      aborted_.store(true, std::memory_order_relaxed);
      return false;
    }
    if (options_.budget.ConsumeNode()) {
      budget_exhausted_.store(true, std::memory_order_relaxed);
      aborted_.store(true, std::memory_order_relaxed);
      return false;
    }
    return true;
  }

  Money LowerBound(TaskContext& ctx, size_t idx, const Bitset& c) {
    if (required_cell_ids_.empty()) return 0;
    if (++ctx.lb_epoch == 0) {
      std::fill(ctx.lb_stamp.begin(), ctx.lb_stamp.end(), 0);
      ctx.lb_epoch = 1;
    }
    return DisjointPackingBound(
        required_cell_items_, weights_,
        [&](size_t rc) { return c.Test(required_cell_ids_[rc]); },
        [&](int item) { return item >= static_cast<int>(idx); },
        &ctx.lb_stamp, ctx.lb_epoch);
  }

  void TryAccept(Money cost, const Bitset& key) QP_EXCLUDES(mu_) {
    MutexLock lock(&mu_);
    Money cur = best_.load(std::memory_order_relaxed);
    if (cost > cur) return;
    if (cost == cur && have_incumbent_ &&
        Bitset::CompareDfsOrder(key, incumbent_key_) <= 0) {
      return;
    }
    best_.store(cost, std::memory_order_relaxed);
    have_incumbent_ = true;
    incumbent_key_ = key;
  }

  void Search(TaskContext& ctx, size_t idx, Money cost, const Bitset& c) {
    if (collecting_ && idx == frontier_depth_) {
      frontier_.push_back(FrontierNode{cost, c, ctx.key});
      return;
    }
    if (aborted_.load(std::memory_order_relaxed)) return;
    if (!CountNode()) return;

    if (Determined(c)) {
      TryAccept(cost, ctx.key);
      return;  // supersets only cost more
    }
    if (aborted_.load(std::memory_order_relaxed) || idx == m_) return;

    // Feasibility: with every remaining item included, is it determined?
    Bitset::OrInto(c, suffix_or_[idx], &ctx.tmp);
    if (!Determined(ctx.tmp)) {
      infeasible_pruned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // Admissible bound. Strictly greater only: equal-cost completions may
    // hold the canonical optimum, and pruning them would make the result
    // depend on which thread found an incumbent first.
    Money lb = LowerBound(ctx, idx, c);
    if (AddMoney(cost, lb) > best_.load(std::memory_order_relaxed)) {
      bound_pruned_.fetch_add(1, std::memory_order_relaxed);
      return;
    }

    // Include items[idx].
    ctx.key.Set(idx);  // void bit set  NOLINT(unchecked-status)
    Bitset::OrInto(c, cov_[idx], &ctx.c_stack[idx + 1]);
    Search(ctx, idx + 1, AddMoney(cost, weights_[idx]), ctx.c_stack[idx + 1]);
    ctx.key.Reset(idx);
    // Exclude items[idx].
    Search(ctx, idx + 1, cost, c);
  }

  /// Returns the number of parallel tasks run (1 when sequential).
  int64_t RunSearch() {
    size_t depth = 0;
    if (options_.threads > 1 && m_ > 0) {
      size_t target = static_cast<size_t>(options_.threads) *
                      static_cast<size_t>(std::max(1, options_.tasks_per_thread));
      while ((size_t{1} << depth) < target &&
             depth < options_.max_frontier_depth) {
        ++depth;
      }
      depth = std::min(depth, m_);
    }

    TaskContext root_ctx(m_, num_cells_);
    if (depth == 0) {
      collecting_ = false;
      Search(root_ctx, 0, 0, root_coverage_);
      return 1;
    }

    // Sequential expansion to the frontier depth, then one parallel sweep
    // over the surviving subtrees. The shared incumbent is an atomic money
    // value read relaxed in the bound test; the (cost, key) pair itself is
    // mutex-guarded in TryAccept.
    collecting_ = true;
    frontier_depth_ = depth;
    Search(root_ctx, 0, 0, root_coverage_);
    collecting_ = false;
    if (frontier_.empty() || aborted_.load(std::memory_order_relaxed)) {
      return 1;
    }
    int workers = std::min<int>(options_.threads,
                                static_cast<int>(frontier_.size()));
    ThreadPool pool(workers);
    pool.ParallelFor(static_cast<int>(frontier_.size()), [&](int i) {
      TaskContext ctx(m_, num_cells_);
      ctx.key = frontier_[i].key;
      Search(ctx, frontier_depth_, frontier_[i].cost, frontier_[i].coverage);
    });
    return static_cast<int64_t>(frontier_.size());
  }

  void FillStats(int64_t tasks) {
    if (stats_ == nullptr) return;
    stats_->nodes = nodes_.load(std::memory_order_relaxed);
    stats_->oracle_evals = oracle_evals_.load(std::memory_order_relaxed);
    stats_->memo_hits = memo_hits_.load(std::memory_order_relaxed);
    stats_->bound_pruned = bound_pruned_.load(std::memory_order_relaxed);
    stats_->infeasible_pruned =
        infeasible_pruned_.load(std::memory_order_relaxed);
    stats_->tasks = tasks;
  }

  const size_t num_cells_;
  const CoverageDeterminacyFn& oracle_;
  const SubsetBnbOptions& options_;
  SubsetBnbStats* const stats_;

  // Frozen before the parallel phase: written only while the search is
  // still single-threaded, read-only once workers exist, so deliberately
  // unguarded (guarding them would serialize the read-mostly hot path).
  // NOLINTBEGIN(guarded-by-coverage)
  size_t m_ = 0;
  std::vector<int> original_index_;
  std::vector<Money> weights_;
  std::vector<Bitset> cov_;
  std::vector<Bitset> suffix_or_;  // suffix_or_[i] = OR of cov_[i..m)
  Bitset required_;
  std::vector<size_t> required_cell_ids_;
  std::vector<std::vector<int>> required_cell_items_;
  Bitset root_coverage_;
  bool collecting_ = false;
  size_t frontier_depth_ = 0;
  std::vector<FrontierNode> frontier_;

  // Budget-abort fallback: the greedy seed cover, in original item ids.
  Money greedy_cost_ = kInfiniteMoney;
  std::vector<int> greedy_chosen_;
  // NOLINTEND(guarded-by-coverage)

  // Shared search state.
  CoverageMemo memo_;  // internally synchronized  NOLINT(guarded-by-coverage)
  std::atomic<Money> best_{kInfiniteMoney};
  std::atomic<int64_t> nodes_{0};
  std::atomic<bool> aborted_{false};
  std::atomic<bool> budget_exhausted_{false};
  std::atomic<int64_t> oracle_evals_{0};
  std::atomic<int64_t> memo_hits_{0};
  std::atomic<int64_t> bound_pruned_{0};
  std::atomic<int64_t> infeasible_pruned_{0};
  Mutex mu_;
  bool have_incumbent_ QP_GUARDED_BY(mu_) = false;
  Bitset incumbent_key_ QP_GUARDED_BY(mu_);
  Status error_ QP_GUARDED_BY(mu_) = Status::Ok();
};

}  // namespace

Result<SubsetBnbResult> SolveSubsetBnb(const std::vector<SubsetItem>& items,
                                       size_t num_cells,
                                       const CoverageDeterminacyFn& oracle,
                                       const SubsetBnbOptions& options,
                                       SubsetBnbStats* stats) {
  Solver solver(items, num_cells, oracle, options, stats);
  return solver.Run();
}

}  // namespace qp::bnb
