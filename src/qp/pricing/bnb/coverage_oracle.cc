#include "qp/pricing/bnb/coverage_oracle.h"

#include <algorithm>
#include <string>
#include <utility>

#include "qp/determinacy/selection_determinacy.h"
#include "qp/eval/evaluator.h"

namespace qp::bnb {

Result<CoverageOracle> CoverageOracle::Build(
    const Instance& db, const std::vector<RelationId>& relations,
    const std::vector<ConjunctiveQuery>* bundle,
    const UnionQuery* union_query, const Options& options) {
  CoverageOracle oracle;
  oracle.db_ = &db;
  oracle.bundle_ = bundle;
  oracle.union_query_ = union_query;
  oracle.relations_ = relations;

  const Catalog& catalog = db.catalog();
  size_t total = 0;
  for (RelationId rel : relations) {
    const int arity = catalog.schema().arity(rel);
    size_t count = 1;
    for (int p = 0; p < arity; ++p) {
      AttrRef attr{rel, p};
      if (!catalog.HasColumn(attr)) {
        return Status::FailedPrecondition(
            "coverage oracle requires a column on " +
            catalog.schema().AttrToString(attr));
      }
      count *= catalog.Column(attr).size();
      if (count > options.max_cells) break;
    }
    total += count;
    if (total > options.max_cells) {
      return Status::ResourceExhausted(
          "candidate cell universe exceeds max_cells (" +
          std::to_string(options.max_cells) + ")");
    }
    // The coverage construction assumes D's tuples live inside the cell
    // universe (the inclusion constraint). Tuples inserted before their
    // column was declared would silently fall outside Dmin, so verify.
    for (const Tuple& t : db.Relation(rel)) {
      for (int p = 0; p < arity; ++p) {
        if (!catalog.InColumn(AttrRef{rel, p}, t[p])) {
          return Status::FailedPrecondition(
              "instance tuple outside its declared columns; coverage "
              "oracle unavailable");
        }
      }
    }
  }

  oracle.cells_.reserve(total);
  for (RelationId rel : relations) {
    const size_t begin = oracle.cells_.size();
    const int arity = catalog.schema().arity(rel);
    std::vector<const std::vector<ValueId>*> cols(arity);
    bool empty = false;
    for (int p = 0; p < arity; ++p) {
      cols[p] = &catalog.Column(AttrRef{rel, p});
      if (cols[p]->empty()) empty = true;
    }
    if (!empty) {
      Tuple tuple(arity);
      std::vector<size_t> idx(arity, 0);
      while (true) {
        for (int p = 0; p < arity; ++p) tuple[p] = (*cols[p])[idx[p]];
        oracle.cells_.push_back(Cell{rel, tuple});
        int p = arity - 1;
        while (p >= 0 && ++idx[p] == cols[p]->size()) idx[p--] = 0;
        if (p < 0) break;
      }
    }
    oracle.ranges_.emplace_back(begin, oracle.cells_.size());
  }

  oracle.in_db_.resize(oracle.cells_.size(), 0);
  for (size_t i = 0; i < oracle.cells_.size(); ++i) {
    oracle.in_db_[i] = db.Contains(oracle.cells_[i].rel, oracle.cells_[i].tuple);
  }
  return oracle;
}

Bitset CoverageOracle::CoverageOf(const SelectionView& view) const {
  Bitset out(cells_.size());
  for (size_t r = 0; r < relations_.size(); ++r) {
    if (relations_[r] != view.attr.rel) continue;
    for (size_t i = ranges_[r].first; i < ranges_[r].second; ++i) {
      if (cells_[i].tuple[view.attr.pos] == view.value) out.Set(i);
    }
  }
  return out;
}

Result<bool> CoverageOracle::DeterminedFromCoverage(
    const Bitset& covered) const {
  Instance dmin(&db_->catalog());
  Instance dmax(&db_->catalog());
  for (size_t i = 0; i < cells_.size(); ++i) {
    if (covered.Test(i)) {
      if (in_db_[i]) {
        auto r1 = dmin.Insert(cells_[i].rel, cells_[i].tuple);
        if (!r1.ok()) return r1.status();
        auto r2 = dmax.Insert(cells_[i].rel, cells_[i].tuple);
        if (!r2.ok()) return r2.status();
      }
    } else {
      auto r = dmax.Insert(cells_[i].rel, cells_[i].tuple);
      if (!r.ok()) return r.status();
    }
  }
  Evaluator min_eval(&dmin);
  Evaluator max_eval(&dmax);
  if (bundle_ != nullptr) {
    for (const ConjunctiveQuery& q : *bundle_) {
      auto lo = min_eval.EvalToSet(q);
      if (!lo.ok()) return lo.status();
      auto hi = max_eval.EvalToSet(q);
      if (!hi.ok()) return hi.status();
      if (*lo != *hi) return false;
    }
    return true;
  }
  auto lo = min_eval.EvalUnion(*union_query_);
  if (!lo.ok()) return lo.status();
  auto hi = max_eval.EvalUnion(*union_query_);
  if (!hi.ok()) return hi.status();
  return *lo == *hi;
}

Status CoverageOracle::ValidateAgainstInstanceOracle(
    const std::vector<SelectionView>& views) const {
  const std::vector<SelectionView> empty;
  for (const std::vector<SelectionView>* subset : {&views, &empty}) {
    Bitset covered(cells_.size());
    for (const SelectionView& v : *subset) covered.OrWith(CoverageOf(v));
    auto from_coverage = DeterminedFromCoverage(covered);
    if (!from_coverage.ok()) return from_coverage.status();
    auto from_instance =
        bundle_ != nullptr
            ? SelectionViewsDetermine(*db_, *subset, *bundle_)
            : SelectionViewsDetermine(*db_, *subset, *union_query_);
    if (!from_instance.ok()) return from_instance.status();
    if (*from_coverage != *from_instance) {
      return Status::Internal(
          "coverage-bitset oracle disagrees with the instance-level "
          "determinacy oracle (Theorem 3.3 reduction bug)");
    }
  }
  return Status::Ok();
}

}  // namespace qp::bnb
