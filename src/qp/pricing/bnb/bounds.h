#ifndef QP_PRICING_BNB_BOUNDS_H_
#define QP_PRICING_BNB_BOUNDS_H_

#include <cstdint>
#include <vector>

#include "qp/pricing/bnb/bitset.h"
#include "qp/pricing/money.h"

namespace qp::bnb {

/// Admissible lower bound shared by the subset and hitting-set searchers:
/// greedily pack item-disjoint "cells" (candidate cells there, clauses
/// here) that still need an item; each packed cell contributes the
/// cheapest weight among its available items, and all its available items
/// are then consumed so later cells can't double-count them. Any feasible
/// completion pays at least one item per packed cell and the packed cells
/// share no items, so the sum never exceeds the true remaining cost.
///
/// `cell_items[c]` lists the item ids that can serve cell c; `skip_cell`
/// filters cells already served; `item_available` filters items the
/// current node may still pick. `used_stamp` is caller-owned scratch of
/// size >= num items; entries equal to `epoch` mean "consumed" — bump the
/// epoch per call instead of clearing (zero the vector when the epoch
/// wraps to 0).
template <typename SkipCellFn, typename ItemAvailableFn>
Money DisjointPackingBound(const std::vector<std::vector<int>>& cell_items,
                           const std::vector<Money>& weights,
                           SkipCellFn skip_cell,
                           ItemAvailableFn item_available,
                           std::vector<uint32_t>* used_stamp,
                           uint32_t epoch) {
  Money bound = 0;
  for (size_t c = 0; c < cell_items.size(); ++c) {
    if (skip_cell(c)) continue;
    bool disjoint = true;
    Money min_w = kInfiniteMoney;
    for (int item : cell_items[c]) {
      if (!item_available(item)) continue;
      if ((*used_stamp)[item] == epoch) disjoint = false;
      if (weights[item] < min_w) min_w = weights[item];
    }
    if (!disjoint) continue;
    if (IsInfinite(min_w)) continue;  // dead cell: caller detects infeasibility
    bound = AddMoney(bound, min_w);
    for (int item : cell_items[c]) {
      if (item_available(item)) (*used_stamp)[item] = epoch;
    }
  }
  return bound;
}

/// Strict dominance pre-pass shared by both searchers: item i is dominated
/// when a *strictly cheaper* item j covers a superset of i's cells, or
/// when i covers nothing yet costs anything. Dominated items appear in no
/// optimal solution (swap i for j: coverage grows, cost strictly drops),
/// so dropping them preserves both the optimum and the canonical
/// (DFS-earliest) optimal support. Equal-price dominance is deliberately
/// NOT pruned — it could remove the canonical support's own views and
/// change which optimum is reported (DESIGN.md §10).
inline std::vector<char> StrictlyDominatedItems(
    const std::vector<Money>& weights, const std::vector<Bitset>& coverage) {
  const size_t n = weights.size();
  std::vector<char> dominated(n, 0);
  for (size_t i = 0; i < n; ++i) {
    if (weights[i] > 0 && coverage[i].None()) {
      dominated[i] = 1;
      continue;
    }
    for (size_t j = 0; j < n; ++j) {
      if (j == i || weights[j] >= weights[i]) continue;
      if (coverage[i].IsSubsetOf(coverage[j])) {
        dominated[i] = 1;
        break;
      }
    }
  }
  return dominated;
}

}  // namespace qp::bnb

#endif  // QP_PRICING_BNB_BOUNDS_H_
