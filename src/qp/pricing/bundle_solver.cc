#include "qp/pricing/bundle_solver.h"

#include <algorithm>
#include <map>
#include <set>
#include <unordered_map>
#include <unordered_set>

#include "qp/pricing/invariants.h"
#include "qp/flow/graph_builder.h"
#include "qp/obs/metrics.h"
#include "qp/query/analysis.h"
#include "qp/util/hash.h"

namespace qp {
namespace {

struct MemberChain {
  const ConjunctiveQuery* query;
  std::vector<ChainLink> links;
  /// Attribute at each link's entry/exit position.
  std::vector<AttrRef> entry_attr;
  std::vector<AttrRef> exit_attr;
  /// Harmonized domain of each slot (0..K).
  std::vector<std::vector<ValueId>> slot_domain;
};

}  // namespace

Result<PricingSolution> PriceChainBundleByMergedCut(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const ChainSolverOptions& options, ChainGraphStats* stats) {
  (void)options;  // the merged construction always uses hubs
  QP_METRIC_INCR("qp.solver.bundle_merged.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.bundle_merged_ns");
  if (queries.empty()) {
    PricingSolution empty;
    empty.price = 0;
    return empty;
  }
  const Catalog& catalog = db.catalog();

  // ---- Validate members and build chain structures -------------------------
  std::vector<MemberChain> members;
  std::map<RelationId, int> orientation;  // entry position of binary atoms
  for (const ConjunctiveQuery& q : queries) {
    if (!q.IsFull() || q.HasSelfJoin() || !q.predicates().empty()) {
      return Status::InvalidArgument(
          "merged bundle solver requires full, predicate-free, "
          "self-join-free chain queries");
    }
    auto order = FindGChQOrder(q);
    if (!order.has_value()) {
      return Status::InvalidArgument("bundle member is not a chain query");
    }
    auto links = BuildChainLinks(q, *order);
    if (!links.ok()) return links.status();

    MemberChain member;
    member.query = &q;
    member.links = std::move(*links);
    for (const ChainLink& link : member.links) {
      const Atom& atom = q.atoms()[link.atom_idx];
      member.entry_attr.push_back(AttrRef{atom.rel, link.entry_pos});
      member.exit_attr.push_back(AttrRef{atom.rel, link.exit_pos});
      if (!link.unary) {
        auto [it, fresh] = orientation.emplace(atom.rel, link.entry_pos);
        if (!fresh && it->second != link.entry_pos) {
          return Status::InvalidArgument(
              "bundle members traverse relation '" +
              catalog.schema().relation_name(atom.rel) +
              "' in opposite directions");
        }
      }
    }

    // Slot domains: intersection of the columns of every position a slot's
    // variable occupies in this member.
    const int num_links = static_cast<int>(member.links.size());
    std::vector<VarId> slot_var(num_links + 1);
    slot_var[0] = member.links[0].entry_var;
    for (int i = 0; i < num_links; ++i) {
      slot_var[i + 1] = member.links[i].exit_var;
    }
    std::map<VarId, std::vector<AttrRef>> var_positions;
    for (int i = 0; i < num_links; ++i) {
      var_positions[member.links[i].entry_var].push_back(
          member.entry_attr[i]);
      if (!member.links[i].unary) {
        var_positions[member.links[i].exit_var].push_back(
            member.exit_attr[i]);
      }
    }
    for (int i = 0; i <= num_links; ++i) {
      const auto& positions = var_positions[slot_var[i]];
      if (positions.empty() || !catalog.HasColumn(positions[0])) {
        return Status::FailedPrecondition("missing column");
      }
      std::vector<ValueId> domain;
      for (ValueId v : catalog.Column(positions[0])) {
        bool in_all = true;
        for (size_t j = 1; j < positions.size() && in_all; ++j) {
          in_all = catalog.InColumn(positions[j], v);
        }
        if (in_all) domain.push_back(v);
      }
      member.slot_domain.push_back(std::move(domain));
    }
    members.push_back(std::move(member));
  }

  // ---- Shared nodes ---------------------------------------------------------
  FlowGraphBuilder builder;

  const auto s = builder.AddNode();
  const auto t = builder.AddNode();

  struct NodePair {
    int32_t v = -1;
    int32_t w = -1;
  };
  std::unordered_map<SelectionView, NodePair, SelectionViewHasher> nodes;
  // kView tags carry an index into this list (`tag.link`), mapping cut
  // edges back to the purchased view.
  std::vector<SelectionView> cut_views;
  int64_t view_edge_count = 0;
  auto node_pair = [&](AttrRef attr, ValueId value) -> NodePair {
    SelectionView key{attr, value};
    auto it = nodes.find(key);
    if (it != nodes.end()) return it->second;
    NodePair pair{builder.AddNode(), builder.AddNode()};
    Money capacity = prices.Get(key);
    if (IsInfinite(capacity)) {
      builder.AddEdge(pair.v, pair.w, capacity);
    } else {
      builder.AddTaggedEdge(
          pair.v, pair.w, capacity,
          FlowEdgeTag{FlowEdgeTag::Kind::kView,
                      static_cast<int32_t>(cut_views.size()), 0, 0});
      cut_views.push_back(key);
      ++view_edge_count;
    }
    nodes.emplace(key, pair);
    return pair;
  };

  // Tuple edges once per binary relation over the full column product.
  std::set<RelationId> tuple_edges_done;
  for (const MemberChain& member : members) {
    for (size_t i = 0; i < member.links.size(); ++i) {
      if (member.links[i].unary) continue;
      RelationId rel = member.query->atoms()[member.links[i].atom_idx].rel;
      if (!tuple_edges_done.insert(rel).second) continue;
      AttrRef entry = member.entry_attr[i];
      AttrRef exit = member.exit_attr[i];
      for (ValueId a : catalog.Column(entry)) {
        for (ValueId b : catalog.Column(exit)) {
          builder.AddEdge(node_pair(entry, a).w, node_pair(exit, b).v,
                      kInfiniteCapacity);
        }
      }
    }
  }

  // ---- Per-member skip structure (hub construction) -------------------------
  for (const MemberChain& member : members) {
    const int num_links = static_cast<int>(member.links.size());
    // Dense indexes per slot.
    std::vector<std::unordered_map<ValueId, int>> slot_index(num_links + 1);
    for (int i = 0; i <= num_links; ++i) {
      for (size_t j = 0; j < member.slot_domain[i].size(); ++j) {
        slot_index[i].emplace(member.slot_domain[i][j],
                              static_cast<int>(j));
      }
    }
    // Present pairs per link, as dense indexes.
    std::vector<std::vector<std::pair<int, int>>> present(num_links);
    for (int i = 0; i < num_links; ++i) {
      const ChainLink& link = member.links[i];
      const Atom& atom = member.query->atoms()[link.atom_idx];
      std::unordered_set<uint64_t> seen;
      for (const Tuple& tuple : db.Relation(atom.rel)) {
        auto ia = slot_index[i].find(tuple[link.entry_pos]);
        auto ib = slot_index[i + 1].find(tuple[link.exit_pos]);
        if (ia == slot_index[i].end() || ib == slot_index[i + 1].end()) {
          continue;
        }
        if (seen.insert(PackPair(ia->second, ib->second)).second) {
          present[i].emplace_back(ia->second, ib->second);
        }
      }
    }

    // Hub nodes.
    std::vector<int32_t> src_hub(num_links), dst_hub(num_links + 1),
        mid_hub(num_links + 1, -1);
    for (int i = 0; i < num_links; ++i) {
      src_hub[i] =
          builder.AddNodes(static_cast<int>(member.slot_domain[i].size()));
    }
    for (int i = 1; i <= num_links; ++i) {
      dst_hub[i] =
          builder.AddNodes(static_cast<int>(member.slot_domain[i].size()));
    }
    for (int i = 1; i < num_links; ++i) {
      mid_hub[i] =
          builder.AddNodes(static_cast<int>(member.slot_domain[i].size()));
    }
    auto entry_v = [&](int link, int idx) {
      return node_pair(member.entry_attr[link],
                       member.slot_domain[link][idx])
          .v;
    };
    auto exit_w = [&](int link, int idx) {
      const ChainLink& l = member.links[link];
      AttrRef attr = l.unary ? member.entry_attr[link]
                             : member.exit_attr[link];
      return node_pair(attr, member.slot_domain[link + 1][idx]).w;
    };

    for (size_t a = 0; a < member.slot_domain[0].size(); ++a) {
      builder.AddEdge(s, src_hub[0] + static_cast<int>(a), kInfiniteCapacity);
    }
    for (int i = 0; i + 1 < num_links; ++i) {
      for (const auto& [a, b] : present[i]) {
        builder.AddEdge(src_hub[i] + a, src_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int m = 0; m < num_links; ++m) {
      for (size_t a = 0; a < member.slot_domain[m].size(); ++a) {
        builder.AddEdge(src_hub[m] + static_cast<int>(a),
                    entry_v(m, static_cast<int>(a)), kInfiniteCapacity);
      }
    }
    for (size_t b = 0; b < member.slot_domain[num_links].size(); ++b) {
      builder.AddEdge(dst_hub[num_links] + static_cast<int>(b), t,
                  kInfiniteCapacity);
    }
    for (int i = 1; i < num_links; ++i) {
      for (const auto& [a, b] : present[i]) {
        builder.AddEdge(dst_hub[i] + a, dst_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int l = 0; l < num_links; ++l) {
      for (size_t b = 0; b < member.slot_domain[l + 1].size(); ++b) {
        builder.AddEdge(exit_w(l, static_cast<int>(b)),
                    dst_hub[l + 1] + static_cast<int>(b),
                    kInfiniteCapacity);
      }
    }
    for (int l = 0; l + 1 < num_links; ++l) {
      for (size_t b = 0; b < member.slot_domain[l + 1].size(); ++b) {
        builder.AddEdge(exit_w(l, static_cast<int>(b)),
                    mid_hub[l + 1] + static_cast<int>(b),
                    kInfiniteCapacity);
      }
    }
    for (int i = 1; i + 1 < num_links; ++i) {
      for (const auto& [a, b] : present[i]) {
        builder.AddEdge(mid_hub[i] + a, mid_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int m = 1; m < num_links; ++m) {
      for (size_t a = 0; a < member.slot_domain[m].size(); ++a) {
        builder.AddEdge(mid_hub[m] + static_cast<int>(a),
                    entry_v(m, static_cast<int>(a)), kInfiniteCapacity);
      }
    }
  }

  // ---- Solve ----------------------------------------------------------------
  int64_t flow = builder.net().MaxFlow(s, t);
  if (stats != nullptr) {
    stats->nodes = builder.net().num_nodes();
    stats->edges = builder.net().num_edges();
    stats->view_edges = view_edge_count;
    stats->max_flow = flow;
  }
  PricingSolution solution;
  solution.price = flow >= kInfiniteCapacity ? kInfiniteMoney : flow;
  if (!IsInfinite(solution.price)) {
    std::set<SelectionView> support;
    QP_ASSIGN_OR_RETURN(std::vector<FlowNetwork::EdgeId> cut,
                        builder.net().MinCutEdges());
    for (FlowNetwork::EdgeId e : cut) {
      const FlowEdgeTag& tag = builder.tag(e);
      if (tag.kind == FlowEdgeTag::Kind::kView) {
        support.insert(cut_views[tag.link]);
      }
    }
    solution.support.assign(support.begin(), support.end());
  }
  // Return-boundary invariant (Prop 2.8) on the merged-cut bundle price.
  CheckPriceNonNegative(solution.price, "PriceChainBundleByMergedCut");
  return solution;
}

}  // namespace qp
