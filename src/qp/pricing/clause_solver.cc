#include "qp/pricing/clause_solver.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "qp/obs/metrics.h"
#include "qp/pricing/hitting_set.h"
#include "qp/util/hash.h"

namespace qp {
namespace {

struct ClauseHasher {
  size_t operator()(const std::vector<int>& clause) const {
    return HashRange(clause);
  }
};

/// Clause accumulator. An unordered set suffices for dedupe: the hitting-
/// set solver re-sorts clauses deterministically, so insertion/iteration
/// order here never reaches the search.
using ClauseSet = std::unordered_set<std::vector<int>, ClauseHasher>;

/// Shared view universe across the bundle's members.
struct ViewUniverse {
  const SelectionPriceSet& prices;
  std::vector<SelectionView> views;
  std::unordered_map<SelectionView, int, SelectionViewHasher> index;

  /// Index of a priced view, or -1 if the view is not for sale.
  int IdOf(AttrRef attr, ValueId value) {
    SelectionView view{attr, value};
    if (!prices.Has(view)) return -1;
    auto it = index.find(view);
    if (it != index.end()) return it->second;
    int id = static_cast<int>(views.size());
    views.push_back(view);
    index.emplace(view, id);
    return id;
  }
};

enum class ClauseBuildOutcome {
  kOk,          // clauses appended
  kInfeasible,  // some clause is empty: no view set determines the query
  kTrivial,     // no candidates exist: trivially determined (price 0)
};

/// Builds the determinacy clauses of one full query (see header) into
/// `clause_set`, sharing `universe` across the bundle.
Result<ClauseBuildOutcome> BuildClauses(const Instance& db,
                                        const ConjunctiveQuery& query,
                                        const ClauseSolverOptions& options,
                                        ViewUniverse* universe,
                                        ClauseSet* clause_set,
                                        int64_t* candidates_out) {
  const Catalog& catalog = db.catalog();

  // Variable domains: column intersection filtered by predicates (the
  // Step 1 argument applies to any full query).
  std::vector<std::vector<AttrRef>> var_attrs(query.num_vars());
  for (const Atom& atom : query.atoms()) {
    for (size_t p = 0; p < atom.args.size(); ++p) {
      AttrRef attr{atom.rel, static_cast<int>(p)};
      if (!catalog.HasColumn(attr)) {
        return Status::FailedPrecondition(
            "pricing requires a declared column on " +
            catalog.schema().AttrToString(attr));
      }
      if (atom.args[p].is_var()) var_attrs[atom.args[p].var].push_back(attr);
    }
  }
  std::vector<std::vector<ValueId>> domain(query.num_vars());
  size_t candidate_count = 1;
  for (VarId v = 0; v < query.num_vars(); ++v) {
    if (var_attrs[v].empty()) {
      return Status::InvalidArgument("variable does not occur in the body");
    }
    for (ValueId value : catalog.Column(var_attrs[v][0])) {
      bool ok = true;
      for (size_t i = 1; i < var_attrs[v].size() && ok; ++i) {
        ok = catalog.InColumn(var_attrs[v][i], value);
      }
      for (const UnaryPredicate& pred : query.predicates()) {
        if (!ok) break;
        if (pred.var == v) ok = pred.Eval(catalog.dict().Get(value));
      }
      if (ok) domain[v].push_back(value);
    }
    if (domain[v].empty()) return ClauseBuildOutcome::kTrivial;
    candidate_count *= domain[v].size();
    if (candidate_count > options.max_candidates) {
      if (options.budget.active()) {
        return Status::DeadlineExceeded(
            "candidate space exceeds max_candidates");
      }
      return Status::ResourceExhausted(
          "candidate space exceeds max_candidates");
    }
  }

  // Constants: a constant outside its column kills every candidate of the
  // query, making it empty in all worlds.
  std::vector<std::vector<ValueId>> const_ids(query.atoms().size());
  for (size_t a = 0; a < query.atoms().size(); ++a) {
    const Atom& atom = query.atoms()[a];
    const_ids[a].assign(atom.args.size(), 0);
    for (size_t p = 0; p < atom.args.size(); ++p) {
      if (atom.args[p].is_var()) continue;
      AttrRef attr{atom.rel, static_cast<int>(p)};
      auto id = catalog.dict().Find(atom.args[p].constant);
      if (!id.has_value() || !catalog.InColumn(attr, *id)) {
        return ClauseBuildOutcome::kTrivial;
      }
      const_ids[a][p] = *id;
    }
  }

  auto add_clause = [&](std::vector<int> clause) -> bool {
    if (clause.empty()) return false;
    std::sort(clause.begin(), clause.end());
    clause.erase(std::unique(clause.begin(), clause.end()), clause.end());
    clause_set->insert(std::move(clause));
    return true;
  };

  std::vector<size_t> idx(query.num_vars(), 0);
  Tuple assignment(query.num_vars());
  // Witness tuples of one candidate; a flat vector sorted per candidate —
  // a handful of atoms doesn't justify a node-allocating std::map in this
  // innermost loop.
  struct Witness {
    RelationId rel;
    Tuple tuple;
    bool present;
  };
  std::vector<Witness> witness;
  witness.reserve(query.atoms().size());
  while (true) {
    ++*candidates_out;
    if (options.budget.ConsumeNode()) {
      // A partial clause set is NOT an admissible over-estimate; bail so
      // the engine can fall back to the full-cover quote instead.
      return Status::DeadlineExceeded(
          "clause construction exceeded the serving budget");
    }
    for (VarId v = 0; v < query.num_vars(); ++v) {
      assignment[v] = domain[v][idx[v]];
    }
    witness.clear();
    for (size_t a = 0; a < query.atoms().size(); ++a) {
      const Atom& atom = query.atoms()[a];
      Tuple t(atom.args.size());
      for (size_t p = 0; p < atom.args.size(); ++p) {
        t[p] = atom.args[p].is_var() ? assignment[atom.args[p].var]
                                     : const_ids[a][p];
      }
      bool present = db.Contains(atom.rel, t);
      witness.push_back(Witness{atom.rel, std::move(t), present});
    }
    // Deduplicate for self-joins (duplicates agree on `present`).
    std::sort(witness.begin(), witness.end(),
              [](const Witness& a, const Witness& b) {
                if (a.rel != b.rel) return a.rel < b.rel;
                return a.tuple < b.tuple;
              });
    witness.erase(std::unique(witness.begin(), witness.end(),
                              [](const Witness& a, const Witness& b) {
                                return a.rel == b.rel && a.tuple == b.tuple;
                              }),
                  witness.end());
    bool is_answer =
        std::all_of(witness.begin(), witness.end(),
                    [](const Witness& w) { return w.present; });
    if (is_answer) {
      // (A): every witness tuple individually covered.
      for (const Witness& w : witness) {
        std::vector<int> clause;
        for (size_t p = 0; p < w.tuple.size(); ++p) {
          int id =
              universe->IdOf(AttrRef{w.rel, static_cast<int>(p)}, w.tuple[p]);
          if (id >= 0) clause.push_back(id);
        }
        if (!add_clause(std::move(clause))) {
          return ClauseBuildOutcome::kInfeasible;
        }
      }
    } else {
      // (B): some absent witness tuple covered.
      std::vector<int> clause;
      for (const Witness& w : witness) {
        if (w.present) continue;
        for (size_t p = 0; p < w.tuple.size(); ++p) {
          int id =
              universe->IdOf(AttrRef{w.rel, static_cast<int>(p)}, w.tuple[p]);
          if (id >= 0) clause.push_back(id);
        }
      }
      if (!add_clause(std::move(clause))) {
        return ClauseBuildOutcome::kInfeasible;
      }
    }

    int v = query.num_vars() - 1;
    while (v >= 0 && ++idx[v] == domain[v].size()) idx[v--] = 0;
    if (v < 0) break;
  }
  return ClauseBuildOutcome::kOk;
}

}  // namespace

Result<PricingSolution> PriceFullBundleByClauses(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const ClauseSolverOptions& options, ClauseSolverStats* stats) {
  if (queries.empty()) {
    // The empty bundle is free (Proposition 2.8, "not asking is free").
    PricingSolution empty;
    empty.price = 0;
    return empty;
  }
  for (const ConjunctiveQuery& q : queries) {
    if (!q.IsFull()) {
      return Status::InvalidArgument(
          "the clause solver prices full queries only");
    }
  }

  ViewUniverse universe{prices, {}, {}};
  ClauseSet clause_set;
  int64_t candidates = 0;
  bool infeasible = false;
  for (const ConjunctiveQuery& q : queries) {
    auto outcome = BuildClauses(db, q, options, &universe, &clause_set,
                                &candidates);
    if (!outcome.ok()) return outcome.status();
    if (*outcome == ClauseBuildOutcome::kInfeasible) {
      infeasible = true;
      break;
    }
    // kTrivial members impose no clauses.
  }

  PricingSolution solution;
  if (infeasible) {
    solution.price = kInfiniteMoney;
    if (stats != nullptr) stats->candidates = candidates;
    return solution;
  }

  HittingSetInstance hs;
  hs.weights.reserve(universe.views.size());
  for (const SelectionView& v : universe.views) {
    hs.weights.push_back(prices.Get(v));
  }
  hs.clauses.assign(clause_set.begin(), clause_set.end());

  HittingSetResult hs_result =
      SolveMinWeightHittingSet(hs, options.node_limit, options.budget);
  if (!hs_result.optimal) {
    if (hs_result.budget_exhausted) {
      if (IsInfinite(hs_result.cost)) {
        return Status::DeadlineExceeded(
            "clause solver exceeded the serving budget before finding any "
            "feasible hitting set");
      }
      // Degrade: the incumbent/greedy hitting set is a feasible cover, so
      // its cost is an admissible over-estimate of the exact price.
    } else {
      return Status::ResourceExhausted(
          "clause solver hit its node limit (price upper bound: " +
          MoneyToString(hs_result.cost) + ")");
    }
  }
  if (stats != nullptr) {
    stats->candidates = candidates;
    stats->clauses = static_cast<int64_t>(hs.clauses.size());
    stats->views = static_cast<int64_t>(universe.views.size());
    stats->nodes_expanded = hs_result.nodes_expanded;
  }
  solution.approximate = !hs_result.optimal;
  solution.price = hs_result.cost;
  for (int item : hs_result.chosen) {
    solution.support.push_back(universe.views[item]);
  }
  std::sort(solution.support.begin(), solution.support.end());
  return solution;
}

Result<PricingSolution> PriceFullQueryByClauses(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ClauseSolverOptions& options,
    ClauseSolverStats* stats) {
  QP_METRIC_INCR("qp.solver.clause.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.clause_ns");
  return PriceFullBundleByClauses(db, prices, {query}, options, stats);
}

}  // namespace qp
