#ifndef QP_PRICING_PRICE_ADVISOR_H_
#define QP_PRICING_PRICE_ADVISOR_H_

#include <vector>

#include "qp/pricing/consistency.h"
#include "qp/pricing/price_points.h"

namespace qp {

/// One price the advisor lowered while repairing an inconsistent offering.
struct PriceAdjustment {
  SelectionView view;
  Money old_price = 0;
  Money new_price = 0;
};

struct RepairResult {
  SelectionPriceSet repaired;
  std::vector<PriceAdjustment> adjustments;
};

/// Repairs an inconsistent selection price set by lowering every explicit
/// price to the consistency bound of Proposition 3.2:
///   p(σ_{R.X=a})  <-  min(p, min_Y Σ_b p(σ_{R.Y=b}))
/// iterated to a fixpoint (capping one price shrinks other attributes'
/// full-cover sums). Prices only go *down*, matching the paper's "price
/// updates" discussion (Section 4): additions to S can only introduce
/// discounts, never raise prices. The result is consistent and dominates
/// every other consistent price set that is pointwise ≤ the input.
RepairResult RepairConsistency(const Catalog& catalog,
                               const SelectionPriceSet& prices);

}  // namespace qp

#endif  // QP_PRICING_PRICE_ADVISOR_H_
