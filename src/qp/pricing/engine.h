#ifndef QP_PRICING_ENGINE_H_
#define QP_PRICING_ENGINE_H_

#include <string>
#include <vector>

#include "qp/pricing/chain_solver.h"
#include "qp/pricing/classifier.h"
#include "qp/pricing/clause_solver.h"
#include "qp/pricing/consistency.h"
#include "qp/pricing/exhaustive_solver.h"
#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"

namespace qp {

/// A priced query: the arbitrage-price, its optimal support, and how the
/// engine derived it.
struct PriceQuote {
  PricingSolution solution;
  PricingClass query_class = PricingClass::kNPHardFull;
  /// Whether the dichotomy (Theorem 3.16) guarantees PTIME for this query.
  bool ptime = false;
  std::string solver;
  std::string explanation;
};

/// The query-pricing engine (the paper's main deliverable): given a
/// database, its columns, and the seller's explicit selection-view prices,
/// computes the unique arbitrage-free, discount-free price of any
/// conjunctive query (Equation 2) by dispatching on the dichotomy theorem:
///   * disconnected queries  → Proposition 3.14 composition;
///   * boolean queries       → witness cover / full-version reduction;
///   * generalized chain     → PTIME min-cut pipeline (Theorem 3.7);
///   * cycle queries         → exact clause solver (Theorem 3.15 class);
///   * everything else       → exact exponential solvers (Theorem 3.5/3.16
///                             say nothing faster exists unless P = NP).
class PricingEngine {
 public:
  struct Options {
    ChainSolverOptions chain;
    ClauseSolverOptions clause;
    ExhaustiveSolverOptions exhaustive;
    /// Default serving budget for every Price* call (the per-call budget
    /// overloads take precedence). Inactive by default: no deadline means
    /// bit-identical quotes to an unbudgeted engine.
    SearchBudget budget;
  };

  /// `db` and `prices` must outlive the engine.
  PricingEngine(const Instance* db, const SelectionPriceSet* prices,
                Options options = {});

  /// Prices a single conjunctive query.
  Result<PriceQuote> Price(const ConjunctiveQuery& query) const;

  /// Prices under an explicit serving budget. When the budget expires
  /// before the exact optimum, the quote degrades instead of erroring:
  /// the best feasible cover in hand — incumbent, greedy, or the Lemma 3.1
  /// full-cover fallback — is returned with `solution.approximate` set.
  /// Approximate prices are >= the exact price and are capped at the
  /// determining-cover cost, so they stay arbitrage-safe for the seller.
  Result<PriceQuote> Price(const ConjunctiveQuery& query,
                           const SearchBudget& budget) const;

  /// Prices a bundle: the cheapest view set determining *every* member
  /// (Section 2.2; always subadditive by Proposition 2.8).
  Result<PriceQuote> PriceBundle(
      const std::vector<ConjunctiveQuery>& queries) const;
  Result<PriceQuote> PriceBundle(const std::vector<ConjunctiveQuery>& queries,
                                 const SearchBudget& budget) const;

  /// Prices a union of conjunctive queries (the paper's B(UCQ) language).
  /// A UCQ carries *less* information than the bundle of its disjuncts, so
  /// its price is at most the bundle price.
  Result<PriceQuote> PriceUnion(const UnionQuery& query) const;
  Result<PriceQuote> PriceUnion(const UnionQuery& query,
                                const SearchBudget& budget) const;

  /// Checks the seller's price points for arbitrage (Proposition 3.2).
  ConsistencyReport CheckConsistency() const;

  /// True if the price points determine the whole database (the standing
  /// assumption of Section 2.4, via Lemma 3.1).
  bool SellsWholeDatabase() const;

  const Instance& db() const { return *db_; }
  const SelectionPriceSet& prices() const { return *prices_; }
  const Options& options() const { return options_; }

 private:
  Result<PriceQuote> PriceDispatch(const ConjunctiveQuery& query,
                                   const SearchBudget& budget) const;
  Result<PriceQuote> PriceBundleDispatch(
      const std::vector<ConjunctiveQuery>& queries,
      const SearchBudget& budget) const;
  Result<PriceQuote> PriceConnected(const ConjunctiveQuery& query,
                                    const SearchBudget& budget) const;
  Result<PriceQuote> PriceBoolean(const ConjunctiveQuery& query,
                                  const SearchBudget& budget) const;
  /// Budget post-processing shared by Price/PriceBundle/PriceUnion: turns
  /// DeadlineExceeded into the full-cover fallback quote and caps
  /// approximate prices at the determining-cover cost (Lemma 3.1), keeping
  /// every budgeted quote inside the CheckPriceUpperBound envelope.
  Result<PriceQuote> ApplyBudgetOutcome(Result<PriceQuote> quote,
                                        const SearchBudget& budget,
                                        const std::vector<RelationId>& rels,
                                        const char* context) const;

  const Instance* db_;
  const SelectionPriceSet* prices_;
  Options options_;
};

}  // namespace qp

#endif  // QP_PRICING_ENGINE_H_
