#ifndef QP_PRICING_CONSISTENCY_H_
#define QP_PRICING_CONSISTENCY_H_

#include <string>
#include <vector>

#include "qp/pricing/price_points.h"
#include "qp/util/result.h"

namespace qp {

/// One arbitrage opportunity among the explicit price points: the view can
/// be answered from the full cover of another attribute of the same
/// relation for less than its explicit price.
struct ConsistencyViolation {
  SelectionView view;
  Money view_price = 0;
  AttrRef cheaper_cover_attr;
  Money cover_price = 0;

  std::string ToString(const Catalog& catalog) const;
};

struct ConsistencyReport {
  bool consistent = true;
  std::vector<ConsistencyViolation> violations;
};

/// Checks consistency of a selection-view price set (Proposition 3.2):
/// S is consistent iff for every relation R, attributes X, Y and constant
/// a ∈ Col R.X:  p(σ_{R.X=a}) ≤ Σ_{b ∈ Col R.Y} p(σ_{R.Y=b}).
/// Instance-independent (unlike general price points, Section 2.7).
ConsistencyReport CheckSelectionConsistency(const Catalog& catalog,
                                            const SelectionPriceSet& prices);

}  // namespace qp

#endif  // QP_PRICING_CONSISTENCY_H_
