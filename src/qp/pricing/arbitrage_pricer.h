#ifndef QP_PRICING_ARBITRAGE_PRICER_H_
#define QP_PRICING_ARBITRAGE_PRICER_H_

#include <string>
#include <vector>

#include "qp/determinacy/world_enumeration.h"
#include "qp/pricing/money.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// An explicit price point (V, p) of Section 2.4: a query bundle sold at a
/// fixed price.
struct GeneralPricePoint {
  std::string name;
  QueryBundle views;
  Money price = 0;
};

/// Which determinacy relation backs the pricing function.
enum class DeterminacyMode {
  /// Instance-based determinacy ։ (Definition 2.2).
  kInstanceBased,
  /// Its restriction ։* (Proposition 2.24): monotone for monotone views,
  /// so prices never decrease under insertions.
  kRestricted,
};

/// The outcome of Equation 2 on one query bundle.
struct ArbitrageQuote {
  Money price = kInfiniteMoney;
  /// Names of the price points in the cheapest support.
  std::vector<std::string> support;
};

/// One violation of Theorem 2.15's consistency criterion.
struct GeneralInconsistency {
  std::string point_name;
  Money explicit_price = 0;
  Money arbitrage_price = 0;
  std::vector<std::string> cheaper_support;
};

struct GeneralConsistencyReport {
  bool consistent = true;
  std::vector<GeneralInconsistency> violations;
};

/// The Section 2 pricing framework in full generality: explicit price
/// points on arbitrary UCQ bundles, the fundamental arbitrage-price
/// formula (Equation 2), and the consistency test of Theorem 2.15.
///
/// Determinacy is decided exactly by possible-world enumeration, which is
/// exponential in the candidate-tuple space (the generic problem is
/// Σp2-hard, Corollary 2.16) — intended for small schemas: demos, tests,
/// and validating the tractable Section 3 machinery.
class ArbitragePricer {
 public:
  /// `db` must outlive the pricer.
  ArbitragePricer(const Instance* db, std::vector<GeneralPricePoint> points,
                  DeterminacyMode mode = DeterminacyMode::kInstanceBased,
                  WorldEnumerationOptions options = {});

  /// The arbitrage-price p_S_D(Q) (Equation 2): the cheapest subset of
  /// price points whose union determines Q. kInfiniteMoney if no subset
  /// does (then S does not determine Q, e.g. ID is not for sale).
  Result<ArbitrageQuote> Price(const QueryBundle& query) const;

  /// Theorem 2.15(1): S is consistent iff no explicit price point can be
  /// answered more cheaply from the other points.
  Result<GeneralConsistencyReport> CheckConsistency() const;

  const std::vector<GeneralPricePoint>& points() const { return points_; }

 private:
  Result<bool> Determines(const QueryBundle& views,
                          const QueryBundle& query) const;

  const Instance* db_;
  std::vector<GeneralPricePoint> points_;
  DeterminacyMode mode_;
  WorldEnumerationOptions options_;
};

}  // namespace qp

#endif  // QP_PRICING_ARBITRAGE_PRICER_H_
