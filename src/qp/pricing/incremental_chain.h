#ifndef QP_PRICING_INCREMENTAL_CHAIN_H_
#define QP_PRICING_INCREMENTAL_CHAIN_H_

#include <memory>
#include <vector>

#include "qp/flow/graph_builder.h"
#include "qp/pricing/chain_solver.h"
#include "qp/pricing/solution.h"
#include "qp/pricing/work_problem.h"
#include "qp/util/result.h"

namespace qp {

/// Persistent chain min-cut state for warm repricing. Build constructs
/// the same present-pairs hub graph the one-shot solver uses and
/// cold-solves it, remembering the hub-node layout. A later single-tuple
/// insert appends at most three infinite edges (the pair's src / dst /
/// mid family copies) directly into the arena — a new edge carries zero
/// flow, so the previous optimal flow stays feasible — and Refresh
/// re-augments from it instead of rebuilding the graph. Repricing costs
/// time proportional to the change (the tentpole warm-start path used by
/// DynamicPricer), and the graph stays as small as the static solver's
/// instead of carrying a quadratic all-pairs edge arena.
///
/// The appended edges are exactly the family edges the one-shot solver
/// would have built with the tuple present, so the price always equals
/// what SolveChainMinCut computes on the same problem with the tuple
/// applied — property-tested by the cross-solver warm-start axis.
///
/// The state is a snapshot: it copies the problem and stays correct only
/// for inserts routed through InsertLinkPair. Deletions or out-of-band
/// instance changes require a rebuild (DynamicPricer keys validity on
/// per-relation generation counters).
///
/// Threading contract (DESIGN.md §13): externally synchronized — owned
/// and driven by one thread at a time (in practice its owning
/// DynamicPricer watch entry). The underlying flow arena is resumable
/// but not concurrent; no internal lock, no capability annotations.
class IncrementalChainState {
 public:
  /// Builds the graph and runs the cold solve. Fails only if the
  /// underlying solve fails.
  static Result<std::unique_ptr<IncrementalChainState>> Build(
      const WorkProblem& problem, const std::vector<WorkLink>& links,
      FlowSolver solver);

  /// Marks the pair (entry value, exit value) of chain link `link` as
  /// present. Returns false — changing nothing — when either value falls
  /// outside the harmonized domains (the tuple joins nothing) or the pair
  /// is already present. Capacities are patched immediately; call
  /// Refresh() once per batch to re-augment.
  bool InsertLinkPair(int link, ValueId entry, ValueId exit);

  /// Re-augments from the previous flow after InsertLinkPair calls and
  /// re-extracts price + support. No-op when no pair was flipped.
  Status Refresh();

  /// Chain link index owning atom `atom_idx` of the problem, or -1.
  int LinkOfAtom(int atom_idx) const;

  int num_links() const { return static_cast<int>(links_.size()); }
  const std::vector<WorkLink>& links() const { return links_; }

  /// Current price + support; valid after Build and after each Refresh.
  const PricingSolution& solution() const { return solution_; }

  ~IncrementalChainState();

 private:
  IncrementalChainState();

  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::vector<WorkLink> links_;
  PricingSolution solution_;
};

}  // namespace qp

#endif  // QP_PRICING_INCREMENTAL_CHAIN_H_
