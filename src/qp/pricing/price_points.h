#ifndef QP_PRICING_PRICE_POINTS_H_
#define QP_PRICING_PRICE_POINTS_H_

#include <string_view>
#include <unordered_map>
#include <vector>

#include "qp/pricing/money.h"
#include "qp/query/query.h"
#include "qp/query/selection_view.h"
#include "qp/relational/catalog.h"
#include "qp/util/result.h"

namespace qp {

/// The seller's explicit price points restricted to selection views:
/// a partial function p : Σ -> Money (Section 3). Views without an explicit
/// price are not for sale (infinite price).
class SelectionPriceSet {
 public:
  SelectionPriceSet() = default;

  /// Sets the price of σ_{attr=value}. Prices must be >= 0.
  Status Set(SelectionView view, Money price);

  /// Convenience: resolves names and interns the value via the catalog's
  /// dictionary. The value must belong to the attribute's column.
  Status Set(Catalog& catalog, std::string_view rel, std::string_view attr,
             const Value& value, Money price);

  /// Prices every value of the attribute's column at `price` (the
  /// "$199 per state" pattern of the introduction).
  Status SetUniform(Catalog& catalog, std::string_view rel,
                    std::string_view attr, Money price);

  /// Removes an explicit price (the view becomes not-for-sale).
  void Unset(const SelectionView& view) { prices_.erase(view); }

  bool Has(const SelectionView& view) const {
    return prices_.count(view) > 0;
  }

  /// The explicit price, or kInfiniteMoney if not for sale.
  Money Get(const SelectionView& view) const;

  /// True if every value of Col attr has an explicit price (a purchasable
  /// full cover Σ_{R.X}, Lemma 3.1).
  bool FullyCovers(const Catalog& catalog, AttrRef attr) const;

  /// Σ_a p(σ_{attr=a}) over the column, or kInfiniteMoney if some value is
  /// unpriced.
  Money FullCoverCost(const Catalog& catalog, AttrRef attr) const;

  /// True if, for every relation, some attribute is fully covered — i.e.
  /// the price points determine ID, the standing assumption of Section 2.4
  /// (via Lemma 3.1). Relations in `relations` only; pass all relations to
  /// check the whole schema.
  bool SellsWholeDatabase(const Catalog& catalog,
                          const std::vector<RelationId>& relations) const;

  size_t size() const { return prices_.size(); }
  const std::unordered_map<SelectionView, Money, SelectionViewHasher>&
  entries() const {
    return prices_;
  }

  /// Deterministic (sorted) listing, for display and tests.
  std::vector<std::pair<SelectionView, Money>> Sorted() const;

 private:
  std::unordered_map<SelectionView, Money, SelectionViewHasher> prices_;
};

}  // namespace qp

#endif  // QP_PRICING_PRICE_POINTS_H_
