#ifndef QP_PRICING_PAIR_VIEWS_H_
#define QP_PRICING_PAIR_VIEWS_H_

#include <unordered_map>

#include "qp/pricing/chain_solver.h"
#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Explicit prices on multi-attribute selections σ_{R.X=a, R.Y=b} over
/// binary relations (Section 4, "Selections on Multiple Attributes").
/// For *chain queries* these integrate into the min-cut reduction by
/// giving the corresponding tuple edge a finite capacity; the paper shows
/// the same is NP-hard already for a single ternary atom, so this price
/// type is supported for chain queries only.
class PairPriceSet {
 public:
  /// Sets the price of σ_{rel.0=a, rel.1=b}. The relation must be binary.
  Status Set(Catalog& catalog, std::string_view rel, const Value& a,
             const Value& b, Money price);

  Money Get(RelationId rel, ValueId a, ValueId b) const;
  size_t size() const { return prices_.size(); }

 private:
  struct Key {
    RelationId rel;
    ValueId a;
    ValueId b;
    bool operator==(const Key& other) const {
      return rel == other.rel && a == other.a && b == other.b;
    }
  };
  struct KeyHasher {
    size_t operator()(const Key& k) const {
      return HashCombine(HashCombine(k.rel, k.a), k.b);
    }
  };
  std::unordered_map<Key, Money, KeyHasher> prices_;
};

/// Prices a chain query under single-attribute prices plus pair prices:
/// the Section 4 extension of Theorem 3.13. The query must be a chain
/// (Definition 3.12) — unary/binary atoms, no constants, predicates or
/// repeated variables, no hanging variables.
Result<PricingSolution> PriceChainQueryWithPairPrices(
    const Instance& db, const SelectionPriceSet& prices,
    const PairPriceSet& pair_prices, const ConjunctiveQuery& query,
    const ChainSolverOptions& options = {});

}  // namespace qp

#endif  // QP_PRICING_PAIR_VIEWS_H_
