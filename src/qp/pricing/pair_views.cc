#include "qp/pricing/pair_views.h"

#include "qp/query/analysis.h"
#include "qp/pricing/work_problem.h"

namespace qp {

Status PairPriceSet::Set(Catalog& catalog, std::string_view rel,
                         const Value& a, const Value& b, Money price) {
  if (price < 0) {
    return Status::InvalidArgument("pair prices must be non-negative");
  }
  auto rel_id = catalog.schema().FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  if (catalog.schema().arity(*rel_id) != 2) {
    return Status::InvalidArgument(
        "pair prices are defined on binary relations only");
  }
  ValueId ia = catalog.Intern(a);
  ValueId ib = catalog.Intern(b);
  if (!catalog.InColumn(AttrRef{*rel_id, 0}, ia) ||
      !catalog.InColumn(AttrRef{*rel_id, 1}, ib)) {
    return Status::InvalidArgument(
        "pair-priced values must belong to the relation's columns");
  }
  prices_[Key{*rel_id, ia, ib}] = price;
  return Status::Ok();
}

Money PairPriceSet::Get(RelationId rel, ValueId a, ValueId b) const {
  auto it = prices_.find(Key{rel, a, b});
  return it == prices_.end() ? kInfiniteMoney : it->second;
}

Result<PricingSolution> PriceChainQueryWithPairPrices(
    const Instance& db, const SelectionPriceSet& prices,
    const PairPriceSet& pair_prices, const ConjunctiveQuery& query,
    const ChainSolverOptions& options) {
  if (!query.IsFull() || query.HasSelfJoin() || !query.predicates().empty()) {
    return Status::InvalidArgument(
        "pair-priced pricing supports full, predicate-free chain queries");
  }
  auto problem = BuildWorkProblem(db, prices, query);
  if (!problem.ok()) return problem.status();
  auto links = BuildWorkChain(*problem);
  if (!links.ok()) {
    return Status::InvalidArgument(
        "pair-priced pricing requires a chain query in chain atom order: " +
        links.status().message());
  }
  // Map link index -> relation, respecting the link's orientation: the
  // flow tuple edge runs entry -> exit, and σ_{R.X=a,R.Y=b} is keyed by
  // attribute position, so swap when the link enters through position 1.
  std::vector<RelationId> link_rel(links->size());
  std::vector<bool> swapped(links->size());
  for (size_t i = 0; i < links->size(); ++i) {
    link_rel[i] = query.atoms()[(*links)[i].atom].rel;
    swapped[i] = (*links)[i].entry_pos == 1;
  }
  PairPriceFn fn = [&](int link, ValueId entry, ValueId exit) -> Money {
    if (swapped[link]) return pair_prices.Get(link_rel[link], exit, entry);
    return pair_prices.Get(link_rel[link], entry, exit);
  };
  std::vector<CutPairEdge> cut_pairs;
  auto solution =
      SolveChainMinCut(*problem, *links, options, nullptr, &fn, &cut_pairs);
  if (!solution.ok()) return solution.status();
  for (const CutPairEdge& edge : cut_pairs) {
    PairSelectionView pair;
    pair.x = AttrRef{link_rel[edge.link], 0};
    pair.y = AttrRef{link_rel[edge.link], 1};
    pair.a = swapped[edge.link] ? edge.exit : edge.entry;
    pair.b = swapped[edge.link] ? edge.entry : edge.exit;
    solution->pair_support.push_back(pair);
  }
  return solution;
}

}  // namespace qp
