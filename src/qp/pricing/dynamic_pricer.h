#ifndef QP_PRICING_DYNAMIC_PRICER_H_
#define QP_PRICING_DYNAMIC_PRICER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "qp/pricing/batch_pricer.h"
#include "qp/pricing/engine.h"
#include "qp/pricing/incremental_pricer.h"
#include "qp/pricing/quote_cache.h"
#include "qp/util/status.h"

namespace qp {

/// Dynamic pricing (Section 2.7): the explicit price points stay fixed
/// while the database grows by insertions; watched queries are repriced
/// after every batch.
///
/// Repricing is incremental, with three tiers per watched query:
///  1. *cache-served* — no relation of the query mutated; the versioned
///     QuoteCache (keyed by query fingerprint + per-relation generation
///     counters) returns the quote with no solver work;
///  2. *warm* — the query is GChQ-routable and its IncrementalGChQPricer
///     state is still generation-synced: each newly inserted row is
///     replayed into the frozen plan as capacity flips and the flow is
///     resumed (`qp.flow.warm_starts`) instead of re-solving from scratch;
///  3. *cold* — everything else is re-solved through the engine, possibly
///     in parallel via `reprice_threads > 1`; results stay bit-identical
///     because every query runs the exact sequential solver path.
/// Warm state is keyed to the instance's generation counters at the last
/// sync; any out-of-band mutation (Erase, writes not routed through this
/// pricer) invalidates it, forcing a cold re-solve plus a state rebuild
/// (`qp.dynamic.incremental_rebuilds`).
///
/// When all views are selection queries and a watched query is a full CQ,
/// instance-based determinacy is monotone (Proposition 2.20), hence the
/// dynamic arbitrage-price never decreases under insertions
/// (Proposition 2.22) and consistency, once established, is preserved
/// (Proposition 2.23). `MonotonicityGuaranteed` reports whether the
/// guarantee applies to a given query.
///
/// Threading contract (DESIGN.md §13): externally synchronized. The
/// pricer mutates the database and its own watch/warm state on Insert/
/// Reprice, so exactly one thread may drive an instance at a time (its
/// internal reprice_threads parallelism is self-contained). No internal
/// lock, hence no capability annotations here.
class DynamicPricer {
 public:
  /// `db` and `prices` must outlive the pricer. The pricer mutates `db`
  /// through Insert. `reprice_threads` is the worker count for repricing
  /// stale watched queries after an insert batch (1 = on the caller).
  DynamicPricer(Instance* db, const SelectionPriceSet* prices,
                PricingEngine::Options options = {}, int reprice_threads = 1);

  /// Registers a query for repricing. Returns its initial quote.
  /// Re-watching an existing name with a different query evicts the old
  /// query's cache entry (unless another watched name still shares it), so
  /// superseded fingerprints don't linger in the cache.
  Result<PriceQuote> Watch(const std::string& name,
                           const ConjunctiveQuery& query);

  /// The most recent quote of a watched query.
  Result<PriceQuote> CurrentQuote(const std::string& name) const;

  struct PriceChange {
    std::string query;
    Money before = 0;
    Money after = 0;
    /// True if the quote survived the batch untouched (no relation of the
    /// query mutated) and was served from the cache without solver work.
    bool from_cache = false;
    /// Per-query re-solve outcome. On failure the watched query keeps its
    /// pre-batch quote (now stale), `after` repeats `before`, and the rest
    /// of the batch still reprices — one hard query no longer strands
    /// every other watched quote.
    Status status = Status::Ok();
  };

  /// Inserts tuples, then reprices every watched query. The whole row
  /// batch is validated before any row is committed (all-or-nothing: a bad
  /// row means no mutation and no repricing). Returns the price movements
  /// (after - before is >= 0 whenever MonotonicityGuaranteed); per-query
  /// re-solve failures are reported in PriceChange::status, not as a
  /// batch-level error.
  Result<std::vector<PriceChange>> Insert(
      std::string_view rel, const std::vector<std::vector<Value>>& rows);

  /// True if Proposition 2.20 applies: the query is a full CQ (and all
  /// explicit prices are on selection views by construction), so its price
  /// is monotone under insertions.
  static bool MonotonicityGuaranteed(const ConjunctiveQuery& query) {
    return query.IsFull();
  }

  /// Price-point consistency; with selection views this is
  /// instance-independent (Proposition 3.2), so insertions cannot break
  /// it.
  ConsistencyReport CheckConsistency() const {
    return engine_.CheckConsistency();
  }

  const PricingEngine& engine() const { return engine_; }

  /// The quote cache backing incremental repricing; `stats().hits` counts
  /// quotes served with no solver work.
  const QuoteCache& cache() const { return cache_; }

 private:
  struct Watched {
    ConjunctiveQuery query;
    std::string fingerprint;
    PriceQuote last_quote;
    /// Warm-start state for GChQ-routable queries (null otherwise): the
    /// frozen case-split plan with resumable flow leaves.
    std::unique_ptr<IncrementalGChQPricer> incremental;
    /// Instance generations of `incremental->relations()` at the last
    /// sync. A mismatch beyond this batch's own inserts means someone
    /// mutated the instance out-of-band: the warm state is stale.
    std::vector<uint64_t> synced_gens;
  };

  /// Builds (or rebuilds) `watched.incremental` when the quote came from
  /// the gchq-min-cut solver; records synced generations.
  void TryBuildIncremental(Watched* watched);
  /// True when every tracked relation's generation matches the last sync,
  /// allowing `inserted_in_batch` newly inserted rows in `mutated`.
  bool IncrementalInSync(const Watched& watched, RelationId mutated,
                         uint64_t inserted_in_batch) const;

  Instance* db_;
  PricingEngine engine_;
  QuoteCache cache_;
  int reprice_threads_;
  /// Persistent repricer (and its worker pool) reused across Insert
  /// batches instead of being rebuilt per batch.
  BatchPricer repricer_;
  std::map<std::string, Watched> watched_;
};

}  // namespace qp

#endif  // QP_PRICING_DYNAMIC_PRICER_H_
