#ifndef QP_PRICING_SOLUTION_H_
#define QP_PRICING_SOLUTION_H_

#include <string>
#include <vector>

#include "qp/pricing/money.h"
#include "qp/pricing/price_points.h"

namespace qp {

/// A multi-attribute selection view σ_{R.X=a, R.Y=b} on a binary relation
/// (Section 4 "Selections on Multiple Attributes"). Supported by the chain
/// solver as finite-capacity tuple edges.
struct PairSelectionView {
  AttrRef x;
  ValueId a = 0;
  AttrRef y;
  ValueId b = 0;

  bool operator==(const PairSelectionView& other) const {
    return x == other.x && a == other.a && y == other.y && b == other.b;
  }
};

/// The outcome of pricing one query: the arbitrage-price (Equation 2) and,
/// when the solver tracks it, the optimal support — the cheapest set of
/// explicit views whose purchase determines the query (what a savvy buyer
/// would buy instead).
struct PricingSolution {
  Money price = kInfiniteMoney;

  /// Optimal support views. Valid when `support_tracked`.
  std::vector<SelectionView> support;
  /// Multi-attribute views in the support (chain queries with pair prices).
  std::vector<PairSelectionView> pair_support;
  bool support_tracked = true;
  /// True when a serving budget expired before the exact optimum was
  /// found and `price` is the best known *feasible* purchase instead — an
  /// incumbent, greedy cover, or full-cover fallback. Still arbitrage-safe
  /// for the seller: the support determines the query (Lemma 3.1), so
  /// price >= the exact Equation 2 price never undercuts any view set.
  bool approximate = false;

  bool IsSellable() const { return !IsInfinite(price); }
};

}  // namespace qp

#endif  // QP_PRICING_SOLUTION_H_
