#include "qp/pricing/classifier.h"

#include <algorithm>
#include <set>

#include "qp/pricing/boolean_pricer.h"
#include "qp/query/analysis.h"

namespace qp {

std::string_view PricingClassName(PricingClass cls) {
  switch (cls) {
    case PricingClass::kGChQ:
      return "GChQ (PTIME, min-cut)";
    case PricingClass::kCycle:
      return "cycle (PTIME per Thm 3.15; exact solver)";
    case PricingClass::kNPHardFull:
      return "NP-complete (full CQ)";
    case PricingClass::kNonFull:
      return "NP-complete (projection)";
    case PricingClass::kBoolean:
      return "boolean (priced via full version)";
    case PricingClass::kOutsideDichotomy:
      return "self-join (outside dichotomy)";
    case PricingClass::kDisconnected:
      return "disconnected (Prop 3.14 composition)";
    case PricingClass::kUnion:
      return "union of CQs (exact search, Cor 3.4)";
  }
  return "unknown";
}

ConjunctiveQuery StructurallyNormalize(const ConjunctiveQuery& q) {
  // Work on argument lists of variables only.
  std::vector<std::vector<VarId>> args(q.atoms().size());
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    std::set<VarId> seen;
    for (const Term& t : q.atoms()[a].args) {
      if (!t.is_var()) continue;             // drop constants
      if (!seen.insert(t.var).second) continue;  // merge repeats
      args[a].push_back(t.var);
    }
  }
  // Drop hanging variables while their atom keeps >= 1 argument.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<int> occurrences(q.num_vars(), 0);
    for (const auto& atom_args : args) {
      for (VarId v : atom_args) ++occurrences[v];
    }
    for (auto& atom_args : args) {
      if (atom_args.size() < 2) continue;
      for (size_t i = 0; i < atom_args.size();) {
        if (occurrences[atom_args[i]] == 1 && atom_args.size() > 1) {
          atom_args.erase(atom_args.begin() + i);
          changed = true;
        } else {
          ++i;
        }
      }
    }
  }
  // Rebuild as a query over fresh relations of matching arity. Relation
  // identity is preserved through atom order; the normalized query is used
  // only for shape tests (GChQ order / cycle detection), which depend on
  // relation ids solely through self-join detection, so we keep them.
  ConjunctiveQuery out(q.name() + "_norm");
  for (VarId v = 0; v < q.num_vars(); ++v) out.AddVar(q.var_name(v));
  for (size_t a = 0; a < q.atoms().size(); ++a) {
    std::vector<Term> terms;
    for (VarId v : args[a]) terms.push_back(Term::MakeVar(v));
    out.AddAtom(q.atoms()[a].rel, std::move(terms));
  }
  std::set<VarId> head_vars;
  for (const auto& atom_args : args) {
    for (VarId v : atom_args) head_vars.insert(v);
  }
  for (VarId v : head_vars) out.AddHeadVar(v);
  return out;
}

QueryClassification ClassifyConnectedQuery(const ConjunctiveQuery& q) {
  QueryClassification result;
  if (q.IsBoolean() && q.BodyVars().empty()) {
    // Ground query (constants only): determined by covering / blocking a
    // fixed set of tuples — trivially PTIME.
    result.cls = PricingClass::kBoolean;
    result.ptime = true;
    result.reason = "ground boolean query";
    return result;
  }
  if (q.IsBoolean()) {
    QueryClassification full = ClassifyConnectedQuery(FullVersionOf(q));
    result.cls = PricingClass::kBoolean;
    result.ptime = full.ptime;
    result.gchq_order = full.gchq_order;
    result.reason = "boolean query; full version is " +
                    std::string(PricingClassName(full.cls));
    return result;
  }
  if (q.HasSelfJoin()) {
    result.cls = PricingClass::kOutsideDichotomy;
    result.ptime = false;
    result.reason = "query has a self-join; the dichotomy of Theorem 3.16 "
                    "does not apply";
    return result;
  }
  if (!q.IsFull()) {
    result.cls = PricingClass::kNonFull;
    result.ptime = false;
    result.reason = "query is neither full nor boolean: NP-complete "
                    "(Theorem 3.16)";
    return result;
  }
  ConjunctiveQuery normalized = StructurallyNormalize(q);
  if (auto order = FindGChQOrder(normalized); order.has_value()) {
    result.cls = PricingClass::kGChQ;
    result.ptime = true;
    result.gchq_order = *order;
    result.reason = "generalized chain query: PTIME via min-cut "
                    "(Theorem 3.7)";
    return result;
  }
  if (FindCycleOrder(normalized).has_value() && q.predicates().empty()) {
    result.cls = PricingClass::kCycle;
    result.ptime = true;
    result.reason = "cycle query: PTIME per Theorem 3.15";
    return result;
  }
  result.cls = PricingClass::kNPHardFull;
  result.ptime = false;
  result.reason = "full CQ that is neither GChQ nor a cycle: NP-complete "
                  "(Theorem 3.16)";
  return result;
}

}  // namespace qp
