#include "qp/pricing/exhaustive_solver.h"

#include <algorithm>
#include <functional>
#include <utility>

#include "qp/determinacy/selection_determinacy.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/bnb/coverage_oracle.h"
#include "qp/pricing/bnb/subset_bnb.h"

namespace qp {
namespace {

using DeterminacyOracle =
    std::function<Result<bool>(const std::vector<SelectionView>&)>;

/// The pre-branch-and-bound DFS over view subsets, kept as the validated
/// reference for the coverage-bitset engine (and the fallback when that
/// engine can't build its cell universe). Still instance-level: one
/// Theorem 3.3 evaluation per node.
struct ReferenceSearcher {
  DeterminacyOracle oracle;
  std::vector<SelectionView> views;
  std::vector<Money> weights;
  int64_t node_limit = -1;
  SearchBudget budget;

  Money best_cost = kInfiniteMoney;
  std::vector<SelectionView> best_set;
  std::vector<SelectionView> current;
  std::vector<SelectionView> feasibility_scratch;  // reused across nodes
  int64_t nodes = 0;
  bool aborted = false;
  bool budget_exhausted = false;
  Status error = Status::Ok();

  bool Determines(const std::vector<SelectionView>& subset) {
    auto r = oracle(subset);
    if (!r.ok()) {
      error = r.status();
      aborted = true;
      return false;
    }
    return *r;
  }

  void Search(size_t idx, Money cost) {
    if (aborted) return;
    ++nodes;
    if (node_limit >= 0 && nodes > node_limit) {
      aborted = true;
      error = Status::ResourceExhausted("exhaustive solver node limit hit");
      return;
    }
    if (budget.ConsumeNode()) {
      aborted = true;
      budget_exhausted = true;
      return;
    }
    if (cost >= best_cost) return;
    if (Determines(current)) {
      best_cost = cost;
      best_set = current;
      return;  // supersets only cost more
    }
    if (aborted || idx == views.size()) return;

    // Feasibility: with everything remaining included, is it determined?
    // The scratch vector keeps its capacity, so no per-node allocation.
    feasibility_scratch.assign(current.begin(), current.end());
    feasibility_scratch.insert(feasibility_scratch.end(),
                               views.begin() + idx, views.end());
    if (!Determines(feasibility_scratch) || aborted) return;

    // Include views[idx].
    current.push_back(views[idx]);
    Search(idx + 1, AddMoney(cost, weights[idx]));
    current.pop_back();
    // Exclude views[idx].
    Search(idx + 1, cost);
  }
};

Result<PricingSolution> RunReferenceSearch(
    const std::vector<std::pair<SelectionView, Money>>& relevant,
    DeterminacyOracle oracle, const ExhaustiveSolverOptions& options,
    ExhaustiveSolveStats* stats) {
  ReferenceSearcher searcher;
  searcher.oracle = std::move(oracle);
  searcher.node_limit = options.node_limit;
  searcher.budget = options.budget;
  searcher.views.reserve(relevant.size());
  searcher.weights.reserve(relevant.size());
  for (const auto& [view, price] : relevant) {
    searcher.views.push_back(view);
    searcher.weights.push_back(price);
  }
  searcher.Search(0, 0);
  if (!searcher.error.ok()) return searcher.error;
  if (stats != nullptr) {
    stats->nodes = searcher.nodes;
    stats->oracle_evals = searcher.nodes * 2;  // node + feasibility checks
    stats->tasks = 1;
  }
  if (searcher.budget_exhausted && IsInfinite(searcher.best_cost)) {
    return Status::DeadlineExceeded(
        "exhaustive solver exceeded the serving budget before finding any "
        "feasible cover");
  }

  PricingSolution solution;
  solution.price = searcher.best_cost;
  solution.support = searcher.best_set;
  solution.approximate = searcher.budget_exhausted;
  std::sort(solution.support.begin(), solution.support.end());
  return solution;
}

/// The default path: build the coverage-bitset oracle, validate it once
/// against the instance-level oracle, then run the subset branch-and-bound
/// (memoized, bounded, optionally parallel). Returns a non-ok status with
/// code ResourceExhausted/FailedPrecondition when the cell universe is
/// unavailable; the caller falls back to the reference search.
Result<PricingSolution> RunCoverageSearch(
    const Instance& db, const std::vector<RelationId>& relations,
    const std::vector<std::pair<SelectionView, Money>>& relevant,
    const std::vector<ConjunctiveQuery>* bundle, const UnionQuery* union_query,
    const ExhaustiveSolverOptions& options, ExhaustiveSolveStats* stats,
    bool* cell_universe_unavailable) {
  bnb::CoverageOracle::Options oracle_options;
  oracle_options.max_cells = options.max_cells;
  auto oracle = bnb::CoverageOracle::Build(db, relations, bundle, union_query,
                                           oracle_options);
  if (!oracle.ok()) {
    // Too many cells / missing columns: the reference path may still work.
    *cell_universe_unavailable = true;
    return oracle.status();
  }

  std::vector<SelectionView> views;
  std::vector<bnb::SubsetItem> items;
  views.reserve(relevant.size());
  items.reserve(relevant.size());
  for (const auto& [view, price] : relevant) {
    views.push_back(view);
    items.push_back(bnb::SubsetItem{price, oracle->CoverageOf(view)});
  }
  QP_RETURN_IF_ERROR(oracle->ValidateAgainstInstanceOracle(views));

  bnb::SubsetBnbOptions bnb_options;
  bnb_options.threads = options.threads;
  bnb_options.node_limit = options.node_limit;
  bnb_options.budget = options.budget;
  bnb_options.max_probe_cells = options.max_probe_cells;
  bnb::SubsetBnbStats bnb_stats;
  auto solve = bnb::SolveSubsetBnb(
      items, oracle->num_cells(),
      [&oracle](const bnb::Bitset& covered) {
        return oracle->DeterminedFromCoverage(covered);
      },
      bnb_options, &bnb_stats);
  if (!solve.ok()) return solve.status();
  if (solve->aborted && !solve->budget_exhausted) {
    return Status::ResourceExhausted("exhaustive solver node limit hit");
  }
  if (solve->budget_exhausted && !solve->found) {
    return Status::DeadlineExceeded(
        "exhaustive solver exceeded the serving budget before finding any "
        "feasible cover");
  }
  if (stats != nullptr) {
    stats->nodes = bnb_stats.nodes;
    stats->oracle_evals = bnb_stats.oracle_evals;
    stats->memo_hits = bnb_stats.memo_hits;
    stats->bound_pruned = bnb_stats.bound_pruned;
    stats->infeasible_pruned = bnb_stats.infeasible_pruned;
    stats->dominated_views = bnb_stats.dominated_items;
    stats->required_cells = bnb_stats.required_cells;
    stats->tasks = bnb_stats.tasks;
    stats->used_coverage_oracle = true;
  }
  QP_METRIC_COUNT("qp.solver.exhaustive.bnb_nodes",
                  static_cast<uint64_t>(bnb_stats.nodes));
  QP_METRIC_COUNT("qp.solver.exhaustive.memo_hits",
                  static_cast<uint64_t>(bnb_stats.memo_hits));
  QP_METRIC_COUNT("qp.solver.exhaustive.oracle_evals",
                  static_cast<uint64_t>(bnb_stats.oracle_evals));
  QP_METRIC_COUNT("qp.solver.exhaustive.bound_pruned",
                  static_cast<uint64_t>(bnb_stats.bound_pruned));
  QP_METRIC_COUNT("qp.solver.exhaustive.dominated_views",
                  static_cast<uint64_t>(bnb_stats.dominated_items));

  PricingSolution solution;
  solution.price = solve->cost;
  solution.approximate = solve->budget_exhausted;
  for (int item : solve->chosen) solution.support.push_back(views[item]);
  std::sort(solution.support.begin(), solution.support.end());
  return solution;
}

Result<PricingSolution> RunSearch(const Instance& db,
                                  const SelectionPriceSet& prices,
                                  const std::vector<RelationId>& relations,
                                  const std::vector<ConjunctiveQuery>* bundle,
                                  const UnionQuery* union_query,
                                  DeterminacyOracle oracle,
                                  const ExhaustiveSolverOptions& options,
                                  ExhaustiveSolveStats* stats) {
  QP_METRIC_INCR("qp.solver.exhaustive.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.exhaustive_ns");
  const Catalog& catalog = db.catalog();

  // Relevant views: priced, on a query relation, value in the column.
  // `relations` comes sorted from RelationsOf, so membership is a binary
  // search on the flat vector.
  std::vector<std::pair<SelectionView, Money>> relevant;
  for (const auto& [view, price] : prices.Sorted()) {
    if (!std::binary_search(relations.begin(), relations.end(),
                            view.attr.rel)) {
      continue;
    }
    if (!catalog.InColumn(view.attr, view.value)) continue;
    relevant.emplace_back(view, price);
  }
  if (relevant.size() > options.max_views) {
    std::string msg = "too many relevant views for exhaustive search (" +
                      std::to_string(relevant.size()) + " > " +
                      std::to_string(options.max_views) + ")";
    // Under a serving budget this is a capacity miss the engine converts
    // into the full-cover fallback; without one it stays a hard error.
    if (options.budget.active()) return Status::DeadlineExceeded(std::move(msg));
    return Status::ResourceExhausted(std::move(msg));
  }
  // Decide expensive views first: earlier pruning. The view order breaks
  // price ties so the canonical (DFS-earliest) optimal support is well
  // defined across solvers and thread counts.
  std::sort(relevant.begin(), relevant.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });

  if (!options.force_reference) {
    bool cell_universe_unavailable = false;
    auto solution =
        RunCoverageSearch(db, relations, relevant, bundle, union_query,
                          options, stats, &cell_universe_unavailable);
    if (solution.ok() || !cell_universe_unavailable) return solution;
    QP_METRIC_INCR("qp.solver.exhaustive.reference_fallbacks");
  }
  return RunReferenceSearch(relevant, std::move(oracle), options, stats);
}

}  // namespace

Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& bundle,
    const ExhaustiveSolverOptions& options, ExhaustiveSolveStats* stats) {
  return RunSearch(
      db, prices, RelationsOf(bundle), &bundle, nullptr,
      [&db, &bundle](const std::vector<SelectionView>& subset) {
        return SelectionViewsDetermine(db, subset, bundle);
      },
      options, stats);
}

Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ExhaustiveSolverOptions& options,
    ExhaustiveSolveStats* stats) {
  return PriceByExhaustiveSearch(
      db, prices, std::vector<ConjunctiveQuery>{query}, options, stats);
}

Result<PricingSolution> PriceUnionByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const UnionQuery& query, const ExhaustiveSolverOptions& options,
    ExhaustiveSolveStats* stats) {
  if (query.disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  return RunSearch(
      db, prices, RelationsOf(query.disjuncts), nullptr, &query,
      [&db, &query](const std::vector<SelectionView>& subset) {
        return SelectionViewsDetermine(db, subset, query);
      },
      options, stats);
}

}  // namespace qp
