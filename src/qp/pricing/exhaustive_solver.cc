#include "qp/pricing/exhaustive_solver.h"

#include <algorithm>
#include <functional>
#include <set>

#include "qp/determinacy/selection_determinacy.h"
#include "qp/obs/metrics.h"

namespace qp {
namespace {

using DeterminacyOracle =
    std::function<Result<bool>(const std::vector<SelectionView>&)>;

struct Searcher {
  DeterminacyOracle oracle;
  std::vector<SelectionView> views;
  std::vector<Money> weights;
  int64_t node_limit = -1;

  Money best_cost = kInfiniteMoney;
  std::vector<SelectionView> best_set;
  std::vector<SelectionView> current;
  int64_t nodes = 0;
  bool aborted = false;
  Status error = Status::Ok();

  bool Determines(const std::vector<SelectionView>& subset) {
    auto r = oracle(subset);
    if (!r.ok()) {
      error = r.status();
      aborted = true;
      return false;
    }
    return *r;
  }

  void Search(size_t idx, Money cost) {
    if (aborted) return;
    if (node_limit >= 0 && ++nodes > node_limit) {
      aborted = true;
      error = Status::ResourceExhausted("exhaustive solver node limit hit");
      return;
    }
    if (cost >= best_cost) return;
    if (Determines(current)) {
      best_cost = cost;
      best_set = current;
      return;  // supersets only cost more
    }
    if (aborted || idx == views.size()) return;

    // Feasibility: with everything remaining included, is it determined?
    std::vector<SelectionView> all = current;
    all.insert(all.end(), views.begin() + idx, views.end());
    if (!Determines(all) || aborted) return;

    // Include views[idx].
    current.push_back(views[idx]);
    Search(idx + 1, AddMoney(cost, weights[idx]));
    current.pop_back();
    // Exclude views[idx].
    Search(idx + 1, cost);
  }
};

Result<PricingSolution> RunSearch(const Instance& db,
                                  const SelectionPriceSet& prices,
                                  const std::vector<RelationId>& relations,
                                  DeterminacyOracle oracle,
                                  const ExhaustiveSolverOptions& options) {
  QP_METRIC_INCR("qp.solver.exhaustive.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.exhaustive_ns");
  const Catalog& catalog = db.catalog();
  std::set<RelationId> relation_set(relations.begin(), relations.end());

  // Relevant views: priced, on a query relation, value in the column.
  std::vector<std::pair<SelectionView, Money>> relevant;
  for (const auto& [view, price] : prices.Sorted()) {
    if (relation_set.count(view.attr.rel) == 0) continue;
    if (!catalog.InColumn(view.attr, view.value)) continue;
    relevant.emplace_back(view, price);
  }
  if (relevant.size() > options.max_views) {
    return Status::ResourceExhausted(
        "too many relevant views for exhaustive search (" +
        std::to_string(relevant.size()) + " > " +
        std::to_string(options.max_views) + ")");
  }
  // Decide expensive views first: earlier pruning.
  std::sort(relevant.begin(), relevant.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  Searcher searcher;
  searcher.oracle = std::move(oracle);
  searcher.node_limit = options.node_limit;
  for (const auto& [view, price] : relevant) {
    searcher.views.push_back(view);
    searcher.weights.push_back(price);
  }
  searcher.Search(0, 0);
  if (!searcher.error.ok()) return searcher.error;

  PricingSolution solution;
  solution.price = searcher.best_cost;
  solution.support = searcher.best_set;
  std::sort(solution.support.begin(), solution.support.end());
  return solution;
}

}  // namespace

Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& bundle,
    const ExhaustiveSolverOptions& options) {
  return RunSearch(
      db, prices, RelationsOf(bundle),
      [&db, &bundle](const std::vector<SelectionView>& subset) {
        return SelectionViewsDetermine(db, subset, bundle);
      },
      options);
}

Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ExhaustiveSolverOptions& options) {
  return PriceByExhaustiveSearch(
      db, prices, std::vector<ConjunctiveQuery>{query}, options);
}

Result<PricingSolution> PriceUnionByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const UnionQuery& query, const ExhaustiveSolverOptions& options) {
  if (query.disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  return RunSearch(
      db, prices, RelationsOf(query.disjuncts),
      [&db, &query](const std::vector<SelectionView>& subset) {
        return SelectionViewsDetermine(db, subset, query);
      },
      options);
}

}  // namespace qp
