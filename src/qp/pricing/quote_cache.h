#ifndef QP_PRICING_QUOTE_CACHE_H_
#define QP_PRICING_QUOTE_CACHE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "qp/pricing/engine.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/thread_annotations.h"

namespace qp {

/// Counters exposed for tests and benchmarks. `hits` in particular proves
/// that a served quote ran no solver work.
struct QuoteCacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          // lookups with no entry
  uint64_t invalidations = 0;   // lookups that found a stale entry
  uint64_t insertions = 0;
  uint64_t evictions = 0;       // explicit Evict() removals
  /// Stores dropped because the cache already held the same fingerprint
  /// computed against strictly newer relation generations (a quote from
  /// an older catalog snapshot arriving after a publish).
  uint64_t stale_store_drops = 0;
  /// Hits served from an entry installed by the speculative warmer (a
  /// publish re-priced it before any buyer asked).
  uint64_t warm_hits = 0;
  /// Entries installed by the warmer (Store with warmed = true).
  uint64_t warmed_entries = 0;
};

/// One hot query as tracked by the cache: the parsed query (the warmer
/// needs it to re-price — a fingerprint alone cannot be priced) plus its
/// observed popularity.
struct HotQuery {
  std::string fingerprint;
  ConjunctiveQuery query;
  uint64_t hits = 0;
};

/// A versioned memo of priced quotes. The arbitrage-price (Equation 2) is
/// a pure function of (query, price points, instance restricted to the
/// query's relations), so a quote keyed by the query's canonical
/// fingerprint (ConjunctiveQuery::Fingerprint) stays valid until one of
/// the relations the query reads mutates. Each entry records the
/// Instance::generation of those relations at compute time; a lookup whose
/// recorded generations no longer match is treated as stale and evicted.
///
/// The cache also tracks the *hot set*: a bounded hit-count map of the
/// most-requested fingerprints (queries captured at Store time, counts
/// bumped on every Lookup). HotQueries(k) feeds the publish-triggered
/// speculative warmer (DESIGN.md §15), which re-prices the top-k against
/// a freshly published snapshot and installs the entries — marked
/// `warmed` — before buyers ask.
///
/// The cache assumes the price points it serves under are fixed (the
/// standing setup of Section 2.7 dynamic pricing); call Clear() if they
/// change. Thread-safe: BatchPricer workers share one instance.
class QuoteCache {
 public:
  /// Bound on the hot-fingerprint tracker. When full, a new fingerprint
  /// evicts the tracked entry with the fewest hits (oldest wins ties) —
  /// an LRU-flavored floor that keeps genuinely hot shapes resident.
  static constexpr size_t kMaxTrackedFingerprints = 512;

  QuoteCache() = default;
  QuoteCache(const QuoteCache&) = delete;
  QuoteCache& operator=(const QuoteCache&) = delete;

  /// Returns the cached quote if present and no dependency relation of the
  /// entry has mutated since it was stored. Stale entries are evicted.
  std::optional<PriceQuote> Lookup(const std::string& fingerprint,
                                   const Instance& db);

  /// True when the cache holds a fresh entry for `fingerprint` against
  /// `db`'s generations. A pure peek for the warmer's pre-check: touches
  /// no stats, no hot counts, and never evicts.
  bool HasFresh(const std::string& fingerprint, const Instance& db) const;

  /// Stores a quote computed for `query` against the current state of
  /// `db`, recording the generations of the query's relations. The store
  /// is generation-pinned: when the cache already holds this fingerprint
  /// computed against strictly newer generations (an old-snapshot reader
  /// finishing after a publish), the stale quote is dropped instead of
  /// clobbering the fresher entry. `warmed` marks entries installed by
  /// the speculative warmer (counted separately; hits on them count as
  /// warm_hits until a buyer-path store overwrites the entry).
  void Store(const std::string& fingerprint, const ConjunctiveQuery& query,
             const Instance& db, const PriceQuote& quote,
             bool warmed = false);

  /// The top-`k` hot queries by hit count (ties broken by fingerprint,
  /// so the order is deterministic).
  std::vector<HotQuery> HotQueries(size_t k) const;

  /// Drops the entry for `fingerprint`, if any. Used when a watcher stops
  /// tracking a query: its entry would otherwise linger until the next
  /// mutation of a dependency relation (or forever, for a never-mutated
  /// relation).
  void Evict(const std::string& fingerprint);

  void Clear();
  size_t size() const;
  QuoteCacheStats stats() const;

 private:
  struct Entry {
    PriceQuote quote;
    /// (relation, generation at compute time), one per referenced relation.
    std::vector<std::pair<RelationId, uint64_t>> deps;
    /// Installed by the speculative warmer, not a buyer request.
    bool warmed = false;
  };

  struct HotEntry {
    ConjunctiveQuery query;
    uint64_t hits = 0;
    uint64_t first_seen = 0;  // tracker admission order, for tie-breaks
  };

  /// True when `existing` was computed against generations that dominate
  /// `candidate`'s (all >=, at least one >): storing `candidate` would
  /// replace a fresher quote with a staler one.
  static bool IsStaleAgainst(const Entry& candidate, const Entry& existing);

  /// Admits `fingerprint` to the hot tracker (evicting the coldest
  /// tracked entry at capacity) or bumps its count.
  void TrackHot(const std::string& fingerprint, const ConjunctiveQuery* query)
      QP_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, Entry> entries_ QP_GUARDED_BY(mu_);
  std::unordered_map<std::string, HotEntry> hot_ QP_GUARDED_BY(mu_);
  uint64_t hot_admissions_ QP_GUARDED_BY(mu_) = 0;
  QuoteCacheStats stats_ QP_GUARDED_BY(mu_);
};

}  // namespace qp

#endif  // QP_PRICING_QUOTE_CACHE_H_
