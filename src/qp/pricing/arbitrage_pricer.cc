#include "qp/pricing/arbitrage_pricer.h"

#include <algorithm>

#include "qp/pricing/invariants.h"
#include "qp/obs/metrics.h"

namespace qp {

ArbitragePricer::ArbitragePricer(const Instance* db,
                                 std::vector<GeneralPricePoint> points,
                                 DeterminacyMode mode,
                                 WorldEnumerationOptions options)
    : db_(db), points_(std::move(points)), mode_(mode), options_(options) {}

Result<bool> ArbitragePricer::Determines(const QueryBundle& views,
                                         const QueryBundle& query) const {
  if (mode_ == DeterminacyMode::kInstanceBased) {
    return EnumerationDetermines(*db_, views, query, options_);
  }
  return RestrictedEnumerationDetermines(*db_, views, query, options_);
}

Result<ArbitrageQuote> ArbitragePricer::Price(const QueryBundle& query) const {
  QP_METRIC_INCR("qp.arbitrage.price.calls");
  QP_METRIC_SCOPED_TIMER("qp.arbitrage.price_ns");
  const size_t n = points_.size();
  if (n > 20) {
    return Status::ResourceExhausted(
        "too many explicit price points for subset enumeration");
  }
  ArbitrageQuote best;
  // Iterate subsets cheapest-first is not easy; enumerate all with price
  // pruning. The empty subset handles trivially-determined queries.
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    Money cost = 0;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        cost = AddMoney(cost, points_[i].price);
      }
    }
    if (cost >= best.price) continue;
    QueryBundle views;
    for (size_t i = 0; i < n; ++i) {
      if (mask & (uint64_t{1} << i)) {
        views = QueryBundle::Union(views, points_[i].views);
      }
    }
    auto determines = Determines(views, query);
    if (!determines.ok()) return determines.status();
    if (*determines) {
      best.price = cost;
      best.support.clear();
      for (size_t i = 0; i < n; ++i) {
        if (mask & (uint64_t{1} << i)) {
          best.support.push_back(points_[i].name);
        }
      }
    }
  }
  // Return-boundary invariants: the arbitrage-price is non-negative
  // (Prop 2.8) and, when finite, its support — a subset of the explicit
  // points — costs exactly the quoted price (Equation 2).
  if (check_internal::CheckEnabled()) {
    CheckPriceNonNegative(best.price, "ArbitragePricer::Price");
    if (!IsInfinite(best.price)) {
      Money support_cost = 0;
      for (const std::string& name : best.support) {
        for (const GeneralPricePoint& point : points_) {
          if (point.name == name) {
            support_cost = AddMoney(support_cost, point.price);
            break;
          }
        }
      }
      QP_INVARIANT(support_cost == best.price,
                   "ArbitragePricer::Price: support does not cost the "
                   "quoted price (Equation 2)");
    }
  }
  return best;
}

Result<GeneralConsistencyReport> ArbitragePricer::CheckConsistency() const {
  GeneralConsistencyReport report;
  for (const GeneralPricePoint& point : points_) {
    auto quote = Price(point.views);
    if (!quote.ok()) return quote.status();
    if (quote->price < point.price) {
      report.consistent = false;
      report.violations.push_back(GeneralInconsistency{
          point.name, point.price, quote->price, quote->support});
    }
  }
  // Thm 2.15 boundary: every reported violation must be a genuine
  // arbitrage opportunity (strictly cheaper support).
  for (const GeneralInconsistency& v : report.violations) {
    QP_INVARIANT(v.arbitrage_price < v.explicit_price,
                 "ArbitragePricer::CheckConsistency: violation for '" +
                     v.point_name + "' is not actually cheaper (Thm 2.15)");
  }
  return report;
}

}  // namespace qp
