#ifndef QP_PRICING_WORK_PROBLEM_H_
#define QP_PRICING_WORK_PROBLEM_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "qp/pricing/price_points.h"
#include "qp/pricing/solution.h"
#include "qp/query/analysis.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// The internal, normalized form a pricing problem takes while running the
/// GChQ pipeline (Section 3.1, Steps 1-4). A work problem is
/// self-contained: the transformation steps rewrite atoms, domains, data
/// and prices together, so the PTIME invariant p(problem') = p(problem) of
/// Lemmas in Steps 1-3 holds by construction.
///
/// Compared to (Catalog, Instance, SelectionPriceSet, ConjunctiveQuery):
///  * variable domains already incorporate column intersections (footnote 5)
///    and interpreted predicates (Step 1);
///  * per-position view prices are materialized and carry the *originating*
///    explicit view, so optimal supports can be reported even after Step 2
///    replaces two attributes by their min-priced merger and Step 3 zeroes
///    an attribute that is given out for free.
struct WorkPosition {
  /// Variable bound at this position.
  VarId var = -1;
  /// Price of the selection view on this position at each domain value
  /// (absent entry = not for sale).
  std::unordered_map<ValueId, Money> cost;
  /// The explicit view a finite cost stands for. Zero-cost positions
  /// created by Step 3 ("give the projected relation out for free") have
  /// cost 0 and no origin.
  std::unordered_map<ValueId, SelectionView> origin;
};

struct WorkAtom {
  /// Positions (after Step 2 every position binds a distinct variable).
  std::vector<WorkPosition> positions;
  /// Current (projected) data of this atom, aligned with `positions`.
  std::vector<Tuple> tuples;
};

struct WorkProblem {
  int num_vars = 0;
  /// Allowed values per variable (intersection of the columns of all its
  /// positions, filtered by interpreted predicates). Sorted.
  std::vector<std::vector<ValueId>> var_domain;
  std::vector<WorkAtom> atoms;
};

/// Builds a work problem from a full conjunctive query (Step 1 + constant
/// elimination): variable domains are column intersections filtered by the
/// query's interpreted predicates, constants become fresh singleton-domain
/// variables (they are later removed as hanging variables, as prescribed by
/// Theorem 3.16), data is filtered to the domains, and per-position prices
/// are materialized from the explicit price set.
Result<WorkProblem> BuildWorkProblem(const Instance& db,
                                     const SelectionPriceSet& prices,
                                     const ConjunctiveQuery& query);

/// Step 2: merges repeated variables within an atom. The merged position's
/// price is the min of the originals (with the argmin recorded as origin).
/// Tuples that disagree on the merged positions are dropped.
void MergeRepeatedVarsInAtoms(WorkProblem* problem);

/// Variables that occur at exactly one position across all atoms of the
/// work problem, excluding atoms that would drop below one position.
std::vector<VarId> WorkHangingVars(const WorkProblem& problem);

/// Chain structure of a normalized work problem (all atoms unary/binary).
struct WorkLink {
  int atom = -1;
  bool unary = false;
  int entry_pos = -1;
  int exit_pos = -1;
};

/// Orders the atoms of a normalized (hanging-free) work problem into a
/// chain: first/last unary, consecutive atoms share exactly one variable.
/// Fails if the problem is not a chain.
Result<std::vector<WorkLink>> BuildWorkChain(const WorkProblem& problem);

}  // namespace qp

#endif  // QP_PRICING_WORK_PROBLEM_H_
