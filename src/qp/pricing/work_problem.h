#ifndef QP_PRICING_WORK_PROBLEM_H_
#define QP_PRICING_WORK_PROBLEM_H_

#include <optional>
#include <vector>

#include "qp/pricing/price_points.h"
#include "qp/pricing/solution.h"
#include "qp/query/analysis.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// The internal, normalized form a pricing problem takes while running the
/// GChQ pipeline (Section 3.1, Steps 1-4). A work problem is
/// self-contained: the transformation steps rewrite atoms, domains, data
/// and prices together, so the PTIME invariant p(problem') = p(problem) of
/// Lemmas in Steps 1-3 holds by construction.
///
/// Compared to (Catalog, Instance, SelectionPriceSet, ConjunctiveQuery):
///  * variable domains already incorporate column intersections (footnote 5)
///    and interpreted predicates (Step 1);
///  * per-position view prices are materialized and carry the *originating*
///    explicit view, so optimal supports can be reported even after Step 2
///    replaces two attributes by their min-priced merger and Step 3 zeroes
///    an attribute that is given out for free.
struct WorkPosition {
  /// Variable bound at this position.
  VarId var = -1;
  /// Domain-aligned price table: cost[i] is the price of the selection
  /// view on this position at var_domain[var][i]; kInfiniteMoney = not for
  /// sale. Aligned storage keeps the hot solver loops (view-edge
  /// construction, hanging-variable cover sums) free of hash lookups — a
  /// slot/domain index addresses the price directly.
  std::vector<Money> cost;
  /// origin[i] = the explicit view cost[i] stands for, valid only where
  /// has_origin[i] is set. Zero-cost positions created by Step 3 ("give
  /// the projected relation out for free") have cost 0 and no origin.
  std::vector<SelectionView> origin;
  std::vector<char> has_origin;

  /// Marks the whole domain as free (Step 3 giveaway).
  void SetFree(size_t domain_size) {
    cost.assign(domain_size, 0);
    origin.assign(domain_size, SelectionView{});
    has_origin.assign(domain_size, 0);
  }
  /// Marks the whole domain as not for sale.
  void SetUnavailable(size_t domain_size) {
    cost.assign(domain_size, kInfiniteMoney);
    origin.assign(domain_size, SelectionView{});
    has_origin.assign(domain_size, 0);
  }
};

struct WorkAtom {
  /// Positions (after Step 2 every position binds a distinct variable).
  std::vector<WorkPosition> positions;
  /// Current (projected) data of this atom, aligned with `positions`:
  /// flattened row-major with stride positions.size(). One contiguous
  /// buffer instead of a vector per tuple keeps the Step-1 data filter —
  /// which copies thousands of rows per solve — allocation-free.
  std::vector<ValueId> tuple_data;

  size_t num_tuples() const {
    return positions.empty() ? 0 : tuple_data.size() / positions.size();
  }
  const ValueId* tuple(size_t row) const {
    return tuple_data.data() + row * positions.size();
  }
};

struct WorkProblem {
  int num_vars = 0;
  /// Allowed values per variable (intersection of the columns of all its
  /// positions, filtered by interpreted predicates). Sorted.
  std::vector<std::vector<ValueId>> var_domain;
  std::vector<WorkAtom> atoms;
};

/// Builds a work problem from a full conjunctive query (Step 1 + constant
/// elimination): variable domains are column intersections filtered by the
/// query's interpreted predicates, constants become fresh singleton-domain
/// variables (they are later removed as hanging variables, as prescribed by
/// Theorem 3.16), data is filtered to the domains, and per-position prices
/// are materialized from the explicit price set.
Result<WorkProblem> BuildWorkProblem(const Instance& db,
                                     const SelectionPriceSet& prices,
                                     const ConjunctiveQuery& query);

/// How Step 2 folded one atom's repeated variables: which original
/// positions survived and where each original position went. Consumers
/// (the incremental repricer) replay the merge on raw inserted rows:
/// a row is dropped iff `t[keep[merged_into[p]]] != t[p]` for some p, and
/// otherwise projects to the `keep` positions in order.
struct AtomMergeSpec {
  std::vector<int> keep;         // original position indexes kept, in order
  std::vector<int> merged_into;  // original position -> index into keep
};

/// Step 2: merges repeated variables within an atom. The merged position's
/// price is the min of the originals (with the argmin recorded as origin).
/// Tuples that disagree on the merged positions are dropped. When `specs`
/// is given it receives one AtomMergeSpec per atom (identity when the atom
/// had no repeats).
void MergeRepeatedVarsInAtoms(WorkProblem* problem,
                              std::vector<AtomMergeSpec>* specs = nullptr);

/// Variables that occur at exactly one position across all atoms of the
/// work problem, excluding atoms that would drop below one position.
std::vector<VarId> WorkHangingVars(const WorkProblem& problem);

/// Projects position `pos` out of atom `atom_idx`: drops the position and
/// its prices, projects and deduplicates the data. Shared by the Step 3
/// case-split recursion and the incremental plan builder, which must apply
/// bit-identical projections to stay price-equal.
void WorkProjectOutPosition(WorkProblem* problem, int atom_idx, int pos);

/// Finds the (atom, position) of a variable's first occurrence.
bool WorkFindVarPosition(const WorkProblem& problem, VarId var,
                         int* atom_idx, int* pos);

/// Chain structure of a normalized work problem (all atoms unary/binary).
struct WorkLink {
  int atom = -1;
  bool unary = false;
  int entry_pos = -1;
  int exit_pos = -1;
};

/// Orders the atoms of a normalized (hanging-free) work problem into a
/// chain: first/last unary, consecutive atoms share exactly one variable.
/// Fails if the problem is not a chain.
Result<std::vector<WorkLink>> BuildWorkChain(const WorkProblem& problem);

}  // namespace qp

#endif  // QP_PRICING_WORK_PROBLEM_H_
