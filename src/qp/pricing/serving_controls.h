#ifndef QP_PRICING_SERVING_CONTROLS_H_
#define QP_PRICING_SERVING_CONTROLS_H_

#include <atomic>
#include <cstdint>

namespace qp {

/// The runtime-adjustable serving knobs, shared between the serving path
/// (readers: every BatchPricer frame, the accept loop) and the overload
/// controller (sole writer once serving starts). Before this struct the
/// knobs were fixed at construction — a CLI flag chosen at boot had to
/// cover both the quiet Tuesday and the burst — and the feedback loop of
/// ROADMAP item 5 had nothing to actuate.
///
/// All members are relaxed atomics: a reader takes one snapshot per
/// frame (never mid-frame re-reads), so a concurrent adjustment lands on
/// frame boundaries; there is no invariant coupling the knobs that would
/// need a lock. Zero keeps each knob's historical meaning: no deadline,
/// unlimited batch admission, and (for max_connections, which the server
/// seeds from its configured limit) "admit nothing".
struct ServingControls {
  /// Per-quote serving deadline in milliseconds (0 = none). Tightened
  /// first under pressure: expiry degrades quotes to admissible
  /// approximations (price >= exact, flagged approximate, never cached)
  /// instead of refusing anything.
  std::atomic<int64_t> deadline_ms{0};
  /// Per-QUOTE_BATCH admission cap (0 = unlimited). Second lever: excess
  /// batch queries are shed with ResourceExhausted.
  std::atomic<int64_t> admission_cap{0};
  /// Connection admission limit (0 = admit nothing, matching the
  /// server's historical max_connections semantics). Last lever:
  /// connections beyond it are shed at the accept door.
  std::atomic<int64_t> max_connections{0};

  int64_t DeadlineMs() const {
    return deadline_ms.load(std::memory_order_relaxed);
  }
  int64_t AdmissionCap() const {
    return admission_cap.load(std::memory_order_relaxed);
  }
  int64_t MaxConnections() const {
    return max_connections.load(std::memory_order_relaxed);
  }
};

}  // namespace qp

#endif  // QP_PRICING_SERVING_CONTROLS_H_
