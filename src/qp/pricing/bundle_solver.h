#ifndef QP_PRICING_BUNDLE_SOLVER_H_
#define QP_PRICING_BUNDLE_SOLVER_H_

#include <vector>

#include "qp/pricing/chain_solver.h"
#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Prices a GChQ query bundle (Definition 3.9) in PTIME by a *merged*
/// min-cut: all member queries share one flow network in which the view
/// and tuple edges of common relations appear once, while each member
/// contributes its own skip structure. A view set determines the bundle
/// iff it determines every member (Lemma 2.6(b)), i.e. iff it cuts every
/// member's s-t paths — a single min-cut on the merged graph.
///
/// Scope: members must be chain queries (Definition 3.12 — unary/binary
/// atoms, no constants, predicates or repeated variables) and every shared
/// binary relation must be traversed in the same direction by all members
/// (guaranteed by Definition 3.9's shared-prefix/suffix discipline).
/// Returns InvalidArgument outside this scope; the engine then falls back
/// to the exact clause solver.
Result<PricingSolution> PriceChainBundleByMergedCut(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const ChainSolverOptions& options = {}, ChainGraphStats* stats = nullptr);

}  // namespace qp

#endif  // QP_PRICING_BUNDLE_SOLVER_H_
