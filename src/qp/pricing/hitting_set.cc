#include "qp/pricing/hitting_set.h"

#include <algorithm>
#include <set>
#include <utility>

#include "qp/pricing/bnb/bitset.h"
#include "qp/pricing/bnb/bounds.h"

namespace qp {
namespace {

struct Searcher {
  const std::vector<Money>& weights;
  std::vector<std::vector<int>> clauses;        // preprocessed
  std::vector<std::vector<int>> item_clauses;   // item -> clause indexes

  std::vector<char> chosen;
  std::vector<char> banned;
  std::vector<int> satisfied_by;  // clause -> count of chosen items
  std::vector<uint32_t> lb_stamp;
  uint32_t lb_epoch = 0;
  Money best_cost = kInfiniteMoney;
  std::vector<int> best_set;
  Money current_cost = 0;
  std::vector<int> current_set;
  int64_t nodes = 0;
  int64_t node_limit = -1;
  SearchBudget budget;
  bool aborted = false;
  bool budget_exhausted = false;

  explicit Searcher(const HittingSetInstance& instance)
      : weights(instance.weights) {}

  /// Lower bound: greedily pack item-disjoint unsatisfied clauses; each
  /// contributes the min weight among its available items (the shared
  /// bnb::DisjointPackingBound, with epoch stamping instead of a fresh
  /// "used" vector per call).
  Money LowerBound() {
    if (++lb_epoch == 0) {
      std::fill(lb_stamp.begin(), lb_stamp.end(), 0);
      lb_epoch = 1;
    }
    return bnb::DisjointPackingBound(
        clauses, weights, [&](size_t c) { return satisfied_by[c] > 0; },
        [&](int item) { return !banned[item]; }, &lb_stamp, lb_epoch);
  }

  void Search() {
    ++nodes;
    if (node_limit >= 0 && nodes > node_limit) {
      aborted = true;
      return;
    }
    if (budget.ConsumeNode()) {
      aborted = true;
      budget_exhausted = true;
      return;
    }
    if (AddMoney(current_cost, LowerBound()) >= best_cost) return;

    // Pick the unsatisfied clause with the fewest available items.
    int pick = -1;
    size_t pick_avail = SIZE_MAX;
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (satisfied_by[c] > 0) continue;
      size_t avail = 0;
      for (int item : clauses[c]) {
        if (!banned[item]) ++avail;
      }
      if (avail < pick_avail) {
        pick_avail = avail;
        pick = static_cast<int>(c);
        if (avail <= 1) break;
      }
    }
    if (pick < 0) {
      // All clauses satisfied.
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best_set = current_set;
      }
      return;
    }
    if (pick_avail == 0) return;  // dead branch

    // Branch over the clause's available items; ban each after exploring
    // its inclusion so branches are disjoint. The index tie-break keeps
    // the branching order (and hence the reported optimum among ties)
    // deterministic — std::sort on weight alone leaves it unspecified.
    std::vector<int> branch_items;
    for (int item : clauses[pick]) {
      if (!banned[item]) branch_items.push_back(item);
    }
    std::sort(branch_items.begin(), branch_items.end(), [&](int a, int b) {
      if (weights[a] != weights[b]) return weights[a] < weights[b];
      return a < b;
    });

    std::vector<int> newly_banned;
    for (int item : branch_items) {
      // Include `item`.
      chosen[item] = 1;
      current_cost = AddMoney(current_cost, weights[item]);
      current_set.push_back(item);
      for (int c : item_clauses[item]) ++satisfied_by[c];

      Search();

      for (int c : item_clauses[item]) --satisfied_by[c];
      current_set.pop_back();
      current_cost -= weights[item];
      chosen[item] = 0;
      if (aborted) break;

      banned[item] = 1;
      newly_banned.push_back(item);
    }
    for (int item : newly_banned) banned[item] = 0;
  }
};

/// Deterministic greedy hitting set over the preprocessed clauses: pick
/// the item hitting the most unsatisfied clauses per unit weight (cross-
/// multiplied ratio compare, lowest index on ties) until all clauses are
/// hit. Used only as the budget-abort fallback — it is an over-estimate,
/// so quoting it is arbitrage-safe, but it never seeds the search bound.
std::pair<Money, std::vector<int>> GreedyHittingSet(
    const std::vector<Money>& weights,
    const std::vector<std::vector<int>>& clauses) {
  std::vector<char> hit(clauses.size(), 0);
  size_t remaining = clauses.size();
  Money cost = 0;
  std::vector<int> chosen;
  std::vector<int64_t> hits(weights.size(), 0);
  while (remaining > 0) {
    std::fill(hits.begin(), hits.end(), 0);
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (hit[c]) continue;
      for (int item : clauses[c]) ++hits[item];
    }
    int pick = -1;
    for (size_t i = 0; i < weights.size(); ++i) {
      if (hits[i] == 0) continue;
      if (pick < 0) {
        pick = static_cast<int>(i);
        continue;
      }
      // Prefer i over pick when hits[i]/weights[i] > hits[pick]/weights[pick].
      __int128 lhs = static_cast<__int128>(hits[i]) * weights[pick];
      __int128 rhs = static_cast<__int128>(hits[pick]) * weights[i];
      if (lhs > rhs) pick = static_cast<int>(i);
    }
    if (pick < 0) return {kInfiniteMoney, {}};  // unsatisfiable remainder
    chosen.push_back(pick);
    cost = AddMoney(cost, weights[pick]);
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (hit[c]) continue;
      for (int item : clauses[c]) {
        if (item == pick) {
          hit[c] = 1;
          --remaining;
          break;
        }
      }
    }
  }
  std::sort(chosen.begin(), chosen.end());
  return {cost, std::move(chosen)};
}

}  // namespace

HittingSetResult SolveMinWeightHittingSet(const HittingSetInstance& instance,
                                          int64_t node_limit,
                                          const SearchBudget& budget) {
  HittingSetResult result;
  const size_t num_items = instance.weights.size();

  // Preprocess: dedupe, then subsume (c1 ⊆ c2 ⇒ drop c2) via clause
  // bitsets — word-wise subset tests instead of std::includes. Sorting by
  // (size, lex) keeps the kept order deterministic whatever order the
  // caller accumulated clauses in.
  std::set<std::vector<int>> unique(instance.clauses.begin(),
                                    instance.clauses.end());
  std::vector<std::vector<int>> clauses(unique.begin(), unique.end());
  std::sort(clauses.begin(), clauses.end(),
            [](const auto& a, const auto& b) {
              if (a.size() != b.size()) return a.size() < b.size();
              return a < b;
            });
  std::vector<std::vector<int>> kept;
  std::vector<bnb::Bitset> kept_bits;
  for (const auto& clause : clauses) {
    if (clause.empty()) {
      // Unsatisfiable clause: no hitting set exists.
      result.cost = kInfiniteMoney;
      result.optimal = true;
      return result;
    }
    bnb::Bitset bits(num_items);
    for (int item : clause) bits.Set(static_cast<size_t>(item));
    bool subsumed = false;
    for (const bnb::Bitset& small : kept_bits) {
      if (small.IsSubsetOf(bits)) {
        subsumed = true;
        break;
      }
    }
    if (subsumed) continue;
    kept.push_back(clause);
    kept_bits.push_back(std::move(bits));
  }

  // Dominance pre-pass on items (shared with the subset engine): an item
  // whose clause set is covered by a strictly cheaper item's is in no
  // optimal hitting set, so drop it from every clause before the search.
  {
    std::vector<bnb::Bitset> item_coverage(num_items,
                                           bnb::Bitset(kept.size()));
    for (size_t c = 0; c < kept.size(); ++c) {
      for (int item : kept[c]) item_coverage[item].Set(c);
    }
    std::vector<char> dominated =
        bnb::StrictlyDominatedItems(instance.weights, item_coverage);
    // Items outside every clause have empty coverage; they were never
    // pickable, so "dominated" is vacuous for them.
    bool any = false;
    for (size_t c = 0; c < kept.size() && !any; ++c) {
      for (int item : kept[c]) any = any || dominated[item];
    }
    if (any) {
      for (auto& clause : kept) {
        clause.erase(std::remove_if(clause.begin(), clause.end(),
                                    [&](int item) { return dominated[item]; }),
                     clause.end());
        // Every dominated item's dominator shares all its clauses, so no
        // clause can empty out here.
      }
    }
  }

  Searcher searcher(instance);
  searcher.clauses = std::move(kept);
  searcher.item_clauses.resize(num_items);
  for (size_t c = 0; c < searcher.clauses.size(); ++c) {
    for (int item : searcher.clauses[c]) {
      searcher.item_clauses[item].push_back(static_cast<int>(c));
    }
  }
  searcher.chosen.assign(num_items, 0);
  searcher.banned.assign(num_items, 0);
  searcher.satisfied_by.assign(searcher.clauses.size(), 0);
  searcher.lb_stamp.assign(num_items, 0);
  searcher.node_limit = node_limit;
  searcher.budget = budget;
  searcher.Search();

  result.cost = searcher.best_cost;
  result.chosen = searcher.best_set;
  result.optimal = !searcher.aborted;
  result.budget_exhausted = searcher.budget_exhausted;
  result.nodes_expanded = searcher.nodes;
  if (searcher.budget_exhausted) {
    // Degrade: hand back the cheaper of the incumbent and a greedy cover
    // (ties keep the incumbent) so the caller can quote an admissible
    // over-estimate instead of erroring.
    auto [greedy_cost, greedy_set] =
        GreedyHittingSet(instance.weights, searcher.clauses);
    if (greedy_cost < result.cost) {
      result.cost = greedy_cost;
      result.chosen = std::move(greedy_set);
    }
  }
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace qp
