#include "qp/pricing/hitting_set.h"

#include <algorithm>
#include <set>

namespace qp {
namespace {

struct Searcher {
  const std::vector<Money>& weights;
  std::vector<std::vector<int>> clauses;        // preprocessed
  std::vector<std::vector<int>> item_clauses;   // item -> clause indexes

  std::vector<char> chosen;
  std::vector<char> banned;
  std::vector<int> satisfied_by;  // clause -> count of chosen items
  Money best_cost = kInfiniteMoney;
  std::vector<int> best_set;
  Money current_cost = 0;
  std::vector<int> current_set;
  int64_t nodes = 0;
  int64_t node_limit = -1;
  bool aborted = false;

  explicit Searcher(const HittingSetInstance& instance)
      : weights(instance.weights) {}

  /// Lower bound: greedily pack item-disjoint unsatisfied clauses; each
  /// contributes the min weight among its available items.
  Money LowerBound() const {
    Money bound = 0;
    std::vector<char> used(weights.size(), 0);
    for (const auto& clause : clauses) {
      bool satisfied = false;
      bool disjoint = true;
      Money min_w = kInfiniteMoney;
      for (int item : clause) {
        if (chosen[item]) {
          satisfied = true;
          break;
        }
        if (banned[item]) continue;
        if (used[item]) disjoint = false;
        if (weights[item] < min_w) min_w = weights[item];
      }
      if (satisfied || !disjoint) continue;
      if (IsInfinite(min_w)) continue;  // dead clause handled elsewhere
      bound = AddMoney(bound, min_w);
      for (int item : clause) {
        if (!banned[item]) used[item] = 1;
      }
    }
    return bound;
  }

  void Search() {
    ++nodes;
    if (node_limit >= 0 && nodes > node_limit) {
      aborted = true;
      return;
    }
    if (AddMoney(current_cost, LowerBound()) >= best_cost) return;

    // Pick the unsatisfied clause with the fewest available items.
    int pick = -1;
    size_t pick_avail = SIZE_MAX;
    for (size_t c = 0; c < clauses.size(); ++c) {
      if (satisfied_by[c] > 0) continue;
      size_t avail = 0;
      for (int item : clauses[c]) {
        if (!banned[item]) ++avail;
      }
      if (avail < pick_avail) {
        pick_avail = avail;
        pick = static_cast<int>(c);
        if (avail <= 1) break;
      }
    }
    if (pick < 0) {
      // All clauses satisfied.
      if (current_cost < best_cost) {
        best_cost = current_cost;
        best_set = current_set;
      }
      return;
    }
    if (pick_avail == 0) return;  // dead branch

    // Branch over the clause's available items; ban each after exploring
    // its inclusion so branches are disjoint.
    std::vector<int> branch_items;
    for (int item : clauses[pick]) {
      if (!banned[item]) branch_items.push_back(item);
    }
    std::sort(branch_items.begin(), branch_items.end(),
              [&](int a, int b) { return weights[a] < weights[b]; });

    std::vector<int> newly_banned;
    for (int item : branch_items) {
      // Include `item`.
      chosen[item] = 1;
      current_cost = AddMoney(current_cost, weights[item]);
      current_set.push_back(item);
      for (int c : item_clauses[item]) ++satisfied_by[c];

      Search();

      for (int c : item_clauses[item]) --satisfied_by[c];
      current_set.pop_back();
      current_cost -= weights[item];
      chosen[item] = 0;
      if (aborted) break;

      banned[item] = 1;
      newly_banned.push_back(item);
    }
    for (int item : newly_banned) banned[item] = 0;
  }
};

}  // namespace

HittingSetResult SolveMinWeightHittingSet(const HittingSetInstance& instance,
                                          int64_t node_limit) {
  HittingSetResult result;

  // Preprocess: dedupe and subsume clauses (c1 ⊆ c2 ⇒ drop c2).
  std::set<std::vector<int>> unique(instance.clauses.begin(),
                                    instance.clauses.end());
  std::vector<std::vector<int>> clauses(unique.begin(), unique.end());
  std::sort(clauses.begin(), clauses.end(),
            [](const auto& a, const auto& b) { return a.size() < b.size(); });
  std::vector<std::vector<int>> kept;
  for (const auto& clause : clauses) {
    if (clause.empty()) {
      // Unsatisfiable clause: no hitting set exists.
      result.cost = kInfiniteMoney;
      result.optimal = true;
      return result;
    }
    bool subsumed = false;
    for (const auto& small : kept) {
      if (std::includes(clause.begin(), clause.end(), small.begin(),
                        small.end())) {
        subsumed = true;
        break;
      }
    }
    if (!subsumed) kept.push_back(clause);
  }

  Searcher searcher(instance);
  searcher.clauses = std::move(kept);
  searcher.item_clauses.resize(instance.weights.size());
  for (size_t c = 0; c < searcher.clauses.size(); ++c) {
    for (int item : searcher.clauses[c]) {
      searcher.item_clauses[item].push_back(static_cast<int>(c));
    }
  }
  searcher.chosen.assign(instance.weights.size(), 0);
  searcher.banned.assign(instance.weights.size(), 0);
  searcher.satisfied_by.assign(searcher.clauses.size(), 0);
  searcher.node_limit = node_limit;
  searcher.Search();

  result.cost = searcher.best_cost;
  result.chosen = searcher.best_set;
  result.optimal = !searcher.aborted;
  result.nodes_expanded = searcher.nodes;
  std::sort(result.chosen.begin(), result.chosen.end());
  return result;
}

}  // namespace qp
