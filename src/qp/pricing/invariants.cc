#include "qp/pricing/invariants.h"

#include <algorithm>
#include <string>

#include "qp/pricing/consistency.h"

namespace qp {
namespace {

std::string PriceDetail(const char* context, Money a, Money b) {
  return std::string(context) + ": " + MoneyToString(a) + " vs " +
         MoneyToString(b);
}

}  // namespace

bool CheckPriceNonNegative(Money price, const char* context) {
  bool ok = price >= 0;
  QP_INVARIANT(ok, std::string(context) +
                       ": negative arbitrage-price violates Prop 2.8: " +
                       std::to_string(price));
  return ok;
}

bool CheckPriceUpperBound(Money price, Money bound, const char* context) {
  bool ok = price <= bound;
  QP_INVARIANT(ok, std::string(context) +
                       ": price exceeds the determining-cover bound "
                       "(Lemma 3.1): " +
                       PriceDetail("price vs bound", price, bound));
  return ok;
}

bool CheckSubadditive(Money bundle_price, Money sum_of_member_prices,
                      const char* context) {
  bool ok = bundle_price <= sum_of_member_prices;
  QP_INVARIANT(ok, std::string(context) +
                       ": bundle priced above the sum of its members "
                       "violates subadditivity (Prop 2.8): " +
                       PriceDetail("bundle vs sum", bundle_price,
                                   sum_of_member_prices));
  return ok;
}

bool CheckMonotoneReprice(Money before, Money after, const char* context) {
  bool ok = after >= before;
  QP_INVARIANT(ok, std::string(context) +
                       ": price decreased under insertion despite monotone "
                       "determinacy (Prop 2.20/2.22): " +
                       PriceDetail("before vs after", before, after));
  return ok;
}

bool CheckSellerConsistency(const Catalog& catalog,
                            const SelectionPriceSet& prices,
                            const char* context) {
  ConsistencyReport report = CheckSelectionConsistency(catalog, prices);
  for (const ConsistencyViolation& v : report.violations) {
    QP_INVARIANT(false, std::string(context) +
                            ": seller price points admit arbitrage "
                            "(Thm 2.15 / Prop 3.2): " + v.ToString(catalog));
  }
  return report.consistent;
}

bool CheckSupportCost(const PricingSolution& solution,
                      const SelectionPriceSet& prices, const char* context) {
  if (!solution.support_tracked || !solution.pair_support.empty() ||
      IsInfinite(solution.price)) {
    return true;
  }
  Money support_cost = 0;
  for (const SelectionView& view : solution.support) {
    support_cost = AddMoney(support_cost, prices.Get(view));
  }
  bool ok = support_cost == solution.price;
  QP_INVARIANT(ok, std::string(context) +
                       ": optimal support does not cost the quoted price "
                       "(Equation 2): " +
                       PriceDetail("support vs price", support_cost,
                                   solution.price));
  return ok;
}

bool CheckSolutionInvariants(const PricingSolution& solution, Money bound,
                             const char* context) {
  bool ok = CheckPriceNonNegative(solution.price, context);
  ok = CheckPriceUpperBound(solution.price, bound, context) && ok;
  return ok;
}

Money DeterminingCoverCost(const Catalog& catalog,
                           const SelectionPriceSet& prices,
                           const std::vector<RelationId>& relations) {
  Money total = 0;
  for (RelationId rel : relations) {
    Money best = kInfiniteMoney;
    for (int pos = 0; pos < catalog.schema().arity(rel); ++pos) {
      Money cover = prices.FullCoverCost(catalog, AttrRef{rel, pos});
      if (cover < best) best = cover;
    }
    total = AddMoney(total, best);
  }
  return total;
}

PricingSolution DeterminingCoverSolution(
    const Catalog& catalog, const SelectionPriceSet& prices,
    const std::vector<RelationId>& relations) {
  PricingSolution solution;
  solution.price = 0;
  solution.approximate = true;
  for (RelationId rel : relations) {
    Money best = kInfiniteMoney;
    int best_pos = -1;
    for (int pos = 0; pos < catalog.schema().arity(rel); ++pos) {
      Money cover = prices.FullCoverCost(catalog, AttrRef{rel, pos});
      if (cover < best) {
        best = cover;
        best_pos = pos;
      }
    }
    solution.price = AddMoney(solution.price, best);
    if (IsInfinite(solution.price)) {
      solution.price = kInfiniteMoney;
      solution.support.clear();
      return solution;
    }
    AttrRef attr{rel, best_pos};
    for (ValueId v : catalog.Column(attr)) {
      solution.support.push_back(SelectionView{attr, v});
    }
  }
  std::sort(solution.support.begin(), solution.support.end());
  return solution;
}

}  // namespace qp
