#include "qp/pricing/chain_solver.h"

#include <algorithm>
#include <array>
#include <set>
#include <utility>

#include "qp/pricing/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/incremental_chain.h"

namespace qp {
namespace {

/// Dense value indexing per variable domain. Domains are sorted
/// (WorkProblem contract); when the value range is compact an offset table
/// gives O(1) lookups, otherwise binary search — either way no hashing on
/// the per-tuple hot path.
struct DomainIndex {
  const std::vector<ValueId>* values = nullptr;  // sorted, not owned
  std::vector<int32_t> dense;  // offset table: value - base -> index
  ValueId base = 0;
  bool use_dense = false;

  void Init(const std::vector<ValueId>& domain) {
    values = &domain;
    dense.clear();
    use_dense = false;
    if (domain.empty()) return;
    int64_t span = static_cast<int64_t>(domain.back()) - domain.front() + 1;
    if (span <= std::max<int64_t>(1024, 8 * static_cast<int64_t>(
                                            domain.size()))) {
      use_dense = true;
      base = domain.front();
      dense.assign(static_cast<size_t>(span), -1);
      for (size_t i = 0; i < domain.size(); ++i) {
        dense[static_cast<size_t>(domain[i] - base)] =
            static_cast<int32_t>(i);
      }
    }
  }
  int Find(ValueId v) const {
    if (use_dense) {
      int64_t off = static_cast<int64_t>(v) - base;
      if (off < 0 || off >= static_cast<int64_t>(dense.size())) return -1;
      return dense[static_cast<size_t>(off)];
    }
    auto it = std::lower_bound(values->begin(), values->end(), v);
    if (it == values->end() || *it != v) return -1;
    return static_cast<int>(it - values->begin());
  }
  int size() const { return static_cast<int>(values->size()); }
  ValueId value(int idx) const { return (*values)[idx]; }
};

/// Present tuples of one link as dense index pairs (entry_idx, exit_idx),
/// deduplicated through a bitset over the domain product.
struct PresentPairs {
  std::vector<std::pair<int32_t, int32_t>> pairs;
  std::vector<uint64_t> bits;
  size_t nb = 0;

  void Init(int na, int nb_in) {
    nb = static_cast<size_t>(nb_in);
    bits.assign((static_cast<size_t>(na) * nb + 63) / 64, 0);
    pairs.clear();
  }
  bool Add(int a, int b) {
    size_t k = static_cast<size_t>(a) * nb + static_cast<size_t>(b);
    uint64_t m = uint64_t{1} << (k & 63);
    if ((bits[k >> 6] & m) != 0) return false;
    bits[k >> 6] |= m;
    pairs.emplace_back(a, b);
    return true;
  }
  bool Has(int a, int b) const {
    size_t k = static_cast<size_t>(a) * nb + static_cast<size_t>(b);
    return ((bits[k >> 6] >> (k & 63)) & 1) != 0;
  }
};

/// Slot layout + per-link present pairs shared by the one-shot solver and
/// the incremental state. Slot i sits between link i-1 and link i:
/// slot_var[0] = entry var of link 0, slot_var[i+1] = exit var of link i.
struct ChainPrep {
  int num_links = 0;
  std::vector<VarId> slot_var;
  std::vector<DomainIndex> slot_domain;
  std::vector<PresentPairs> present;
  /// Some slot domain is empty: no candidate answers exist in any possible
  /// world, the price is trivially 0.
  bool trivial = false;
};

void PrepareChain(const WorkProblem& problem,
                  const std::vector<WorkLink>& links, ChainPrep* prep) {
  const int num_links = static_cast<int>(links.size());
  prep->num_links = num_links;
  prep->slot_var.assign(num_links + 1, -1);
  prep->slot_var[0] =
      problem.atoms[links[0].atom].positions[links[0].entry_pos].var;
  for (int i = 0; i < num_links; ++i) {
    prep->slot_var[i + 1] =
        problem.atoms[links[i].atom].positions[links[i].exit_pos].var;
  }
  for (int i = 0; i <= num_links; ++i) {
    if (problem.var_domain[prep->slot_var[i]].empty()) {
      prep->trivial = true;
      return;
    }
  }
  prep->slot_domain.assign(num_links + 1, DomainIndex{});
  for (int i = 0; i <= num_links; ++i) {
    prep->slot_domain[i].Init(problem.var_domain[prep->slot_var[i]]);
  }
  prep->present.assign(num_links, PresentPairs{});
  for (int i = 0; i < num_links; ++i) {
    const WorkLink& link = links[i];
    const WorkAtom& atom = problem.atoms[link.atom];
    prep->present[i].Init(prep->slot_domain[i].size(),
                          prep->slot_domain[i + 1].size());
    const size_t num_rows = atom.num_tuples();
    for (size_t r = 0; r < num_rows; ++r) {
      const ValueId* t = atom.tuple(r);
      int ia = prep->slot_domain[i].Find(t[link.entry_pos]);
      int ib = prep->slot_domain[i + 1].Find(t[link.exit_pos]);
      if (ia < 0 || ib < 0) continue;  // outside the harmonized domains
      prep->present[i].Add(ia, ib);
    }
  }
}

/// The solver-independent graph core: source/sink, the v/w node pair per
/// (link, side, value), the priced view edges and the tuple edges.
/// side 0 = entry position, side 1 = exit position (binary links only).
struct SideNodes {
  int32_t v_base = -1;
  int32_t w_base = -1;
};
struct CoreGraph {
  FlowNetwork::NodeId s = -1;
  FlowNetwork::NodeId t = -1;
  std::vector<std::array<SideNodes, 2>> side_nodes;
  std::vector<char> unary;
  int64_t view_edge_count = 0;

  int32_t v(int link, int side, int idx) const {
    return side_nodes[link][side].v_base + idx;
  }
  int32_t w(int link, int side, int idx) const {
    return side_nodes[link][side].w_base + idx;
  }
  int32_t entry_v(int link, int idx) const { return v(link, 0, idx); }
  int32_t exit_w(int link, int idx) const {
    return w(link, unary[link] ? 0 : 1, idx);
  }
};

void AddCoreEdges(const ChainPrep& prep, const WorkProblem& problem,
                  const std::vector<WorkLink>& links,
                  const PairPriceFn* pair_prices, FlowGraphBuilder* builder,
                  CoreGraph* core) {
  const int num_links = prep.num_links;
  core->s = builder->AddNode();
  core->t = builder->AddNode();
  core->side_nodes.assign(num_links, {});
  core->unary.assign(num_links, 0);
  for (int i = 0; i < num_links; ++i) {
    core->unary[i] = links[i].unary ? 1 : 0;
    int entry_n = prep.slot_domain[i].size();
    core->side_nodes[i][0].v_base = builder->AddNodes(entry_n);
    core->side_nodes[i][0].w_base = builder->AddNodes(entry_n);
    if (!links[i].unary) {
      int exit_n = prep.slot_domain[i + 1].size();
      core->side_nodes[i][1].v_base = builder->AddNodes(exit_n);
      core->side_nodes[i][1].w_base = builder->AddNodes(exit_n);
    }
  }

  // View edges: finite capacity = explicit price, tagged for support
  // extraction.
  auto add_view_edges = [&](int link, int side, int pos, int slot) {
    const WorkPosition& position =
        problem.atoms[links[link].atom].positions[pos];
    // slot_domain wraps var_domain of the slot's variable in order, so the
    // slot index addresses the position's domain-aligned price directly.
    for (int idx = 0; idx < prep.slot_domain[slot].size(); ++idx) {
      Money capacity = position.cost[idx];
      if (IsInfinite(capacity)) {
        builder->AddEdge(core->v(link, side, idx), core->w(link, side, idx),
                         capacity);
      } else {
        builder->AddTaggedEdge(
            core->v(link, side, idx), core->w(link, side, idx), capacity,
            FlowEdgeTag{FlowEdgeTag::Kind::kView, link, side, idx});
        ++core->view_edge_count;
      }
    }
  };
  for (int i = 0; i < num_links; ++i) {
    add_view_edges(i, 0, links[i].entry_pos, i);
    if (!links[i].unary) add_view_edges(i, 1, links[i].exit_pos, i + 1);
  }

  // Tuple edges (binary links): w(entry) -> v(exit), one per potential
  // tuple. Capacity is infinite unless a multi-attribute price exists.
  //
  // Without pair prices every one of the na*nb potential-tuple edges is
  // infinite — a complete bipartite block that can never contribute a cut
  // edge. Collapse it to one intermediate node (na + nb edges instead of
  // na * nb): reachability and every finite cut are unchanged, only the
  // quadratic fan-out goes away. With pair prices the explicit per-pair
  // edges must stay — a hub would hand every priced pair an infinite
  // bypass and silently delete it from the cut space.
  for (int i = 0; i < num_links; ++i) {
    if (links[i].unary) continue;
    if (pair_prices == nullptr) {
      FlowNetwork::NodeId hub = builder->AddNode();
      for (int a = 0; a < prep.slot_domain[i].size(); ++a) {
        builder->AddEdge(core->w(i, 0, a), hub, kInfiniteCapacity);
      }
      for (int b = 0; b < prep.slot_domain[i + 1].size(); ++b) {
        builder->AddEdge(hub, core->v(i, 1, b), kInfiniteCapacity);
      }
      continue;
    }
    for (int a = 0; a < prep.slot_domain[i].size(); ++a) {
      for (int b = 0; b < prep.slot_domain[i + 1].size(); ++b) {
        Money capacity = (*pair_prices)(i, prep.slot_domain[i].value(a),
                                        prep.slot_domain[i + 1].value(b));
        if (IsInfinite(capacity)) {
          builder->AddEdge(core->w(i, 0, a), core->v(i, 1, b), capacity);
        } else {
          builder->AddTaggedEdge(
              core->w(i, 0, a), core->v(i, 1, b), capacity,
              FlowEdgeTag{FlowEdgeTag::Kind::kPair, i, a, b});
        }
      }
    }
  }
}

/// First node id of each hub family per slot (-1 where the family has no
/// nodes at that slot). The incremental state keeps these so a later
/// insert can append the pair's family edges into the same arena.
struct HubNodes {
  std::vector<int32_t> src;  // size num_links, src_hub[i] for slot i
  std::vector<int32_t> dst;  // size num_links + 1, defined for i >= 1
  std::vector<int32_t> mid;  // size num_links + 1, defined 1..num_links-1
};

/// Hub construction. Three disjoint hub families so no all-infinite s-t
/// path can bypass the view edges:
///  * SrcHub(slot, a): reachable from s through an all-present prefix.
///  * DstHub(slot, b): reaches t through an all-present suffix.
///  * MidHub(slot, a): connects two absent-atom traversals through an
///    all-present middle run.
///
/// Family edges are materialized for present pairs only; `hub_nodes`
/// (optional) receives the node layout so the incremental state can
/// append a newly inserted pair's family edges later.
void BuildHubEdges(const ChainPrep& prep, FlowGraphBuilder* builder,
                   const CoreGraph& core, HubNodes* hub_nodes = nullptr) {
  const int num_links = prep.num_links;
  std::vector<int32_t> src_hub(num_links), dst_hub(num_links + 1, -1),
      mid_hub(num_links + 1, -1);
  for (int i = 0; i < num_links; ++i) {
    src_hub[i] = builder->AddNodes(prep.slot_domain[i].size());
  }
  for (int i = 1; i <= num_links; ++i) {
    dst_hub[i] = builder->AddNodes(prep.slot_domain[i].size());
  }
  for (int i = 1; i < num_links; ++i) {
    mid_hub[i] = builder->AddNodes(prep.slot_domain[i].size());
  }

  // One pair-family: edges from_base+a -> to_base+b across link i.
  auto add_family = [&](int i, int32_t from_base, int32_t to_base) {
    for (const auto& [a, b] : prep.present[i].pairs) {
      builder->AddEdge(from_base + a, to_base + b, kInfiniteCapacity);
    }
  };

  // Source side.
  for (int a = 0; a < prep.slot_domain[0].size(); ++a) {
    builder->AddEdge(core.s, src_hub[0] + a, kInfiniteCapacity);
  }
  for (int i = 0; i + 1 < num_links; ++i) {
    add_family(i, src_hub[i], src_hub[i + 1]);
  }
  for (int m = 0; m < num_links; ++m) {
    for (int a = 0; a < prep.slot_domain[m].size(); ++a) {
      builder->AddEdge(src_hub[m] + a, core.entry_v(m, a),
                       kInfiniteCapacity);
    }
  }
  // Sink side.
  for (int b = 0; b < prep.slot_domain[num_links].size(); ++b) {
    builder->AddEdge(dst_hub[num_links] + b, core.t, kInfiniteCapacity);
  }
  for (int i = 1; i < num_links; ++i) {
    add_family(i, dst_hub[i], dst_hub[i + 1]);
  }
  for (int l = 0; l < num_links; ++l) {
    for (int b = 0; b < prep.slot_domain[l + 1].size(); ++b) {
      builder->AddEdge(core.exit_w(l, b), dst_hub[l + 1] + b,
                       kInfiniteCapacity);
    }
  }
  // Middle runs.
  for (int l = 0; l + 1 < num_links; ++l) {
    for (int b = 0; b < prep.slot_domain[l + 1].size(); ++b) {
      builder->AddEdge(core.exit_w(l, b), mid_hub[l + 1] + b,
                       kInfiniteCapacity);
    }
  }
  for (int i = 1; i + 1 < num_links; ++i) {
    add_family(i, mid_hub[i], mid_hub[i + 1]);
  }
  for (int m = 1; m < num_links; ++m) {
    for (int a = 0; a < prep.slot_domain[m].size(); ++a) {
      builder->AddEdge(mid_hub[m] + a, core.entry_v(m, a),
                       kInfiniteCapacity);
    }
  }
  if (hub_nodes != nullptr) {
    hub_nodes->src = std::move(src_hub);
    hub_nodes->dst = std::move(dst_hub);
    hub_nodes->mid = std::move(mid_hub);
  }
}

/// Turns a finished solve (flow value + residual state in the builder's
/// network) into a PricingSolution: the cut's tagged view edges become the
/// support, tagged pair edges are reported through `cut_pairs`.
Result<PricingSolution> ExtractSolution(const FlowGraphBuilder& builder,
                                        const ChainPrep& prep,
                                        const WorkProblem& problem,
                                        const std::vector<WorkLink>& links,
                                        int64_t flow,
                                        std::vector<CutPairEdge>* cut_pairs,
                                        const char* context) {
  PricingSolution solution;
  solution.price = flow;
  if (IsInfinite(solution.price)) {
    solution.price = kInfiniteMoney;
    return solution;
  }
  std::set<SelectionView> support;
  QP_ASSIGN_OR_RETURN(std::vector<FlowNetwork::EdgeId> cut,
                      builder.net().MinCutEdges());
  for (FlowNetwork::EdgeId e : cut) {
    const FlowEdgeTag& tag = builder.tag(e);
    if (tag.kind == FlowEdgeTag::Kind::kView) {
      const WorkLink& link = links[tag.link];
      int pos = tag.a == 0 ? link.entry_pos : link.exit_pos;
      const WorkPosition& position =
          problem.atoms[link.atom].positions[pos];
      // tag.b is the slot-domain index, which is the domain-aligned index
      // into the position's price table.
      if (position.has_origin[tag.b]) support.insert(position.origin[tag.b]);
    } else if (tag.kind == FlowEdgeTag::Kind::kPair &&
               cut_pairs != nullptr) {
      cut_pairs->push_back(
          CutPairEdge{tag.link, prep.slot_domain[tag.link].value(tag.a),
                      prep.slot_domain[tag.link + 1].value(tag.b)});
    }
  }
  solution.support.assign(support.begin(), support.end());
  // Return-boundary invariant (Prop 2.8): a min-cut value is a price and
  // must be non-negative. Duality (cut == flow) is asserted inside
  // FlowNetwork::MinCutEdges.
  CheckPriceNonNegative(solution.price, context);
  return solution;
}

}  // namespace

Result<PricingSolution> SolveChainMinCut(const WorkProblem& problem,
                                         const std::vector<WorkLink>& links,
                                         const ChainSolverOptions& options,
                                         ChainGraphStats* stats,
                                         const PairPriceFn* pair_prices,
                                         std::vector<CutPairEdge>* cut_pairs,
                                         FlowGraphBuilder* scratch) {
  const int num_links = static_cast<int>(links.size());
  if (num_links == 0) return Status::InvalidArgument("empty chain");
  if (options.budget.Exhausted()) {
    return Status::DeadlineExceeded(
        "chain min-cut solve exceeded the serving budget");
  }
  QP_METRIC_INCR("qp.solver.chain.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.chain_ns");

  ChainPrep prep;
  PrepareChain(problem, links, &prep);
  if (prep.trivial) {
    PricingSolution trivial;
    trivial.price = 0;
    return trivial;
  }

  FlowGraphBuilder local_builder;
  FlowGraphBuilder& builder =
      scratch != nullptr ? *scratch : local_builder;
  builder.Reset();
  CoreGraph core;
  AddCoreEdges(prep, problem, links, pair_prices, &builder, &core);

  if (options.skip_mode == ChainSolverOptions::SkipMode::kDirect) {
    // Literal construction of Section 3.1. Left partial answers
    // Lt[i] ⊆ dom(slot i): values reachable through an all-present prefix
    // of links 0..i-1 (Lt[0] = the whole column); Rt[i] symmetric from the
    // right. Only this mode needs them — the hub wiring encodes both
    // reachabilities implicitly through the present-pair edges.
    std::vector<std::vector<char>> lt(num_links + 1);
    lt[0].assign(prep.slot_domain[0].size(), 1);
    for (int i = 0; i < num_links; ++i) {
      lt[i + 1].assign(prep.slot_domain[i + 1].size(), 0);
      for (const auto& [a, b] : prep.present[i].pairs) {
        if (lt[i][a]) lt[i + 1][b] = 1;
      }
    }
    std::vector<std::vector<char>> rt(num_links + 1);
    rt[num_links].assign(prep.slot_domain[num_links].size(), 1);
    for (int i = num_links - 1; i >= 0; --i) {
      rt[i].assign(prep.slot_domain[i].size(), 0);
      for (const auto& [a, b] : prep.present[i].pairs) {
        if (rt[i + 1][b]) rt[i][a] = 1;
      }
    }
    // Md[i][j] = pairs (a at slot i, b at slot j) connected by an
    // all-present run of links i..j-1.
    // s -> v(entry m, a)            iff a ∈ Lt[m]
    // exit_w(l, b) -> v(entry m, a) iff (b,a) ∈ Md[l+1][m], l < m
    // exit_w(l, b) -> t             iff b ∈ Rt[l+1]
    for (int m = 0; m < num_links; ++m) {
      for (int a = 0; a < prep.slot_domain[m].size(); ++a) {
        if (lt[m][a]) {
          builder.AddEdge(core.s, core.entry_v(m, a), kInfiniteCapacity);
        }
      }
    }
    for (int l = 0; l < num_links; ++l) {
      for (int b = 0; b < prep.slot_domain[l + 1].size(); ++b) {
        if (rt[l + 1][b]) {
          builder.AddEdge(core.exit_w(l, b), core.t, kInfiniteCapacity);
        }
      }
    }
    // Md via DP from each start slot.
    for (int start = 1; start < num_links; ++start) {
      // Md[start][start]: diagonal (empty middle run).
      for (int b = 0; b < prep.slot_domain[start].size(); ++b) {
        builder.AddEdge(core.exit_w(start - 1, b), core.entry_v(start, b),
                        kInfiniteCapacity);
      }
      // For longer runs we need per-source reachability; do a DP per
      // source value at slot `start`.
      for (int src = 0; src < prep.slot_domain[start].size(); ++src) {
        std::vector<char> cur(prep.slot_domain[start].size(), 0);
        cur[src] = 1;
        for (int j = start; j < num_links; ++j) {
          std::vector<char> next(prep.slot_domain[j + 1].size(), 0);
          for (const auto& [a, b] : prep.present[j].pairs) {
            if (cur[a]) next[b] = 1;
          }
          if (j + 1 < num_links) {
            for (int b = 0; b < prep.slot_domain[j + 1].size(); ++b) {
              if (next[b]) {
                builder.AddEdge(core.exit_w(start - 1, src),
                                core.entry_v(j + 1, b), kInfiniteCapacity);
              }
            }
          }
          cur = std::move(next);
        }
      }
    }
  } else {
    BuildHubEdges(prep, &builder, core);
  }

  int64_t flow = builder.net().MaxFlow(core.s, core.t, options.flow_solver);
  if (stats != nullptr) {
    stats->nodes = builder.net().num_nodes();
    stats->edges = builder.net().num_edges();
    stats->view_edges = core.view_edge_count;
    stats->max_flow = flow;
  }
  return ExtractSolution(builder, prep, problem, links, flow, cut_pairs,
                         "SolveChainMinCut");
}

// ---- IncrementalChainState --------------------------------------------------

struct IncrementalChainState::Impl {
  WorkProblem problem;  // snapshot the prep indexes point into
  FlowSolver solver = FlowSolver::kAuto;
  FlowGraphBuilder builder;
  ChainPrep prep;
  CoreGraph core;
  HubNodes hubs;
  bool dirty = false;
};

IncrementalChainState::IncrementalChainState() = default;
IncrementalChainState::~IncrementalChainState() = default;

Result<std::unique_ptr<IncrementalChainState>> IncrementalChainState::Build(
    const WorkProblem& problem, const std::vector<WorkLink>& links,
    FlowSolver solver) {
  if (links.empty()) return Status::InvalidArgument("empty chain");
  QP_METRIC_INCR("qp.solver.chain.incremental_builds");
  std::unique_ptr<IncrementalChainState> state(new IncrementalChainState());
  state->links_ = links;
  state->impl_ = std::make_unique<Impl>();
  Impl& impl = *state->impl_;
  impl.problem = problem;
  impl.solver = solver;
  PrepareChain(impl.problem, state->links_, &impl.prep);
  if (impl.prep.trivial) {
    // An empty slot domain stays empty under inserts (a value enters a
    // domain only through a rebuild, which DynamicPricer triggers when
    // the snapshot goes stale), so the price is 0 forever.
    state->solution_.price = 0;
    return state;
  }
  AddCoreEdges(impl.prep, impl.problem, state->links_,
               /*pair_prices=*/nullptr, &impl.builder, &impl.core);
  BuildHubEdges(impl.prep, &impl.builder, impl.core, &impl.hubs);
  int64_t flow =
      impl.builder.net().MaxFlow(impl.core.s, impl.core.t, impl.solver);
  QP_ASSIGN_OR_RETURN(
      state->solution_,
      ExtractSolution(impl.builder, impl.prep, impl.problem, state->links_,
                      flow, nullptr, "IncrementalChainState::Build"));
  return state;
}

bool IncrementalChainState::InsertLinkPair(int link, ValueId entry,
                                           ValueId exit) {
  Impl& impl = *impl_;
  if (impl.prep.trivial) return false;
  int ia = impl.prep.slot_domain[link].Find(entry);
  int ib = impl.prep.slot_domain[link + 1].Find(exit);
  if (ia < 0 || ib < 0) return false;  // joins nothing within the snapshot
  if (!impl.prep.present[link].Add(ia, ib)) return false;  // already present
  // Append the pair's family edges through the builder (the ones
  // BuildHubEdges would have added with the tuple present), keeping the
  // tag table aligned. The previous flow stays feasible — new edges carry
  // zero flow — so Refresh can re-augment warm.
  const int nl = impl.prep.num_links;
  if (link + 1 < nl) {
    impl.builder.AddEdge(impl.hubs.src[link] + ia,
                         impl.hubs.src[link + 1] + ib, kInfiniteCapacity);
  }
  if (link >= 1) {
    impl.builder.AddEdge(impl.hubs.dst[link] + ia,
                         impl.hubs.dst[link + 1] + ib, kInfiniteCapacity);
  }
  if (link >= 1 && link + 1 < nl) {
    impl.builder.AddEdge(impl.hubs.mid[link] + ia,
                         impl.hubs.mid[link + 1] + ib, kInfiniteCapacity);
  }
  impl.dirty = true;
  return true;
}

Status IncrementalChainState::Refresh() {
  Impl& impl = *impl_;
  if (!impl.dirty) return Status::Ok();
  QP_METRIC_INCR("qp.solver.chain.warm_reprices");
  QP_ASSIGN_OR_RETURN(int64_t flow, impl.builder.net().ResumeMaxFlow());
  QP_ASSIGN_OR_RETURN(
      solution_,
      ExtractSolution(impl.builder, impl.prep, impl.problem, links_, flow,
                      nullptr, "IncrementalChainState::Refresh"));
  impl.dirty = false;
  return Status::Ok();
}

int IncrementalChainState::LinkOfAtom(int atom_idx) const {
  for (size_t i = 0; i < links_.size(); ++i) {
    if (links_[i].atom == atom_idx) return static_cast<int>(i);
  }
  return -1;
}

}  // namespace qp
