#include "qp/pricing/chain_solver.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "qp/check/invariants.h"
#include "qp/flow/max_flow.h"
#include "qp/obs/metrics.h"
#include "qp/util/hash.h"

namespace qp {
namespace {

/// Dense value indexing per variable domain.
struct DomainIndex {
  std::vector<ValueId> values;                     // sorted
  std::unordered_map<ValueId, int> index_of;

  explicit DomainIndex(const std::vector<ValueId>& domain) : values(domain) {
    for (size_t i = 0; i < values.size(); ++i) {
      index_of.emplace(values[i], static_cast<int>(i));
    }
  }
  int size() const { return static_cast<int>(values.size()); }
};

/// Present tuples of one link as dense index pairs (entry_idx, exit_idx).
struct PresentPairs {
  std::vector<std::pair<int, int>> pairs;
  std::unordered_set<uint64_t> member;

  void Add(int a, int b) {
    if (member.insert(PackPair(static_cast<uint32_t>(a),
                               static_cast<uint32_t>(b)))
            .second) {
      pairs.emplace_back(a, b);
    }
  }
  bool Has(int a, int b) const {
    return member.count(PackPair(static_cast<uint32_t>(a),
                                 static_cast<uint32_t>(b))) > 0;
  }
};

}  // namespace

Result<PricingSolution> SolveChainMinCut(const WorkProblem& problem,
                                         const std::vector<WorkLink>& links,
                                         const ChainSolverOptions& options,
                                         ChainGraphStats* stats,
                                         const PairPriceFn* pair_prices,
                                         std::vector<CutPairEdge>* cut_pairs,
                                         FlowNetwork* scratch) {
  const int num_links = static_cast<int>(links.size());
  if (num_links == 0) return Status::InvalidArgument("empty chain");
  if (options.budget.Exhausted()) {
    return Status::DeadlineExceeded(
        "chain min-cut solve exceeded the serving budget");
  }
  QP_METRIC_INCR("qp.solver.chain.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.chain_ns");

  // Slot variables: slot i sits between link i-1 and link i.
  // slot_var[0] = entry var of link 0; slot_var[i+1] = exit var of link i.
  std::vector<VarId> slot_var(num_links + 1);
  slot_var[0] =
      problem.atoms[links[0].atom].positions[links[0].entry_pos].var;
  for (int i = 0; i < num_links; ++i) {
    slot_var[i + 1] =
        problem.atoms[links[i].atom].positions[links[i].exit_pos].var;
  }

  // Empty domain anywhere: no candidate answers exist in any possible
  // world, so the query is trivially determined — price 0.
  for (int i = 0; i <= num_links; ++i) {
    if (problem.var_domain[slot_var[i]].empty()) {
      PricingSolution trivial;
      trivial.price = 0;
      return trivial;
    }
  }

  std::vector<DomainIndex> slot_domain;
  slot_domain.reserve(num_links + 1);
  for (int i = 0; i <= num_links; ++i) {
    slot_domain.emplace_back(problem.var_domain[slot_var[i]]);
  }

  // Present pairs per link, as dense (entry slot index, exit slot index).
  std::vector<PresentPairs> present(num_links);
  for (int i = 0; i < num_links; ++i) {
    const WorkLink& link = links[i];
    const WorkAtom& atom = problem.atoms[link.atom];
    for (const Tuple& t : atom.tuples) {
      ValueId a = t[link.entry_pos];
      ValueId b = t[link.exit_pos];
      auto ia = slot_domain[i].index_of.find(a);
      auto ib = slot_domain[i + 1].index_of.find(b);
      if (ia == slot_domain[i].index_of.end() ||
          ib == slot_domain[i + 1].index_of.end()) {
        continue;  // outside the harmonized domains
      }
      present[i].Add(ia->second, ib->second);
    }
  }

  // Left partial answers Lt[i] ⊆ dom(slot i): values reachable through an
  // all-present prefix of links 0..i-1 (Lt[0] = the whole column).
  std::vector<std::vector<char>> lt(num_links + 1);
  lt[0].assign(slot_domain[0].size(), 1);
  for (int i = 0; i < num_links; ++i) {
    lt[i + 1].assign(slot_domain[i + 1].size(), 0);
    for (const auto& [a, b] : present[i].pairs) {
      if (lt[i][a]) lt[i + 1][b] = 1;
    }
  }
  // Right partial answers Rt[i] ⊆ dom(slot i): values from which links
  // i..K-1 can be completed all-present (Rt[K] = the whole column).
  std::vector<std::vector<char>> rt(num_links + 1);
  rt[num_links].assign(slot_domain[num_links].size(), 1);
  for (int i = num_links - 1; i >= 0; --i) {
    rt[i].assign(slot_domain[i].size(), 0);
    for (const auto& [a, b] : present[i].pairs) {
      if (rt[i + 1][b]) rt[i][a] = 1;
    }
  }

  // ---- Graph construction -------------------------------------------------
  FlowNetwork local_net;
  FlowNetwork& net = scratch != nullptr ? *scratch : local_net;
  net.Reset();
  const auto s = net.AddNode();
  const auto t = net.AddNode();

  // v/w node pairs per (link, side, value). Unary links have one side.
  // side 0 = entry position, side 1 = exit position (binary only).
  struct SideNodes {
    int32_t v_base = -1;
    int32_t w_base = -1;
  };
  std::vector<std::array<SideNodes, 2>> side_nodes(num_links);
  for (int i = 0; i < num_links; ++i) {
    int entry_n = slot_domain[i].size();
    side_nodes[i][0].v_base = net.AddNodes(entry_n);
    side_nodes[i][0].w_base = net.AddNodes(entry_n);
    if (!links[i].unary) {
      int exit_n = slot_domain[i + 1].size();
      side_nodes[i][1].v_base = net.AddNodes(exit_n);
      side_nodes[i][1].w_base = net.AddNodes(exit_n);
    }
  }
  auto v_node = [&](int link, int side, int idx) {
    return side_nodes[link][side].v_base + idx;
  };
  auto w_node = [&](int link, int side, int idx) {
    return side_nodes[link][side].w_base + idx;
  };
  // Entry node of a link traversal and exit node.
  auto entry_v = [&](int link, int idx) { return v_node(link, 0, idx); };
  auto exit_w = [&](int link, int idx) {
    return w_node(link, links[link].unary ? 0 : 1, idx);
  };

  // View edges: finite capacity = explicit price; mapping for support.
  struct ViewEdgeInfo {
    int link;
    int side;
    ValueId value;
  };
  std::unordered_map<int32_t, ViewEdgeInfo> view_edge_info;
  int64_t view_edge_count = 0;
  auto add_view_edges = [&](int link, int side, int pos, int slot) {
    const WorkPosition& position =
        problem.atoms[links[link].atom].positions[pos];
    for (int idx = 0; idx < slot_domain[slot].size(); ++idx) {
      ValueId value = slot_domain[slot].values[idx];
      auto it = position.cost.find(value);
      Money capacity = (it == position.cost.end()) ? kInfiniteMoney
                                                   : it->second;
      auto e = net.AddEdge(v_node(link, side, idx), w_node(link, side, idx),
                           capacity);
      if (!IsInfinite(capacity)) {
        view_edge_info.emplace(e, ViewEdgeInfo{link, side, value});
        ++view_edge_count;
      }
    }
  };
  for (int i = 0; i < num_links; ++i) {
    add_view_edges(i, 0, links[i].entry_pos, i);
    if (!links[i].unary) add_view_edges(i, 1, links[i].exit_pos, i + 1);
  }

  // Tuple edges (binary links): w(entry) -> v(exit), one per potential
  // tuple. Capacity is infinite unless a multi-attribute price exists.
  struct TupleEdgeInfo {
    int link;
    ValueId entry;
    ValueId exit;
  };
  std::unordered_map<int32_t, TupleEdgeInfo> tuple_edge_info;
  for (int i = 0; i < num_links; ++i) {
    if (links[i].unary) continue;
    for (int a = 0; a < slot_domain[i].size(); ++a) {
      for (int b = 0; b < slot_domain[i + 1].size(); ++b) {
        Money capacity = kInfiniteMoney;
        if (pair_prices != nullptr) {
          capacity = (*pair_prices)(i, slot_domain[i].values[a],
                                    slot_domain[i + 1].values[b]);
        }
        auto e = net.AddEdge(w_node(i, 0, a), v_node(i, 1, b), capacity);
        if (!IsInfinite(capacity)) {
          tuple_edge_info.emplace(
              e, TupleEdgeInfo{i, slot_domain[i].values[a],
                               slot_domain[i + 1].values[b]});
        }
      }
    }
  }

  // ---- Skip edges ----------------------------------------------------------
  if (options.skip_mode == ChainSolverOptions::SkipMode::kDirect) {
    // Literal construction: Md[i][j] = pairs (a at slot i, b at slot j)
    // connected by an all-present run of links i..j-1.
    // s -> v(entry m, a)            iff a ∈ Lt[m]
    // exit_w(l, b) -> v(entry m, a) iff (b,a) ∈ Md[l+1][m], l < m
    // exit_w(l, b) -> t             iff b ∈ Rt[l+1]
    for (int m = 0; m < num_links; ++m) {
      for (int a = 0; a < slot_domain[m].size(); ++a) {
        if (lt[m][a]) net.AddEdge(s, entry_v(m, a), kInfiniteCapacity);
      }
    }
    for (int l = 0; l < num_links; ++l) {
      for (int b = 0; b < slot_domain[l + 1].size(); ++b) {
        if (rt[l + 1][b]) {
          net.AddEdge(exit_w(l, b), t, kInfiniteCapacity);
        }
      }
    }
    // Md via DP from each start slot.
    for (int start = 1; start < num_links; ++start) {
      // reach[b] at the current slot; start with the diagonal.
      std::vector<std::vector<char>> reach(num_links + 1);
      reach[start].assign(slot_domain[start].size(), 0);
      // Md[start][start]: diagonal (empty middle run).
      // Skip edges exit_w(start-1, b) -> entry_v(start, b).
      for (int b = 0; b < slot_domain[start].size(); ++b) {
        net.AddEdge(exit_w(start - 1, b), entry_v(start, b),
                    kInfiniteCapacity);
      }
      // For longer runs we need per-source reachability; do a DP per
      // source value at slot `start`.
      for (int src = 0; src < slot_domain[start].size(); ++src) {
        std::vector<char> cur(slot_domain[start].size(), 0);
        cur[src] = 1;
        for (int j = start; j < num_links; ++j) {
          std::vector<char> next(slot_domain[j + 1].size(), 0);
          for (const auto& [a, b] : present[j].pairs) {
            if (cur[a]) next[b] = 1;
          }
          // Md[start][j+1] pairs (src, b): skip edges into link j+1.
          if (j + 1 < num_links) {
            for (int b = 0; b < slot_domain[j + 1].size(); ++b) {
              if (next[b]) {
                net.AddEdge(exit_w(start - 1, src), entry_v(j + 1, b),
                            kInfiniteCapacity);
              }
            }
          }
          cur = std::move(next);
        }
      }
    }
  } else {
    // Hub construction. Three disjoint hub families so no all-infinite
    // s-t path can bypass the view edges:
    //  * SrcHub(slot, a): reachable from s through an all-present prefix.
    //  * DstHub(slot, b): reaches t through an all-present suffix.
    //  * MidHub(slot, a): connects two absent-atom traversals through an
    //    all-present middle run.
    std::vector<int32_t> src_hub(num_links), dst_hub(num_links + 1),
        mid_hub(num_links + 1, -1);
    for (int i = 0; i < num_links; ++i) {
      src_hub[i] = net.AddNodes(slot_domain[i].size());
    }
    for (int i = 1; i <= num_links; ++i) {
      dst_hub[i] = net.AddNodes(slot_domain[i].size());
    }
    for (int i = 1; i < num_links; ++i) {
      mid_hub[i] = net.AddNodes(slot_domain[i].size());
    }
    // Source side.
    for (int a = 0; a < slot_domain[0].size(); ++a) {
      net.AddEdge(s, src_hub[0] + a, kInfiniteCapacity);
    }
    for (int i = 0; i + 1 < num_links; ++i) {
      for (const auto& [a, b] : present[i].pairs) {
        net.AddEdge(src_hub[i] + a, src_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int m = 0; m < num_links; ++m) {
      for (int a = 0; a < slot_domain[m].size(); ++a) {
        net.AddEdge(src_hub[m] + a, entry_v(m, a), kInfiniteCapacity);
      }
    }
    // Sink side.
    for (int b = 0; b < slot_domain[num_links].size(); ++b) {
      net.AddEdge(dst_hub[num_links] + b, t, kInfiniteCapacity);
    }
    for (int i = 1; i < num_links; ++i) {
      for (const auto& [a, b] : present[i].pairs) {
        net.AddEdge(dst_hub[i] + a, dst_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int l = 0; l < num_links; ++l) {
      for (int b = 0; b < slot_domain[l + 1].size(); ++b) {
        net.AddEdge(exit_w(l, b), dst_hub[l + 1] + b, kInfiniteCapacity);
      }
    }
    // Middle runs.
    for (int l = 0; l + 1 < num_links; ++l) {
      for (int b = 0; b < slot_domain[l + 1].size(); ++b) {
        net.AddEdge(exit_w(l, b), mid_hub[l + 1] + b, kInfiniteCapacity);
      }
    }
    for (int i = 1; i + 1 < num_links; ++i) {
      for (const auto& [a, b] : present[i].pairs) {
        net.AddEdge(mid_hub[i] + a, mid_hub[i + 1] + b, kInfiniteCapacity);
      }
    }
    for (int m = 1; m < num_links; ++m) {
      for (int a = 0; a < slot_domain[m].size(); ++a) {
        net.AddEdge(mid_hub[m] + a, entry_v(m, a), kInfiniteCapacity);
      }
    }
  }

  // ---- Solve ----------------------------------------------------------------
  int64_t flow = net.MaxFlow(s, t);
  if (stats != nullptr) {
    stats->nodes = net.num_nodes();
    stats->edges = net.num_edges();
    stats->view_edges = view_edge_count;
    stats->max_flow = flow;
  }

  PricingSolution solution;
  solution.price = flow;
  if (IsInfinite(solution.price)) {
    solution.price = kInfiniteMoney;
    return solution;
  }
  // Support: views on the min cut.
  std::set<SelectionView> support;
  for (auto e : net.MinCutEdges()) {
    auto view_it = view_edge_info.find(e);
    if (view_it != view_edge_info.end()) {
      const ViewEdgeInfo& info = view_it->second;
      const WorkLink& link = links[info.link];
      int pos = info.side == 0 ? link.entry_pos : link.exit_pos;
      const WorkPosition& position =
          problem.atoms[link.atom].positions[pos];
      auto origin = position.origin.find(info.value);
      if (origin != position.origin.end()) support.insert(origin->second);
      continue;
    }
    auto tuple_it = tuple_edge_info.find(e);
    if (tuple_it != tuple_edge_info.end() && cut_pairs != nullptr) {
      const TupleEdgeInfo& info = tuple_it->second;
      cut_pairs->push_back(CutPairEdge{info.link, info.entry, info.exit});
    }
  }
  solution.support.assign(support.begin(), support.end());
  // Return-boundary invariant (Prop 2.8): a min-cut value is a price and
  // must be non-negative. Duality (cut == flow) is asserted inside
  // FlowNetwork::MinCutEdges.
  CheckPriceNonNegative(solution.price, "SolveChainMinCut");
  return solution;
}

}  // namespace qp
