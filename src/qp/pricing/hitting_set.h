#ifndef QP_PRICING_HITTING_SET_H_
#define QP_PRICING_HITTING_SET_H_

#include <cstdint>
#include <vector>

#include "qp/pricing/money.h"
#include "qp/util/search_budget.h"

namespace qp {

/// A minimum-weight hitting set instance: choose a subset of items (each
/// with a non-negative weight) hitting every clause (at least one chosen
/// item per clause). This is the combinatorial core of exact query pricing:
/// the determinacy conditions of Theorem 3.3 translate into clauses over
/// explicit views, and Theorem 3.5's NP-hardness lives exactly here.
struct HittingSetInstance {
  std::vector<Money> weights;
  /// Clauses as sorted, deduplicated item-index lists.
  std::vector<std::vector<int>> clauses;
};

struct HittingSetResult {
  Money cost = kInfiniteMoney;
  std::vector<int> chosen;
  /// False when the node limit or serving budget was hit; `cost` is then
  /// an upper bound (and `chosen` the best known feasible hitting set —
  /// the incumbent or a post-abort greedy cover — when one exists).
  bool optimal = true;
  /// True when the abort came from the serving budget (deadline / cancel /
  /// global node cap) rather than `node_limit`.
  bool budget_exhausted = false;
  int64_t nodes_expanded = 0;
};

/// Exact branch-and-bound solver with clause subsumption and a
/// disjoint-clause lower bound. `node_limit < 0` means unlimited. The
/// budget is never used to seed the bound — pruning is `>=`, so a seeded
/// bound could hide the canonical optimum.
HittingSetResult SolveMinWeightHittingSet(const HittingSetInstance& instance,
                                          int64_t node_limit = -1,
                                          const SearchBudget& budget = {});

}  // namespace qp

#endif  // QP_PRICING_HITTING_SET_H_
