#ifndef QP_PRICING_HITTING_SET_H_
#define QP_PRICING_HITTING_SET_H_

#include <vector>

#include "qp/pricing/money.h"

namespace qp {

/// A minimum-weight hitting set instance: choose a subset of items (each
/// with a non-negative weight) hitting every clause (at least one chosen
/// item per clause). This is the combinatorial core of exact query pricing:
/// the determinacy conditions of Theorem 3.3 translate into clauses over
/// explicit views, and Theorem 3.5's NP-hardness lives exactly here.
struct HittingSetInstance {
  std::vector<Money> weights;
  /// Clauses as sorted, deduplicated item-index lists.
  std::vector<std::vector<int>> clauses;
};

struct HittingSetResult {
  Money cost = kInfiniteMoney;
  std::vector<int> chosen;
  /// False when the node limit was hit; `cost` is then an upper bound.
  bool optimal = true;
  int64_t nodes_expanded = 0;
};

/// Exact branch-and-bound solver with clause subsumption and a
/// disjoint-clause lower bound. `node_limit < 0` means unlimited.
HittingSetResult SolveMinWeightHittingSet(const HittingSetInstance& instance,
                                          int64_t node_limit = -1);

}  // namespace qp

#endif  // QP_PRICING_HITTING_SET_H_
