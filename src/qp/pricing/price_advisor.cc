#include "qp/pricing/price_advisor.h"

#include <map>

namespace qp {

RepairResult RepairConsistency(const Catalog& catalog,
                               const SelectionPriceSet& prices) {
  RepairResult result;
  result.repaired = prices;
  std::map<SelectionView, Money> original;
  for (const auto& [view, price] : prices.Sorted()) {
    original.emplace(view, price);
  }

  const Schema& schema = catalog.schema();
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [view, price] : result.repaired.Sorted()) {
      const RelationId rel = view.attr.rel;
      Money bound = price;
      for (int p = 0; p < schema.arity(rel); ++p) {
        AttrRef other{rel, p};
        if (other == view.attr) continue;
        Money cover = result.repaired.FullCoverCost(catalog, other);
        if (cover < bound) bound = cover;
      }
      if (bound < price) {
        // Lower the price to the cheapest alternative cover.
        (void)result.repaired.Set(view, bound);
        changed = true;
      }
    }
  }

  for (const auto& [view, price] : result.repaired.Sorted()) {
    Money before = original.at(view);
    if (price != before) {
      result.adjustments.push_back(PriceAdjustment{view, before, price});
    }
  }
  return result;
}

}  // namespace qp
