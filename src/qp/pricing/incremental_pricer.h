#ifndef QP_PRICING_INCREMENTAL_PRICER_H_
#define QP_PRICING_INCREMENTAL_PRICER_H_

#include <memory>
#include <vector>

#include "qp/flow/max_flow.h"
#include "qp/pricing/price_points.h"
#include "qp/pricing/solution.h"
#include "qp/pricing/work_problem.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Warm-started repricing for a watched GChQ query (the tentpole's
/// incremental path). Build runs the Step 1-3 pipeline once and freezes
/// its *structure* — the hanging-variable case-split tree with the
/// projected problem at every node and an IncrementalChainState (all-pairs
/// flow graph) at every chain leaf. A later single-tuple insert is then
/// replayed through the same transformations (merge, domain filter, the
/// projections along the tree) and lands as at most one capacity flip per
/// leaf, after which each touched leaf resumes its previous max flow
/// instead of rebuilding; untouched leaves return their cached solve.
///
/// Why the structure is insert-stable: variable domains come from the
/// *catalog's* declared columns (and the query's predicates), and the
/// inclusion constraint R^D.X ⊆ Col R.X means inserts can never extend
/// them. With domains fixed, the hanging-variable order, the case-split
/// cover costs (sums over domains) and every leaf's node layout are all
/// invariants of the watched query; only the present-pair capacities
/// change. Out-of-band mutations (Erase, direct Instance writes) are the
/// caller's problem: DynamicPricer keys validity on per-relation
/// generation counters and rebuilds on mismatch.
///
/// Prices are bit-equal to the cold PriceGChQQuery path (property-tested
/// by the cross-solver warm-start axis); supports are an optimal min-cut
/// support but may pick a different optimal cut than a cold solve.
class IncrementalGChQPricer {
 public:
  /// Builds the plan and cold-solves every leaf. Returns Unimplemented
  /// when the query is not one the engine routes to the gchq-min-cut
  /// solver (not full, boolean, disconnected, or outside the GChQ class).
  static Result<std::unique_ptr<IncrementalGChQPricer>> Build(
      const Instance& db, const SelectionPriceSet& prices,
      const ConjunctiveQuery& query, FlowSolver solver = FlowSolver::kAuto);

  /// Applies one committed row of `rel` to every leaf and warm-reprices.
  /// The returned solution's price equals PriceGChQQuery on the mutated
  /// instance. Rows of relations the query does not read, rows dropped by
  /// the Step 2 merge, and rows outside the harmonized domains are no-ops
  /// (the price is simply re-served).
  Result<PricingSolution> ApplyInsert(RelationId rel, const Tuple& row);

  /// Current price + support (after Build, and after each ApplyInsert).
  const PricingSolution& solution() const { return solution_; }

  /// Relations the plan reads, in atom order (for generation tracking).
  const std::vector<RelationId>& relations() const { return relations_; }

  ~IncrementalGChQPricer();

 private:
  struct PlanNode;
  struct Eval {
    Money price = 0;
    std::vector<SelectionView> support;
  };

  IncrementalGChQPricer();

  Status BuildNode(const WorkProblem& problem,
                   std::unique_ptr<PlanNode>* out);
  static void ApplyToNode(PlanNode* node, int atom_idx, Tuple row);
  static Result<Eval> EvaluateNode(PlanNode* node);

  FlowSolver solver_ = FlowSolver::kAuto;
  /// The post-merge Step 1+2 snapshot: domain filter + position vars.
  WorkProblem base_;
  std::vector<AtomMergeSpec> merge_specs_;
  std::vector<RelationId> relations_;
  std::unique_ptr<PlanNode> root_;
  PricingSolution solution_;
};

}  // namespace qp

#endif  // QP_PRICING_INCREMENTAL_PRICER_H_
