#include "qp/pricing/consistency.h"

namespace qp {

std::string ConsistencyViolation::ToString(const Catalog& catalog) const {
  return SelectionViewToString(catalog, view) + " priced " +
         MoneyToString(view_price) + " but the full cover of " +
         catalog.schema().AttrToString(cheaper_cover_attr) + " costs only " +
         MoneyToString(cover_price);
}

ConsistencyReport CheckSelectionConsistency(const Catalog& catalog,
                                            const SelectionPriceSet& prices) {
  ConsistencyReport report;
  const Schema& schema = catalog.schema();
  // Precompute full-cover costs per attribute.
  std::unordered_map<AttrRef, Money, AttrRefHasher> cover_cost;
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    for (int p = 0; p < schema.arity(r); ++p) {
      AttrRef attr{r, p};
      cover_cost[attr] = prices.FullCoverCost(catalog, attr);
    }
  }
  for (const auto& [view, price] : prices.Sorted()) {
    const RelationId r = view.attr.rel;
    for (int p = 0; p < schema.arity(r); ++p) {
      AttrRef other{r, p};
      if (other == view.attr) continue;
      Money cover = cover_cost[other];
      if (cover < price) {
        report.consistent = false;
        report.violations.push_back(
            ConsistencyViolation{view, price, other, cover});
      }
    }
  }
  return report;
}

}  // namespace qp
