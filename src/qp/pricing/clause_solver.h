#ifndef QP_PRICING_CLAUSE_SOLVER_H_
#define QP_PRICING_CLAUSE_SOLVER_H_

#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"

namespace qp {

struct ClauseSolverOptions {
  /// Cap on the candidate-assignment space (product of variable domains).
  size_t max_candidates = 4'000'000;
  /// Branch-and-bound node cap (< 0 = unlimited).
  int64_t node_limit = -1;
  /// Shared serving budget. Exhaustion during the hitting-set search
  /// degrades to the best known feasible cover (marked `approximate`);
  /// exhaustion during clause *construction* returns DeadlineExceeded —
  /// a partial clause set under-estimates the price (fewer clauses mean a
  /// cheaper hitting set), which would undercut the seller.
  SearchBudget budget;
};

struct ClauseSolverStats {
  int64_t candidates = 0;
  int64_t clauses = 0;
  int64_t views = 0;
  int64_t nodes_expanded = 0;
};

/// Exact pricing of a *full* conjunctive query (self-joins and interpreted
/// predicates allowed) under selection-view price points, by reduction to
/// minimum-weight hitting set:
///
/// By Theorem 3.3, V determines Q iff Q(Dmin) = Q(Dmax), which for a full
/// query decomposes per candidate assignment ā of the variables:
///  (A) ā is an answer  → every witness tuple of ā must be covered by a
///      purchased view (one clause per witness tuple);
///  (B) ā is not an answer → some *absent* witness tuple of ā must be
///      covered (one clause over the union of their covering views).
/// The arbitrage-price is the min-weight set of explicit views hitting all
/// clauses. Worst-case exponential (this is the NP-complete frontier of
/// Theorem 3.5); it is the exact baseline the PTIME solvers are verified
/// against, and the solver used for NP-hard and cycle queries.
Result<PricingSolution> PriceFullQueryByClauses(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ClauseSolverOptions& options = {},
    ClauseSolverStats* stats = nullptr);

/// Exact pricing of a bundle of full CQs: by Lemma 2.6(b) a view set
/// determines a bundle iff it determines every member, so the bundle's
/// clauses are the union of the members' clauses over a shared view
/// universe. This is how bundling produces subadditive prices: shared views
/// are paid for once.
Result<PricingSolution> PriceFullBundleByClauses(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const ClauseSolverOptions& options = {}, ClauseSolverStats* stats =
        nullptr);

}  // namespace qp

#endif  // QP_PRICING_CLAUSE_SOLVER_H_
