#include "qp/pricing/incremental_pricer.h"

#include <algorithm>
#include <set>
#include <utility>

#include "qp/obs/metrics.h"
#include "qp/pricing/classifier.h"
#include "qp/pricing/incremental_chain.h"

namespace qp {

/// One node of the frozen Step 3 case-split tree. Internal nodes project
/// out one hanging variable's position and fork into the Lemma 3.10/3.11
/// cases; leaves hold the warm-startable chain state (or a constant 0 when
/// some used domain is empty).
struct IncrementalGChQPricer::PlanNode {
  bool trivial_zero = false;
  /// Leaf: the all-pairs chain flow state.
  std::unique_ptr<IncrementalChainState> chain;

  /// Internal: the projected (atom, position) — identical for both
  /// children — and the case (a) cover terms.
  int proj_atom = -1;
  int proj_pos = -1;
  Money cover_cost = 0;
  std::vector<SelectionView> cover_views;
  /// Case (a): cover the hanging attribute, then solve the projected
  /// problem with the freed position zero-costed. Null when the cover is
  /// infeasible (some domain value has no explicit price).
  std::unique_ptr<PlanNode> covered;
  /// Case (b): ignore the hanging attribute and project it out.
  std::unique_ptr<PlanNode> uncovered;
};

IncrementalGChQPricer::IncrementalGChQPricer() = default;
IncrementalGChQPricer::~IncrementalGChQPricer() = default;

Status IncrementalGChQPricer::BuildNode(const WorkProblem& problem,
                                        std::unique_ptr<PlanNode>* out) {
  auto node = std::make_unique<PlanNode>();
  // Trivial determinacy: a used variable with an empty domain means no
  // candidate answer can exist in any possible world — and domains are
  // catalog-derived, so inserts cannot change this verdict.
  for (const WorkAtom& atom : problem.atoms) {
    for (const WorkPosition& pos : atom.positions) {
      if (problem.var_domain[pos.var].empty()) {
        node->trivial_zero = true;
        *out = std::move(node);
        return Status::Ok();
      }
    }
  }

  std::vector<VarId> hanging = WorkHangingVars(problem);
  if (hanging.empty()) {
    // Step 4 leaf: the normalized problem is a chain.
    auto links = BuildWorkChain(problem);
    if (!links.ok()) return links.status();
    QP_ASSIGN_OR_RETURN(node->chain,
                        IncrementalChainState::Build(problem, *links,
                                                     solver_));
    *out = std::move(node);
    return Status::Ok();
  }

  // Step 3 on the first hanging variable, mirroring SolveNormalized
  // bit-for-bit so the warm price equals the cold one.
  VarId h = hanging[0];
  WorkFindVarPosition(problem, h, &node->proj_atom, &node->proj_pos);
  const WorkPosition& hanging_pos =
      problem.atoms[node->proj_atom].positions[node->proj_pos];

  Money cover_cost = 0;
  bool cover_feasible = true;
  for (size_t i = 0; i < problem.var_domain[h].size(); ++i) {
    if (IsInfinite(hanging_pos.cost[i])) {
      cover_feasible = false;
      break;
    }
    cover_cost = AddMoney(cover_cost, hanging_pos.cost[i]);
    if (hanging_pos.has_origin[i]) {
      node->cover_views.push_back(hanging_pos.origin[i]);
    }
  }
  node->cover_cost = cover_cost;

  if (cover_feasible && !IsInfinite(cover_cost)) {
    WorkProblem covered = problem;
    WorkProjectOutPosition(&covered, node->proj_atom, node->proj_pos);
    WorkAtom& atom = covered.atoms[node->proj_atom];
    if (!atom.positions.empty()) {
      WorkPosition& free_pos = atom.positions[0];
      free_pos.SetFree(covered.var_domain[free_pos.var].size());
    }
    QP_RETURN_IF_ERROR(BuildNode(covered, &node->covered));
  }
  {
    WorkProblem uncovered = problem;
    WorkProjectOutPosition(&uncovered, node->proj_atom, node->proj_pos);
    QP_RETURN_IF_ERROR(BuildNode(uncovered, &node->uncovered));
  }
  *out = std::move(node);
  return Status::Ok();
}

void IncrementalGChQPricer::ApplyToNode(PlanNode* node, int atom_idx,
                                        Tuple row) {
  if (node->trivial_zero) return;
  if (node->chain != nullptr) {
    int link_idx = node->chain->LinkOfAtom(atom_idx);
    if (link_idx < 0) return;
    const WorkLink& link = node->chain->links()[link_idx];
    node->chain->InsertLinkPair(link_idx, row[link.entry_pos],
                                row[link.exit_pos]);
    return;
  }
  // Both children projected the same position out of this atom's rows.
  if (node->proj_atom == atom_idx) {
    row.erase(row.begin() + node->proj_pos);
  }
  if (node->covered != nullptr) ApplyToNode(node->covered.get(), atom_idx,
                                            row);
  if (node->uncovered != nullptr) {
    ApplyToNode(node->uncovered.get(), atom_idx, std::move(row));
  }
}

Result<IncrementalGChQPricer::Eval> IncrementalGChQPricer::EvaluateNode(
    PlanNode* node) {
  if (node->trivial_zero) return Eval{};
  if (node->chain != nullptr) {
    QP_RETURN_IF_ERROR(node->chain->Refresh());
    Eval eval;
    eval.price = node->chain->solution().price;
    eval.support = node->chain->solution().support;
    return eval;
  }
  Eval best;
  best.price = kInfiniteMoney;
  if (node->covered != nullptr) {
    QP_ASSIGN_OR_RETURN(Eval sub, EvaluateNode(node->covered.get()));
    Money total = AddMoney(node->cover_cost, sub.price);
    if (total < best.price) {
      best.price = total;
      std::set<SelectionView> merged(sub.support.begin(),
                                     sub.support.end());
      merged.insert(node->cover_views.begin(), node->cover_views.end());
      best.support.assign(merged.begin(), merged.end());
    }
  }
  QP_ASSIGN_OR_RETURN(Eval sub, EvaluateNode(node->uncovered.get()));
  if (sub.price < best.price) best = std::move(sub);
  return best;
}

Result<std::unique_ptr<IncrementalGChQPricer>> IncrementalGChQPricer::Build(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, FlowSolver solver) {
  // Gate on exactly the shapes PricingEngine routes to gchq-min-cut, so a
  // warm quote can never disagree with the dispatch the cold path took.
  if (!query.IsFull() || query.IsBoolean()) {
    return Status::Unimplemented(
        "incremental repricing requires a full, non-boolean query");
  }
  if (query.ConnectedComponents().size() > 1) {
    return Status::Unimplemented(
        "incremental repricing requires a connected query");
  }
  QueryClassification cls = ClassifyConnectedQuery(query);
  if (cls.cls != PricingClass::kGChQ) {
    return Status::Unimplemented(
        "incremental repricing covers GChQ queries only: " + cls.reason);
  }
  QP_METRIC_INCR("qp.incremental.builds");
  QP_METRIC_SCOPED_TIMER("qp.incremental.build_ns");

  std::unique_ptr<IncrementalGChQPricer> pricer(new IncrementalGChQPricer());
  pricer->solver_ = solver;
  // Reorder atoms into GChQ order (as PriceGChQQuery does).
  ConjunctiveQuery ordered(query.name());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    ordered.AddVar(query.var_name(v));
  }
  for (VarId v : query.head()) ordered.AddHeadVar(v);
  for (int idx : cls.gchq_order) {
    ordered.AddAtom(query.atoms()[idx].rel, query.atoms()[idx].args);
    pricer->relations_.push_back(query.atoms()[idx].rel);
  }
  for (const UnaryPredicate& p : query.predicates()) {
    ordered.AddPredicate(p);
  }

  QP_ASSIGN_OR_RETURN(WorkProblem problem,
                      BuildWorkProblem(db, prices, ordered));
  MergeRepeatedVarsInAtoms(&problem, &pricer->merge_specs_);
  pricer->base_ = problem;
  QP_RETURN_IF_ERROR(pricer->BuildNode(problem, &pricer->root_));
  QP_ASSIGN_OR_RETURN(Eval eval, EvaluateNode(pricer->root_.get()));
  pricer->solution_.price = eval.price;
  pricer->solution_.support = std::move(eval.support);
  return pricer;
}

Result<PricingSolution> IncrementalGChQPricer::ApplyInsert(RelationId rel,
                                                           const Tuple& row) {
  QP_METRIC_INCR("qp.incremental.apply_inserts");
  QP_METRIC_SCOPED_TIMER("qp.incremental.apply_ns");
  int atom_idx = -1;
  for (size_t a = 0; a < relations_.size(); ++a) {
    if (relations_[a] == rel) {
      atom_idx = static_cast<int>(a);
      break;
    }
  }
  if (atom_idx >= 0) {
    // Replay Step 2 on the raw row: merged positions must agree, then
    // project to the kept positions.
    const AtomMergeSpec& spec = merge_specs_[atom_idx];
    bool keep_row = row.size() == spec.merged_into.size();
    for (size_t p = 0; keep_row && p < row.size(); ++p) {
      keep_row =
          row[static_cast<size_t>(spec.keep[spec.merged_into[p]])] == row[p];
    }
    if (keep_row) {
      Tuple merged;
      merged.reserve(spec.keep.size());
      for (int p : spec.keep) merged.push_back(row[p]);
      // Replay the Step 1 domain filter. Domains are catalog-derived, so
      // an out-of-domain value keeps the tuple filtered forever: a no-op.
      const WorkAtom& atom = base_.atoms[atom_idx];
      for (size_t i = 0; keep_row && i < merged.size(); ++i) {
        const std::vector<ValueId>& domain =
            base_.var_domain[atom.positions[i].var];
        keep_row =
            std::binary_search(domain.begin(), domain.end(), merged[i]);
      }
      if (keep_row) ApplyToNode(root_.get(), atom_idx, std::move(merged));
    }
  }
  QP_ASSIGN_OR_RETURN(Eval eval, EvaluateNode(root_.get()));
  solution_ = PricingSolution{};
  solution_.price = eval.price;
  solution_.support = std::move(eval.support);
  return solution_;
}

}  // namespace qp
