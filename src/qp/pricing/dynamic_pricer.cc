#include "qp/pricing/dynamic_pricer.h"

#include <algorithm>

#include "qp/check/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/batch_pricer.h"

namespace qp {

DynamicPricer::DynamicPricer(Instance* db, const SelectionPriceSet* prices,
                             PricingEngine::Options options,
                             int reprice_threads)
    : db_(db),
      engine_(db, prices, options),
      reprice_threads_(std::max(1, reprice_threads)) {}

Result<PriceQuote> DynamicPricer::Watch(const std::string& name,
                                        const ConjunctiveQuery& query) {
  auto quote = engine_.Price(query);
  if (!quote.ok()) return quote.status();
  std::string fingerprint = query.Fingerprint();
  cache_.Store(fingerprint, query, *db_, *quote);
  watched_[name] = Watched{query, std::move(fingerprint), *quote};
  return *quote;
}

Result<PriceQuote> DynamicPricer::CurrentQuote(const std::string& name) const {
  auto it = watched_.find(name);
  if (it == watched_.end()) {
    return Status::NotFound("no watched query named '" + name + "'");
  }
  return it->second.last_quote;
}

Result<std::vector<DynamicPricer::PriceChange>> DynamicPricer::Insert(
    std::string_view rel, const std::vector<std::vector<Value>>& rows) {
  QP_METRIC_INCR("qp.dynamic.insert_batches");
  QP_METRIC_COUNT("qp.dynamic.inserted_rows", rows.size());
  QP_METRIC_SCOPED_TIMER("qp.dynamic.insert_ns");
  for (const auto& row : rows) {
    auto inserted = db_->Insert(rel, row);
    if (!inserted.ok()) return inserted.status();
  }
  // Serve watched queries whose relations did not mutate straight from the
  // cache; collect the stale ones for (possibly parallel) re-solving.
  std::vector<PriceChange> changes;
  std::vector<Watched*> stale;
  std::vector<size_t> stale_change_idx;
  for (auto& [name, watched] : watched_) {
    PriceChange change;
    change.query = name;
    change.before = watched.last_quote.solution.price;
    if (auto cached = cache_.Lookup(watched.fingerprint, *db_)) {
      watched.last_quote = *std::move(cached);
      change.after = watched.last_quote.solution.price;
      change.from_cache = true;
    } else {
      stale.push_back(&watched);
      stale_change_idx.push_back(changes.size());
    }
    changes.push_back(std::move(change));
  }
  // The incremental-repricing payoff: re-solved vs. served-from-cache
  // watched-query counts per insert batch.
  QP_METRIC_COUNT("qp.dynamic.repriced_queries", stale.size());
  QP_METRIC_COUNT("qp.dynamic.cache_served_queries",
                  changes.size() - stale.size());
  if (!stale.empty()) {
    std::vector<ConjunctiveQuery> queries;
    queries.reserve(stale.size());
    for (const Watched* w : stale) queries.push_back(w->query);
    BatchPricer pricer(&engine_,
                       BatchPricerOptions{reprice_threads_, nullptr});
    std::vector<Result<PriceQuote>> quotes = pricer.PriceAll(queries);
    for (size_t i = 0; i < stale.size(); ++i) {
      if (!quotes[i].ok()) return quotes[i].status();
      cache_.Store(stale[i]->fingerprint, stale[i]->query, *db_, *quotes[i]);
      stale[i]->last_quote = std::move(*quotes[i]);
      changes[stale_change_idx[i]].after =
          stale[i]->last_quote.solution.price;
    }
  }
  // Return-boundary invariant (Prop 2.20 via Prop 2.22): full CQs over
  // selection views have monotone determinacy, so no watched quote may
  // move down under insertions — on the re-solved *and* the cache-served
  // paths.
  if (check_internal::CheckEnabled()) {
    for (const PriceChange& change : changes) {
      auto it = watched_.find(change.query);
      if (it != watched_.end() && MonotonicityGuaranteed(it->second.query)) {
        CheckMonotoneReprice(change.before, change.after,
                             "DynamicPricer::Insert");
      }
    }
  }
  return changes;
}

}  // namespace qp
