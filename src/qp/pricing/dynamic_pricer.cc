#include "qp/pricing/dynamic_pricer.h"

#include <algorithm>

#include "qp/pricing/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/batch_pricer.h"

namespace qp {

DynamicPricer::DynamicPricer(Instance* db, const SelectionPriceSet* prices,
                             PricingEngine::Options options,
                             int reprice_threads)
    : db_(db),
      engine_(db, prices, options),
      reprice_threads_(std::max(1, reprice_threads)),
      repricer_(&engine_, BatchPricerOptions{reprice_threads_, nullptr}) {}

Result<PriceQuote> DynamicPricer::Watch(const std::string& name,
                                        const ConjunctiveQuery& query) {
  auto quote = engine_.Price(query);
  if (!quote.ok()) return quote.status();
  std::string fingerprint = query.Fingerprint();
  // Re-watching a name with a different query supersedes the old one; its
  // cache entry would otherwise linger until a dependency relation mutates
  // (or forever). Keep it only if another watched name still uses it.
  auto existing = watched_.find(name);
  if (existing != watched_.end() &&
      existing->second.fingerprint != fingerprint) {
    bool shared = false;
    for (const auto& [other_name, other] : watched_) {
      if (other_name != name &&
          other.fingerprint == existing->second.fingerprint) {
        shared = true;
        break;
      }
    }
    if (!shared) cache_.Evict(existing->second.fingerprint);
  }
  cache_.Store(fingerprint, query, *db_, *quote);
  Watched& watched = watched_[name];
  watched = Watched{query, std::move(fingerprint), *quote, nullptr, {}};
  TryBuildIncremental(&watched);
  return *quote;
}

void DynamicPricer::TryBuildIncremental(Watched* watched) {
  watched->incremental.reset();
  watched->synced_gens.clear();
  // Warm-start only the path whose plan structure is provably
  // insert-stable: the engine routed this query to the gchq-min-cut solver
  // (so no composition) and Prop 2.20 monotonicity applies. A budgeted
  // engine stays cold: its quotes may be deadline-degraded fallbacks, and
  // a warm resume would silently bypass the serving budget's semantics.
  if (watched->last_quote.solver != "gchq-min-cut" ||
      !MonotonicityGuaranteed(watched->query) ||
      engine_.options().budget.active()) {
    return;
  }
  auto inc = IncrementalGChQPricer::Build(
      *db_, engine_.prices(), watched->query,
      engine_.options().chain.flow_solver);
  if (!inc.ok()) return;  // outside the warm-startable class: stay cold
  // The warm plan must agree with the engine's quote on day one; if it
  // does not, something is wrong with the mirror — fail safe to cold.
  if ((*inc)->solution().price != watched->last_quote.solution.price) {
    QP_METRIC_INCR("qp.dynamic.incremental_price_mismatch");
    return;
  }
  watched->incremental = std::move(*inc);
  for (RelationId rel : watched->incremental->relations()) {
    watched->synced_gens.push_back(db_->generation(rel));
  }
}

bool DynamicPricer::IncrementalInSync(const Watched& watched,
                                      RelationId mutated,
                                      uint64_t inserted_in_batch) const {
  const std::vector<RelationId>& rels = watched.incremental->relations();
  for (size_t i = 0; i < rels.size(); ++i) {
    uint64_t expected = watched.synced_gens[i];
    if (rels[i] == mutated) expected += inserted_in_batch;
    if (db_->generation(rels[i]) != expected) return false;
  }
  return true;
}

Result<PriceQuote> DynamicPricer::CurrentQuote(const std::string& name) const {
  auto it = watched_.find(name);
  if (it == watched_.end()) {
    return Status::NotFound("no watched query named '" + name + "'");
  }
  return it->second.last_quote;
}

Result<std::vector<DynamicPricer::PriceChange>> DynamicPricer::Insert(
    std::string_view rel, const std::vector<std::vector<Value>>& rows) {
  QP_METRIC_INCR("qp.dynamic.insert_batches");
  QP_METRIC_COUNT("qp.dynamic.inserted_rows", rows.size());
  QP_METRIC_SCOPED_TIMER("qp.dynamic.insert_ns");
  // All-or-nothing: validate the whole batch before committing any row.
  // A mid-loop failure used to leave a half-applied batch behind — earlier
  // rows committed (and generations bumped) with no repricing pass.
  for (const auto& row : rows) {
    QP_RETURN_IF_ERROR(db_->ValidateInsert(rel, row));
  }
  QP_ASSIGN_OR_RETURN(RelationId rel_id,
                      db_->catalog().schema().FindRelation(rel));
  // Commit, keeping the interned image of every *newly* inserted row.
  // Duplicate rows do not bump the generation and must not reach the warm
  // state either, or its generation bookkeeping would drift.
  std::vector<Tuple> new_rows;
  for (const auto& row : rows) {
    auto inserted = db_->Insert(rel, row);
    if (!inserted.ok()) return inserted.status();  // unreachable: validated
    if (!*inserted) continue;
    Tuple interned;
    interned.reserve(row.size());
    for (const Value& v : row) {
      interned.push_back(*db_->catalog().dict().Find(v));  // validated above
    }
    new_rows.push_back(std::move(interned));
  }
  // Three repricing tiers per watched query: cache-served (no relation of
  // the query mutated), warm (generation-synced incremental flow state
  // absorbs the new rows), cold (engine re-solve, possibly in parallel).
  std::vector<PriceChange> changes;
  std::vector<Watched*> stale;
  std::vector<size_t> stale_change_idx;
  std::vector<bool> stale_rebuild;
  uint64_t warm_served = 0;
  for (auto& [name, watched] : watched_) {
    PriceChange change;
    change.query = name;
    change.before = watched.last_quote.solution.price;
    if (auto cached = cache_.Lookup(watched.fingerprint, *db_)) {
      watched.last_quote = *std::move(cached);
      change.after = watched.last_quote.solution.price;
      change.from_cache = true;
      changes.push_back(std::move(change));
      continue;
    }
    bool needs_rebuild = false;
    if (watched.incremental != nullptr) {
      if (IncrementalInSync(watched, rel_id, new_rows.size())) {
        bool warm_ok = true;
        for (const Tuple& t : new_rows) {
          if (!watched.incremental->ApplyInsert(rel_id, t).ok()) {
            warm_ok = false;
            break;
          }
        }
        if (warm_ok) {
          PriceQuote quote = watched.last_quote;
          quote.solution = watched.incremental->solution();
          cache_.Store(watched.fingerprint, watched.query, *db_, quote);
          watched.last_quote = std::move(quote);
          const std::vector<RelationId>& rels =
              watched.incremental->relations();
          for (size_t i = 0; i < rels.size(); ++i) {
            watched.synced_gens[i] = db_->generation(rels[i]);
          }
          change.after = watched.last_quote.solution.price;
          ++warm_served;
          changes.push_back(std::move(change));
          continue;
        }
        QP_METRIC_INCR("qp.dynamic.warm_reprice_failures");
      }
      // Out-of-band mutation (generation drift) or a failed warm resume:
      // the flow state can no longer be trusted. Cold-solve, then rebuild.
      watched.incremental.reset();
      watched.synced_gens.clear();
      needs_rebuild = true;
    }
    stale.push_back(&watched);
    stale_change_idx.push_back(changes.size());
    stale_rebuild.push_back(needs_rebuild);
    changes.push_back(std::move(change));
  }
  // The incremental-repricing payoff, separately attributable per tier:
  // warm resumes and cold re-solves sum to the repriced total, the rest
  // was served from the cache with no solver work at all.
  QP_METRIC_COUNT("qp.dynamic.repriced_queries", stale.size() + warm_served);
  QP_METRIC_COUNT("qp.dynamic.warm_repriced_queries", warm_served);
  QP_METRIC_COUNT("qp.dynamic.cold_repriced_queries", stale.size());
  QP_METRIC_COUNT("qp.dynamic.cache_served_queries",
                  changes.size() - stale.size() - warm_served);
  if (!stale.empty()) {
    std::vector<ConjunctiveQuery> queries;
    queries.reserve(stale.size());
    for (const Watched* w : stale) queries.push_back(w->query);
    std::vector<Result<PriceQuote>> quotes = repricer_.PriceAll(queries);
    for (size_t i = 0; i < stale.size(); ++i) {
      PriceChange& change = changes[stale_change_idx[i]];
      if (!quotes[i].ok()) {
        // One failed re-solve no longer strands the rest of the batch:
        // report it per-query, keep the (stale) pre-batch quote, and let
        // every other watched query reprice normally.
        QP_METRIC_INCR("qp.dynamic.reprice_failures");
        change.status = quotes[i].status();
        change.after = change.before;
        continue;
      }
      cache_.Store(stale[i]->fingerprint, stale[i]->query, *db_, *quotes[i]);
      stale[i]->last_quote = std::move(*quotes[i]);
      change.after = stale[i]->last_quote.solution.price;
      if (stale_rebuild[i]) {
        QP_METRIC_INCR("qp.dynamic.incremental_rebuilds");
        TryBuildIncremental(stale[i]);
      }
    }
  }
  // Return-boundary invariant (Prop 2.20 via Prop 2.22): full CQs over
  // selection views have monotone determinacy, so no watched quote may
  // move down under insertions — on the re-solved *and* the cache-served
  // paths.
  if (check_internal::CheckEnabled()) {
    for (const PriceChange& change : changes) {
      if (!change.status.ok()) continue;  // stale quote, nothing to assert
      auto it = watched_.find(change.query);
      if (it != watched_.end() && MonotonicityGuaranteed(it->second.query)) {
        CheckMonotoneReprice(change.before, change.after,
                             "DynamicPricer::Insert");
      }
    }
  }
  return changes;
}

}  // namespace qp
