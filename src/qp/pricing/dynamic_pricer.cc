#include "qp/pricing/dynamic_pricer.h"

namespace qp {

DynamicPricer::DynamicPricer(Instance* db, const SelectionPriceSet* prices,
                             PricingEngine::Options options)
    : db_(db), engine_(db, prices, options) {}

Result<PriceQuote> DynamicPricer::Watch(const std::string& name,
                                        const ConjunctiveQuery& query) {
  auto quote = engine_.Price(query);
  if (!quote.ok()) return quote.status();
  watched_[name] = Watched{query, *quote};
  return *quote;
}

Result<PriceQuote> DynamicPricer::CurrentQuote(const std::string& name) const {
  auto it = watched_.find(name);
  if (it == watched_.end()) {
    return Status::NotFound("no watched query named '" + name + "'");
  }
  return it->second.last_quote;
}

Result<std::vector<DynamicPricer::PriceChange>> DynamicPricer::Insert(
    std::string_view rel, const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) {
    auto inserted = db_->Insert(rel, row);
    if (!inserted.ok()) return inserted.status();
  }
  std::vector<PriceChange> changes;
  for (auto& [name, watched] : watched_) {
    auto quote = engine_.Price(watched.query);
    if (!quote.ok()) return quote.status();
    changes.push_back(PriceChange{name, watched.last_quote.solution.price,
                                  quote->solution.price});
    watched.last_quote = std::move(*quote);
  }
  return changes;
}

}  // namespace qp
