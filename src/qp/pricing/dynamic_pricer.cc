#include "qp/pricing/dynamic_pricer.h"

#include <algorithm>

#include "qp/check/invariants.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/batch_pricer.h"

namespace qp {

DynamicPricer::DynamicPricer(Instance* db, const SelectionPriceSet* prices,
                             PricingEngine::Options options,
                             int reprice_threads)
    : db_(db),
      engine_(db, prices, options),
      reprice_threads_(std::max(1, reprice_threads)),
      repricer_(&engine_, BatchPricerOptions{reprice_threads_, nullptr}) {}

Result<PriceQuote> DynamicPricer::Watch(const std::string& name,
                                        const ConjunctiveQuery& query) {
  auto quote = engine_.Price(query);
  if (!quote.ok()) return quote.status();
  std::string fingerprint = query.Fingerprint();
  // Re-watching a name with a different query supersedes the old one; its
  // cache entry would otherwise linger until a dependency relation mutates
  // (or forever). Keep it only if another watched name still uses it.
  auto existing = watched_.find(name);
  if (existing != watched_.end() &&
      existing->second.fingerprint != fingerprint) {
    bool shared = false;
    for (const auto& [other_name, other] : watched_) {
      if (other_name != name &&
          other.fingerprint == existing->second.fingerprint) {
        shared = true;
        break;
      }
    }
    if (!shared) cache_.Evict(existing->second.fingerprint);
  }
  cache_.Store(fingerprint, query, *db_, *quote);
  watched_[name] = Watched{query, std::move(fingerprint), *quote};
  return *quote;
}

Result<PriceQuote> DynamicPricer::CurrentQuote(const std::string& name) const {
  auto it = watched_.find(name);
  if (it == watched_.end()) {
    return Status::NotFound("no watched query named '" + name + "'");
  }
  return it->second.last_quote;
}

Result<std::vector<DynamicPricer::PriceChange>> DynamicPricer::Insert(
    std::string_view rel, const std::vector<std::vector<Value>>& rows) {
  QP_METRIC_INCR("qp.dynamic.insert_batches");
  QP_METRIC_COUNT("qp.dynamic.inserted_rows", rows.size());
  QP_METRIC_SCOPED_TIMER("qp.dynamic.insert_ns");
  // All-or-nothing: validate the whole batch before committing any row.
  // A mid-loop failure used to leave a half-applied batch behind — earlier
  // rows committed (and generations bumped) with no repricing pass.
  for (const auto& row : rows) {
    QP_RETURN_IF_ERROR(db_->ValidateInsert(rel, row));
  }
  for (const auto& row : rows) {
    auto inserted = db_->Insert(rel, row);
    if (!inserted.ok()) return inserted.status();  // unreachable: validated
  }
  // Serve watched queries whose relations did not mutate straight from the
  // cache; collect the stale ones for (possibly parallel) re-solving.
  std::vector<PriceChange> changes;
  std::vector<Watched*> stale;
  std::vector<size_t> stale_change_idx;
  for (auto& [name, watched] : watched_) {
    PriceChange change;
    change.query = name;
    change.before = watched.last_quote.solution.price;
    if (auto cached = cache_.Lookup(watched.fingerprint, *db_)) {
      watched.last_quote = *std::move(cached);
      change.after = watched.last_quote.solution.price;
      change.from_cache = true;
    } else {
      stale.push_back(&watched);
      stale_change_idx.push_back(changes.size());
    }
    changes.push_back(std::move(change));
  }
  // The incremental-repricing payoff: re-solved vs. served-from-cache
  // watched-query counts per insert batch.
  QP_METRIC_COUNT("qp.dynamic.repriced_queries", stale.size());
  QP_METRIC_COUNT("qp.dynamic.cache_served_queries",
                  changes.size() - stale.size());
  if (!stale.empty()) {
    std::vector<ConjunctiveQuery> queries;
    queries.reserve(stale.size());
    for (const Watched* w : stale) queries.push_back(w->query);
    std::vector<Result<PriceQuote>> quotes = repricer_.PriceAll(queries);
    for (size_t i = 0; i < stale.size(); ++i) {
      PriceChange& change = changes[stale_change_idx[i]];
      if (!quotes[i].ok()) {
        // One failed re-solve no longer strands the rest of the batch:
        // report it per-query, keep the (stale) pre-batch quote, and let
        // every other watched query reprice normally.
        QP_METRIC_INCR("qp.dynamic.reprice_failures");
        change.status = quotes[i].status();
        change.after = change.before;
        continue;
      }
      cache_.Store(stale[i]->fingerprint, stale[i]->query, *db_, *quotes[i]);
      stale[i]->last_quote = std::move(*quotes[i]);
      change.after = stale[i]->last_quote.solution.price;
    }
  }
  // Return-boundary invariant (Prop 2.20 via Prop 2.22): full CQs over
  // selection views have monotone determinacy, so no watched quote may
  // move down under insertions — on the re-solved *and* the cache-served
  // paths.
  if (check_internal::CheckEnabled()) {
    for (const PriceChange& change : changes) {
      if (!change.status.ok()) continue;  // stale quote, nothing to assert
      auto it = watched_.find(change.query);
      if (it != watched_.end() && MonotonicityGuaranteed(it->second.query)) {
        CheckMonotoneReprice(change.before, change.after,
                             "DynamicPricer::Insert");
      }
    }
  }
  return changes;
}

}  // namespace qp
