#ifndef QP_PRICING_BOOLEAN_PRICER_H_
#define QP_PRICING_BOOLEAN_PRICER_H_

#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Builds the full version Qf of a query: same body, head = all body
/// variables (Theorem 3.16: the complexity of a boolean query is that of
/// its full version).
ConjunctiveQuery FullVersionOf(const ConjunctiveQuery& q);

/// Prices a boolean query Q with Q(D) = true. By Theorem 3.3, Q stays true
/// in every possible world iff Q(Dmin) is true, i.e. some witness is
/// entirely covered by the purchased views. The arbitrage-price is thus the
/// cheapest full cover of any single witness (a small exact set-cover per
/// witness, minimized over all witnesses of Qf(D)).
///
/// The false case is not handled here: when Q(D) = false the price equals
/// the price of Qf (every candidate must be blocked — condition (B) alone),
/// which the engine routes through the regular solvers.
Result<PricingSolution> PriceTrueBooleanQuery(const Instance& db,
                                              const SelectionPriceSet& prices,
                                              const ConjunctiveQuery& query);

}  // namespace qp

#endif  // QP_PRICING_BOOLEAN_PRICER_H_
