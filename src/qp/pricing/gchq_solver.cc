#include "qp/pricing/gchq_solver.h"

#include <algorithm>
#include <set>

#include "qp/pricing/invariants.h"
#include "qp/flow/graph_builder.h"
#include "qp/obs/metrics.h"

namespace qp {
namespace {

Result<PricingSolution> SolveNormalized(const WorkProblem& problem,
                                        const ChainSolverOptions& options,
                                        GChQSolveStats* stats,
                                        FlowGraphBuilder* scratch) {
  // PTIME path: consult the budget only at entry to each normalization
  // step; an expired deadline routes the engine to the full-cover fallback.
  if (options.budget.Exhausted()) {
    return Status::DeadlineExceeded(
        "GChQ normalization exceeded the serving budget");
  }
  // Trivial determinacy: a used variable with an empty domain means no
  // candidate answer can exist in any possible world.
  for (const WorkAtom& atom : problem.atoms) {
    for (const WorkPosition& pos : atom.positions) {
      if (problem.var_domain[pos.var].empty()) {
        PricingSolution trivial;
        trivial.price = 0;
        return trivial;
      }
    }
  }

  std::vector<VarId> hanging = WorkHangingVars(problem);
  if (hanging.empty()) {
    // Step 4: the normalized problem is a chain; price it by min-cut.
    auto links = BuildWorkChain(problem);
    if (!links.ok()) return links.status();
    ChainGraphStats graph_stats;
    auto solution = SolveChainMinCut(problem, *links, options, &graph_stats,
                                     /*pair_prices=*/nullptr,
                                     /*cut_pairs=*/nullptr, scratch);
    if (stats != nullptr) {
      ++stats->chain_solves;
      stats->total_nodes += graph_stats.nodes;
      stats->total_edges += graph_stats.edges;
      stats->total_view_edges += graph_stats.view_edges;
    }
    return solution;
  }

  // Step 3 on the first hanging variable (Lemma 3.10/3.11): the optimal
  // view set either fully covers the hanging attribute or ignores it.
  VarId h = hanging[0];
  int atom_idx = -1;
  int pos = -1;
  WorkFindVarPosition(problem, h, &atom_idx, &pos);
  const WorkPosition& hanging_pos = problem.atoms[atom_idx].positions[pos];

  // Case (a): fully cover the hanging attribute. Its full-cover cost is the
  // sum of the explicit prices over the variable's domain; the projected
  // relation is then known, so one remaining attribute is given out free.
  Money cover_cost = 0;
  std::vector<SelectionView> cover_views;
  bool cover_feasible = true;
  for (size_t i = 0; i < problem.var_domain[h].size(); ++i) {
    if (IsInfinite(hanging_pos.cost[i])) {
      cover_feasible = false;
      break;
    }
    cover_cost = AddMoney(cover_cost, hanging_pos.cost[i]);
    if (hanging_pos.has_origin[i]) {
      cover_views.push_back(hanging_pos.origin[i]);
    }
  }

  PricingSolution best;
  best.price = kInfiniteMoney;

  if (cover_feasible && !IsInfinite(cover_cost)) {
    WorkProblem covered = problem;
    WorkProjectOutPosition(&covered, atom_idx, pos);
    // Give the projected relation out for free through its first remaining
    // position (Lemma 3.11 allows any).
    WorkAtom& atom = covered.atoms[atom_idx];
    if (!atom.positions.empty()) {
      WorkPosition& free_pos = atom.positions[0];
      free_pos.SetFree(covered.var_domain[free_pos.var].size());
    }
    auto sub = SolveNormalized(covered, options, stats, scratch);
    if (!sub.ok()) return sub.status();
    Money total = AddMoney(cover_cost, sub->price);
    if (total < best.price) {
      best = *sub;
      best.price = total;
      std::set<SelectionView> merged(best.support.begin(),
                                     best.support.end());
      merged.insert(cover_views.begin(), cover_views.end());
      best.support.assign(merged.begin(), merged.end());
    }
  }

  // Case (b): do not cover the hanging attribute at all — drop its views
  // and project it out.
  {
    WorkProblem uncovered = problem;
    WorkProjectOutPosition(&uncovered, atom_idx, pos);
    auto sub = SolveNormalized(uncovered, options, stats, scratch);
    if (!sub.ok()) return sub.status();
    if (sub->price < best.price) best = *sub;
  }
  return best;
}

}  // namespace

Result<PricingSolution> PriceGChQQuery(const Instance& db,
                                       const SelectionPriceSet& prices,
                                       const ConjunctiveQuery& query,
                                       const std::vector<int>& gchq_order,
                                       const ChainSolverOptions& options,
                                       GChQSolveStats* stats) {
  if (!query.IsFull()) {
    return Status::InvalidArgument(
        "the GChQ pipeline prices full queries only");
  }
  if (gchq_order.size() != query.atoms().size()) {
    return Status::InvalidArgument("gchq_order size mismatch");
  }
  QP_METRIC_INCR("qp.solver.gchq.solves");
  QP_METRIC_SCOPED_TIMER("qp.solver.gchq_ns");
  // Reorder atoms into GChQ order.
  ConjunctiveQuery ordered(query.name());
  for (VarId v = 0; v < query.num_vars(); ++v) {
    ordered.AddVar(query.var_name(v));
  }
  for (VarId v : query.head()) ordered.AddHeadVar(v);
  for (int idx : gchq_order) {
    ordered.AddAtom(query.atoms()[idx].rel, query.atoms()[idx].args);
  }
  for (const UnaryPredicate& p : query.predicates()) {
    ordered.AddPredicate(p);
  }

  auto problem = BuildWorkProblem(db, prices, ordered);  // Step 1
  if (!problem.ok()) return problem.status();
  MergeRepeatedVarsInAtoms(&*problem);  // Step 2
  // One flow network reused across every chain solved by the
  // hanging-variable case splits of Step 3 (up to 2^h of them) — and, via
  // thread_local, across successive Price calls on the same thread: the
  // arena holds its buffers through Reset, so the steady-state serving
  // path allocates nothing for graph storage. Each BatchPricer worker gets
  // its own arena, keeping solves share-nothing.
  thread_local FlowGraphBuilder scratch;
  auto solution = SolveNormalized(*problem, options, stats, &scratch);
  // Return-boundary invariant (Prop 2.8) on the Steps 3 + 4 result.
  if (solution.ok()) {
    CheckPriceNonNegative(solution->price, "PriceGChQQuery");
  }
  return solution;
}

}  // namespace qp
