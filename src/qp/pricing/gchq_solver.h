#ifndef QP_PRICING_GCHQ_SOLVER_H_
#define QP_PRICING_GCHQ_SOLVER_H_

#include <vector>

#include "qp/pricing/chain_solver.h"
#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Aggregate statistics over the (possibly many) chain solves performed by
/// the GChQ pipeline: Step 3 prices 2^h subproblems for h hanging
/// attributes.
struct GChQSolveStats {
  int64_t chain_solves = 0;
  int64_t total_nodes = 0;
  int64_t total_edges = 0;
  int64_t total_view_edges = 0;
  /// Stats of the final (top-level winning) chain graph are not tracked
  /// separately; use SolveChainMinCut directly for per-graph numbers.
};

/// Prices a Generalized Chain Query (Theorem 3.7, the paper's main result)
/// in PTIME data complexity:
///   Step 1  interpreted predicates shrink variable domains;
///           constants become singleton-domain hanging variables;
///   Step 2  repeated variables within an atom are merged (min prices);
///   Step 3  each hanging attribute is either fully covered (buy its full
///           cover, give the projected relation out for free) or not
///           covered at all — 2^h subproblems, take the min;
///   Step 4  the remaining chain query is priced by Min-Cut
///           (SolveChainMinCut).
///
/// `gchq_order` must be a valid GChQ atom ordering (FindGChQOrder).
/// The query must be full and self-join-free.
Result<PricingSolution> PriceGChQQuery(const Instance& db,
                                       const SelectionPriceSet& prices,
                                       const ConjunctiveQuery& query,
                                       const std::vector<int>& gchq_order,
                                       const ChainSolverOptions& options = {},
                                       GChQSolveStats* stats = nullptr);

}  // namespace qp

#endif  // QP_PRICING_GCHQ_SOLVER_H_
