#include "qp/pricing/engine.h"

#include <algorithm>
#include <map>
#include <set>

#include "qp/pricing/invariants.h"
#include "qp/determinacy/selection_determinacy.h"
#include "qp/eval/evaluator.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/boolean_pricer.h"
#include "qp/pricing/bundle_solver.h"
#include "qp/pricing/gchq_solver.h"

namespace qp {
namespace {

/// The sub-query induced by a set of atom indexes: head restricted to the
/// component's variables.
ConjunctiveQuery ComponentQuery(const ConjunctiveQuery& q,
                                const std::vector<int>& atom_idxs,
                                int component_number) {
  ConjunctiveQuery sub(q.name() + "_c" + std::to_string(component_number));
  // Remap the component's variables to a compact id range.
  std::map<VarId, VarId> remap;
  auto mapped = [&](VarId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VarId nv = sub.AddVar(q.var_name(v));
    remap.emplace(v, nv);
    return nv;
  };
  for (int a : atom_idxs) {
    std::vector<Term> args;
    for (const Term& t : q.atoms()[a].args) {
      args.push_back(t.is_var() ? Term::MakeVar(mapped(t.var)) : t);
    }
    sub.AddAtom(q.atoms()[a].rel, std::move(args));
  }
  for (VarId v : q.head()) {
    if (remap.count(v) > 0) sub.AddHeadVar(remap.at(v));
  }
  for (const UnaryPredicate& p : q.predicates()) {
    if (remap.count(p.var) > 0) {
      sub.AddPredicate(UnaryPredicate{remap.at(p.var), p.op, p.rhs});
    }
  }
  return sub;
}

void MergeSupport(PricingSolution* into, const PricingSolution& from) {
  std::set<SelectionView> merged(into->support.begin(),
                                 into->support.end());
  merged.insert(from.support.begin(), from.support.end());
  into->support.assign(merged.begin(), merged.end());
}

}  // namespace

PricingEngine::PricingEngine(const Instance* db,
                             const SelectionPriceSet* prices,
                             Options options)
    : db_(db), prices_(prices), options_(options) {}

ConsistencyReport PricingEngine::CheckConsistency() const {
  return CheckSelectionConsistency(db_->catalog(), *prices_);
}

bool PricingEngine::SellsWholeDatabase() const {
  std::vector<RelationId> all;
  for (RelationId r = 0; r < db_->catalog().schema().num_relations(); ++r) {
    all.push_back(r);
  }
  return prices_->SellsWholeDatabase(db_->catalog(), all);
}

Result<PriceQuote> PricingEngine::Price(const ConjunctiveQuery& query) const {
  return Price(query, options_.budget);
}

Result<PriceQuote> PricingEngine::ApplyBudgetOutcome(
    Result<PriceQuote> quote, const SearchBudget& budget,
    const std::vector<RelationId>& rels, const char* context) const {
  if (!budget.active()) return quote;
  if (!quote.ok()) {
    if (quote.status().code() != StatusCode::kDeadlineExceeded) return quote;
    // Budget expired with nothing feasible in hand: serve the Lemma 3.1
    // full-cover quote. Buying a full cover of every referenced relation
    // determines any query over them, so this price is always >= exact.
    PricingSolution cover =
        DeterminingCoverSolution(db_->catalog(), *prices_, rels);
    if (IsInfinite(cover.price)) return quote;  // nothing to fall back to
    QP_METRIC_INCR("qp.engine.deadline_fallbacks");
    PriceQuote out;
    out.solution = std::move(cover);
    out.ptime = true;
    out.solver = "full-cover-fallback";
    out.explanation =
        std::string("serving budget expired before an exact solve; quoting "
                    "the determining full cover (Lemma 3.1), an "
                    "arbitrage-safe over-estimate [") +
        context + "]";
    return out;
  }
  if (!quote->solution.approximate) return quote;
  // A solver handed back an incumbent/greedy cover. Greedy set covers can
  // exceed the full-cover cost (the H(n) factor), which would violate the
  // CheckPriceUpperBound envelope — cap at the cheaper of the two.
  QP_METRIC_INCR("qp.engine.approx_quotes");
  PricingSolution cover =
      DeterminingCoverSolution(db_->catalog(), *prices_, rels);
  if (cover.price < quote->solution.price) {
    quote->solution = std::move(cover);
    quote->solver += "+full-cover-cap";
  }
  quote->explanation +=
      "; approximate: serving budget expired, price is an upper bound on "
      "the exact Equation 2 price";
  return quote;
}

Result<PriceQuote> PricingEngine::Price(const ConjunctiveQuery& query,
                                        const SearchBudget& budget) const {
  // Counts every engine entry, including the recursive component and
  // full-version prices a single top-level quote can trigger (see the
  // metric catalog in DESIGN.md §9).
  QP_METRIC_INCR("qp.engine.price.calls");
  QP_METRIC_SCOPED_TIMER("qp.engine.price_ns");
  auto quote = ApplyBudgetOutcome(PriceDispatch(query, budget), budget,
                                  query.ReferencedRelations(),
                                  "PricingEngine::Price");
  if (!quote.ok()) QP_METRIC_INCR("qp.engine.price.errors");
  // Return-boundary invariants (Prop 2.8 / Lemma 3.1): quoted prices are
  // non-negative and never exceed the cost of buying full covers of every
  // relation the query reads. Skipped entirely at QP_CHECK_LEVEL=off.
  if (quote.ok() && check_internal::CheckEnabled()) {
    Money bound = DeterminingCoverCost(db_->catalog(), *prices_,
                                       query.ReferencedRelations());
    CheckSolutionInvariants(quote->solution, bound, "PricingEngine::Price");
  }
  return quote;
}

Result<PriceQuote> PricingEngine::PriceDispatch(
    const ConjunctiveQuery& query, const SearchBudget& budget) const {
  std::vector<std::vector<int>> components = query.ConnectedComponents();
  if (components.size() <= 1) return PriceConnected(query, budget);

  // Proposition 3.14: compose the component prices based on emptiness.
  QP_METRIC_INCR("qp.engine.dispatch.component_composition");
  Evaluator eval(db_);
  std::vector<PriceQuote> quotes;
  std::vector<bool> empty;
  for (size_t c = 0; c < components.size(); ++c) {
    ConjunctiveQuery sub = ComponentQuery(query, components[c],
                                          static_cast<int>(c));
    auto quote = Price(sub, budget);
    if (!quote.ok()) return quote.status();
    auto satisfied = eval.IsSatisfied(sub);
    if (!satisfied.ok()) return satisfied.status();
    quotes.push_back(std::move(*quote));
    empty.push_back(!*satisfied);
  }

  PriceQuote out;
  out.query_class = PricingClass::kDisconnected;
  out.solver = "component-composition";
  out.ptime = std::all_of(quotes.begin(), quotes.end(),
                          [](const PriceQuote& q) { return q.ptime; });
  if (std::find(empty.begin(), empty.end(), true) == empty.end()) {
    // All components non-empty: the buyer needs every component's answer.
    out.solution.price = 0;
    for (const PriceQuote& q : quotes) {
      out.solution.price = AddMoney(out.solution.price, q.solution.price);
      // One approximate component makes the composed price approximate.
      out.solution.approximate |= q.solution.approximate;
      MergeSupport(&out.solution, q.solution);
    }
    out.explanation = "disconnected, all components non-empty: price is "
                      "the sum of component prices (Prop 3.14)";
  } else {
    // Some component is empty: keeping the cheapest empty component
    // provably empty determines the (empty) product.
    out.solution.price = kInfiniteMoney;
    for (size_t c = 0; c < quotes.size(); ++c) {
      if (empty[c] && quotes[c].solution.price < out.solution.price) {
        out.solution = quotes[c].solution;
      }
    }
    out.explanation = "disconnected with an empty component: price is the "
                      "cheapest empty component (Prop 3.14)";
  }
  return out;
}

Result<PriceQuote> PricingEngine::PriceBoolean(
    const ConjunctiveQuery& query, const SearchBudget& budget) const {
  Evaluator eval(db_);
  auto satisfied = eval.IsSatisfied(query);
  if (!satisfied.ok()) return satisfied.status();

  PriceQuote out;
  out.query_class = PricingClass::kBoolean;
  if (*satisfied) {
    QP_METRIC_INCR("qp.engine.dispatch.boolean_witness");
    auto solution = PriceTrueBooleanQuery(*db_, *prices_, query);
    if (!solution.ok()) return solution.status();
    out.solution = std::move(*solution);
    out.solver = "boolean-witness-cover";
    out.explanation = "Q(D) is true: price of the cheapest fully covered "
                      "witness";
    out.ptime = true;  // witness cover is always PTIME
    return out;
  }
  // Q(D) = false: the price equals the price of the full version (blocking
  // every candidate), Theorem 3.16.
  ConjunctiveQuery full = FullVersionOf(query);
  if (full.IsBoolean()) {
    // Ground query: one candidate; the clause solver handles it directly.
    QP_METRIC_INCR("qp.engine.dispatch.clause_ground");
    ClauseSolverOptions clause_options = options_.clause;
    clause_options.budget = budget;
    auto solution = PriceFullQueryByClauses(*db_, *prices_, query,
                                            clause_options);
    if (!solution.ok()) return solution.status();
    out.solution = std::move(*solution);
    out.solver = "clause-solver(ground)";
    out.ptime = true;
    out.explanation = "ground boolean query, Q(D) false";
    return out;
  }
  auto quote = Price(full, budget);
  if (!quote.ok()) return quote.status();
  out = std::move(*quote);
  out.query_class = PricingClass::kBoolean;
  out.explanation = "Q(D) is false: priced as the full version (" +
                    out.explanation + ")";
  return out;
}

Result<PriceQuote> PricingEngine::PriceConnected(
    const ConjunctiveQuery& query, const SearchBudget& budget) const {
  if (query.IsBoolean()) return PriceBoolean(query, budget);

  QueryClassification cls = ClassifyConnectedQuery(query);
  PriceQuote out;
  out.query_class = cls.cls;
  out.ptime = cls.ptime;
  out.explanation = cls.reason;

  switch (cls.cls) {
    case PricingClass::kGChQ: {
      QP_METRIC_INCR("qp.engine.dispatch.gchq");
      ChainSolverOptions chain_options = options_.chain;
      chain_options.budget = budget;
      auto solution = PriceGChQQuery(*db_, *prices_, query, cls.gchq_order,
                                     chain_options);
      if (!solution.ok()) return solution.status();
      out.solution = std::move(*solution);
      out.solver = "gchq-min-cut";
      return out;
    }
    case PricingClass::kCycle:
    case PricingClass::kNPHardFull:
    case PricingClass::kOutsideDichotomy: {
      QP_METRIC_INCR("qp.engine.dispatch.clause");
      ClauseSolverOptions clause_options = options_.clause;
      clause_options.budget = budget;
      auto solution = PriceFullQueryByClauses(*db_, *prices_, query,
                                              clause_options);
      if (!solution.ok()) return solution.status();
      out.solution = std::move(*solution);
      out.solver = "clause-solver";
      return out;
    }
    case PricingClass::kNonFull: {
      QP_METRIC_INCR("qp.engine.dispatch.exhaustive");
      ExhaustiveSolverOptions ex_options = options_.exhaustive;
      ex_options.budget = budget;
      auto solution = PriceByExhaustiveSearch(*db_, *prices_, query,
                                              ex_options);
      if (!solution.ok()) return solution.status();
      out.solution = std::move(*solution);
      out.solver = "exhaustive-search";
      return out;
    }
    case PricingClass::kBoolean:
    case PricingClass::kDisconnected:
    case PricingClass::kUnion:
      break;
  }
  return Status::Internal("unexpected classification");
}

Result<PriceQuote> PricingEngine::PriceUnion(const UnionQuery& query) const {
  return PriceUnion(query, options_.budget);
}

Result<PriceQuote> PricingEngine::PriceUnion(const UnionQuery& query,
                                             const SearchBudget& budget) const {
  if (query.disjuncts.size() == 1) return Price(query.disjuncts[0], budget);
  QP_METRIC_INCR("qp.engine.dispatch.union_exhaustive");
  QP_METRIC_SCOPED_TIMER("qp.engine.price_union_ns");
  ExhaustiveSolverOptions ex_options = options_.exhaustive;
  ex_options.budget = budget;
  auto run = [&]() -> Result<PriceQuote> {
    auto solution =
        PriceUnionByExhaustiveSearch(*db_, *prices_, query, ex_options);
    if (!solution.ok()) return solution.status();
    PriceQuote out;
    out.solution = std::move(*solution);
    out.query_class = PricingClass::kUnion;
    out.ptime = false;
    out.solver = "exhaustive-search(ucq)";
    out.explanation = "union of CQs priced by exact search (Cor 3.4)";
    return out;
  };
  auto quote = ApplyBudgetOutcome(run(), budget,
                                  RelationsOf(query.disjuncts),
                                  "PricingEngine::PriceUnion");
  if (quote.ok() && check_internal::CheckEnabled()) {
    Money bound = DeterminingCoverCost(db_->catalog(), *prices_,
                                       RelationsOf(query.disjuncts));
    CheckSolutionInvariants(quote->solution, bound,
                            "PricingEngine::PriceUnion");
  }
  return quote;
}

Result<PriceQuote> PricingEngine::PriceBundle(
    const std::vector<ConjunctiveQuery>& queries) const {
  return PriceBundle(queries, options_.budget);
}

Result<PriceQuote> PricingEngine::PriceBundle(
    const std::vector<ConjunctiveQuery>& queries,
    const SearchBudget& budget) const {
  QP_METRIC_INCR("qp.engine.price_bundle.calls");
  QP_METRIC_SCOPED_TIMER("qp.engine.price_bundle_ns");
  auto quote = ApplyBudgetOutcome(PriceBundleDispatch(queries, budget), budget,
                                  RelationsOf(queries),
                                  "PricingEngine::PriceBundle");
  if (quote.ok() && check_internal::CheckEnabled()) {
    Money bound =
        DeterminingCoverCost(db_->catalog(), *prices_, RelationsOf(queries));
    CheckSolutionInvariants(quote->solution, bound,
                            "PricingEngine::PriceBundle");
  }
  return quote;
}

Result<PriceQuote> PricingEngine::PriceBundleDispatch(
    const std::vector<ConjunctiveQuery>& queries,
    const SearchBudget& budget) const {
  PriceQuote out;
  if (queries.empty()) {
    out.solution.price = 0;
    out.solver = "empty-bundle";
    out.ptime = true;
    out.explanation = "the empty bundle is free (Prop 2.8)";
    return out;
  }
  if (queries.size() == 1) return Price(queries[0], budget);

  // Chain-query bundles (Definition 3.9): merged min-cut in PTIME.
  {
    ChainSolverOptions chain_options = options_.chain;
    chain_options.budget = budget;
    auto merged = PriceChainBundleByMergedCut(*db_, *prices_, queries,
                                              chain_options);
    if (merged.ok()) {
      QP_METRIC_INCR("qp.engine.dispatch.bundle_merged_cut");
      out.solution = std::move(*merged);
      out.ptime = true;
      out.solver = "merged-min-cut(bundle)";
      out.explanation = "chain-query bundle priced by a merged min-cut "
                        "(Def 3.9)";
      return out;
    }
    if (merged.status().code() != StatusCode::kInvalidArgument) {
      return merged.status();
    }
    // Not a chain bundle: fall through to the exact solvers.
  }

  bool all_full = std::all_of(
      queries.begin(), queries.end(),
      [](const ConjunctiveQuery& q) { return q.IsFull(); });
  if (all_full) {
    QP_METRIC_INCR("qp.engine.dispatch.bundle_clause");
    ClauseSolverOptions clause_options = options_.clause;
    clause_options.budget = budget;
    auto solution = PriceFullBundleByClauses(*db_, *prices_, queries,
                                             clause_options);
    if (!solution.ok()) return solution.status();
    out.solution = std::move(*solution);
    out.solver = "clause-solver(bundle)";
    out.explanation = "bundle of full CQs: union of determinacy clauses";
    return out;
  }
  QP_METRIC_INCR("qp.engine.dispatch.bundle_exhaustive");
  ExhaustiveSolverOptions ex_options = options_.exhaustive;
  ex_options.budget = budget;
  auto solution = PriceByExhaustiveSearch(*db_, *prices_, queries,
                                          ex_options);
  if (!solution.ok()) return solution.status();
  out.solution = std::move(*solution);
  out.solver = "exhaustive-search(bundle)";
  out.explanation = "general bundle: branch-and-bound with the Thm 3.3 "
                    "determinacy oracle";
  return out;
}

}  // namespace qp
