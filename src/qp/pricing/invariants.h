#ifndef QP_PRICING_INVARIANTS_H_
#define QP_PRICING_INVARIANTS_H_

#include <vector>

#include "qp/check/check.h"
#include "qp/pricing/money.h"
#include "qp/pricing/price_points.h"
#include "qp/pricing/solution.h"
#include "qp/relational/catalog.h"

namespace qp {

/// Checkers for the paper's pricing contracts. Each returns true when the
/// contract holds and otherwise fires the QP_INVARIANT machinery (so the
/// outcome — log line, failure count, abort — follows QP_CHECK_LEVEL).
/// They are wired into the pricers and solvers at their return boundaries;
/// tests and `qp_selfcheck` also call them directly.

/// Proposition 2.8(2): arbitrage-prices are non-negative.
bool CheckPriceNonNegative(Money price, const char* context);

/// Every query is determined by the whole database, so its arbitrage-price
/// never exceeds the price of a determining cover of the relations it
/// reads (Lemma 3.1 gives that cover for selection views). `bound` is
/// typically `DeterminingCoverCost(...)`; kInfiniteMoney bounds trivially.
bool CheckPriceUpperBound(Money price, Money bound, const char* context);

/// Proposition 2.8(3) subadditivity: the price of a bundle is at most the
/// sum of its members' prices. Call sites sample query pairs (exhaustively
/// checking all bundles is the NP-hard pricing problem itself).
bool CheckSubadditive(Money bundle_price, Money sum_of_member_prices,
                      const char* context);

/// Propositions 2.20/2.22: for monotone determinacy (full CQs over
/// selection views) the arbitrage-price never decreases under insertions.
bool CheckMonotoneReprice(Money before, Money after, const char* context);

/// Theorem 2.15 (Proposition 3.2 for selection views): the seller's price
/// points admit no internal arbitrage — no explicit view is answerable
/// more cheaply from the other points. Fires once per violating point.
bool CheckSellerConsistency(const Catalog& catalog,
                            const SelectionPriceSet& prices,
                            const char* context);

/// A solution's support must pay for itself: its total explicit price
/// equals the quoted price (the support *is* the cheapest determining
/// purchase of Equation 2). Only valid where each support view is bought
/// exactly once — a single min-cut solve or subset-enumeration pricer; the
/// GChQ/component compositions deduplicate merged supports, so their
/// boundaries skip this check. No-op unless the support is tracked, finite
/// and free of pair views.
bool CheckSupportCost(const PricingSolution& solution,
                      const SelectionPriceSet& prices, const char* context);

/// Composite return-boundary check used by the engine and batch pricers:
/// non-negativity + determining-cover upper bound in one call.
bool CheckSolutionInvariants(const PricingSolution& solution, Money bound,
                             const char* context);

/// The cost of fully covering every relation in `relations` with explicit
/// selection views: Σ_R min_X FullCoverCost(R.X) (Lemma 3.1), i.e. the
/// cheapest purchase that provably determines those relations outright.
/// kInfiniteMoney when some relation has no fully priced attribute.
Money DeterminingCoverCost(const Catalog& catalog,
                           const SelectionPriceSet& prices,
                           const std::vector<RelationId>& relations);

/// The determining cover itself, as a quotable solution: per relation the
/// cheapest fully-priced attribute (lowest position on ties), with the
/// covering views as support. This is the serving-budget fallback quote —
/// feasible by Lemma 3.1, so always `approximate` and never below the
/// exact price. Infinite when some relation has no fully priced attribute
/// (support is then empty).
PricingSolution DeterminingCoverSolution(const Catalog& catalog,
                                         const SelectionPriceSet& prices,
                                         const std::vector<RelationId>& relations);

}  // namespace qp

#endif  // QP_PRICING_INVARIANTS_H_
