#ifndef QP_PRICING_MONEY_H_
#define QP_PRICING_MONEY_H_

#include <cstdint>
#include <string>

#include "qp/flow/max_flow.h"

namespace qp {

/// Prices are exact integers in the smallest currency unit (cents). Using
/// integers keeps min-cut capacities, branch-and-bound comparisons and
/// consistency checks exact.
using Money = int64_t;

/// Sentinel "not for sale" / unbounded price. Identical to the flow
/// module's infinite capacity so prices map directly onto edge capacities.
inline constexpr Money kInfiniteMoney = kInfiniteCapacity;

/// Adds prices, saturating at kInfiniteMoney.
inline Money AddMoney(Money a, Money b) { return SaturatingAddCapacity(a, b); }

inline bool IsInfinite(Money m) { return m >= kInfiniteMoney; }

/// Converts whole dollars to Money (cents).
inline Money Dollars(int64_t dollars) { return dollars * 100; }

/// Converts dollars + cents to Money.
inline Money DollarsCents(int64_t dollars, int64_t cents) {
  return dollars * 100 + cents;
}

/// "$12.34" or "unpriced" display form.
std::string MoneyToString(Money m);

}  // namespace qp

#endif  // QP_PRICING_MONEY_H_
