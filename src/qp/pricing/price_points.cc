#include "qp/pricing/price_points.h"

#include <algorithm>

namespace qp {

Status SelectionPriceSet::Set(SelectionView view, Money price) {
  if (price < 0) {
    return Status::InvalidArgument("price points must be non-negative");
  }
  prices_[view] = price;
  return Status::Ok();
}

Status SelectionPriceSet::Set(Catalog& catalog, std::string_view rel,
                              std::string_view attr, const Value& value,
                              Money price) {
  auto rel_id = catalog.schema().FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  auto pos = catalog.schema().FindAttr(*rel_id, attr);
  if (!pos.ok()) return pos.status();
  AttrRef a{*rel_id, *pos};
  ValueId id = catalog.Intern(value);
  if (catalog.HasColumn(a) && !catalog.InColumn(a, id)) {
    return Status::InvalidArgument(
        "priced value " + value.ToString() + " is not in the column of " +
        catalog.schema().AttrToString(a));
  }
  return Set(SelectionView{a, id}, price);
}

Status SelectionPriceSet::SetUniform(Catalog& catalog, std::string_view rel,
                                     std::string_view attr, Money price) {
  auto rel_id = catalog.schema().FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  auto pos = catalog.schema().FindAttr(*rel_id, attr);
  if (!pos.ok()) return pos.status();
  AttrRef a{*rel_id, *pos};
  if (!catalog.HasColumn(a)) {
    return Status::FailedPrecondition(
        "SetUniform requires a declared column on " +
        catalog.schema().AttrToString(a));
  }
  for (ValueId v : catalog.Column(a)) {
    QP_RETURN_IF_ERROR(Set(SelectionView{a, v}, price));
  }
  return Status::Ok();
}

Money SelectionPriceSet::Get(const SelectionView& view) const {
  auto it = prices_.find(view);
  return it == prices_.end() ? kInfiniteMoney : it->second;
}

bool SelectionPriceSet::FullyCovers(const Catalog& catalog,
                                    AttrRef attr) const {
  if (!catalog.HasColumn(attr)) return false;
  for (ValueId v : catalog.Column(attr)) {
    if (!Has(SelectionView{attr, v})) return false;
  }
  return true;
}

Money SelectionPriceSet::FullCoverCost(const Catalog& catalog,
                                       AttrRef attr) const {
  if (!catalog.HasColumn(attr)) return kInfiniteMoney;
  Money total = 0;
  for (ValueId v : catalog.Column(attr)) {
    total = AddMoney(total, Get(SelectionView{attr, v}));
    if (IsInfinite(total)) return kInfiniteMoney;
  }
  return total;
}

bool SelectionPriceSet::SellsWholeDatabase(
    const Catalog& catalog, const std::vector<RelationId>& relations) const {
  for (RelationId r : relations) {
    bool covered = false;
    for (int p = 0; p < catalog.schema().arity(r) && !covered; ++p) {
      covered = FullyCovers(catalog, AttrRef{r, p});
    }
    if (!covered) return false;
  }
  return true;
}

std::vector<std::pair<SelectionView, Money>> SelectionPriceSet::Sorted()
    const {
  std::vector<std::pair<SelectionView, Money>> out(prices_.begin(),
                                                   prices_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  return out;
}

}  // namespace qp
