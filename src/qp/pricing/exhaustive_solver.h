#ifndef QP_PRICING_EXHAUSTIVE_SOLVER_H_
#define QP_PRICING_EXHAUSTIVE_SOLVER_H_

#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

struct ExhaustiveSolverOptions {
  /// Cap on the number of relevant explicit views (the search space is
  /// 2^views). The exhaustive solver embodies Corollary 3.4's NP upper
  /// bound: guess a view subset, verify determinacy in PTIME.
  size_t max_views = 30;
  /// Cap on search nodes (< 0 = unlimited).
  int64_t node_limit = -1;
};

/// Exact arbitrage-price of a bundle of monotone CQs under selection-view
/// price points, by branch-and-bound over subsets of the relevant explicit
/// views with the Theorem 3.3 determinacy oracle. Handles any CQ shape
/// (projections, self-joins, boolean) — the fully general, slow baseline.
Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& bundle,
    const ExhaustiveSolverOptions& options = {});

/// Single-query convenience overload.
Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ExhaustiveSolverOptions& options = {});

/// Union-of-CQs pricing (the paper's B(UCQ) setting, Corollary 3.4): UCQs
/// are monotone, so the Theorem 3.3 oracle applies; the price computation
/// is exact branch-and-bound (NP in general).
Result<PricingSolution> PriceUnionByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const UnionQuery& query, const ExhaustiveSolverOptions& options = {});

}  // namespace qp

#endif  // QP_PRICING_EXHAUSTIVE_SOLVER_H_
