#ifndef QP_PRICING_EXHAUSTIVE_SOLVER_H_
#define QP_PRICING_EXHAUSTIVE_SOLVER_H_

#include <cstdint>

#include "qp/pricing/solution.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"

namespace qp {

struct ExhaustiveSolverOptions {
  /// Cap on the number of relevant explicit views (the search space is
  /// 2^views). The exhaustive solver embodies Corollary 3.4's NP upper
  /// bound: guess a view subset, verify determinacy in PTIME.
  size_t max_views = 30;
  /// Cap on search nodes (< 0 = unlimited).
  int64_t node_limit = -1;
  /// Shared serving budget. Exhaustion degrades to the best known feasible
  /// cover (marked `approximate`) or DeadlineExceeded when none exists,
  /// instead of the node-limit ResourceExhausted error.
  SearchBudget budget;
  /// Worker threads for parallel subtree exploration (<= 1: sequential).
  /// Quotes are bit-identical across thread counts (DESIGN.md §10).
  int threads = 1;
  /// Cap on the coverage-bitset cell universe; larger solves fall back to
  /// the instance-level reference search.
  size_t max_cells = 4096;
  /// Cap on required-cell probes for the admissible lower bound.
  size_t max_probe_cells = 512;
  /// Pin the legacy instance-oracle DFS (the pre-branch-and-bound
  /// baseline). Used by the differential selfcheck and the bench pair
  /// that measures the speedup; quotes match the default path exactly.
  bool force_reference = false;
};

/// Per-solve observability for the exhaustive solver (also exported as
/// qp.solver.exhaustive.* metrics).
struct ExhaustiveSolveStats {
  int64_t nodes = 0;
  int64_t oracle_evals = 0;
  int64_t memo_hits = 0;
  int64_t bound_pruned = 0;
  int64_t infeasible_pruned = 0;
  int64_t dominated_views = 0;
  int64_t required_cells = 0;
  int64_t tasks = 0;
  /// False when the solve ran on the instance-level reference path
  /// (forced, oversized cell universe, or missing columns).
  bool used_coverage_oracle = false;
};

/// Exact arbitrage-price of a bundle of monotone CQs under selection-view
/// price points, by branch-and-bound over subsets of the relevant explicit
/// views with the Theorem 3.3 determinacy oracle. Handles any CQ shape
/// (projections, self-joins, boolean) — the fully general solver for the
/// NP-hard side of the dichotomy. The default path runs on the coverage-
/// bitset engine (qp/pricing/bnb/); the instance-level DFS remains as the
/// validated reference and fallback.
Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& bundle,
    const ExhaustiveSolverOptions& options = {},
    ExhaustiveSolveStats* stats = nullptr);

/// Single-query convenience overload.
Result<PricingSolution> PriceByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const ConjunctiveQuery& query, const ExhaustiveSolverOptions& options = {},
    ExhaustiveSolveStats* stats = nullptr);

/// Union-of-CQs pricing (the paper's B(UCQ) setting, Corollary 3.4): UCQs
/// are monotone, so the Theorem 3.3 oracle applies; the price computation
/// is exact branch-and-bound (NP in general).
Result<PricingSolution> PriceUnionByExhaustiveSearch(
    const Instance& db, const SelectionPriceSet& prices,
    const UnionQuery& query, const ExhaustiveSolverOptions& options = {},
    ExhaustiveSolveStats* stats = nullptr);

}  // namespace qp

#endif  // QP_PRICING_EXHAUSTIVE_SOLVER_H_
