#include "qp/pricing/boolean_pricer.h"

#include <algorithm>
#include <map>

#include "qp/eval/evaluator.h"

namespace qp {

ConjunctiveQuery FullVersionOf(const ConjunctiveQuery& q) {
  ConjunctiveQuery full(q.name() + "_full");
  for (VarId v = 0; v < q.num_vars(); ++v) full.AddVar(q.var_name(v));
  for (VarId v : q.BodyVars()) full.AddHeadVar(v);
  for (const Atom& a : q.atoms()) full.AddAtom(a.rel, a.args);
  for (const UnaryPredicate& p : q.predicates()) full.AddPredicate(p);
  return full;
}

Result<PricingSolution> PriceTrueBooleanQuery(const Instance& db,
                                              const SelectionPriceSet& prices,
                                              const ConjunctiveQuery& query) {
  const Catalog& catalog = db.catalog();
  ConjunctiveQuery full = FullVersionOf(query);
  Evaluator eval(&db);
  auto witnesses = eval.Eval(full);
  if (!witnesses.ok()) return witnesses.status();
  if (witnesses->empty()) {
    return Status::InvalidArgument(
        "PriceTrueBooleanQuery requires Q(D) = true");
  }

  PricingSolution best;
  best.price = kInfiniteMoney;

  for (const Tuple& witness : *witnesses) {
    // The witness's distinct base tuples.
    std::map<std::pair<RelationId, Tuple>, int> tuple_index;
    std::vector<std::pair<RelationId, Tuple>> tuples;
    for (const Atom& atom : full.atoms()) {
      Tuple t(atom.args.size());
      bool resolvable = true;
      for (size_t p = 0; p < atom.args.size(); ++p) {
        if (atom.args[p].is_var()) {
          // Head order of `full` equals its BodyVars() order.
          auto head_pos = std::find(full.head().begin(), full.head().end(),
                                    atom.args[p].var);
          t[p] = witness[head_pos - full.head().begin()];
        } else {
          auto id = catalog.dict().Find(atom.args[p].constant);
          if (!id.has_value()) {
            resolvable = false;
            break;
          }
          t[p] = *id;
        }
      }
      if (!resolvable) continue;  // cannot happen for a real witness
      auto key = std::make_pair(atom.rel, std::move(t));
      if (tuple_index.count(key) == 0) {
        tuple_index.emplace(key, static_cast<int>(tuples.size()));
        tuples.push_back(key);
      }
    }
    const int m = static_cast<int>(tuples.size());
    if (m > 20) {
      return Status::ResourceExhausted("witness has too many base tuples");
    }

    // Candidate views and the subset of witness tuples each covers.
    std::vector<SelectionView> views;
    std::vector<uint32_t> covers;
    std::map<SelectionView, int> view_idx;
    for (int i = 0; i < m; ++i) {
      const auto& [rel, t] = tuples[i];
      for (size_t p = 0; p < t.size(); ++p) {
        SelectionView view{AttrRef{rel, static_cast<int>(p)}, t[p]};
        if (!prices.Has(view)) continue;
        auto it = view_idx.find(view);
        int id;
        if (it == view_idx.end()) {
          id = static_cast<int>(views.size());
          view_idx.emplace(view, id);
          views.push_back(view);
          covers.push_back(0);
        } else {
          id = it->second;
        }
        covers[id] |= (1u << i);
      }
    }

    // Exact weighted set cover over at most 2^m masks.
    const uint32_t full_mask = (m == 32) ? 0xffffffffu : ((1u << m) - 1);
    std::vector<Money> dp(full_mask + 1, kInfiniteMoney);
    std::vector<int> choice(full_mask + 1, -1);
    std::vector<uint32_t> pred(full_mask + 1, 0);
    dp[0] = 0;
    for (uint32_t mask = 0; mask <= full_mask; ++mask) {
      if (IsInfinite(dp[mask])) continue;
      if (mask == full_mask) break;
      // Cover the lowest uncovered tuple.
      int bit = __builtin_ctz(~mask & full_mask);
      for (size_t vi = 0; vi < views.size(); ++vi) {
        if (!(covers[vi] & (1u << bit))) continue;
        uint32_t next = mask | covers[vi];
        Money cost = AddMoney(dp[mask], prices.Get(views[vi]));
        if (cost < dp[next]) {
          dp[next] = cost;
          choice[next] = static_cast<int>(vi);
          pred[next] = mask;
        }
      }
    }
    if (dp[full_mask] < best.price) {
      best.price = dp[full_mask];
      best.support.clear();
      // Reconstruct by walking stored predecessors.
      uint32_t mask = full_mask;
      while (mask != 0 && choice[mask] >= 0) {
        best.support.push_back(views[choice[mask]]);
        mask = pred[mask];
      }
      std::sort(best.support.begin(), best.support.end());
    }
  }
  return best;
}

}  // namespace qp
