#ifndef QP_PRICING_BATCH_PRICER_H_
#define QP_PRICING_BATCH_PRICER_H_

#include <vector>

#include "qp/pricing/engine.h"
#include "qp/pricing/quote_cache.h"
#include "qp/util/result.h"

namespace qp {

struct BatchPricerOptions {
  /// Worker threads for PriceAll. 0 = hardware concurrency; 1 = price on
  /// the calling thread (no pool is created).
  int num_threads = 0;
  /// Optional shared quote cache consulted before and populated after each
  /// solver run. May be shared across pricers; must outlive this object.
  QuoteCache* cache = nullptr;
};

/// Prices many queries against one engine concurrently. Pricing is a pure
/// read of the (immutable during the batch) instance and price points, so
/// queries are embarrassingly parallel; each query's quote is computed by
/// exactly the same solver path as PricingEngine::Price, which keeps
/// parallel results bit-identical to sequential ones.
class BatchPricer {
 public:
  /// `engine` must outlive the pricer. The engine's instance and prices
  /// must not mutate during a PriceAll call.
  explicit BatchPricer(const PricingEngine* engine,
                       BatchPricerOptions options = {});

  /// Prices queries[i] into result i, in parallel across the pool.
  std::vector<Result<PriceQuote>> PriceAll(
      const std::vector<ConjunctiveQuery>& queries) const;

  /// Cache-aware single-query pricing on the calling thread.
  Result<PriceQuote> Price(const ConjunctiveQuery& query) const;

  const PricingEngine& engine() const { return *engine_; }
  int num_threads() const { return num_threads_; }

 private:
  const PricingEngine* engine_;
  QuoteCache* cache_;
  int num_threads_;
};

}  // namespace qp

#endif  // QP_PRICING_BATCH_PRICER_H_
