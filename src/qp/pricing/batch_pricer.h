#ifndef QP_PRICING_BATCH_PRICER_H_
#define QP_PRICING_BATCH_PRICER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "qp/pricing/engine.h"
#include "qp/pricing/quote_cache.h"
#include "qp/pricing/serving_controls.h"
#include "qp/util/result.h"
#include "qp/util/search_budget.h"
#include "qp/util/thread_annotations.h"
#include "qp/util/thread_pool.h"

namespace qp {

struct BatchPricerOptions {
  /// Worker threads for PriceAll. 0 = hardware concurrency; 1 = price on
  /// the calling thread (no pool is created).
  int num_threads = 0;
  /// Optional shared quote cache consulted before and populated after each
  /// solver run. May be shared across pricers; must outlive this object.
  QuoteCache* cache = nullptr;
  /// Per-query serving deadline in milliseconds (0 = none). Each query
  /// gets its own SearchBudget; expiry degrades the quote to an
  /// approximate over-estimate instead of an error, so a p95 latency
  /// bound holds even on NP-hard instances. Approximate quotes are never
  /// cached — a later unhurried request should get the exact price.
  int64_t deadline_ms = 0;
  /// Cap on queries admitted per PriceAll call (0 = unlimited). Excess
  /// queries are shed with ResourceExhausted rather than queued, bounding
  /// batch latency under overload.
  int admission_cap = 0;
  /// Optional live knob source. When set, `deadline_ms` / `admission_cap`
  /// above become fallbacks: each Price / PriceAll call snapshots the
  /// controls' current values instead, so a feedback controller can
  /// tighten or relax serving between frames without rebuilding pricers.
  /// Must outlive this object. Each call reads each knob exactly once —
  /// a concurrent adjustment lands on frame boundaries, never mid-batch.
  const ServingControls* controls = nullptr;
};

/// Prices many queries against one engine concurrently. Pricing is a pure
/// read of the (immutable during the batch) instance and price points, so
/// queries are embarrassingly parallel; each query's quote is computed by
/// exactly the same solver path as PricingEngine::Price, which keeps
/// parallel results bit-identical to sequential ones.
class BatchPricer {
 public:
  /// `engine` must outlive the pricer. The engine's instance and prices
  /// must not mutate during a PriceAll call.
  explicit BatchPricer(const PricingEngine* engine,
                       BatchPricerOptions options = {});

  /// Prices queries[i] into result i, in parallel across the pool.
  std::vector<Result<PriceQuote>> PriceAll(
      const std::vector<ConjunctiveQuery>& queries) const;

  /// Cache-aware single-query pricing on the calling thread.
  Result<PriceQuote> Price(const ConjunctiveQuery& query) const;

  /// Same, with the query's fingerprint already in hand (the server's
  /// parse memo caches fingerprints alongside parsed queries, so the hot
  /// path never recomputes them). `fingerprint` must equal
  /// query.Fingerprint().
  Result<PriceQuote> Price(const ConjunctiveQuery& query,
                           const std::string& fingerprint) const;

  /// Repoints the pricer at a different engine/cache pair without
  /// rebuilding it. Lets a server connection keep one BatchPricer (and
  /// its lazily-built pool) across frames that address different shards
  /// and snapshot generations. Not thread-safe against concurrent
  /// Price/PriceAll on the same pricer — the caller serializes use, as a
  /// connection's single in-flight frame does.
  void Rebind(const PricingEngine* engine, QuoteCache* cache);

  const PricingEngine& engine() const { return *engine_; }
  int num_threads() const { return num_threads_; }
  /// The deadline a Price call issued right now would run under: the
  /// controls' live value when controls are wired, else the fixed option.
  int64_t deadline_ms() const {
    return controls_ != nullptr ? controls_->DeadlineMs() : deadline_ms_;
  }
  /// Same for the per-batch admission cap.
  int admission_cap() const {
    return controls_ != nullptr ? static_cast<int>(controls_->AdmissionCap())
                                : admission_cap_;
  }

  /// True once PriceAll has built its persistent worker pool (test hook:
  /// repeated batches must reuse one pool, not build one per call).
  bool pool_initialized() const;

 private:
  /// Mutable only through Rebind, which the caller serializes against
  /// Price/PriceAll (a connection has one in-flight frame); deliberately
  /// unguarded.
  const PricingEngine* engine_;  // NOLINT(guarded-by-coverage)
  QuoteCache* cache_;            // NOLINT(guarded-by-coverage)
  const int num_threads_;
  const int64_t deadline_ms_;
  const int admission_cap_;
  const ServingControls* const controls_;
  /// Lazily-built persistent pool, reused across PriceAll calls so worker
  /// startup cost and queue-wait measurements aren't polluted by pool
  /// construction. Guarded by `pool_mu_`; concurrent PriceAll calls on one
  /// pricer serialize on it.
  mutable Mutex pool_mu_;
  mutable std::unique_ptr<ThreadPool> pool_ QP_GUARDED_BY(pool_mu_);
};

}  // namespace qp

#endif  // QP_PRICING_BATCH_PRICER_H_
