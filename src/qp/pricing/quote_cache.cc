#include "qp/pricing/quote_cache.h"

#include "qp/obs/metrics.h"

namespace qp {

std::optional<PriceQuote> QuoteCache::Lookup(const std::string& fingerprint,
                                             const Instance& db) {
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    QP_METRIC_INCR("qp.cache.misses");
    return std::nullopt;
  }
  for (const auto& [rel, generation] : it->second.deps) {
    if (db.generation(rel) != generation) {
      entries_.erase(it);
      ++stats_.invalidations;
      QP_METRIC_INCR("qp.cache.invalidations");
      QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
      return std::nullopt;
    }
  }
  ++stats_.hits;
  QP_METRIC_INCR("qp.cache.hits");
  return it->second.quote;
}

void QuoteCache::Store(const std::string& fingerprint,
                       const ConjunctiveQuery& query, const Instance& db,
                       const PriceQuote& quote) {
  Entry entry;
  entry.quote = quote;
  for (RelationId rel : query.ReferencedRelations()) {
    entry.deps.emplace_back(rel, db.generation(rel));
  }
  MutexLock lock(&mu_);
  entries_[fingerprint] = std::move(entry);
  ++stats_.insertions;
  QP_METRIC_INCR("qp.cache.insertions");
  QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
}

void QuoteCache::Evict(const std::string& fingerprint) {
  MutexLock lock(&mu_);
  if (entries_.erase(fingerprint) > 0) {
    ++stats_.evictions;
    QP_METRIC_INCR("qp.cache.evictions");
    QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
  }
}

void QuoteCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  QP_METRIC_GAUGE_SET("qp.cache.size", 0);
}

size_t QuoteCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

QuoteCacheStats QuoteCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace qp
