#include "qp/pricing/quote_cache.h"

#include "qp/obs/metrics.h"

namespace qp {

bool QuoteCache::IsStaleAgainst(const Entry& candidate,
                                const Entry& existing) {
  // Stale iff the existing entry's generations dominate the candidate's:
  // every shared dependency at least as new and one strictly newer.
  // Incomparable or equal generation vectors keep last-write-wins.
  bool strictly_newer = false;
  for (const auto& [rel, generation] : candidate.deps) {
    for (const auto& [existing_rel, existing_generation] : existing.deps) {
      if (existing_rel != rel) continue;
      if (existing_generation < generation) return false;
      if (existing_generation > generation) strictly_newer = true;
    }
  }
  return strictly_newer;
}

std::optional<PriceQuote> QuoteCache::Lookup(const std::string& fingerprint,
                                             const Instance& db) {
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    QP_METRIC_INCR("qp.cache.misses");
    return std::nullopt;
  }
  for (const auto& [rel, generation] : it->second.deps) {
    if (db.generation(rel) != generation) {
      entries_.erase(it);
      ++stats_.invalidations;
      QP_METRIC_INCR("qp.cache.invalidations");
      QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
      return std::nullopt;
    }
  }
  ++stats_.hits;
  QP_METRIC_INCR("qp.cache.hits");
  return it->second.quote;
}

void QuoteCache::Store(const std::string& fingerprint,
                       const ConjunctiveQuery& query, const Instance& db,
                       const PriceQuote& quote) {
  Entry entry;
  entry.quote = quote;
  for (RelationId rel : query.ReferencedRelations()) {
    entry.deps.emplace_back(rel, db.generation(rel));
  }
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end() && IsStaleAgainst(entry, it->second)) {
    // Generation-pinned store: a quote computed against an older catalog
    // snapshot (multi-version serving, DESIGN.md §14) must not clobber an
    // entry computed against a strictly newer one. Without the guard an
    // in-flight reader on snapshot v would overwrite the v+1 entry after
    // a publish, and every v+1 lookup would re-solve.
    ++stats_.stale_store_drops;
    QP_METRIC_INCR("qp.cache.stale_store_drops");
    return;
  }
  entries_[fingerprint] = std::move(entry);
  ++stats_.insertions;
  QP_METRIC_INCR("qp.cache.insertions");
  QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
}

void QuoteCache::Evict(const std::string& fingerprint) {
  MutexLock lock(&mu_);
  if (entries_.erase(fingerprint) > 0) {
    ++stats_.evictions;
    QP_METRIC_INCR("qp.cache.evictions");
    QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
  }
}

void QuoteCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  QP_METRIC_GAUGE_SET("qp.cache.size", 0);
}

size_t QuoteCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

QuoteCacheStats QuoteCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace qp
