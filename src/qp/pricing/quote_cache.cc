#include "qp/pricing/quote_cache.h"

#include <algorithm>

#include "qp/obs/metrics.h"

namespace qp {

bool QuoteCache::IsStaleAgainst(const Entry& candidate,
                                const Entry& existing) {
  // Stale iff the existing entry's generations dominate the candidate's:
  // every shared dependency at least as new and one strictly newer.
  // Incomparable or equal generation vectors keep last-write-wins.
  bool strictly_newer = false;
  for (const auto& [rel, generation] : candidate.deps) {
    for (const auto& [existing_rel, existing_generation] : existing.deps) {
      if (existing_rel != rel) continue;
      if (existing_generation < generation) return false;
      if (existing_generation > generation) strictly_newer = true;
    }
  }
  return strictly_newer;
}

void QuoteCache::TrackHot(const std::string& fingerprint,
                          const ConjunctiveQuery* query) {
  auto it = hot_.find(fingerprint);
  if (it != hot_.end()) {
    ++it->second.hits;
    return;
  }
  // Admission needs the parsed query (the warmer re-prices it); a lookup
  // on a never-stored fingerprint has nothing to admit.
  if (query == nullptr) return;
  if (hot_.size() >= kMaxTrackedFingerprints) {
    // Evict the coldest tracked entry (fewest hits; oldest admission on a
    // tie). O(n), but n is bounded and admissions of brand-new shapes are
    // rare once a workload's hot set is resident.
    auto coldest = hot_.begin();
    for (auto cand = hot_.begin(); cand != hot_.end(); ++cand) {
      if (cand->second.hits < coldest->second.hits ||
          (cand->second.hits == coldest->second.hits &&
           cand->second.first_seen < coldest->second.first_seen)) {
        coldest = cand;
      }
    }
    hot_.erase(coldest);
  }
  HotEntry entry;
  entry.query = *query;
  entry.hits = 1;
  entry.first_seen = ++hot_admissions_;
  hot_.emplace(fingerprint, std::move(entry));
}

std::optional<PriceQuote> QuoteCache::Lookup(const std::string& fingerprint,
                                             const Instance& db) {
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) {
    ++stats_.misses;
    QP_METRIC_INCR("qp.cache.misses");
    return std::nullopt;
  }
  for (const auto& [rel, generation] : it->second.deps) {
    if (db.generation(rel) != generation) {
      entries_.erase(it);
      ++stats_.invalidations;
      QP_METRIC_INCR("qp.cache.invalidations");
      QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
      return std::nullopt;
    }
  }
  ++stats_.hits;
  QP_METRIC_INCR("qp.cache.hits");
  if (it->second.warmed) {
    ++stats_.warm_hits;
    // Named qp.server.* because the warmer that installs these entries
    // lives in the serving layer; the cache is just where the hit is
    // observable. Keeping the mandated name beats inventing a synonym.
    QP_METRIC_INCR("qp.server.warm_hits");
  }
  TrackHot(fingerprint, nullptr);
  return it->second.quote;
}

bool QuoteCache::HasFresh(const std::string& fingerprint,
                          const Instance& db) const {
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it == entries_.end()) return false;
  for (const auto& [rel, generation] : it->second.deps) {
    if (db.generation(rel) != generation) return false;
  }
  return true;
}

void QuoteCache::Store(const std::string& fingerprint,
                       const ConjunctiveQuery& query, const Instance& db,
                       const PriceQuote& quote, bool warmed) {
  Entry entry;
  entry.quote = quote;
  entry.warmed = warmed;
  for (RelationId rel : query.ReferencedRelations()) {
    entry.deps.emplace_back(rel, db.generation(rel));
  }
  MutexLock lock(&mu_);
  auto it = entries_.find(fingerprint);
  if (it != entries_.end() && IsStaleAgainst(entry, it->second)) {
    // Generation-pinned store: a quote computed against an older catalog
    // snapshot (multi-version serving, DESIGN.md §14) must not clobber an
    // entry computed against a strictly newer one. Without the guard an
    // in-flight reader on snapshot v would overwrite the v+1 entry after
    // a publish, and every v+1 lookup would re-solve. The same guard
    // makes warming safe against publish races: a warmer still pricing
    // generation g cannot overwrite an entry already priced at g+1.
    ++stats_.stale_store_drops;
    QP_METRIC_INCR("qp.cache.stale_store_drops");
    return;
  }
  entries_[fingerprint] = std::move(entry);
  ++stats_.insertions;
  QP_METRIC_INCR("qp.cache.insertions");
  if (warmed) {
    ++stats_.warmed_entries;
    QP_METRIC_INCR("qp.cache.warmed_entries");
  }
  QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
  TrackHot(fingerprint, &query);
}

std::vector<HotQuery> QuoteCache::HotQueries(size_t k) const {
  std::vector<HotQuery> out;
  {
    MutexLock lock(&mu_);
    out.reserve(hot_.size());
    for (const auto& [fingerprint, entry] : hot_) {
      HotQuery hot;
      hot.fingerprint = fingerprint;
      hot.query = entry.query;
      hot.hits = entry.hits;
      out.push_back(std::move(hot));
    }
  }
  std::sort(out.begin(), out.end(), [](const HotQuery& a, const HotQuery& b) {
    if (a.hits != b.hits) return a.hits > b.hits;
    return a.fingerprint < b.fingerprint;  // deterministic tie-break
  });
  if (out.size() > k) out.resize(k);
  return out;
}

void QuoteCache::Evict(const std::string& fingerprint) {
  MutexLock lock(&mu_);
  if (entries_.erase(fingerprint) > 0) {
    ++stats_.evictions;
    QP_METRIC_INCR("qp.cache.evictions");
    QP_METRIC_GAUGE_SET("qp.cache.size", entries_.size());
  }
}

void QuoteCache::Clear() {
  MutexLock lock(&mu_);
  entries_.clear();
  hot_.clear();
  QP_METRIC_GAUGE_SET("qp.cache.size", 0);
}

size_t QuoteCache::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

QuoteCacheStats QuoteCache::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace qp
