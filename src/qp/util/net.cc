#include "qp/util/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace qp {

namespace {

Status Errno(const char* what) {
  return Status::Internal(std::string(what) + ": " +
                          std::strerror(errno));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Socket> TcpListen(uint16_t port, int backlog) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int one = 1;
  if (::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return Errno("bind");
  }
  if (::listen(fd, backlog) != 0) return Errno("listen");
  return sock;
}

Result<uint16_t> LocalPort(const Socket& socket) {
  sockaddr_in addr = {};
  socklen_t len = sizeof(addr);
  if (::getsockname(socket.fd(), reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Socket> TcpConnect(const std::string& host, uint16_t port) {
  sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno("connect");
  // Quotes are small request/response frames; coalescing them behind
  // Nagle's algorithm would serialize round trips at ~40ms.
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return sock;
}

Result<Socket> Accept(const Socket& listener) {
  int fd;
  do {
    fd = ::accept(listener.fd(), nullptr, nullptr);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno("accept");
  Socket sock(fd);
  int one = 1;
  if (::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one)) != 0) {
    return Errno("setsockopt(TCP_NODELAY)");
  }
  return sock;
}

Status SetSendTimeout(const Socket& socket, int timeout_ms) {
  timeval tv = {};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  if (::setsockopt(socket.fd(), SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) !=
      0) {
    return Errno("setsockopt(SO_SNDTIMEO)");
  }
  return Status::Ok();
}

Status ShutdownWrite(const Socket& socket) {
  if (::shutdown(socket.fd(), SHUT_WR) != 0) {
    return Errno("shutdown(SHUT_WR)");
  }
  return Status::Ok();
}

Result<bool> DrainReadable(const Socket& socket) {
  char discard[4096];
  while (true) {
    const ssize_t n =
        ::recv(socket.fd(), discard, sizeof(discard), MSG_DONTWAIT);
    if (n > 0) continue;
    if (n == 0) return true;  // clean EOF: the peer is done
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return false;
    return true;  // hard error: nothing left worth waiting for
  }
}

Result<bool> WaitReadable(const Socket& socket, int timeout_ms) {
  pollfd pfd = {};
  pfd.fd = socket.fd();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

Result<std::vector<size_t>> WaitAnyReadable(
    const std::vector<const Socket*>& sockets, int timeout_ms) {
  std::vector<pollfd> pfds(sockets.size());
  for (size_t i = 0; i < sockets.size(); ++i) {
    pfds[i].fd = sockets[i]->fd();
    pfds[i].events = POLLIN;
    pfds[i].revents = 0;
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  std::vector<size_t> ready;
  if (rc > 0) {
    for (size_t i = 0; i < pfds.size(); ++i) {
      // POLLHUP/POLLERR surface as "readable": the subsequent read
      // observes the EOF or error and the caller closes the connection.
      if (pfds[i].revents != 0) ready.push_back(i);
    }
  }
  return ready;
}

Status OpenWakePipe(Socket* reader, Socket* writer) {
  int fds[2];
  if (::pipe(fds) != 0) return Errno("pipe");
  // Nonblocking read end: DrainWakePipe must never stall, and a spurious
  // drain with no pending byte must return immediately.
  int flags = ::fcntl(fds[0], F_GETFL, 0);
  if (flags < 0 || ::fcntl(fds[0], F_SETFL, flags | O_NONBLOCK) != 0) {
    ::close(fds[0]);
    ::close(fds[1]);
    return Errno("fcntl(O_NONBLOCK)");
  }
  *reader = Socket(fds[0]);
  *writer = Socket(fds[1]);
  return Status::Ok();
}

void WakePipe(const Socket& writer) {
  char byte = 1;
  ssize_t n;
  do {
    n = ::write(writer.fd(), &byte, 1);
  } while (n < 0 && errno == EINTR);
  // EAGAIN (pipe full) is fine: the reader already has a wake pending.
}

void DrainWakePipe(const Socket& reader) {
  char buf[64];
  ssize_t n;
  do {
    n = ::read(reader.fd(), buf, sizeof(buf));
  } while (n > 0 || (n < 0 && errno == EINTR));
}

Status WriteFull(const Socket& socket, const void* data, size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size > 0) {
    ssize_t n = ::send(socket.fd(), p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<bool> ReadFull(const Socket& socket, void* data, size_t size) {
  char* p = static_cast<char*>(data);
  size_t done = 0;
  while (done < size) {
    ssize_t n = ::recv(socket.fd(), p + done, size - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("recv");
    }
    if (n == 0) {
      if (done == 0) return false;  // clean EOF at a message boundary
      return Status::Internal("connection truncated mid-message");
    }
    done += static_cast<size_t>(n);
  }
  return true;
}

Status WriteFrame(const Socket& socket, uint8_t type, std::string_view payload,
                  uint32_t max_frame_bytes) {
  if (payload.size() + 1 > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame payload of " + std::to_string(payload.size()) +
        " bytes exceeds the frame limit of " +
        std::to_string(max_frame_bytes));
  }
  uint32_t length = static_cast<uint32_t>(payload.size()) + 1;
  unsigned char header[5];
  header[0] = static_cast<unsigned char>(length >> 24);
  header[1] = static_cast<unsigned char>(length >> 16);
  header[2] = static_cast<unsigned char>(length >> 8);
  header[3] = static_cast<unsigned char>(length);
  header[4] = type;
  QP_RETURN_IF_ERROR(WriteFull(socket, header, sizeof(header)));
  if (!payload.empty()) {
    QP_RETURN_IF_ERROR(WriteFull(socket, payload.data(), payload.size()));
  }
  return Status::Ok();
}

Result<bool> ReadFrameInto(const Socket& socket, uint32_t max_frame_bytes,
                           Frame* out) {
  unsigned char header[4];
  auto got = ReadFull(socket, header, sizeof(header));
  if (!got.ok()) return got.status();
  if (!*got) return false;  // peer closed cleanly
  uint32_t length = (static_cast<uint32_t>(header[0]) << 24) |
                    (static_cast<uint32_t>(header[1]) << 16) |
                    (static_cast<uint32_t>(header[2]) << 8) |
                    static_cast<uint32_t>(header[3]);
  if (length == 0) {
    return Status::InvalidArgument("frame with zero length (no type byte)");
  }
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "frame of " + std::to_string(length) +
        " bytes exceeds the frame limit of " +
        std::to_string(max_frame_bytes));
  }
  auto type_got = ReadFull(socket, &out->type, 1);
  if (!type_got.ok()) return type_got.status();
  if (!*type_got) return Status::Internal("connection truncated mid-frame");
  // resize() keeps the existing capacity, so a connection's read buffer
  // stops allocating once it has seen its largest frame.
  out->payload.resize(length - 1);
  if (length > 1) {
    auto body = ReadFull(socket, out->payload.data(), out->payload.size());
    if (!body.ok()) return body.status();
    if (!*body) return Status::Internal("connection truncated mid-frame");
  }
  return true;
}

Result<std::optional<Frame>> ReadFrame(const Socket& socket,
                                       uint32_t max_frame_bytes) {
  Frame frame;
  auto got = ReadFrameInto(socket, max_frame_bytes, &frame);
  if (!got.ok()) return got.status();
  if (!*got) return std::optional<Frame>();
  return std::optional<Frame>(std::move(frame));
}

}  // namespace qp
