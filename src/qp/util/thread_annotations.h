#ifndef QP_UTIL_THREAD_ANNOTATIONS_H_
#define QP_UTIL_THREAD_ANNOTATIONS_H_

// Clang Thread Safety Analysis for the qp codebase, plus the annotated
// mutex wrappers every concurrent subsystem locks through.
//
// The macros compile to Clang `thread_safety` attributes under Clang and
// to nothing elsewhere, so GCC builds are unaffected while a Clang build
// with -Wthread-safety -Werror proves the lock discipline at compile
// time: a read or write of a QP_GUARDED_BY(mu) member outside a scope
// that holds `mu` is a build error, not a TSan-if-the-test-hits-it race.
//
// Annotate state, not code paths:
//
//   class QP_CAPABILITY("mutex") ... is provided here as qp::Mutex.
//
//   class Cache {
//    private:
//     mutable qp::Mutex mu_;
//     std::unordered_map<K, V> entries_ QP_GUARDED_BY(mu_);
//   };
//
//   void Cache::Insert(...) {
//     qp::MutexLock lock(&mu_);   // scoped acquire, RAII release
//     entries_[k] = v;            // OK: mu_ held
//   }
//
// Functions that require a lock already held take QP_REQUIRES(mu_);
// functions that must not be called with it held take QP_EXCLUDES(mu_).
// QP_NO_THREAD_SAFETY_ANALYSIS is the escape hatch of last resort and
// needs a comment explaining why the analysis cannot see the invariant
// (policy: DESIGN.md §13).
//
// This is the only file in the tree allowed to name std::mutex /
// std::lock_guard / std::condition_variable; tools/lint_qp.py (raw-mutex)
// enforces that everything else goes through qp::Mutex.

#include <condition_variable>
#include <mutex>

#if defined(__clang__) && (!defined(SWIG))
#define QP_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define QP_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op off Clang
#endif

/// Declares a class to be a capability (lockable) type.
#define QP_CAPABILITY(x) QP_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Declares a RAII class whose lifetime scopes a capability.
#define QP_SCOPED_CAPABILITY QP_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Member data protected by the given capability.
#define QP_GUARDED_BY(x) QP_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member whose *pointee* is protected by the given capability.
#define QP_PT_GUARDED_BY(x) QP_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function must be called with the capability held (and does not
/// release it).
#define QP_REQUIRES(...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// The function must be called with the capability held in shared mode.
#define QP_REQUIRES_SHARED(...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capability (its own `this` when empty).
#define QP_ACQUIRE(...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases the capability.
#define QP_RELEASE(...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function acquires the capability iff it returns `b`.
#define QP_TRY_ACQUIRE(b, ...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(b, __VA_ARGS__))

/// The function must be called with the capability NOT held.
#define QP_EXCLUDES(...) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability.
#define QP_ASSERT_CAPABILITY(x) \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the given capability.
#define QP_RETURN_CAPABILITY(x) QP_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Last-resort opt-out; every use needs a justifying comment (DESIGN §13).
#define QP_NO_THREAD_SAFETY_ANALYSIS \
  QP_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

namespace qp {

/// An annotated exclusive mutex. A thin wrapper over std::mutex — Lock()
/// and Unlock() inline to the std::mutex calls, so it costs exactly what
/// std::mutex costs — whose capability attributes let Clang check every
/// QP_GUARDED_BY member access against the locks actually held.
class QP_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() QP_ACQUIRE() { mu_.lock(); }
  void Unlock() QP_RELEASE() { mu_.unlock(); }
  bool TryLock() QP_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// For contracts the analysis cannot derive (e.g. a lock handed across
  /// a task boundary): tells the analysis the capability is held here.
  void AssertHeld() const QP_ASSERT_CAPABILITY(this) {}

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII lock with std::lock_guard semantics (acquire on construction,
/// release on destruction, no unlock/relock surface), annotated as a
/// scoped capability so the analysis tracks the region it covers.
class QP_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) QP_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() QP_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to qp::Mutex. Wait takes the mutex explicitly
/// (QP_REQUIRES) so the analysis can match the capability the caller
/// holds against the one the wait releases; the adopt/release dance keeps
/// the fast std::condition_variable under the hood instead of the
/// internally-locked std::condition_variable_any.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks, and reacquires before returning.
  /// Spurious wakeups happen: always wait in a predicate loop.
  void Wait(Mutex* mu) QP_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu->mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // MutexLock (or the caller) still owns the mutex
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qp

#endif  // QP_UTIL_THREAD_ANNOTATIONS_H_
