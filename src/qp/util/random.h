#ifndef QP_UTIL_RANDOM_H_
#define QP_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qp {

/// A small, fast, deterministic PRNG (xoshiro256**). All workload generators
/// take a `Rng` so experiments are reproducible from a seed.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli trial with probability `p`.
  bool NextBool(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::size_t j = NextBelow(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace qp

#endif  // QP_UTIL_RANDOM_H_
