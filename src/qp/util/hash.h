#ifndef QP_UTIL_HASH_H_
#define QP_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace qp {

/// Combines a hash value into a seed (boost::hash_combine style, 64-bit).
inline size_t HashCombine(size_t seed, size_t value) {
  return seed ^ (value + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Hashes a contiguous range of integral values.
template <typename T>
size_t HashRange(const std::vector<T>& values) {
  size_t seed = 0x12345678;
  for (const T& v : values) {
    seed = HashCombine(seed, static_cast<size_t>(v));
  }
  return seed;
}

/// Packs two 32-bit ids into one 64-bit key (for pair sets).
inline uint64_t PackPair(uint32_t a, uint32_t b) {
  return (static_cast<uint64_t>(a) << 32) | b;
}

}  // namespace qp

#endif  // QP_UTIL_HASH_H_
