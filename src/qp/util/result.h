#ifndef QP_UTIL_RESULT_H_
#define QP_UTIL_RESULT_H_

#include <optional>
#include <utility>

#include "qp/util/contract.h"
#include "qp/util/status.h"

namespace qp {

/// A value-or-error holder, analogous to absl::StatusOr<T>.
///
/// Usage:
///   Result<int> r = Parse(...);
///   if (!r.ok()) return r.status();
///   Use(*r);
template <typename T>
class Result {
 public:
  /// Implicit construction from an error status. The status must not be OK.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    QP_CONTRACT_ASSERT(!status_.ok(),
              "Result constructed from OK status without a value");
  }
  /// Implicit construction from a value.
  Result(T value) : value_(std::move(value)) {}  // NOLINT

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    QP_CONTRACT_ASSERT(ok(), "value() called on error Result: " + status_.ToString());
    return *value_;
  }
  T& value() & {
    QP_CONTRACT_ASSERT(ok(), "value() called on error Result: " + status_.ToString());
    return *value_;
  }
  T&& value() && {
    QP_CONTRACT_ASSERT(ok(), "value() called on error Result: " + status_.ToString());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace qp

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// status from the enclosing function.
#define QP_ASSIGN_OR_RETURN(lhs, expr)              \
  auto QP_CONCAT_(qp_result_, __LINE__) = (expr);   \
  if (!QP_CONCAT_(qp_result_, __LINE__).ok())       \
    return QP_CONCAT_(qp_result_, __LINE__).status(); \
  lhs = std::move(QP_CONCAT_(qp_result_, __LINE__)).value()

#define QP_CONCAT_(a, b) QP_CONCAT_IMPL_(a, b)
#define QP_CONCAT_IMPL_(a, b) a##b

#endif  // QP_UTIL_RESULT_H_
