#ifndef QP_UTIL_SEARCH_BUDGET_H_
#define QP_UTIL_SEARCH_BUDGET_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace qp {

/// A shared, cooperative serving budget for solver searches: a wall-clock
/// deadline, a node cap, and an explicit cancel flag behind one copyable
/// handle. Generalizes the per-solver `node_limit` plumbing: the engine
/// threads one budget through every solver a quote touches, so the
/// NP-hard search (Theorem 3.5) and the PTIME min-cut pipelines check the
/// same clock and the whole quote — not each solver separately — is
/// bounded.
///
/// A default-constructed budget is *inactive*: it holds no state, every
/// check is a null-pointer test, and solvers behave bit-identically to a
/// build without budgets (the determinism contract of the batch pricer).
///
/// Thread-safety: handles may be copied freely and consumed from many
/// worker threads; all state is atomic. The deadline is only read against
/// the clock every `kDeadlineCheckInterval` consumed nodes, amortizing the
/// steady_clock cost out of the search hot loop.
class SearchBudget {
 public:
  /// Inactive budget: never exhausted, zero overhead.
  SearchBudget() = default;

  /// A budget that expires `timeout` from now (cooperatively: solvers
  /// notice at their next check, so total latency is deadline + one node
  /// batch).
  static SearchBudget Deadline(std::chrono::milliseconds timeout) {
    SearchBudget budget;
    budget.state_ = std::make_shared<State>();
    budget.state_->has_deadline = true;
    budget.state_->deadline = std::chrono::steady_clock::now() + timeout;
    return budget;
  }

  /// A budget that cancels after `cap` consumed nodes across every solver
  /// sharing the handle (unlike per-solver `node_limit`, which each solver
  /// counts from zero).
  static SearchBudget NodeCap(int64_t cap) {
    SearchBudget budget;
    budget.state_ = std::make_shared<State>();
    budget.state_->node_cap = cap;
    return budget;
  }

  /// Both limits at once. `cap < 0` means no node cap.
  static SearchBudget DeadlineAndNodeCap(std::chrono::milliseconds timeout,
                                         int64_t cap) {
    SearchBudget budget = Deadline(timeout);
    budget.state_->node_cap = cap;
    return budget;
  }

  /// True when the handle carries limits (i.e. was not default-built).
  bool active() const { return state_ != nullptr; }

  /// Requests cooperative cancellation (e.g. a disconnected client).
  void Cancel() const {
    if (state_ != nullptr) {
      state_->cancelled.store(true, std::memory_order_relaxed);
    }
  }

  /// Counts one unit of search work and returns true when the budget is
  /// exhausted (cancelled, over the node cap, or past the deadline). The
  /// hot-loop check: one relaxed fetch_add; the clock is consulted every
  /// kDeadlineCheckInterval nodes.
  bool ConsumeNode() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    int64_t n = state_->nodes.fetch_add(1, std::memory_order_relaxed) + 1;
    if (state_->node_cap >= 0 && n > state_->node_cap) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    if (state_->has_deadline && n % kDeadlineCheckInterval == 1 &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Non-consuming check for coarse-grained call sites (one per chain
  /// solve / GChQ subproblem, not per node); always reads the clock.
  bool Exhausted() const {
    if (state_ == nullptr) return false;
    if (state_->cancelled.load(std::memory_order_relaxed)) return true;
    if (state_->node_cap >= 0 &&
        state_->nodes.load(std::memory_order_relaxed) > state_->node_cap) {
      return true;
    }
    if (state_->has_deadline &&
        std::chrono::steady_clock::now() >= state_->deadline) {
      state_->cancelled.store(true, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Nodes consumed so far across every sharer of the handle.
  int64_t nodes_consumed() const {
    return state_ == nullptr ? 0
                             : state_->nodes.load(std::memory_order_relaxed);
  }

 private:
  static constexpr int64_t kDeadlineCheckInterval = 64;

  struct State {
    std::atomic<bool> cancelled{false};
    std::atomic<int64_t> nodes{0};
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline;
    int64_t node_cap = -1;
  };

  std::shared_ptr<State> state_;
};

}  // namespace qp

#endif  // QP_UTIL_SEARCH_BUDGET_H_
