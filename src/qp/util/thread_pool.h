#ifndef QP_UTIL_THREAD_POOL_H_
#define QP_UTIL_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "qp/util/thread_annotations.h"

namespace qp {

/// A fixed-size thread pool with two priority lanes sharing one worker
/// set. `kInteractive` work (cached quotes, PTIME solves, frame serving)
/// always runs before `kBackground` work (speculative cache warming,
/// NP-hard batch fills): workers drain the interactive deque first and
/// only pop background tasks when no interactive task is queued. Both
/// lanes are plain FIFO within themselves — no work stealing; pricing
/// tasks are coarse enough that the shared two-lane queue never becomes
/// the bottleneck. Tasks must not throw.
///
/// Lane state lives in `queues_[2]`, indexed by `Lane`, guarded by `mu_`
/// together with `in_flight_` (which counts both lanes — `Wait()` blocks
/// until *all* lanes drain) and `shutdown_`.
///
/// Usage:
///   ThreadPool pool(8);
///   pool.ParallelFor(n, [&](int i) { out[i] = Price(queries[i]); });
///   pool.Submit(ThreadPool::Lane::kBackground, [&] { WarmCache(); });
class ThreadPool {
 public:
  /// Scheduling priority. Interactive tasks preempt queued background
  /// tasks (but never a background task already running — lanes order
  /// dequeues, they do not interrupt).
  enum class Lane : int { kInteractive = 0, kBackground = 1 };

  /// Called (outside the pool lock) with the lane and the nanoseconds a
  /// task spent queued before a worker picked it up. This layer (qp/util)
  /// cannot depend on qp/obs, so metric export is the observer's job.
  using LaneWaitObserver = std::function<void(Lane, uint64_t)>;

  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains both lanes, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution on the interactive lane.
  void Submit(std::function<void()> task) QP_EXCLUDES(mu_);

  /// Enqueues a task on the given lane.
  void Submit(Lane lane, std::function<void()> task) QP_EXCLUDES(mu_);

  /// Blocks until every submitted task — both lanes — has finished.
  void Wait() QP_EXCLUDES(mu_);

  /// Runs fn(0) .. fn(count - 1) across the pool on the interactive lane
  /// and blocks until all calls return. The caller must not touch the
  /// pool from inside `fn`.
  void ParallelFor(int count, const std::function<void(int)>& fn)
      QP_EXCLUDES(mu_);

  /// Lane-aware ParallelFor. Background batches still block the caller,
  /// but queued interactive tasks run first.
  void ParallelFor(Lane lane, int count, const std::function<void(int)>& fn)
      QP_EXCLUDES(mu_);

  /// Installs the lane-wait observer. Must be called before any Submit /
  /// ParallelFor: once a task has been enqueued, workers read the
  /// observer outside the lock (set-once-before-work is what makes that
  /// safe), so a late install is a contract violation — it is reported
  /// through QP_CONTRACT_ASSERT and refused.
  void SetLaneWaitObserver(LaneWaitObserver observer) QP_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The hardware concurrency, with a sane floor of 1.
  static int DefaultThreads();

 private:
  struct Task {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  static constexpr int kNumLanes = 2;

  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<Task> queues_[kNumLanes] QP_GUARDED_BY(mu_);
  int in_flight_ QP_GUARDED_BY(mu_) = 0;  // queued + running, both lanes
  bool shutdown_ QP_GUARDED_BY(mu_) = false;
  /// Flipped by the first Submit / ParallelFor and never cleared; arms
  /// the SetLaneWaitObserver set-once-before-work contract.
  bool work_ever_submitted_ QP_GUARDED_BY(mu_) = false;
  /// Written only under mu_ and only while `work_ever_submitted_` is
  /// false; workers copy a pointer to it inside the dequeue critical
  /// section and invoke through that copy outside the lock — safe because
  /// every dequeue happens-after the install.
  LaneWaitObserver lane_wait_observer_ QP_GUARDED_BY(mu_);
  /// Written only during construction, joined only in the destructor; no
  /// concurrent mutation, so deliberately unguarded.
  std::vector<std::thread> workers_;  // NOLINT(guarded-by-coverage)
};

}  // namespace qp

#endif  // QP_UTIL_THREAD_POOL_H_
