#ifndef QP_UTIL_THREAD_POOL_H_
#define QP_UTIL_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "qp/util/thread_annotations.h"

namespace qp {

/// A fixed-size thread pool with a single shared FIFO queue (no work
/// stealing: pricing tasks are coarse enough that a shared queue never
/// becomes the bottleneck). Tasks must not throw.
///
/// Usage:
///   ThreadPool pool(8);
///   pool.ParallelFor(n, [&](int i) { out[i] = Price(queries[i]); });
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task) QP_EXCLUDES(mu_);

  /// Blocks until every submitted task has finished running.
  void Wait() QP_EXCLUDES(mu_);

  /// Runs fn(0) .. fn(count - 1) across the pool and blocks until all
  /// calls return. The caller must not touch the pool from inside `fn`.
  void ParallelFor(int count, const std::function<void(int)>& fn)
      QP_EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// The hardware concurrency, with a sane floor of 1.
  static int DefaultThreads();

 private:
  void WorkerLoop();

  Mutex mu_;
  CondVar work_available_;
  CondVar all_done_;
  std::deque<std::function<void()>> queue_ QP_GUARDED_BY(mu_);
  int in_flight_ QP_GUARDED_BY(mu_) = 0;  // queued + currently running
  bool shutdown_ QP_GUARDED_BY(mu_) = false;
  /// Written only during construction, joined only in the destructor; no
  /// concurrent mutation, so deliberately unguarded.
  std::vector<std::thread> workers_;  // NOLINT(guarded-by-coverage)
};

}  // namespace qp

#endif  // QP_UTIL_THREAD_POOL_H_
