#ifndef QP_UTIL_STATUS_H_
#define QP_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace qp {

/// Error codes used across the library. The library never throws across its
/// public API; fallible operations return `Status` or `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kResourceExhausted = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kDeadlineExceeded = 8,
};

/// Human-readable name of a status code ("InvalidArgument", ...).
std::string_view StatusCodeName(StatusCode code);

/// A lightweight success-or-error value, in the style used by most
/// production database engines (RocksDB, Arrow).
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

}  // namespace qp

/// Evaluates `expr` (a Status expression) and returns it from the enclosing
/// function if it is not OK.
#define QP_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::qp::Status qp_status_tmp_ = (expr);         \
    if (!qp_status_tmp_.ok()) return qp_status_tmp_; \
  } while (0)

#endif  // QP_UTIL_STATUS_H_
