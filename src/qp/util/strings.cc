#include "qp/util/strings.h"

#include <cctype>

namespace qp {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

std::vector<std::string> SplitAndTrim(std::string_view text, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.emplace_back(Trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() &&
         text.substr(0, prefix.size()) == prefix;
}

}  // namespace qp
