#ifndef QP_UTIL_CONTRACT_H_
#define QP_UTIL_CONTRACT_H_

#include <string>

// Dependency-inversion seam for contracts stated inside qp/util itself.
//
// qp/util is the bottom code layer (tools/check_layering.py), so it cannot
// include qp/check/check.h — yet Result's hard contracts (no OK status
// without a value, no value() on an error) must go through the same
// QP_CHECK_LEVEL machinery as every other contract in the tree. This
// header declares that machinery's entry points; qp/check/check.cc
// provides the definitions, and the static library links the seam shut.
// QP_CONTRACT_ASSERT expands exactly like QP_ASSERT (qp/check/check.h) —
// the two redeclarations below must stay signature-identical with it.
//
// Everything outside qp/util keeps using QP_ASSERT / QP_INVARIANT.

namespace qp {
namespace check_internal {

/// True when checks should run (QP_CHECK_LEVEL != off). Defined in
/// qp/check/check.cc.
bool CheckEnabled();

/// Records one failed check (log + count, abort at level kAbort). Defined
/// in qp/check/check.cc.
void ReportFailure(const char* kind, const char* condition, const char* file,
                   int line, const std::string& detail);

}  // namespace check_internal
}  // namespace qp

/// QP_ASSERT for the util layer: identical semantics, lower-layer header.
#define QP_CONTRACT_ASSERT(cond, detail)                                   \
  do {                                                                     \
    if (::qp::check_internal::CheckEnabled() && !(cond)) {                 \
      ::qp::check_internal::ReportFailure("QP_ASSERT", #cond, __FILE__,    \
                                          __LINE__, (detail));             \
    }                                                                      \
  } while (0)

#endif  // QP_UTIL_CONTRACT_H_
