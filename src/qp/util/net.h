#ifndef QP_UTIL_NET_H_
#define QP_UTIL_NET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "qp/util/result.h"

namespace qp {

/// Minimal POSIX TCP layer for the pricing server: an RAII socket, the
/// listen/connect/accept trio, interruptible readiness polling, and the
/// length-prefixed frame transport qpricerd speaks (qp/server/wire.h
/// defines what goes *inside* a frame; this file only moves bytes).
///
/// Blocking I/O throughout. Concurrency comes from the server's worker
/// pool (one connection per task), not from nonblocking multiplexing; a
/// handler that must also watch a stop flag polls with WaitReadable
/// before committing to a blocking read. All calls retry EINTR
/// internally and never raise SIGPIPE (sends use MSG_NOSIGNAL).

/// Move-only owner of a socket file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Closes the descriptor now (idempotent; also run by the destructor).
  void Close();

 private:
  int fd_ = -1;
};

/// Opens a listening IPv4 socket on 127.0.0.1:`port` (0 = ephemeral;
/// LocalPort reports the bound port). SO_REUSEADDR is set so a restarted
/// daemon does not trip over TIME_WAIT.
Result<Socket> TcpListen(uint16_t port, int backlog = 64);

/// The port a socket is bound to (resolves port 0 after TcpListen).
Result<uint16_t> LocalPort(const Socket& socket);

/// Connects to `host`:`port` (numeric IPv4 dotted quad, e.g. "127.0.0.1").
Result<Socket> TcpConnect(const std::string& host, uint16_t port);

/// Accepts one pending connection from a listening socket (blocking; poll
/// with WaitReadable first to keep an accept loop interruptible).
Result<Socket> Accept(const Socket& listener);

/// Bounds every subsequent blocking send on `socket` to `timeout_ms`
/// (SO_SNDTIMEO). A peer that connects but never reads eventually fills
/// its receive window and our send buffer; with a timeout the stalled
/// write fails instead of parking the writing thread forever — the
/// server applies this to every accepted connection so one unresponsive
/// client cannot wedge the accept thread or a worker.
Status SetSendTimeout(const Socket& socket, int timeout_ms);

/// Half-closes the write side (shutdown(SHUT_WR)): flushes buffered
/// output and sends FIN while the read side stays open. The lingering
/// close used on the shed path — close(2) on a socket whose receive
/// buffer still holds the peer's unread request answers with RST, which
/// can destroy the in-flight error frame before the peer reads it.
/// After ShutdownWrite, drain with DrainReadable until EOF, then close.
Status ShutdownWrite(const Socket& socket);

/// Discards whatever is currently readable without blocking. Returns
/// true when the peer is finished (clean EOF or a hard error — safe to
/// close without risking an RST), false when the stream is merely idle
/// and more bytes may still arrive.
Result<bool> DrainReadable(const Socket& socket);

/// True when `socket` has readable data (or a pending EOF / error) within
/// `timeout_ms`; false on timeout. For a listener, "readable" means a
/// connection is waiting to be accepted.
Result<bool> WaitReadable(const Socket& socket, int timeout_ms);

/// Polls every socket in `sockets` at once and returns the indices (into
/// `sockets`) that are readable within `timeout_ms`; empty on timeout.
/// The reactor's primitive: one poll(2) call watches every idle
/// connection plus the wake pipe.
Result<std::vector<size_t>> WaitAnyReadable(
    const std::vector<const Socket*>& sockets, int timeout_ms);

/// Creates a self-wake pipe: writing a byte to `writer` makes `reader`
/// readable, which unblocks a WaitAnyReadable that includes `reader`.
/// The read end is nonblocking so DrainWakePipe can swallow any number of
/// coalesced wakes without stalling.
Status OpenWakePipe(Socket* reader, Socket* writer);

/// Makes the paired reader readable. Uses plain write(2) — the wake pipe
/// is not a socket, so send(MSG_NOSIGNAL) would fail with ENOTSOCK.
/// Dropping the wake on a full pipe is fine: the reader is already
/// pending wake-up.
void WakePipe(const Socket& writer);

/// Consumes all pending wake bytes (nonblocking).
void DrainWakePipe(const Socket& reader);

/// Writes all `size` bytes, looping over partial writes.
Status WriteFull(const Socket& socket, const void* data, size_t size);

/// Reads exactly `size` bytes. Returns false on a clean EOF *before the
/// first byte* (peer closed between messages); EOF mid-buffer is an error
/// (truncated stream).
Result<bool> ReadFull(const Socket& socket, void* data, size_t size);

/// One transport frame: a type tag and an opaque payload. On the wire:
///
///   uint32  length   (big-endian; counts the type byte + payload)
///   uint8   type
///   bytes   payload  (length - 1 bytes)
struct Frame {
  uint8_t type = 0;
  std::string payload;
};

/// Frames larger than this are refused on read (a garbage length prefix
/// must not allocate gigabytes) and on write (the peer would refuse them).
inline constexpr uint32_t kDefaultMaxFrameBytes = 1 << 20;

/// Writes one frame.
Status WriteFrame(const Socket& socket, uint8_t type,
                  std::string_view payload,
                  uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Reads one frame; nullopt on clean EOF at a frame boundary.
Result<std::optional<Frame>> ReadFrame(
    const Socket& socket, uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

/// Reads one frame into `out`, reusing its payload capacity (the serving
/// hot path reads thousands of frames per connection; reallocating the
/// payload each time shows up in the profile). Returns false on clean EOF
/// at a frame boundary, true when `out` holds a frame.
Result<bool> ReadFrameInto(const Socket& socket, uint32_t max_frame_bytes,
                           Frame* out);

}  // namespace qp

#endif  // QP_UTIL_NET_H_
