#ifndef QP_UTIL_STRINGS_H_
#define QP_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace qp {

/// Joins `parts` with `sep` ("a", "b" -> "a,b").
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep`, trimming ASCII whitespace from each piece.
/// Empty pieces are kept.
std::vector<std::string> SplitAndTrim(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

/// True if `text` starts with `prefix`.
bool StartsWith(std::string_view text, std::string_view prefix);

}  // namespace qp

#endif  // QP_UTIL_STRINGS_H_
