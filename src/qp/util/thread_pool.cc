#include "qp/util/thread_pool.h"

#include <algorithm>

namespace qp {

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  if (count <= 0) return;
  // One task per index: pricing work items are heavy and heterogeneous
  // (micro- to milliseconds each), so per-index scheduling doubles as load
  // balancing without chunking heuristics. The whole batch is enqueued
  // under one lock with one wake pass: per-task Submit would pay a futex
  // wake per index once the pool's workers are parked on the condition
  // variable, which dominates batches of cache-hit-sized tasks.
  {
    MutexLock lock(&mu_);
    for (int i = 0; i < count; ++i) {
      queue_.push_back([&fn, i] { fn(i); });
    }
    in_flight_ += count;
  }
  if (count >= static_cast<int>(workers_.size())) {
    work_available_.NotifyAll();
  } else {
    for (int i = 0; i < count; ++i) work_available_.NotifyOne();
  }
  Wait();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queue_.empty()) work_available_.Wait(&mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace qp
