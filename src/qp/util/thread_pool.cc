#include "qp/util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace qp {
namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(Lane::kInteractive, std::move(task));
}

void ThreadPool::Submit(Lane lane, std::function<void()> task) {
  Task item{std::move(task),
            lane_wait_observer_ ? MonotonicNowNs() : uint64_t{0}};
  {
    MutexLock lock(&mu_);
    queues_[static_cast<int>(lane)].push_back(std::move(item));
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  ParallelFor(Lane::kInteractive, count, fn);
}

void ThreadPool::ParallelFor(Lane lane, int count,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  // One task per index: pricing work items are heavy and heterogeneous
  // (micro- to milliseconds each), so per-index scheduling doubles as load
  // balancing without chunking heuristics. The whole batch is enqueued
  // under one lock with one wake pass: per-task Submit would pay a futex
  // wake per index once the pool's workers are parked on the condition
  // variable, which dominates batches of cache-hit-sized tasks.
  const uint64_t enqueue_ns =
      lane_wait_observer_ ? MonotonicNowNs() : uint64_t{0};
  {
    MutexLock lock(&mu_);
    std::deque<Task>& queue = queues_[static_cast<int>(lane)];
    for (int i = 0; i < count; ++i) {
      queue.push_back(Task{[&fn, i] { fn(i); }, enqueue_ns});
    }
    in_flight_ += count;
  }
  if (count >= static_cast<int>(workers_.size())) {
    work_available_.NotifyAll();
  } else {
    for (int i = 0; i < count; ++i) work_available_.NotifyOne();
  }
  Wait();
}

void ThreadPool::SetLaneWaitObserver(LaneWaitObserver observer) {
  lane_wait_observer_ = std::move(observer);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    Lane lane = Lane::kInteractive;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queues_[0].empty() && queues_[1].empty()) {
        work_available_.Wait(&mu_);
      }
      // Interactive first; background only when the interactive lane is
      // drained. Shutdown still drains both lanes before workers exit.
      if (!queues_[0].empty()) {
        lane = Lane::kInteractive;
      } else if (!queues_[1].empty()) {
        lane = Lane::kBackground;
      } else {
        return;  // shutdown with both lanes drained
      }
      std::deque<Task>& queue = queues_[static_cast<int>(lane)];
      task = std::move(queue.front());
      queue.pop_front();
    }
    if (lane_wait_observer_ && task.enqueue_ns != 0) {
      uint64_t now = MonotonicNowNs();
      lane_wait_observer_(lane,
                          now > task.enqueue_ns ? now - task.enqueue_ns : 0);
    }
    task.fn();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace qp
