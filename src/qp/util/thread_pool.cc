#include "qp/util/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "qp/util/contract.h"

namespace qp {
namespace {

uint64_t MonotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    shutdown_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  Submit(Lane::kInteractive, std::move(task));
}

void ThreadPool::Submit(Lane lane, std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    work_ever_submitted_ = true;
    queues_[static_cast<int>(lane)].push_back(
        Task{std::move(task),
             lane_wait_observer_ ? MonotonicNowNs() : uint64_t{0}});
    ++in_flight_;
  }
  work_available_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (in_flight_ != 0) all_done_.Wait(&mu_);
}

void ThreadPool::ParallelFor(int count, const std::function<void(int)>& fn) {
  ParallelFor(Lane::kInteractive, count, fn);
}

void ThreadPool::ParallelFor(Lane lane, int count,
                             const std::function<void(int)>& fn) {
  if (count <= 0) return;
  // One task per index: pricing work items are heavy and heterogeneous
  // (micro- to milliseconds each), so per-index scheduling doubles as load
  // balancing without chunking heuristics. The whole batch is enqueued
  // under one lock with one wake pass: per-task Submit would pay a futex
  // wake per index once the pool's workers are parked on the condition
  // variable, which dominates batches of cache-hit-sized tasks.
  {
    MutexLock lock(&mu_);
    work_ever_submitted_ = true;
    const uint64_t enqueue_ns =
        lane_wait_observer_ ? MonotonicNowNs() : uint64_t{0};
    std::deque<Task>& queue = queues_[static_cast<int>(lane)];
    for (int i = 0; i < count; ++i) {
      queue.push_back(Task{[&fn, i] { fn(i); }, enqueue_ns});
    }
    in_flight_ += count;
  }
  if (count >= static_cast<int>(workers_.size())) {
    work_available_.NotifyAll();
  } else {
    for (int i = 0; i < count; ++i) work_available_.NotifyOne();
  }
  Wait();
}

void ThreadPool::SetLaneWaitObserver(LaneWaitObserver observer) {
  MutexLock lock(&mu_);
  QP_CONTRACT_ASSERT(!work_ever_submitted_,
                     "SetLaneWaitObserver after the first Submit / "
                     "ParallelFor: workers may already be reading the "
                     "observer outside the lock");
  if (work_ever_submitted_) return;  // refused: too late to install safely
  lane_wait_observer_ = std::move(observer);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    Task task;
    Lane lane = Lane::kInteractive;
    const LaneWaitObserver* observer = nullptr;
    {
      MutexLock lock(&mu_);
      while (!shutdown_ && queues_[0].empty() && queues_[1].empty()) {
        work_available_.Wait(&mu_);
      }
      // Interactive first; background only when the interactive lane is
      // drained. Shutdown still drains both lanes before workers exit.
      if (!queues_[0].empty()) {
        lane = Lane::kInteractive;
      } else if (!queues_[1].empty()) {
        lane = Lane::kBackground;
      } else {
        return;  // shutdown with both lanes drained
      }
      std::deque<Task>& queue = queues_[static_cast<int>(lane)];
      task = std::move(queue.front());
      queue.pop_front();
      // Capture the observer while holding mu_; invoking through the
      // pointer outside the lock is safe because the observer is frozen
      // before the first task was ever enqueued.
      if (lane_wait_observer_) observer = &lane_wait_observer_;
    }
    if (observer != nullptr && task.enqueue_ns != 0) {
      uint64_t now = MonotonicNowNs();
      (*observer)(lane,
                  now > task.enqueue_ns ? now - task.enqueue_ns : 0);
    }
    task.fn();
    {
      MutexLock lock(&mu_);
      if (--in_flight_ == 0) all_done_.NotifyAll();
    }
  }
}

int ThreadPool::DefaultThreads() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

}  // namespace qp
