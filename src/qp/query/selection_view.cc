#include "qp/query/selection_view.h"

namespace qp {

std::string SelectionViewToString(const Catalog& catalog,
                                  const SelectionView& view) {
  return "σ" + catalog.schema().AttrToString(view.attr) + "=" +
         catalog.dict().Get(view.value).ToString();
}

}  // namespace qp
