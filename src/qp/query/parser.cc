#include "qp/query/parser.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

namespace qp {
namespace {

enum class TokKind {
  kIdent,
  kNumber,
  kString,
  kLParen,
  kRParen,
  kComma,
  kTurnstile,  // :-
  kOp,         // = != < <= > >=
  kDot,
  kEnd,
};

struct Token {
  TokKind kind;
  std::string text;
  size_t offset;
};

class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    while (true) {
      SkipSpace();
      if (pos_ >= text_.size()) {
        out.push_back({TokKind::kEnd, "", pos_});
        return out;
      }
      char c = text_[pos_];
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        out.push_back(LexIdent());
      } else if (std::isdigit(static_cast<unsigned char>(c)) ||
                 (c == '-' && pos_ + 1 < text_.size() &&
                  std::isdigit(static_cast<unsigned char>(text_[pos_ + 1])))) {
        out.push_back(LexNumber());
      } else if (c == '\'' || c == '"') {
        auto tok = LexString();
        if (!tok.ok()) return tok.status();
        out.push_back(*tok);
      } else if (c == '(') {
        out.push_back({TokKind::kLParen, "(", pos_++});
      } else if (c == ')') {
        out.push_back({TokKind::kRParen, ")", pos_++});
      } else if (c == ',') {
        out.push_back({TokKind::kComma, ",", pos_++});
      } else if (c == '.') {
        out.push_back({TokKind::kDot, ".", pos_++});
      } else if (c == ':' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '-') {
        out.push_back({TokKind::kTurnstile, ":-", pos_});
        pos_ += 2;
      } else if (c == '=' || c == '<' || c == '>' || c == '!') {
        out.push_back(LexOp());
      } else {
        return Status::InvalidArgument("unexpected character '" +
                                       std::string(1, c) + "' at offset " +
                                       std::to_string(pos_));
      }
    }
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Token LexIdent() {
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return {TokKind::kIdent, std::string(text_.substr(start, pos_ - start)),
            start};
  }

  Token LexNumber() {
    size_t start = pos_;
    if (text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    return {TokKind::kNumber, std::string(text_.substr(start, pos_ - start)),
            start};
  }

  Result<Token> LexString() {
    char quote = text_[pos_];
    size_t start = ++pos_;
    while (pos_ < text_.size() && text_[pos_] != quote) ++pos_;
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("unterminated string literal");
    }
    Token tok{TokKind::kString,
              std::string(text_.substr(start, pos_ - start)), start - 1};
    ++pos_;  // closing quote
    return tok;
  }

  Token LexOp() {
    size_t start = pos_;
    char c = text_[pos_++];
    std::string op(1, c);
    if (pos_ < text_.size() && text_[pos_] == '=' &&
        (c == '<' || c == '>' || c == '!')) {
      op += '=';
      ++pos_;
    }
    return {TokKind::kOp, op, start};
  }

  std::string_view text_;
  size_t pos_ = 0;
};

class Parser {
 public:
  Parser(const Schema& schema, std::vector<Token> tokens)
      : schema_(schema), tokens_(std::move(tokens)) {}

  Result<ConjunctiveQuery> Parse() {
    // Head.
    if (Peek().kind != TokKind::kIdent) return Err("expected query name");
    query_.set_name(Take().text);
    QP_RETURN_IF_ERROR(Expect(TokKind::kLParen, "("));
    std::vector<std::string> head_names;
    if (Peek().kind != TokKind::kRParen) {
      while (true) {
        if (Peek().kind != TokKind::kIdent) {
          return Err("expected head variable");
        }
        head_names.push_back(Take().text);
        if (Peek().kind != TokKind::kComma) break;
        Take();
      }
    }
    QP_RETURN_IF_ERROR(Expect(TokKind::kRParen, ")"));
    QP_RETURN_IF_ERROR(Expect(TokKind::kTurnstile, ":-"));

    // Body.
    while (true) {
      QP_RETURN_IF_ERROR(ParseBodyItem());
      if (Peek().kind == TokKind::kComma) {
        Take();
        continue;
      }
      break;
    }
    if (Peek().kind == TokKind::kDot) Take();
    if (Peek().kind != TokKind::kEnd) return Err("trailing input");

    // Resolve head variables (they must occur in the body).
    for (const std::string& name : head_names) {
      VarId v = query_.FindVar(name);
      if (v < 0) {
        return Status::InvalidArgument("head variable '" + name +
                                       "' does not occur in the body");
      }
      query_.AddHeadVar(v);
    }
    if (query_.atoms().empty()) {
      return Status::InvalidArgument("query has no relational atoms");
    }
    QP_RETURN_IF_ERROR(ResolvePredicates());
    return std::move(query_);
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  Token Take() { return tokens_[pos_++]; }

  Status Expect(TokKind kind, std::string_view what) {
    if (Peek().kind != kind) {
      return Status::InvalidArgument("expected '" + std::string(what) +
                                     "' at offset " +
                                     std::to_string(Peek().offset));
    }
    Take();
    return Status::Ok();
  }

  Status Err(std::string_view msg) const {
    return Status::InvalidArgument(std::string(msg) + " at offset " +
                                   std::to_string(Peek().offset));
  }

  VarId GetOrAddVar(const std::string& name) {
    VarId v = query_.FindVar(name);
    if (v >= 0) return v;
    return query_.AddVar(name);
  }

  Status ParseBodyItem() {
    if (Peek().kind != TokKind::kIdent) {
      return Err("expected atom or comparison");
    }
    Token name = Take();
    if (Peek().kind == TokKind::kLParen) return ParseAtom(name.text);
    if (Peek().kind == TokKind::kOp) return ParseComparison(name.text);
    return Err("expected '(' or comparison operator");
  }

  Status ParseAtom(const std::string& rel_name) {
    auto rel = schema_.FindRelation(rel_name);
    if (!rel.ok()) return rel.status();
    Take();  // (
    std::vector<Term> args;
    if (Peek().kind != TokKind::kRParen) {
      while (true) {
        Token t = Take();
        if (t.kind == TokKind::kIdent) {
          args.push_back(Term::MakeVar(GetOrAddVar(t.text)));
        } else if (t.kind == TokKind::kNumber) {
          args.push_back(Term::MakeConst(Value::Int(std::atoll(t.text.c_str()))));
        } else if (t.kind == TokKind::kString) {
          args.push_back(Term::MakeConst(Value::Str(t.text)));
        } else {
          return Status::InvalidArgument("expected term at offset " +
                                         std::to_string(t.offset));
        }
        if (Peek().kind != TokKind::kComma) break;
        Take();
      }
    }
    QP_RETURN_IF_ERROR(Expect(TokKind::kRParen, ")"));
    if (static_cast<int>(args.size()) != schema_.arity(*rel)) {
      return Status::InvalidArgument(
          "atom " + rel_name + " has " + std::to_string(args.size()) +
          " arguments, relation has arity " +
          std::to_string(schema_.arity(*rel)));
    }
    query_.AddAtom(*rel, std::move(args));
    return Status::Ok();
  }

  Status ParseComparison(const std::string& var_name) {
    Token op_tok = Take();
    CmpOp op;
    if (op_tok.text == "=") {
      op = CmpOp::kEq;
    } else if (op_tok.text == "!=") {
      op = CmpOp::kNe;
    } else if (op_tok.text == "<") {
      op = CmpOp::kLt;
    } else if (op_tok.text == "<=") {
      op = CmpOp::kLe;
    } else if (op_tok.text == ">") {
      op = CmpOp::kGt;
    } else if (op_tok.text == ">=") {
      op = CmpOp::kGe;
    } else {
      return Status::InvalidArgument("unknown operator '" + op_tok.text + "'");
    }
    Token rhs = Take();
    Value constant;
    if (rhs.kind == TokKind::kNumber) {
      constant = Value::Int(std::atoll(rhs.text.c_str()));
    } else if (rhs.kind == TokKind::kString) {
      constant = Value::Str(rhs.text);
    } else {
      return Status::InvalidArgument(
          "comparison right-hand side must be a constant");
    }
    // Note: the variable must occur in some atom; checked after parsing in
    // ParseQuery via FindVar during head resolution is not enough, so check
    // lazily here by requiring that the variable already exists or will be
    // introduced by a later atom; we defer validation to the end.
    pending_predicates_.push_back({var_name, op, std::move(constant)});
    return Status::Ok();
  }

  /// Resolves comparisons after all atoms are parsed (the variable may be
  /// introduced by an atom that appears after the comparison).
  Status ResolvePredicates() {
    for (auto& [name, op, constant] : pending_predicates_) {
      VarId v = query_.FindVar(name);
      if (v < 0) {
        return Status::InvalidArgument(
            "comparison variable '" + name + "' does not occur in any atom");
      }
      query_.AddPredicate(UnaryPredicate{v, op, constant});
    }
    return Status::Ok();
  }

 private:
  struct PendingPredicate {
    std::string var_name;
    CmpOp op;
    Value rhs;
  };

  const Schema& schema_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  ConjunctiveQuery query_;
  std::vector<PendingPredicate> pending_predicates_;
};

}  // namespace

Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    std::string_view text) {
  Lexer lexer(text);
  auto tokens = lexer.Tokenize();
  if (!tokens.ok()) return tokens.status();
  Parser parser(schema, std::move(*tokens));
  return parser.Parse();
}

}  // namespace qp
