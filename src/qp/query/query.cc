#include "qp/query/query.h"

#include <algorithm>

namespace qp {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool UnaryPredicate::Eval(const Value& lhs) const {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return !(lhs == rhs);
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CmpOp::kGt:
      return rhs < lhs;
    case CmpOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

VarId ConjunctiveQuery::AddVar(std::string name) {
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(std::move(name));
  return id;
}

VarId ConjunctiveQuery::FindVar(std::string_view name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return -1;
}

bool ConjunctiveQuery::IsFull() const {
  std::set<VarId> head_vars(head_.begin(), head_.end());
  for (VarId v : BodyVars()) {
    if (head_vars.count(v) == 0) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasSelfJoin() const {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    for (size_t j = i + 1; j < atoms_.size(); ++j) {
      if (atoms_[i].rel == atoms_[j].rel) return true;
    }
  }
  return false;
}

std::vector<VarId> ConjunctiveQuery::VarsOfAtom(int idx) const {
  std::vector<VarId> out;
  for (const Term& t : atoms_[idx].args) {
    if (t.is_var() && std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  }
  return out;
}

std::set<VarId> ConjunctiveQuery::BodyVars() const {
  std::set<VarId> out;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) out.insert(t.var);
    }
  }
  return out;
}

std::vector<std::vector<int>> ConjunctiveQuery::ConnectedComponents() const {
  int n = static_cast<int>(atoms_.size());
  std::vector<int> comp(n, -1);
  std::vector<std::vector<int>> out;
  for (int start = 0; start < n; ++start) {
    if (comp[start] != -1) continue;
    int id = static_cast<int>(out.size());
    out.emplace_back();
    std::vector<int> stack{start};
    comp[start] = id;
    while (!stack.empty()) {
      int a = stack.back();
      stack.pop_back();
      out[id].push_back(a);
      std::vector<VarId> vars_a = VarsOfAtom(a);
      for (int b = 0; b < n; ++b) {
        if (comp[b] != -1) continue;
        std::vector<VarId> vars_b = VarsOfAtom(b);
        bool shares = false;
        for (VarId v : vars_a) {
          if (std::find(vars_b.begin(), vars_b.end(), v) != vars_b.end()) {
            shares = true;
            break;
          }
        }
        if (shares) {
          comp[b] = id;
          stack.push_back(b);
        }
      }
    }
    std::sort(out[id].begin(), out[id].end());
  }
  return out;
}

std::set<VarId> ConjunctiveQuery::HangingVars() const {
  // Count occurrences of each variable across all atom argument positions.
  std::vector<int> occurrences(var_names_.size(), 0);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) ++occurrences[t.var];
    }
  }
  std::set<VarId> out;
  for (VarId v = 0; v < static_cast<VarId>(var_names_.size()); ++v) {
    if (occurrences[v] == 1) out.insert(v);
  }
  return out;
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += var_names_[head_[i]];
  }
  out += ") :- ";
  bool first = true;
  for (const Atom& a : atoms_) {
    if (!first) out += ", ";
    first = false;
    out += schema.relation_name(a.rel) + "(";
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (i > 0) out += ",";
      const Term& t = a.args[i];
      out += t.is_var() ? var_names_[t.var] : t.constant.ToString();
    }
    out += ")";
  }
  for (const UnaryPredicate& p : predicates_) {
    if (!first) out += ", ";
    first = false;
    out += var_names_[p.var] + " " + std::string(CmpOpName(p.op)) + " " +
           p.rhs.ToString();
  }
  return out;
}

ConjunctiveQuery IdentityQuery(const Schema& schema, RelationId rel) {
  ConjunctiveQuery q(schema.relation_name(rel) + "_all");
  std::vector<Term> args;
  for (int p = 0; p < schema.arity(rel); ++p) {
    VarId v = q.AddVar("x" + std::to_string(p));
    q.AddHeadVar(v);
    args.push_back(Term::MakeVar(v));
  }
  q.AddAtom(rel, std::move(args));
  return q;
}

QueryBundle IdentityBundle(const Schema& schema) {
  QueryBundle b;
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    ConjunctiveQuery q = IdentityQuery(schema, r);
    b.queries.push_back(UnionQuery{q.name(), {q}});
  }
  return b;
}

}  // namespace qp
