#include "qp/query/query.h"

#include <algorithm>

namespace qp {

std::string_view CmpOpName(CmpOp op) {
  switch (op) {
    case CmpOp::kEq:
      return "=";
    case CmpOp::kNe:
      return "!=";
    case CmpOp::kLt:
      return "<";
    case CmpOp::kLe:
      return "<=";
    case CmpOp::kGt:
      return ">";
    case CmpOp::kGe:
      return ">=";
  }
  return "?";
}

bool UnaryPredicate::Eval(const Value& lhs) const {
  switch (op) {
    case CmpOp::kEq:
      return lhs == rhs;
    case CmpOp::kNe:
      return !(lhs == rhs);
    case CmpOp::kLt:
      return lhs < rhs;
    case CmpOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CmpOp::kGt:
      return rhs < lhs;
    case CmpOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

VarId ConjunctiveQuery::AddVar(std::string name) {
  VarId id = static_cast<VarId>(var_names_.size());
  var_names_.push_back(std::move(name));
  return id;
}

VarId ConjunctiveQuery::FindVar(std::string_view name) const {
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (var_names_[i] == name) return static_cast<VarId>(i);
  }
  return -1;
}

bool ConjunctiveQuery::IsFull() const {
  std::set<VarId> head_vars(head_.begin(), head_.end());
  for (VarId v : BodyVars()) {
    if (head_vars.count(v) == 0) return false;
  }
  return true;
}

bool ConjunctiveQuery::HasSelfJoin() const {
  for (size_t i = 0; i < atoms_.size(); ++i) {
    for (size_t j = i + 1; j < atoms_.size(); ++j) {
      if (atoms_[i].rel == atoms_[j].rel) return true;
    }
  }
  return false;
}

std::vector<VarId> ConjunctiveQuery::VarsOfAtom(int idx) const {
  std::vector<VarId> out;
  for (const Term& t : atoms_[idx].args) {
    if (t.is_var() && std::find(out.begin(), out.end(), t.var) == out.end()) {
      out.push_back(t.var);
    }
  }
  return out;
}

std::set<VarId> ConjunctiveQuery::BodyVars() const {
  std::set<VarId> out;
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) out.insert(t.var);
    }
  }
  return out;
}

std::vector<std::vector<int>> ConjunctiveQuery::ConnectedComponents() const {
  int n = static_cast<int>(atoms_.size());
  std::vector<int> comp(n, -1);
  std::vector<std::vector<int>> out;
  for (int start = 0; start < n; ++start) {
    if (comp[start] != -1) continue;
    int id = static_cast<int>(out.size());
    out.emplace_back();
    std::vector<int> stack{start};
    comp[start] = id;
    while (!stack.empty()) {
      int a = stack.back();
      stack.pop_back();
      out[id].push_back(a);
      std::vector<VarId> vars_a = VarsOfAtom(a);
      for (int b = 0; b < n; ++b) {
        if (comp[b] != -1) continue;
        std::vector<VarId> vars_b = VarsOfAtom(b);
        bool shares = false;
        for (VarId v : vars_a) {
          if (std::find(vars_b.begin(), vars_b.end(), v) != vars_b.end()) {
            shares = true;
            break;
          }
        }
        if (shares) {
          comp[b] = id;
          stack.push_back(b);
        }
      }
    }
    std::sort(out[id].begin(), out[id].end());
  }
  return out;
}

std::set<VarId> ConjunctiveQuery::HangingVars() const {
  // Count occurrences of each variable across all atom argument positions.
  std::vector<int> occurrences(var_names_.size(), 0);
  for (const Atom& a : atoms_) {
    for (const Term& t : a.args) {
      if (t.is_var()) ++occurrences[t.var];
    }
  }
  std::set<VarId> out;
  for (VarId v = 0; v < static_cast<VarId>(var_names_.size()); ++v) {
    if (occurrences[v] == 1) out.insert(v);
  }
  return out;
}

std::vector<RelationId> ConjunctiveQuery::ReferencedRelations() const {
  std::vector<RelationId> out;
  for (const Atom& a : atoms_) out.push_back(a.rel);
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string ConjunctiveQuery::Fingerprint() const {
  const int n = num_vars();
  // Initial signature of each variable: where it sits in the head, the
  // multiset of (relation, argument position) occurrences, and its
  // interpreted predicates. All of these survive alpha-renaming.
  std::vector<std::string> sig(n);
  for (VarId v = 0; v < n; ++v) {
    std::string s = "h";
    for (size_t i = 0; i < head_.size(); ++i) {
      if (head_[i] == v) s += std::to_string(i) + ",";
    }
    std::vector<std::string> occ;
    for (const Atom& a : atoms_) {
      for (size_t p = 0; p < a.args.size(); ++p) {
        if (a.args[p].is_var() && a.args[p].var == v) {
          occ.push_back(std::to_string(a.rel) + "." + std::to_string(p));
        }
      }
    }
    std::sort(occ.begin(), occ.end());
    s += "|o";
    for (const std::string& o : occ) s += o + ",";
    std::vector<std::string> preds;
    for (const UnaryPredicate& p : predicates_) {
      if (p.var == v) {
        preds.push_back(std::string(CmpOpName(p.op)) + p.rhs.ToString());
      }
    }
    std::sort(preds.begin(), preds.end());
    s += "|p";
    for (const std::string& p : preds) s += p + ",";
    sig[v] = std::move(s);
  }

  // Rank = index of the signature among the sorted distinct signatures.
  std::vector<int> rank(n, 0);
  auto rerank = [&] {
    std::vector<std::string> sorted = sig;
    std::sort(sorted.begin(), sorted.end());
    sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
    int distinct = static_cast<int>(sorted.size());
    for (VarId v = 0; v < n; ++v) {
      rank[v] = static_cast<int>(
          std::lower_bound(sorted.begin(), sorted.end(), sig[v]) -
          sorted.begin());
    }
    return distinct;
  };
  int distinct = rerank();

  // Refine with co-occurrence context until the partition stabilizes: a
  // variable's new signature appends, per occurrence, the ranks of the
  // terms it shares an atom with. At most n rounds can split anything.
  for (int round = 0; round < n && distinct < n; ++round) {
    std::vector<std::string> next(n);
    for (VarId v = 0; v < n; ++v) {
      std::vector<std::string> ctx;
      for (const Atom& a : atoms_) {
        for (size_t p = 0; p < a.args.size(); ++p) {
          if (!a.args[p].is_var() || a.args[p].var != v) continue;
          std::string c = std::to_string(a.rel) + "." + std::to_string(p) +
                          ":";
          // Append piecewise: `"r" + std::string{...}` trips GCC 12's
          // spurious -Wrestrict (PR 105329) under -Werror.
          for (const Term& t : a.args) {
            c += t.is_var() ? 'r' : 'c';
            c += t.is_var() ? std::to_string(rank[t.var])
                            : t.constant.ToString();
            c += ',';
          }
          ctx.push_back(std::move(c));
        }
      }
      std::sort(ctx.begin(), ctx.end());
      next[v] = std::to_string(rank[v]) + "#";
      for (const std::string& c : ctx) next[v] += c + ";";
    }
    sig = std::move(next);
    int refined = rerank();
    if (refined == distinct) break;
    distinct = refined;
  }

  // Canonical ids: by final rank, declaration order as the tie-break for
  // variables refinement could not distinguish (see header comment).
  std::vector<VarId> order(n);
  for (VarId v = 0; v < n; ++v) order[v] = v;
  std::stable_sort(order.begin(), order.end(),
                   [&](VarId a, VarId b) { return rank[a] < rank[b]; });
  std::vector<int> canonical(n, 0);
  for (int i = 0; i < n; ++i) canonical[order[i]] = i;

  auto term_str = [&](const Term& t) {
    std::string s(1, t.is_var() ? 'v' : 'c');
    s += t.is_var() ? std::to_string(canonical[t.var])
                    : t.constant.ToString();
    return s;
  };
  std::string out = "H:";
  for (VarId v : head_) {
    out += 'v';
    out += std::to_string(canonical[v]);
    out += ',';
  }
  std::vector<std::string> atom_strs;
  for (const Atom& a : atoms_) {
    std::string s = std::to_string(a.rel) + "(";
    for (const Term& t : a.args) s += term_str(t) + ",";
    s += ")";
    atom_strs.push_back(std::move(s));
  }
  std::sort(atom_strs.begin(), atom_strs.end());
  out += "|B:";
  for (const std::string& s : atom_strs) out += s + ";";
  std::vector<std::string> pred_strs;
  for (const UnaryPredicate& p : predicates_) {
    std::string s(1, 'v');
    s += std::to_string(canonical[p.var]);
    s += CmpOpName(p.op);
    s += p.rhs.ToString();
    pred_strs.push_back(std::move(s));
  }
  std::sort(pred_strs.begin(), pred_strs.end());
  out += "|P:";
  for (const std::string& s : pred_strs) out += s + ";";
  return out;
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::string out = name_ + "(";
  for (size_t i = 0; i < head_.size(); ++i) {
    if (i > 0) out += ",";
    out += var_names_[head_[i]];
  }
  out += ") :- ";
  bool first = true;
  for (const Atom& a : atoms_) {
    if (!first) out += ", ";
    first = false;
    out += schema.relation_name(a.rel) + "(";
    for (size_t i = 0; i < a.args.size(); ++i) {
      if (i > 0) out += ",";
      const Term& t = a.args[i];
      out += t.is_var() ? var_names_[t.var] : t.constant.ToString();
    }
    out += ")";
  }
  for (const UnaryPredicate& p : predicates_) {
    if (!first) out += ", ";
    first = false;
    out += var_names_[p.var] + " " + std::string(CmpOpName(p.op)) + " " +
           p.rhs.ToString();
  }
  return out;
}

ConjunctiveQuery IdentityQuery(const Schema& schema, RelationId rel) {
  ConjunctiveQuery q(schema.relation_name(rel) + "_all");
  std::vector<Term> args;
  for (int p = 0; p < schema.arity(rel); ++p) {
    std::string var_name = "x";
    var_name += std::to_string(p);
    VarId v = q.AddVar(std::move(var_name));
    q.AddHeadVar(v);
    args.push_back(Term::MakeVar(v));
  }
  q.AddAtom(rel, std::move(args));
  return q;
}

QueryBundle IdentityBundle(const Schema& schema) {
  QueryBundle b;
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    ConjunctiveQuery q = IdentityQuery(schema, r);
    b.queries.push_back(UnionQuery{q.name(), {q}});
  }
  return b;
}

}  // namespace qp
