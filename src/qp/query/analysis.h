#ifndef QP_QUERY_ANALYSIS_H_
#define QP_QUERY_ANALYSIS_H_

#include <optional>
#include <vector>

#include "qp/query/query.h"
#include "qp/util/result.h"

namespace qp {

/// Finds an atom ordering witnessing that `q` is a Generalized Chain Query
/// (Definition 3.6): full CQ without self-joins whose atoms can be ordered
/// so that every proper prefix and its suffix share exactly one variable.
/// Interpreted unary predicates are ignored, as in the paper. Returns
/// std::nullopt if no ordering exists. Queries with more than 20 atoms are
/// rejected (the subset DP is exponential in the atom count, which is part
/// of the *query*, not the data).
///
/// Note: this checks only the ordering property; callers should separately
/// check IsFull() / HasSelfJoin() as required by the definition.
std::optional<std::vector<int>> FindGChQOrder(const ConjunctiveQuery& q);

/// One atom of a chain query in chain order (Definition 3.12), with its
/// entry variable x_i and exit variable x_{i+1}. For unary atoms the entry
/// and exit coincide.
struct ChainLink {
  int atom_idx = -1;
  bool unary = false;
  VarId entry_var = -1;
  VarId exit_var = -1;
  /// Argument position of the entry/exit variable within the atom.
  int entry_pos = -1;
  int exit_pos = -1;
};

/// Validates that `order` arranges the atoms of `q` into a chain query
/// (Definition 3.12): every atom has at most two distinct variables and no
/// constants, consecutive atoms share exactly one variable, and the first
/// and last atoms are unary (have one distinct variable). Returns the links
/// in chain order.
Result<std::vector<ChainLink>> BuildChainLinks(const ConjunctiveQuery& q,
                                               const std::vector<int>& order);

/// Recognizes a cycle query Ck (Theorem 3.15):
/// R1(x1,x2), ..., Rk(xk,x1), k >= 2, without self-joins, constants,
/// interpreted predicates or unary atoms. On success returns the links in
/// cycle order: link i exits into link i+1's entry, and the last link exits
/// into the first link's entry variable.
std::optional<std::vector<ChainLink>> FindCycleOrder(
    const ConjunctiveQuery& q);

}  // namespace qp

#endif  // QP_QUERY_ANALYSIS_H_
