#ifndef QP_QUERY_SELECTION_VIEW_H_
#define QP_QUERY_SELECTION_VIEW_H_

#include <string>

#include "qp/relational/catalog.h"
#include "qp/util/hash.h"

namespace qp {

/// A selection view σ_{R.X=a} (Section 3 "The Views"): all tuples of
/// relation R whose attribute X equals the constant a. The view *identity*
/// lives here in the query layer — determinacy reasons about which views a
/// buyer holds without knowing what they cost; the seller's price map over
/// these views is qp/pricing/price_points.h.
struct SelectionView {
  AttrRef attr;
  ValueId value = 0;

  bool operator==(const SelectionView& other) const {
    return attr == other.attr && value == other.value;
  }
  bool operator<(const SelectionView& other) const {
    if (!(attr == other.attr)) return attr < other.attr;
    return value < other.value;
  }
};

struct SelectionViewHasher {
  size_t operator()(const SelectionView& v) const {
    return HashCombine(AttrRefHasher{}(v.attr),
                       static_cast<size_t>(v.value));
  }
};

/// "σR.X='WA'" display form.
std::string SelectionViewToString(const Catalog& catalog,
                                  const SelectionView& view);

}  // namespace qp

#endif  // QP_QUERY_SELECTION_VIEW_H_
