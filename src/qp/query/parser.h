#ifndef QP_QUERY_PARSER_H_
#define QP_QUERY_PARSER_H_

#include <string_view>

#include "qp/query/query.h"
#include "qp/relational/schema.h"
#include "qp/util/result.h"

namespace qp {

/// Parses a datalog-style conjunctive query against `schema`.
///
/// Grammar:
///   query      := head ":-" body_item ("," body_item)* "."?
///   head       := NAME "(" [ var ("," var)* ] ")"
///   body_item  := atom | comparison
///   atom       := NAME "(" term ("," term)* ")"
///   term       := IDENT | NUMBER | STRING
///   comparison := IDENT op (NUMBER | STRING)
///   op         := "=" | "!=" | "<" | "<=" | ">" | ">="
///
/// Identifiers in argument positions are variables; numbers and quoted
/// strings ('WA' or "WA") are constants. Examples:
///   Q(x,y) :- R(x), S(x,y), T(y)
///   Boolean() :- R(x,y), x > 10
///   County(n) :- Business(n, 'WA', c), c = 'King'
Result<ConjunctiveQuery> ParseQuery(const Schema& schema,
                                    std::string_view text);

}  // namespace qp

#endif  // QP_QUERY_PARSER_H_
