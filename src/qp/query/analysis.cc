#include "qp/query/analysis.h"

#include <algorithm>
#include <set>

namespace qp {
namespace {

/// Distinct variables of each atom.
std::vector<std::set<VarId>> AtomVarSets(const ConjunctiveQuery& q) {
  std::vector<std::set<VarId>> out;
  out.reserve(q.atoms().size());
  for (size_t i = 0; i < q.atoms().size(); ++i) {
    std::vector<VarId> vars = q.VarsOfAtom(static_cast<int>(i));
    out.emplace_back(vars.begin(), vars.end());
  }
  return out;
}

/// |vars(subset) ∩ vars(complement)| == 1, where subsets are bitmasks.
bool BoundaryIsOne(const std::vector<std::set<VarId>>& atom_vars,
                   uint32_t subset, int m) {
  std::set<VarId> in_vars, out_vars;
  for (int a = 0; a < m; ++a) {
    const auto& vars = atom_vars[a];
    if (subset & (1u << a)) {
      in_vars.insert(vars.begin(), vars.end());
    } else {
      out_vars.insert(vars.begin(), vars.end());
    }
  }
  int shared = 0;
  for (VarId v : in_vars) {
    if (out_vars.count(v) > 0 && ++shared > 1) return false;
  }
  return shared == 1;
}

}  // namespace

std::optional<std::vector<int>> FindGChQOrder(const ConjunctiveQuery& q) {
  const int m = static_cast<int>(q.atoms().size());
  if (m == 0 || m > 20) return std::nullopt;
  if (q.HasSelfJoin()) return std::nullopt;  // Definition 3.6 excludes them
  if (m == 1) return std::vector<int>{0};

  std::vector<std::set<VarId>> atom_vars = AtomVarSets(q);
  const uint32_t full = (1u << m) - 1;

  // feasible[S]: atoms in S can form a valid order prefix; parent[S] is the
  // last atom of one such prefix.
  std::vector<int8_t> feasible(full + 1, 0);
  std::vector<int8_t> parent(full + 1, -1);
  // Precompute which proper subsets have a size-1 boundary.
  std::vector<int8_t> boundary_ok(full + 1, 0);
  for (uint32_t s = 1; s < full; ++s) {
    boundary_ok[s] = BoundaryIsOne(atom_vars, s, m) ? 1 : 0;
  }

  feasible[0] = 1;
  for (uint32_t s = 1; s <= full; ++s) {
    if (s != full && !boundary_ok[s]) continue;
    for (int a = 0; a < m; ++a) {
      if (!(s & (1u << a))) continue;
      if (feasible[s & ~(1u << a)]) {
        feasible[s] = 1;
        parent[s] = static_cast<int8_t>(a);
        break;
      }
    }
  }
  if (!feasible[full]) return std::nullopt;

  std::vector<int> order(m);
  uint32_t s = full;
  for (int i = m - 1; i >= 0; --i) {
    int a = parent[s];
    order[i] = a;
    s &= ~(1u << a);
  }
  return order;
}

Result<std::vector<ChainLink>> BuildChainLinks(const ConjunctiveQuery& q,
                                               const std::vector<int>& order) {
  if (order.empty()) return Status::InvalidArgument("empty chain order");
  std::vector<ChainLink> links;
  links.reserve(order.size());

  auto make_link = [&](int atom_idx) -> Result<ChainLink> {
    const Atom& atom = q.atoms()[atom_idx];
    ChainLink link;
    link.atom_idx = atom_idx;
    std::vector<VarId> vars;
    std::vector<int> first_pos;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      if (!t.is_var()) {
        return Status::InvalidArgument(
            "chain atoms must not contain constants (run normalization "
            "first)");
      }
      auto it = std::find(vars.begin(), vars.end(), t.var);
      if (it == vars.end()) {
        vars.push_back(t.var);
        first_pos.push_back(static_cast<int>(p));
      } else {
        return Status::InvalidArgument(
            "chain atoms must not repeat a variable (run normalization "
            "first)");
      }
    }
    if (vars.size() == 1) {
      link.unary = true;
      link.entry_var = link.exit_var = vars[0];
      link.entry_pos = link.exit_pos = first_pos[0];
    } else if (vars.size() == 2) {
      link.unary = false;
      link.entry_var = vars[0];
      link.entry_pos = first_pos[0];
      link.exit_var = vars[1];
      link.exit_pos = first_pos[1];
    } else {
      return Status::InvalidArgument(
          "chain atoms must have at most two distinct variables");
    }
    return link;
  };

  for (int idx : order) {
    auto link = make_link(idx);
    if (!link.ok()) return link.status();
    links.push_back(*link);
  }

  // Orient links so that consecutive atoms connect on one shared variable.
  if (!links.front().unary) {
    return Status::InvalidArgument("first chain atom must be unary");
  }
  if (!links.back().unary) {
    return Status::InvalidArgument("last chain atom must be unary");
  }
  for (size_t i = 1; i < links.size(); ++i) {
    ChainLink& prev = links[i - 1];
    ChainLink& cur = links[i];
    if (cur.entry_var == prev.exit_var) {
      // Already oriented.
    } else if (cur.exit_var == prev.exit_var && !cur.unary) {
      std::swap(cur.entry_var, cur.exit_var);
      std::swap(cur.entry_pos, cur.exit_pos);
    } else {
      return Status::InvalidArgument(
          "consecutive chain atoms must share exactly one variable");
    }
    // Exactly one shared variable: the other endpoint must differ.
    if (!cur.unary && cur.exit_var == prev.entry_var &&
        links.size() == 2) {
      // Two binary atoms sharing both variables: not a chain (this is C2).
      return Status::InvalidArgument("atoms share two variables");
    }
  }
  return links;
}

std::optional<std::vector<ChainLink>> FindCycleOrder(
    const ConjunctiveQuery& q) {
  const int m = static_cast<int>(q.atoms().size());
  if (m < 2 || q.HasSelfJoin() || !q.predicates().empty()) {
    return std::nullopt;
  }
  // Every atom must have exactly two distinct variables and no constants.
  std::vector<std::pair<VarId, VarId>> atom_vars(m);
  for (int a = 0; a < m; ++a) {
    const Atom& atom = q.atoms()[a];
    std::vector<VarId> vars;
    std::vector<int> pos;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      if (!t.is_var()) return std::nullopt;
      if (std::find(vars.begin(), vars.end(), t.var) == vars.end()) {
        vars.push_back(t.var);
        pos.push_back(static_cast<int>(p));
      } else {
        return std::nullopt;  // repeated variable within an atom
      }
    }
    if (vars.size() != 2) return std::nullopt;
    atom_vars[a] = {vars[0], vars[1]};
  }
  // Every variable must occur in exactly two atoms; #vars == #atoms.
  std::set<VarId> body_vars = q.BodyVars();
  if (static_cast<int>(body_vars.size()) != m) return std::nullopt;
  std::vector<int> var_count(q.num_vars(), 0);
  for (const auto& [u, v] : atom_vars) {
    ++var_count[u];
    ++var_count[v];
  }
  for (VarId v : body_vars) {
    if (var_count[v] != 2) return std::nullopt;
  }
  // Walk the cycle: start at atom 0, leave through its second variable.
  std::vector<bool> used(m, false);
  std::vector<ChainLink> links;
  int cur_atom = 0;
  VarId entry = atom_vars[0].first;
  for (int step = 0; step < m; ++step) {
    used[cur_atom] = true;
    const Atom& atom = q.atoms()[cur_atom];
    ChainLink link;
    link.atom_idx = cur_atom;
    link.unary = false;
    link.entry_var = entry;
    link.exit_var =
        atom_vars[cur_atom].first == entry ? atom_vars[cur_atom].second
                                           : atom_vars[cur_atom].first;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      if (atom.args[p].var == link.entry_var) {
        link.entry_pos = static_cast<int>(p);
      } else {
        link.exit_pos = static_cast<int>(p);
      }
    }
    links.push_back(link);
    if (step == m - 1) break;
    // Find the unused atom containing exit_var.
    int next = -1;
    for (int a = 0; a < m; ++a) {
      if (used[a]) continue;
      if (atom_vars[a].first == link.exit_var ||
          atom_vars[a].second == link.exit_var) {
        next = a;
        break;
      }
    }
    if (next < 0) return std::nullopt;  // disconnected
    entry = link.exit_var;
    cur_atom = next;
  }
  // Close the cycle: last exit must equal first entry.
  if (links.back().exit_var != links.front().entry_var) return std::nullopt;
  return links;
}

}  // namespace qp
