#ifndef QP_QUERY_QUERY_H_
#define QP_QUERY_QUERY_H_

#include <cstdint>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "qp/relational/schema.h"
#include "qp/relational/value.h"
#include "qp/util/result.h"

namespace qp {

/// Index of a variable within one `ConjunctiveQuery`.
using VarId = int32_t;

/// An argument of an atom: a variable or a constant.
struct Term {
  enum class Kind { kVar, kConst };

  static Term MakeVar(VarId v) {
    Term t;
    t.kind = Kind::kVar;
    t.var = v;
    return t;
  }
  static Term MakeConst(Value v) {
    Term t;
    t.kind = Kind::kConst;
    t.constant = std::move(v);
    return t;
  }

  bool is_var() const { return kind == Kind::kVar; }

  Kind kind = Kind::kVar;
  VarId var = -1;
  Value constant;
};

/// A relational atom R(t1, ..., tm) in a query body.
struct Atom {
  RelationId rel = -1;
  std::vector<Term> args;
};

/// Comparison operators for interpreted unary predicates.
enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };

std::string_view CmpOpName(CmpOp op);

/// An interpreted unary predicate C(x): compares a variable with a constant
/// (the paper allows any PTIME-computable unary predicate; comparisons with
/// constants cover the paper's examples like `x > 10`).
struct UnaryPredicate {
  VarId var = -1;
  CmpOp op = CmpOp::kEq;
  Value rhs;

  /// Applies the predicate to a concrete value.
  bool Eval(const Value& lhs) const;
};

/// A conjunctive query: head variables, relational atoms, and interpreted
/// unary predicates. Supports full/boolean queries, self-joins and
/// constants in atom arguments.
///
/// Build programmatically:
///   ConjunctiveQuery q("Q");
///   VarId x = q.AddVar("x"), y = q.AddVar("y");
///   q.AddHeadVar(x); q.AddHeadVar(y);
///   q.AddAtom(r_id, {Term::MakeVar(x), Term::MakeVar(y)});
/// or parse with `ParseQuery` (see parser.h).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;
  explicit ConjunctiveQuery(std::string name) : name_(std::move(name)) {}

  // -- construction --------------------------------------------------------

  /// Adds a variable with the given display name (must be unique).
  VarId AddVar(std::string name);

  /// Returns the variable with the given name, or -1.
  VarId FindVar(std::string_view name) const;

  void AddHeadVar(VarId v) { head_.push_back(v); }
  void AddAtom(RelationId rel, std::vector<Term> args) {
    atoms_.push_back(Atom{rel, std::move(args)});
  }
  void AddPredicate(UnaryPredicate pred) {
    predicates_.push_back(std::move(pred));
  }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- accessors ------------------------------------------------------------

  const std::string& name() const { return name_; }
  int num_vars() const { return static_cast<int>(var_names_.size()); }
  const std::string& var_name(VarId v) const { return var_names_[v]; }
  const std::vector<VarId>& head() const { return head_; }
  const std::vector<Atom>& atoms() const { return atoms_; }
  const std::vector<UnaryPredicate>& predicates() const { return predicates_; }

  // -- structural properties (Section 3 of the paper) -----------------------

  /// True if every body variable appears in the head (no projections).
  bool IsFull() const;

  /// True if the head is empty.
  bool IsBoolean() const { return head_.empty(); }

  /// True if some relation name occurs in two or more atoms.
  bool HasSelfJoin() const;

  /// Distinct variables of atom `idx`, in first-occurrence order.
  std::vector<VarId> VarsOfAtom(int idx) const;

  /// All variables occurring in the body.
  std::set<VarId> BodyVars() const;

  /// Groups atom indexes into connected components of the join graph
  /// (two atoms are connected if they share a variable).
  std::vector<std::vector<int>> ConnectedComponents() const;

  /// Variables that occur in exactly one atom and exactly once there
  /// ("hanging variables", Definition 3.6).
  std::set<VarId> HangingVars() const;

  /// Relations referenced by the body, sorted and deduplicated. These are
  /// exactly the relations whose contents the arbitrage-price depends on
  /// (explicit views on other relations never constrain this query's
  /// possible worlds), so they are the invalidation set for quote caching.
  std::vector<RelationId> ReferencedRelations() const;

  /// Canonical fingerprint of the query, used as a memoization key for
  /// priced quotes. Two queries that differ only by variable renaming, by
  /// the order of body atoms, or by the order of predicates produce the
  /// same fingerprint; equal fingerprints imply isomorphic queries (and
  /// hence equal arbitrage-prices over the same instance and price
  /// points). Variables are numbered by an iteratively refined structural
  /// signature (head positions, atom occurrences, predicates, then
  /// co-occurrence context); symmetric variables that refinement cannot
  /// split fall back to declaration order, which can only cause a spurious
  /// cache miss, never a false hit. The query display name is ignored.
  std::string Fingerprint() const;

  /// Datalog-style display: "Q(x,y) :- R(x,y), S(y,'a'), x > 5".
  std::string ToString(const Schema& schema) const;

 private:
  std::string name_ = "Q";
  std::vector<std::string> var_names_;
  std::vector<VarId> head_;
  std::vector<Atom> atoms_;
  std::vector<UnaryPredicate> predicates_;
};

/// A union of conjunctive queries (all disjuncts must share head arity).
struct UnionQuery {
  std::string name = "U";
  std::vector<ConjunctiveQuery> disjuncts;
};

/// A query bundle (Section 2.1): a finite set of queries, priced and
/// purchased together. Each member is a UCQ (a CQ is a singleton UCQ).
struct QueryBundle {
  std::vector<UnionQuery> queries;

  static QueryBundle Of(const ConjunctiveQuery& q) {
    QueryBundle b;
    b.queries.push_back(UnionQuery{q.name(), {q}});
    return b;
  }
  static QueryBundle OfAll(const std::vector<ConjunctiveQuery>& qs) {
    QueryBundle b;
    for (const auto& q : qs) b.queries.push_back(UnionQuery{q.name(), {q}});
    return b;
  }
  /// Bundle union Q1,Q2 (concatenation of the two query lists).
  static QueryBundle Union(const QueryBundle& a, const QueryBundle& b) {
    QueryBundle out = a;
    out.queries.insert(out.queries.end(), b.queries.begin(),
                       b.queries.end());
    return out;
  }
  bool empty() const { return queries.empty(); }
};

/// Builds the identity query for one relation: R_full(x1..xm) :- R(x1..xm).
ConjunctiveQuery IdentityQuery(const Schema& schema, RelationId rel);

/// The identity bundle ID (Section 2.1): one identity query per relation.
QueryBundle IdentityBundle(const Schema& schema);

}  // namespace qp

#endif  // QP_QUERY_QUERY_H_
