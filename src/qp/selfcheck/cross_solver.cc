#include "qp/selfcheck/cross_solver.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <set>
#include <utility>

#include "qp/pricing/invariants.h"
#include "qp/determinacy/selection_determinacy.h"
#include "qp/pricing/incremental_pricer.h"
#include "qp/util/random.h"
#include "qp/workload/join_workloads.h"

namespace qp {
namespace {

void RecordMismatch(CrossSolverReport* report,
                    const CrossSolverOptions& options,
                    CrossSolverMismatch mismatch) {
  if (report->mismatches.size() < options.max_recorded_mismatches) {
    report->mismatches.push_back(std::move(mismatch));
  } else {
    // Keep counting past the cap so ok() still reflects the run.
    report->mismatches.back().query += " (+more)";
  }
}

/// Prop 2.8 and Equation 2 audits on one engine quote. Any violation fires
/// the QP_INVARIANT machinery (level-dependent) in addition to being a
/// cross-validation failure upstream when prices disagree.
Status AuditQuote(const Instance& db, const SelectionPriceSet& prices,
                  const ConjunctiveQuery& query, const PriceQuote& quote,
                  const char* context) {
  CheckPriceNonNegative(quote.solution.price, context);
  Money bound = DeterminingCoverCost(db.catalog(), prices,
                                     query.ReferencedRelations());
  CheckPriceUpperBound(quote.solution.price, bound, context);
  // The reported optimal support must really determine the query and cost
  // exactly the quoted price (Equation 2).
  if (!IsInfinite(quote.solution.price) && quote.solution.support_tracked &&
      quote.solution.pair_support.empty()) {
    CheckSupportCost(quote.solution, prices, context);
    auto determines =
        SelectionViewsDetermine(db, quote.solution.support, query);
    if (!determines.ok()) return determines.status();
    QP_INVARIANT(*determines,
                 std::string(context) +
                     ": quoted support does not determine the query "
                     "(Equation 2 minimizes over determining sets only)");
  }
  return Status::Ok();
}

}  // namespace

std::string CrossSolverMismatch::ToString() const {
  return instance + " / " + query + " [" + solver +
         "]: engine=" + MoneyToString(engine_price) +
         " oracle=" + MoneyToString(oracle_price);
}

std::string CrossSolverReport::Summary() const {
  std::string out = std::to_string(instances) + " instances, " +
                    std::to_string(queries_checked) + " queries, " +
                    std::to_string(bundles_checked) + " bundles, " +
                    std::to_string(pairs_checked) +
                    " subadditivity pairs, " + std::to_string(skipped) +
                    " skipped" +
                    (approx_quotes > 0 ? ", " + std::to_string(approx_quotes) +
                                             " approximate"
                                       : "") +
                    ": " +
                    (ok() ? "all solvers agree"
                          : std::to_string(mismatches.size()) +
                                " MISMATCHES");
  for (const CrossSolverMismatch& m : mismatches) {
    out += "\n  " + m.ToString();
  }
  return out;
}

Status CrossValidateQueries(const Instance& db,
                            const SelectionPriceSet& prices,
                            const std::vector<ConjunctiveQuery>& queries,
                            const CrossSolverOptions& options,
                            const std::string& label,
                            CrossSolverReport* report) {
  PricingEngine engine(&db, &prices);
  ++report->instances;
  std::vector<Money> member_prices;
  bool any_approximate = false;
  auto make_budget = [&options]() {
    return options.deadline_ms > 0
               ? SearchBudget::Deadline(
                     std::chrono::milliseconds(options.deadline_ms))
               : SearchBudget();
  };

  for (const ConjunctiveQuery& query : queries) {
    auto oracle =
        PriceByExhaustiveSearch(db, prices, query, options.exhaustive);
    if (!oracle.ok()) {
      if (oracle.status().code() == StatusCode::kResourceExhausted) {
        ++report->skipped;
        continue;
      }
      return oracle.status();
    }
    auto quote = engine.Price(query, make_budget());
    if (!quote.ok()) return quote.status();
    ++report->queries_checked;
    member_prices.push_back(quote->solution.price);
    if (quote->solution.approximate) {
      // Deadline mode: the degraded quote must never undercut the exact
      // price (Lemma 3.1 admissibility); over-estimates are expected.
      ++report->approx_quotes;
      any_approximate = true;
      if (quote->solution.price < oracle->price) {
        RecordMismatch(report, options,
                       CrossSolverMismatch{label, query.name() + " (approx)",
                                           quote->solver,
                                           quote->solution.price,
                                           oracle->price});
      }
    } else if (quote->solution.price != oracle->price) {
      RecordMismatch(report, options,
                     CrossSolverMismatch{label, query.name(), quote->solver,
                                         quote->solution.price,
                                         oracle->price});
    }
    if (options.audit_invariants) {
      QP_RETURN_IF_ERROR(
          AuditQuote(db, prices, query, *quote, "cross_solver"));
    }
  }

  if (options.check_bundles && queries.size() >= 2 &&
      member_prices.size() == queries.size()) {
    auto oracle =
        PriceByExhaustiveSearch(db, prices, queries, options.exhaustive);
    if (!oracle.ok()) {
      if (oracle.status().code() == StatusCode::kResourceExhausted) {
        ++report->skipped;
        return Status::Ok();
      }
      return oracle.status();
    }
    auto bundle = engine.PriceBundle(queries, make_budget());
    if (!bundle.ok()) return bundle.status();
    ++report->bundles_checked;
    if (bundle->solution.approximate) {
      ++report->approx_quotes;
      any_approximate = true;
      if (bundle->solution.price < oracle->price) {
        RecordMismatch(report, options,
                       CrossSolverMismatch{label, "bundle (approx)",
                                           bundle->solver,
                                           bundle->solution.price,
                                           oracle->price});
      }
    } else if (bundle->solution.price != oracle->price) {
      RecordMismatch(report, options,
                     CrossSolverMismatch{label, "bundle", bundle->solver,
                                         bundle->solution.price,
                                         oracle->price});
    }
    if (options.audit_invariants && !any_approximate) {
      // Prop 2.8 subadditivity on the sampled pair, plus the dual lower
      // bound: the bundle determines every member, so it cannot be cheaper
      // than any one of them.
      Money sum = 0;
      Money max_member = 0;
      for (Money p : member_prices) {
        sum = AddMoney(sum, p);
        if (p > max_member) max_member = p;
      }
      ++report->pairs_checked;
      CheckSubadditive(bundle->solution.price, sum, "cross_solver bundle");
      QP_INVARIANT(bundle->solution.price >= max_member,
                   std::string("cross_solver bundle: bundle priced below "
                               "one of its members (determinacy is "
                               "monotone in the bundle, Lemma 2.6)"));
    }
  }
  return Status::Ok();
}

Result<CrossSolverReport> CrossValidate(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const CrossSolverOptions& options) {
  CrossSolverReport report;
  QP_RETURN_IF_ERROR(CrossValidateQueries(db, prices, queries, options,
                                          "instance", &report));
  return report;
}

ConjunctiveQuery AtomPrefixQuery(const ConjunctiveQuery& q, int num_atoms) {
  ConjunctiveQuery out(q.name() + "_prefix" + std::to_string(num_atoms));
  std::map<VarId, VarId> remap;
  auto mapped = [&](VarId v) {
    auto it = remap.find(v);
    if (it != remap.end()) return it->second;
    VarId nv = out.AddVar(q.var_name(v));
    remap.emplace(v, nv);
    // Full query: every retained variable goes into the head.
    out.AddHeadVar(nv);
    return nv;
  };
  int keep = num_atoms < static_cast<int>(q.atoms().size())
                 ? num_atoms
                 : static_cast<int>(q.atoms().size());
  for (int a = 0; a < keep; ++a) {
    std::vector<Term> args;
    for (const Term& t : q.atoms()[a].args) {
      args.push_back(t.is_var() ? Term::MakeVar(mapped(t.var)) : t);
    }
    out.AddAtom(q.atoms()[a].rel, std::move(args));
  }
  for (const UnaryPredicate& p : q.predicates()) {
    auto it = remap.find(p.var);
    if (it != remap.end()) {
      out.AddPredicate(UnaryPredicate{it->second, p.op, p.rhs});
    }
  }
  return out;
}

Result<CrossSolverReport> CrossValidateRandom(
    int num_instances, uint64_t seed, const CrossSolverOptions& options) {
  // Rotate through every solver-relevant shape: chains and stars exercise
  // the min-cut / GChQ pipeline, cycles and H1–H3 the clause solver, and
  // the per-instance bundle the merged-min-cut / clause bundle paths. H4
  // is a projection, so it lands on the exhaustive branch-and-bound path.
  static constexpr const char* kShapes[] = {"chain1", "chain2", "star2",
                                            "cycle3", "h1", "h2", "h3", "h4"};
  constexpr int kNumShapes = 8;
  Rng rng(seed);
  CrossSolverReport report;
  for (int i = 0; i < num_instances; ++i) {
    const char* shape = kShapes[i % kNumShapes];
    JoinWorkloadParams params;
    params.column_size = static_cast<int>(rng.NextInRange(2, 3));
    params.tuple_density = 0.2 + 0.6 * rng.NextDouble();
    params.priced_fraction = rng.NextBool(0.5) ? 1.0 : 0.7;
    params.min_price = 1;
    params.max_price = 9;
    params.seed = rng.Next();

    Result<Workload> w = Status::InvalidArgument("unset");
    if (std::string(shape) == "chain1") {
      w = MakeChainWorkload(1, params);
    } else if (std::string(shape) == "chain2") {
      w = MakeChainWorkload(2, params);
    } else if (std::string(shape) == "star2") {
      w = MakeStarWorkload(2, params);
    } else if (std::string(shape) == "cycle3") {
      w = MakeCycleWorkload(3, params);
    } else if (std::string(shape) == "h1") {
      w = MakeHardQueryWorkload(HardQuery::kH1, params);
    } else if (std::string(shape) == "h2") {
      w = MakeHardQueryWorkload(HardQuery::kH2, params);
    } else if (std::string(shape) == "h3") {
      w = MakeHardQueryWorkload(HardQuery::kH3, params);
    } else {
      w = MakeHardQueryWorkload(HardQuery::kH4, params);
    }
    if (!w.ok()) return w.status();

    std::vector<ConjunctiveQuery> queries = {w->query};
    int atoms = static_cast<int>(w->query.atoms().size());
    if (atoms >= 2) queries.push_back(AtomPrefixQuery(w->query, atoms - 1));

    std::string label =
        std::string(shape) + "#" + std::to_string(i) + "(c" +
        std::to_string(params.column_size) + ")";
    QP_RETURN_IF_ERROR(CrossValidateQueries(*w->db, w->prices, queries,
                                            options, label, &report));
  }
  return report;
}

Result<CrossSolverReport> CrossValidateFlowBackends(
    int num_instances, uint64_t seed, int warm_updates,
    const CrossSolverOptions& options) {
  // Chains and stars land on the min-cut pipeline (both flow backends and
  // the warm-start path); cycles go through the clause solver and pin down
  // that the backend axis is a no-op off the flow path.
  static constexpr const char* kShapes[] = {"chain1", "chain2", "chain3",
                                            "star2", "cycle3"};
  constexpr int kNumShapes = 5;
  Rng rng(seed);
  CrossSolverReport report;
  for (int i = 0; i < num_instances; ++i) {
    const char* shape = kShapes[i % kNumShapes];
    JoinWorkloadParams params;
    params.column_size = static_cast<int>(rng.NextInRange(2, 4));
    params.tuple_density = 0.2 + 0.6 * rng.NextDouble();
    params.priced_fraction = rng.NextBool(0.5) ? 1.0 : 0.7;
    params.min_price = 1;
    params.max_price = 9;
    params.seed = rng.Next();

    Result<Workload> w = Status::InvalidArgument("unset");
    if (std::string(shape) == "chain1") {
      w = MakeChainWorkload(1, params);
    } else if (std::string(shape) == "chain2") {
      w = MakeChainWorkload(2, params);
    } else if (std::string(shape) == "chain3") {
      w = MakeChainWorkload(3, params);
    } else if (std::string(shape) == "star2") {
      w = MakeStarWorkload(2, params);
    } else {
      w = MakeCycleWorkload(3, params);
    }
    if (!w.ok()) return w.status();
    ++report.instances;
    const std::string label = std::string(shape) + "#" + std::to_string(i) +
                              "(c" + std::to_string(params.column_size) + ")";

    // ---- Backend axis: Dinic vs highest-label push-relabel --------------
    Money backend_price[2] = {0, 0};
    for (int b = 0; b < 2; ++b) {
      PricingEngine::Options eo;
      eo.chain.flow_solver =
          b == 0 ? FlowSolver::kDinic : FlowSolver::kPushRelabel;
      PricingEngine engine(w->db.get(), &w->prices, eo);
      auto quote = engine.Price(w->query);
      if (!quote.ok()) return quote.status();
      ++report.queries_checked;
      backend_price[b] = quote->solution.price;
      if (options.audit_invariants) {
        QP_RETURN_IF_ERROR(AuditQuote(*w->db, w->prices, w->query, *quote,
                                      "cross_solver flow backend"));
      }
    }
    if (backend_price[0] != backend_price[1]) {
      RecordMismatch(&report, options,
                     CrossSolverMismatch{label, w->query.name(),
                                         "dinic-vs-pushrelabel",
                                         backend_price[0], backend_price[1]});
    }

    // ---- Warm-start axis: replay k held-out tuples into the frozen plan -
    const std::vector<RelationId> query_rels = w->query.ReferencedRelations();
    std::set<RelationId> rels(query_rels.begin(), query_rels.end());
    std::vector<std::pair<RelationId, Tuple>> candidates;
    for (RelationId rel : rels) {
      for (const Tuple& t : w->db->Relation(rel)) candidates.emplace_back(rel, t);
    }
    std::vector<std::pair<RelationId, Tuple>> held_out;
    const int k = std::min<int>(warm_updates,
                                static_cast<int>(candidates.size()));
    for (int j = 0; j < k; ++j) {
      size_t pick = static_cast<size_t>(rng.NextInRange(
          0, static_cast<int64_t>(candidates.size()) - 1));
      held_out.push_back(std::move(candidates[pick]));
      candidates.erase(candidates.begin() + static_cast<int64_t>(pick));
    }
    Instance partial = *w->db;
    for (const auto& [rel, t] : held_out) partial.Erase(rel, t);

    auto pricer = IncrementalGChQPricer::Build(partial, w->prices, w->query);
    if (!pricer.ok()) {
      if (pricer.status().code() == StatusCode::kUnimplemented) {
        ++report.skipped;  // e.g. cycles: clause solver, nothing to warm
        continue;
      }
      return pricer.status();
    }
    PricingEngine cold(&partial, &w->prices);
    auto check_warm = [&](Money warm_price, const char* step) -> Status {
      auto quote = cold.Price(w->query);
      if (!quote.ok()) return quote.status();
      ++report.queries_checked;
      if (warm_price != quote->solution.price) {
        RecordMismatch(&report, options,
                       CrossSolverMismatch{
                           label, w->query.name() + std::string(step),
                           "warm-start", warm_price, quote->solution.price});
      }
      return Status::Ok();
    };
    QP_RETURN_IF_ERROR(
        check_warm((*pricer)->solution().price, " (reduced)"));
    for (const auto& [rel, t] : held_out) {
      auto inserted = partial.Insert(rel, t);
      if (!inserted.ok()) return inserted.status();
      auto warm = (*pricer)->ApplyInsert(rel, t);
      if (!warm.ok()) return warm.status();
      QP_RETURN_IF_ERROR(check_warm(warm->price, " (replayed)"));
    }
    // The final warm support must still be a valid determining cut.
    if (options.audit_invariants &&
        !IsInfinite((*pricer)->solution().price)) {
      auto determines = SelectionViewsDetermine(
          partial, (*pricer)->solution().support, w->query);
      if (!determines.ok()) return determines.status();
      QP_INVARIANT(*determines,
                   "cross_solver warm-start: warm support does not "
                   "determine the query (Equation 2)");
    }
  }
  return report;
}

}  // namespace qp
