#ifndef QP_SELFCHECK_CROSS_SOLVER_H_
#define QP_SELFCHECK_CROSS_SOLVER_H_

#include <string>
#include <vector>

#include "qp/pricing/engine.h"
#include "qp/pricing/exhaustive_solver.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Differential-oracle validation of the production solvers: every query is
/// priced twice, once through the engine's dichotomy dispatch (chain /
/// GChQ / clause / bundle solvers) and once by the exhaustive
/// branch-and-bound oracle (`PriceByExhaustiveSearch`), which minimizes
/// Equation 2 directly with the Theorem 3.3 determinacy oracle and is
/// ground truth by construction. Any price disagreement is a solver bug.
/// Used by the `qp_selfcheck` tool and the `selfcheck`-labelled tests.

struct CrossSolverOptions {
  /// Limits of the exhaustive oracle; instances whose view count exceeds
  /// `exhaustive.max_views` are counted as skipped, not failed.
  ExhaustiveSolverOptions exhaustive;
  /// Also cross-validate PriceBundle on the whole query list (covers the
  /// merged-min-cut and clause bundle solvers) and audit subadditivity.
  bool check_bundles = true;
  /// Audit every engine quote against the Prop 2.8 invariants and verify
  /// its support really determines the query (Theorem 3.3 oracle).
  bool audit_invariants = true;
  /// Cap on recorded mismatch details (the counters keep counting).
  size_t max_recorded_mismatches = 32;
  /// Per-query serving deadline for the *engine* side (0 = none). The
  /// oracle always runs unbudgeted. With a deadline, engine quotes flagged
  /// approximate are validated against the admissibility contract instead
  /// of equality: approximate price >= exact oracle price (an approximate
  /// quote may legitimately over-estimate, but undercutting the exact
  /// price is an arbitrage bug). Subadditivity audits are skipped when any
  /// involved quote is approximate.
  int64_t deadline_ms = 0;
};

struct CrossSolverMismatch {
  /// Which workload / instance the disagreement occurred on.
  std::string instance;
  /// Display form or name of the query (or "bundle(...)").
  std::string query;
  /// The engine-side solver that produced the disagreeing price.
  std::string solver;
  Money engine_price = 0;
  Money oracle_price = 0;

  std::string ToString() const;
};

struct CrossSolverReport {
  int instances = 0;
  int queries_checked = 0;
  int bundles_checked = 0;
  /// Subadditivity samples audited (Prop 2.8 on query pairs).
  int pairs_checked = 0;
  /// Oracle refused (view-count / node limits); not a failure.
  int skipped = 0;
  /// Engine quotes that came back approximate (deadline mode only); these
  /// were checked for admissibility (engine >= oracle), not equality.
  int approx_quotes = 0;
  std::vector<CrossSolverMismatch> mismatches;

  bool ok() const { return mismatches.empty(); }
  /// One-line human summary, e.g. for the selfcheck tool.
  std::string Summary() const;
};

/// Cross-validates each query of `queries` (and, when enabled, their
/// bundle) on one instance, appending to `report`. `label` names the
/// instance in mismatch records.
Status CrossValidateQueries(const Instance& db,
                            const SelectionPriceSet& prices,
                            const std::vector<ConjunctiveQuery>& queries,
                            const CrossSolverOptions& options,
                            const std::string& label,
                            CrossSolverReport* report);

/// Convenience wrapper over one instance, returning a fresh report.
Result<CrossSolverReport> CrossValidate(
    const Instance& db, const SelectionPriceSet& prices,
    const std::vector<ConjunctiveQuery>& queries,
    const CrossSolverOptions& options = {});

/// Generates `num_instances` randomized small pricing problems — chains,
/// stars, cycles and the Theorem 3.5 hard queries H1–H3 over random data,
/// prices and coverage — and cross-validates each. Every instance checks
/// the workload query, an atom-prefix subquery, and their two-member
/// bundle, so the chain, GChQ, clause, bundle and exhaustive solvers all
/// disagree-or-agree on every instance. Deterministic in `seed`.
Result<CrossSolverReport> CrossValidateRandom(
    int num_instances, uint64_t seed, const CrossSolverOptions& options = {});

/// Differential validation of the flow-kernel backends on randomized
/// chain/star/cycle instances: every instance's query is priced through
/// the engine once per backend (Dinic, highest-label push-relabel) and the
/// prices must be identical, with each quote's support audited as a valid
/// determining cut (Equation 2). Additionally, up to `warm_updates` tuples
/// are held out of a copy of the instance, an IncrementalGChQPricer is
/// built on the reduced instance, and the held-out tuples are replayed
/// one by one: after every replayed insert the warm (resumed-flow) price
/// must equal a cold engine solve of the partial instance, and the final
/// warm support must still determine the query. Instances outside the
/// warm-startable class (e.g. cycles, priced by the clause solver) count
/// as skipped on the warm axis, not failed. Deterministic in `seed`.
Result<CrossSolverReport> CrossValidateFlowBackends(
    int num_instances, uint64_t seed, int warm_updates = 3,
    const CrossSolverOptions& options = {});

/// The full sub-query over the first `num_atoms` body atoms of `q`: retained
/// variables are remapped compactly, every retained variable is in the
/// head, and predicates on retained variables are kept. Used to derive a
/// second query (and hence bundles / subadditivity pairs) from one-query
/// workloads.
ConjunctiveQuery AtomPrefixQuery(const ConjunctiveQuery& q, int num_atoms);

}  // namespace qp

#endif  // QP_SELFCHECK_CROSS_SOLVER_H_
