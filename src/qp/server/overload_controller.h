#ifndef QP_SERVER_OVERLOAD_CONTROLLER_H_
#define QP_SERVER_OVERLOAD_CONTROLLER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <thread>

#include "qp/obs/window.h"
#include "qp/pricing/serving_controls.h"
#include "qp/util/thread_annotations.h"
#include "qp/util/thread_pool.h"

namespace qp {

/// Tuning for the feedback loop; the defaults match the qpricerd flags.
struct OverloadControllerOptions {
  /// The request-latency objective the controller defends, in
  /// milliseconds. Must be > 0 (a zero target means "no controller" and
  /// the server never constructs one).
  int64_t target_p99_ms = 50;
  /// Control period. Each tick closes the telemetry window opened by the
  /// previous tick, so this is also the averaging horizon of the signals.
  int64_t tick_ms = 50;
  /// The deadline lever never tightens below this (a quote must keep
  /// enough budget to parse, hit the cache, or emit the Lemma 3.1
  /// full-cover fallback).
  int64_t deadline_floor_ms = 2;
  /// Consecutive calm ticks required before relaxing one level — the
  /// hysteresis that stops a brief lull mid-burst from whipsawing the
  /// knobs (tightening needs just one bad tick; relaxing needs a streak).
  /// This is the *base* dwell: every relaxation is a probe, and a probe
  /// that gets re-tightened within probe_fail_ticks doubles the required
  /// streak (up to relax_after_calm_ticks * max_calm_dwell_multiplier)
  /// while a probe that survives halves it back toward the base.
  int relax_after_calm_ticks = 3;
  /// A relaxation is judged for this many ticks: re-tightening inside the
  /// window means the probe failed (pressure was still there, the calm
  /// windows were just stale — frames admitted under the relaxed knobs
  /// had not completed yet). No further relaxation fires until the probe
  /// resolves, so the ladder steps down at most one level per window and
  /// the telemetry can catch up with each step.
  int probe_fail_ticks = 8;
  /// Upper bound on the adaptive dwell, as a multiple of
  /// relax_after_calm_ticks.
  int max_calm_dwell_multiplier = 32;
  /// Admission-cap value used when the configured cap is 0 (unlimited)
  /// and the ladder reaches the cap rung.
  int64_t fallback_admission_cap = 32;
  /// Connection floor: shedding never cuts below this many connections.
  int64_t min_connections = 2;
};

/// The adaptive-serving feedback loop (ROADMAP item 5, DESIGN.md §16):
/// watches recent tail latency through windowed histogram readers and
/// walks a pressure ladder that actuates the ServingControls knobs —
/// deadline first (quotes degrade to admissible approximations), then
/// the batch admission cap (excess batch queries shed), then the
/// connection limit (whole connections shed at the door) — and relaxes
/// back level by level once the burst passes.
///
/// Signals, sampled per tick over the window since the previous tick:
///   * qp.server.request_ns p99/p95 — handler latency (the objective);
///   * qp.pool.lane_wait_ns.interactive p95 — queueing delay in front of
///     the workers, which request_ns cannot see (a saturated pool shows
///     up here first);
///   * in-flight connection count, via the callback the server provides.
///
/// Scheduling: a dedicated timer thread fires every tick and submits the
/// tick body to the worker pool's *background* lane, so controller work
/// never preempts an interactive frame. Under overload that lane is
/// starved — exactly when control matters most — so a fire that finds
/// the previous tick still queued runs the tick inline on the timer
/// thread instead and counts qp.server.ctl.starved_ticks: lane
/// starvation is itself an overload signal, and the controller must not
/// depend on the resource it is trying to protect. Ticks serialize on
/// tick_mu_ whichever thread runs them.
///
/// Relaxing is probing: the windows only show frames that *completed*
/// under the old knobs, so right after a relaxation they are stale —
/// optimistically calm — for as long as the relaxed frames take to come
/// back. Each relaxation therefore opens a probe: no further relaxation
/// fires until the probe resolves, either by a hot tick inside
/// probe_fail_ticks (probe failed: the calm was stale; the required calm
/// streak doubles, AIMD-style, up to the configured cap and
/// qp.server.ctl.probe_failures increments) or by surviving the window
/// (streak halves back toward relax_after_calm_ticks). Under sustained
/// overload the controller settles at the working level and re-probes
/// geometrically rarely instead of sawtoothing through expensive levels.
///
/// Telemetry (all under qp.server.ctl.*): counters ticks, tightenings,
/// relaxations, starved_ticks, probe_failures, and per-knob
/// *_actuations; gauges level, deadline_ms, admission_cap,
/// max_connections, window_p99_ns, window_count, lane_wait_p95_ns,
/// inflight, calm_dwell_ticks. In a QP_METRICS=OFF build the histograms
/// receive no samples, so the controller idles at level 0 (documented:
/// adaptive serving requires metrics on).
class OverloadController {
 public:
  /// Everything the tick decision consumes, bundled so tests can drive
  /// the ladder deterministically through TickForTesting.
  struct Signals {
    uint64_t request_p99_ns = 0;
    uint64_t request_p95_ns = 0;
    uint64_t lane_wait_p95_ns = 0;
    uint64_t window_count = 0;
    int64_t in_flight_connections = 0;
  };

  using InFlightFn = std::function<int64_t()>;

  /// `controls` is the shared knob block (the controller becomes its sole
  /// writer; current values are captured as the level-0 baseline) and
  /// must outlive the controller. `pool` receives the background tick
  /// tasks; it may be null (tests), in which case every tick runs on the
  /// timer thread. `in_flight` reports the current connection count (may
  /// be empty).
  OverloadController(const OverloadControllerOptions& options,
                     ServingControls* controls, ThreadPool* pool,
                     InFlightFn in_flight);

  /// Stops the timer thread (pending background ticks become no-ops).
  ~OverloadController();

  OverloadController(const OverloadController&) = delete;
  OverloadController& operator=(const OverloadController&) = delete;

  /// Starts the timer thread. Call at most once.
  void Start();

  /// Stops and joins the timer thread. Safe to call repeatedly. The
  /// owner must keep this object alive until the worker pool has drained
  /// (queued tick tasks capture `this`).
  void Stop();

  /// Runs one decision + actuation round with the given signals,
  /// bypassing the windows and the pool. Test-only by convention.
  void TickForTesting(const Signals& signals);

  /// Current pressure level (0 = knobs at their configured baseline).
  int level() const { return level_gauge_.load(std::memory_order_relaxed); }

 private:
  void TimerLoop();
  /// Runs tick `seq` if no later tick has already run: closes the
  /// telemetry windows, builds Signals, and decides.
  void RunTick(uint64_t seq);
  /// The ladder: one step up on a hot tick, one step down after enough
  /// calm ones, then knob application + telemetry.
  void DecideAndActuate(const Signals& signals) QP_REQUIRES(tick_mu_);
  /// Applies the knob values for `level` to the ServingControls.
  void ApplyLevel(int level) QP_REQUIRES(tick_mu_);

  int64_t DeadlineForLevel(int level) const;
  int64_t CapForLevel(int level) const;
  int64_t ConnectionsForLevel(int level) const;

  const OverloadControllerOptions options_;
  ServingControls* const controls_;
  ThreadPool* const pool_;
  const InFlightFn in_flight_;

  // Level-0 baseline: the statically configured knob values, captured at
  // construction so relaxing fully restores them.
  const int64_t base_deadline_ms_;
  const int64_t base_admission_cap_;
  const int64_t base_max_connections_;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> scheduled_{0};
  std::atomic<uint64_t> completed_{0};
  /// Mirrors `level_` for lock-free readers (tests, logging).
  std::atomic<int> level_gauge_{0};

  Mutex tick_mu_;
  WindowedPercentile request_window_ QP_GUARDED_BY(tick_mu_);
  WindowedPercentile lane_wait_window_ QP_GUARDED_BY(tick_mu_);
  uint64_t last_run_seq_ QP_GUARDED_BY(tick_mu_) = 0;
  int level_ QP_GUARDED_BY(tick_mu_) = 0;
  int calm_ticks_ QP_GUARDED_BY(tick_mu_) = 0;
  /// Adaptive relax hysteresis (see the class comment): the calm streak
  /// currently required to relax, the open-probe flag, and the tick
  /// count since the probe opened.
  int calm_dwell_ QP_GUARDED_BY(tick_mu_);
  bool probe_open_ QP_GUARDED_BY(tick_mu_) = false;
  int probe_age_ticks_ QP_GUARDED_BY(tick_mu_) = 0;

  /// Joined by Stop(); written before the timer exists. Deliberately
  /// unguarded: Start/Stop are owner-thread-only, like the server's.
  std::thread timer_;  // NOLINT(guarded-by-coverage)
};

}  // namespace qp

#endif  // QP_SERVER_OVERLOAD_CONTROLLER_H_
