#include "qp/server/query_memo.h"

#include <utility>

#include "qp/obs/metrics.h"

namespace qp {

Result<const QueryMemo::Parsed*> QueryMemo::Get(const std::string& text,
                                                Parsed* scratch) {
  {
    MutexLock lock(&mu_);
    auto it = entries_.find(text);
    if (it != entries_.end()) {
      QP_METRIC_INCR("qp.server.parse_memo_hits");
      // Stable across rehash and never erased, so handing the pointer out
      // from under the lock is safe.
      return &it->second;
    }
  }
  QP_METRIC_INCR("qp.server.parse_memo_misses");
  // Parse outside the lock: a slow parse of a novel query must not stall
  // every other connection's memo hits.
  QP_ASSIGN_OR_RETURN(ConjunctiveQuery query, ParseQuery(*schema_, text));
  Parsed parsed;
  parsed.fingerprint = query.Fingerprint();
  parsed.query = std::move(query);
  MutexLock lock(&mu_);
  if (entries_.size() >= capacity_) {
    // Full: serve this one from the caller's scratch without admitting
    // it. Eviction is deliberately absent — entries must stay pointer-
    // stable — and a workload with >capacity distinct hot shapes has
    // bigger problems than parse cost.
    *scratch = std::move(parsed);
    return scratch;
  }
  auto [it, inserted] = entries_.emplace(text, std::move(parsed));
  (void)inserted;  // a racing Get may have admitted the same text: fine
  return &it->second;
}

size_t QueryMemo::size() const {
  MutexLock lock(&mu_);
  return entries_.size();
}

}  // namespace qp
