#include "qp/server/wire.h"

namespace qp {

namespace {

/// Caps the element count a decoder will allocate for up front. The frame
/// transport already bounds total payload bytes; this bounds a lying
/// count prefix (e.g. "4 billion rows" in a 20-byte payload).
constexpr uint32_t kMaxWireElements = 1 << 20;

constexpr uint8_t kValueTagInt = 0;
constexpr uint8_t kValueTagStr = 1;

}  // namespace

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out_->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void WireWriter::Str(std::string_view s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->append(s.data(), s.size());
}

void WireWriter::Val(const Value& v) {
  if (v.is_int()) {
    U8(kValueTagInt);
    I64(v.as_int());
  } else {
    U8(kValueTagStr);
    Str(v.as_str());
  }
}

bool WireReader::Need(size_t bytes, const char* what) {
  if (!ok()) return false;
  if (data_.size() - pos_ < bytes) {
    error_ = std::string("truncated payload reading ") + what;
    return false;
  }
  return true;
}

uint8_t WireReader::U8() {
  if (!Need(1, "u8")) return 0;
  return static_cast<uint8_t>(data_[pos_++]);
}

uint32_t WireReader::U32() {
  if (!Need(4, "u32")) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8, "u64")) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(data_[pos_++])) << (8 * i);
  }
  return v;
}

std::string WireReader::Str() { return std::string(StrView()); }

std::string_view WireReader::StrView() {
  uint32_t size = U32();
  if (!Need(size, "string body")) return std::string_view();
  std::string_view s = data_.substr(pos_, size);
  pos_ += size;
  return s;
}

Value WireReader::Val() {
  uint8_t tag = U8();
  if (tag == kValueTagInt) return Value::Int(I64());
  if (tag == kValueTagStr) return Value::Str(Str());
  if (ok()) error_ = "unknown value tag " + std::to_string(tag);
  return Value();
}

Status WireReader::status() const {
  if (ok()) return Status::Ok();
  return Status::InvalidArgument(error_);
}

namespace {

/// Shared epilogue: the reader must have consumed the payload exactly.
Status FinishDecode(const WireReader& reader) {
  QP_RETURN_IF_ERROR(reader.status());
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after message");
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeQuoteRequest(const QuoteRequest& msg) {
  WireWriter w;
  w.U32(msg.shard);
  w.Str(msg.query_text);
  return std::move(w).payload();
}

Result<QuoteRequest> DecodeQuoteRequest(std::string_view payload) {
  WireReader r(payload);
  QuoteRequest msg;
  msg.shard = r.U32();
  msg.query_text = r.Str();
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeQuoteBatchRequest(const QuoteBatchRequest& msg) {
  WireWriter w;
  w.U32(msg.shard);
  w.U32(static_cast<uint32_t>(msg.query_texts.size()));
  for (const std::string& text : msg.query_texts) w.Str(text);
  return std::move(w).payload();
}

Result<QuoteBatchRequest> DecodeQuoteBatchRequest(std::string_view payload) {
  WireReader r(payload);
  QuoteBatchRequest msg;
  msg.shard = r.U32();
  uint32_t count = r.U32();
  if (r.ok() && count > kMaxWireElements) {
    return Status::InvalidArgument("batch count " + std::to_string(count) +
                                   " exceeds the element limit");
  }
  for (uint32_t i = 0; r.ok() && i < count; ++i) {
    msg.query_texts.push_back(r.Str());
  }
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeInsertRequest(const InsertRequest& msg) {
  WireWriter w;
  w.U32(msg.shard);
  w.Str(msg.relation);
  w.U32(static_cast<uint32_t>(msg.rows.size()));
  for (const std::vector<Value>& row : msg.rows) {
    w.U32(static_cast<uint32_t>(row.size()));
    for (const Value& v : row) w.Val(v);
  }
  return std::move(w).payload();
}

Result<InsertRequest> DecodeInsertRequest(std::string_view payload) {
  WireReader r(payload);
  InsertRequest msg;
  msg.shard = r.U32();
  msg.relation = r.Str();
  uint32_t rows = r.U32();
  if (r.ok() && rows > kMaxWireElements) {
    return Status::InvalidArgument("row count " + std::to_string(rows) +
                                   " exceeds the element limit");
  }
  for (uint32_t i = 0; r.ok() && i < rows; ++i) {
    uint32_t arity = r.U32();
    if (r.ok() && arity > kMaxWireElements) {
      return Status::InvalidArgument("row arity " + std::to_string(arity) +
                                     " exceeds the element limit");
    }
    std::vector<Value> row;
    for (uint32_t j = 0; r.ok() && j < arity; ++j) row.push_back(r.Val());
    msg.rows.push_back(std::move(row));
  }
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

namespace {

void WriteQuoteReply(WireWriter& w, const QuoteReply& msg) {
  w.U64(msg.snapshot_version);
  w.I64(msg.price);
  w.U8(msg.approximate ? 1 : 0);
  w.Str(msg.solver);
}

void WriteQuoteBatchReply(WireWriter& w, const QuoteBatchReply& msg) {
  w.U64(msg.snapshot_version);
  w.U32(static_cast<uint32_t>(msg.items.size()));
  for (const QuoteBatchReply::Item& item : msg.items) {
    w.U8(item.status_code);
    if (item.status_code != 0) {
      w.Str(item.message);
    } else {
      w.I64(item.price);
      w.U8(item.approximate ? 1 : 0);
      w.Str(item.solver);
    }
  }
}

void WriteInsertReply(WireWriter& w, const InsertReply& msg) {
  w.U64(msg.snapshot_version);
  w.U32(msg.rows_inserted);
}

void WriteMetricsReply(WireWriter& w, const MetricsReply& msg) {
  w.Str(msg.json);
}

void WriteErrorReply(WireWriter& w, const ErrorReply& msg) {
  w.U8(msg.status_code);
  w.Str(msg.message);
}

}  // namespace

std::string EncodeQuoteReply(const QuoteReply& msg) {
  WireWriter w;
  WriteQuoteReply(w, msg);
  return std::move(w).payload();
}

void EncodeQuoteReplyInto(const QuoteReply& msg, std::string* out) {
  WireWriter w(out);
  WriteQuoteReply(w, msg);
}

Result<QuoteReply> DecodeQuoteReply(std::string_view payload) {
  WireReader r(payload);
  QuoteReply msg;
  msg.snapshot_version = r.U64();
  msg.price = r.I64();
  msg.approximate = r.U8() != 0;
  msg.solver = r.Str();
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeQuoteBatchReply(const QuoteBatchReply& msg) {
  WireWriter w;
  WriteQuoteBatchReply(w, msg);
  return std::move(w).payload();
}

void EncodeQuoteBatchReplyInto(const QuoteBatchReply& msg, std::string* out) {
  WireWriter w(out);
  WriteQuoteBatchReply(w, msg);
}

Result<QuoteBatchReply> DecodeQuoteBatchReply(std::string_view payload) {
  WireReader r(payload);
  QuoteBatchReply msg;
  msg.snapshot_version = r.U64();
  uint32_t count = r.U32();
  if (r.ok() && count > kMaxWireElements) {
    return Status::InvalidArgument("batch count " + std::to_string(count) +
                                   " exceeds the element limit");
  }
  for (uint32_t i = 0; r.ok() && i < count; ++i) {
    QuoteBatchReply::Item item;
    item.status_code = r.U8();
    if (item.status_code != 0) {
      item.message = r.Str();
    } else {
      item.price = r.I64();
      item.approximate = r.U8() != 0;
      item.solver = r.Str();
    }
    msg.items.push_back(std::move(item));
  }
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeInsertReply(const InsertReply& msg) {
  WireWriter w;
  WriteInsertReply(w, msg);
  return std::move(w).payload();
}

void EncodeInsertReplyInto(const InsertReply& msg, std::string* out) {
  WireWriter w(out);
  WriteInsertReply(w, msg);
}

Result<InsertReply> DecodeInsertReply(std::string_view payload) {
  WireReader r(payload);
  InsertReply msg;
  msg.snapshot_version = r.U64();
  msg.rows_inserted = r.U32();
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeMetricsReply(const MetricsReply& msg) {
  WireWriter w;
  WriteMetricsReply(w, msg);
  return std::move(w).payload();
}

void EncodeMetricsReplyInto(const MetricsReply& msg, std::string* out) {
  WireWriter w(out);
  WriteMetricsReply(w, msg);
}

Result<MetricsReply> DecodeMetricsReply(std::string_view payload) {
  WireReader r(payload);
  MetricsReply msg;
  msg.json = r.Str();
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

std::string EncodeErrorReply(const ErrorReply& msg) {
  WireWriter w;
  WriteErrorReply(w, msg);
  return std::move(w).payload();
}

void EncodeErrorReplyInto(const ErrorReply& msg, std::string* out) {
  WireWriter w(out);
  WriteErrorReply(w, msg);
}

Result<ErrorReply> DecodeErrorReply(std::string_view payload) {
  WireReader r(payload);
  ErrorReply msg;
  msg.status_code = r.U8();
  msg.message = r.Str();
  QP_RETURN_IF_ERROR(FinishDecode(r));
  return msg;
}

}  // namespace qp
