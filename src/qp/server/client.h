#ifndef QP_SERVER_CLIENT_H_
#define QP_SERVER_CLIENT_H_

#include <string>
#include <vector>

#include "qp/server/wire.h"
#include "qp/util/net.h"
#include "qp/util/result.h"

namespace qp {

/// Blocking client for one qpricerd connection: one request frame out,
/// one reply frame in, in order. A kError reply is surfaced as the
/// server's Status (same code, message prefixed "server: "); transport
/// failures surface as the underlying net error. Move-only (owns the
/// socket); not thread-safe — use one client per thread, which is also
/// how the server counts connections for admission control.
class PricingClient {
 public:
  static Result<PricingClient> Connect(
      const std::string& host, uint16_t port,
      uint32_t max_frame_bytes = kDefaultMaxFrameBytes);

  PricingClient(PricingClient&&) = default;
  PricingClient& operator=(PricingClient&&) = default;

  Result<QuoteReply> Quote(uint32_t shard, std::string_view query_text);
  Result<QuoteBatchReply> QuoteBatch(
      uint32_t shard, const std::vector<std::string>& query_texts);
  Result<InsertReply> Insert(uint32_t shard, std::string_view relation,
                             const std::vector<std::vector<Value>>& rows);
  Result<MetricsReply> Metrics();
  /// Asks the daemon to stop serving; Ok once the ack frame arrives.
  Status Shutdown();

 private:
  explicit PricingClient(Socket socket, uint32_t max_frame_bytes)
      : socket_(std::move(socket)), max_frame_bytes_(max_frame_bytes) {}

  /// Sends one frame and reads the reply, mapping kError to a Status and
  /// checking the reply type tag.
  Result<Frame> RoundTrip(FrameType request, std::string payload,
                          FrameType expected_reply);

  Socket socket_;
  uint32_t max_frame_bytes_;
};

}  // namespace qp

#endif  // QP_SERVER_CLIENT_H_
