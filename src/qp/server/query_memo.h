#ifndef QP_SERVER_QUERY_MEMO_H_
#define QP_SERVER_QUERY_MEMO_H_

#include <string>
#include <unordered_map>

#include "qp/query/parser.h"
#include "qp/query/query.h"
#include "qp/relational/schema.h"
#include "qp/util/result.h"
#include "qp/util/thread_annotations.h"

namespace qp {

/// A thread-safe memo of parsed queries for one shard: query text →
/// (ConjunctiveQuery, fingerprint). Buyers re-issue a small set of hot
/// query shapes, so on the serving hot path both ParseQuery and
/// Fingerprint() are pure per-text constants — this takes them off the
/// per-frame cost entirely (qp.server.parse_memo_hits counts the wins).
///
/// Keying: conceptually (schema version, query text), but a shard's
/// schema is frozen for the server's lifetime (ShardMap docs), so one
/// memo per shard keys by text alone — a schema change would be a new
/// shard and a new memo.
///
/// Only successful parses are memoized (a garbage query must not occupy
/// capacity), and entries are never erased: the map is node-based, so
/// returned pointers stay valid across rehashes and for the memo's whole
/// lifetime. When full, new texts just parse unmemoized.
class QueryMemo {
 public:
  struct Parsed {
    ConjunctiveQuery query;
    std::string fingerprint;
  };

  static constexpr size_t kDefaultCapacity = 4096;

  /// `schema` must outlive the memo.
  explicit QueryMemo(const Schema* schema, size_t capacity = kDefaultCapacity)
      : schema_(schema), capacity_(capacity) {}

  QueryMemo(const QueryMemo&) = delete;
  QueryMemo& operator=(const QueryMemo&) = delete;

  /// Parses (or recalls) `text`. The returned pointer is owned by the
  /// memo and valid for its lifetime — or, past capacity, by `scratch`,
  /// which must outlive the caller's use of the result.
  Result<const Parsed*> Get(const std::string& text, Parsed* scratch)
      QP_EXCLUDES(mu_);

  size_t size() const QP_EXCLUDES(mu_);

 private:
  const Schema* const schema_;
  const size_t capacity_;
  mutable Mutex mu_;
  std::unordered_map<std::string, Parsed> entries_ QP_GUARDED_BY(mu_);
};

}  // namespace qp

#endif  // QP_SERVER_QUERY_MEMO_H_
