#include "qp/server/overload_controller.h"

#include <algorithm>
#include <chrono>

#include "qp/obs/metrics.h"

namespace qp {

namespace {

/// Pressure ladder depth. Levels 1-2 tighten only the deadline, 3-4 add
/// the batch admission cap, 5-6 add connection shedding — refusal levers
/// engage only after the degrade-gracefully lever is exhausted.
constexpr int kMaxLevel = 6;
constexpr int kCapLevel = 3;
constexpr int kConnLevel = 5;

/// How often the timer re-checks the stop flag while sleeping out a tick.
constexpr int64_t kStopPollMs = 5;

/// Calm threshold as a fraction of the target (7/10): the dead band
/// between "calm" and "hot" is where the controller holds its level, so
/// a signal hovering near the target does not whipsaw the knobs.
constexpr uint64_t CalmThresholdNs(uint64_t target_ns) {
  return target_ns * 7 / 10;
}

}  // namespace

OverloadController::OverloadController(
    const OverloadControllerOptions& options, ServingControls* controls,
    ThreadPool* pool, InFlightFn in_flight)
    : options_(options),
      controls_(controls),
      pool_(pool),
      in_flight_(std::move(in_flight)),
      base_deadline_ms_(controls->DeadlineMs()),
      base_admission_cap_(controls->AdmissionCap()),
      base_max_connections_(controls->MaxConnections()),
      request_window_(
          MetricsRegistry::Global().GetHistogram("qp.server.request_ns")),
      lane_wait_window_(MetricsRegistry::Global().GetHistogram(
          "qp.pool.lane_wait_ns.interactive")),
      calm_dwell_(options.relax_after_calm_ticks) {}

OverloadController::~OverloadController() { Stop(); }

void OverloadController::Start() {
  timer_ = std::thread([this] { TimerLoop(); });
}

void OverloadController::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  if (timer_.joinable()) timer_.join();
}

void OverloadController::TimerLoop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    // Sleep out one tick in short slices so Stop() is never waiting on a
    // long tick period.
    for (int64_t slept = 0;
         slept < options_.tick_ms && !stop_.load(std::memory_order_relaxed);
         slept += kStopPollMs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(kStopPollMs));
    }
    if (stop_.load(std::memory_order_relaxed)) return;
    const uint64_t seq = scheduled_.fetch_add(1, std::memory_order_relaxed) + 1;
    // The tick body belongs on the background lane so it never delays an
    // interactive frame — but under overload that lane starves, which is
    // exactly when control matters. A fire that finds the previous tick
    // still queued runs inline on this thread instead; the starvation
    // itself is exported as an overload symptom.
    const bool lane_starved =
        completed_.load(std::memory_order_acquire) + 1 < seq;
    if (pool_ == nullptr || lane_starved) {
      if (lane_starved) QP_METRIC_INCR("qp.server.ctl.starved_ticks");
      RunTick(seq);
    } else {
      pool_->Submit(ThreadPool::Lane::kBackground,
                    [this, seq] { RunTick(seq); });
    }
  }
}

void OverloadController::RunTick(uint64_t seq) {
  if (stop_.load(std::memory_order_relaxed)) return;
  MutexLock lock(&tick_mu_);
  // A queued tick that an inline tick already overtook is a no-op; its
  // window was consumed by the newer tick.
  if (seq <= last_run_seq_) {
    if (seq > completed_.load(std::memory_order_relaxed)) {
      completed_.store(seq, std::memory_order_release);
    }
    return;
  }
  last_run_seq_ = seq;
  request_window_.Advance();
  lane_wait_window_.Advance();
  Signals signals;
  signals.request_p99_ns = request_window_.Percentile(99);
  signals.request_p95_ns = request_window_.Percentile(95);
  signals.lane_wait_p95_ns = lane_wait_window_.Percentile(95);
  signals.window_count = request_window_.Count();
  signals.in_flight_connections = in_flight_ ? in_flight_() : 0;
  DecideAndActuate(signals);
  completed_.store(seq, std::memory_order_release);
}

void OverloadController::TickForTesting(const Signals& signals) {
  MutexLock lock(&tick_mu_);
  DecideAndActuate(signals);
}

void OverloadController::DecideAndActuate(const Signals& signals) {
  QP_METRIC_INCR("qp.server.ctl.ticks");
  const uint64_t target_ns =
      static_cast<uint64_t>(options_.target_p99_ms) * 1000000ull;
  // Hot on either signal: a blown handler p99, or interactive tasks
  // queueing in front of the workers longer than the whole objective
  // (request_ns cannot see queue time — the client does).
  const bool hot =
      (signals.window_count > 0 && signals.request_p99_ns > target_ns) ||
      signals.lane_wait_p95_ns > target_ns;
  // Calm only comfortably below the target; the band in between holds.
  const bool calm =
      !hot && (signals.window_count == 0 ||
               (signals.request_p99_ns <= CalmThresholdNs(target_ns) &&
                signals.lane_wait_p95_ns <= CalmThresholdNs(target_ns)));
  // Resolve an open relax probe before anything else acts on it. A hot
  // tick inside the window convicts the probe — the calm streak that
  // justified it was stale telemetry — and doubles the dwell; surviving
  // the window acquits it and halves the dwell back toward the base.
  if (probe_open_) {
    ++probe_age_ticks_;
    if (hot && probe_age_ticks_ <= options_.probe_fail_ticks) {
      probe_open_ = false;
      QP_METRIC_INCR("qp.server.ctl.probe_failures");
      calm_dwell_ = std::min(
          calm_dwell_ * 2, options_.relax_after_calm_ticks *
                               options_.max_calm_dwell_multiplier);
    } else if (probe_age_ticks_ > options_.probe_fail_ticks) {
      probe_open_ = false;
      calm_dwell_ = std::max(options_.relax_after_calm_ticks,
                             calm_dwell_ / 2);
    }
  }
  if (hot) {
    calm_ticks_ = 0;
    if (level_ < kMaxLevel) {
      ++level_;
      QP_METRIC_INCR("qp.server.ctl.tightenings");
      ApplyLevel(level_);
    }
  } else if (calm) {
    ++calm_ticks_;
    // One probe at a time: a second relaxation before the first resolves
    // would climb the ladder faster than its consequences can surface in
    // the windows (the frames admitted under the relaxed knobs are still
    // in flight).
    if (level_ > 0 && !probe_open_ && calm_ticks_ >= calm_dwell_) {
      calm_ticks_ = 0;
      --level_;
      probe_open_ = true;
      probe_age_ticks_ = 0;
      QP_METRIC_INCR("qp.server.ctl.relaxations");
      ApplyLevel(level_);
    }
  } else {
    calm_ticks_ = 0;  // in the dead band: hold the level, restart the streak
  }
  level_gauge_.store(level_, std::memory_order_relaxed);
  QP_METRIC_GAUGE_SET("qp.server.ctl.calm_dwell_ticks", calm_dwell_);
  QP_METRIC_GAUGE_SET("qp.server.ctl.level", level_);
  QP_METRIC_GAUGE_SET("qp.server.ctl.window_p99_ns", signals.request_p99_ns);
  QP_METRIC_GAUGE_SET("qp.server.ctl.window_p95_ns", signals.request_p95_ns);
  QP_METRIC_GAUGE_SET("qp.server.ctl.lane_wait_p95_ns",
                      signals.lane_wait_p95_ns);
  QP_METRIC_GAUGE_SET("qp.server.ctl.window_count", signals.window_count);
  QP_METRIC_GAUGE_SET("qp.server.ctl.inflight",
                      signals.in_flight_connections);
}

void OverloadController::ApplyLevel(int level) {
  const int64_t deadline = DeadlineForLevel(level);
  const int64_t cap = CapForLevel(level);
  const int64_t conns = ConnectionsForLevel(level);
  if (controls_->DeadlineMs() != deadline) {
    QP_METRIC_INCR("qp.server.ctl.deadline_actuations");
    controls_->deadline_ms.store(deadline, std::memory_order_relaxed);
  }
  if (controls_->AdmissionCap() != cap) {
    QP_METRIC_INCR("qp.server.ctl.cap_actuations");
    controls_->admission_cap.store(cap, std::memory_order_relaxed);
  }
  if (controls_->MaxConnections() != conns) {
    QP_METRIC_INCR("qp.server.ctl.conn_actuations");
    controls_->max_connections.store(conns, std::memory_order_relaxed);
  }
  QP_METRIC_GAUGE_SET("qp.server.ctl.deadline_ms", deadline);
  QP_METRIC_GAUGE_SET("qp.server.ctl.admission_cap", cap);
  QP_METRIC_GAUGE_SET("qp.server.ctl.max_connections", conns);
}

int64_t OverloadController::DeadlineForLevel(int level) const {
  if (level <= 0) return base_deadline_ms_;
  // First actuation pins the deadline at the configured value, or — when
  // serving ran deadline-free — at the p99 target itself; each further
  // level halves it down to the floor.
  const int64_t ceiling =
      base_deadline_ms_ > 0 ? base_deadline_ms_ : options_.target_p99_ms;
  const int64_t halved = ceiling >> (level - 1);
  return std::max(options_.deadline_floor_ms, halved);
}

int64_t OverloadController::CapForLevel(int level) const {
  if (level < kCapLevel) return base_admission_cap_;
  const int64_t base = base_admission_cap_ > 0
                           ? base_admission_cap_
                           : options_.fallback_admission_cap;
  return std::max(int64_t{1}, base >> (level - kCapLevel));
}

int64_t OverloadController::ConnectionsForLevel(int level) const {
  if (level < kConnLevel || base_max_connections_ <= 0) {
    return base_max_connections_;
  }
  const int64_t shrunk = base_max_connections_ >> (level - kConnLevel + 1);
  return std::max(options_.min_connections, shrunk);
}

}  // namespace qp
