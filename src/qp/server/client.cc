#include "qp/server/client.h"

#include <utility>

namespace qp {

namespace {

/// Rehydrates the server's Status from an ErrorReply's wire code.
Status StatusFromWire(uint8_t code, std::string message) {
  switch (static_cast<StatusCode>(code)) {
    case StatusCode::kOk:
      return Status::Ok();
    case StatusCode::kInvalidArgument:
      return Status::InvalidArgument(std::move(message));
    case StatusCode::kNotFound:
      return Status::NotFound(std::move(message));
    case StatusCode::kAlreadyExists:
      return Status::AlreadyExists(std::move(message));
    case StatusCode::kFailedPrecondition:
      return Status::FailedPrecondition(std::move(message));
    case StatusCode::kResourceExhausted:
      return Status::ResourceExhausted(std::move(message));
    case StatusCode::kUnimplemented:
      return Status::Unimplemented(std::move(message));
    case StatusCode::kDeadlineExceeded:
      return Status::DeadlineExceeded(std::move(message));
    case StatusCode::kInternal:
      break;
  }
  return Status::Internal(std::move(message));
}

}  // namespace

Result<PricingClient> PricingClient::Connect(const std::string& host,
                                             uint16_t port,
                                             uint32_t max_frame_bytes) {
  QP_ASSIGN_OR_RETURN(Socket socket, TcpConnect(host, port));
  return PricingClient(std::move(socket), max_frame_bytes);
}

Result<Frame> PricingClient::RoundTrip(FrameType request,
                                       std::string payload,
                                       FrameType expected_reply) {
  QP_RETURN_IF_ERROR(WriteFrame(socket_, static_cast<uint8_t>(request),
                                payload, max_frame_bytes_));
  QP_ASSIGN_OR_RETURN(auto frame, ReadFrame(socket_, max_frame_bytes_));
  if (!frame.has_value()) {
    return Status::Internal("server closed the connection mid-request");
  }
  if (frame->type == static_cast<uint8_t>(FrameType::kError)) {
    QP_ASSIGN_OR_RETURN(ErrorReply error, DecodeErrorReply(frame->payload));
    return StatusFromWire(error.status_code, "server: " + error.message);
  }
  if (frame->type != static_cast<uint8_t>(expected_reply)) {
    return Status::Internal("unexpected reply frame type " +
                            std::to_string(frame->type));
  }
  return *std::move(frame);
}

Result<QuoteReply> PricingClient::Quote(uint32_t shard,
                                        std::string_view query_text) {
  QuoteRequest request;
  request.shard = shard;
  request.query_text = std::string(query_text);
  QP_ASSIGN_OR_RETURN(
      Frame reply, RoundTrip(FrameType::kQuote, EncodeQuoteRequest(request),
                             FrameType::kQuoteReply));
  return DecodeQuoteReply(reply.payload);
}

Result<QuoteBatchReply> PricingClient::QuoteBatch(
    uint32_t shard, const std::vector<std::string>& query_texts) {
  QuoteBatchRequest request;
  request.shard = shard;
  request.query_texts = query_texts;
  QP_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kQuoteBatch, EncodeQuoteBatchRequest(request),
                FrameType::kQuoteBatchReply));
  return DecodeQuoteBatchReply(reply.payload);
}

Result<InsertReply> PricingClient::Insert(
    uint32_t shard, std::string_view relation,
    const std::vector<std::vector<Value>>& rows) {
  InsertRequest request;
  request.shard = shard;
  request.relation = std::string(relation);
  request.rows = rows;
  QP_ASSIGN_OR_RETURN(
      Frame reply,
      RoundTrip(FrameType::kInsert, EncodeInsertRequest(request),
                FrameType::kInsertReply));
  return DecodeInsertReply(reply.payload);
}

Result<MetricsReply> PricingClient::Metrics() {
  QP_ASSIGN_OR_RETURN(Frame reply,
                      RoundTrip(FrameType::kMetrics, std::string(),
                                FrameType::kMetricsReply));
  return DecodeMetricsReply(reply.payload);
}

Status PricingClient::Shutdown() {
  QP_ASSIGN_OR_RETURN(Frame reply,
                      RoundTrip(FrameType::kShutdown, std::string(),
                                FrameType::kShutdownReply));
  (void)reply;
  return Status::Ok();
}

}  // namespace qp
