#ifndef QP_SERVER_WIRE_H_
#define QP_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "qp/relational/value.h"
#include "qp/util/result.h"

namespace qp {

/// The qpricerd wire protocol: what goes inside a transport frame
/// (qp/util/net.h moves the frames themselves). Requests name a shard by
/// dense id; every reply carries the snapshot version it was served
/// against, so a client can observe the monotone publish order.
///
/// Payload encoding is little-endian fixed-width integers plus
/// length-prefixed strings; values are tagged (int64 | string), mirroring
/// qp::Value. Decoding is bounds-checked: a truncated or oversized field
/// yields InvalidArgument, never a wild read.

/// Frame type tags. Requests are < 0x80; each reply is request | 0x80.
enum class FrameType : uint8_t {
  kQuote = 0x01,
  kQuoteBatch = 0x02,
  kInsert = 0x03,
  kMetrics = 0x04,
  kShutdown = 0x05,
  kQuoteReply = 0x81,
  kQuoteBatchReply = 0x82,
  kInsertReply = 0x83,
  kMetricsReply = 0x84,
  kShutdownReply = 0x85,
  /// Reply to any request the server refused (unknown shard, parse
  /// failure, malformed payload, shutdown in progress...).
  kError = 0xff,
};

/// Appends fixed-width little-endian fields onto a payload string —
/// either its own (default) or a caller-provided scratch buffer whose
/// capacity survives across messages (the serving hot path encodes
/// thousands of replies per connection; see the Encode*Into variants).
class WireWriter {
 public:
  WireWriter() : out_(&owned_) {}
  /// Writes into `*out`, which is cleared first but keeps its capacity.
  /// `out` must outlive the writer; payload()&& is not meaningful in
  /// this mode (the caller already owns the buffer).
  explicit WireWriter(std::string* out) : out_(out) { out_->clear(); }

  void U8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void U32(uint32_t v);
  void U64(uint64_t v);
  void I64(int64_t v) { U64(static_cast<uint64_t>(v)); }
  /// uint32 byte length + raw bytes.
  void Str(std::string_view s);
  void Val(const Value& v);

  const std::string& payload() const& { return *out_; }
  std::string&& payload() && { return std::move(owned_); }

 private:
  std::string owned_;
  std::string* out_;
};

/// Bounds-checked reader over a payload. Reads past the end (or a string
/// length past the remaining bytes) latch an error; check status() after
/// the field reads — every accessor returns a zero value once failed.
class WireReader {
 public:
  explicit WireReader(std::string_view payload) : data_(payload) {}

  uint8_t U8();
  uint32_t U32();
  uint64_t U64();
  int64_t I64() { return static_cast<int64_t>(U64()); }
  std::string Str();
  /// Zero-copy Str: a view into the payload, valid while the payload
  /// outlives the reader (the server decodes hot requests in place).
  std::string_view StrView();
  Value Val();

  /// True when every read so far was in bounds and the caller may keep
  /// decoding.
  bool ok() const { return error_.empty(); }
  /// All payload consumed (trailing garbage means a version mismatch).
  bool AtEnd() const { return pos_ == data_.size(); }
  /// InvalidArgument naming the first out-of-bounds read, or Ok.
  Status status() const;

 private:
  bool Need(size_t bytes, const char* what);

  std::string_view data_;
  size_t pos_ = 0;
  std::string error_;
};

// ---- Requests ----

struct QuoteRequest {
  uint32_t shard = 0;
  std::string query_text;
};

struct QuoteBatchRequest {
  uint32_t shard = 0;
  std::vector<std::string> query_texts;
};

struct InsertRequest {
  uint32_t shard = 0;
  std::string relation;
  std::vector<std::vector<Value>> rows;
};

// METRICS and SHUTDOWN carry empty payloads.

// ---- Replies ----

struct QuoteReply {
  uint64_t snapshot_version = 0;
  /// Money in cents; kInfiniteMoney when the query is not for sale.
  int64_t price = 0;
  /// Deadline-degraded admissible over-estimate (PricingSolution::
  /// approximate), never cached server-side.
  bool approximate = false;
  std::string solver;
};

struct QuoteBatchReply {
  uint64_t snapshot_version = 0;
  struct Item {
    /// 0 = ok (price/approximate/solver valid); nonzero = qp::StatusCode
    /// of the per-query failure (message set, price fields zero).
    uint8_t status_code = 0;
    std::string message;
    int64_t price = 0;
    bool approximate = false;
    std::string solver;
  };
  std::vector<Item> items;
};

struct InsertReply {
  /// Version of the snapshot published by this insert; unchanged when
  /// every row was already present (no publish).
  uint64_t snapshot_version = 0;
  uint32_t rows_inserted = 0;
};

struct MetricsReply {
  std::string json;
};

struct ErrorReply {
  uint8_t status_code = 0;
  std::string message;
};

// ---- Encode / decode (one pair per message) ----

std::string EncodeQuoteRequest(const QuoteRequest& msg);
Result<QuoteRequest> DecodeQuoteRequest(std::string_view payload);

std::string EncodeQuoteBatchRequest(const QuoteBatchRequest& msg);
Result<QuoteBatchRequest> DecodeQuoteBatchRequest(std::string_view payload);

std::string EncodeInsertRequest(const InsertRequest& msg);
Result<InsertRequest> DecodeInsertRequest(std::string_view payload);

std::string EncodeQuoteReply(const QuoteReply& msg);
Result<QuoteReply> DecodeQuoteReply(std::string_view payload);

std::string EncodeQuoteBatchReply(const QuoteBatchReply& msg);
Result<QuoteBatchReply> DecodeQuoteBatchReply(std::string_view payload);

std::string EncodeInsertReply(const InsertReply& msg);
Result<InsertReply> DecodeInsertReply(std::string_view payload);

std::string EncodeMetricsReply(const MetricsReply& msg);
Result<MetricsReply> DecodeMetricsReply(std::string_view payload);

std::string EncodeErrorReply(const ErrorReply& msg);
Result<ErrorReply> DecodeErrorReply(std::string_view payload);

// Allocation-free reply encoders for the serving hot path: write into a
// reused per-connection scratch buffer (cleared, capacity kept) instead
// of returning a fresh string per frame.

void EncodeQuoteReplyInto(const QuoteReply& msg, std::string* out);
void EncodeQuoteBatchReplyInto(const QuoteBatchReply& msg, std::string* out);
void EncodeInsertReplyInto(const InsertReply& msg, std::string* out);
void EncodeMetricsReplyInto(const MetricsReply& msg, std::string* out);
void EncodeErrorReplyInto(const ErrorReply& msg, std::string* out);

}  // namespace qp

#endif  // QP_SERVER_WIRE_H_
