#include "qp/server/pricing_server.h"

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "qp/obs/metrics.h"
#include "qp/query/parser.h"
#include "qp/util/result.h"

namespace qp {

namespace {

/// How often blocked loops re-check the stop flag.
constexpr int kAcceptPollMs = 100;
constexpr int kReactorPollMs = 50;
/// Grace period for a shed socket's lingering close: long enough for a
/// localhost peer to read the error frame and hang up, short enough that
/// deaf peers cannot accumulate (the reactor holds one fd per lingerer,
/// nothing else).
constexpr int kShedDrainMs = 1000;
/// After answering a frame, how long a worker lingers on the connection
/// waiting for the next request before parking it back with the reactor.
/// Long enough that a closed-loop client's next frame (already in flight
/// on loopback) keeps the same worker — round trips never pay the
/// reactor's poll tick — and short enough that an idle connection frees
/// its worker almost immediately.
constexpr int kServeGraceMs = 1;

}  // namespace

PricingServer::PricingServer(ShardMap shards, Options options)
    : options_(options), shards_(std::move(shards)) {
  // Seed the live knobs from the static flags; the overload controller
  // captures these as its level-0 baseline.
  controls_.deadline_ms.store(options_.deadline_ms, std::memory_order_relaxed);
  controls_.admission_cap.store(options_.admission_cap,
                                std::memory_order_relaxed);
  controls_.max_connections.store(options_.max_connections,
                                  std::memory_order_relaxed);
}

PricingServer::~PricingServer() { Stop(); }

Status PricingServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (shards_.size() == 0) {
    return Status::FailedPrecondition("server has no shards");
  }
  QP_ASSIGN_OR_RETURN(listener_, TcpListen(options_.port));
  QP_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  QP_RETURN_IF_ERROR(OpenWakePipe(&wake_reader_, &wake_writer_));
  memos_.clear();
  for (uint32_t s = 0; s < shards_.size(); ++s) {
    memos_.push_back(std::make_unique<QueryMemo>(
        &shards_.shard(s)->seller->catalog().schema()));
  }
  workers_ = std::make_unique<ThreadPool>(
      options_.num_workers > 0 ? options_.num_workers : 1);
#if QP_METRICS_ENABLED
  // The pool (qp/util, layer 0) cannot see qp/obs; the server exports
  // its lane-wait measurements instead.
  workers_->SetLaneWaitObserver([](ThreadPool::Lane lane, uint64_t wait_ns) {
    if (lane == ThreadPool::Lane::kInteractive) {
      QP_METRIC_RECORD("qp.pool.lane_wait_ns.interactive", wait_ns);
    } else {
      QP_METRIC_RECORD("qp.pool.lane_wait_ns.background", wait_ns);
    }
  });
#endif  // QP_METRICS_ENABLED
  if (options_.warm_on_publish) {
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      ShardMap::Shard* shard = shards_.shard(s);
      shard->store->SetPublishListener(
          [this, shard](const SnapshotRef& snapshot,
                        const std::vector<RelationId>& mutated) {
            ScheduleWarming(shard, snapshot, mutated);
          });
    }
  }
  if (options_.target_p99_ms > 0) {
    OverloadControllerOptions ctl;
    ctl.target_p99_ms = options_.target_p99_ms;
    ctl.tick_ms = options_.controller_tick_ms > 0 ? options_.controller_tick_ms
                                                  : int64_t{50};
    controller_ = std::make_unique<OverloadController>(
        ctl, &controls_, workers_.get(), [this]() -> int64_t {
          return active_connections_.load(std::memory_order_relaxed);
        });
    controller_->Start();
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  reactor_thread_ = std::thread([this] { ReactorLoop(); });
  started_ = true;
  QP_METRIC_GAUGE_SET("qp.server.shards", shards_.size());
  return Status::Ok();
}

void PricingServer::Stop() {
  RequestStop();
  // Stop the controller's timer before draining the pool: ticks already
  // queued on the background lane capture the controller and must find it
  // alive (they observe the stop flag and return). Destruction waits
  // until after workers_.reset() for the same reason.
  if (controller_ != nullptr) controller_->Stop();
  if (accept_thread_.joinable()) accept_thread_.join();
  if (reactor_thread_.joinable()) {
    WakePipe(wake_writer_);  // unblock the reactor's poll promptly
    reactor_thread_.join();
  }
  // Detach the publish listeners before draining the pool: an in-flight
  // INSERT may still publish while workers unwind, and it must not hand
  // warming work to a pool that is being torn down. SetPublishListener
  // serializes with the listener on write_mu_.
  if (started_) {
    for (uint32_t s = 0; s < shards_.size(); ++s) {
      shards_.shard(s)->store->SetPublishListener(nullptr);
    }
  }
  // ThreadPool's destructor drains both lanes and joins; in-flight
  // ServeFrames tasks notice the stop flag and unwind first.
  workers_.reset();
  controller_.reset();
  {
    MutexLock lock(&conns_mu_);
    connections_.clear();
    draining_.clear();
  }
  listener_.Close();
}

void PricingServer::AcceptLoop() {
  while (!stop_requested()) {
    auto readable = WaitReadable(listener_, kAcceptPollMs);
    if (!readable.ok()) break;  // listener closed or failed
    if (!*readable) continue;
    auto accepted = Accept(listener_);
    if (!accepted.ok()) continue;
    QP_METRIC_INCR("qp.server.connections");
    // Bound every write on this socket: a peer that connects but never
    // reads must not park the accept thread (shed frame below) or a
    // worker (reply frames later) on a full send buffer forever.
    if (options_.send_timeout_ms > 0) {
      (void)SetSendTimeout(*accepted, options_.send_timeout_ms);
    }
    // The admission limit is a live knob: under pressure the controller
    // lowers it below the configured value, and those extra sheds are
    // controller actuations, counted separately. (0 admits nothing, as
    // it always has.)
    const int64_t max_conns = controls_.MaxConnections();
    if (active_connections_.load(std::memory_order_relaxed) >= max_conns) {
      // Shed at the door: an error frame is more useful to the client
      // than a connection that sits unserved behind saturated workers.
      QP_METRIC_INCR("qp.server.connections_shed");
      if (max_conns < options_.max_connections) {
        QP_METRIC_INCR("qp.server.ctl.connections_shed");
      }
      ErrorReply reply;
      reply.status_code = static_cast<uint8_t>(StatusCode::kResourceExhausted);
      reply.message = Status::ResourceExhausted(
                          "server at max_connections (" +
                          std::to_string(max_conns) +
                          "); connection shed")
                          .ToString();
      Socket shed = *std::move(accepted);
      (void)WriteFrame(shed, static_cast<uint8_t>(FrameType::kError),
                       EncodeErrorReply(reply), options_.max_frame_bytes);
      // Lingering close: the peer's request is usually already in our
      // receive buffer, and close(2) over unread data answers with RST —
      // destroying the error frame we just sent before the peer reads
      // it. FIN the write side instead and let the reactor drain the
      // socket until the peer closes (or a deadline passes), so the shed
      // frame always survives and the accept thread never waits.
      (void)ShutdownWrite(shed);
      auto draining = std::make_shared<DrainingShed>(std::move(shed));
      draining->deadline = std::chrono::steady_clock::now() +
                           std::chrono::milliseconds(kShedDrainMs);
      {
        MutexLock lock(&conns_mu_);
        draining_.push_back(std::move(draining));
      }
      WakePipe(wake_writer_);
      continue;
    }
    auto conn = std::make_shared<Connection>(*std::move(accepted));
    {
      MutexLock lock(&conns_mu_);
      connections_.push_back(std::move(conn));
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    QP_METRIC_GAUGE_SET(
        "qp.server.active_connections",
        active_connections_.load(std::memory_order_relaxed));
    // The reactor may be mid-poll on the old connection set; make it
    // re-arm with the new one included.
    WakePipe(wake_writer_);
  }
}

void PricingServer::ReactorLoop() {
  std::vector<std::shared_ptr<Connection>> idle;
  std::vector<std::shared_ptr<DrainingShed>> draining;
  std::vector<const Socket*> pollset;
  while (!stop_requested()) {
    idle.clear();
    draining.clear();
    pollset.clear();
    pollset.push_back(&wake_reader_);
    {
      MutexLock lock(&conns_mu_);
      // Reap shed sockets whose peer finished or whose grace period
      // expired; snapshot the rest for this poll round (shared_ptrs keep
      // them alive while we poll outside the lock).
      const auto now = std::chrono::steady_clock::now();
      size_t kept_shed = 0;
      for (std::shared_ptr<DrainingShed>& shed : draining_) {
        if (shed->done || now >= shed->deadline) {
          continue;  // dropped: the socket closes with the last ref
        }
        draining_[kept_shed++] = std::move(shed);
      }
      draining_.resize(kept_shed);
      draining.assign(draining_.begin(), draining_.end());
      // Reap finished connections (closed and no task in flight), then
      // snapshot the idle ones for this poll round. Busy connections are
      // owned by their ServeFrames task; polling them too would race the
      // task's reads and double-dispatch.
      size_t kept = 0;
      for (std::shared_ptr<Connection>& conn : connections_) {
        if (conn->closed.load(std::memory_order_relaxed) &&
            !conn->busy.load(std::memory_order_acquire)) {
          active_connections_.fetch_sub(1, std::memory_order_relaxed);
          continue;  // dropped: the socket closes with the last ref
        }
        connections_[kept++] = std::move(conn);
      }
      connections_.resize(kept);
      QP_METRIC_GAUGE_SET(
          "qp.server.active_connections",
          active_connections_.load(std::memory_order_relaxed));
      for (const std::shared_ptr<Connection>& conn : connections_) {
        if (!conn->busy.load(std::memory_order_acquire) &&
            !conn->closed.load(std::memory_order_relaxed)) {
          idle.push_back(conn);
        }
      }
    }
    for (const std::shared_ptr<Connection>& conn : idle) {
      pollset.push_back(&conn->socket);
    }
    for (const std::shared_ptr<DrainingShed>& shed : draining) {
      pollset.push_back(&shed->socket);
    }
    auto ready = WaitAnyReadable(pollset, kReactorPollMs);
    if (!ready.ok()) break;
    for (size_t idx : *ready) {
      if (idx == 0) {
        DrainWakePipe(wake_reader_);
        continue;
      }
      if (idx > idle.size()) {
        // A lingering shed socket: swallow late request bytes; EOF (or
        // a hard error) means the peer has its error frame and the next
        // round reaps the entry. Only this thread touches `done`.
        DrainingShed* shed = draining[idx - 1 - idle.size()].get();
        auto finished = DrainReadable(shed->socket);
        shed->done = finished.ok() && *finished;
        continue;
      }
      const std::shared_ptr<Connection>& conn = idle[idx - 1];
      // One in-flight task per connection: `busy` flips here and only
      // ServeFrames clears it, so replies stay in request order.
      conn->busy.store(true, std::memory_order_relaxed);
      workers_->Submit(ThreadPool::Lane::kInteractive,
                       [this, conn] { ServeFrames(conn.get()); });
    }
  }
}

void PricingServer::ServeFrames(Connection* conn) {
  while (!stop_requested()) {
    auto got =
        ReadFrameInto(conn->socket, options_.max_frame_bytes, &conn->request);
    if (!got.ok()) {
      // Oversized or truncated frame: tell the peer why, then hang up
      // (the stream is unframed from here on).
      ErrorReply reply;
      reply.status_code = static_cast<uint8_t>(got.status().code());
      reply.message = got.status().ToString();
      conn->reply.type = static_cast<uint8_t>(FrameType::kError);
      EncodeErrorReplyInto(reply, &conn->reply.payload);
      (void)WriteFrame(conn->socket, conn->reply.type, conn->reply.payload,
                       options_.max_frame_bytes);
      conn->closed.store(true, std::memory_order_relaxed);
      break;
    }
    if (!*got) {  // clean EOF between frames
      conn->closed.store(true, std::memory_order_relaxed);
      break;
    }
    QP_METRIC_INCR("qp.server.frames");
    const bool is_shutdown =
        conn->request.type == static_cast<uint8_t>(FrameType::kShutdown);
    {
      QP_METRIC_SCOPED_TIMER("qp.server.request_ns");
      HandleFrame(conn);
    }
    if (!WriteFrame(conn->socket, conn->reply.type, conn->reply.payload,
                    options_.max_frame_bytes)
             .ok()) {
      conn->closed.store(true, std::memory_order_relaxed);
      break;
    }
    if (is_shutdown) {
      conn->closed.store(true, std::memory_order_relaxed);
      break;
    }
    // Linger briefly for the client's next frame; park with the reactor
    // once the connection goes quiet.
    auto more = WaitReadable(conn->socket, kServeGraceMs);
    if (!more.ok()) {
      conn->closed.store(true, std::memory_order_relaxed);
      break;
    }
    if (!*more) break;
  }
  // Release ownership last: after this store the reactor may hand the
  // connection (and its scratch state) to another worker.
  conn->busy.store(false, std::memory_order_release);
  WakePipe(wake_writer_);
}

void PricingServer::HandleFrame(Connection* conn) {
  switch (static_cast<FrameType>(conn->request.type)) {
    case FrameType::kQuote:
      return HandleQuote(conn);
    case FrameType::kQuoteBatch:
      return HandleQuoteBatch(conn);
    case FrameType::kInsert:
      return HandleInsert(conn);
    case FrameType::kMetrics:
      return HandleMetrics(conn);
    case FrameType::kShutdown:
      // Ack first; ServeFrames closes after writing the reply and the
      // daemon's owner thread runs Stop() once it sees the flag.
      RequestStop();
      QP_METRIC_INCR("qp.server.shutdown_requests");
      conn->reply.type = static_cast<uint8_t>(FrameType::kShutdownReply);
      conn->reply.payload.clear();
      return;
    default:
      return SetError(conn,
                      Status::InvalidArgument("unknown frame type " +
                                              std::to_string(
                                                  conn->request.type)));
  }
}

void PricingServer::SetError(Connection* conn, const Status& status) {
  ErrorReply reply;
  reply.status_code = static_cast<uint8_t>(status.code());
  reply.message = status.ToString();
  conn->reply.type = static_cast<uint8_t>(FrameType::kError);
  EncodeErrorReplyInto(reply, &conn->reply.payload);
}

BatchPricer* PricingServer::PricerFor(Connection* conn,
                                      const ShardMap::Shard* shard,
                                      const SnapshotRef& snapshot) {
  if (conn->pricer == nullptr) {
    BatchPricerOptions pricer_options;
    pricer_options.num_threads = 1;  // concurrency comes from connections
    pricer_options.cache = shard->cache.get();
    // Fallback values; the live controls below take precedence. Each
    // frame snapshots the controls once, so a controller actuation lands
    // on a frame boundary, never mid-quote.
    pricer_options.deadline_ms = options_.deadline_ms;
    pricer_options.admission_cap = options_.admission_cap;
    pricer_options.controls = &controls_;
    conn->pricer =
        std::make_unique<BatchPricer>(&snapshot->engine(), pricer_options);
  }
  // Cheap per frame (two pointer stores): the connection's next frame may
  // address a different shard or a newer snapshot generation.
  conn->pricer->Rebind(&snapshot->engine(), shard->cache.get());
  return conn->pricer.get();
}

void PricingServer::HandleQuote(Connection* conn) {
  // Decoded in place — the request payload outlives this handler, so the
  // query text never leaves the read buffer until the memo needs a key.
  WireReader reader(conn->request.payload);
  const uint32_t shard_id = reader.U32();
  const std::string_view text = reader.StrView();
  if (!reader.ok()) return SetError(conn, reader.status());
  if (!reader.AtEnd()) {
    return SetError(conn,
                    Status::InvalidArgument("trailing bytes after message"));
  }
  ShardMap::Shard* shard = shards_.shard(shard_id);
  if (shard == nullptr) {
    return SetError(conn, Status::NotFound("unknown shard " +
                                           std::to_string(shard_id)));
  }
  conn->text_scratch.assign(text.data(), text.size());
  auto parsed = memos_[shard_id]->Get(conn->text_scratch,
                                      &conn->parse_scratch);
  if (!parsed.ok()) return SetError(conn, parsed.status());

  // Pin one generation for the whole quote. The store may publish newer
  // snapshots underneath us; this quote stays internally consistent and
  // its cache entry stays pinned to the pinned generation's counters.
  SnapshotRef snapshot = shard->store->Acquire();
  QP_METRIC_RECORD("qp.server.snapshot_age",
                   shard->store->version() - snapshot->version());
  BatchPricer* pricer = PricerFor(conn, shard, snapshot);
  auto quote = pricer->Price((*parsed)->query, (*parsed)->fingerprint);
  if (!quote.ok()) {
    QP_METRIC_INCR("qp.server.quotes_failed");
    return SetError(conn, quote.status());
  }
  QP_METRIC_INCR("qp.server.quotes_ok");
  QuoteReply reply;
  reply.snapshot_version = snapshot->version();
  reply.price = quote->solution.price;
  reply.approximate = quote->solution.approximate;
  reply.solver = quote->solver;
  conn->reply.type = static_cast<uint8_t>(FrameType::kQuoteReply);
  EncodeQuoteReplyInto(reply, &conn->reply.payload);
}

void PricingServer::HandleQuoteBatch(Connection* conn) {
  auto request = DecodeQuoteBatchRequest(conn->request.payload);
  if (!request.ok()) return SetError(conn, request.status());
  ShardMap::Shard* shard = shards_.shard(request->shard);
  if (shard == nullptr) {
    return SetError(conn, Status::NotFound("unknown shard " +
                                           std::to_string(request->shard)));
  }
  SnapshotRef snapshot = shard->store->Acquire();
  QP_METRIC_RECORD("qp.server.snapshot_age",
                   shard->store->version() - snapshot->version());

  QuoteBatchReply reply;
  reply.snapshot_version = snapshot->version();
  // Parse failures become per-item errors, not a frame error: one typo
  // must not void the rest of the batch.
  std::vector<ConjunctiveQuery> queries;
  std::vector<int> query_slot(request->query_texts.size(), -1);
  reply.items.resize(request->query_texts.size());
  QueryMemo* memo = memos_[request->shard].get();
  for (size_t i = 0; i < request->query_texts.size(); ++i) {
    auto parsed = memo->Get(request->query_texts[i], &conn->parse_scratch);
    if (!parsed.ok()) {
      reply.items[i].status_code =
          static_cast<uint8_t>(parsed.status().code());
      reply.items[i].message = parsed.status().ToString();
      continue;
    }
    query_slot[i] = static_cast<int>(queries.size());
    queries.push_back((*parsed)->query);
  }

  BatchPricer* pricer = PricerFor(conn, shard, snapshot);
  std::vector<Result<PriceQuote>> quotes = pricer->PriceAll(queries);

  for (size_t i = 0; i < reply.items.size(); ++i) {
    if (query_slot[i] < 0) continue;  // parse failure already recorded
    const Result<PriceQuote>& quote = quotes[query_slot[i]];
    if (!quote.ok()) {
      QP_METRIC_INCR("qp.server.quotes_failed");
      reply.items[i].status_code =
          static_cast<uint8_t>(quote.status().code());
      reply.items[i].message = quote.status().ToString();
      continue;
    }
    QP_METRIC_INCR("qp.server.quotes_ok");
    reply.items[i].price = quote->solution.price;
    reply.items[i].approximate = quote->solution.approximate;
    reply.items[i].solver = quote->solver;
  }
  conn->reply.type = static_cast<uint8_t>(FrameType::kQuoteBatchReply);
  EncodeQuoteBatchReplyInto(reply, &conn->reply.payload);
}

void PricingServer::HandleInsert(Connection* conn) {
  auto request = DecodeInsertRequest(conn->request.payload);
  if (!request.ok()) return SetError(conn, request.status());
  ShardMap::Shard* shard = shards_.shard(request->shard);
  if (shard == nullptr) {
    return SetError(conn, Status::NotFound("unknown shard " +
                                           std::to_string(request->shard)));
  }
  // A publish fires the shard's listener (ScheduleWarming) on this
  // thread, which only enqueues background-lane tasks — the insert reply
  // is not delayed by any re-pricing.
  auto outcome = shard->store->Insert(request->relation, request->rows);
  if (!outcome.ok()) {
    QP_METRIC_INCR("qp.server.inserts_failed");
    return SetError(conn, outcome.status());
  }
  QP_METRIC_INCR("qp.server.inserts_ok");
  QP_METRIC_COUNT("qp.server.rows_inserted", outcome->rows_inserted);
  InsertReply reply;
  reply.snapshot_version = outcome->version;
  reply.rows_inserted = static_cast<uint32_t>(outcome->rows_inserted);
  conn->reply.type = static_cast<uint8_t>(FrameType::kInsertReply);
  EncodeInsertReplyInto(reply, &conn->reply.payload);
}

void PricingServer::HandleMetrics(Connection* conn) {
  MetricsReply reply;
  reply.json = MetricsToJson(MetricsRegistry::Global().Snapshot());
  conn->reply.type = static_cast<uint8_t>(FrameType::kMetricsReply);
  EncodeMetricsReplyInto(reply, &conn->reply.payload);
}

void PricingServer::ScheduleWarming(ShardMap::Shard* shard,
                                    const SnapshotRef& snapshot,
                                    const std::vector<RelationId>& mutated) {
  (void)snapshot;  // warmers Acquire() the head themselves: never older
  if (stop_requested() || options_.hot_set_size <= 0) return;
  std::vector<HotQuery> hot =
      shard->cache->HotQueries(static_cast<size_t>(options_.hot_set_size));
  for (HotQuery& h : hot) {
    // Only queries reading a mutated relation lost their entries; the
    // rest are still generation-fresh and need no work.
    bool affected = false;
    for (RelationId rel : h.query.ReferencedRelations()) {
      if (std::find(mutated.begin(), mutated.end(), rel) != mutated.end()) {
        affected = true;
        break;
      }
    }
    if (!affected) continue;
    QP_METRIC_INCR("qp.server.warm_tasks");
    workers_->Submit(
        ThreadPool::Lane::kBackground, [this, shard, h = std::move(h)] {
          if (stop_requested()) return;
          // Re-acquire the head: if more publishes landed while this task
          // queued, warm straight to the newest generation (the cache's
          // generation-pinned Store makes racing an in-flight publish
          // harmless — the staler quote is dropped).
          SnapshotRef snap = shard->store->Acquire();
          if (shard->cache->HasFresh(h.fingerprint, snap->db())) return;
          auto quote = snap->engine().Price(h.query);
          // Exact solves only: a warmed entry must be bit-identical to a
          // cold re-solve, and approximate quotes are never cached.
          if (!quote.ok() || quote->solution.approximate) return;
          shard->cache->Store(h.fingerprint, h.query, snap->db(), *quote,
                              /*warmed=*/true);
        });
  }
}

}  // namespace qp
