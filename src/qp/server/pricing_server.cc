#include "qp/server/pricing_server.h"

#include <string>
#include <utility>
#include <vector>

#include "qp/obs/metrics.h"
#include "qp/pricing/batch_pricer.h"
#include "qp/query/parser.h"
#include "qp/util/result.h"

namespace qp {

namespace {

/// How often blocked loops re-check the stop flag.
constexpr int kAcceptPollMs = 100;
constexpr int kConnectionPollMs = 50;

Frame ErrorFrame(const Status& status) {
  ErrorReply reply;
  reply.status_code = static_cast<uint8_t>(status.code());
  reply.message = status.ToString();
  Frame frame;
  frame.type = static_cast<uint8_t>(FrameType::kError);
  frame.payload = EncodeErrorReply(reply);
  return frame;
}

Frame ReplyFrame(FrameType type, std::string payload) {
  Frame frame;
  frame.type = static_cast<uint8_t>(type);
  frame.payload = std::move(payload);
  return frame;
}

}  // namespace

PricingServer::PricingServer(ShardMap shards, Options options)
    : options_(options), shards_(std::move(shards)) {}

PricingServer::~PricingServer() { Stop(); }

Status PricingServer::Start() {
  if (started_) return Status::FailedPrecondition("server already started");
  if (shards_.size() == 0) {
    return Status::FailedPrecondition("server has no shards");
  }
  QP_ASSIGN_OR_RETURN(listener_, TcpListen(options_.port));
  QP_ASSIGN_OR_RETURN(port_, LocalPort(listener_));
  workers_ = std::make_unique<ThreadPool>(
      options_.num_workers > 0 ? options_.num_workers : 1);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  started_ = true;
  QP_METRIC_GAUGE_SET("qp.server.shards", shards_.size());
  return Status::Ok();
}

void PricingServer::Stop() {
  RequestStop();
  if (accept_thread_.joinable()) accept_thread_.join();
  // ThreadPool's destructor drains the queue and joins; handlers notice
  // the stop flag at their next poll tick and unwind first.
  workers_.reset();
  listener_.Close();
}

void PricingServer::AcceptLoop() {
  while (!stop_requested()) {
    auto readable = WaitReadable(listener_, kAcceptPollMs);
    if (!readable.ok()) break;  // listener closed or failed
    if (!*readable) continue;
    auto accepted = Accept(listener_);
    if (!accepted.ok()) continue;
    QP_METRIC_INCR("qp.server.connections");
    if (active_connections_.load(std::memory_order_relaxed) >=
        options_.max_connections) {
      // Shed at the door: an error frame is more useful to the client
      // than a connection that sits unserved behind saturated workers.
      QP_METRIC_INCR("qp.server.connections_shed");
      Frame frame = ErrorFrame(Status::ResourceExhausted(
          "server at max_connections (" +
          std::to_string(options_.max_connections) + "); connection shed"));
      Socket shed = *std::move(accepted);
      (void)WriteFrame(shed, frame.type, frame.payload,
                       options_.max_frame_bytes);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    QP_METRIC_GAUGE_SET(
        "qp.server.active_connections",
        active_connections_.load(std::memory_order_relaxed));
    // shared_ptr because std::function requires copyable callables.
    auto conn = std::make_shared<Socket>(*std::move(accepted));
    workers_->Submit([this, conn] {
      HandleConnection(std::move(*conn));
      active_connections_.fetch_sub(1, std::memory_order_relaxed);
      QP_METRIC_GAUGE_SET(
          "qp.server.active_connections",
          active_connections_.load(std::memory_order_relaxed));
    });
  }
}

void PricingServer::HandleConnection(Socket conn) {
  while (!stop_requested()) {
    auto readable = WaitReadable(conn, kConnectionPollMs);
    if (!readable.ok()) return;
    if (!*readable) continue;
    auto frame = ReadFrame(conn, options_.max_frame_bytes);
    if (!frame.ok()) {
      // Oversized or truncated frame: tell the peer why, then hang up
      // (the stream is unframed from here on).
      Frame reply = ErrorFrame(frame.status());
      (void)WriteFrame(conn, reply.type, reply.payload,
                       options_.max_frame_bytes);
      return;
    }
    if (!frame->has_value()) return;  // clean EOF between frames
    QP_METRIC_INCR("qp.server.frames");
    QP_METRIC_SCOPED_TIMER("qp.server.request_ns");
    Frame reply = HandleFrame(**frame);
    if (!WriteFrame(conn, reply.type, reply.payload, options_.max_frame_bytes)
             .ok()) {
      return;
    }
    if ((*frame)->type == static_cast<uint8_t>(FrameType::kShutdown)) {
      return;
    }
  }
}

Frame PricingServer::HandleFrame(const Frame& frame) {
  switch (static_cast<FrameType>(frame.type)) {
    case FrameType::kQuote:
      return HandleQuote(frame.payload);
    case FrameType::kQuoteBatch:
      return HandleQuoteBatch(frame.payload);
    case FrameType::kInsert:
      return HandleInsert(frame.payload);
    case FrameType::kMetrics:
      return HandleMetrics();
    case FrameType::kShutdown:
      // Ack first; HandleConnection closes after writing the reply and
      // the daemon's owner thread runs Stop() once it sees the flag.
      RequestStop();
      QP_METRIC_INCR("qp.server.shutdown_requests");
      return ReplyFrame(FrameType::kShutdownReply, std::string());
    default:
      return ErrorFrame(Status::InvalidArgument(
          "unknown frame type " + std::to_string(frame.type)));
  }
}

Frame PricingServer::HandleQuote(std::string_view payload) {
  auto request = DecodeQuoteRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  ShardMap::Shard* shard = shards_.shard(request->shard);
  if (shard == nullptr) {
    return ErrorFrame(Status::NotFound("unknown shard " +
                                       std::to_string(request->shard)));
  }
  auto query =
      ParseQuery(shard->seller->catalog().schema(), request->query_text);
  if (!query.ok()) return ErrorFrame(query.status());

  // Pin one generation for the whole quote. The store may publish newer
  // snapshots underneath us; this quote stays internally consistent and
  // its cache entry stays pinned to the pinned generation's counters.
  SnapshotRef snapshot = shard->store->Acquire();
  QP_METRIC_RECORD("qp.server.snapshot_age",
                   shard->store->version() - snapshot->version());
  BatchPricerOptions pricer_options;
  pricer_options.num_threads = 1;  // concurrency comes from connections
  pricer_options.cache = shard->cache.get();
  pricer_options.deadline_ms = options_.deadline_ms;
  BatchPricer pricer(&snapshot->engine(), pricer_options);
  auto quote = pricer.Price(*query);
  if (!quote.ok()) {
    QP_METRIC_INCR("qp.server.quotes_failed");
    return ErrorFrame(quote.status());
  }
  QP_METRIC_INCR("qp.server.quotes_ok");
  QuoteReply reply;
  reply.snapshot_version = snapshot->version();
  reply.price = quote->solution.price;
  reply.approximate = quote->solution.approximate;
  reply.solver = quote->solver;
  return ReplyFrame(FrameType::kQuoteReply, EncodeQuoteReply(reply));
}

Frame PricingServer::HandleQuoteBatch(std::string_view payload) {
  auto request = DecodeQuoteBatchRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  ShardMap::Shard* shard = shards_.shard(request->shard);
  if (shard == nullptr) {
    return ErrorFrame(Status::NotFound("unknown shard " +
                                       std::to_string(request->shard)));
  }
  SnapshotRef snapshot = shard->store->Acquire();
  QP_METRIC_RECORD("qp.server.snapshot_age",
                   shard->store->version() - snapshot->version());

  QuoteBatchReply reply;
  reply.snapshot_version = snapshot->version();
  // Parse failures become per-item errors, not a frame error: one typo
  // must not void the rest of the batch.
  std::vector<ConjunctiveQuery> queries;
  std::vector<int> query_slot(request->query_texts.size(), -1);
  reply.items.resize(request->query_texts.size());
  const Schema& schema = shard->seller->catalog().schema();
  for (size_t i = 0; i < request->query_texts.size(); ++i) {
    auto query = ParseQuery(schema, request->query_texts[i]);
    if (!query.ok()) {
      reply.items[i].status_code =
          static_cast<uint8_t>(query.status().code());
      reply.items[i].message = query.status().ToString();
      continue;
    }
    query_slot[i] = static_cast<int>(queries.size());
    queries.push_back(*std::move(query));
  }

  BatchPricerOptions pricer_options;
  pricer_options.num_threads = 1;  // concurrency comes from connections
  pricer_options.cache = shard->cache.get();
  pricer_options.deadline_ms = options_.deadline_ms;
  pricer_options.admission_cap = options_.admission_cap;
  BatchPricer pricer(&snapshot->engine(), pricer_options);
  std::vector<Result<PriceQuote>> quotes = pricer.PriceAll(queries);

  for (size_t i = 0; i < reply.items.size(); ++i) {
    if (query_slot[i] < 0) continue;  // parse failure already recorded
    const Result<PriceQuote>& quote = quotes[query_slot[i]];
    if (!quote.ok()) {
      QP_METRIC_INCR("qp.server.quotes_failed");
      reply.items[i].status_code =
          static_cast<uint8_t>(quote.status().code());
      reply.items[i].message = quote.status().ToString();
      continue;
    }
    QP_METRIC_INCR("qp.server.quotes_ok");
    reply.items[i].price = quote->solution.price;
    reply.items[i].approximate = quote->solution.approximate;
    reply.items[i].solver = quote->solver;
  }
  return ReplyFrame(FrameType::kQuoteBatchReply,
                    EncodeQuoteBatchReply(reply));
}

Frame PricingServer::HandleInsert(std::string_view payload) {
  auto request = DecodeInsertRequest(payload);
  if (!request.ok()) return ErrorFrame(request.status());
  ShardMap::Shard* shard = shards_.shard(request->shard);
  if (shard == nullptr) {
    return ErrorFrame(Status::NotFound("unknown shard " +
                                       std::to_string(request->shard)));
  }
  auto outcome = shard->store->Insert(request->relation, request->rows);
  if (!outcome.ok()) {
    QP_METRIC_INCR("qp.server.inserts_failed");
    return ErrorFrame(outcome.status());
  }
  QP_METRIC_INCR("qp.server.inserts_ok");
  QP_METRIC_COUNT("qp.server.rows_inserted", outcome->rows_inserted);
  InsertReply reply;
  reply.snapshot_version = outcome->version;
  reply.rows_inserted = static_cast<uint32_t>(outcome->rows_inserted);
  return ReplyFrame(FrameType::kInsertReply, EncodeInsertReply(reply));
}

Frame PricingServer::HandleMetrics() {
  MetricsReply reply;
  reply.json = MetricsToJson(MetricsRegistry::Global().Snapshot());
  return ReplyFrame(FrameType::kMetricsReply, EncodeMetricsReply(reply));
}

}  // namespace qp
