#ifndef QP_SERVER_PRICING_SERVER_H_
#define QP_SERVER_PRICING_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>

#include "qp/market/snapshot.h"
#include "qp/server/wire.h"
#include "qp/util/net.h"
#include "qp/util/status.h"
#include "qp/util/thread_pool.h"

namespace qp {

/// qpricerd's serving core: an accept loop feeding a worker pool, one
/// task per connection, each connection a sequence of request frames
/// answered in order (DESIGN.md §14).
///
/// Thread model:
///   * Start() binds the listener and spawns the accept thread; the
///     accept thread polls WaitReadable (so it notices stop_ within
///     ~100ms), admits or sheds each connection, and hands admitted
///     sockets to the ThreadPool.
///   * Workers run HandleConnection: poll-read a frame, dispatch, reply.
///     Quotes Acquire() the shard's head snapshot per frame and price
///     against it — a concurrent INSERT publishes a new generation
///     without ever blocking or being blocked by in-flight quotes.
///   * Stop() (owner thread only) flips the stop flag, joins the accept
///     thread, then drains the pool; handlers observe the flag at their
///     next poll tick and unwind. A SHUTDOWN frame acks, then requests
///     stop — the owner still runs Stop() (qpricerd polls
///     stop_requested()).
///
/// The server owns its ShardMap. Per-frame pricing goes through a
/// single-threaded BatchPricer (no nested pool): concurrency comes from
/// connection-level parallelism, and the shard's QuoteCache plus
/// generation-pinned entries make hits cross-connection.
struct PricingServerOptions {
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Worker tasks = concurrent connections being served.
  int num_workers = 8;
  /// Admission limit: connections beyond this are shed with an error
  /// frame instead of queuing behind busy workers.
  int max_connections = 64;
  /// Per-quote serving deadline (0 = none); expiry degrades to an
  /// admissible approximate quote, never an error.
  int64_t deadline_ms = 0;
  /// Per-QUOTE_BATCH admission cap (0 = unlimited).
  int admission_cap = 0;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
};

class PricingServer {
 public:
  using Options = PricingServerOptions;

  PricingServer(ShardMap shards, Options options = {});

  /// Runs Stop().
  ~PricingServer();

  PricingServer(const PricingServer&) = delete;
  PricingServer& operator=(const PricingServer&) = delete;

  /// Binds, listens, and starts serving. Call once.
  Status Start();

  /// Asks the serving threads to unwind (safe from any thread, including
  /// a worker handling a SHUTDOWN frame).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Joins the accept thread and worker pool. Owner thread only; also run
  /// by the destructor. Idempotent, but must not race itself.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  const ShardMap& shards() const { return shards_; }

 private:
  void AcceptLoop();
  void HandleConnection(Socket conn);
  /// Dispatches one request frame to its handler; the returned frame is
  /// the reply to write (kError carries an ErrorReply payload).
  Frame HandleFrame(const Frame& frame);

  Frame HandleQuote(std::string_view payload);
  Frame HandleQuoteBatch(std::string_view payload);
  Frame HandleInsert(std::string_view payload);
  Frame HandleMetrics();

  const Options options_;
  /// Frozen after construction (table-level); per-shard stores and caches
  /// are internally thread-safe. NOLINT(guarded-by-coverage)
  ShardMap shards_;

  std::atomic<bool> stop_{false};
  /// Connections currently owned by a worker task (admission control).
  std::atomic<int> active_connections_{0};

  // Written by Start() before the accept thread exists, then only read
  // (listener_, port_) or touched by Stop() after joining (accept_thread_,
  // workers_); no concurrent mutation, so deliberately unguarded.
  Socket listener_;                       // NOLINT(guarded-by-coverage)
  uint16_t port_ = 0;                     // NOLINT(guarded-by-coverage)
  std::thread accept_thread_;             // NOLINT(guarded-by-coverage)
  std::unique_ptr<ThreadPool> workers_;   // NOLINT(guarded-by-coverage)
  bool started_ = false;                  // NOLINT(guarded-by-coverage)
};

}  // namespace qp

#endif  // QP_SERVER_PRICING_SERVER_H_
