#ifndef QP_SERVER_PRICING_SERVER_H_
#define QP_SERVER_PRICING_SERVER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "qp/market/snapshot.h"
#include "qp/pricing/batch_pricer.h"
#include "qp/pricing/serving_controls.h"
#include "qp/server/overload_controller.h"
#include "qp/server/query_memo.h"
#include "qp/server/wire.h"
#include "qp/util/net.h"
#include "qp/util/status.h"
#include "qp/util/thread_pool.h"

namespace qp {

/// qpricerd's serving core: an accept thread, a reactor thread
/// multiplexing idle connections, and a two-lane worker pool serving
/// frames on the interactive lane while publish-triggered cache warming
/// runs on the background lane (DESIGN.md §14–15).
///
/// Thread model:
///   * Start() binds the listener and spawns the accept thread; the
///     accept thread polls WaitReadable (so it notices stop_ within
///     ~100ms), admits or sheds each connection at the door, registers
///     admitted connections, and wakes the reactor.
///   * The reactor thread polls every idle connection plus a self-wake
///     pipe in one WaitAnyReadable call. A readable connection is marked
///     busy and handed to the pool's *interactive* lane as a ServeFrames
///     task; at most one task per connection is ever in flight, which
///     preserves per-connection reply order without any per-connection
///     lock.
///   * ServeFrames reads and answers frames back-to-back while the
///     client keeps the pipe full (a ~1ms readability grace keeps
///     closed-loop clients on one worker, off the reactor's poll tick),
///     then parks the connection back with the reactor. Quotes Acquire()
///     the shard's head snapshot per frame and price against it — a
///     concurrent INSERT publishes a new generation without ever
///     blocking or being blocked by in-flight quotes.
///   * After a publish, the shard's SnapshotStore listener asks the
///     server to re-price the cache's hot queries against the new
///     snapshot on the *background* lane — warmed entries land before
///     buyers re-ask, and never delay an interactive frame.
///   * Stop() (owner thread only) flips the stop flag, joins the accept
///     and reactor threads, detaches the publish listeners, then drains
///     the pool; in-flight tasks observe the flag and unwind. A SHUTDOWN
///     frame acks, then requests stop — the owner still runs Stop()
///     (qpricerd polls stop_requested()).
///
/// The server owns its ShardMap. Per-frame pricing goes through each
/// connection's own single-threaded BatchPricer (no nested pool),
/// rebound to the frame's snapshot engine: concurrency comes from
/// connection-level parallelism, and the shard's QuoteCache plus
/// generation-pinned entries make hits cross-connection. Parsed queries
/// come from a per-shard QueryMemo, so steady-state quote frames do not
/// allocate for parsing, fingerprinting, or reply encoding.
struct PricingServerOptions {
  /// 0 = ephemeral; read the bound port back with port().
  uint16_t port = 0;
  /// Worker threads shared by frame serving (interactive lane) and cache
  /// warming (background lane).
  int num_workers = 8;
  /// Admission limit: connections beyond this are shed with an error
  /// frame instead of queuing behind busy workers.
  int max_connections = 64;
  /// Per-quote serving deadline (0 = none); expiry degrades to an
  /// admissible approximate quote, never an error.
  int64_t deadline_ms = 0;
  /// Per-QUOTE_BATCH admission cap (0 = unlimited).
  int admission_cap = 0;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Re-price hot cached queries on the background lane after each
  /// publish (off = invalidate-only, the pre-warming behavior; the
  /// serve_churn benches A/B exactly this switch).
  bool warm_on_publish = true;
  /// How many of the cache's hottest queries each publish re-prices.
  int hot_set_size = 16;
  /// Request-latency objective for the overload controller, in
  /// milliseconds (0 = no controller; the knobs above stay static).
  /// When set, deadline_ms / admission_cap / max_connections become the
  /// *baseline* the controller tightens from under pressure and relaxes
  /// back to after it (DESIGN.md §16).
  int64_t target_p99_ms = 0;
  /// Controller tick period (also its telemetry window).
  int64_t controller_tick_ms = 50;
  /// Bounds every reply write (shed frames and served frames alike) so a
  /// client that connects but never reads can only stall one write for
  /// this long, never wedge the accept thread or a worker forever
  /// (0 = unbounded).
  int send_timeout_ms = 5000;
};

class PricingServer {
 public:
  using Options = PricingServerOptions;

  PricingServer(ShardMap shards, Options options = {});

  /// Runs Stop().
  ~PricingServer();

  PricingServer(const PricingServer&) = delete;
  PricingServer& operator=(const PricingServer&) = delete;

  /// Binds, listens, and starts serving. Call once.
  Status Start();

  /// Asks the serving threads to unwind (safe from any thread, including
  /// a worker handling a SHUTDOWN frame).
  void RequestStop() { stop_.store(true, std::memory_order_relaxed); }
  bool stop_requested() const {
    return stop_.load(std::memory_order_relaxed);
  }

  /// Joins the accept and reactor threads and the worker pool. Owner
  /// thread only; also run by the destructor. Idempotent, but must not
  /// race itself.
  void Stop();

  /// The bound port (valid after Start).
  uint16_t port() const { return port_; }

  const ShardMap& shards() const { return shards_; }

 private:
  /// One accepted connection and its per-connection scratch state. The
  /// `busy` flag is the ownership token: while a ServeFrames task holds
  /// it, that task is the sole user of the socket and every scratch
  /// member, so none of them need a lock.
  struct Connection {
    explicit Connection(Socket s) : socket(std::move(s)) {}

    Socket socket;  // NOLINT(guarded-by-coverage)
    /// A ServeFrames task owns the connection (reactor must not poll it).
    std::atomic<bool> busy{false};
    /// Finished (EOF / error / shutdown); the reactor reaps it.
    std::atomic<bool> closed{false};

    // Scratch reused across this connection's frames; touched only by
    // the owning ServeFrames task (see `busy` above).
    Frame request;                        // NOLINT(guarded-by-coverage)
    Frame reply;                          // NOLINT(guarded-by-coverage)
    std::string text_scratch;             // NOLINT(guarded-by-coverage)
    QueryMemo::Parsed parse_scratch;      // NOLINT(guarded-by-coverage)
    std::unique_ptr<BatchPricer> pricer;  // NOLINT(guarded-by-coverage)
  };

  void AcceptLoop();
  void ReactorLoop();
  /// Serves frames until the connection goes quiet, closes, or the
  /// server stops; then returns the connection to the reactor.
  void ServeFrames(Connection* conn);
  /// Dispatches one request frame (conn->request) to its handler, which
  /// encodes the reply into conn->reply.
  void HandleFrame(Connection* conn);

  void HandleQuote(Connection* conn);
  void HandleQuoteBatch(Connection* conn);
  void HandleInsert(Connection* conn);
  void HandleMetrics(Connection* conn);

  /// Encodes `status` as conn's kError reply.
  static void SetError(Connection* conn, const Status& status);

  /// The per-frame pricer: conn's own BatchPricer rebound to this
  /// frame's snapshot engine and shard cache.
  BatchPricer* PricerFor(Connection* conn, const ShardMap::Shard* shard,
                         const SnapshotRef& snapshot);

  /// Publish listener body: fan the shard's hot queries affected by
  /// `mutated` out to the background lane for re-pricing against (at
  /// least) `snapshot`.
  void ScheduleWarming(ShardMap::Shard* shard, const SnapshotRef& snapshot,
                       const std::vector<RelationId>& mutated);

  const Options options_;
  /// Live serving knobs, seeded from options_ at construction. Every
  /// frame snapshots them through its connection's BatchPricer and the
  /// accept thread reads the connection limit per accept; the overload
  /// controller (when enabled) is their only writer. All-atomic members.
  ServingControls controls_;  // NOLINT(guarded-by-coverage)
  /// Frozen after construction (table-level); per-shard stores and caches
  /// are internally thread-safe.
  ShardMap shards_;  // NOLINT(guarded-by-coverage)
  /// One parse memo per shard (schema is per-shard and frozen); built in
  /// Start(), then only read.
  std::vector<std::unique_ptr<QueryMemo>> memos_;  // NOLINT(guarded-by-coverage)

  std::atomic<bool> stop_{false};
  /// Connections currently registered with the reactor (admission
  /// control; decremented when the reactor reaps a closed connection).
  std::atomic<int> active_connections_{0};

  /// A shed socket lingering until the peer finishes. The error frame
  /// has been written and the write side FIN'd (ShutdownWrite); the
  /// reactor drains any late request bytes and closes on EOF or at
  /// `deadline` — closing immediately would RST away the unread error
  /// frame whenever the peer's request was already in our receive
  /// buffer. `done` is the reactor's private bookkeeping (single
  /// thread): set when the peer EOF'd and the entry can be reaped.
  struct DrainingShed {
    explicit DrainingShed(Socket s) : socket(std::move(s)) {}

    Socket socket;  // NOLINT(guarded-by-coverage)
    std::chrono::steady_clock::time_point deadline;  // NOLINT(guarded-by-coverage)
    bool done = false;  // NOLINT(guarded-by-coverage)
  };

  /// Connection registry, shared by the accept thread (push) and the
  /// reactor (snapshot + reap).
  Mutex conns_mu_;
  std::vector<std::shared_ptr<Connection>> connections_
      QP_GUARDED_BY(conns_mu_);
  /// Shed sockets lingering for a graceful close (see DrainingShed).
  std::vector<std::shared_ptr<DrainingShed>> draining_
      QP_GUARDED_BY(conns_mu_);

  // Written by Start() before the serving threads exist, then only read
  // (listener_, port_, wake pipe) or touched by Stop() after joining
  // (threads, workers_); no concurrent mutation, so deliberately
  // unguarded.
  Socket listener_;                       // NOLINT(guarded-by-coverage)
  Socket wake_reader_;                    // NOLINT(guarded-by-coverage)
  Socket wake_writer_;                    // NOLINT(guarded-by-coverage)
  uint16_t port_ = 0;                     // NOLINT(guarded-by-coverage)
  std::thread accept_thread_;             // NOLINT(guarded-by-coverage)
  std::thread reactor_thread_;            // NOLINT(guarded-by-coverage)
  std::unique_ptr<ThreadPool> workers_;   // NOLINT(guarded-by-coverage)
  /// Built by Start() when target_p99_ms > 0. Stop() order matters: the
  /// controller's timer stops before the pool drains (queued tick tasks
  /// capture the controller and become no-ops once stopped), and the
  /// controller is destroyed only after workers_.reset() returns.
  std::unique_ptr<OverloadController> controller_;  // NOLINT(guarded-by-coverage)
  bool started_ = false;                  // NOLINT(guarded-by-coverage)
};

}  // namespace qp

#endif  // QP_SERVER_PRICING_SERVER_H_
