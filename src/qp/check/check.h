#ifndef QP_CHECK_CHECK_H_
#define QP_CHECK_CHECK_H_

#include <cstdint>
#include <string>

namespace qp {

/// Enforcement level of `QP_ASSERT` / `QP_INVARIANT`, selectable at runtime
/// via the `QP_CHECK_LEVEL` environment variable (`off`, `log`, `abort`) or
/// programmatically with `SetCheckLevel`.
///
///  * kOff   — checks are skipped entirely (the condition is not evaluated).
///  * kLog   — a failed check is logged to stderr and counted; execution
///             continues. Tests use this level to prove a checker fires.
///  * kAbort — a failed check is logged and the process aborts (the
///             default: a violated paper invariant means every price the
///             process serves from then on is suspect).
enum class CheckLevel { kOff = 0, kLog = 1, kAbort = 2 };

/// The current enforcement level. First call reads `QP_CHECK_LEVEL` from
/// the environment (unknown values fall back to kAbort).
CheckLevel GetCheckLevel();

/// Overrides the enforcement level for the whole process.
void SetCheckLevel(CheckLevel level);

/// Number of check failures observed since start / the last Reset. Only
/// meaningful at kLog (kAbort never returns after the first failure).
uint64_t CheckFailureCount();

/// The message of the most recent failure ("" if none).
std::string LastCheckFailure();

/// Resets the failure counter and last-failure message (test isolation).
void ResetCheckFailures();

/// Restores the previous level and failure counters on destruction, so a
/// test can drop to kLog, trip checkers deliberately, and leave no trace.
class ScopedCheckLevel {
 public:
  explicit ScopedCheckLevel(CheckLevel level);
  ~ScopedCheckLevel();
  ScopedCheckLevel(const ScopedCheckLevel&) = delete;
  ScopedCheckLevel& operator=(const ScopedCheckLevel&) = delete;

 private:
  CheckLevel previous_;
  uint64_t previous_failures_;
};

namespace check_internal {

/// True when checks should run (level != kOff). Cheap: one relaxed atomic
/// load, safe to call on hot paths.
bool CheckEnabled();

/// Records one failed check: logs to stderr, bumps the failure counter and,
/// at kAbort, terminates the process. `kind` is "QP_ASSERT" or
/// "QP_INVARIANT"; `detail` is the caller's human-readable message.
void ReportFailure(const char* kind, const char* condition, const char* file,
                   int line, const std::string& detail);

}  // namespace check_internal
}  // namespace qp

/// Programming-contract check, the project's replacement for `assert`:
/// unlike `assert` it survives NDEBUG builds and obeys QP_CHECK_LEVEL.
/// `detail` may be any expression convertible to std::string; it is only
/// evaluated on failure. The condition must be side-effect free (it is not
/// evaluated at kOff).
#define QP_ASSERT(cond, detail)                                            \
  do {                                                                     \
    if (::qp::check_internal::CheckEnabled() && !(cond)) {                 \
      ::qp::check_internal::ReportFailure("QP_ASSERT", #cond, __FILE__,    \
                                          __LINE__, (detail));             \
    }                                                                      \
  } while (0)

/// Paper-contract check: identical machinery to QP_ASSERT but tagged as an
/// invariant of the pricing theory (Prop 2.8, Thm 2.15, Prop 2.20, ...) so
/// a violation in logs points at the paper, not at a coding slip.
#define QP_INVARIANT(cond, detail)                                         \
  do {                                                                     \
    if (::qp::check_internal::CheckEnabled() && !(cond)) {                 \
      ::qp::check_internal::ReportFailure("QP_INVARIANT", #cond, __FILE__, \
                                          __LINE__, (detail));             \
    }                                                                      \
  } while (0)

#endif  // QP_CHECK_CHECK_H_
