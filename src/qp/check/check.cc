#include "qp/check/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#include "qp/util/thread_annotations.h"

namespace qp {
namespace {

constexpr int kUninitialized = -1;

/// The process-wide level. -1 until first read; then the CheckLevel value.
std::atomic<int> g_level{kUninitialized};
std::atomic<uint64_t> g_failures{0};

Mutex g_last_failure_mu;
std::string* g_last_failure QP_GUARDED_BY(g_last_failure_mu) = nullptr;

std::string& LastFailureStorage() QP_REQUIRES(g_last_failure_mu) {
  if (g_last_failure == nullptr) g_last_failure = new std::string();
  return *g_last_failure;
}

int LevelFromEnv() {
  const char* env = std::getenv("QP_CHECK_LEVEL");
  if (env == nullptr) return static_cast<int>(CheckLevel::kAbort);
  std::string value(env);
  if (value == "off") return static_cast<int>(CheckLevel::kOff);
  if (value == "log") return static_cast<int>(CheckLevel::kLog);
  if (value == "abort") return static_cast<int>(CheckLevel::kAbort);
  std::fprintf(stderr,
               "qp/check: unknown QP_CHECK_LEVEL '%s', using 'abort'\n", env);
  return static_cast<int>(CheckLevel::kAbort);
}

}  // namespace

CheckLevel GetCheckLevel() {
  int level = g_level.load(std::memory_order_relaxed);
  if (level == kUninitialized) {
    // Benign race: concurrent first calls compute the same env-derived value.
    level = LevelFromEnv();
    g_level.store(level, std::memory_order_relaxed);
  }
  return static_cast<CheckLevel>(level);
}

void SetCheckLevel(CheckLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

uint64_t CheckFailureCount() {
  return g_failures.load(std::memory_order_relaxed);
}

std::string LastCheckFailure() {
  MutexLock lock(&g_last_failure_mu);
  return LastFailureStorage();
}

void ResetCheckFailures() {
  g_failures.store(0, std::memory_order_relaxed);
  MutexLock lock(&g_last_failure_mu);
  LastFailureStorage().clear();
}

ScopedCheckLevel::ScopedCheckLevel(CheckLevel level)
    : previous_(GetCheckLevel()), previous_failures_(CheckFailureCount()) {
  SetCheckLevel(level);
}

ScopedCheckLevel::~ScopedCheckLevel() {
  SetCheckLevel(previous_);
  g_failures.store(previous_failures_, std::memory_order_relaxed);
}

namespace check_internal {

bool CheckEnabled() { return GetCheckLevel() != CheckLevel::kOff; }

void ReportFailure(const char* kind, const char* condition, const char* file,
                   int line, const std::string& detail) {
  std::string message = std::string(kind) + " failed at " + file + ":" +
                        std::to_string(line) + ": (" + condition + ") — " +
                        detail;
  g_failures.fetch_add(1, std::memory_order_relaxed);
  {
    MutexLock lock(&g_last_failure_mu);
    LastFailureStorage() = message;
  }
  std::fprintf(stderr, "%s\n", message.c_str());
  if (GetCheckLevel() == CheckLevel::kAbort) std::abort();
}

}  // namespace check_internal
}  // namespace qp
