#include "qp/workload/join_workloads.h"

#include <string>

#include "qp/query/parser.h"

namespace qp {
namespace {

/// Column values v0..v{n-1}.
std::vector<Value> MakeColumn(int n, const std::string& prefix) {
  std::vector<Value> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(Value::Str(prefix + std::to_string(i)));
  }
  return out;
}

/// Prices every view of `attr` with probability `priced_fraction`
/// (probability 1 when `force_full_cover`).
Status PriceAttr(Catalog& catalog, SelectionPriceSet* prices, AttrRef attr,
                 const JoinWorkloadParams& params, bool force_full_cover,
                 Rng* rng) {
  for (ValueId v : catalog.Column(attr)) {
    bool priced = force_full_cover || rng->NextBool(params.priced_fraction);
    // Draw the price even when unused so the stream is stable across
    // force_full_cover settings.
    Money price = rng->NextInRange(params.min_price, params.max_price);
    if (priced) {
      QP_RETURN_IF_ERROR(prices->Set(SelectionView{attr, v}, price));
    }
  }
  return Status::Ok();
}

/// Fills a relation with random tuples at the given density.
Status FillRelation(Instance* db, const Catalog& catalog, RelationId rel,
                    double density, Rng* rng) {
  const int arity = catalog.schema().arity(rel);
  std::vector<const std::vector<ValueId>*> cols(arity);
  for (int p = 0; p < arity; ++p) {
    cols[p] = &catalog.Column(AttrRef{rel, p});
  }
  std::vector<size_t> idx(arity, 0);
  while (true) {
    if (rng->NextBool(density)) {
      Tuple t(arity);
      for (int p = 0; p < arity; ++p) t[p] = (*cols[p])[idx[p]];
      auto inserted = db->Insert(rel, std::move(t));
      if (!inserted.ok()) return inserted.status();
    }
    int p = arity - 1;
    while (p >= 0 && ++idx[p] == cols[p]->size()) idx[p--] = 0;
    if (p < 0) return Status::Ok();
  }
}

}  // namespace

Result<Workload> MakeChainWorkload(int middle_binary_atoms,
                                   const JoinWorkloadParams& params) {
  if (middle_binary_atoms < 0) {
    return Status::InvalidArgument("negative atom count");
  }
  Workload w;
  w.catalog = std::make_unique<Catalog>();
  Rng rng(params.seed);

  const int k = middle_binary_atoms;
  // Relations: U0(X), B1(X,Y), ..., Bk(X,Y), Uk(X).
  auto u0 = w.catalog->AddRelation("U0", {"X"});
  if (!u0.ok()) return u0.status();
  std::vector<RelationId> binaries;
  for (int i = 1; i <= k; ++i) {
    auto b = w.catalog->AddRelation("B" + std::to_string(i), {"X", "Y"});
    if (!b.ok()) return b.status();
    binaries.push_back(*b);
  }
  auto uk = w.catalog->AddRelation("U" + std::to_string(k + 1), {"X"});
  if (!uk.ok()) return uk.status();

  // One shared column per chain variable x0..xk.
  std::vector<std::vector<Value>> var_cols;
  for (int i = 0; i <= k; ++i) {
    var_cols.push_back(
        MakeColumn(params.column_size, "v" + std::to_string(i) + "_"));
  }
  QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*u0, 0}, var_cols[0]));
  for (int i = 0; i < k; ++i) {
    QP_RETURN_IF_ERROR(
        w.catalog->SetColumn(AttrRef{binaries[i], 0}, var_cols[i]));
    QP_RETURN_IF_ERROR(
        w.catalog->SetColumn(AttrRef{binaries[i], 1}, var_cols[i + 1]));
  }
  QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*uk, 0}, var_cols[k]));

  w.db = std::make_unique<Instance>(w.catalog.get());
  QP_RETURN_IF_ERROR(
      FillRelation(w.db.get(), *w.catalog, *u0, params.tuple_density, &rng));
  for (RelationId b : binaries) {
    QP_RETURN_IF_ERROR(
        FillRelation(w.db.get(), *w.catalog, b, params.tuple_density, &rng));
  }
  QP_RETURN_IF_ERROR(
      FillRelation(w.db.get(), *w.catalog, *uk, params.tuple_density, &rng));

  // Prices: unary attributes always fully covered (so ID is for sale).
  QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{*u0, 0},
                               params, /*force_full_cover=*/true, &rng));
  for (RelationId b : binaries) {
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{b, 0},
                                 params, /*force_full_cover=*/true, &rng));
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{b, 1},
                                 params, /*force_full_cover=*/false, &rng));
  }
  QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{*uk, 0},
                               params, /*force_full_cover=*/true, &rng));

  // Query text: Q(x0..xk) :- U0(x0), B1(x0,x1), ..., Uk(xk).
  std::string head = "Q(";
  std::string body;
  for (int i = 0; i <= k; ++i) {
    if (i > 0) head += ",";
    head += "x" + std::to_string(i);
  }
  body += "U0(x0)";
  for (int i = 1; i <= k; ++i) {
    body += ", B" + std::to_string(i) + "(x" + std::to_string(i - 1) +
            ",x" + std::to_string(i) + ")";
  }
  body += ", U" + std::to_string(k + 1) + "(x" + std::to_string(k) + ")";
  auto query = ParseQuery(w.catalog->schema(), head + ") :- " + body);
  if (!query.ok()) return query.status();
  w.query = std::move(*query);
  return w;
}

Result<Workload> MakeStarWorkload(int branches,
                                  const JoinWorkloadParams& params) {
  if (branches < 1) return Status::InvalidArgument("need >= 1 branch");
  Workload w;
  w.catalog = std::make_unique<Catalog>();
  Rng rng(params.seed);

  auto hub = w.catalog->AddRelation("Hub", {"X"});
  if (!hub.ok()) return hub.status();
  std::vector<RelationId> petals;
  for (int i = 1; i <= branches; ++i) {
    auto p = w.catalog->AddRelation("P" + std::to_string(i), {"X", "Y"});
    if (!p.ok()) return p.status();
    petals.push_back(*p);
  }

  std::vector<Value> hub_col = MakeColumn(params.column_size, "h");
  QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*hub, 0}, hub_col));
  for (int i = 0; i < branches; ++i) {
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{petals[i], 0}, hub_col));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(
        AttrRef{petals[i], 1},
        MakeColumn(params.column_size, "p" + std::to_string(i) + "_")));
  }

  w.db = std::make_unique<Instance>(w.catalog.get());
  QP_RETURN_IF_ERROR(
      FillRelation(w.db.get(), *w.catalog, *hub, params.tuple_density, &rng));
  for (RelationId p : petals) {
    QP_RETURN_IF_ERROR(
        FillRelation(w.db.get(), *w.catalog, p, params.tuple_density, &rng));
  }

  QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{*hub, 0},
                               params, /*force_full_cover=*/true, &rng));
  for (RelationId p : petals) {
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{p, 0},
                                 params, /*force_full_cover=*/true, &rng));
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{p, 1},
                                 params, /*force_full_cover=*/false, &rng));
  }

  std::string head = "Q(x";
  std::string body = "Hub(x)";
  for (int i = 1; i <= branches; ++i) {
    head += ",y" + std::to_string(i);
    body += ", P" + std::to_string(i) + "(x,y" + std::to_string(i) + ")";
  }
  auto query = ParseQuery(w.catalog->schema(), head + ") :- " + body);
  if (!query.ok()) return query.status();
  w.query = std::move(*query);
  return w;
}

Result<Workload> MakeCycleWorkload(int k, const JoinWorkloadParams& params) {
  if (k < 2) return Status::InvalidArgument("cycles need k >= 2");
  Workload w;
  w.catalog = std::make_unique<Catalog>();
  Rng rng(params.seed);

  std::vector<RelationId> rels;
  for (int i = 1; i <= k; ++i) {
    auto r = w.catalog->AddRelation("R" + std::to_string(i), {"X", "Y"});
    if (!r.ok()) return r.status();
    rels.push_back(*r);
  }
  std::vector<std::vector<Value>> var_cols;
  for (int i = 1; i <= k; ++i) {
    var_cols.push_back(
        MakeColumn(params.column_size, "c" + std::to_string(i) + "_"));
  }
  for (int i = 0; i < k; ++i) {
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{rels[i], 0},
                                            var_cols[i]));
    QP_RETURN_IF_ERROR(
        w.catalog->SetColumn(AttrRef{rels[i], 1}, var_cols[(i + 1) % k]));
  }

  w.db = std::make_unique<Instance>(w.catalog.get());
  for (RelationId r : rels) {
    QP_RETURN_IF_ERROR(
        FillRelation(w.db.get(), *w.catalog, r, params.tuple_density, &rng));
  }
  for (RelationId r : rels) {
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{r, 0},
                                 params, /*force_full_cover=*/true, &rng));
    QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{r, 1},
                                 params, /*force_full_cover=*/false, &rng));
  }

  std::string head = "Q(";
  std::string body;
  for (int i = 1; i <= k; ++i) {
    if (i > 1) {
      head += ",";
      body += ", ";
    }
    head += "x" + std::to_string(i);
    body += "R" + std::to_string(i) + "(x" + std::to_string(i) + ",x" +
            std::to_string(i % k + 1) + ")";
  }
  auto query = ParseQuery(w.catalog->schema(), head + ") :- " + body);
  if (!query.ok()) return query.status();
  w.query = std::move(*query);
  return w;
}

Result<Workload> MakeHardQueryWorkload(HardQuery which,
                                       const JoinWorkloadParams& params) {
  Workload w;
  w.catalog = std::make_unique<Catalog>();
  Rng rng(params.seed);
  std::vector<Value> col_x = MakeColumn(params.column_size, "a");
  std::vector<Value> col_y = MakeColumn(params.column_size, "b");
  std::vector<Value> col_z = MakeColumn(params.column_size, "c");

  std::string query_text;
  if (which == HardQuery::kH1) {
    auto r = w.catalog->AddRelation("R", {"X", "Y", "Z"});
    auto s = w.catalog->AddRelation("S", {"X"});
    auto t = w.catalog->AddRelation("T", {"X"});
    auto u = w.catalog->AddRelation("U", {"X"});
    if (!r.ok() || !s.ok() || !t.ok() || !u.ok()) {
      return Status::Internal("schema");
    }
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*r, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*r, 1}, col_y));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*r, 2}, col_z));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*t, 0}, col_y));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*u, 0}, col_z));
    query_text = "H1(x,y,z) :- R(x,y,z), S(x), T(y), U(z)";
  } else if (which == HardQuery::kH2) {
    auto r = w.catalog->AddRelation("R", {"X"});
    auto s = w.catalog->AddRelation("S", {"X", "Y"});
    auto t = w.catalog->AddRelation("T", {"X", "Y"});
    if (!r.ok() || !s.ok() || !t.ok()) return Status::Internal("schema");
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*r, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 1}, col_y));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*t, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*t, 1}, col_y));
    query_text = "H2(x,y) :- R(x), S(x,y), T(x,y)";
  } else if (which == HardQuery::kH3) {
    auto r = w.catalog->AddRelation("R", {"X"});
    auto s = w.catalog->AddRelation("S", {"X", "Y"});
    if (!r.ok() || !s.ok()) return Status::Internal("schema");
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*r, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 1}, col_x));
    query_text = "H3(x,y) :- R(x), S(x,y), R(y)";
  } else {
    // H4 is the paper's minimal non-full NP-hard query: a bare projection.
    auto s = w.catalog->AddRelation("S", {"X", "Y"});
    if (!s.ok()) return Status::Internal("schema");
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 0}, col_x));
    QP_RETURN_IF_ERROR(w.catalog->SetColumn(AttrRef{*s, 1}, col_y));
    query_text = "H4(x) :- S(x,y)";
  }

  w.db = std::make_unique<Instance>(w.catalog.get());
  for (RelationId rel = 0; rel < w.catalog->schema().num_relations();
       ++rel) {
    QP_RETURN_IF_ERROR(FillRelation(w.db.get(), *w.catalog, rel,
                                    params.tuple_density, &rng));
  }
  for (RelationId rel = 0; rel < w.catalog->schema().num_relations();
       ++rel) {
    for (int p = 0; p < w.catalog->schema().arity(rel); ++p) {
      QP_RETURN_IF_ERROR(PriceAttr(*w.catalog, &w.prices, AttrRef{rel, p},
                                   params, /*force_full_cover=*/p == 0,
                                   &rng));
    }
  }
  auto query = ParseQuery(w.catalog->schema(), query_text);
  if (!query.ok()) return query.status();
  w.query = std::move(*query);
  return w;
}

}  // namespace qp
