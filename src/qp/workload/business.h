#ifndef QP_WORKLOAD_BUSINESS_H_
#define QP_WORKLOAD_BUSINESS_H_

#include <string>
#include <vector>

#include "qp/market/seller.h"
#include "qp/util/random.h"

namespace qp {

/// Parameters of the US-business dataset the paper's introduction
/// motivates (CustomLists' American Business Database: per-state views at
/// $199, the whole set at $399, an email subset at $299).
struct BusinessMarketParams {
  int num_states = 8;
  int counties_per_state = 4;
  int num_businesses = 120;
  /// Fraction of businesses with a known e-mail address.
  double email_fraction = 0.6;
  /// Price of σ_{InState.state=s} — "all businesses in one state".
  Money state_price = Dollars(199);
  /// Price of σ_{InCounty.county=c} — "all businesses in one county".
  Money county_price = Dollars(79);
  /// Price of the per-business selection views (the atomic granularity).
  Money business_price = Dollars(2);
  uint64_t seed = 7;
};

/// Relations created:
///   Business(bid)          — the business registry (unary)
///   Email(bid)             — businesses with an e-mail address (unary)
///   InState(bid, state)    — location by state
///   InCounty(bid, county)  — location by county (counties are nested in
///                            states; county names are "<state>/c<i>")
/// Explicit prices: per-state and per-county selections plus per-business
/// selections on every relation (so the whole database is for sale,
/// Lemma 3.1).
Status PopulateBusinessMarket(Seller* seller,
                              const BusinessMarketParams& params);

/// The state codes used by the generator, in column order ("S0".."S{n-1}"
/// with the first two renamed "WA" and "OR" for readable examples).
std::vector<std::string> BusinessStates(const BusinessMarketParams& params);

}  // namespace qp

#endif  // QP_WORKLOAD_BUSINESS_H_
