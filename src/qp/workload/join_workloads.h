#ifndef QP_WORKLOAD_JOIN_WORKLOADS_H_
#define QP_WORKLOAD_JOIN_WORKLOADS_H_

#include <memory>
#include <string>
#include <vector>

#include "qp/pricing/price_points.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/random.h"
#include "qp/util/result.h"

namespace qp {

/// A self-contained synthetic pricing problem: catalog + data + explicit
/// prices + the query to price. All generators are deterministic in the
/// seed.
struct Workload {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Instance> db;
  SelectionPriceSet prices;
  ConjunctiveQuery query;
};

/// Parameters shared by the join workload generators.
struct JoinWorkloadParams {
  /// Column size of every attribute.
  int column_size = 8;
  /// Probability that a potential tuple is present in the database.
  double tuple_density = 0.4;
  /// Explicit view prices are drawn uniformly from [min_price, max_price].
  Money min_price = 100;
  Money max_price = 1000;
  /// Fraction of views that get an explicit price (the rest are not for
  /// sale). Full covers needed to sell ID are always priced.
  double priced_fraction = 1.0;
  uint64_t seed = 42;
};

/// Chain workload (the paper's flagship PTIME class): the query
///   Q(x0..xk) :- U0(x0), B1(x0,x1), ..., Bk(x_{k-1},xk), Uk(xk)
/// with `middle_binary_atoms` binary atoms between two unary endpoint
/// atoms. `middle_binary_atoms = 1` reproduces the Example 3.8 shape
/// R(x), S(x,y), T(y).
Result<Workload> MakeChainWorkload(int middle_binary_atoms,
                                   const JoinWorkloadParams& params);

/// Star-join workload: Q(x, y1..yh) :- Hub(x), P1(x,y1), ..., Ph(x,yh).
/// The yi are hanging variables, so the GChQ pipeline prices 2^h chain
/// subproblems (Step 3).
Result<Workload> MakeStarWorkload(int branches,
                                  const JoinWorkloadParams& params);

/// Cycle workload Ck (Theorem 3.15):
///   Q(x1..xk) :- R1(x1,x2), ..., Rk(xk,x1).
Result<Workload> MakeCycleWorkload(int k, const JoinWorkloadParams& params);

/// NP-complete queries of Theorem 3.5 over random data:
///   H1(x,y,z) = R(x,y,z), S(x), T(y), U(z)
///   H2(x,y)   = R(x), S(x,y), T(x,y)
///   H3(x,y)   = R(x), S(x,y), R(y)      (self-join)
///   H4(x)     = S(x,y)                  (projection)
enum class HardQuery { kH1, kH2, kH3, kH4 };
Result<Workload> MakeHardQueryWorkload(HardQuery which,
                                       const JoinWorkloadParams& params);

}  // namespace qp

#endif  // QP_WORKLOAD_JOIN_WORKLOADS_H_
