#include "qp/workload/hard_market.h"

namespace qp {

namespace {

std::vector<Value> MakeColumn(int n, const std::string& prefix) {
  std::vector<Value> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(Value::Str(prefix + std::to_string(i)));
  }
  return out;
}

/// Prices every value of `attr` independently in [min_price, max_price].
Status PriceColumn(Seller* seller, const std::string& rel,
                   const std::string& attr, const std::vector<Value>& column,
                   const HardMarketParams& params, Rng* rng) {
  for (const Value& v : column) {
    QP_RETURN_IF_ERROR(seller->SetPrice(
        rel, attr, v, rng->NextInRange(params.min_price, params.max_price)));
  }
  return Status::Ok();
}

}  // namespace

Status PopulateHardJoinMarket(Seller* seller,
                              const HardMarketParams& params) {
  if (params.column_size < 2) {
    return Status::InvalidArgument("hard market needs column_size >= 2");
  }
  if (params.num_query_sets < 1) {
    return Status::InvalidArgument("hard market needs >= 1 query set");
  }
  Rng rng(params.seed);
  for (int s = 0; s < params.num_query_sets; ++s) {
    const std::string suffix = std::to_string(s);
    const std::string r_name = "R" + suffix;
    const std::string s_name = "S" + suffix;
    const std::string t_name = "T" + suffix;
    std::vector<Value> col_x =
        MakeColumn(params.column_size, "x" + suffix + "_");
    std::vector<Value> col_y =
        MakeColumn(params.column_size, "y" + suffix + "_");

    QP_RETURN_IF_ERROR(seller->DeclareRelation(r_name, {"X"}, {col_x}));
    QP_RETURN_IF_ERROR(
        seller->DeclareRelation(s_name, {"X", "Y"}, {col_x, col_y}));
    QP_RETURN_IF_ERROR(
        seller->DeclareRelation(t_name, {"X", "Y"}, {col_x, col_y}));

    // Data: unary R at density over x; binary S, T at density over the
    // x × y cross product.
    for (int i = 0; i < params.column_size; ++i) {
      if (rng.NextBool(params.tuple_density)) {
        QP_RETURN_IF_ERROR(seller->Load(r_name, {{col_x[i]}}));
      }
    }
    for (int i = 0; i < params.column_size; ++i) {
      for (int j = 0; j < params.column_size; ++j) {
        if (rng.NextBool(params.tuple_density)) {
          QP_RETURN_IF_ERROR(
              seller->Load(s_name, {{col_x[i], col_y[j]}}));
        }
        if (rng.NextBool(params.tuple_density)) {
          QP_RETURN_IF_ERROR(
              seller->Load(t_name, {{col_x[i], col_y[j]}}));
        }
      }
    }

    // Prices: every attribute fully covered per value, so every relation
    // is for sale at per-value granularity (Lemma 3.1 coverage) and the
    // B&B solver faces a large, non-degenerate candidate set.
    QP_RETURN_IF_ERROR(PriceColumn(seller, r_name, "X", col_x, params, &rng));
    QP_RETURN_IF_ERROR(PriceColumn(seller, s_name, "X", col_x, params, &rng));
    QP_RETURN_IF_ERROR(PriceColumn(seller, s_name, "Y", col_y, params, &rng));
    QP_RETURN_IF_ERROR(PriceColumn(seller, t_name, "X", col_x, params, &rng));
    QP_RETURN_IF_ERROR(PriceColumn(seller, t_name, "Y", col_y, params, &rng));
  }
  return Status::Ok();
}

std::string HardJoinQueryText(int set) {
  const std::string s = std::to_string(set);
  return "H" + s + "(x,y) :- R" + s + "(x), S" + s + "(x,y), T" + s +
         "(x,y)";
}

std::string HardJoinInsertRelation(int set) {
  return "S" + std::to_string(set);
}

std::vector<std::vector<Value>> HardJoinInsertRows(
    int set, int step, const HardMarketParams& params) {
  const std::string suffix = std::to_string(set);
  // Stride 7 through the tuple grid: coprime with any column size not
  // divisible by 7, so the walk visits many distinct (x, y) pairs before
  // repeating.
  const int n = params.column_size;
  const int i = (step * 7) % n;
  const int j = (step * 7 / n + step) % n;
  return {{Value::Str("x" + suffix + "_" + std::to_string(i)),
           Value::Str("y" + suffix + "_" + std::to_string(j))}};
}

}  // namespace qp
