#include "qp/workload/business.h"

namespace qp {

std::vector<std::string> BusinessStates(const BusinessMarketParams& params) {
  std::vector<std::string> states;
  for (int i = 0; i < params.num_states; ++i) {
    if (i == 0) {
      states.push_back("WA");
    } else if (i == 1) {
      states.push_back("OR");
    } else {
      states.push_back("S" + std::to_string(i));
    }
  }
  return states;
}

Status PopulateBusinessMarket(Seller* seller,
                              const BusinessMarketParams& params) {
  Rng rng(params.seed);
  std::vector<std::string> states = BusinessStates(params);

  std::vector<Value> bid_col;
  for (int b = 0; b < params.num_businesses; ++b) {
    bid_col.push_back(Value::Str("biz" + std::to_string(b)));
  }
  std::vector<Value> state_col;
  for (const std::string& s : states) state_col.push_back(Value::Str(s));
  std::vector<Value> county_col;
  for (const std::string& s : states) {
    for (int c = 0; c < params.counties_per_state; ++c) {
      county_col.push_back(Value::Str(s + "/c" + std::to_string(c)));
    }
  }

  QP_RETURN_IF_ERROR(
      seller->DeclareRelation("Business", {"bid"}, {bid_col}));
  QP_RETURN_IF_ERROR(seller->DeclareRelation("Email", {"bid"}, {bid_col}));
  QP_RETURN_IF_ERROR(seller->DeclareRelation("InState", {"bid", "state"},
                                             {bid_col, state_col}));
  QP_RETURN_IF_ERROR(seller->DeclareRelation("InCounty", {"bid", "county"},
                                             {bid_col, county_col}));

  // Data: every business sits in one state and one of its counties.
  for (int b = 0; b < params.num_businesses; ++b) {
    Value bid = bid_col[b];
    int s = static_cast<int>(rng.NextBelow(states.size()));
    int c = static_cast<int>(rng.NextBelow(params.counties_per_state));
    QP_RETURN_IF_ERROR(seller->Load("Business", {{bid}}));
    QP_RETURN_IF_ERROR(
        seller->Load("InState", {{bid, Value::Str(states[s])}}));
    QP_RETURN_IF_ERROR(seller->Load(
        "InCounty",
        {{bid, Value::Str(states[s] + "/c" + std::to_string(c))}}));
    if (rng.NextBool(params.email_fraction)) {
      QP_RETURN_IF_ERROR(seller->Load("Email", {{bid}}));
    }
  }

  // Prices. Per-business granularity everywhere (sells the whole DB).
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("Business", "bid", params.business_price));
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("Email", "bid", params.business_price));
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("InState", "bid", params.business_price));
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("InCounty", "bid", params.business_price));
  // The marketed granularities: per state and per county.
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("InState", "state", params.state_price));
  QP_RETURN_IF_ERROR(
      seller->SetUniformPrice("InCounty", "county", params.county_price));
  return Status::Ok();
}

}  // namespace qp
