#ifndef QP_WORKLOAD_HARD_MARKET_H_
#define QP_WORKLOAD_HARD_MARKET_H_

#include <string>
#include <vector>

#include "qp/market/seller.h"
#include "qp/util/random.h"

namespace qp {

/// Parameters for a seller catalog whose quotes are genuinely expensive:
/// `num_query_sets` independent copies of the paper's NP-hard H2 shape
/// (Theorem 3.5), each with its own relations, sized so a cold exact
/// solve takes the branch-and-bound solver multiple milliseconds. The
/// overload benches and the open-loop load generator use this market to
/// push a server past its capacity with a realistic (solver-bound, not
/// I/O-bound) workload; the business market's sub-millisecond quotes
/// cannot saturate a multi-worker server at achievable arrival rates.
struct HardMarketParams {
  /// Values per attribute column. Solve cost grows steeply with this
  /// (the B&B subset search is exponential in the worst case); 28 lands
  /// in the several-milliseconds range, matching the nphard_deadline
  /// bench's calibration.
  int column_size = 28;
  /// Probability that a potential tuple is present.
  double tuple_density = 0.4;
  /// Independent H2 instances (distinct relations and fingerprints), so
  /// a quote mix rotating across sets defeats the quote cache `n` ways.
  int num_query_sets = 4;
  /// Explicit per-value view prices are drawn from [min_price,
  /// max_price]. The defaults keep the catalog trivially arbitrage-free:
  /// every view costs <= 199 while any *set* of other views determining
  /// it must include a whole column's worth (column_size values at >=
  /// 100 each), so no explicit price can undercut another.
  Money min_price = 100;
  Money max_price = 199;
  uint64_t seed = 17;
};

/// Declares, loads, and prices `params.num_query_sets` H2 instances on
/// `seller`: relations R<s>(X), S<s>(X,Y), T<s>(X,Y) with column values
/// x<s>_i / y<s>_j, random tuples at `tuple_density`, and a per-value
/// price on every attribute (whole database for sale, Lemma 3.1). The
/// caller publishes.
Status PopulateHardJoinMarket(Seller* seller, const HardMarketParams& params);

/// The NP-hard query of set `set`:
///   H<set>(x,y) :- R<set>(x), S<set>(x,y), T<set>(x,y)
std::string HardJoinQueryText(int set);

/// The relation the load generator mutates to invalidate set `set`'s
/// cached quotes ("S<set>"; S appears in the query body, so inserting
/// into it voids the cached exact solution and forces a re-solve).
std::string HardJoinInsertRelation(int set);

/// Row `step` of the deterministic insert walk for set `set`: a valid
/// (x, y) tuple for S<set> built from the declared column values. The
/// walk's stride is coprime with typical column sizes so consecutive
/// steps hit different tuples; duplicates of already-present tuples are
/// harmless (the publish still fires and invalidates).
std::vector<std::vector<Value>> HardJoinInsertRows(
    int set, int step, const HardMarketParams& params);

}  // namespace qp

#endif  // QP_WORKLOAD_HARD_MARKET_H_
