#ifndef QP_MARKET_MARKETPLACE_H_
#define QP_MARKET_MARKETPLACE_H_

#include <memory>
#include <string>
#include <vector>

#include "qp/market/delivery.h"
#include "qp/market/seller.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/batch_pricer.h"
#include "qp/pricing/engine.h"
#include "qp/pricing/quote_cache.h"
#include "qp/util/result.h"

namespace qp {

/// A completed purchase: what the buyer asked, what they paid, what they
/// received, and the support — the explicit views whose prices justify the
/// charge (the savvy buyer's alternative purchase, Equation 2).
struct Receipt {
  int64_t order_id = 0;
  std::string buyer;
  std::string query_text;
  Money price = 0;
  PricingClass query_class = PricingClass::kNPHardFull;
  std::string solver;
  std::vector<std::string> support;  // display form of the support views
  size_t answer_rows = 0;
};

/// The marketplace: fronts one seller's offering, quotes arbitrage-free
/// prices for ad-hoc queries (the capability current marketplaces lack,
/// per Section 1), executes purchases and keeps a ledger.
///
/// Threading contract (DESIGN.md §13): externally synchronized — a
/// Marketplace is a single-owner object with no internal lock of its
/// own; concurrent calls on one instance require the caller to
/// serialize. Internally it *uses* thread-safe components: QuoteBatch
/// fans out through BatchPricer/ThreadPool and the quote cache is safe
/// under that internal concurrency, but the public API is not.
class Marketplace {
 public:
  /// Serving-path knobs shared by Quote/QuoteBatch/Purchase.
  struct ServingOptions {
    /// Worker threads for QuoteBatch (0 = hardware concurrency).
    int num_threads = 0;
    /// Per-query serving deadline in milliseconds (0 = none). On expiry a
    /// quote degrades to an admissible approximate price (flagged in
    /// `PriceQuote::solution.approximate`) instead of erroring, so tail
    /// latency stays bounded even for NP-hard queries.
    int64_t deadline_ms = 0;
    /// Queries admitted per QuoteBatch call (0 = unlimited); excess
    /// requests are shed with ResourceExhausted.
    int admission_cap = 0;
  };

  /// The seller must outlive the marketplace and should be published
  /// (validated) first.
  explicit Marketplace(Seller* seller) : Marketplace(seller, ServingOptions{}) {}
  Marketplace(Seller* seller, ServingOptions serving);

  /// Parses and prices a query without buying (users "may just inquire
  /// about the price, then decide not to buy", Section 2.6). Served from
  /// the quote cache when the same query (up to variable renaming and atom
  /// order) was priced before and its relations have not mutated.
  Result<PriceQuote> Quote(std::string_view query_text) const;

  /// Prices a batch of independent quote requests concurrently (the
  /// high-traffic serving path: many buyers inquiring at once).
  /// `num_threads` = 0 uses the serving options' thread count. Results are
  /// bit-identical to issuing the Quote calls sequentially; the whole
  /// batch fails on the first query that fails to parse or price.
  Result<std::vector<PriceQuote>> QuoteBatch(
      const std::vector<std::string>& query_texts, int num_threads = 0) const;

  struct PurchaseResult {
    Receipt receipt;
    std::vector<Tuple> answers;
    /// The materialized support views (what actually ships to the buyer;
    /// by determinacy they reconstruct exactly `answers` — see
    /// BuyerClient).
    std::vector<ViewExtension> delivered;
  };

  /// Prices the query, evaluates it, charges the buyer and records the
  /// sale.
  Result<PurchaseResult> Purchase(const std::string& buyer,
                                  const std::string& query_text);

  /// Prices a bundle of queries purchased together (subadditive:
  /// never more than the sum of the individual prices, Prop 2.8).
  Result<PriceQuote> QuoteBundle(
      const std::vector<std::string>& query_texts) const;

  Money total_revenue() const { return revenue_; }
  const std::vector<Receipt>& ledger() const { return ledger_; }
  const QuoteCache& quote_cache() const { return quote_cache_; }

  /// Point-in-time snapshot of the process-wide metrics registry (counters,
  /// gauges, latency histograms for every instrumented serving-path stage).
  /// Empty when the library was built with QP_METRICS=OFF.
  qp::MetricsSnapshot MetricsSnapshot() const;

 private:
  Seller* seller_;
  ServingOptions serving_;
  PricingEngine engine_;
  /// Mutable: caching is an implementation detail of the const Quote path.
  mutable QuoteCache quote_cache_;
  /// Persistent serving pricer (single-threaded Quote/Purchase path plus
  /// the default QuoteBatch pool), carrying the serving deadline and
  /// admission cap. Mutable for the same reason as the cache.
  mutable BatchPricer pricer_;
  std::vector<Receipt> ledger_;
  Money revenue_ = 0;
  int64_t next_order_id_ = 1;
};

}  // namespace qp

#endif  // QP_MARKET_MARKETPLACE_H_
