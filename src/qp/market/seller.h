#ifndef QP_MARKET_SELLER_H_
#define QP_MARKET_SELLER_H_

#include <memory>
#include <string>
#include <vector>

#include "qp/pricing/consistency.h"
#include "qp/pricing/price_points.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// The data seller's side of a marketplace: owns the catalog, the dataset
/// and the explicit price points. Publishing validates the two standing
/// assumptions of the paper — the price points are consistent
/// (Proposition 3.2, no arbitrage among the explicit views) and the whole
/// dataset is (indirectly) for sale (Section 2.4 / Lemma 3.1).
class Seller {
 public:
  explicit Seller(std::string name);

  const std::string& name() const { return name_; }
  Catalog& catalog() { return *catalog_; }
  const Catalog& catalog() const { return *catalog_; }
  Instance& db() { return *db_; }
  const Instance& db() const { return *db_; }
  SelectionPriceSet& prices() { return prices_; }
  const SelectionPriceSet& prices() const { return prices_; }

  /// Declares a relation with its columns. Must be called before loading
  /// data.
  Status DeclareRelation(const std::string& rel,
                         const std::vector<std::string>& attrs,
                         const std::vector<std::vector<Value>>& columns);

  /// Loads rows into a relation.
  Status Load(std::string_view rel,
              const std::vector<std::vector<Value>>& rows);

  /// Sets the price of one selection view σ_{rel.attr=value}.
  Status SetPrice(std::string_view rel, std::string_view attr,
                  const Value& value, Money price);

  /// Prices every value of an attribute's column uniformly (the
  /// "$199 per state" pattern of the introduction).
  Status SetUniformPrice(std::string_view rel, std::string_view attr,
                         Money price);

  /// Validates the offering: consistency and whole-database coverage.
  /// Returns the consistency report; `ok()` iff publishable.
  Result<ConsistencyReport> Publish() const;

 private:
  std::string name_;
  std::unique_ptr<Catalog> catalog_;
  std::unique_ptr<Instance> db_;
  SelectionPriceSet prices_;
};

}  // namespace qp

#endif  // QP_MARKET_SELLER_H_
