#include "qp/market/catalog_io.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "qp/util/strings.h"

namespace qp {
namespace {

Status LineError(size_t line_no, std::string_view message) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 std::string(message));
}

/// Parses `'abc'` or `"abc"` or `-123` into a Value.
Result<Value> ParseValueToken(std::string_view token) {
  token = Trim(token);
  if (token.empty()) return Status::InvalidArgument("empty value");
  if (token.front() == '\'' || token.front() == '"') {
    if (token.size() < 2 || token.back() != token.front()) {
      return Status::InvalidArgument("unterminated quoted value");
    }
    return Value::Str(std::string(token.substr(1, token.size() - 2)));
  }
  errno = 0;
  char* end = nullptr;
  std::string buf(token);
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (end == buf.c_str() || *end != '\0') {
    return Status::InvalidArgument("bad value token '" + buf + "'");
  }
  return Value::Int(v);
}

/// Parses `$12.34` (or `12.34`, or `$12`) into Money.
Result<Money> ParseMoneyToken(std::string_view token) {
  token = Trim(token);
  if (!token.empty() && token.front() == '$') token.remove_prefix(1);
  std::string buf(token);
  size_t dot = buf.find('.');
  std::string dollars = dot == std::string::npos ? buf : buf.substr(0, dot);
  std::string cents = dot == std::string::npos ? "0" : buf.substr(dot + 1);
  if (dollars.empty() || cents.empty() || cents.size() > 2) {
    return Status::InvalidArgument("bad price '" + buf + "'");
  }
  for (char c : dollars) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("bad price '" + buf + "'");
    }
  }
  for (char c : cents) {
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::InvalidArgument("bad price '" + buf + "'");
    }
  }
  if (cents.size() == 1) cents += "0";
  return Money{std::stoll(dollars) * 100 + std::stoll(cents)};
}

/// Splits a comma-separated argument list, respecting quotes.
Result<std::vector<std::string>> SplitArgs(std::string_view text,
                                           size_t line_no) {
  std::vector<std::string> out;
  std::string current;
  char quote = 0;
  for (char c : text) {
    if (quote != 0) {
      current += c;
      if (c == quote) quote = 0;
      continue;
    }
    if (c == '\'' || c == '"') {
      quote = c;
      current += c;
    } else if (c == ',') {
      out.push_back(std::string(Trim(current)));
      current.clear();
    } else {
      current += c;
    }
  }
  if (quote != 0) return LineError(line_no, "unterminated quote");
  if (!Trim(current).empty() || !out.empty()) {
    out.push_back(std::string(Trim(current)));
  }
  return out;
}

/// "Rel.attr" -> (rel, attr).
Result<std::pair<std::string, std::string>> ParseAttrRefText(
    std::string_view text, size_t line_no) {
  size_t dot = text.find('.');
  if (dot == std::string_view::npos) {
    return LineError(line_no, "expected Relation.attribute");
  }
  return std::make_pair(std::string(Trim(text.substr(0, dot))),
                        std::string(Trim(text.substr(dot + 1))));
}

}  // namespace

Status LoadSellerFromString(Seller* seller, std::string_view text) {
  std::vector<std::string> lines = SplitAndTrim(text, '\n');
  for (size_t i = 0; i < lines.size(); ++i) {
    const size_t line_no = i + 1;
    std::string_view line = Trim(lines[i]);
    if (line.empty() || line.front() == '#') continue;

    if (StartsWith(line, "relation ")) {
      line.remove_prefix(9);
      size_t open = line.find('(');
      size_t close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        return LineError(line_no, "expected relation Name(attr, ...)");
      }
      std::string name(Trim(line.substr(0, open)));
      std::vector<std::string> attrs =
          SplitAndTrim(line.substr(open + 1, close - open - 1), ',');
      // Columns are declared separately; declare with empty columns and
      // fill them on `column` lines.
      auto rel = seller->catalog().AddRelation(name, attrs);
      if (!rel.ok()) return LineError(line_no, rel.status().message());
      continue;
    }

    if (StartsWith(line, "column ")) {
      line.remove_prefix(7);
      size_t colon = line.find(':');
      if (colon == std::string_view::npos) {
        return LineError(line_no, "expected column Rel.attr: values");
      }
      auto ref = ParseAttrRefText(line.substr(0, colon), line_no);
      if (!ref.ok()) return ref.status();
      auto args = SplitArgs(line.substr(colon + 1), line_no);
      if (!args.ok()) return args.status();
      std::vector<Value> values;
      for (const std::string& token : *args) {
        auto value = ParseValueToken(token);
        if (!value.ok()) return LineError(line_no, value.status().message());
        values.push_back(std::move(*value));
      }
      Status status =
          seller->catalog().SetColumn(ref->first, ref->second, values);
      if (!status.ok()) return LineError(line_no, status.message());
      continue;
    }

    if (StartsWith(line, "row ")) {
      line.remove_prefix(4);
      size_t open = line.find('(');
      size_t close = line.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos) {
        return LineError(line_no, "expected row Rel(v1, ...)");
      }
      std::string rel(Trim(line.substr(0, open)));
      auto args = SplitArgs(line.substr(open + 1, close - open - 1), line_no);
      if (!args.ok()) return args.status();
      std::vector<Value> values;
      for (const std::string& token : *args) {
        auto value = ParseValueToken(token);
        if (!value.ok()) return LineError(line_no, value.status().message());
        values.push_back(std::move(*value));
      }
      Status status = seller->Load(rel, {values});
      if (!status.ok()) return LineError(line_no, status.message());
      continue;
    }

    if (StartsWith(line, "price ")) {
      line.remove_prefix(6);
      size_t eq = line.find('=');
      size_t colon = line.rfind(':');
      if (eq == std::string_view::npos || colon == std::string_view::npos ||
          colon < eq) {
        return LineError(line_no, "expected price Rel.attr=value: $p");
      }
      auto ref = ParseAttrRefText(line.substr(0, eq), line_no);
      if (!ref.ok()) return ref.status();
      auto value = ParseValueToken(line.substr(eq + 1, colon - eq - 1));
      if (!value.ok()) return LineError(line_no, value.status().message());
      auto price = ParseMoneyToken(line.substr(colon + 1));
      if (!price.ok()) return LineError(line_no, price.status().message());
      Status status =
          seller->SetPrice(ref->first, ref->second, *value, *price);
      if (!status.ok()) return LineError(line_no, status.message());
      continue;
    }

    return LineError(line_no, "unknown directive");
  }
  return Status::Ok();
}

Status LoadSellerFromFile(Seller* seller, const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadSellerFromString(seller, buffer.str());
}

std::string SaveSellerToString(const Seller& seller) {
  const Catalog& catalog = seller.catalog();
  const Schema& schema = catalog.schema();
  std::string out = "# qpricer market file: " + seller.name() + "\n";
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    out += "relation " + schema.relation_name(r) + "(";
    for (int p = 0; p < schema.arity(r); ++p) {
      if (p > 0) out += ", ";
      out += schema.attr_name(AttrRef{r, p});
    }
    out += ")\n";
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    for (int p = 0; p < schema.arity(r); ++p) {
      AttrRef attr{r, p};
      if (!catalog.HasColumn(attr)) continue;
      out += "column " + schema.AttrToString(attr) + ":";
      bool first = true;
      for (ValueId v : catalog.Column(attr)) {
        out += first ? " " : ", ";
        first = false;
        out += catalog.dict().Get(v).ToString();
      }
      out += "\n";
    }
  }
  for (RelationId r = 0; r < schema.num_relations(); ++r) {
    // Deterministic order: collect and sort decoded tuples.
    std::vector<Tuple> tuples(seller.db().Relation(r).begin(),
                              seller.db().Relation(r).end());
    std::sort(tuples.begin(), tuples.end());
    for (const Tuple& t : tuples) {
      out += "row " + schema.relation_name(r) + "(";
      for (size_t p = 0; p < t.size(); ++p) {
        if (p > 0) out += ", ";
        out += catalog.dict().Get(t[p]).ToString();
      }
      out += ")\n";
    }
  }
  for (const auto& [view, price] : seller.prices().Sorted()) {
    out += "price " + schema.AttrToString(view.attr) + "=" +
           catalog.dict().Get(view.value).ToString() + ": " +
           MoneyToString(price) + "\n";
  }
  return out;
}

Status SaveSellerToFile(const Seller& seller, const std::string& path) {
  std::ofstream out_file(path);
  if (!out_file) return Status::InvalidArgument("cannot write '" + path + "'");
  out_file << SaveSellerToString(seller);
  return Status::Ok();
}

}  // namespace qp
