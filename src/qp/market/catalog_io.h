#ifndef QP_MARKET_CATALOG_IO_H_
#define QP_MARKET_CATALOG_IO_H_

#include <string>
#include <string_view>

#include "qp/market/seller.h"
#include "qp/util/result.h"

namespace qp {

/// Plain-text serialization of a seller's offering (schema, columns, data,
/// price points). The format is line-based:
///
///   # comment
///   relation Business(bid, state)
///   column Business.bid: 'biz0', 'biz1', 'biz2'
///   column Business.state: 'WA', 'OR'
///   row Business('biz0', 'WA')
///   price Business.state='WA': $199.00
///
/// Values are quoted strings or integers; prices are `$dollars.cents`.
/// Relations must be declared before their columns, columns before rows
/// and prices.
Status LoadSellerFromString(Seller* seller, std::string_view text);
Status LoadSellerFromFile(Seller* seller, const std::string& path);

std::string SaveSellerToString(const Seller& seller);
Status SaveSellerToFile(const Seller& seller, const std::string& path);

}  // namespace qp

#endif  // QP_MARKET_CATALOG_IO_H_
