#ifndef QP_MARKET_SNAPSHOT_H_
#define QP_MARKET_SNAPSHOT_H_

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "qp/market/seller.h"
#include "qp/pricing/engine.h"
#include "qp/pricing/quote_cache.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"
#include "qp/util/thread_annotations.h"

namespace qp {

/// Multi-version snapshot isolation for a served catalog (DESIGN.md §14).
///
/// A `CatalogSnapshot` is one immutable generation of a seller's database
/// plus a pricing engine bound to it. The `SnapshotStore` publishes
/// snapshots RCU-style: readers Acquire() the head shared_ptr (two
/// pointer copies under a lock held for nanoseconds) and then price
/// against their pinned snapshot for as long as they like; a writer
/// builds the successor off to the side — copy the instance, apply the
/// whole validated batch, wrap a fresh engine — and swings the head
/// pointer. In-flight quotes therefore always see one self-consistent
/// generation, never a torn mix, and Insert never blocks behind them.
/// Old generations are reclaimed by shared_ptr when the last pinned
/// reader drops out (`qp.market.snapshot_reclaims` counts them).

/// One immutable published generation. `version` increases by exactly 1
/// per publish; the per-relation Instance::generation counters inside
/// `db` advance with it and are what pins QuoteCache entries
/// (generation-pinned reads: Lookup/Store against this snapshot's `db`
/// can neither see nor clobber another generation's quotes).
class CatalogSnapshot {
 public:
  CatalogSnapshot(uint64_t version, Instance db,
                  const SelectionPriceSet* prices,
                  PricingEngine::Options options);
  ~CatalogSnapshot();

  CatalogSnapshot(const CatalogSnapshot&) = delete;
  CatalogSnapshot& operator=(const CatalogSnapshot&) = delete;

  uint64_t version() const { return version_; }
  const Instance& db() const { return db_; }
  const PricingEngine& engine() const { return engine_; }

 private:
  const uint64_t version_;
  const Instance db_;
  /// Bound to `db_` and the seller's (fixed) price points; safe because
  /// both the snapshot and the seller outlive every acquired reference.
  const PricingEngine engine_;
};

/// Handle to a published, immutable snapshot; copyable and cheap.
using SnapshotRef = std::shared_ptr<const CatalogSnapshot>;

/// The publish/acquire hinge of one shard. Thread-safe: any number of
/// concurrent Acquire()s (server workers) against any number of
/// concurrent Insert()s (writers serialize among themselves on
/// `write_mu_`, never blocking readers).
class SnapshotStore {
 public:
  /// Invoked after a publish with the freshly published snapshot and the
  /// ids of the relations the batch mutated. Runs under `write_mu_` (so
  /// notifications arrive in publish order and never interleave) but not
  /// under `mu_` — the listener may Acquire(). It must be fast and must
  /// not call Insert/InsertBatch on the same store (deadlock); the
  /// serving layer uses it to hand warming work to a background lane.
  using PublishListener =
      std::function<void(const SnapshotRef&, const std::vector<RelationId>&)>;

  /// Seeds version 0 with a copy of `initial`. `prices` must outlive the
  /// store and stay fixed (the standing assumption of Section 2.7
  /// dynamic pricing: the explicit price points do not move while the
  /// database grows).
  SnapshotStore(const Instance& initial, const SelectionPriceSet* prices,
                PricingEngine::Options options = {});

  /// The current head snapshot, pinned until the returned ref drops.
  SnapshotRef Acquire() const QP_EXCLUDES(mu_);

  /// Version of the head snapshot.
  uint64_t version() const QP_EXCLUDES(mu_);

  struct InsertOutcome {
    /// Head version after the call (unchanged when nothing was inserted).
    uint64_t version = 0;
    /// Rows that were actually new (duplicates insert as no-ops).
    uint64_t rows_inserted = 0;
  };

  /// Validates the whole batch against the head snapshot, then publishes
  /// one successor generation containing every row (all-or-nothing: a
  /// bad row means no publish). A batch of pure duplicates publishes
  /// nothing and reports the unchanged head version.
  Result<InsertOutcome> Insert(std::string_view rel,
                               const std::vector<std::vector<Value>>& rows)
      QP_EXCLUDES(write_mu_, mu_);

  /// Multi-relation atomic variant: all relations' rows land in the same
  /// published generation, so no reader can observe one relation's half
  /// of the batch without the other's.
  struct RelationRows {
    std::string relation;
    std::vector<std::vector<Value>> rows;
  };
  Result<InsertOutcome> InsertBatch(const std::vector<RelationRows>& batch)
      QP_EXCLUDES(write_mu_, mu_);

  /// Installs (or clears, with nullptr) the publish listener. Serialized
  /// with publishes on `write_mu_`, so it is safe to call while writers
  /// are active; the new listener sees every publish that starts after
  /// the call returns.
  void SetPublishListener(PublishListener listener)
      QP_EXCLUDES(write_mu_, mu_);

 private:
  const SelectionPriceSet* const prices_;
  const PricingEngine::Options options_;
  /// Serializes writers (clone + validate + publish); never held while a
  /// reader prices. Lock order: write_mu_ before mu_.
  Mutex write_mu_;
  mutable Mutex mu_;
  SnapshotRef head_ QP_GUARDED_BY(mu_);
  PublishListener publish_listener_ QP_GUARDED_BY(write_mu_);
};

/// The daemon's shard table: one seller catalog + snapshot store + quote
/// cache per shard, addressed by dense id (the wire protocol's `shard`
/// field). The table itself is frozen before serving starts — AddShard
/// during Start()-up only, no map-level lock — while each shard's store
/// and cache are internally thread-safe under concurrent workers.
class ShardMap {
 public:
  struct Shard {
    std::string name;
    /// Schema, columns and price points; fixed for the shard's lifetime.
    /// The seller's own db() stays at the seed state — served data lives
    /// in the store's snapshots.
    std::unique_ptr<Seller> seller;
    std::unique_ptr<SnapshotStore> store;
    /// Shared across snapshots; entries are keyed by query fingerprint
    /// and pinned to relation generations, so cross-generation reuse is
    /// impossible by construction.
    std::unique_ptr<QuoteCache> cache;
  };

  /// Takes ownership of a populated (and ideally Publish()-validated)
  /// seller and seeds its snapshot store from the seller's database.
  Status AddShard(std::string name, std::unique_ptr<Seller> seller,
                  PricingEngine::Options options = {});

  /// Shard by dense id; nullptr when out of range.
  Shard* shard(uint32_t id);
  const Shard* shard(uint32_t id) const;

  size_t size() const { return shards_.size(); }

 private:
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace qp

#endif  // QP_MARKET_SNAPSHOT_H_
