#include "qp/market/marketplace.h"

#include <chrono>

#include "qp/eval/evaluator.h"
#include "qp/pricing/batch_pricer.h"
#include "qp/query/parser.h"

namespace qp {

Marketplace::Marketplace(Seller* seller, ServingOptions serving)
    : seller_(seller),
      serving_(serving),
      engine_(&seller->db(), &seller->prices()),
      pricer_(&engine_,
              BatchPricerOptions{serving.num_threads, &quote_cache_,
                                 serving.deadline_ms, serving.admission_cap}) {}

Result<PriceQuote> Marketplace::Quote(std::string_view query_text) const {
  QP_METRIC_INCR("qp.market.quotes");
  auto query = ParseQuery(seller_->catalog().schema(), query_text);
  if (!query.ok()) return query.status();
  return pricer_.Price(*query);
}

Result<std::vector<PriceQuote>> Marketplace::QuoteBatch(
    const std::vector<std::string>& query_texts, int num_threads) const {
  QP_METRIC_COUNT("qp.market.quotes", query_texts.size());
  std::vector<ConjunctiveQuery> queries;
  queries.reserve(query_texts.size());
  for (const std::string& text : query_texts) {
    auto query = ParseQuery(seller_->catalog().schema(), text);
    if (!query.ok()) return query.status();
    queries.push_back(std::move(*query));
  }
  if (num_threads == 0) {
    // Default thread count: the persistent serving pricer and its pool.
    std::vector<Result<PriceQuote>> priced = pricer_.PriceAll(queries);
    std::vector<PriceQuote> out;
    out.reserve(priced.size());
    for (Result<PriceQuote>& quote : priced) {
      if (!quote.ok()) return quote.status();
      out.push_back(std::move(*quote));
    }
    return out;
  }
  // Explicit thread override: an ad-hoc pricer with the same serving knobs.
  BatchPricer pricer(&engine_,
                     BatchPricerOptions{num_threads, &quote_cache_,
                                        serving_.deadline_ms,
                                        serving_.admission_cap});
  std::vector<Result<PriceQuote>> priced = pricer.PriceAll(queries);
  std::vector<PriceQuote> out;
  out.reserve(priced.size());
  for (Result<PriceQuote>& quote : priced) {
    if (!quote.ok()) return quote.status();
    out.push_back(std::move(*quote));
  }
  return out;
}

Result<Marketplace::PurchaseResult> Marketplace::Purchase(
    const std::string& buyer, const std::string& query_text) {
  auto query = ParseQuery(seller_->catalog().schema(), query_text);
  if (!query.ok()) return query.status();
  auto quote = pricer_.Price(*query);
  if (!quote.ok()) return quote.status();
  if (IsInfinite(quote->solution.price)) {
    return Status::FailedPrecondition(
        "query is not for sale: no affordable view set determines it");
  }
  Evaluator eval(&seller_->db());
  auto answers = eval.Eval(*query);
  if (!answers.ok()) return answers.status();

  PurchaseResult result;
  result.receipt.order_id = next_order_id_++;
  result.receipt.buyer = buyer;
  result.receipt.query_text = query_text;
  result.receipt.price = quote->solution.price;
  result.receipt.query_class = quote->query_class;
  result.receipt.solver = quote->solver;
  for (const SelectionView& v : quote->solution.support) {
    result.receipt.support.push_back(
        SelectionViewToString(seller_->catalog(), v));
  }
  result.receipt.answer_rows = answers->size();
  result.answers = std::move(*answers);
  result.delivered = MaterializeViews(seller_->db(), quote->solution.support);

  revenue_ = AddMoney(revenue_, result.receipt.price);
  ledger_.push_back(result.receipt);
  QP_METRIC_INCR("qp.market.purchases");
  QP_METRIC_GAUGE_SET("qp.market.revenue_cents", revenue_);
  return result;
}

Result<PriceQuote> Marketplace::QuoteBundle(
    const std::vector<std::string>& query_texts) const {
  QP_METRIC_INCR("qp.market.bundle_quotes");
  std::vector<ConjunctiveQuery> queries;
  for (const std::string& text : query_texts) {
    auto query = ParseQuery(seller_->catalog().schema(), text);
    if (!query.ok()) return query.status();
    queries.push_back(std::move(*query));
  }
  if (serving_.deadline_ms > 0) {
    return engine_.PriceBundle(
        queries, SearchBudget::Deadline(
                     std::chrono::milliseconds(serving_.deadline_ms)));
  }
  return engine_.PriceBundle(queries);
}

qp::MetricsSnapshot Marketplace::MetricsSnapshot() const {
  return MetricsRegistry::Global().Snapshot();
}

}  // namespace qp
