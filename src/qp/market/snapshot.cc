#include "qp/market/snapshot.h"

#include <utility>

#include "qp/obs/metrics.h"

namespace qp {

CatalogSnapshot::CatalogSnapshot(uint64_t version, Instance db,
                                 const SelectionPriceSet* prices,
                                 PricingEngine::Options options)
    : version_(version),
      db_(std::move(db)),
      engine_(&db_, prices, std::move(options)) {}

CatalogSnapshot::~CatalogSnapshot() {
  QP_METRIC_INCR("qp.market.snapshot_reclaims");
}

SnapshotStore::SnapshotStore(const Instance& initial,
                             const SelectionPriceSet* prices,
                             PricingEngine::Options options)
    : prices_(prices), options_(options) {
  MutexLock lock(&mu_);
  head_ = std::make_shared<CatalogSnapshot>(0, initial, prices_, options_);
}

SnapshotRef SnapshotStore::Acquire() const {
  MutexLock lock(&mu_);
  return head_;
}

uint64_t SnapshotStore::version() const {
  MutexLock lock(&mu_);
  return head_->version();
}

Result<SnapshotStore::InsertOutcome> SnapshotStore::Insert(
    std::string_view rel, const std::vector<std::vector<Value>>& rows) {
  std::vector<RelationRows> batch(1);
  batch[0].relation = std::string(rel);
  batch[0].rows = rows;
  return InsertBatch(batch);
}

Result<SnapshotStore::InsertOutcome> SnapshotStore::InsertBatch(
    const std::vector<RelationRows>& batch) {
  // Writers serialize here; readers keep Acquiring the old head the whole
  // time, so a slow publish never stalls a quote.
  MutexLock write_lock(&write_mu_);
  SnapshotRef base = Acquire();

  // Validate the entire batch against the base snapshot before copying
  // anything: all-or-nothing, and the cheap path for a bad request.
  for (const RelationRows& part : batch) {
    for (const std::vector<Value>& row : part.rows) {
      QP_RETURN_IF_ERROR(base->db().ValidateInsert(part.relation, row));
    }
  }

  // Build the successor generation off to the side.
  Instance next = base->db();
  uint64_t rows_inserted = 0;
  std::vector<RelationId> mutated;
  for (const RelationRows& part : batch) {
    uint64_t fresh_in_part = 0;
    for (const std::vector<Value>& row : part.rows) {
      QP_ASSIGN_OR_RETURN(bool fresh, next.Insert(part.relation, row));
      if (fresh) ++fresh_in_part;
    }
    rows_inserted += fresh_in_part;
    if (fresh_in_part > 0) {
      // Validated above, so the name resolves; the id list tells the
      // publish listener which quotes a warming pass could rescue.
      auto rel_id = next.catalog().schema().FindRelation(part.relation);
      if (rel_id.ok()) mutated.push_back(*rel_id);
    }
  }

  InsertOutcome outcome;
  if (rows_inserted == 0) {
    // Pure duplicates: nothing changed, so publishing would only churn
    // caches and snapshot refs. Report the unchanged head.
    outcome.version = base->version();
    return outcome;
  }

  auto next_snapshot = std::make_shared<CatalogSnapshot>(
      base->version() + 1, std::move(next), prices_, options_);
  outcome.version = next_snapshot->version();
  outcome.rows_inserted = rows_inserted;
  {
    MutexLock lock(&mu_);
    head_ = next_snapshot;
  }
  QP_METRIC_INCR("qp.market.snapshot_publishes");
  QP_METRIC_GAUGE_SET("qp.market.snapshot_version", outcome.version);
  // Notify after the head swap, still under write_mu_: listeners observe
  // publishes in order, and the ref they get *is* the new head (or an
  // even newer one was already queued behind this writer).
  if (publish_listener_) publish_listener_(next_snapshot, mutated);
  return outcome;
}

void SnapshotStore::SetPublishListener(PublishListener listener) {
  MutexLock lock(&write_mu_);
  publish_listener_ = std::move(listener);
}

Status ShardMap::AddShard(std::string name, std::unique_ptr<Seller> seller,
                          PricingEngine::Options options) {
  if (seller == nullptr) {
    return Status::InvalidArgument("shard '" + name + "' has no seller");
  }
  auto shard = std::make_unique<Shard>();
  shard->name = std::move(name);
  shard->store = std::make_unique<SnapshotStore>(
      seller->db(), &seller->prices(), std::move(options));
  shard->cache = std::make_unique<QuoteCache>();
  shard->seller = std::move(seller);
  shards_.push_back(std::move(shard));
  return Status::Ok();
}

ShardMap::Shard* ShardMap::shard(uint32_t id) {
  if (id >= shards_.size()) return nullptr;
  return shards_[id].get();
}

const ShardMap::Shard* ShardMap::shard(uint32_t id) const {
  if (id >= shards_.size()) return nullptr;
  return shards_[id].get();
}

}  // namespace qp
