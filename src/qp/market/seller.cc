#include "qp/market/seller.h"

namespace qp {

Seller::Seller(std::string name)
    : name_(std::move(name)),
      catalog_(std::make_unique<Catalog>()),
      db_(std::make_unique<Instance>(catalog_.get())) {}

Status Seller::DeclareRelation(const std::string& rel,
                               const std::vector<std::string>& attrs,
                               const std::vector<std::vector<Value>>& columns) {
  if (columns.size() != attrs.size()) {
    return Status::InvalidArgument(
        "DeclareRelation needs one column per attribute");
  }
  auto rel_id = catalog_->AddRelation(rel, attrs);
  if (!rel_id.ok()) return rel_id.status();
  for (size_t p = 0; p < columns.size(); ++p) {
    QP_RETURN_IF_ERROR(catalog_->SetColumn(
        AttrRef{*rel_id, static_cast<int>(p)}, columns[p]));
  }
  return Status::Ok();
}

Status Seller::Load(std::string_view rel,
                    const std::vector<std::vector<Value>>& rows) {
  for (const auto& row : rows) {
    auto inserted = db_->Insert(rel, row);
    if (!inserted.ok()) return inserted.status();
  }
  return Status::Ok();
}

Status Seller::SetPrice(std::string_view rel, std::string_view attr,
                        const Value& value, Money price) {
  return prices_.Set(*catalog_, rel, attr, value, price);
}

Status Seller::SetUniformPrice(std::string_view rel, std::string_view attr,
                               Money price) {
  return prices_.SetUniform(*catalog_, rel, attr, price);
}

Result<ConsistencyReport> Seller::Publish() const {
  ConsistencyReport report = CheckSelectionConsistency(*catalog_, prices_);
  if (!report.consistent) return report;  // caller inspects violations
  std::vector<RelationId> all;
  for (RelationId r = 0; r < catalog_->schema().num_relations(); ++r) {
    all.push_back(r);
  }
  if (!prices_.SellsWholeDatabase(*catalog_, all)) {
    return Status::FailedPrecondition(
        "price points do not determine the whole database: every relation "
        "needs a fully covered attribute (Lemma 3.1)");
  }
  return report;
}

}  // namespace qp
