#include "qp/market/delivery.h"

#include <algorithm>

#include "qp/determinacy/selection_determinacy.h"
#include "qp/eval/evaluator.h"

namespace qp {

std::vector<ViewExtension> MaterializeViews(
    const Instance& db, const std::vector<SelectionView>& views) {
  std::vector<ViewExtension> out;
  out.reserve(views.size());
  for (const SelectionView& view : views) {
    ViewExtension extension;
    extension.view = view;
    for (const Tuple& t : db.Relation(view.attr.rel)) {
      if (t[view.attr.pos] == view.value) extension.tuples.push_back(t);
    }
    std::sort(extension.tuples.begin(), extension.tuples.end());
    out.push_back(std::move(extension));
  }
  return out;
}

BuyerClient::BuyerClient(const Catalog* catalog)
    : catalog_(catalog), known_(catalog) {}

Status BuyerClient::AddPurchase(const ViewExtension& extension) {
  const SelectionView& view = extension.view;
  if (view.attr.rel < 0 ||
      view.attr.rel >= catalog_->schema().num_relations()) {
    return Status::InvalidArgument("unknown relation in view extension");
  }
  for (const Tuple& t : extension.tuples) {
    if (static_cast<int>(t.size()) !=
        catalog_->schema().arity(view.attr.rel)) {
      return Status::InvalidArgument("arity mismatch in view extension");
    }
    if (t[view.attr.pos] != view.value) {
      return Status::InvalidArgument(
          "tuple in view extension does not satisfy the selection");
    }
    auto inserted = known_.Insert(view.attr.rel, t);
    if (!inserted.ok()) return inserted.status();
  }
  views_.push_back(view);
  return Status::Ok();
}

Result<bool> BuyerClient::CanAnswer(const ConjunctiveQuery& q) const {
  // The buyer's knowledge is exactly: covered positions are fully known
  // (their tuples are in `known_`), everything else is open. That makes
  // `known_` the buyer's Dmin, and the Theorem 3.3 test applies verbatim —
  // note it never touches the seller's D.
  return SelectionViewsDetermine(known_, views_, q);
}

Result<std::vector<Tuple>> BuyerClient::Answer(
    const ConjunctiveQuery& q) const {
  auto can = CanAnswer(q);
  if (!can.ok()) return can.status();
  if (!*can) {
    return Status::FailedPrecondition(
        "the purchased views do not determine this query; buy more views");
  }
  Evaluator eval(&known_);
  return eval.Eval(q);
}

}  // namespace qp
