#ifndef QP_MARKET_DELIVERY_H_
#define QP_MARKET_DELIVERY_H_

#include <vector>

#include "qp/pricing/price_points.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// A purchased view with its extension: the full tuples of the relation
/// matching the selection. This is what the seller ships; together with
/// the public catalog (columns), it is *all* the buyer knows.
struct ViewExtension {
  SelectionView view;
  std::vector<Tuple> tuples;
};

/// Seller side: materializes the extensions of the given views on D.
std::vector<ViewExtension> MaterializeViews(
    const Instance& db, const std::vector<SelectionView>& views);

/// Buyer side: the paper's determinacy story made operational. The buyer
/// holds only the public catalog and purchased view extensions; from them
/// she can (a) decide whether a query is answerable — instance-based
/// determinacy, Definition 2.2, computed with the same Dmin/Dmax test as
/// Theorem 3.3, which needs no access to D — and (b) compute the answer,
/// which then provably equals Q(D).
class BuyerClient {
 public:
  /// The catalog (schema + columns) is public market knowledge.
  explicit BuyerClient(const Catalog* catalog);

  /// Ingests a purchased view. Tuples must match the view's selection and
  /// the catalog's columns.
  Status AddPurchase(const ViewExtension& extension);

  /// True if the purchased views determine `q`: the buyer can compute the
  /// exact answer without further purchases.
  Result<bool> CanAnswer(const ConjunctiveQuery& q) const;

  /// Computes Q(D) from the purchases. Fails with FailedPrecondition if
  /// the views do not determine `q`.
  Result<std::vector<Tuple>> Answer(const ConjunctiveQuery& q) const;

  /// The certain world reconstructed so far (tuples known present).
  const Instance& known_world() const { return known_; }
  const std::vector<SelectionView>& purchased_views() const {
    return views_;
  }

 private:
  const Catalog* catalog_;
  Instance known_;
  std::vector<SelectionView> views_;
};

}  // namespace qp

#endif  // QP_MARKET_DELIVERY_H_
