#ifndef QP_FLOW_GRAPH_BUILDER_H_
#define QP_FLOW_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "qp/flow/max_flow.h"

namespace qp {

/// Semantic origin of a flow edge, recorded at build time. Cut extraction
/// maps min-cut edge ids back to pricing objects through a dense tag array
/// (indexed by EdgeId) instead of per-solve hash maps, and the incremental
/// repricing path uses the same ids to target UpdateEdgeCapacity at the
/// edge a newly inserted tuple owns.
struct FlowEdgeTag {
  enum class Kind : uint8_t {
    /// Plumbing (hub wiring, skip edges, infinite tuple edges): never part
    /// of a support, ignored during cut extraction.
    kStructural,
    /// A priced selection view. `link` is the chain link (or a
    /// solver-private index), `a` the side (0 = entry, 1 = exit), `b` the
    /// dense domain index of the value.
    kView,
    /// A priced pair view (Section 4 multi-attribute selection). `a` / `b`
    /// are dense domain indexes at the link's entry / exit slot.
    kPair,
  };
  Kind kind = Kind::kStructural;
  int32_t link = -1;
  int32_t a = -1;
  int32_t b = -1;
};

/// The one sanctioned way for solvers to assemble a FlowNetwork (enforced
/// by the `flow-builder` lint rule): a thin wrapper owning the network plus
/// one FlowEdgeTag per edge id. Edge ids are dense and sequential, so the
/// tag array lines up with the arena and lookups are O(1) array reads.
///
/// Like FlowNetwork::Reset, Reset keeps every allocated buffer; callers
/// that solve many graphs in a row (the GChQ case-split recursion) reuse
/// one builder.
class FlowGraphBuilder {
 public:
  using NodeId = FlowNetwork::NodeId;
  using EdgeId = FlowNetwork::EdgeId;

  void Reset() {
    net_.Reset();
    tags_.clear();
  }

  NodeId AddNode() { return net_.AddNode(); }
  NodeId AddNodes(int count) { return net_.AddNodes(count); }

  /// Adds a structural (untagged) edge.
  EdgeId AddEdge(NodeId from, NodeId to, int64_t capacity) {
    EdgeId e = net_.AddEdge(from, to, capacity);
    tags_.emplace_back();
    return e;
  }

  /// Adds an edge carrying its semantic origin.
  EdgeId AddTaggedEdge(NodeId from, NodeId to, int64_t capacity,
                       FlowEdgeTag tag) {
    EdgeId e = net_.AddEdge(from, to, capacity);
    tags_.push_back(tag);
    return e;
  }

  const FlowEdgeTag& tag(EdgeId e) const { return tags_[e]; }

  FlowNetwork& net() { return net_; }
  const FlowNetwork& net() const { return net_; }

 private:
  FlowNetwork net_;
  std::vector<FlowEdgeTag> tags_;
};

}  // namespace qp

#endif  // QP_FLOW_GRAPH_BUILDER_H_
