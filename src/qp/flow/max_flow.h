#ifndef QP_FLOW_MAX_FLOW_H_
#define QP_FLOW_MAX_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace qp {

/// Capacity value treated as "infinite" (not purchasable / uncuttable).
/// Chosen far below the int64 maximum so sums of a few infinities do not
/// overflow.
inline constexpr int64_t kInfiniteCapacity =
    std::numeric_limits<int64_t>::max() / 8;

/// Adds capacities, saturating at kInfiniteCapacity.
inline int64_t SaturatingAddCapacity(int64_t a, int64_t b) {
  int64_t sum = a + b;  // safe: operands are <= kInfiniteCapacity = max/8
  return sum >= kInfiniteCapacity ? kInfiniteCapacity : sum;
}

/// A directed flow network with integer capacities and Dinic max-flow.
/// The min s-t cut (the dual used by Theorem 3.13 of the paper) can be
/// extracted after running MaxFlow.
class FlowNetwork {
 public:
  using NodeId = int32_t;
  using EdgeId = int32_t;

  /// Adds a node and returns its id.
  NodeId AddNode();

  /// Adds `count` nodes, returning the id of the first.
  NodeId AddNodes(int count);

  /// Empties the network but keeps every allocated buffer (adjacency
  /// lists, edge arrays, BFS/DFS scratch) for the next build. Solvers that
  /// construct many flow graphs in a row (the GChQ pipeline solves one per
  /// hanging-variable case split) reuse one network via Reset instead of
  /// reallocating per graph.
  void Reset();

  /// Adds a directed edge with the given capacity (clamped to
  /// kInfiniteCapacity) and returns its id.
  EdgeId AddEdge(NodeId from, NodeId to, int64_t capacity);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(edges_.size()) / 2; }

  /// The capacity the edge was created with (MaxFlow mutates residuals,
  /// not this).
  int64_t EdgeCapacity(EdgeId e) const { return original_capacity_[e]; }
  NodeId EdgeFrom(EdgeId e) const { return edges_[2 * e + 1].to; }
  NodeId EdgeTo(EdgeId e) const { return edges_[2 * e].to; }

  /// Computes the maximum s-t flow. Returns kInfiniteCapacity if the flow
  /// is unbounded (no finite cut separates s from t). Resets any previous
  /// flow.
  int64_t MaxFlow(NodeId source, NodeId sink);

  /// After MaxFlow: the edges of a minimum cut (source side -> sink side in
  /// the residual graph). Only meaningful when MaxFlow returned a finite
  /// value. Checks max-flow/min-cut duality (the exactness argument of
  /// Theorem 3.13) when QP_CHECK_LEVEL enables invariants.
  std::vector<EdgeId> MinCutEdges() const;

 private:
  struct HalfEdge {
    NodeId to;
    int64_t capacity;  // residual capacity
  };

  bool Bfs();
  int64_t Dfs(NodeId node, int64_t limit);

  /// Invariant check after MaxFlow: per-edge flow within capacity and flow
  /// conservation at every node except source/sink, with net outflow
  /// `total` at the source. No-op at QP_CHECK_LEVEL=off or on unbounded
  /// flows.
  void CheckFlowConservation(int64_t total) const;

  std::vector<HalfEdge> edges_;  // pairs: forward at 2e, backward at 2e+1
  std::vector<int64_t> original_capacity_;
  /// Slots [0, num_nodes_) are live; slots beyond are kept (with their
  /// heap buffers) for reuse after Reset and cleared lazily on re-add.
  std::vector<std::vector<int32_t>> adjacency_;  // indexes into edges_
  NodeId num_nodes_ = 0;
  std::vector<int32_t> level_;
  std::vector<std::size_t> iter_;
  NodeId source_ = -1;
  NodeId sink_ = -1;
  /// Value returned by the most recent MaxFlow (-1 before any run), used
  /// by MinCutEdges to assert duality.
  int64_t last_flow_ = -1;
};

}  // namespace qp

#endif  // QP_FLOW_MAX_FLOW_H_
