#ifndef QP_FLOW_MAX_FLOW_H_
#define QP_FLOW_MAX_FLOW_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string_view>
#include <vector>

#include "qp/util/result.h"

namespace qp {

/// Capacity value treated as "infinite" (not purchasable / uncuttable).
/// Chosen far below the int64 maximum so sums of a few infinities do not
/// overflow.
inline constexpr int64_t kInfiniteCapacity =
    std::numeric_limits<int64_t>::max() / 8;

/// Adds capacities, saturating at kInfiniteCapacity.
inline int64_t SaturatingAddCapacity(int64_t a, int64_t b) {
  int64_t sum = a + b;  // safe: operands are <= kInfiniteCapacity = max/8
  return sum >= kInfiniteCapacity ? kInfiniteCapacity : sum;
}

/// Max-flow algorithm selection. The min-cut value is algorithm-independent
/// (property-tested by the cross-solver backend axis); the choice only
/// affects runtime.
enum class FlowSolver {
  /// Pick per graph shape: Dinic for the sparse graphs the solvers usually
  /// build, highest-label push-relabel for dense ones.
  kAuto,
  /// BFS level graph + blocking-flow DFS. Near-linear on the unit-ish
  /// capacity graphs of the Theorem 3.13 reduction.
  kDinic,
  /// Highest-label push-relabel with the gap heuristic, plus a second
  /// phase that converts the max preflow into a valid max flow so the
  /// conservation and duality checkers apply to both backends.
  kPushRelabel,
};

std::string_view FlowSolverName(FlowSolver solver);

/// A directed flow network with integer capacities over a flat CSR arena.
/// Half-edges live in struct-of-arrays storage (`to_` / `cap_` indexed by
/// half-edge id); adjacency is a sorted-CSR index (`start_` / `csr_`,
/// half-edge ids grouped by tail node, rebuilt lazily per topology) so a
/// solve streams a few contiguous int32/int64 arrays instead of chasing
/// per-node vectors or intrusive next-pointers.
///
/// Supports warm-started incremental re-solves: after a MaxFlow run,
/// UpdateEdgeCapacity patches residuals in place (preserving the feasible
/// flow) and ResumeMaxFlow re-augments from it, so repricing after a
/// single-tuple insert costs time proportional to the change, not the
/// graph. The min s-t cut (the dual used by Theorem 3.13 of the paper) can
/// be extracted after any complete solve.
class FlowNetwork {
 public:
  using NodeId = int32_t;
  using EdgeId = int32_t;

  /// Adds a node and returns its id.
  NodeId AddNode();

  /// Adds `count` nodes, returning the id of the first.
  NodeId AddNodes(int count);

  /// Empties the network but keeps every allocated buffer (arena arrays,
  /// BFS/DFS scratch) for the next build. Solvers that construct many flow
  /// graphs in a row (the GChQ pipeline solves one per hanging-variable
  /// case split) reuse one network via Reset instead of reallocating.
  void Reset();

  /// Adds a directed edge with the given capacity (clamped to
  /// [0, kInfiniteCapacity]) and returns its id. Edge ids are dense and
  /// sequential in insertion order. Adding an edge after a solve keeps the
  /// computed flow as a feasible warm base (the new edge carries zero
  /// flow) and puts the network in the resume-pending state: call
  /// ResumeMaxFlow before the next MinCutEdges, as after
  /// UpdateEdgeCapacity.
  EdgeId AddEdge(NodeId from, NodeId to, int64_t capacity);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return static_cast<int>(capacity_.size()); }

  /// The capacity the edge was created with (or last set through
  /// UpdateEdgeCapacity); solves mutate residuals, not this.
  int64_t EdgeCapacity(EdgeId e) const { return capacity_[e]; }
  NodeId EdgeFrom(EdgeId e) const { return to_[2 * e + 1]; }
  NodeId EdgeTo(EdgeId e) const { return to_[2 * e]; }
  /// Flow currently routed through edge `e` (0 before any solve).
  int64_t EdgeFlow(EdgeId e) const { return capacity_[e] - cap_[2 * e]; }

  /// Computes the maximum s-t flow with the selected backend. Returns
  /// kInfiniteCapacity if the flow is unbounded (no finite cut separates s
  /// from t). Discards any previous flow.
  int64_t MaxFlow(NodeId source, NodeId sink,
                  FlowSolver solver = FlowSolver::kAuto);

  /// Changes the capacity of edge `e` in place. Before any MaxFlow run
  /// this is equivalent to having added the edge with `capacity`. After a
  /// run, the current flow is patched to stay feasible (a decrease below
  /// the edge's flow drains the excess back to source/sink) and the next
  /// ResumeMaxFlow re-augments incrementally; until then the network is in
  /// a resume-pending state and MinCutEdges refuses to answer.
  void UpdateEdgeCapacity(EdgeId e, int64_t capacity);

  /// Re-augments from the current feasible flow after one or more
  /// UpdateEdgeCapacity calls and returns the new max-flow value. Fails
  /// with FailedPrecondition if no MaxFlow run has completed. After an
  /// unbounded run the resume falls back to a full recompute (residuals of
  /// a saturated run are meaningless).
  Result<int64_t> ResumeMaxFlow();

  /// True when a completed solve's flow is in the arena and no capacity
  /// update has been applied since (i.e. MinCutEdges will answer).
  bool HasCurrentFlow() const {
    return last_flow_ >= 0 && last_flow_ < kInfiniteCapacity &&
           !resume_pending_;
  }

  /// The edges of a minimum s-t cut (source side -> sink side in the
  /// residual graph) of the most recent solve. Checked errors:
  /// FailedPrecondition if called before MaxFlow, after an unbounded flow
  /// (no finite cut exists), or while a capacity update awaits
  /// ResumeMaxFlow. Checks max-flow/min-cut duality (the exactness
  /// argument of Theorem 3.13) when QP_CHECK_LEVEL enables invariants.
  Result<std::vector<EdgeId>> MinCutEdges() const;

  /// Test hook: lowers the half-edge arena limit guarded by the AddEdge
  /// overflow invariant (0 restores the real int32 limit). The real limit
  /// cannot be reached in a unit test without allocating ~2^31 edges.
  static void SetHalfEdgeLimitForTesting(int64_t limit);

 private:
  /// Rebuilds the start_/csr_ adjacency index (counting sort of half-edge
  /// ids by tail node). Called by the solve entry points when the topology
  /// changed since the last build.
  void BuildCsr();
  bool Bfs();
  int64_t Dfs(NodeId node, int64_t limit);
  /// Dinic phases from the current residual state; adds to `base` and
  /// returns the new total (kInfiniteCapacity if it saturates).
  int64_t AugmentToMax(int64_t base, uint64_t* augmenting_paths,
                       uint64_t* bfs_rounds);
  int64_t RunPushRelabel();
  /// True if an s-t path of infinite-capacity residual edges exists (the
  /// unbounded case push-relabel must reject up front).
  bool HasInfiniteResidualPath() const;
  /// Push-relabel phase 2: cancels flow cycles / stranded preflow so the
  /// residual arrays encode a valid (conserving) max flow.
  void DrainExcessToSource(NodeId node, int64_t amount);
  /// Cancels `amount` units of flow currently routed out of `node` forward
  /// to the sink (used when a capacity decrease severs routed flow).
  void DrainDeficitToSink(NodeId node, int64_t amount);
  int64_t DrainAlongFlow(NodeId from, NodeId target, int64_t amount,
                         bool forward);

  /// Invariant check after a complete solve: per-edge flow within capacity
  /// and flow conservation at every node except source/sink, with net
  /// outflow `total` at the source. No-op at QP_CHECK_LEVEL=off or on
  /// unbounded flows.
  void CheckFlowConservation(int64_t total) const;

  // ---- CSR arena ----------------------------------------------------------
  // Half-edge h = 2e is edge e forward, h = 2e+1 its reverse (h ^ 1 flips);
  // the tail of h is to_[h ^ 1]. Adjacency is a counting-sorted index over
  // the half-edge ids: node n's half-edges are csr_[start_[n]..start_[n+1])
  // — contiguous, so traversal streams instead of pointer-chasing. The
  // index is rebuilt lazily (BuildCsr) when the topology changed.
  std::vector<NodeId> to_;    // target node per half-edge
  std::vector<int64_t> cap_;  // residual capacity per half-edge
  std::vector<int64_t> capacity_;  // declared capacity per edge id
  std::vector<int32_t> start_;  // per-node CSR offsets (num_nodes_ + 1)
  std::vector<int32_t> csr_;    // half-edge ids grouped by tail node
  bool csr_dirty_ = true;
  NodeId num_nodes_ = 0;

  // ---- Solver scratch (kept across Reset) ---------------------------------
  std::vector<int32_t> level_;
  std::vector<int32_t> iter_;  // per-node cursor into the half-edge list
  std::vector<NodeId> queue_;
  // Push-relabel state.
  std::vector<int64_t> excess_;
  std::vector<int32_t> height_;
  std::vector<int32_t> height_count_;
  std::vector<std::vector<NodeId>> active_;
  // Warm-start / phase-2 drain scratch.
  std::vector<int32_t> drain_mark_;
  std::vector<int32_t> drain_pos_;
  std::vector<int32_t> drain_path_;
  int32_t drain_epoch_ = 0;
  // MinCutEdges reachability scratch (the method is const but reuses these
  // across calls).
  mutable std::vector<char> mincut_reach_;
  mutable std::vector<NodeId> mincut_queue_;

  NodeId source_ = -1;
  NodeId sink_ = -1;
  /// Value of the most recent complete solve (-1 before any run), used by
  /// MinCutEdges to assert duality and by ResumeMaxFlow as the base.
  int64_t last_flow_ = -1;
  /// Set by UpdateEdgeCapacity after a run; cleared by ResumeMaxFlow /
  /// MaxFlow.
  bool resume_pending_ = false;
};

}  // namespace qp

#endif  // QP_FLOW_MAX_FLOW_H_
