#include "qp/flow/max_flow.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <string>

#include "qp/check/check.h"
#include "qp/obs/metrics.h"

namespace qp {

FlowNetwork::NodeId FlowNetwork::AddNode() { return AddNodes(1); }

FlowNetwork::NodeId FlowNetwork::AddNodes(int count) {
  QP_ASSERT(count >= 0, "AddNodes called with negative count");
  NodeId first = num_nodes_;
  num_nodes_ += count;
  if (static_cast<size_t>(num_nodes_) > adjacency_.size()) {
    adjacency_.resize(static_cast<size_t>(num_nodes_));
  }
  // Slots recycled from a previous build keep their buffer capacity.
  for (NodeId n = first; n < num_nodes_; ++n) adjacency_[n].clear();
  return first;
}

void FlowNetwork::Reset() {
  // Each Reset is a rebuild that reused this network's buffers instead of
  // allocating a fresh one (the GChQ Step-3 case-split path).
  QP_METRIC_INCR("qp.flow.resets");
  num_nodes_ = 0;
  edges_.clear();
  original_capacity_.clear();
  source_ = -1;
  sink_ = -1;
  last_flow_ = -1;
}

FlowNetwork::EdgeId FlowNetwork::AddEdge(NodeId from, NodeId to,
                                         int64_t capacity) {
  QP_ASSERT(from >= 0 && from < num_nodes(),
            "AddEdge: 'from' node out of range");
  QP_ASSERT(to >= 0 && to < num_nodes(), "AddEdge: 'to' node out of range");
  // Half-edge indexes are stored as int32_t in the adjacency lists; the
  // graphs the solvers build are far below this, so an overflow means a
  // runaway construction, not a legitimate workload.
  QP_ASSERT(edges_.size() + 2 <
                static_cast<size_t>(std::numeric_limits<int32_t>::max()),
            "AddEdge: edge index would overflow int32");
  if (capacity > kInfiniteCapacity) capacity = kInfiniteCapacity;
  if (capacity < 0) capacity = 0;
  EdgeId id = static_cast<EdgeId>(edges_.size() / 2);
  original_capacity_.push_back(capacity);
  adjacency_[from].push_back(static_cast<int32_t>(edges_.size()));
  edges_.push_back(HalfEdge{to, capacity});
  adjacency_[to].push_back(static_cast<int32_t>(edges_.size()));
  edges_.push_back(HalfEdge{from, 0});
  return id;
}

bool FlowNetwork::Bfs() {
  level_.assign(static_cast<size_t>(num_nodes()), -1);
  std::deque<NodeId> queue;
  level_[source_] = 0;
  queue.push_back(source_);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (int32_t half : adjacency_[u]) {
      const HalfEdge& e = edges_[half];
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[sink_] >= 0;
}

int64_t FlowNetwork::Dfs(NodeId node, int64_t limit) {
  if (node == sink_) return limit;
  for (size_t& i = iter_[node]; i < adjacency_[node].size(); ++i) {
    int32_t half = adjacency_[node][i];
    HalfEdge& e = edges_[half];
    if (e.capacity <= 0 || level_[e.to] != level_[node] + 1) continue;
    int64_t pushed = Dfs(e.to, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      edges_[half ^ 1].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

void FlowNetwork::CheckFlowConservation(int64_t total) const {
  if (!check_internal::CheckEnabled()) return;
  if (total < 0 || total >= kInfiniteCapacity) return;
  // Net outflow per node: +f on the tail, -f on the head of each edge.
  std::vector<int64_t> net(static_cast<size_t>(num_nodes()), 0);
  for (size_t half = 0; half + 1 < edges_.size(); half += 2) {
    size_t e = half / 2;
    int64_t flow = original_capacity_[e] - edges_[half].capacity;
    QP_ASSERT(flow >= 0 && flow <= original_capacity_[e],
              "edge flow outside [0, capacity] after MaxFlow");
    NodeId from = edges_[half + 1].to;
    NodeId to = edges_[half].to;
    net[from] += flow;
    net[to] -= flow;
  }
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v == source_) {
      QP_INVARIANT(net[v] == total,
                   "flow out of the source differs from the max-flow value");
    } else if (v == sink_) {
      QP_INVARIANT(net[v] == -total,
                   "flow into the sink differs from the max-flow value");
    } else {
      QP_INVARIANT(net[v] == 0,
                   "flow conservation violated at node " + std::to_string(v));
    }
  }
}

int64_t FlowNetwork::MaxFlow(NodeId source, NodeId sink) {
  QP_ASSERT(source >= 0 && source < num_nodes(),
            "MaxFlow: source out of range");
  QP_ASSERT(sink >= 0 && sink < num_nodes(), "MaxFlow: sink out of range");
  QP_ASSERT(source != sink, "MaxFlow: source equals sink");
  source_ = source;
  sink_ = sink;
  int64_t total = 0;
  // Local tallies, flushed to the metrics registry once per solve so the
  // inner Dinic loops stay free of atomics.
  uint64_t augmenting_paths = 0;
  uint64_t bfs_rounds = 0;
  while (Bfs()) {
    ++bfs_rounds;
    iter_.assign(static_cast<size_t>(num_nodes()), 0);
    while (int64_t pushed = Dfs(source_, kInfiniteCapacity)) {
      ++augmenting_paths;
      total = SaturatingAddCapacity(total, pushed);
      if (total >= kInfiniteCapacity) {
        last_flow_ = kInfiniteCapacity;
        return kInfiniteCapacity;
      }
    }
  }
  QP_METRIC_INCR("qp.flow.maxflow_runs");
  QP_METRIC_COUNT("qp.flow.augmenting_paths", augmenting_paths);
  QP_METRIC_COUNT("qp.flow.bfs_rounds", bfs_rounds);
  CheckFlowConservation(total);
  last_flow_ = total;
  return total;
}

std::vector<FlowNetwork::EdgeId> FlowNetwork::MinCutEdges() const {
  // Nodes reachable from the source in the residual graph.
  std::vector<bool> reachable(static_cast<size_t>(num_nodes()), false);
  std::deque<NodeId> queue;
  reachable[source_] = true;
  queue.push_back(source_);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (int32_t half : adjacency_[u]) {
      const HalfEdge& e = edges_[half];
      if (e.capacity > 0 && !reachable[e.to]) {
        reachable[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  std::vector<EdgeId> cut;
  for (size_t half = 0; half < edges_.size(); half += 2) {
    NodeId from = edges_[half + 1].to;
    NodeId to = edges_[half].to;
    if (reachable[from] && !reachable[to]) {
      cut.push_back(static_cast<EdgeId>(half / 2));
    }
  }
  // Max-flow/min-cut duality (the exactness of the Theorem 3.13
  // reduction): the cut's total original capacity equals the flow value
  // MaxFlow just computed.
  if (check_internal::CheckEnabled() && last_flow_ >= 0 &&
      last_flow_ < kInfiniteCapacity) {
    int64_t cut_capacity = 0;
    for (EdgeId e : cut) {
      cut_capacity = SaturatingAddCapacity(cut_capacity, original_capacity_[e]);
    }
    QP_INVARIANT(cut_capacity == last_flow_,
                 "min-cut capacity " + std::to_string(cut_capacity) +
                     " != max-flow value " + std::to_string(last_flow_) +
                     " (LP duality violated)");
  }
  return cut;
}

}  // namespace qp
