#include "qp/flow/max_flow.h"

#include <algorithm>
#include <cassert>
#include <deque>

namespace qp {

FlowNetwork::NodeId FlowNetwork::AddNode() { return AddNodes(1); }

FlowNetwork::NodeId FlowNetwork::AddNodes(int count) {
  NodeId first = num_nodes_;
  num_nodes_ += count;
  if (static_cast<size_t>(num_nodes_) > adjacency_.size()) {
    adjacency_.resize(num_nodes_);
  }
  // Slots recycled from a previous build keep their buffer capacity.
  for (NodeId n = first; n < num_nodes_; ++n) adjacency_[n].clear();
  return first;
}

void FlowNetwork::Reset() {
  num_nodes_ = 0;
  edges_.clear();
  original_capacity_.clear();
  source_ = -1;
  sink_ = -1;
}

FlowNetwork::EdgeId FlowNetwork::AddEdge(NodeId from, NodeId to,
                                         int64_t capacity) {
  assert(from >= 0 && from < num_nodes());
  assert(to >= 0 && to < num_nodes());
  if (capacity > kInfiniteCapacity) capacity = kInfiniteCapacity;
  if (capacity < 0) capacity = 0;
  EdgeId id = static_cast<EdgeId>(edges_.size() / 2);
  original_capacity_.push_back(capacity);
  adjacency_[from].push_back(static_cast<int32_t>(edges_.size()));
  edges_.push_back(HalfEdge{to, capacity});
  adjacency_[to].push_back(static_cast<int32_t>(edges_.size()));
  edges_.push_back(HalfEdge{from, 0});
  return id;
}

bool FlowNetwork::Bfs() {
  level_.assign(num_nodes(), -1);
  std::deque<NodeId> queue;
  level_[source_] = 0;
  queue.push_back(source_);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (int32_t half : adjacency_[u]) {
      const HalfEdge& e = edges_[half];
      if (e.capacity > 0 && level_[e.to] < 0) {
        level_[e.to] = level_[u] + 1;
        queue.push_back(e.to);
      }
    }
  }
  return level_[sink_] >= 0;
}

int64_t FlowNetwork::Dfs(NodeId node, int64_t limit) {
  if (node == sink_) return limit;
  for (size_t& i = iter_[node]; i < adjacency_[node].size(); ++i) {
    int32_t half = adjacency_[node][i];
    HalfEdge& e = edges_[half];
    if (e.capacity <= 0 || level_[e.to] != level_[node] + 1) continue;
    int64_t pushed = Dfs(e.to, std::min(limit, e.capacity));
    if (pushed > 0) {
      e.capacity -= pushed;
      edges_[half ^ 1].capacity += pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t FlowNetwork::MaxFlow(NodeId source, NodeId sink) {
  assert(source != sink);
  source_ = source;
  sink_ = sink;
  int64_t total = 0;
  while (Bfs()) {
    iter_.assign(num_nodes(), 0);
    while (int64_t pushed = Dfs(source_, kInfiniteCapacity)) {
      total = SaturatingAddCapacity(total, pushed);
      if (total >= kInfiniteCapacity) return kInfiniteCapacity;
    }
  }
  return total;
}

std::vector<FlowNetwork::EdgeId> FlowNetwork::MinCutEdges() const {
  // Nodes reachable from the source in the residual graph.
  std::vector<bool> reachable(num_nodes(), false);
  std::deque<NodeId> queue;
  reachable[source_] = true;
  queue.push_back(source_);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop_front();
    for (int32_t half : adjacency_[u]) {
      const HalfEdge& e = edges_[half];
      if (e.capacity > 0 && !reachable[e.to]) {
        reachable[e.to] = true;
        queue.push_back(e.to);
      }
    }
  }
  std::vector<EdgeId> cut;
  for (size_t half = 0; half < edges_.size(); half += 2) {
    NodeId from = edges_[half + 1].to;
    NodeId to = edges_[half].to;
    if (reachable[from] && !reachable[to]) {
      cut.push_back(static_cast<EdgeId>(half / 2));
    }
  }
  return cut;
}

}  // namespace qp
