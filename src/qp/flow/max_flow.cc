#include "qp/flow/max_flow.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <string>

#include "qp/check/check.h"
#include "qp/obs/metrics.h"

namespace qp {
namespace {

/// Test-only override of the half-edge arena limit (0 = the real int32
/// bound). Atomic so a TSan run over the whole test binary stays clean.
std::atomic<int64_t> g_half_edge_limit{0};

int64_t EffectiveHalfEdgeLimit() {
  int64_t limit = g_half_edge_limit.load(std::memory_order_relaxed);
  return limit > 0 ? limit
                   : static_cast<int64_t>(
                         std::numeric_limits<int32_t>::max()) -
                         1;
}

}  // namespace

std::string_view FlowSolverName(FlowSolver solver) {
  switch (solver) {
    case FlowSolver::kAuto:
      return "auto";
    case FlowSolver::kDinic:
      return "dinic";
    case FlowSolver::kPushRelabel:
      return "push-relabel";
  }
  return "unknown";
}

void FlowNetwork::SetHalfEdgeLimitForTesting(int64_t limit) {
  g_half_edge_limit.store(limit, std::memory_order_relaxed);
}

FlowNetwork::NodeId FlowNetwork::AddNode() { return AddNodes(1); }

FlowNetwork::NodeId FlowNetwork::AddNodes(int count) {
  QP_ASSERT(count >= 0, "AddNodes called with negative count");
  NodeId first = num_nodes_;
  num_nodes_ += count;
  csr_dirty_ = true;
  return first;
}

void FlowNetwork::Reset() {
  // Each Reset is a rebuild that reused this network's arena instead of
  // allocating a fresh one (the GChQ Step-3 case-split path).
  QP_METRIC_INCR("qp.flow.resets");
  num_nodes_ = 0;
  to_.clear();
  cap_.clear();
  capacity_.clear();
  csr_dirty_ = true;
  source_ = -1;
  sink_ = -1;
  last_flow_ = -1;
  resume_pending_ = false;
}

FlowNetwork::EdgeId FlowNetwork::AddEdge(NodeId from, NodeId to,
                                         int64_t capacity) {
  QP_ASSERT(from >= 0 && from < num_nodes(),
            "AddEdge: 'from' node out of range");
  QP_ASSERT(to >= 0 && to < num_nodes(), "AddEdge: 'to' node out of range");
  // Half-edge ids are int32: a graph must stay under ~2^31 half edges. The
  // solvers build far smaller graphs, so hitting the limit means a runaway
  // construction (e.g. a catalog-scale all-pairs product), not a
  // legitimate workload — flag it instead of corrupting the arena.
  QP_INVARIANT(static_cast<int64_t>(to_.size()) + 2 <=
                   EffectiveHalfEdgeLimit(),
               "AddEdge: edge id would overflow the int32 half-edge arena");
  if (capacity > kInfiniteCapacity) capacity = kInfiniteCapacity;
  if (capacity < 0) capacity = 0;
  EdgeId id = static_cast<EdgeId>(capacity_.size());
  capacity_.push_back(capacity);
  // Forward half 2e, reverse half 2e+1; tails are recovered as to_[h ^ 1]
  // when the CSR index is (re)built at the next solve.
  to_.push_back(to);
  cap_.push_back(capacity);
  to_.push_back(from);
  cap_.push_back(0);
  csr_dirty_ = true;
  // A new edge carries zero flow, so a previously computed flow stays
  // feasible — it just may no longer be maximal. Keep it as a warm base
  // and require a ResumeMaxFlow before the next cut extraction, exactly
  // like UpdateEdgeCapacity. (The incremental chain state leans on this:
  // an inserted tuple appends its hub-family edges instead of carrying a
  // quadratic all-pairs edge arena from the start.)
  if (last_flow_ >= 0) resume_pending_ = true;
  return id;
}

void FlowNetwork::BuildCsr() {
  if (!csr_dirty_) return;
  const size_t half_edges = to_.size();
  start_.assign(static_cast<size_t>(num_nodes_) + 1, 0);
  for (size_t h = 0; h < half_edges; ++h) {
    ++start_[static_cast<size_t>(to_[h ^ 1]) + 1];
  }
  for (size_t n = 0; n < static_cast<size_t>(num_nodes_); ++n) {
    start_[n + 1] += start_[n];
  }
  csr_.resize(half_edges);
  // iter_ doubles as the fill cursor; solves re-seed it from start_.
  iter_.assign(start_.begin(), start_.end() - 1);
  for (size_t h = 0; h < half_edges; ++h) {
    csr_[static_cast<size_t>(iter_[to_[h ^ 1]]++)] =
        static_cast<int32_t>(h);
  }
  csr_dirty_ = false;
}

bool FlowNetwork::Bfs() {
  level_.assign(static_cast<size_t>(num_nodes()), -1);
  queue_.clear();
  level_[source_] = 0;
  queue_.push_back(source_);
  for (size_t qi = 0; qi < queue_.size(); ++qi) {
    NodeId u = queue_[qi];
    // Nodes at or past the sink's level cannot lie on a shortest
    // augmenting path; stop expanding the level graph there.
    if (level_[sink_] >= 0 && level_[u] >= level_[sink_]) break;
    for (int32_t i = start_[u]; i < start_[u + 1]; ++i) {
      int32_t h = csr_[i];
      NodeId v = to_[h];
      if (cap_[h] > 0 && level_[v] < 0) {
        level_[v] = level_[u] + 1;
        queue_.push_back(v);
      }
    }
  }
  return level_[sink_] >= 0;
}

int64_t FlowNetwork::Dfs(NodeId node, int64_t limit) {
  if (node == sink_) return limit;
  for (int32_t& i = iter_[node]; i < start_[node + 1]; ++i) {
    int32_t h = csr_[i];
    NodeId v = to_[h];
    if (cap_[h] <= 0 || level_[v] != level_[node] + 1) continue;
    int64_t pushed = Dfs(v, std::min(limit, cap_[h]));
    if (pushed > 0) {
      cap_[h] -= pushed;
      cap_[h ^ 1] += pushed;
      return pushed;
    }
  }
  return 0;
}

int64_t FlowNetwork::AugmentToMax(int64_t base, uint64_t* augmenting_paths,
                                  uint64_t* bfs_rounds) {
  int64_t total = base;
  while (Bfs()) {
    ++*bfs_rounds;
    iter_.assign(start_.begin(), start_.end() - 1);
    while (int64_t pushed = Dfs(source_, kInfiniteCapacity)) {
      ++*augmenting_paths;
      total = SaturatingAddCapacity(total, pushed);
      if (total >= kInfiniteCapacity) return kInfiniteCapacity;
    }
  }
  return total;
}

bool FlowNetwork::HasInfiniteResidualPath() const {
  // BFS from the source over infinite-capacity residual edges only; an
  // all-infinite s-t path means every cut contains an infinite edge, i.e.
  // the flow is unbounded in this model.
  std::vector<char> seen(static_cast<size_t>(num_nodes()), 0);
  std::vector<NodeId> queue;
  seen[source_] = 1;
  queue.push_back(source_);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    NodeId u = queue[qi];
    for (int32_t i = start_[u]; i < start_[u + 1]; ++i) {
      int32_t h = csr_[i];
      NodeId v = to_[h];
      if (cap_[h] >= kInfiniteCapacity && !seen[v]) {
        if (v == sink_) return true;
        seen[v] = 1;
        queue.push_back(v);
      }
    }
  }
  return false;
}

int64_t FlowNetwork::RunPushRelabel() {
  const int n = num_nodes();
  uint64_t pushes = 0;
  uint64_t relabels = 0;
  // Clamp every working residual to cstar (a proven upper bound on the
  // finite max flow: the infinite-reachability cut is all-finite and its
  // capacity is at most the sum of all finite capacities). Keeps every
  // excess within int64 range without saturating arithmetic in the hot
  // loop. Viability (cstar small enough, no infinite s-t path) was checked
  // by the caller.
  int64_t cstar = 0;
  for (int64_t c : capacity_) {
    if (c < kInfiniteCapacity) cstar = SaturatingAddCapacity(cstar, c);
  }
  std::vector<EdgeId> clamped;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (cap_[2 * e] > cstar) {
      cap_[2 * e] = cstar;
      clamped.push_back(e);
    }
  }

  excess_.assign(static_cast<size_t>(n), 0);
  height_.assign(static_cast<size_t>(n), 0);
  height_count_.assign(static_cast<size_t>(2 * n + 1), 0);
  active_.resize(static_cast<size_t>(2 * n + 1));
  for (auto& bucket : active_) bucket.clear();
  // Current-arc cursors into the CSR index.
  iter_.assign(start_.begin(), start_.end() - 1);

  height_[source_] = n;
  height_count_[0] = n - 1;
  ++height_count_[n];

  int hi = 0;  // highest active height < n
  auto activate = [&](NodeId v) {
    if (v == source_ || v == sink_) return;
    int h = height_[v];
    if (h < n) {
      active_[h].push_back(v);
      if (h > hi) hi = h;
    }
  };

  // Saturate the source's out-edges.
  for (int32_t i = start_[source_]; i < start_[source_ + 1]; ++i) {
    int32_t h = csr_[i];
    int64_t d = cap_[h];
    if (d <= 0) continue;
    cap_[h] = 0;
    cap_[h ^ 1] += d;
    NodeId v = to_[h];
    excess_[v] += d;
    ++pushes;
    activate(v);
  }

  // Phase 1 (highest-label): route as much preflow as possible to the
  // sink. Nodes relabelled to height >= n can only return excess to the
  // source; they park for phase 2.
  while (hi >= 0) {
    if (active_[hi].empty()) {
      --hi;
      continue;
    }
    NodeId u = active_[hi].back();
    active_[hi].pop_back();
    if (excess_[u] <= 0 || height_[u] != hi) continue;  // stale entry
    // Discharge u.
    while (excess_[u] > 0 && height_[u] < n) {
      if (iter_[u] == start_[u + 1]) {
        // Relabel: lift u to one above its lowest residual neighbor.
        ++relabels;
        int old_h = height_[u];
        int new_h = 2 * n;
        for (int32_t i = start_[u]; i < start_[u + 1]; ++i) {
          int32_t a = csr_[i];
          if (cap_[a] > 0) new_h = std::min(new_h, height_[to_[a]] + 1);
        }
        --height_count_[old_h];
        height_[u] = new_h;
        ++height_count_[std::min(new_h, 2 * n)];
        iter_[u] = start_[u];
        // Gap heuristic: if height old_h just emptied below n, no node at
        // a height in (old_h, n) can ever reach the sink — lift them all
        // past n in one sweep.
        if (height_count_[old_h] == 0 && old_h < n) {
          for (NodeId v = 0; v < n; ++v) {
            if (height_[v] > old_h && height_[v] < n) {
              --height_count_[height_[v]];
              height_[v] = n + 1;
              ++height_count_[n + 1];
            }
          }
        }
        continue;
      }
      int32_t h = csr_[iter_[u]];
      NodeId v = to_[h];
      if (cap_[h] > 0 && height_[u] == height_[v] + 1) {
        int64_t d = std::min(excess_[u], cap_[h]);
        cap_[h] -= d;
        cap_[h ^ 1] += d;
        excess_[u] -= d;
        bool was_inactive = excess_[v] == 0;
        excess_[v] += d;
        ++pushes;
        if (was_inactive) activate(v);
      } else {
        ++iter_[u];
      }
    }
  }

  int64_t total = excess_[sink_];

  // Phase 2: convert the max preflow into a valid max flow by cancelling
  // every stranded excess back to the source along flow-carrying edges.
  for (NodeId v = 0; v < n; ++v) {
    if (v == source_ || v == sink_ || excess_[v] <= 0) continue;
    DrainExcessToSource(v, excess_[v]);
  }

  // Undo the cstar clamp so EdgeFlow/residual reachability reflect the
  // declared capacities again (flow values are unaffected: flow <= cstar).
  for (EdgeId e : clamped) {
    cap_[2 * e] += capacity_[e] - cstar;
  }

  QP_METRIC_COUNT("qp.flow.pr_pushes", pushes);
  QP_METRIC_COUNT("qp.flow.pr_relabels", relabels);
  return total;
}

void FlowNetwork::DrainExcessToSource(NodeId node, int64_t amount) {
  int64_t drained = DrainAlongFlow(node, source_, amount, /*forward=*/false);
  QP_ASSERT(drained == amount,
            "push-relabel phase 2 failed to return stranded excess");
}

void FlowNetwork::DrainDeficitToSink(NodeId node, int64_t amount) {
  int64_t drained = DrainAlongFlow(node, sink_, amount, /*forward=*/true);
  QP_ASSERT(drained == amount,
            "capacity decrease failed to cancel severed flow to the sink");
}

int64_t FlowNetwork::DrainAlongFlow(NodeId start, NodeId target,
                                    int64_t amount, bool forward) {
  // Cancels `amount` units of routed flow on a path from `start` to
  // `target`, walking forward along flow-carrying edges (forward=true) or
  // backward against them. Existence follows from flow/preflow
  // conservation; encountered flow cycles are cancelled outright (each
  // cancellation zeroes at least one edge's flow, so the walk terminates).
  if (drain_mark_.size() < static_cast<size_t>(num_nodes())) {
    drain_mark_.assign(static_cast<size_t>(num_nodes()), 0);
    drain_pos_.assign(static_cast<size_t>(num_nodes()), 0);
  }
  const int parity = forward ? 0 : 1;
  int64_t remaining = amount;
  while (remaining > 0) {
    if (drain_epoch_ == std::numeric_limits<int32_t>::max()) {
      std::fill(drain_mark_.begin(), drain_mark_.end(), 0);
      drain_epoch_ = 0;
    }
    ++drain_epoch_;
    drain_path_.clear();
    NodeId u = start;
    drain_mark_[u] = drain_epoch_;
    drain_pos_[u] = 0;
    bool retry = false;
    while (u != target) {
      int32_t found = -1;
      for (int32_t i = start_[u]; i < start_[u + 1]; ++i) {
        int32_t h = csr_[i];
        // The reverse residual of a flow-carrying edge equals its flow.
        int32_t flow_half = forward ? (h ^ 1) : h;
        if ((h & 1) == parity && cap_[flow_half] > 0) {
          found = h;
          break;
        }
      }
      QP_ASSERT(found != -1,
                "flow drain stuck at a node with no flow-carrying edge "
                "(conservation violated)");
      if (found == -1) return amount - remaining;
      drain_path_.push_back(found);
      NodeId w = to_[found];
      if (w == target) {
        u = w;
        break;
      }
      if (drain_mark_[w] == drain_epoch_) {
        // Flow cycle: cancel it entirely, then retry the walk.
        size_t from = static_cast<size_t>(drain_pos_[w]);
        int64_t bottleneck = kInfiniteCapacity;
        for (size_t i = from; i < drain_path_.size(); ++i) {
          int32_t fh = forward ? (drain_path_[i] ^ 1) : drain_path_[i];
          bottleneck = std::min(bottleneck, cap_[fh]);
        }
        for (size_t i = from; i < drain_path_.size(); ++i) {
          int32_t fh = forward ? (drain_path_[i] ^ 1) : drain_path_[i];
          cap_[fh] -= bottleneck;
          cap_[fh ^ 1] += bottleneck;
        }
        retry = true;
        break;
      }
      drain_mark_[w] = drain_epoch_;
      drain_pos_[w] = static_cast<int32_t>(drain_path_.size());
      u = w;
    }
    if (retry || u != target) continue;
    int64_t d = remaining;
    for (int32_t h : drain_path_) {
      int32_t fh = forward ? (h ^ 1) : h;
      d = std::min(d, cap_[fh]);
    }
    for (int32_t h : drain_path_) {
      int32_t fh = forward ? (h ^ 1) : h;
      cap_[fh] -= d;
      cap_[fh ^ 1] += d;
    }
    remaining -= d;
  }
  return amount;
}

void FlowNetwork::CheckFlowConservation(int64_t total) const {
  if (!check_internal::CheckEnabled()) return;
  if (total < 0 || total >= kInfiniteCapacity) return;
  // Net outflow per node: +f on the tail, -f on the head of each edge.
  std::vector<int64_t> net(static_cast<size_t>(num_nodes()), 0);
  for (EdgeId e = 0; e < num_edges(); ++e) {
    int64_t flow = capacity_[e] - cap_[2 * e];
    QP_ASSERT(flow >= 0 && flow <= capacity_[e],
              "edge flow outside [0, capacity] after MaxFlow");
    net[to_[2 * e + 1]] += flow;
    net[to_[2 * e]] -= flow;
  }
  for (NodeId v = 0; v < num_nodes(); ++v) {
    if (v == source_) {
      QP_INVARIANT(net[v] == total,
                   "flow out of the source differs from the max-flow value");
    } else if (v == sink_) {
      QP_INVARIANT(net[v] == -total,
                   "flow into the sink differs from the max-flow value");
    } else {
      QP_INVARIANT(net[v] == 0,
                   "flow conservation violated at node " + std::to_string(v));
    }
  }
}

int64_t FlowNetwork::MaxFlow(NodeId source, NodeId sink, FlowSolver solver) {
  QP_METRIC_SCOPED_TIMER("qp.flow.maxflow_ns");
  QP_ASSERT(source >= 0 && source < num_nodes(),
            "MaxFlow: source out of range");
  QP_ASSERT(sink >= 0 && sink < num_nodes(), "MaxFlow: sink out of range");
  QP_ASSERT(source != sink, "MaxFlow: source equals sink");
  source_ = source;
  sink_ = sink;
  resume_pending_ = false;
  BuildCsr();
  // Re-arm residuals from the declared capacities.
  for (EdgeId e = 0; e < num_edges(); ++e) {
    cap_[2 * e] = capacity_[e];
    cap_[2 * e + 1] = 0;
  }

  FlowSolver chosen = solver;
  if (chosen == FlowSolver::kAuto) {
    // Push-relabel wins on large dense graphs where Dinic's repeated
    // level-graph rebuilds dominate. The chain-reduction graphs — even
    // their densest variants before hub collapsing — stay below these
    // thresholds, and measured Dinic beats push-relabel on them (few BFS
    // phases, short augmenting paths), so the cutoffs are set well above
    // that shape.
    chosen = (num_nodes() > 4096 && num_edges() > 16 * num_nodes())
                 ? FlowSolver::kPushRelabel
                 : FlowSolver::kDinic;
  }
  if (chosen == FlowSolver::kPushRelabel) {
    // Viability: an all-infinite s-t path means an unbounded flow (report
    // it the way Dinic's saturating arithmetic would), and a finite-cap
    // sum too close to kInfiniteCapacity would risk excess overflow — fall
    // back to Dinic for those exotic graphs.
    if (HasInfiniteResidualPath()) {
      last_flow_ = kInfiniteCapacity;
      QP_METRIC_INCR("qp.flow.maxflow_runs");
      QP_METRIC_INCR("qp.flow.pushrelabel_runs");
      return kInfiniteCapacity;
    }
    int64_t cstar = 0;
    for (int64_t c : capacity_) {
      if (c < kInfiniteCapacity) cstar = SaturatingAddCapacity(cstar, c);
    }
    int64_t safe = kInfiniteCapacity /
                   std::max<int64_t>(1024, static_cast<int64_t>(num_nodes()));
    if (cstar >= safe) {
      chosen = FlowSolver::kDinic;
    }
  }

  int64_t total;
  if (chosen == FlowSolver::kPushRelabel) {
    QP_METRIC_INCR("qp.flow.pushrelabel_runs");
    total = RunPushRelabel();
  } else {
    // Local tallies, flushed to the metrics registry once per solve so the
    // inner Dinic loops stay free of atomics.
    uint64_t augmenting_paths = 0;
    uint64_t bfs_rounds = 0;
    total = AugmentToMax(0, &augmenting_paths, &bfs_rounds);
    QP_METRIC_COUNT("qp.flow.augmenting_paths", augmenting_paths);
    QP_METRIC_COUNT("qp.flow.bfs_rounds", bfs_rounds);
  }
  QP_METRIC_INCR("qp.flow.maxflow_runs");
  last_flow_ = total;
  if (total < kInfiniteCapacity) CheckFlowConservation(total);
  return total;
}

void FlowNetwork::UpdateEdgeCapacity(EdgeId e, int64_t capacity) {
  QP_ASSERT(e >= 0 && e < num_edges(), "UpdateEdgeCapacity: edge out of range");
  if (capacity > kInfiniteCapacity) capacity = kInfiniteCapacity;
  if (capacity < 0) capacity = 0;
  if (capacity == capacity_[e]) return;
  if (last_flow_ < 0) {
    // No solve yet: behave as if the edge had been added with this
    // capacity.
    capacity_[e] = capacity;
    cap_[2 * e] = capacity;
    return;
  }
  if (last_flow_ >= kInfiniteCapacity) {
    // Residuals of a saturated (unbounded) run are meaningless; the next
    // ResumeMaxFlow recomputes from scratch.
    capacity_[e] = capacity;
    resume_pending_ = true;
    return;
  }
  int64_t flow = capacity_[e] - cap_[2 * e];
  capacity_[e] = capacity;
  if (capacity >= flow) {
    // The routed flow still fits; only the headroom changes.
    cap_[2 * e] = capacity - flow;
  } else {
    // The decrease severs `excess` units of routed flow: pin the edge's
    // flow at the new capacity, then cancel the severed units along their
    // original routes — back from the tail to the source and forward from
    // the head to the sink — so conservation holds everywhere again.
    int64_t excess = flow - capacity;
    cap_[2 * e] = 0;
    cap_[2 * e + 1] = capacity;
    NodeId tail = EdgeFrom(e);
    NodeId head = EdgeTo(e);
    if (tail != source_) DrainExcessToSource(tail, excess);
    if (head != sink_) DrainDeficitToSink(head, excess);
    last_flow_ -= excess;
  }
  resume_pending_ = true;
}

Result<int64_t> FlowNetwork::ResumeMaxFlow() {
  if (last_flow_ < 0) {
    return Status::FailedPrecondition(
        "ResumeMaxFlow called before any MaxFlow run");
  }
  QP_METRIC_SCOPED_TIMER("qp.flow.resume_ns");
  BuildCsr();
  uint64_t augmenting_paths = 0;
  uint64_t bfs_rounds = 0;
  if (last_flow_ >= kInfiniteCapacity) {
    // A saturated run left no usable residual state; recompute fully.
    QP_METRIC_INCR("qp.flow.resume_full_recomputes");
    for (EdgeId e = 0; e < num_edges(); ++e) {
      cap_[2 * e] = capacity_[e];
      cap_[2 * e + 1] = 0;
    }
    last_flow_ = AugmentToMax(0, &augmenting_paths, &bfs_rounds);
  } else {
    // Warm start: the arena still holds a feasible flow of value
    // last_flow_; Dinic phases from its residual graph augment only what
    // the capacity updates made newly possible.
    QP_METRIC_INCR("qp.flow.warm_starts");
    last_flow_ = AugmentToMax(last_flow_, &augmenting_paths, &bfs_rounds);
    QP_METRIC_COUNT("qp.flow.resumed_augmenting_paths", augmenting_paths);
  }
  resume_pending_ = false;
  if (last_flow_ < kInfiniteCapacity) CheckFlowConservation(last_flow_);
  return last_flow_;
}

Result<std::vector<FlowNetwork::EdgeId>> FlowNetwork::MinCutEdges() const {
  QP_METRIC_SCOPED_TIMER("qp.flow.mincut_ns");
  if (last_flow_ < 0) {
    return Status::FailedPrecondition(
        "MinCutEdges called before any MaxFlow run");
  }
  if (last_flow_ >= kInfiniteCapacity) {
    return Status::FailedPrecondition(
        "MinCutEdges called after an unbounded flow: no finite cut "
        "separates source from sink");
  }
  if (resume_pending_) {
    return Status::FailedPrecondition(
        "MinCutEdges called with a capacity update pending; call "
        "ResumeMaxFlow first");
  }
  // Nodes reachable from the source in the residual graph (scratch
  // buffers are members so repeated cut extractions don't reallocate).
  std::vector<char>& reachable = mincut_reach_;
  std::vector<NodeId>& queue = mincut_queue_;
  reachable.assign(static_cast<size_t>(num_nodes()), 0);
  queue.clear();
  reachable[source_] = 1;
  queue.push_back(source_);
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    NodeId u = queue[qi];
    for (int32_t i = start_[u]; i < start_[u + 1]; ++i) {
      int32_t h = csr_[i];
      NodeId v = to_[h];
      if (cap_[h] > 0 && !reachable[v]) {
        reachable[v] = 1;
        queue.push_back(v);
      }
    }
  }
  std::vector<EdgeId> cut;
  for (EdgeId e = 0; e < num_edges(); ++e) {
    if (reachable[to_[2 * e + 1]] && !reachable[to_[2 * e]]) {
      cut.push_back(e);
    }
  }
  // Max-flow/min-cut duality (the exactness of the Theorem 3.13
  // reduction): the cut's total declared capacity equals the flow value of
  // the most recent solve — whichever backend produced it.
  if (check_internal::CheckEnabled()) {
    int64_t cut_capacity = 0;
    for (EdgeId e : cut) {
      cut_capacity = SaturatingAddCapacity(cut_capacity, capacity_[e]);
    }
    QP_INVARIANT(cut_capacity == last_flow_,
                 "min-cut capacity " + std::to_string(cut_capacity) +
                     " != max-flow value " + std::to_string(last_flow_) +
                     " (LP duality violated)");
  }
  return cut;
}

}  // namespace qp
