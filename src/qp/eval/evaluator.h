#ifndef QP_EVAL_EVALUATOR_H_
#define QP_EVAL_EVALUATOR_H_

#include <vector>

#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// Evaluates conjunctive queries and unions of conjunctive queries on a
/// database instance. Uses index nested-loop joins with a greedy
/// most-bound-first atom ordering; answers are deduplicated and returned in
/// a deterministic (sorted) order.
class Evaluator {
 public:
  explicit Evaluator(const Instance* db) : db_(db) {}

  /// All answers of `q` (projections onto the head), sorted, deduplicated.
  /// A boolean query returns zero or one empty tuple.
  Result<std::vector<Tuple>> Eval(const ConjunctiveQuery& q) const;

  /// Answers of `q` as a hash set (for equality comparisons).
  Result<TupleSet> EvalToSet(const ConjunctiveQuery& q) const;

  /// Union of the disjuncts' answers. All disjuncts must share head arity.
  Result<std::vector<Tuple>> EvalUnion(const UnionQuery& q) const;

  /// True if `q` has at least one answer (early-exit evaluation).
  Result<bool> IsSatisfied(const ConjunctiveQuery& q) const;

 private:
  Result<TupleSet> Run(const ConjunctiveQuery& q, bool stop_at_first) const;

  const Instance* db_;
};

}  // namespace qp

#endif  // QP_EVAL_EVALUATOR_H_
