#include "qp/eval/evaluator.h"

#include <algorithm>
#include <unordered_map>

namespace qp {
namespace {

constexpr ValueId kUnbound = 0xffffffffu;

/// Execution plan for one atom: which argument positions are bound (by
/// earlier atoms or constants) at the time the atom runs.
struct AtomPlan {
  int atom_idx = -1;
  std::vector<int> bound_positions;    // probe key positions
  std::vector<int> binding_positions;  // positions that bind new variables
  // Hash index from packed probe key to tuples, built per evaluation.
  std::unordered_map<Tuple, std::vector<const Tuple*>, TupleHasher> index;
};

}  // namespace

Result<TupleSet> Evaluator::Run(const ConjunctiveQuery& q,
                                bool stop_at_first) const {
  const Schema& schema = db_->catalog().schema();

  // Validate the query against the schema.
  for (const Atom& a : q.atoms()) {
    if (a.rel < 0 || a.rel >= schema.num_relations()) {
      return Status::InvalidArgument("query references unknown relation");
    }
    if (static_cast<int>(a.args.size()) != schema.arity(a.rel)) {
      return Status::InvalidArgument("query atom arity mismatch");
    }
  }

  // Every head and predicate variable must occur in some atom, otherwise
  // the query is unsafe (its answer would be unbounded).
  std::set<VarId> body_vars = q.BodyVars();
  for (VarId v : q.head()) {
    if (body_vars.count(v) == 0) {
      return Status::InvalidArgument("head variable '" + q.var_name(v) +
                                     "' does not occur in the body");
    }
  }
  for (const UnaryPredicate& p : q.predicates()) {
    if (body_vars.count(p.var) == 0) {
      return Status::InvalidArgument("predicate variable '" +
                                     q.var_name(p.var) +
                                     "' does not occur in the body");
    }
  }

  // Resolve constants to value ids once. A constant that was never interned
  // cannot match any tuple; remember that and answer with the empty set.
  const int num_atoms = static_cast<int>(q.atoms().size());
  std::vector<std::vector<ValueId>> const_ids(num_atoms);
  for (int a = 0; a < num_atoms; ++a) {
    const Atom& atom = q.atoms()[a];
    const_ids[a].assign(atom.args.size(), kUnbound);
    for (size_t p = 0; p < atom.args.size(); ++p) {
      if (!atom.args[p].is_var()) {
        auto id = db_->catalog().dict().Find(atom.args[p].constant);
        if (!id.has_value()) return TupleSet{};  // unmatchable constant
        const_ids[a][p] = *id;
      }
    }
  }

  // Predicates indexed by variable.
  std::vector<std::vector<const UnaryPredicate*>> preds_by_var(q.num_vars());
  for (const UnaryPredicate& p : q.predicates()) {
    preds_by_var[p.var].push_back(&p);
  }

  // Greedy join order: repeatedly pick the atom with the most bound
  // variables, breaking ties by smaller relation cardinality.
  std::vector<bool> picked(num_atoms, false);
  std::vector<bool> var_bound(q.num_vars(), false);
  std::vector<AtomPlan> plans;
  for (int step = 0; step < num_atoms; ++step) {
    int best = -1;
    int best_bound = -1;
    size_t best_size = 0;
    for (int a = 0; a < num_atoms; ++a) {
      if (picked[a]) continue;
      int bound = 0;
      for (const Term& t : q.atoms()[a].args) {
        if (!t.is_var() || var_bound[t.var]) ++bound;
      }
      size_t size = db_->NumTuples(q.atoms()[a].rel);
      if (best < 0 || bound > best_bound ||
          (bound == best_bound && size < best_size)) {
        best = a;
        best_bound = bound;
        best_size = size;
      }
    }
    picked[best] = true;
    AtomPlan plan;
    plan.atom_idx = best;
    const Atom& atom = q.atoms()[best];
    // Snapshot which variables were bound *before* this atom: a variable
    // repeated within the atom must bind on its first occurrence and be
    // equality-checked on later ones, never used as a probe key.
    const std::vector<bool> bound_before = var_bound;
    for (size_t p = 0; p < atom.args.size(); ++p) {
      const Term& t = atom.args[p];
      if (!t.is_var() || bound_before[t.var]) {
        plan.bound_positions.push_back(static_cast<int>(p));
      } else {
        plan.binding_positions.push_back(static_cast<int>(p));
        var_bound[t.var] = true;
      }
    }
    plans.push_back(std::move(plan));
  }

  // Build hash indexes on the probe keys.
  for (AtomPlan& plan : plans) {
    const Atom& atom = q.atoms()[plan.atom_idx];
    for (const Tuple& t : db_->Relation(atom.rel)) {
      Tuple key;
      key.reserve(plan.bound_positions.size());
      for (int p : plan.bound_positions) key.push_back(t[p]);
      plan.index[std::move(key)].push_back(&t);
    }
  }

  TupleSet answers;
  std::vector<ValueId> binding(q.num_vars(), kUnbound);

  // Depth-first join over the plan.
  auto check_preds = [&](VarId v, ValueId id) {
    for (const UnaryPredicate* p : preds_by_var[v]) {
      if (!p->Eval(db_->catalog().dict().Get(id))) return false;
    }
    return true;
  };

  std::vector<size_t> cursor(plans.size());
  std::vector<const std::vector<const Tuple*>*> matches(plans.size());
  std::vector<std::vector<std::pair<VarId, ValueId>>> bound_here(plans.size());

  int depth = 0;
  bool done = false;
  while (depth >= 0 && !done) {
    if (depth == static_cast<int>(plans.size())) {
      // Full assignment: emit the head projection.
      Tuple answer;
      answer.reserve(q.head().size());
      for (VarId v : q.head()) answer.push_back(binding[v]);
      answers.insert(std::move(answer));
      if (stop_at_first) break;
      --depth;
      continue;
    }
    AtomPlan& plan = plans[depth];
    const Atom& atom = q.atoms()[plan.atom_idx];
    if (matches[depth] == nullptr) {
      // Entering this depth: probe the index.
      Tuple key;
      key.reserve(plan.bound_positions.size());
      for (int p : plan.bound_positions) {
        const Term& t = atom.args[p];
        key.push_back(t.is_var() ? binding[t.var]
                                 : const_ids[plan.atom_idx][p]);
      }
      auto it = plan.index.find(key);
      static const std::vector<const Tuple*> kNoMatches;
      matches[depth] = (it == plan.index.end()) ? &kNoMatches : &it->second;
      cursor[depth] = 0;
    } else {
      // Re-entering: undo bindings from the previous match.
      for (auto& [v, old] : bound_here[depth]) binding[v] = old;
      bound_here[depth].clear();
    }

    bool advanced = false;
    while (cursor[depth] < matches[depth]->size()) {
      const Tuple& t = *(*matches[depth])[cursor[depth]++];
      // Bind new variables, checking intra-atom repeats and predicates.
      bool ok = true;
      bound_here[depth].clear();
      for (int p : plan.binding_positions) {
        VarId v = atom.args[p].var;
        if (binding[v] != kUnbound) {
          if (binding[v] != t[p]) {
            ok = false;
            break;
          }
          continue;
        }
        if (!check_preds(v, t[p])) {
          ok = false;
          break;
        }
        bound_here[depth].push_back({v, binding[v]});
        binding[v] = t[p];
      }
      if (!ok) {
        for (auto& [v, old] : bound_here[depth]) binding[v] = old;
        bound_here[depth].clear();
        continue;
      }
      advanced = true;
      break;
    }
    if (advanced) {
      ++depth;
      if (depth < static_cast<int>(plans.size())) matches[depth] = nullptr;
    } else {
      // Exhausted this depth.
      for (auto& [v, old] : bound_here[depth]) binding[v] = old;
      bound_here[depth].clear();
      matches[depth] = nullptr;
      --depth;
    }
  }
  return answers;
}

Result<TupleSet> Evaluator::EvalToSet(const ConjunctiveQuery& q) const {
  return Run(q, /*stop_at_first=*/false);
}

Result<std::vector<Tuple>> Evaluator::Eval(const ConjunctiveQuery& q) const {
  auto set = Run(q, /*stop_at_first=*/false);
  if (!set.ok()) return set.status();
  std::vector<Tuple> out(set->begin(), set->end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<std::vector<Tuple>> Evaluator::EvalUnion(const UnionQuery& q) const {
  if (q.disjuncts.empty()) {
    return Status::InvalidArgument("union query has no disjuncts");
  }
  size_t arity = q.disjuncts[0].head().size();
  TupleSet all;
  for (const ConjunctiveQuery& cq : q.disjuncts) {
    if (cq.head().size() != arity) {
      return Status::InvalidArgument(
          "union disjuncts must share head arity");
    }
    auto set = Run(cq, /*stop_at_first=*/false);
    if (!set.ok()) return set.status();
    all.insert(set->begin(), set->end());
  }
  std::vector<Tuple> out(all.begin(), all.end());
  std::sort(out.begin(), out.end());
  return out;
}

Result<bool> Evaluator::IsSatisfied(const ConjunctiveQuery& q) const {
  auto set = Run(q, /*stop_at_first=*/true);
  if (!set.ok()) return set.status();
  return !set->empty();
}

}  // namespace qp
