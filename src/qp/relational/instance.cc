#include "qp/relational/instance.h"

namespace qp {

Instance::Instance(const Catalog* catalog) : catalog_(catalog) {
  relations_.resize(catalog->schema().num_relations());
  generations_.resize(relations_.size(), 0);
}

Result<bool> Instance::Insert(RelationId rel, Tuple tuple) {
  const Schema& schema = catalog_->schema();
  if (rel < 0 || rel >= schema.num_relations()) {
    return Status::InvalidArgument("bad relation id in Insert");
  }
  // New relations may have been added to the catalog since construction.
  if (static_cast<size_t>(schema.num_relations()) > relations_.size()) {
    relations_.resize(schema.num_relations());
    generations_.resize(relations_.size(), 0);
  }
  if (static_cast<int>(tuple.size()) != schema.arity(rel)) {
    return Status::InvalidArgument(
        "arity mismatch inserting into '" + schema.relation_name(rel) +
        "': got " + std::to_string(tuple.size()) + ", want " +
        std::to_string(schema.arity(rel)));
  }
  for (int p = 0; p < static_cast<int>(tuple.size()); ++p) {
    AttrRef attr{rel, p};
    if (catalog_->HasColumn(attr) && !catalog_->InColumn(attr, tuple[p])) {
      return Status::FailedPrecondition(
          "value " + catalog_->dict().Get(tuple[p]).ToString() +
          " violates column constraint on " +
          schema.AttrToString(attr));
    }
  }
  bool inserted = relations_[rel].insert(std::move(tuple)).second;
  if (inserted) ++generations_[rel];
  return inserted;
}

Result<bool> Instance::Insert(std::string_view rel,
                              const std::vector<Value>& values) {
  auto rel_id = catalog_->schema().FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  Tuple tuple;
  tuple.reserve(values.size());
  // Note: interning requires a mutable catalog; we require values to be
  // already interned via the column declarations. Unknown values violate
  // the column constraint anyway, so Find is enough.
  for (const Value& v : values) {
    auto id = catalog_->dict().Find(v);
    if (!id.has_value()) {
      return Status::FailedPrecondition(
          "value " + v.ToString() +
          " is not in any declared column (columns must be declared before "
          "inserting data)");
    }
    tuple.push_back(*id);
  }
  return Insert(*rel_id, std::move(tuple));
}

Status Instance::ValidateInsert(std::string_view rel,
                                const std::vector<Value>& values) const {
  const Schema& schema = catalog_->schema();
  auto rel_id = schema.FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  if (static_cast<int>(values.size()) != schema.arity(*rel_id)) {
    return Status::InvalidArgument(
        "arity mismatch inserting into '" + schema.relation_name(*rel_id) +
        "': got " + std::to_string(values.size()) + ", want " +
        std::to_string(schema.arity(*rel_id)));
  }
  for (int p = 0; p < static_cast<int>(values.size()); ++p) {
    auto id = catalog_->dict().Find(values[p]);
    if (!id.has_value()) {
      return Status::FailedPrecondition(
          "value " + values[p].ToString() +
          " is not in any declared column (columns must be declared before "
          "inserting data)");
    }
    AttrRef attr{*rel_id, p};
    if (catalog_->HasColumn(attr) && !catalog_->InColumn(attr, *id)) {
      return Status::FailedPrecondition(
          "value " + values[p].ToString() +
          " violates column constraint on " + schema.AttrToString(attr));
    }
  }
  return Status::Ok();
}

bool Instance::Erase(RelationId rel, const Tuple& tuple) {
  bool erased = relations_[rel].erase(tuple) > 0;
  if (erased) ++generations_[rel];
  return erased;
}

bool Instance::Contains(RelationId rel, const Tuple& tuple) const {
  return relations_[rel].count(tuple) > 0;
}

size_t Instance::TotalTuples() const {
  size_t total = 0;
  for (const TupleSet& r : relations_) total += r.size();
  return total;
}

bool Instance::IsSubsetOf(const Instance& other) const {
  if (relations_.size() != other.relations_.size()) return false;
  for (size_t r = 0; r < relations_.size(); ++r) {
    for (const Tuple& t : relations_[r]) {
      if (other.relations_[r].count(t) == 0) return false;
    }
  }
  return true;
}

}  // namespace qp
