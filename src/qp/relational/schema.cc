#include "qp/relational/schema.h"

namespace qp {

Result<RelationId> Schema::AddRelation(std::string name,
                                       std::vector<std::string> attrs) {
  if (name.empty()) return Status::InvalidArgument("empty relation name");
  if (attrs.empty()) {
    return Status::InvalidArgument("relation '" + name +
                                   "' must have at least one attribute");
  }
  if (by_name_.count(name) > 0) {
    return Status::AlreadyExists("relation '" + name + "' already defined");
  }
  for (size_t i = 0; i < attrs.size(); ++i) {
    for (size_t j = i + 1; j < attrs.size(); ++j) {
      if (attrs[i] == attrs[j]) {
        return Status::InvalidArgument("relation '" + name +
                                       "' has duplicate attribute '" +
                                       attrs[i] + "'");
      }
    }
  }
  RelationId id = static_cast<RelationId>(relations_.size());
  by_name_.emplace(name, id);
  relations_.push_back(Relation{std::move(name), std::move(attrs)});
  return id;
}

Result<RelationId> Schema::FindRelation(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) {
    return Status::NotFound("unknown relation '" + std::string(name) + "'");
  }
  return it->second;
}

bool Schema::HasRelation(std::string_view name) const {
  return by_name_.count(std::string(name)) > 0;
}

Result<int> Schema::FindAttr(RelationId rel, std::string_view name) const {
  const auto& attrs = relations_[rel].attrs;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (attrs[i] == name) return static_cast<int>(i);
  }
  return Status::NotFound("relation '" + relations_[rel].name +
                          "' has no attribute '" + std::string(name) + "'");
}

std::string Schema::AttrToString(AttrRef attr) const {
  return relations_[attr.rel].name + "." +
         relations_[attr.rel].attrs[attr.pos];
}

}  // namespace qp
