#include "qp/relational/catalog.h"

namespace qp {

Status Catalog::SetColumn(AttrRef attr, const std::vector<Value>& values) {
  if (attr.rel < 0 || attr.rel >= schema_.num_relations()) {
    return Status::InvalidArgument("bad relation id in SetColumn");
  }
  if (attr.pos < 0 || attr.pos >= schema_.arity(attr.rel)) {
    return Status::InvalidArgument("bad attribute position in SetColumn");
  }
  ColumnData data;
  for (const Value& v : values) {
    ValueId id = dict_.Intern(v);
    if (data.members.insert(id).second) data.values.push_back(id);
  }
  columns_[attr] = std::move(data);
  return Status::Ok();
}

Status Catalog::SetColumn(std::string_view rel, std::string_view attr,
                          const std::vector<Value>& values) {
  auto rel_id = schema_.FindRelation(rel);
  if (!rel_id.ok()) return rel_id.status();
  auto pos = schema_.FindAttr(*rel_id, attr);
  if (!pos.ok()) return pos.status();
  return SetColumn(AttrRef{*rel_id, *pos}, values);
}

const std::vector<ValueId>& Catalog::Column(AttrRef attr) const {
  static const std::vector<ValueId> kEmpty;
  auto it = columns_.find(attr);
  return it == columns_.end() ? kEmpty : it->second.values;
}

bool Catalog::InColumn(AttrRef attr, ValueId value) const {
  auto it = columns_.find(attr);
  return it != columns_.end() && it->second.members.count(value) > 0;
}

bool Catalog::AllColumnsSet() const {
  for (RelationId r = 0; r < schema_.num_relations(); ++r) {
    for (int p = 0; p < schema_.arity(r); ++p) {
      if (!HasColumn(AttrRef{r, p})) return false;
    }
  }
  return true;
}

}  // namespace qp
