#ifndef QP_RELATIONAL_SCHEMA_H_
#define QP_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "qp/util/hash.h"
#include "qp/util/result.h"
#include "qp/util/status.h"

namespace qp {

/// Index of a relation within a `Schema`.
using RelationId = int32_t;

/// A (relation, attribute-position) pair, e.g. R.X in the paper.
struct AttrRef {
  RelationId rel = -1;
  int pos = -1;

  bool operator==(const AttrRef& other) const {
    return rel == other.rel && pos == other.pos;
  }
  bool operator<(const AttrRef& other) const {
    if (rel != other.rel) return rel < other.rel;
    return pos < other.pos;
  }
};

struct AttrRefHasher {
  size_t operator()(const AttrRef& a) const {
    return HashCombine(static_cast<size_t>(a.rel),
                       static_cast<size_t>(a.pos));
  }
};

/// A fixed relational schema R = (R1, ..., Rk): relation names with named
/// attributes. Immutable once relations are added; shared by catalog,
/// instances and queries.
class Schema {
 public:
  /// Adds a relation. Fails if the name already exists or `attrs` is empty.
  Result<RelationId> AddRelation(std::string name,
                                 std::vector<std::string> attrs);

  Result<RelationId> FindRelation(std::string_view name) const;
  bool HasRelation(std::string_view name) const;

  int num_relations() const { return static_cast<int>(relations_.size()); }
  const std::string& relation_name(RelationId rel) const {
    return relations_[rel].name;
  }
  int arity(RelationId rel) const {
    return static_cast<int>(relations_[rel].attrs.size());
  }
  const std::string& attr_name(AttrRef attr) const {
    return relations_[attr.rel].attrs[attr.pos];
  }

  /// Position of attribute `name` in relation `rel`, or NotFound.
  Result<int> FindAttr(RelationId rel, std::string_view name) const;

  /// "R.X" display form.
  std::string AttrToString(AttrRef attr) const;

 private:
  struct Relation {
    std::string name;
    std::vector<std::string> attrs;
  };
  std::vector<Relation> relations_;
  std::unordered_map<std::string, RelationId> by_name_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_SCHEMA_H_
