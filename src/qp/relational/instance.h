#ifndef QP_RELATIONAL_INSTANCE_H_
#define QP_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "qp/relational/catalog.h"
#include "qp/relational/value.h"
#include "qp/util/hash.h"
#include "qp/util/result.h"

namespace qp {

/// A tuple of dictionary-encoded values.
using Tuple = std::vector<ValueId>;

struct TupleHasher {
  size_t operator()(const Tuple& t) const { return HashRange(t); }
};

/// Hash set of tuples of one relation.
using TupleSet = std::unordered_set<Tuple, TupleHasher>;

/// A database instance D over a catalog's schema. Enforces the inclusion
/// constraint R^D.X ⊆ Col R.X for attributes with a declared column.
/// Copyable (the determinacy check builds the Dmin/Dmax worlds as copies).
class Instance {
 public:
  explicit Instance(const Catalog* catalog);

  const Catalog& catalog() const { return *catalog_; }

  /// Inserts a tuple. Returns true if newly inserted, false if present.
  /// Fails on arity mismatch or column-constraint violation.
  Result<bool> Insert(RelationId rel, Tuple tuple);

  /// Convenience: interns `values` and inserts into relation `rel`.
  Result<bool> Insert(std::string_view rel, const std::vector<Value>& values);

  /// Checks every failure mode of Insert(rel, values) — unknown relation,
  /// unknown value, arity mismatch, column-constraint violation — without
  /// mutating anything. Lets batch writers validate a whole update before
  /// committing any row of it (all-or-nothing semantics).
  Status ValidateInsert(std::string_view rel,
                        const std::vector<Value>& values) const;

  /// Removes a tuple; returns true if it was present.
  bool Erase(RelationId rel, const Tuple& tuple);

  bool Contains(RelationId rel, const Tuple& tuple) const;

  const TupleSet& Relation(RelationId rel) const { return relations_[rel]; }

  size_t NumTuples(RelationId rel) const { return relations_[rel].size(); }
  size_t TotalTuples() const;

  /// Monotonic mutation counter of one relation: bumped by every
  /// successful Insert or Erase that changes the relation's contents.
  /// Quote caches record the generations a price was computed against and
  /// treat a mismatch as invalidation, so mutating one relation only
  /// invalidates quotes whose query reads it.
  uint64_t generation(RelationId rel) const {
    return static_cast<size_t>(rel) < generations_.size()
               ? generations_[rel]
               : 0;
  }

  /// True if every tuple of *this is also in `other` (D1 ⊆ D2 in the
  /// paper's dynamic-pricing sense). Instances must share the catalog.
  bool IsSubsetOf(const Instance& other) const;

  bool operator==(const Instance& other) const {
    return relations_ == other.relations_;
  }

 private:
  const Catalog* catalog_;
  std::vector<TupleSet> relations_;
  std::vector<uint64_t> generations_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_INSTANCE_H_
