#ifndef QP_RELATIONAL_CATALOG_H_
#define QP_RELATIONAL_CATALOG_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "qp/relational/schema.h"
#include "qp/relational/value.h"
#include "qp/util/result.h"

namespace qp {

/// The seller's data dictionary: a schema, a value dictionary, and the
/// *columns* of Section 3 of the paper. A column Col R.X is the finite set
/// of values an attribute may take; it is known to both seller and buyer,
/// is part of the input to the pricing algorithms, and bounds the database
/// through the inclusion constraint R^D.X ⊆ Col R.X. Columns stay fixed
/// under database updates.
class Catalog {
 public:
  Catalog() = default;

  /// Adds a relation to the schema.
  Result<RelationId> AddRelation(std::string name,
                                 std::vector<std::string> attrs) {
    return schema_.AddRelation(std::move(name), std::move(attrs));
  }

  const Schema& schema() const { return schema_; }
  Dictionary& dict() { return dict_; }
  const Dictionary& dict() const { return dict_; }

  /// Sets the column of `attr` to `values` (interning them). Replaces any
  /// previous column. Duplicate values are collapsed.
  Status SetColumn(AttrRef attr, const std::vector<Value>& values);

  /// Convenience overload resolving relation and attribute by name.
  Status SetColumn(std::string_view rel, std::string_view attr,
                   const std::vector<Value>& values);

  bool HasColumn(AttrRef attr) const { return columns_.count(attr) > 0; }

  /// The column's values in insertion order. Requires HasColumn(attr).
  const std::vector<ValueId>& Column(AttrRef attr) const;

  bool InColumn(AttrRef attr, ValueId value) const;

  /// True if every attribute of every relation has a column. The PTIME
  /// pricing algorithms require this.
  bool AllColumnsSet() const;

  /// Interns a value (columns are unaffected).
  ValueId Intern(const Value& v) { return dict_.Intern(v); }

 private:
  struct ColumnData {
    std::vector<ValueId> values;
    std::unordered_set<ValueId> members;
  };

  Schema schema_;
  Dictionary dict_;
  std::unordered_map<AttrRef, ColumnData, AttrRefHasher> columns_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_CATALOG_H_
