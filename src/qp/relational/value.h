#ifndef QP_RELATIONAL_VALUE_H_
#define QP_RELATIONAL_VALUE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

namespace qp {

/// A database value: a 64-bit integer or a string. Values are
/// dictionary-encoded by `Dictionary` into dense `ValueId`s; all algorithms
/// operate on ids and only decode for display.
class Value {
 public:
  /// Default-constructed value is the integer 0.
  Value() : data_(int64_t{0}) {}

  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string s) { return Value(std::move(s)); }

  bool is_int() const { return std::holds_alternative<int64_t>(data_); }
  bool is_str() const { return !is_int(); }
  int64_t as_int() const { return std::get<int64_t>(data_); }
  const std::string& as_str() const { return std::get<std::string>(data_); }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  /// Total order: integers before strings, then by value. Used by
  /// interpreted comparison predicates and for deterministic output.
  bool operator<(const Value& other) const;

  /// Display form: `42` or `'abc'`.
  std::string ToString() const;

  size_t Hash() const;

 private:
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(std::string s) : data_(std::move(s)) {}

  std::variant<int64_t, std::string> data_;
};

struct ValueHasher {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Dense id of an interned value. Ids are assigned in interning order and
/// are only meaningful relative to one `Dictionary`.
using ValueId = uint32_t;

/// Interns `Value`s into dense `ValueId`s (append-only).
class Dictionary {
 public:
  Dictionary() = default;
  Dictionary(const Dictionary&) = default;
  Dictionary& operator=(const Dictionary&) = default;

  /// Returns the id for `v`, interning it if new.
  ValueId Intern(const Value& v);

  /// Returns the id for `v` if already interned.
  std::optional<ValueId> Find(const Value& v) const;

  /// Decodes an id. `id` must have been produced by this dictionary.
  const Value& Get(ValueId id) const { return values_[id]; }

  size_t size() const { return values_.size(); }

 private:
  std::vector<Value> values_;
  std::unordered_map<Value, ValueId, ValueHasher> index_;
};

}  // namespace qp

#endif  // QP_RELATIONAL_VALUE_H_
