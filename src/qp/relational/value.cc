#include "qp/relational/value.h"

#include <functional>

namespace qp {

bool Value::operator<(const Value& other) const {
  if (is_int() != other.is_int()) return is_int();
  if (is_int()) return as_int() < other.as_int();
  return as_str() < other.as_str();
}

std::string Value::ToString() const {
  if (is_int()) return std::to_string(as_int());
  return "'" + as_str() + "'";
}

size_t Value::Hash() const {
  if (is_int()) return std::hash<int64_t>{}(as_int()) * 3u + 1u;
  return std::hash<std::string>{}(as_str()) * 3u + 2u;
}

ValueId Dictionary::Intern(const Value& v) {
  auto it = index_.find(v);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(values_.size());
  values_.push_back(v);
  index_.emplace(v, id);
  return id;
}

std::optional<ValueId> Dictionary::Find(const Value& v) const {
  auto it = index_.find(v);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

}  // namespace qp
