file(REMOVE_RECURSE
  "CMakeFiles/dynamic_market.dir/dynamic_market.cpp.o"
  "CMakeFiles/dynamic_market.dir/dynamic_market.cpp.o.d"
  "dynamic_market"
  "dynamic_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
