file(REMOVE_RECURSE
  "CMakeFiles/mlb_api.dir/mlb_api.cpp.o"
  "CMakeFiles/mlb_api.dir/mlb_api.cpp.o.d"
  "mlb_api"
  "mlb_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mlb_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
