# Empty compiler generated dependencies file for mlb_api.
# This may be replaced when dependencies are built.
