file(REMOVE_RECURSE
  "CMakeFiles/business_market.dir/business_market.cpp.o"
  "CMakeFiles/business_market.dir/business_market.cpp.o.d"
  "business_market"
  "business_market.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/business_market.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
