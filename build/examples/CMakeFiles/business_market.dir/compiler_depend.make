# Empty compiler generated dependencies file for business_market.
# This may be replaced when dependencies are built.
