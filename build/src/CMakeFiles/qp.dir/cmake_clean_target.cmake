file(REMOVE_RECURSE
  "libqp.a"
)
