
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/qp/determinacy/selection_determinacy.cc" "src/CMakeFiles/qp.dir/qp/determinacy/selection_determinacy.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/determinacy/selection_determinacy.cc.o.d"
  "/root/repo/src/qp/determinacy/world_enumeration.cc" "src/CMakeFiles/qp.dir/qp/determinacy/world_enumeration.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/determinacy/world_enumeration.cc.o.d"
  "/root/repo/src/qp/eval/evaluator.cc" "src/CMakeFiles/qp.dir/qp/eval/evaluator.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/eval/evaluator.cc.o.d"
  "/root/repo/src/qp/flow/max_flow.cc" "src/CMakeFiles/qp.dir/qp/flow/max_flow.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/flow/max_flow.cc.o.d"
  "/root/repo/src/qp/market/catalog_io.cc" "src/CMakeFiles/qp.dir/qp/market/catalog_io.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/market/catalog_io.cc.o.d"
  "/root/repo/src/qp/market/delivery.cc" "src/CMakeFiles/qp.dir/qp/market/delivery.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/market/delivery.cc.o.d"
  "/root/repo/src/qp/market/marketplace.cc" "src/CMakeFiles/qp.dir/qp/market/marketplace.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/market/marketplace.cc.o.d"
  "/root/repo/src/qp/market/seller.cc" "src/CMakeFiles/qp.dir/qp/market/seller.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/market/seller.cc.o.d"
  "/root/repo/src/qp/pricing/arbitrage_pricer.cc" "src/CMakeFiles/qp.dir/qp/pricing/arbitrage_pricer.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/arbitrage_pricer.cc.o.d"
  "/root/repo/src/qp/pricing/boolean_pricer.cc" "src/CMakeFiles/qp.dir/qp/pricing/boolean_pricer.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/boolean_pricer.cc.o.d"
  "/root/repo/src/qp/pricing/bundle_solver.cc" "src/CMakeFiles/qp.dir/qp/pricing/bundle_solver.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/bundle_solver.cc.o.d"
  "/root/repo/src/qp/pricing/chain_solver.cc" "src/CMakeFiles/qp.dir/qp/pricing/chain_solver.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/chain_solver.cc.o.d"
  "/root/repo/src/qp/pricing/classifier.cc" "src/CMakeFiles/qp.dir/qp/pricing/classifier.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/classifier.cc.o.d"
  "/root/repo/src/qp/pricing/clause_solver.cc" "src/CMakeFiles/qp.dir/qp/pricing/clause_solver.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/clause_solver.cc.o.d"
  "/root/repo/src/qp/pricing/consistency.cc" "src/CMakeFiles/qp.dir/qp/pricing/consistency.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/consistency.cc.o.d"
  "/root/repo/src/qp/pricing/dynamic_pricer.cc" "src/CMakeFiles/qp.dir/qp/pricing/dynamic_pricer.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/dynamic_pricer.cc.o.d"
  "/root/repo/src/qp/pricing/engine.cc" "src/CMakeFiles/qp.dir/qp/pricing/engine.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/engine.cc.o.d"
  "/root/repo/src/qp/pricing/exhaustive_solver.cc" "src/CMakeFiles/qp.dir/qp/pricing/exhaustive_solver.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/exhaustive_solver.cc.o.d"
  "/root/repo/src/qp/pricing/gchq_solver.cc" "src/CMakeFiles/qp.dir/qp/pricing/gchq_solver.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/gchq_solver.cc.o.d"
  "/root/repo/src/qp/pricing/hitting_set.cc" "src/CMakeFiles/qp.dir/qp/pricing/hitting_set.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/hitting_set.cc.o.d"
  "/root/repo/src/qp/pricing/money.cc" "src/CMakeFiles/qp.dir/qp/pricing/money.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/money.cc.o.d"
  "/root/repo/src/qp/pricing/pair_views.cc" "src/CMakeFiles/qp.dir/qp/pricing/pair_views.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/pair_views.cc.o.d"
  "/root/repo/src/qp/pricing/price_advisor.cc" "src/CMakeFiles/qp.dir/qp/pricing/price_advisor.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/price_advisor.cc.o.d"
  "/root/repo/src/qp/pricing/price_points.cc" "src/CMakeFiles/qp.dir/qp/pricing/price_points.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/price_points.cc.o.d"
  "/root/repo/src/qp/pricing/work_problem.cc" "src/CMakeFiles/qp.dir/qp/pricing/work_problem.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/pricing/work_problem.cc.o.d"
  "/root/repo/src/qp/query/analysis.cc" "src/CMakeFiles/qp.dir/qp/query/analysis.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/query/analysis.cc.o.d"
  "/root/repo/src/qp/query/parser.cc" "src/CMakeFiles/qp.dir/qp/query/parser.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/query/parser.cc.o.d"
  "/root/repo/src/qp/query/query.cc" "src/CMakeFiles/qp.dir/qp/query/query.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/query/query.cc.o.d"
  "/root/repo/src/qp/relational/catalog.cc" "src/CMakeFiles/qp.dir/qp/relational/catalog.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/relational/catalog.cc.o.d"
  "/root/repo/src/qp/relational/instance.cc" "src/CMakeFiles/qp.dir/qp/relational/instance.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/relational/instance.cc.o.d"
  "/root/repo/src/qp/relational/schema.cc" "src/CMakeFiles/qp.dir/qp/relational/schema.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/relational/schema.cc.o.d"
  "/root/repo/src/qp/relational/value.cc" "src/CMakeFiles/qp.dir/qp/relational/value.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/relational/value.cc.o.d"
  "/root/repo/src/qp/util/random.cc" "src/CMakeFiles/qp.dir/qp/util/random.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/util/random.cc.o.d"
  "/root/repo/src/qp/util/status.cc" "src/CMakeFiles/qp.dir/qp/util/status.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/util/status.cc.o.d"
  "/root/repo/src/qp/util/strings.cc" "src/CMakeFiles/qp.dir/qp/util/strings.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/util/strings.cc.o.d"
  "/root/repo/src/qp/workload/business.cc" "src/CMakeFiles/qp.dir/qp/workload/business.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/workload/business.cc.o.d"
  "/root/repo/src/qp/workload/join_workloads.cc" "src/CMakeFiles/qp.dir/qp/workload/join_workloads.cc.o" "gcc" "src/CMakeFiles/qp.dir/qp/workload/join_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
