# Empty dependencies file for qp.
# This may be replaced when dependencies are built.
