file(REMOVE_RECURSE
  "CMakeFiles/bench_hanging_vars.dir/bench_hanging_vars.cc.o"
  "CMakeFiles/bench_hanging_vars.dir/bench_hanging_vars.cc.o.d"
  "bench_hanging_vars"
  "bench_hanging_vars.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hanging_vars.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
