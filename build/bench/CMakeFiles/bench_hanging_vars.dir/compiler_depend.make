# Empty compiler generated dependencies file for bench_hanging_vars.
# This may be replaced when dependencies are built.
