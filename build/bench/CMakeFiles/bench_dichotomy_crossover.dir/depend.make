# Empty dependencies file for bench_dichotomy_crossover.
# This may be replaced when dependencies are built.
