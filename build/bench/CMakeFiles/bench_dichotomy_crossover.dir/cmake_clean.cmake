file(REMOVE_RECURSE
  "CMakeFiles/bench_dichotomy_crossover.dir/bench_dichotomy_crossover.cc.o"
  "CMakeFiles/bench_dichotomy_crossover.dir/bench_dichotomy_crossover.cc.o.d"
  "bench_dichotomy_crossover"
  "bench_dichotomy_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dichotomy_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
