# Empty compiler generated dependencies file for bench_cycle_pricing.
# This may be replaced when dependencies are built.
