file(REMOVE_RECURSE
  "CMakeFiles/bench_cycle_pricing.dir/bench_cycle_pricing.cc.o"
  "CMakeFiles/bench_cycle_pricing.dir/bench_cycle_pricing.cc.o.d"
  "bench_cycle_pricing"
  "bench_cycle_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cycle_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
