# Empty dependencies file for bench_determinacy.
# This may be replaced when dependencies are built.
