# Empty compiler generated dependencies file for bench_bundle_pricing.
# This may be replaced when dependencies are built.
