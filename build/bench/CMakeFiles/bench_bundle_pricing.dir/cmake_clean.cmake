file(REMOVE_RECURSE
  "CMakeFiles/bench_bundle_pricing.dir/bench_bundle_pricing.cc.o"
  "CMakeFiles/bench_bundle_pricing.dir/bench_bundle_pricing.cc.o.d"
  "bench_bundle_pricing"
  "bench_bundle_pricing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_bundle_pricing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
