file(REMOVE_RECURSE
  "CMakeFiles/bench_nphard_growth.dir/bench_nphard_growth.cc.o"
  "CMakeFiles/bench_nphard_growth.dir/bench_nphard_growth.cc.o.d"
  "bench_nphard_growth"
  "bench_nphard_growth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nphard_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
