# Empty compiler generated dependencies file for bench_nphard_growth.
# This may be replaced when dependencies are built.
