file(REMOVE_RECURSE
  "CMakeFiles/qpricer_cli.dir/qpricer_cli.cc.o"
  "CMakeFiles/qpricer_cli.dir/qpricer_cli.cc.o.d"
  "qpricer_cli"
  "qpricer_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qpricer_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
