# Empty compiler generated dependencies file for qpricer_cli.
# This may be replaced when dependencies are built.
