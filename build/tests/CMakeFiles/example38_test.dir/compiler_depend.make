# Empty compiler generated dependencies file for example38_test.
# This may be replaced when dependencies are built.
