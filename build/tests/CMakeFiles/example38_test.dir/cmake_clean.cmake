file(REMOVE_RECURSE
  "CMakeFiles/example38_test.dir/example38_test.cc.o"
  "CMakeFiles/example38_test.dir/example38_test.cc.o.d"
  "example38_test"
  "example38_test.pdb"
  "example38_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example38_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
