# Empty compiler generated dependencies file for union_query_test.
# This may be replaced when dependencies are built.
