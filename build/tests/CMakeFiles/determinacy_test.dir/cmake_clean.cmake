file(REMOVE_RECURSE
  "CMakeFiles/determinacy_test.dir/determinacy_test.cc.o"
  "CMakeFiles/determinacy_test.dir/determinacy_test.cc.o.d"
  "determinacy_test"
  "determinacy_test.pdb"
  "determinacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/determinacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
