file(REMOVE_RECURSE
  "CMakeFiles/price_advisor_test.dir/price_advisor_test.cc.o"
  "CMakeFiles/price_advisor_test.dir/price_advisor_test.cc.o.d"
  "price_advisor_test"
  "price_advisor_test.pdb"
  "price_advisor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/price_advisor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
