# Empty dependencies file for price_advisor_test.
# This may be replaced when dependencies are built.
