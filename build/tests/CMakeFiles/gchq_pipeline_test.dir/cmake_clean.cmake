file(REMOVE_RECURSE
  "CMakeFiles/gchq_pipeline_test.dir/gchq_pipeline_test.cc.o"
  "CMakeFiles/gchq_pipeline_test.dir/gchq_pipeline_test.cc.o.d"
  "gchq_pipeline_test"
  "gchq_pipeline_test.pdb"
  "gchq_pipeline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gchq_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
