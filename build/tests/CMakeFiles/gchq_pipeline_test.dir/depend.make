# Empty dependencies file for gchq_pipeline_test.
# This may be replaced when dependencies are built.
