file(REMOVE_RECURSE
  "CMakeFiles/pair_views_test.dir/pair_views_test.cc.o"
  "CMakeFiles/pair_views_test.dir/pair_views_test.cc.o.d"
  "pair_views_test"
  "pair_views_test.pdb"
  "pair_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pair_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
