# Empty dependencies file for pair_views_test.
# This may be replaced when dependencies are built.
