# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/relational_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/eval_test[1]_include.cmake")
include("/root/repo/build/tests/flow_test[1]_include.cmake")
include("/root/repo/build/tests/hitting_set_test[1]_include.cmake")
include("/root/repo/build/tests/determinacy_test[1]_include.cmake")
include("/root/repo/build/tests/consistency_test[1]_include.cmake")
include("/root/repo/build/tests/classifier_test[1]_include.cmake")
include("/root/repo/build/tests/example38_test[1]_include.cmake")
include("/root/repo/build/tests/equivalence_test[1]_include.cmake")
include("/root/repo/build/tests/gchq_pipeline_test[1]_include.cmake")
include("/root/repo/build/tests/engine_test[1]_include.cmake")
include("/root/repo/build/tests/properties_test[1]_include.cmake")
include("/root/repo/build/tests/dynamic_test[1]_include.cmake")
include("/root/repo/build/tests/bundle_test[1]_include.cmake")
include("/root/repo/build/tests/market_test[1]_include.cmake")
include("/root/repo/build/tests/pair_views_test[1]_include.cmake")
include("/root/repo/build/tests/union_query_test[1]_include.cmake")
include("/root/repo/build/tests/catalog_io_test[1]_include.cmake")
include("/root/repo/build/tests/delivery_test[1]_include.cmake")
include("/root/repo/build/tests/price_advisor_test[1]_include.cmake")
include("/root/repo/build/tests/limits_test[1]_include.cmake")
