// Dichotomy classification tests (Theorem 3.16): the paper's example GChQ
// queries Q1-Q3, the NP-complete queries H1-H4 of Theorem 3.5, cycle
// queries, boolean and disconnected shapes.

#include "gtest/gtest.h"
#include "qp/pricing/classifier.h"
#include "qp/query/analysis.h"
#include "qp/query/parser.h"
#include "test_fixtures.h"

namespace qp {
namespace {

/// Schema rich enough for all the shapes in this file.
Catalog MakeWideCatalog() {
  Catalog catalog;
  EXPECT_TRUE(catalog.AddRelation("R1", {"X", "Y"}).ok());
  EXPECT_TRUE(catalog.AddRelation("S1", {"X", "Y"}).ok());
  EXPECT_TRUE(catalog.AddRelation("T1", {"X"}).ok());
  EXPECT_TRUE(catalog.AddRelation("U1", {"X"}).ok());
  EXPECT_TRUE(catalog.AddRelation("V1", {"X", "Y"}).ok());
  EXPECT_TRUE(catalog.AddRelation("W4", {"A", "B", "C", "D"}).ok());
  EXPECT_TRUE(catalog.AddRelation("R3", {"X", "Y", "Z"}).ok());
  EXPECT_TRUE(catalog.AddRelation("P2", {"X", "Y"}).ok());
  EXPECT_TRUE(catalog.AddRelation("P3", {"X", "Y"}).ok());
  return catalog;
}

QueryClassification Classify(const Catalog& catalog, const char* text) {
  auto q = ParseQuery(catalog.schema(), text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return ClassifyConnectedQuery(*q);
}

TEST(Classifier, PaperGChQExamples) {
  Catalog c = MakeWideCatalog();
  // Q1(x,y) = R(x), S(x,y), T(y)
  EXPECT_EQ(Classify(c, "Q1(x,y) :- T1(x), S1(x,y), U1(y)").cls,
            PricingClass::kGChQ);
  // Q2: path with unary predicates in the middle.
  EXPECT_EQ(Classify(c, "Q2(x,y,z,w) :- R1(x,y), S1(y,z), T1(z), U1(z), "
                        "V1(z,w)")
                .cls,
            PricingClass::kGChQ);
  // Q3(x,y,z,u,v,w) = R(x,y), S(y,u,v,z), T(z,w), U(w) — the 4-ary atom
  // S(y,u,v,z) has two hanging variables.
  EXPECT_EQ(Classify(c, "Q3(x,y,z,u,v,w) :- R1(x,y), W4(y,u,v,z), "
                        "V1(z,w), U1(w)")
                .cls,
            PricingClass::kGChQ);
  // Pure path join.
  EXPECT_EQ(Classify(c, "P(x,y,z,u) :- R1(x,y), S1(y,z), V1(z,u)").cls,
            PricingClass::kGChQ);
  // Star join: R(x,y), S(x,z), T(x), with hanging y, z.
  EXPECT_EQ(Classify(c, "St(x,y,z) :- R1(x,y), S1(x,z), T1(x)").cls,
            PricingClass::kGChQ);
}

TEST(Classifier, HardQueriesOfTheorem35) {
  Catalog c = MakeWideCatalog();
  // H1(x,y,z) = R(x,y,z), S(x), T(y), U(z).
  QueryClassification h1 =
      Classify(c, "H1(x,y,z) :- R3(x,y,z), T1(x), U1(y), T1(z)");
  // Note: T1 appears twice here, making it a self-join; use distinct
  // relations for the real H1.
  EXPECT_EQ(h1.cls, PricingClass::kOutsideDichotomy);

  QueryClassification h1_clean =
      Classify(c, "H1(x,y,z) :- R3(x,y,z), T1(x), U1(y), P2(z,z)");
  // P2(z,z) normalizes to a unary atom on z — still a tripod on R3.
  EXPECT_EQ(h1_clean.cls, PricingClass::kNPHardFull);
  EXPECT_FALSE(h1_clean.ptime);

  // H2(x,y) = R(x), S(x,y), T(x,y).
  QueryClassification h2 = Classify(c, "H2(x,y) :- T1(x), P2(x,y), P3(x,y)");
  EXPECT_EQ(h2.cls, PricingClass::kNPHardFull);

  // H3(x,y) = R(x), S(x,y), R(y): self-join.
  QueryClassification h3 = Classify(c, "H3(x,y) :- T1(x), P2(x,y), T1(y)");
  EXPECT_EQ(h3.cls, PricingClass::kOutsideDichotomy);

  // H4(x) = R(x,y): a projection — neither full nor boolean.
  QueryClassification h4 = Classify(c, "H4(x) :- P2(x,y)");
  EXPECT_EQ(h4.cls, PricingClass::kNonFull);
  EXPECT_FALSE(h4.ptime);
}

TEST(Classifier, CycleQueries) {
  Catalog c = MakeWideCatalog();
  // C2: two binary atoms sharing both variables.
  QueryClassification c2 = Classify(c, "C2(x,y) :- P2(x,y), P3(y,x)");
  EXPECT_EQ(c2.cls, PricingClass::kCycle);
  EXPECT_TRUE(c2.ptime);
  // C3.
  QueryClassification c3 =
      Classify(c, "C3(x,y,z) :- R1(x,y), S1(y,z), V1(z,x)");
  EXPECT_EQ(c3.cls, PricingClass::kCycle);
  // C2 with an extra unary atom = H2 shape: NP-complete.
  QueryClassification broken =
      Classify(c, "B(x,y) :- P2(x,y), P3(y,x), T1(x)");
  EXPECT_EQ(broken.cls, PricingClass::kNPHardFull);
}

TEST(Classifier, BooleanQueriesInheritFullVersionClass) {
  Catalog c = MakeWideCatalog();
  QueryClassification chain = Classify(c, "B() :- T1(x), S1(x,y), U1(y)");
  EXPECT_EQ(chain.cls, PricingClass::kBoolean);
  EXPECT_TRUE(chain.ptime);

  QueryClassification hard =
      Classify(c, "B() :- T1(x), P2(x,y), P3(x,y)");
  EXPECT_EQ(hard.cls, PricingClass::kBoolean);
  EXPECT_FALSE(hard.ptime);
}

TEST(Classifier, NormalizationEnablesGChQ) {
  Catalog c = MakeWideCatalog();
  // Constants and repeated variables disappear before the shape test.
  QueryClassification q =
      Classify(c, "N(x,y) :- T1(x), S1(x,y), P2(y,'k')");
  EXPECT_EQ(q.cls, PricingClass::kGChQ);

  QueryClassification rep = Classify(c, "M(x,y) :- R3(x,x,y), T1(y)");
  EXPECT_EQ(rep.cls, PricingClass::kGChQ);
}

TEST(Classifier, GChQOrderRejectsNonChains) {
  Catalog c = MakeWideCatalog();
  auto h2 = ParseQuery(c.schema(), "H2(x,y) :- T1(x), P2(x,y), P3(x,y)");
  ASSERT_TRUE(h2.ok());
  EXPECT_FALSE(FindGChQOrder(*h2).has_value());

  auto c3 = ParseQuery(c.schema(), "C3(x,y,z) :- R1(x,y), S1(y,z), V1(z,x)");
  ASSERT_TRUE(c3.ok());
  EXPECT_FALSE(FindGChQOrder(*c3).has_value());
  EXPECT_TRUE(FindCycleOrder(*c3).has_value());
}

TEST(Classifier, StructurallyNormalizePreservesAtomCount) {
  Catalog c = MakeWideCatalog();
  auto q = ParseQuery(c.schema(),
                      "Q(x,y,z,u,v,w) :- R1(x,y), W4(y,u,v,z), V1(z,w), "
                      "U1(w)");
  ASSERT_TRUE(q.ok());
  ConjunctiveQuery norm = StructurallyNormalize(*q);
  EXPECT_EQ(norm.atoms().size(), q->atoms().size());
  // Hanging u, v, x, w... x and w are hanging (single occurrence); u, v
  // hang off W4. After normalization W4 keeps only y and z.
  EXPECT_EQ(norm.atoms()[1].args.size(), 2u);
}

}  // namespace
}  // namespace qp
