// Price-repair advisor tests: the fixpoint of Proposition 3.2.

#include "gtest/gtest.h"
#include "qp/market/seller.h"
#include "qp/pricing/price_advisor.h"
#include "qp/workload/business.h"
#include "test_fixtures.h"

namespace qp {
namespace {

TEST(PriceAdvisor, ConsistentSetsAreUntouched) {
  Example38 e = Example38::Make();
  RepairResult repaired = RepairConsistency(*e.catalog, e.prices);
  EXPECT_TRUE(repaired.adjustments.empty());
  EXPECT_TRUE(
      CheckSelectionConsistency(*e.catalog, repaired.repaired).consistent);
}

TEST(PriceAdvisor, LowersOverpricedViewsToTheBound) {
  Example38 e = Example38::Make();
  RelationId s = *e.catalog->schema().FindRelation("S");
  ValueId a1 = *e.catalog->dict().Find(Value::Str("a1"));
  SelectionView overpriced{AttrRef{s, 0}, a1};
  QP_ASSERT_OK(e.prices.Set(overpriced, 50));  // cover of S.Y costs 3

  RepairResult repaired = RepairConsistency(*e.catalog, e.prices);
  ASSERT_EQ(repaired.adjustments.size(), 1u);
  EXPECT_EQ(repaired.adjustments[0].old_price, 50);
  EXPECT_EQ(repaired.adjustments[0].new_price, 3);
  EXPECT_TRUE(
      CheckSelectionConsistency(*e.catalog, repaired.repaired).consistent);
}

TEST(PriceAdvisor, CascadingRepairsReachAFixpoint) {
  // Lowering one price can shrink a cover another price depends on:
  // R(X, Y) with ColX = {a}, ColY = {b}: the 1-value covers interlock.
  Catalog catalog;
  RelationId r = *catalog.AddRelation("R", {"X", "Y"});
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{r, 0}, {Value::Str("a")}));
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{r, 1}, {Value::Str("b")}));
  SelectionPriceSet prices;
  ValueId a = *catalog.dict().Find(Value::Str("a"));
  ValueId b = *catalog.dict().Find(Value::Str("b"));
  QP_ASSERT_OK(prices.Set(SelectionView{AttrRef{r, 0}, a}, 10));
  QP_ASSERT_OK(prices.Set(SelectionView{AttrRef{r, 1}, b}, 4));

  RepairResult repaired = RepairConsistency(catalog, prices);
  // σX=a must come down to 4 (the Y cover); then both covers cost 4 and
  // the set is consistent.
  EXPECT_EQ(repaired.repaired.Get(SelectionView{AttrRef{r, 0}, a}), 4);
  EXPECT_EQ(repaired.repaired.Get(SelectionView{AttrRef{r, 1}, b}), 4);
  EXPECT_TRUE(
      CheckSelectionConsistency(catalog, repaired.repaired).consistent);

  // Idempotent.
  RepairResult again = RepairConsistency(catalog, repaired.repaired);
  EXPECT_TRUE(again.adjustments.empty());
}

TEST(PriceAdvisor, RepairsTheSloppyBusinessMarket) {
  Seller seller("sloppy");
  BusinessMarketParams params;
  params.num_businesses = 10;
  params.business_price = Dollars(2);  // undercuts the $199 state view
  QP_ASSERT_OK(PopulateBusinessMarket(&seller, params));
  ASSERT_FALSE(
      CheckSelectionConsistency(seller.catalog(), seller.prices())
          .consistent);

  RepairResult repaired =
      RepairConsistency(seller.catalog(), seller.prices());
  EXPECT_FALSE(repaired.adjustments.empty());
  EXPECT_TRUE(
      CheckSelectionConsistency(seller.catalog(), repaired.repaired)
          .consistent);
  // Prices never increase.
  for (const PriceAdjustment& adj : repaired.adjustments) {
    EXPECT_LT(adj.new_price, adj.old_price);
  }
}

}  // namespace
}  // namespace qp
