// Engine tests: disconnected-query composition (Proposition 3.14), boolean
// pricing, classification routing, and failure modes (unsellable data).

#include "gtest/gtest.h"
#include "qp/pricing/engine.h"
#include "qp/pricing/exhaustive_solver.h"
#include "qp/query/parser.h"
#include "qp/workload/join_workloads.h"
#include "test_fixtures.h"

namespace qp {
namespace {

/// Two independent unary relations A, B with 2-value columns and unit
/// prices; used to exercise Prop 3.14.
struct TwoIslands {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  std::unique_ptr<Instance> db;
  SelectionPriceSet prices;

  TwoIslands(bool a_nonempty, bool b_nonempty) {
    auto a = catalog->AddRelation("A", {"X"});
    auto b = catalog->AddRelation("B", {"X"});
    EXPECT_TRUE(a.ok() && b.ok());
    std::vector<Value> col = {Value::Str("0"), Value::Str("1")};
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*a, 0}, col).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*b, 0}, col).ok());
    db = std::make_unique<Instance>(catalog.get());
    if (a_nonempty) {
        EXPECT_TRUE(db->Insert("A", {Value::Str("0")}).ok());
      }
    if (b_nonempty) {
        EXPECT_TRUE(db->Insert("B", {Value::Str("1")}).ok());
      }
    EXPECT_TRUE(prices.SetUniform(*catalog, "A", "X", 10).ok());
    EXPECT_TRUE(prices.SetUniform(*catalog, "B", "X", 25).ok());
  }
};

TEST(Disconnected, BothNonEmptyPricesSum) {
  TwoIslands t(true, true);
  PricingEngine engine(t.db.get(), &t.prices);
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(t.catalog->schema(), "Q(x,y) :- A(x), B(y)"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q));
  EXPECT_EQ(quote.query_class, PricingClass::kDisconnected);
  // Each unary relation costs its full cover: 2*10 + 2*25 = 70.
  EXPECT_EQ(quote.solution.price, 70);

  // Cross-check against the exhaustive baseline.
  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*t.db, t.prices, q));
  EXPECT_EQ(exact.price, quote.solution.price);
}

TEST(Disconnected, EmptyComponentGivesTheMin) {
  // A empty, B non-empty: keeping A provably empty is enough, and A is the
  // only empty component.
  TwoIslands t(false, true);
  PricingEngine engine(t.db.get(), &t.prices);
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(t.catalog->schema(), "Q(x,y) :- A(x), B(y)"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q));
  EXPECT_EQ(quote.solution.price, 20);  // full cover of A

  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*t.db, t.prices, q));
  EXPECT_EQ(exact.price, quote.solution.price);
}

TEST(Disconnected, BothEmptyTakesTheCheaperComponent) {
  TwoIslands t(false, false);
  PricingEngine engine(t.db.get(), &t.prices);
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(t.catalog->schema(), "Q(x,y) :- A(x), B(y)"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q));
  EXPECT_EQ(quote.solution.price, 20);  // cover A (20) beats cover B (50)

  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*t.db, t.prices, q));
  EXPECT_EQ(exact.price, quote.solution.price);
}

TEST(Boolean, TrueCaseBuysTheCheapestWitness) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(e.catalog->schema(), "B() :- R(x), S(x,y), T(y)"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q));
  EXPECT_EQ(quote.query_class, PricingClass::kBoolean);
  // Single witness (a1,b1): cover R(a1), S(a1,b1), T(b1) — three $1 views
  // (σS covers S(a1,b1) via either attribute).
  EXPECT_EQ(quote.solution.price, 3);

  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*e.db, e.prices, q));
  EXPECT_EQ(exact.price, 3);
}

TEST(Boolean, FalseCasePricesTheFullVersion) {
  // Make the boolean query false: query for a y that never joins.
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery boolean_q,
      ParseQuery(e.catalog->schema(), "B() :- R(x), S(x,y), T(y), y = 'b3'"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(boolean_q));
  EXPECT_EQ(quote.query_class, PricingClass::kBoolean);

  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*e.db, e.prices, boolean_q));
  EXPECT_EQ(quote.solution.price, exact.price);
}

TEST(Boolean, GroundQueryBothOutcomes) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  // R('a1') is present: cheapest cover is the single view σR.X=a1.
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery present,
      ParseQuery(e.catalog->schema(), "B() :- R('a1')"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote1, engine.Price(present));
  EXPECT_EQ(quote1.solution.price, 1);

  // R('a3') is absent: blocking it needs σR.X=a3, also price 1.
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery absent,
      ParseQuery(e.catalog->schema(), "B() :- R('a3')"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote2, engine.Price(absent));
  EXPECT_EQ(quote2.solution.price, 1);
}

TEST(Engine, UnsellableQueryReportsInfinitePrice) {
  Example38 e = Example38::Make();
  // Remove all prices on R: R can no longer be determined.
  RelationId r = *e.catalog->schema().FindRelation("R");
  for (ValueId v : e.catalog->Column(AttrRef{r, 0})) {
    e.prices.Unset(SelectionView{AttrRef{r, 0}, v});
  }
  PricingEngine engine(e.db.get(), &e.prices);
  EXPECT_FALSE(engine.SellsWholeDatabase());
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(e.query));
  EXPECT_FALSE(quote.solution.IsSellable());
}

TEST(Engine, ProjectionRouteMatchesExhaustive) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  // H4-style projection: Q(x) :- S(x,y).
  QP_ASSERT_OK_AND_ASSIGN(ConjunctiveQuery q,
                          ParseQuery(e.catalog->schema(), "Q(x) :- S(x,y)"));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q));
  EXPECT_EQ(quote.query_class, PricingClass::kNonFull);
  QP_ASSERT_OK_AND_ASSIGN(PricingSolution exact,
                          PriceByExhaustiveSearch(*e.db, e.prices, q));
  EXPECT_EQ(quote.solution.price, exact.price);
}

}  // namespace
}  // namespace qp
