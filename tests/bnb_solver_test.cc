// Differential tests for the branch-and-bound exhaustive solver (ctest
// label: selfcheck): the coverage-bitset engine must match the legacy
// instance-oracle DFS bit for bit — same Money optimum AND same chosen
// support under the canonical (price desc, view asc) tie-break — on the
// Theorem 3.5 hard queries and on randomized selection-view instances,
// at one thread and at several.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qp/pricing/exhaustive_solver.h"
#include "qp/query/parser.h"
#include "qp/util/random.h"
#include "qp/workload/join_workloads.h"
#include "test_fixtures.h"

namespace qp {
namespace {

ExhaustiveSolverOptions Reference() {
  ExhaustiveSolverOptions options;
  options.force_reference = true;
  return options;
}

ExhaustiveSolverOptions Threaded(int threads) {
  ExhaustiveSolverOptions options;
  options.threads = threads;
  return options;
}

/// Prices `query` on the reference DFS, the sequential B&B, and the
/// 4-thread B&B, and requires identical price and identical support.
void ExpectAllPathsAgree(const Workload& w, const ConjunctiveQuery& query,
                         const std::string& label) {
  auto reference = PriceByExhaustiveSearch(*w.db, w.prices, query, Reference());
  ASSERT_TRUE(reference.ok()) << label << ": " << reference.status().ToString();

  ExhaustiveSolveStats sequential_stats;
  auto sequential = PriceByExhaustiveSearch(*w.db, w.prices, query,
                                            Threaded(1), &sequential_stats);
  ASSERT_TRUE(sequential.ok()) << label << ": "
                               << sequential.status().ToString();
  auto parallel = PriceByExhaustiveSearch(*w.db, w.prices, query, Threaded(4));
  ASSERT_TRUE(parallel.ok()) << label << ": " << parallel.status().ToString();

  EXPECT_EQ(sequential->price, reference->price) << label;
  EXPECT_EQ(parallel->price, reference->price) << label;
  EXPECT_TRUE(sequential->support == reference->support)
      << label << ": B&B support diverges from the reference DFS";
  EXPECT_TRUE(parallel->support == reference->support)
      << label << ": 4-thread support diverges (quotes must be "
      << "bit-identical across thread counts)";
  EXPECT_TRUE(sequential_stats.used_coverage_oracle)
      << label << ": expected the coverage-bitset path, got the fallback";
}

TEST(BnbSolverTest, HardQueriesMatchReferenceDfs) {
  for (HardQuery hq :
       {HardQuery::kH1, HardQuery::kH2, HardQuery::kH3, HardQuery::kH4}) {
    for (int column_size : {2, 3}) {
      // H1 at column size 3 has 18 relevant views; the *reference* DFS is
      // the slow side there, so keep H1 at size 2.
      if (hq == HardQuery::kH1 && column_size == 3) continue;
      for (uint64_t seed : {11u, 12u, 13u}) {
        JoinWorkloadParams params;
        params.column_size = column_size;
        params.tuple_density = 0.5;
        params.min_price = 1;
        params.max_price = 9;
        params.seed = seed;
        QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeHardQueryWorkload(hq, params));
        ExpectAllPathsAgree(
            w, w.query,
            "h" + std::to_string(static_cast<int>(hq) + 1) + " c" +
                std::to_string(column_size) + " seed " + std::to_string(seed));
      }
    }
  }
}

TEST(BnbSolverTest, RandomInstancesMatchReferenceDfs) {
  Rng rng(20260805);
  int checked = 0;
  for (int i = 0; i < 100; ++i) {
    JoinWorkloadParams params;
    params.column_size = static_cast<int>(rng.NextInRange(2, 3));
    params.tuple_density = 0.2 + 0.6 * rng.NextDouble();
    params.priced_fraction = rng.NextBool(0.5) ? 1.0 : 0.7;
    params.min_price = 1;
    params.max_price = 9;
    params.seed = rng.Next();

    Result<Workload> w = Status::InvalidArgument("unset");
    switch (i % 5) {
      case 0:
        w = MakeChainWorkload(1, params);
        break;
      case 1:
        w = MakeStarWorkload(2, params);
        break;
      case 2:
        w = MakeHardQueryWorkload(HardQuery::kH2, params);
        break;
      case 3:
        w = MakeHardQueryWorkload(HardQuery::kH3, params);
        break;
      default:
        w = MakeHardQueryWorkload(HardQuery::kH4, params);
        break;
    }
    QP_ASSERT_OK(w.status());
    ExpectAllPathsAgree(*w, w->query, "random#" + std::to_string(i));
    ++checked;
  }
  EXPECT_EQ(checked, 100);
}

TEST(BnbSolverTest, UnionQueriesMatchReferenceDfs) {
  JoinWorkloadParams params;
  params.column_size = 3;
  params.tuple_density = 0.5;
  params.min_price = 1;
  params.max_price = 9;
  for (uint64_t seed : {31u, 32u, 33u}) {
    params.seed = seed;
    QP_ASSERT_OK_AND_ASSIGN(Workload w,
                            MakeHardQueryWorkload(HardQuery::kH4, params));
    // A UCQ over S: the x-projection together with the y-projection.
    UnionQuery u;
    u.disjuncts.push_back(w.query);
    QP_ASSERT_OK_AND_ASSIGN(
        ConjunctiveQuery other,
        ParseQuery(w.catalog->schema(), "Hy(y) :- S(x,y)"));
    u.disjuncts.push_back(std::move(other));

    auto reference =
        PriceUnionByExhaustiveSearch(*w.db, w.prices, u, Reference());
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    auto sequential =
        PriceUnionByExhaustiveSearch(*w.db, w.prices, u, Threaded(1));
    ASSERT_TRUE(sequential.ok()) << sequential.status().ToString();
    auto parallel =
        PriceUnionByExhaustiveSearch(*w.db, w.prices, u, Threaded(4));
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();

    EXPECT_EQ(sequential->price, reference->price) << "seed " << seed;
    EXPECT_EQ(parallel->price, reference->price) << "seed " << seed;
    EXPECT_TRUE(sequential->support == reference->support) << "seed " << seed;
    EXPECT_TRUE(parallel->support == reference->support) << "seed " << seed;
  }
}

TEST(BnbSolverTest, NodeLimitAbortsAcrossThreadCounts) {
  // Example 3.8 needs far more than three nodes; the abort must surface as
  // the same ResourceExhausted the reference DFS reports, sequentially and
  // under the parallel frontier scheme.
  Example38 e = Example38::Make();
  for (int threads : {1, 4}) {
    ExhaustiveSolverOptions options;
    options.threads = threads;
    options.node_limit = 3;
    auto result = PriceByExhaustiveSearch(*e.db, e.prices, e.query, options);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
        << "threads=" << threads;
    EXPECT_NE(result.status().ToString().find("node limit"), std::string::npos)
        << result.status().ToString();
  }
  // A generous limit must not trip, and must still find the known optimum.
  ExhaustiveSolverOptions roomy;
  roomy.threads = 4;
  roomy.node_limit = 1 << 20;
  QP_ASSERT_OK_AND_ASSIGN(PricingSolution solution,
                          PriceByExhaustiveSearch(*e.db, e.prices, e.query,
                                                  roomy));
  EXPECT_EQ(solution.price, 6);
}

TEST(BnbSolverTest, StatsReportSearchWork) {
  Example38 e = Example38::Make();
  ExhaustiveSolveStats stats;
  QP_ASSERT_OK_AND_ASSIGN(
      PricingSolution solution,
      PriceByExhaustiveSearch(*e.db, e.prices, e.query, Threaded(1), &stats));
  EXPECT_EQ(solution.price, 6);
  EXPECT_TRUE(stats.used_coverage_oracle);
  EXPECT_GT(stats.nodes, 0);
  EXPECT_GT(stats.oracle_evals, 0);
  EXPECT_EQ(stats.tasks, 1);

  // Forcing the reference path must yield the same quote without the
  // coverage machinery.
  ExhaustiveSolveStats reference_stats;
  QP_ASSERT_OK_AND_ASSIGN(
      PricingSolution reference,
      PriceByExhaustiveSearch(*e.db, e.prices, e.query, Reference(),
                              &reference_stats));
  EXPECT_EQ(reference.price, 6);
  EXPECT_FALSE(reference_stats.used_coverage_oracle);
  EXPECT_TRUE(reference.support == solution.support);
}

}  // namespace
}  // namespace qp
