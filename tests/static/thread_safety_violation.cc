// Deliberate thread-safety violations. This file must NOT compile under
// `clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror`;
// the ctest registration (tests/CMakeLists.txt) runs exactly that and is
// marked WILL_FAIL. If this file ever compiles cleanly, the annotation
// macros have gone inert (e.g. someone broke the __clang__ gate in
// qp/util/thread_annotations.h) and every annotation in the tree is
// silently decorative — which is precisely the regression this fixture
// exists to catch.
//
// Its compiling twin is thread_safety_clean.cc: same class, correct
// locking. Keep the two in sync.

#include "qp/util/thread_annotations.h"

namespace {

class Counter {
 public:
  // Violation 1: writes counter_ without holding mu_.
  void IncrementUnlocked() { ++counter_; }

  // Violation 2: reads counter_ without holding mu_.
  int GetUnlocked() const { return counter_; }

  // Violation 3: claims to need mu_ but callers below don't hold it.
  void IncrementLocked() QP_REQUIRES(mu_) { ++counter_; }
  void CallWithoutLock() { IncrementLocked(); }

  // Violation 4: locks and never unlocks on one path.
  void LeakLock(bool flag) {
    mu_.Lock();
    if (flag) return;  // mu_ still held
    mu_.Unlock();
  }

 private:
  mutable qp::Mutex mu_;
  int counter_ QP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.IncrementUnlocked();
  c.CallWithoutLock();
  c.LeakLock(true);
  return c.GetUnlocked();
}
