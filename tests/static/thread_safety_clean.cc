// The compiling twin of thread_safety_violation.cc: the same class with
// the locking done right. Must compile cleanly under BOTH
//   clang++ -fsyntax-only -Wthread-safety -Wthread-safety-beta -Werror
// and plain GCC (where the annotations expand to nothing) — proving the
// annotation vocabulary itself introduces no false positives and costs
// nothing off-Clang.

#include "qp/util/thread_annotations.h"

namespace {

class Counter {
 public:
  void Increment() QP_EXCLUDES(mu_) {
    qp::MutexLock lock(&mu_);
    ++counter_;
  }

  int Get() const QP_EXCLUDES(mu_) {
    qp::MutexLock lock(&mu_);
    return counter_;
  }

  void IncrementLocked() QP_REQUIRES(mu_) { ++counter_; }

  void CallWithLock() QP_EXCLUDES(mu_) {
    qp::MutexLock lock(&mu_);
    IncrementLocked();
  }

  void BalancedManualLock(bool flag) QP_EXCLUDES(mu_) {
    mu_.Lock();
    if (flag) {
      mu_.Unlock();
      return;
    }
    ++counter_;
    mu_.Unlock();
  }

  // CondVar wait contract: Wait() requires the mutex, reacquires before
  // returning, so the predicate re-check is analyzed as guarded.
  void WaitForPositive() QP_EXCLUDES(mu_) {
    qp::MutexLock lock(&mu_);
    while (counter_ <= 0) cv_.Wait(&mu_);
  }

  void Signal() QP_EXCLUDES(mu_) {
    {
      qp::MutexLock lock(&mu_);
      ++counter_;
    }
    cv_.NotifyOne();
  }

 private:
  mutable qp::Mutex mu_;
  qp::CondVar cv_;
  int counter_ QP_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Increment();
  c.CallWithLock();
  c.BalancedManualLock(true);
  c.Signal();
  return c.Get() >= 0 ? 0 : 1;
}
