#ifndef QP_TESTS_TEST_FIXTURES_H_
#define QP_TESTS_TEST_FIXTURES_H_

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "qp/pricing/price_points.h"
#include "qp/query/parser.h"
#include "qp/query/query.h"
#include "qp/relational/instance.h"
#include "qp/util/result.h"

namespace qp {

/// gtest helper: unwraps a Result<T> or fails the test.
#define QP_ASSERT_OK_AND_ASSIGN(lhs, expr)                        \
  auto QP_CONCAT_(result_, __LINE__) = (expr);                    \
  ASSERT_TRUE(QP_CONCAT_(result_, __LINE__).ok())                 \
      << QP_CONCAT_(result_, __LINE__).status().ToString();      \
  lhs = std::move(QP_CONCAT_(result_, __LINE__)).value()

#define QP_ASSERT_OK(expr)                         \
  do {                                             \
    auto qp_st_ = (expr);                          \
    ASSERT_TRUE(qp_st_.ok()) << qp_st_.ToString(); \
  } while (0)

/// The running example of the paper (Example 3.8 / Figure 1):
///   Q(x,y) :- R(x), S(x,y), T(y)
///   Col x = {a1,a2,a3,a4}, Col y = {b1,b2,b3}
///   R = {a1,a2}, S = {(a1,b1),(a1,b2),(a2,b2),(a4,b1)}, T = {b1,b3}
///   every one of the 14 selection views priced at 1.
/// Q(D) = {(a1,b1)} and the arbitrage-price of Q is 6.
struct Example38 {
  std::unique_ptr<Catalog> catalog;
  std::unique_ptr<Instance> db;
  SelectionPriceSet prices;
  ConjunctiveQuery query;

  static Example38 Make() {
    Example38 e;
    e.catalog = std::make_unique<Catalog>();
    auto r = e.catalog->AddRelation("R", {"X"});
    auto s = e.catalog->AddRelation("S", {"X", "Y"});
    auto t = e.catalog->AddRelation("T", {"Y"});
    EXPECT_TRUE(r.ok() && s.ok() && t.ok());
    std::vector<Value> col_x = {Value::Str("a1"), Value::Str("a2"),
                                Value::Str("a3"), Value::Str("a4")};
    std::vector<Value> col_y = {Value::Str("b1"), Value::Str("b2"),
                                Value::Str("b3")};
    EXPECT_TRUE(e.catalog->SetColumn("R", "X", col_x).ok());
    EXPECT_TRUE(e.catalog->SetColumn("S", "X", col_x).ok());
    EXPECT_TRUE(e.catalog->SetColumn("S", "Y", col_y).ok());
    EXPECT_TRUE(e.catalog->SetColumn("T", "Y", col_y).ok());

    e.db = std::make_unique<Instance>(e.catalog.get());
    EXPECT_TRUE(e.db->Insert("R", {Value::Str("a1")}).ok());
    EXPECT_TRUE(e.db->Insert("R", {Value::Str("a2")}).ok());
    EXPECT_TRUE(
        e.db->Insert("S", {Value::Str("a1"), Value::Str("b1")}).ok());
    EXPECT_TRUE(
        e.db->Insert("S", {Value::Str("a1"), Value::Str("b2")}).ok());
    EXPECT_TRUE(
        e.db->Insert("S", {Value::Str("a2"), Value::Str("b2")}).ok());
    EXPECT_TRUE(
        e.db->Insert("S", {Value::Str("a4"), Value::Str("b1")}).ok());
    EXPECT_TRUE(e.db->Insert("T", {Value::Str("b1")}).ok());
    EXPECT_TRUE(e.db->Insert("T", {Value::Str("b3")}).ok());

    EXPECT_TRUE(e.prices.SetUniform(*e.catalog, "R", "X", 1).ok());
    EXPECT_TRUE(e.prices.SetUniform(*e.catalog, "S", "X", 1).ok());
    EXPECT_TRUE(e.prices.SetUniform(*e.catalog, "S", "Y", 1).ok());
    EXPECT_TRUE(e.prices.SetUniform(*e.catalog, "T", "Y", 1).ok());

    auto q = ParseQuery(e.catalog->schema(), "Q(x,y) :- R(x), S(x,y), T(y)");
    EXPECT_TRUE(q.ok());
    e.query = std::move(*q);
    return e;
  }
};

}  // namespace qp

#endif  // QP_TESTS_TEST_FIXTURES_H_
