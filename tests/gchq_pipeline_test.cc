// GChQ pipeline step tests (Section 3.1, Steps 1-3): interpreted
// predicates, constants, repeated variables within an atom, hanging
// variables — each validated against the exhaustive oracle baseline.

#include "gtest/gtest.h"
#include "qp/pricing/engine.h"
#include "qp/pricing/exhaustive_solver.h"
#include "qp/query/parser.h"
#include "qp/util/random.h"
#include "test_fixtures.h"

namespace qp {
namespace {

/// Schema with integer columns so comparison predicates bite:
/// R(X), S(X,Y), T(Y) over {1..4} x {1..3}, random data/prices per seed.
struct IntChain {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  std::unique_ptr<Instance> db;
  SelectionPriceSet prices;

  explicit IntChain(uint64_t seed) {
    Rng rng(seed);
    auto r = catalog->AddRelation("R", {"X"});
    auto s = catalog->AddRelation("S", {"X", "Y"});
    auto t = catalog->AddRelation("T", {"Y"});
    EXPECT_TRUE(r.ok() && s.ok() && t.ok());
    std::vector<Value> col_x, col_y;
    for (int i = 1; i <= 4; ++i) col_x.push_back(Value::Int(i));
    for (int i = 1; i <= 3; ++i) col_y.push_back(Value::Int(i));
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*r, 0}, col_x).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*s, 0}, col_x).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*s, 1}, col_y).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*t, 0}, col_y).ok());
    db = std::make_unique<Instance>(catalog.get());
    for (const Value& x : col_x) {
      if (rng.NextBool(0.5)) {
        EXPECT_TRUE(db->Insert("R", {x}).ok());
      }
      for (const Value& y : col_y) {
        if (rng.NextBool(0.5)) {
        EXPECT_TRUE(db->Insert("S", {x, y}).ok());
      }
      }
    }
    for (const Value& y : col_y) {
      if (rng.NextBool(0.5)) {
        EXPECT_TRUE(db->Insert("T", {y}).ok());
      }
    }
    for (RelationId rel : {*r, *s, *t}) {
      for (int p = 0; p < catalog->schema().arity(rel); ++p) {
        for (ValueId v : catalog->Column(AttrRef{rel, p})) {
          EXPECT_TRUE(prices
                          .Set(SelectionView{AttrRef{rel, p}, v},
                               rng.NextInRange(1, 9))
                          .ok());
        }
      }
    }
  }

  void Check(const char* text) {
    auto q = ParseQuery(catalog->schema(), text);
    ASSERT_TRUE(q.ok()) << q.status().ToString();
    PricingEngine engine(db.get(), &prices);
    auto quote = engine.Price(*q);
    ASSERT_TRUE(quote.ok()) << quote.status().ToString();
    ExhaustiveSolverOptions options;
    options.max_views = 40;
    auto exact = PriceByExhaustiveSearch(*db, prices, *q, options);
    ASSERT_TRUE(exact.ok()) << exact.status().ToString();
    EXPECT_EQ(quote->solution.price, exact->price) << text;
  }
};

class PipelineSteps : public testing::TestWithParam<uint64_t> {};

TEST_P(PipelineSteps, Step1InterpretedPredicates) {
  IntChain f(GetParam());
  f.Check("Q(x,y) :- R(x), S(x,y), T(y), x > 2");
  f.Check("Q(x,y) :- R(x), S(x,y), T(y), y <= 2");
  f.Check("Q(x,y) :- R(x), S(x,y), T(y), x >= 2, x < 4, y != 2");
  // Predicate that empties a domain: price 0.
  f.Check("Q(x,y) :- R(x), S(x,y), T(y), x > 99");
}

TEST_P(PipelineSteps, ConstantsBecomeHangingSingletons) {
  IntChain f(GetParam());
  f.Check("Q(y) :- S(2, y), T(y)");
  f.Check("Q(x) :- R(x), S(x, 1)");
  // Constant outside the column: trivially determined.
  f.Check("Q(y) :- S(77, y), T(y)");
}

TEST_P(PipelineSteps, Step2RepeatedVariableInAtom) {
  IntChain f(GetParam() + 50);
  // S(y,y) merges S.X and S.Y (note: domains intersect to {1,2,3}).
  f.Check("Q(y) :- S(y,y), T(y)");
  f.Check("Q(x,y) :- R(x), S(x,y), S(y,y)");
}

TEST_P(PipelineSteps, Step3HangingVariables) {
  IntChain f(GetParam() + 100);
  // y hangs off S: price = min(full cover of S.Y + free rest, ignore S.Y).
  f.Check("Q(x,y) :- R(x), S(x,y)");
  // Both endpoints hanging: a single binary atom.
  f.Check("Q(x,y) :- S(x,y)");
  // Hanging + predicate on the hanging variable.
  f.Check("Q(x,y) :- R(x), S(x,y), y > 1");
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineSteps,
                         testing::Range<uint64_t>(1, 11));

TEST(PipelineEdgeCases, SingleUnaryAtomIsFullCover) {
  IntChain f(1);
  auto q = ParseQuery(f.catalog->schema(), "Q(x) :- R(x)");
  ASSERT_TRUE(q.ok());
  PricingEngine engine(f.db.get(), &f.prices);
  auto quote = engine.Price(*q);
  ASSERT_TRUE(quote.ok());
  // Determining all of R needs the full cover of R.X (its only attribute).
  RelationId r = *f.catalog->schema().FindRelation("R");
  EXPECT_EQ(quote->solution.price,
            f.prices.FullCoverCost(*f.catalog, AttrRef{r, 0}));
}

TEST(PipelineEdgeCases, Step2RepeatedVarUsesMinPrice) {
  // Deterministic instance: empty S, so pricing S(y,y) reduces to blocking
  // the diagonal, one (cheapest-side) view per diagonal value.
  Catalog catalog;
  RelationId s = *catalog.AddRelation("S", {"X", "Y"});
  std::vector<Value> col = {Value::Int(1), Value::Int(2)};
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{s, 0}, col));
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{s, 1}, col));
  Instance db(&catalog);
  SelectionPriceSet prices;
  // X views cost 10, Y views cost 1.
  for (ValueId v : catalog.Column(AttrRef{s, 0})) {
    QP_ASSERT_OK(prices.Set(SelectionView{AttrRef{s, 0}, v}, 10));
  }
  for (ValueId v : catalog.Column(AttrRef{s, 1})) {
    QP_ASSERT_OK(prices.Set(SelectionView{AttrRef{s, 1}, v}, 1));
  }
  auto q = ParseQuery(catalog.schema(), "Q(y) :- S(y,y)");
  ASSERT_TRUE(q.ok());
  PricingEngine engine(&db, &prices);
  auto quote = engine.Price(*q);
  ASSERT_TRUE(quote.ok());
  // Full determination of the diagonal: min(10,1) per value = 2.
  EXPECT_EQ(quote->solution.price, 2);
}

}  // namespace
}  // namespace qp
