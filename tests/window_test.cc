// Windowed-percentile reader tests, plus the nearest-rank pinning
// fixture shared by every percentile reporter in the tree. The load
// client's report percentile once used floor rank (q * (size-1) / 100),
// which under-reports the tail — p99 of 40 samples returned the 39th
// value, not the 40th — while the histogram walk used nearest rank.
// NearestRankPercentile is now the single reference both sides follow;
// these tests pin the convention and the parity.

#include "qp/obs/window.h"

#include <cstdint>
#include <vector>

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"

namespace qp {
namespace {

TEST(NearestRankPercentile, RankConvention) {
  EXPECT_EQ(NearestRankPercentile({}, 99), 0u);
  EXPECT_EQ(NearestRankPercentile({7}, 0), 7u);
  EXPECT_EQ(NearestRankPercentile({7}, 100), 7u);
  const std::vector<uint64_t> sorted = {10, 20, 30, 40};
  EXPECT_EQ(NearestRankPercentile(sorted, 1), 10u);   // rank ceil(0.04)=1
  EXPECT_EQ(NearestRankPercentile(sorted, 50), 20u);  // rank 2
  EXPECT_EQ(NearestRankPercentile(sorted, 75), 30u);  // rank 3
  EXPECT_EQ(NearestRankPercentile(sorted, 99), 40u);  // rank 4 (clamped up)
  EXPECT_EQ(NearestRankPercentile(sorted, 100), 40u);
}

TEST(NearestRankPercentile, FortySampleP99IsTheMaximum) {
  // The load-client regression: with 40 samples, floor rank gave
  // index 99*39/100 = 38 (the 39th value); nearest rank gives
  // ceil(40*0.99) = 40 — the maximum. An under-sampled p99 IS the max,
  // which is also why bench_compare only gates p99 at >= 100 iterations.
  std::vector<uint64_t> sorted;
  for (uint64_t i = 1; i <= 40; ++i) sorted.push_back(i * 1000);
  EXPECT_EQ(NearestRankPercentile(sorted, 99), 40000u);
  EXPECT_EQ(NearestRankPercentile(sorted, 95), 38000u);  // rank 38
}

TEST(NearestRankPercentile, AgreesWithHistogramOnBucketEdges) {
  // Shared fixture: values of the form 2^k - 1 sit exactly on histogram
  // bucket upper edges, so the histogram's bucket walk loses nothing to
  // quantization and the two implementations must agree bit-for-bit at
  // every percentile. Skewed multiplicities on purpose — equal counts
  // would hide rank-convention mistakes.
  MetricHistogram hist;
  std::vector<uint64_t> sorted;
  const struct {
    uint64_t value;
    int count;
  } fixture[] = {{(1u << 10) - 1, 55},
                 {(1u << 13) - 1, 30},
                 {(1u << 16) - 1, 10},
                 {(1u << 20) - 1, 4},
                 {(1u << 24) - 1, 1}};
  for (const auto& f : fixture) {
    for (int i = 0; i < f.count; ++i) {
      hist.Record(f.value);
      sorted.push_back(f.value);
    }
  }
  for (int q : {1, 10, 50, 55, 56, 85, 90, 95, 99, 100}) {
    EXPECT_EQ(hist.Percentile(q), NearestRankPercentile(sorted, q))
        << "q=" << q;
  }
}

TEST(WindowedPercentile, ReportsOnlyTheLastWindow) {
  MetricHistogram hist;
  WindowedPercentile window(&hist);

  for (int i = 0; i < 100; ++i) hist.Record((1u << 10) - 1);
  window.Advance();
  EXPECT_EQ(window.Count(), 100u);
  EXPECT_EQ(window.Percentile(99), (1u << 10) - 1);

  // A much slower second window: the cumulative histogram still answers
  // from all 200 samples, the window only from the new 100.
  for (int i = 0; i < 100; ++i) hist.Record((1u << 20) - 1);
  window.Advance();
  EXPECT_EQ(window.Count(), 100u);
  EXPECT_EQ(window.Percentile(50), (1u << 20) - 1);
  EXPECT_EQ(hist.Percentile(50), (1u << 10) - 1);
}

TEST(WindowedPercentile, EmptyWindowAnswersZero) {
  MetricHistogram hist;
  for (int i = 0; i < 10; ++i) hist.Record(12345);
  // Construction baselines against the existing history: none of those
  // 10 samples may leak into the first window.
  WindowedPercentile window(&hist);
  window.Advance();
  EXPECT_EQ(window.Count(), 0u);
  EXPECT_EQ(window.Percentile(99), 0u);
}

TEST(WindowedPercentile, MixedWindowHitsTheTailBucket) {
  MetricHistogram hist;
  WindowedPercentile window(&hist);
  for (int i = 0; i < 99; ++i) hist.Record((1u << 8) - 1);
  hist.Record((1u << 30) - 1);
  window.Advance();
  EXPECT_EQ(window.Count(), 100u);
  EXPECT_EQ(window.Percentile(50), (1u << 8) - 1);
  // rank ceil(100*0.99)=99 -> still the fast bucket; p100 is the outlier.
  EXPECT_EQ(window.Percentile(99), (1u << 8) - 1);
  EXPECT_EQ(window.Percentile(100), (1u << 30) - 1);
}

}  // namespace
}  // namespace qp
