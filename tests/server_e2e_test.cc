// End-to-end tests for the qpricerd serving core: a real PricingServer on
// an ephemeral loopback port, driven through PricingClient — quote /
// batch / insert / metrics / shutdown round trips, error surfacing,
// admission shedding, and the headline concurrency property (inserts
// publish new generations while concurrent quotes keep succeeding against
// consistent snapshots).

#include "qp/server/pricing_server.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"
#include "qp/server/client.h"
#include "qp/util/net.h"
#include "qp/workload/business.h"
#include "test_fixtures.h"

namespace qp {
namespace {

constexpr const char* kWaQuery = "Q(b) :- Email(b), InState(b,'WA')";

ShardMap MakeBusinessShards(int count) {
  // EXPECT (not ASSERT): gtest fatal assertions only work in void
  // functions; a failed populate shows up as a failed test anyway.
  ShardMap shards;
  for (int i = 0; i < count; ++i) {
    auto seller = std::make_unique<Seller>("shard" + std::to_string(i));
    BusinessMarketParams params;
    params.seed = 7 + static_cast<uint64_t>(i);
    Status populated = PopulateBusinessMarket(seller.get(), params);
    EXPECT_TRUE(populated.ok()) << populated.ToString();
    Status added =
        shards.AddShard("shard" + std::to_string(i), std::move(seller));
    EXPECT_TRUE(added.ok()) << added.ToString();
  }
  return shards;
}

PricingClient ConnectTo(const PricingServer& server) {
  auto client = PricingClient::Connect("127.0.0.1", server.port());
  EXPECT_TRUE(client.ok()) << client.status().ToString();
  return *std::move(client);
}

TEST(ServerE2E, QuoteMatchesDirectEngine) {
  ShardMap shards = MakeBusinessShards(1);
  // Direct price through the shard's own snapshot engine, for reference.
  SnapshotRef snapshot = shards.shard(0)->store->Acquire();
  const Schema& schema = shards.shard(0)->seller->catalog().schema();
  QP_ASSERT_OK_AND_ASSIGN(ConjunctiveQuery query,
                          ParseQuery(schema, kWaQuery));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote direct, snapshot->engine().Price(query));

  PricingServer server(std::move(shards), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  QP_ASSERT_OK_AND_ASSIGN(QuoteReply reply, client.Quote(0, kWaQuery));
  EXPECT_EQ(reply.snapshot_version, 0u);
  EXPECT_EQ(reply.price, direct.solution.price);
  EXPECT_FALSE(reply.approximate);
  EXPECT_EQ(reply.solver, direct.solver);
}

TEST(ServerE2E, ShardsAreIsolatedCatalogs) {
  PricingServer server(MakeBusinessShards(2), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  // Different seeds place different businesses in WA, so the two shards
  // quote independently (and usually differently); both must succeed.
  QP_ASSERT_OK_AND_ASSIGN(QuoteReply s0, client.Quote(0, kWaQuery));
  QP_ASSERT_OK_AND_ASSIGN(QuoteReply s1, client.Quote(1, kWaQuery));
  EXPECT_GT(s0.price, 0);
  EXPECT_GT(s1.price, 0);
  // Inserting into shard 1 must not move shard 0's snapshot version.
  QP_ASSERT_OK_AND_ASSIGN(
      InsertReply insert,
      client.Insert(1, "Email", {{Value::Str("biz0")}, {Value::Str("biz1")},
                                 {Value::Str("biz2")}}));
  EXPECT_GE(insert.rows_inserted, 1u);
  QP_ASSERT_OK_AND_ASSIGN(QuoteReply s0_after, client.Quote(0, kWaQuery));
  EXPECT_EQ(s0_after.snapshot_version, 0u);
}

TEST(ServerE2E, InsertPublishesAndQuotesTrackGenerations) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);

  QP_ASSERT_OK_AND_ASSIGN(QuoteReply before, client.Quote(0, kWaQuery));
  EXPECT_EQ(before.snapshot_version, 0u);

  // Find rows that are genuinely new by inserting a spread of businesses
  // (the generator gives ~40% of them no e-mail).
  std::vector<std::vector<Value>> rows;
  for (int b = 0; b < 120; ++b) {
    rows.push_back({Value::Str("biz" + std::to_string(b))});
  }
  QP_ASSERT_OK_AND_ASSIGN(InsertReply insert,
                          client.Insert(0, "Email", rows));
  EXPECT_EQ(insert.snapshot_version, 1u);
  EXPECT_GT(insert.rows_inserted, 0u);

  QP_ASSERT_OK_AND_ASSIGN(QuoteReply after, client.Quote(0, kWaQuery));
  EXPECT_EQ(after.snapshot_version, 1u);

  // Re-inserting the same rows is a no-op: no new generation.
  QP_ASSERT_OK_AND_ASSIGN(InsertReply again, client.Insert(0, "Email", rows));
  EXPECT_EQ(again.snapshot_version, 1u);
  EXPECT_EQ(again.rows_inserted, 0u);
}

TEST(ServerE2E, BatchQuotesWithPerItemErrors) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  QP_ASSERT_OK_AND_ASSIGN(
      QuoteBatchReply reply,
      client.QuoteBatch(0, {kWaQuery, "Q(b) :- NoSuchRel(b)",
                            "Q(b) :- Business(b), InState(b,'OR')"}));
  ASSERT_EQ(reply.items.size(), 3u);
  EXPECT_EQ(reply.items[0].status_code, 0);
  EXPECT_GT(reply.items[0].price, 0);
  EXPECT_NE(reply.items[1].status_code, 0);
  EXPECT_FALSE(reply.items[1].message.empty());
  EXPECT_EQ(reply.items[2].status_code, 0);
}

TEST(ServerE2E, ErrorsCarryTheServerStatusCode) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);

  auto unknown_shard = client.Quote(7, kWaQuery);
  EXPECT_FALSE(unknown_shard.ok());
  EXPECT_EQ(unknown_shard.status().code(), StatusCode::kNotFound);

  auto parse_error = client.Quote(0, "this is not datalog");
  EXPECT_FALSE(parse_error.ok());
  EXPECT_EQ(parse_error.status().code(), StatusCode::kInvalidArgument);

  auto bad_insert = client.Insert(0, "Email",
                                  {{Value::Str("not-a-business")}});
  EXPECT_FALSE(bad_insert.ok());
}

TEST(ServerE2E, UnknownFrameTypeIsRejectedNotFatal) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  QP_ASSERT_OK_AND_ASSIGN(Socket raw,
                          TcpConnect("127.0.0.1", server.port()));
  QP_ASSERT_OK(WriteFrame(raw, 0x7e, "mystery"));
  QP_ASSERT_OK_AND_ASSIGN(auto frame, ReadFrame(raw));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(FrameType::kError));
  // The connection survives a bad frame type: a valid request still works.
  QuoteRequest request;
  request.query_text = kWaQuery;
  QP_ASSERT_OK(WriteFrame(raw, static_cast<uint8_t>(FrameType::kQuote),
                          EncodeQuoteRequest(request)));
  QP_ASSERT_OK_AND_ASSIGN(frame, ReadFrame(raw));
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->type, static_cast<uint8_t>(FrameType::kQuoteReply));
}

TEST(ServerE2E, MetricsReportServerCounters) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  QP_ASSERT_OK(client.Quote(0, kWaQuery).status());
  QP_ASSERT_OK_AND_ASSIGN(MetricsReply metrics, client.Metrics());
#if QP_METRICS_ENABLED
  EXPECT_NE(metrics.json.find("qp.server.frames"), std::string::npos);
  EXPECT_NE(metrics.json.find("qp.server.quotes_ok"), std::string::npos);
#else
  // With metrics compiled out the METRICS frame still round-trips; the
  // registry is simply empty.
  EXPECT_FALSE(metrics.json.empty());
#endif  // QP_METRICS_ENABLED
}

TEST(ServerE2E, ConnectionsBeyondTheCapAreShed) {
  PricingServerOptions options;
  options.max_connections = 0;  // everything sheds: deterministic
  PricingServer server(MakeBusinessShards(1), options);
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  auto reply = client.Quote(0, kWaQuery);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
}

TEST(ServerE2E, UnresponsiveClientsDoNotStallAccepts) {
  // The shed-path regression: a peer that connects but never reads used
  // to be able to park a server thread on an unbounded send. Every
  // accepted socket now gets a short send timeout, so dead peers bound
  // the damage: with the one admission slot held by a never-reading
  // connection and several never-reading shed connections queued, a
  // well-behaved client must still get its shed frame promptly — and be
  // served once the slot frees.
  PricingServerOptions options;
  options.max_connections = 1;
  options.send_timeout_ms = 200;
  PricingServer server(MakeBusinessShards(1), options);
  QP_ASSERT_OK(server.Start());

  // Admitted, then silent forever. Accepts are FIFO on one thread, so
  // this connection owns the slot before any later one is looked at.
  QP_ASSERT_OK_AND_ASSIGN(Socket idle,
                          TcpConnect("127.0.0.1", server.port()));

  // Shed-path peers that never read their error frame.
  std::vector<Socket> deaf;
  for (int i = 0; i < 4; ++i) {
    QP_ASSERT_OK_AND_ASSIGN(Socket s,
                            TcpConnect("127.0.0.1", server.port()));
    deaf.push_back(std::move(s));
  }

  // The well-behaved client behind all of them: sheds promptly (an error
  // frame, not a hang) because no dead peer may stall the accept thread.
  const auto t0 = std::chrono::steady_clock::now();
  PricingClient client = ConnectTo(server);
  auto reply = client.Quote(0, kWaQuery);
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(5));

  // Freeing the slot un-wedges admission: the reactor reaps the closed
  // idle connection and a fresh client gets served.
  idle.Close();
  bool served = false;
  for (int attempt = 0; attempt < 50 && !served; ++attempt) {
    auto retry = PricingClient::Connect("127.0.0.1", server.port());
    if (retry.ok()) {
      auto quote = retry->Quote(0, kWaQuery);
      served = quote.ok();
    }
    if (!served) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_TRUE(served);
  server.Stop();
}

TEST(ServerE2E, ShutdownFrameStopsTheServer) {
  PricingServer server(MakeBusinessShards(1), {});
  QP_ASSERT_OK(server.Start());
  PricingClient client = ConnectTo(server);
  QP_ASSERT_OK(client.Shutdown());
  EXPECT_TRUE(server.stop_requested());
  server.Stop();
}

// The acceptance bar of this PR: >= 8 concurrent connections issuing
// quotes with zero failures while an insert stream publishes new catalog
// generations. Every reply must be self-consistent: version observed is
// monotone per connection, and quotes never fail because a publish was in
// flight (Insert never blocks in-flight quotes).
TEST(ServerE2E, EightConnectionsQuoteThroughConcurrentInserts) {
  PricingServerOptions options;
  options.num_workers = 10;
  PricingServer server(MakeBusinessShards(1), options);
  QP_ASSERT_OK(server.Start());

  constexpr int kConnections = 8;
  constexpr int kQuotesPerConnection = 25;
  std::atomic<int> failures{0};
  std::atomic<int> version_regressions{0};
  std::vector<std::thread> threads;
  for (int c = 0; c < kConnections; ++c) {
    threads.emplace_back([&, c] {
      auto client = PricingClient::Connect("127.0.0.1", server.port());
      if (!client.ok()) {
        failures.fetch_add(1);
        return;
      }
      const char* queries[] = {
          kWaQuery,
          "Q(b) :- Business(b), InState(b,'OR')",
          "Q(b) :- Email(b), InCounty(b,'WA/c0')",
          "Q() :- Email(x), InState(x,'WA')",
      };
      uint64_t last_version = 0;
      for (int i = 0; i < kQuotesPerConnection; ++i) {
        auto reply = client->Quote(0, queries[(c + i) % 4]);
        if (!reply.ok()) {
          failures.fetch_add(1);
          continue;
        }
        if (reply->snapshot_version < last_version) {
          version_regressions.fetch_add(1);
        }
        last_version = reply->snapshot_version;
      }
    });
  }
  // The insert stream: one row at a time, each publishing a generation.
  threads.emplace_back([&] {
    auto client = PricingClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) {
      failures.fetch_add(1);
      return;
    }
    for (int b = 0; b < 60; ++b) {
      auto reply = client->Insert(
          0, "Email", {{Value::Str("biz" + std::to_string(b))}});
      if (!reply.ok()) failures.fetch_add(1);
    }
  });
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(version_regressions.load(), 0);
  EXPECT_GT(server.shards().shard(0)->store->version(), 0u);
}

}  // namespace
}  // namespace qp
