// Unit tests for the exact minimum-weight hitting-set solver.

#include "gtest/gtest.h"
#include "qp/pricing/hitting_set.h"
#include "qp/util/random.h"

namespace qp {
namespace {

TEST(HittingSet, EmptyInstanceIsFree) {
  HittingSetInstance instance;
  instance.weights = {1, 2, 3};
  HittingSetResult r = SolveMinWeightHittingSet(instance);
  EXPECT_EQ(r.cost, 0);
  EXPECT_TRUE(r.chosen.empty());
  EXPECT_TRUE(r.optimal);
}

TEST(HittingSet, EmptyClauseIsInfeasible) {
  HittingSetInstance instance;
  instance.weights = {1};
  instance.clauses = {{}};
  HittingSetResult r = SolveMinWeightHittingSet(instance);
  EXPECT_TRUE(IsInfinite(r.cost));
}

TEST(HittingSet, UnitClausesForceItems) {
  HittingSetInstance instance;
  instance.weights = {5, 3, 9};
  instance.clauses = {{0}, {2}};
  HittingSetResult r = SolveMinWeightHittingSet(instance);
  EXPECT_EQ(r.cost, 14);
  EXPECT_EQ(r.chosen, (std::vector<int>{0, 2}));
}

TEST(HittingSet, PrefersCheaperCover) {
  // Clause {0,1} with weights 10, 2: pick 1.
  HittingSetInstance instance;
  instance.weights = {10, 2};
  instance.clauses = {{0, 1}};
  HittingSetResult r = SolveMinWeightHittingSet(instance);
  EXPECT_EQ(r.cost, 2);
  EXPECT_EQ(r.chosen, (std::vector<int>{1}));
}

TEST(HittingSet, SharedItemBeatsTwoSingles) {
  // Clauses {0,2}, {1,2}: item 2 (weight 3) hits both; items 0,1 cost 2
  // each. min(3, 4) = 3.
  HittingSetInstance instance;
  instance.weights = {2, 2, 3};
  instance.clauses = {{0, 2}, {1, 2}};
  HittingSetResult r = SolveMinWeightHittingSet(instance);
  EXPECT_EQ(r.cost, 3);
  EXPECT_EQ(r.chosen, (std::vector<int>{2}));
}

TEST(HittingSet, SubsumedClausesDoNotChangeTheAnswer) {
  HittingSetInstance a;
  a.weights = {4, 5, 6};
  a.clauses = {{0, 1}, {0, 1, 2}};  // second subsumed
  HittingSetInstance b;
  b.weights = a.weights;
  b.clauses = {{0, 1}};
  EXPECT_EQ(SolveMinWeightHittingSet(a).cost,
            SolveMinWeightHittingSet(b).cost);
}

TEST(HittingSet, NodeLimitReportsNonOptimal) {
  // A dense instance with an absurdly low node limit.
  HittingSetInstance instance;
  Rng rng(5);
  const int items = 12;
  for (int i = 0; i < items; ++i) {
    instance.weights.push_back(rng.NextInRange(1, 9));
  }
  for (int c = 0; c < 20; ++c) {
    std::vector<int> clause;
    for (int i = 0; i < items; ++i) {
      if (rng.NextBool(0.3)) clause.push_back(i);
    }
    if (!clause.empty()) instance.clauses.push_back(clause);
  }
  HittingSetResult r = SolveMinWeightHittingSet(instance, /*node_limit=*/1);
  EXPECT_FALSE(r.optimal);
}

TEST(HittingSet, MatchesBruteForceOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    Rng rng(seed);
    HittingSetInstance instance;
    const int items = 10;
    for (int i = 0; i < items; ++i) {
      instance.weights.push_back(rng.NextInRange(1, 15));
    }
    const int clauses = static_cast<int>(rng.NextInRange(1, 12));
    for (int c = 0; c < clauses; ++c) {
      std::vector<int> clause;
      for (int i = 0; i < items; ++i) {
        if (rng.NextBool(0.35)) clause.push_back(i);
      }
      instance.clauses.push_back(clause);  // may be empty: infeasible
    }

    // Brute force over all item subsets.
    Money best = kInfiniteMoney;
    for (uint32_t mask = 0; mask < (1u << items); ++mask) {
      bool hits_all = true;
      for (const auto& clause : instance.clauses) {
        bool hit = false;
        for (int i : clause) {
          if (mask & (1u << i)) {
            hit = true;
            break;
          }
        }
        if (!hit) {
          hits_all = false;
          break;
        }
      }
      if (!hits_all) continue;
      Money cost = 0;
      for (int i = 0; i < items; ++i) {
        if (mask & (1u << i)) cost += instance.weights[i];
      }
      best = std::min(best, cost);
    }

    HittingSetResult r = SolveMinWeightHittingSet(instance);
    EXPECT_EQ(r.cost, best) << "seed=" << seed;
  }
}

}  // namespace
}  // namespace qp
