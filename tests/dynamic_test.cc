// Dynamic pricing (Section 2.7): price monotonicity under insertions for
// selection views + full CQs (Propositions 2.20/2.22), consistency
// preservation (Proposition 2.23 via the instance-independent criterion),
// the Example 2.18 inconsistency scenario, and the general-framework
// arbitrage pricer with the restricted relation ։* (Proposition 2.24).

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/arbitrage_pricer.h"
#include "qp/pricing/dynamic_pricer.h"
#include "qp/query/parser.h"
#include "qp/util/random.h"
#include "qp/workload/join_workloads.h"
#include "test_fixtures.h"

namespace qp {
namespace {

TEST(DynamicPricing, FullQueriesAreMonotoneUnderInsertions) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    JoinWorkloadParams params;
    params.column_size = 3;
    params.tuple_density = 0.3;
    params.seed = seed;
    params.min_price = 1;
    params.max_price = 9;
    QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeChainWorkload(1, params));

    DynamicPricer pricer(w.db.get(), &w.prices);
    ASSERT_TRUE(DynamicPricer::MonotonicityGuaranteed(w.query));
    QP_ASSERT_OK_AND_ASSIGN(PriceQuote initial, pricer.Watch("q", w.query));
    Money last = initial.solution.price;

    // Insert every still-missing tuple of B1 one by one; prices must never
    // decrease (Prop 2.22).
    RelationId b1 = *w.catalog->schema().FindRelation("B1");
    std::vector<std::vector<Value>> missing;
    for (ValueId a : w.catalog->Column(AttrRef{b1, 0})) {
      for (ValueId b : w.catalog->Column(AttrRef{b1, 1})) {
        if (!w.db->Contains(b1, {a, b})) {
          missing.push_back(
              {w.catalog->dict().Get(a), w.catalog->dict().Get(b)});
        }
      }
    }
    for (const auto& row : missing) {
      QP_ASSERT_OK_AND_ASSIGN(auto changes, pricer.Insert("B1", {row}));
      ASSERT_EQ(changes.size(), 1u);
      EXPECT_GE(changes[0].after, changes[0].before)
          << "price decreased after insertion (seed " << seed << ")";
      EXPECT_EQ(changes[0].before, last);
      last = changes[0].after;
    }
    // Consistency is instance-independent for selection views, so it still
    // holds after all insertions (Prop 2.23 / Prop 3.2).
    EXPECT_EQ(pricer.CheckConsistency().consistent,
              CheckSelectionConsistency(*w.catalog, w.prices).consistent);
  }
}

// ---- Example 2.18 in the general framework ---------------------------------
// S1 = {(V,$1), (Q,$10), (ID,$100)} is consistent on D1 = ∅ but becomes
// inconsistent on D2 = {R(a), S(a,b)}; replacing ։ with ։* repairs this.
struct GeneralMarket {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  std::unique_ptr<Instance> db;
  std::vector<GeneralPricePoint> points;

  explicit GeneralMarket(bool populated) {
    auto r = catalog->AddRelation("R", {"X"});
    auto s = catalog->AddRelation("S", {"X", "Y"});
    EXPECT_TRUE(r.ok() && s.ok());
    EXPECT_TRUE(
        catalog->SetColumn(AttrRef{*r, 0}, {Value::Str("a")}).ok());
    EXPECT_TRUE(
        catalog->SetColumn(AttrRef{*s, 0}, {Value::Str("a")}).ok());
    EXPECT_TRUE(
        catalog->SetColumn(AttrRef{*s, 1}, {Value::Str("b")}).ok());
    db = std::make_unique<Instance>(catalog.get());
    if (populated) {
      EXPECT_TRUE(db->Insert("R", {Value::Str("a")}).ok());
      EXPECT_TRUE(db->Insert("S", {Value::Str("a"), Value::Str("b")}).ok());
    }
    ConjunctiveQuery v = *ParseQuery(catalog->schema(),
                                     "V(x,y) :- R(x), S(x,y)");
    ConjunctiveQuery q = *ParseQuery(catalog->schema(), "Q() :- R(x)");
    points.push_back({"V", QueryBundle::Of(v), Dollars(1)});
    points.push_back({"Q", QueryBundle::Of(q), Dollars(10)});
    points.push_back({"ID", IdentityBundle(catalog->schema()),
                      Dollars(100)});
  }
};

TEST(Example218Dynamic, ConsistencyBreaksUnderInstanceBasedDeterminacy) {
  GeneralMarket d1(/*populated=*/false);
  ArbitragePricer pricer1(d1.db.get(), d1.points,
                          DeterminacyMode::kInstanceBased);
  QP_ASSERT_OK_AND_ASSIGN(GeneralConsistencyReport r1,
                          pricer1.CheckConsistency());
  EXPECT_TRUE(r1.consistent) << "S1 should be consistent on D1 = ∅";

  GeneralMarket d2(/*populated=*/true);
  ArbitragePricer pricer2(d2.db.get(), d2.points,
                          DeterminacyMode::kInstanceBased);
  QP_ASSERT_OK_AND_ASSIGN(GeneralConsistencyReport r2,
                          pricer2.CheckConsistency());
  ASSERT_FALSE(r2.consistent)
      << "on D2 the buyer gets Q for $1 via V — arbitrage";
  // On D2 the single view V pins down the whole (one-tuple-per-relation)
  // database, so both Q and ID are undercut by it.
  ASSERT_EQ(r2.violations.size(), 2u);
  EXPECT_EQ(r2.violations[0].point_name, "Q");
  EXPECT_EQ(r2.violations[0].arbitrage_price, Dollars(1));
  EXPECT_EQ(r2.violations[1].point_name, "ID");
}

TEST(Example218Dynamic, RestrictedDeterminacyKeepsConsistency) {
  // Prop 2.24: with ։*, S1 stays consistent in both database states.
  for (bool populated : {false, true}) {
    GeneralMarket m(populated);
    ArbitragePricer pricer(m.db.get(), m.points,
                           DeterminacyMode::kRestricted);
    QP_ASSERT_OK_AND_ASSIGN(GeneralConsistencyReport report,
                            pricer.CheckConsistency());
    EXPECT_TRUE(report.consistent) << "populated=" << populated;
  }
}

TEST(Example218Dynamic, S2PriceDropsWithoutRestriction) {
  // S2 = {(V,$1), (ID,$100)}: consistent in both states, but the price of
  // Q drops from $100 to $1 when D grows — the second undesired effect.
  GeneralMarket d1(/*populated=*/false);
  d1.points.erase(d1.points.begin() + 1);  // drop the Q point
  ArbitragePricer p1(d1.db.get(), d1.points);
  ConjunctiveQuery q = *ParseQuery(d1.catalog->schema(), "Q() :- R(x)");
  QP_ASSERT_OK_AND_ASSIGN(ArbitrageQuote quote1,
                          p1.Price(QueryBundle::Of(q)));
  EXPECT_EQ(quote1.price, Dollars(100));

  GeneralMarket d2(/*populated=*/true);
  d2.points.erase(d2.points.begin() + 1);
  ArbitragePricer p2(d2.db.get(), d2.points);
  ConjunctiveQuery q2 = *ParseQuery(d2.catalog->schema(), "Q() :- R(x)");
  QP_ASSERT_OK_AND_ASSIGN(ArbitrageQuote quote2,
                          p2.Price(QueryBundle::Of(q2)));
  EXPECT_EQ(quote2.price, Dollars(1));

  // With ։* the price stays at $100 in both states (monotone, Prop 2.24).
  ArbitragePricer p1r(d1.db.get(), d1.points, DeterminacyMode::kRestricted);
  ArbitragePricer p2r(d2.db.get(), d2.points, DeterminacyMode::kRestricted);
  QP_ASSERT_OK_AND_ASSIGN(ArbitrageQuote r1, p1r.Price(QueryBundle::Of(q)));
  QP_ASSERT_OK_AND_ASSIGN(ArbitrageQuote r2, p2r.Price(QueryBundle::Of(q2)));
  EXPECT_EQ(r1.price, Dollars(100));
  EXPECT_EQ(r2.price, Dollars(100));
}

// ---- Warm-started incremental repricing -------------------------------------

/// Rows of `rel` allowed by the columns but absent from the instance, as
/// insertable Value rows.
std::vector<std::vector<Value>> MissingRows(const Workload& w,
                                            std::string_view rel_name) {
  RelationId rel = *w.catalog->schema().FindRelation(rel_name);
  std::vector<std::vector<Value>> missing;
  for (ValueId a : w.catalog->Column(AttrRef{rel, 0})) {
    for (ValueId b : w.catalog->Column(AttrRef{rel, 1})) {
      if (!w.db->Contains(rel, {a, b})) {
        missing.push_back(
            {w.catalog->dict().Get(a), w.catalog->dict().Get(b)});
      }
    }
  }
  return missing;
}

TEST(DynamicWarmRepricing, WarmQuotesMatchColdSolvesTupleByTuple) {
  // The tentpole contract: a warm (resumed-flow) reprice after every
  // single-tuple insert must be bit-equal in price to a from-scratch
  // engine solve of the mutated instance.
  for (uint64_t seed : {21u, 22u, 23u}) {
    JoinWorkloadParams params;
    params.column_size = 3;
    params.tuple_density = 0.3;
    params.seed = seed;
    params.min_price = 1;
    params.max_price = 9;
    QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeChainWorkload(2, params));

    DynamicPricer pricer(w.db.get(), &w.prices);
    QP_ASSERT_OK(pricer.Watch("q", w.query).status());
    PricingEngine fresh(w.db.get(), &w.prices);
    for (const auto& row : MissingRows(w, "B1")) {
      QP_ASSERT_OK_AND_ASSIGN(auto changes, pricer.Insert("B1", {row}));
      ASSERT_EQ(changes.size(), 1u);
      ASSERT_TRUE(changes[0].status.ok());
      QP_ASSERT_OK_AND_ASSIGN(PriceQuote cold, fresh.Price(w.query));
      EXPECT_EQ(changes[0].after, cold.solution.price)
          << "warm price diverged from cold solve (seed " << seed << ")";
    }
  }
}

#if QP_METRICS_ENABLED
TEST(DynamicWarmRepricing, WarmTierIsCountedSeparatelyFromCold) {
  JoinWorkloadParams params;
  params.column_size = 3;
  params.tuple_density = 0.3;
  params.seed = 31;
  params.min_price = 1;
  params.max_price = 9;
  QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeChainWorkload(1, params));

  DynamicPricer pricer(w.db.get(), &w.prices);
  QP_ASSERT_OK(pricer.Watch("q", w.query).status());
  auto missing = MissingRows(w, "B1");
  ASSERT_FALSE(missing.empty());

  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QP_ASSERT_OK(pricer.Insert("B1", {missing[0]}).status());
  MetricsSnapshot after = MetricsRegistry::Global().Snapshot();
  // The chain query is GChQ-routable, so this reprice rode the warm tier —
  // and the per-tier counters must attribute it there, not to cold.
  EXPECT_EQ(after.CounterValue("qp.dynamic.warm_repriced_queries") -
                before.CounterValue("qp.dynamic.warm_repriced_queries"),
            1u);
  EXPECT_EQ(after.CounterValue("qp.dynamic.cold_repriced_queries"),
            before.CounterValue("qp.dynamic.cold_repriced_queries"));
  EXPECT_EQ(after.CounterValue("qp.dynamic.repriced_queries") -
                before.CounterValue("qp.dynamic.repriced_queries"),
            1u);
  // The warm tier resumes the leaf flows instead of resetting them.
  EXPECT_GT(after.CounterValue("qp.flow.warm_starts"),
            before.CounterValue("qp.flow.warm_starts"));
}
#endif  // QP_METRICS_ENABLED

TEST(DynamicWarmRepricing, OutOfBandMutationFallsBackColdAndRebuilds) {
  JoinWorkloadParams params;
  params.column_size = 3;
  params.tuple_density = 0.5;
  params.seed = 32;
  params.min_price = 1;
  params.max_price = 9;
  QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeChainWorkload(1, params));

  DynamicPricer pricer(w.db.get(), &w.prices);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote initial, pricer.Watch("q", w.query));

  // Mutate the instance behind the pricer's back: erase one B1 tuple.
  RelationId b1 = *w.catalog->schema().FindRelation("B1");
  ASSERT_GT(w.db->NumTuples(b1), 0u);
  Tuple erased = *w.db->Relation(b1).begin();
  ASSERT_TRUE(w.db->Erase(b1, erased));

  // Re-adding the same tuple through the pricer restores the original
  // instance, but the generation drift must force the cold tier (the warm
  // state can no longer be trusted) and a rebuild of the warm state.
  MetricsSnapshot before = MetricsRegistry::Global().Snapshot();
  QP_ASSERT_OK_AND_ASSIGN(
      auto changes,
      pricer.Insert("B1", {{w.catalog->dict().Get(erased[0]),
                            w.catalog->dict().Get(erased[1])}}));
  MetricsSnapshot mid = MetricsRegistry::Global().Snapshot();
  ASSERT_EQ(changes.size(), 1u);
  ASSERT_TRUE(changes[0].status.ok());
  EXPECT_EQ(changes[0].after, initial.solution.price);
#if QP_METRICS_ENABLED
  EXPECT_EQ(mid.CounterValue("qp.dynamic.cold_repriced_queries") -
                before.CounterValue("qp.dynamic.cold_repriced_queries"),
            1u);
  EXPECT_EQ(mid.CounterValue("qp.dynamic.warm_repriced_queries"),
            before.CounterValue("qp.dynamic.warm_repriced_queries"));
  EXPECT_EQ(mid.CounterValue("qp.dynamic.incremental_rebuilds") -
                before.CounterValue("qp.dynamic.incremental_rebuilds"),
            1u);
#endif  // QP_METRICS_ENABLED

  // After the rebuild the warm tier takes over again.
  auto missing = MissingRows(w, "B1");
  if (!missing.empty()) {
    QP_ASSERT_OK(pricer.Insert("B1", {missing[0]}).status());
    MetricsSnapshot final_snap = MetricsRegistry::Global().Snapshot();
#if QP_METRICS_ENABLED
    EXPECT_EQ(final_snap.CounterValue("qp.dynamic.warm_repriced_queries") -
                  mid.CounterValue("qp.dynamic.warm_repriced_queries"),
              1u);
#endif  // QP_METRICS_ENABLED
    (void)final_snap;
  }
}

TEST(DynamicWarmRepricing, DuplicateRowsAreWarmNoOps) {
  JoinWorkloadParams params;
  params.column_size = 3;
  params.tuple_density = 0.5;
  params.seed = 33;
  params.min_price = 1;
  params.max_price = 9;
  QP_ASSERT_OK_AND_ASSIGN(Workload w, MakeChainWorkload(1, params));

  DynamicPricer pricer(w.db.get(), &w.prices);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote initial, pricer.Watch("q", w.query));
  RelationId b1 = *w.catalog->schema().FindRelation("B1");
  ASSERT_GT(w.db->NumTuples(b1), 0u);
  Tuple existing = *w.db->Relation(b1).begin();

  // Re-inserting a present row bumps no generation: the quote must come
  // straight from the cache, and the warm state must stay in sync for the
  // genuinely new row that follows.
  QP_ASSERT_OK_AND_ASSIGN(
      auto changes,
      pricer.Insert("B1", {{w.catalog->dict().Get(existing[0]),
                            w.catalog->dict().Get(existing[1])}}));
  ASSERT_EQ(changes.size(), 1u);
  EXPECT_TRUE(changes[0].from_cache);
  EXPECT_EQ(changes[0].after, initial.solution.price);

  PricingEngine fresh(w.db.get(), &w.prices);
  for (const auto& row : MissingRows(w, "B1")) {
    QP_ASSERT_OK_AND_ASSIGN(auto more, pricer.Insert("B1", {row}));
    ASSERT_EQ(more.size(), 1u);
    QP_ASSERT_OK_AND_ASSIGN(PriceQuote cold, fresh.Price(w.query));
    EXPECT_EQ(more[0].after, cold.solution.price);
  }
}

TEST(ArbitragePricer, SupportNamesTheCheapestPoints) {
  GeneralMarket m(/*populated=*/true);
  ArbitragePricer pricer(m.db.get(), m.points);
  ConjunctiveQuery v = *ParseQuery(m.catalog->schema(),
                                   "V(x,y) :- R(x), S(x,y)");
  QP_ASSERT_OK_AND_ASSIGN(ArbitrageQuote quote,
                          pricer.Price(QueryBundle::Of(v)));
  EXPECT_EQ(quote.price, Dollars(1));
  ASSERT_EQ(quote.support.size(), 1u);
  EXPECT_EQ(quote.support[0], "V");
}

}  // namespace
}  // namespace qp
