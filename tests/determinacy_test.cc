// Determinacy tests: instance-based determinacy (Definition 2.2) via both
// the generic world-enumeration checker and the PTIME Dmin/Dmax check of
// Theorem 3.3, the determinacy-relation axioms (Definition 2.5), Lemma 3.1,
// and the paper's Examples 2.4 and 2.18.

#include <string>

#include "gtest/gtest.h"
#include "qp/determinacy/selection_determinacy.h"
#include "qp/determinacy/world_enumeration.h"
#include "qp/query/parser.h"
#include "qp/util/random.h"
#include "test_fixtures.h"

namespace qp {
namespace {

// ---- Example 2.4 ----------------------------------------------------------
// Q1(x,y,z) = R(x,y),S(y,z); Q2(y,z,u) = S(y,z),T(z,u);
// Q(x,y,z,u) = R(x,y),S(y,z),T(z,u).
// (Q1,Q2) ։ Q always; Q1 alone does not determine Q in general, but does
// on an instance where Q1(D) = ∅.
struct Example24 {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  std::unique_ptr<Instance> db;
  ConjunctiveQuery q1, q2, q;

  explicit Example24(bool q1_empty) {
    auto r = catalog->AddRelation("R", {"X", "Y"});
    auto s = catalog->AddRelation("S", {"X", "Y"});
    auto t = catalog->AddRelation("T", {"X", "Y"});
    EXPECT_TRUE(r.ok() && s.ok() && t.ok());
    std::vector<Value> col = {Value::Str("0"), Value::Str("1")};
    for (RelationId rel : {*r, *s, *t}) {
      EXPECT_TRUE(catalog->SetColumn(AttrRef{rel, 0}, col).ok());
      EXPECT_TRUE(catalog->SetColumn(AttrRef{rel, 1}, col).ok());
    }
    db = std::make_unique<Instance>(catalog.get());
    EXPECT_TRUE(db->Insert("R", {Value::Str("0"), Value::Str("1")}).ok());
    if (!q1_empty) {
      EXPECT_TRUE(db->Insert("S", {Value::Str("1"), Value::Str("0")}).ok());
    }
    EXPECT_TRUE(db->Insert("T", {Value::Str("0"), Value::Str("0")}).ok());
    q1 = *ParseQuery(catalog->schema(), "Q1(x,y,z) :- R(x,y), S(y,z)");
    q2 = *ParseQuery(catalog->schema(), "Q2(y,z,u) :- S(y,z), T(z,u)");
    q = *ParseQuery(catalog->schema(), "Q(x,y,z,u) :- R(x,y), S(y,z), T(z,u)");
  }
};

TEST(Example24, BothViewsDetermineTheJoin) {
  for (bool q1_empty : {false, true}) {
    Example24 e(q1_empty);
    QP_ASSERT_OK_AND_ASSIGN(
        bool determines,
        EnumerationDetermines(*e.db,
                              QueryBundle::OfAll({e.q1, e.q2}),
                              QueryBundle::Of(e.q)));
    EXPECT_TRUE(determines) << "q1_empty=" << q1_empty;
  }
}

TEST(Example24, Q1AloneDoesNotDetermineInGeneral) {
  Example24 e(/*q1_empty=*/false);
  QP_ASSERT_OK_AND_ASSIGN(
      bool determines,
      EnumerationDetermines(*e.db, QueryBundle::Of(e.q1),
                            QueryBundle::Of(e.q)));
  EXPECT_FALSE(determines);
}

TEST(Example24, Q1DeterminesWhenItsAnswerIsEmpty) {
  Example24 e(/*q1_empty=*/true);
  QP_ASSERT_OK_AND_ASSIGN(
      bool determines,
      EnumerationDetermines(*e.db, QueryBundle::Of(e.q1),
                            QueryBundle::Of(e.q)));
  EXPECT_TRUE(determines);
}

// ---- Example 2.18 ----------------------------------------------------------
// V(x,y) = R(x),S(x,y); Q() = ∃x R(x). On D1 = ∅, V does not determine Q;
// on D2 = {R(a), S(a,b)} it does. The restricted relation ։* rejects both.
struct Example218 {
  std::unique_ptr<Catalog> catalog = std::make_unique<Catalog>();
  std::unique_ptr<Instance> db;
  ConjunctiveQuery v, q;

  explicit Example218(bool populated) {
    auto r = catalog->AddRelation("R", {"X"});
    auto s = catalog->AddRelation("S", {"X", "Y"});
    EXPECT_TRUE(r.ok() && s.ok());
    std::vector<Value> col_a = {Value::Str("a")};
    std::vector<Value> col_b = {Value::Str("b")};
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*r, 0}, col_a).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*s, 0}, col_a).ok());
    EXPECT_TRUE(catalog->SetColumn(AttrRef{*s, 1}, col_b).ok());
    db = std::make_unique<Instance>(catalog.get());
    if (populated) {
      EXPECT_TRUE(db->Insert("R", {Value::Str("a")}).ok());
      EXPECT_TRUE(db->Insert("S", {Value::Str("a"), Value::Str("b")}).ok());
    }
    v = *ParseQuery(catalog->schema(), "V(x,y) :- R(x), S(x,y)");
    q = *ParseQuery(catalog->schema(), "Q() :- R(x)");
  }
};

TEST(Example218, DeterminacyIsNotMonotoneUnderInsertions) {
  Example218 d1(/*populated=*/false);
  QP_ASSERT_OK_AND_ASSIGN(
      bool determines1,
      EnumerationDetermines(*d1.db, QueryBundle::Of(d1.v),
                            QueryBundle::Of(d1.q)));
  EXPECT_FALSE(determines1) << "D1 ⊢ V ։ Q should fail";

  Example218 d2(/*populated=*/true);
  QP_ASSERT_OK_AND_ASSIGN(
      bool determines2,
      EnumerationDetermines(*d2.db, QueryBundle::Of(d2.v),
                            QueryBundle::Of(d2.q)));
  EXPECT_TRUE(determines2) << "D2 ⊢ V ։ Q should hold";
}

TEST(Example218, RestrictedRelationRejectsBothStates) {
  // Prop 2.24: ։* is monotone, so it must reject on D2 as well (since it
  // rejects on the sub-instance D1).
  for (bool populated : {false, true}) {
    Example218 e(populated);
    QP_ASSERT_OK_AND_ASSIGN(
        bool determines,
        RestrictedEnumerationDetermines(*e.db, QueryBundle::Of(e.v),
                                        QueryBundle::Of(e.q)));
    EXPECT_FALSE(determines) << "populated=" << populated;
  }
}

TEST(Example218, RestrictedImpliesAtMostInstanceBased) {
  // Prop 2.24(c): ։* ⊆ ։, i.e. whenever ։* holds so does ։ — checked on
  // the identity views, which determine everything.
  Example218 e(/*populated=*/true);
  QueryBundle id = IdentityBundle(e.catalog->schema());
  QP_ASSERT_OK_AND_ASSIGN(
      bool restricted,
      RestrictedEnumerationDetermines(*e.db, id, QueryBundle::Of(e.q)));
  QP_ASSERT_OK_AND_ASSIGN(
      bool instance,
      EnumerationDetermines(*e.db, id, QueryBundle::Of(e.q)));
  EXPECT_TRUE(restricted);
  EXPECT_TRUE(instance);
}

// ---- Theorem 3.3 vs world enumeration --------------------------------------
// On random small instances, the PTIME Dmin/Dmax check must agree with the
// generic definition for selection views.
class SelectionDeterminacyAgreement : public testing::TestWithParam<int> {};

TEST_P(SelectionDeterminacyAgreement, MatchesWorldEnumeration) {
  Rng rng(GetParam());
  // Schema: R(X), S(X,Y) with 2-value columns; query: full join.
  Catalog catalog;
  RelationId r = *catalog.AddRelation("R", {"X"});
  RelationId s = *catalog.AddRelation("S", {"X", "Y"});
  std::vector<Value> col = {Value::Str("0"), Value::Str("1")};
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{r, 0}, col));
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{s, 0}, col));
  QP_ASSERT_OK(catalog.SetColumn(AttrRef{s, 1}, col));
  Instance db(&catalog);
  for (const Value& a : col) {
    if (rng.NextBool(0.5)) QP_ASSERT_OK(db.Insert("R", {a}).status());
    for (const Value& b : col) {
      if (rng.NextBool(0.5)) QP_ASSERT_OK(db.Insert("S", {a, b}).status());
    }
  }
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(catalog.schema(), "Q(x,y) :- R(x), S(x,y)"));

  // Random subset of the 6 possible selection views.
  std::vector<SelectionView> all_views;
  for (ValueId v : catalog.Column(AttrRef{r, 0})) {
    all_views.push_back(SelectionView{AttrRef{r, 0}, v});
  }
  for (int p = 0; p < 2; ++p) {
    for (ValueId v : catalog.Column(AttrRef{s, p})) {
      all_views.push_back(SelectionView{AttrRef{s, p}, v});
    }
  }
  for (uint64_t mask = 0; mask < (1u << all_views.size()); ++mask) {
    std::vector<SelectionView> subset;
    QueryBundle view_bundle;
    for (size_t i = 0; i < all_views.size(); ++i) {
      if (!(mask & (1u << i))) continue;
      subset.push_back(all_views[i]);
      // Express the selection view as a query for the generic checker.
      const SelectionView& view = all_views[i];
      ConjunctiveQuery vq("V" + std::to_string(i));
      std::vector<Term> args;
      int arity = catalog.schema().arity(view.attr.rel);
      for (int p = 0; p < arity; ++p) {
        if (p == view.attr.pos) {
          args.push_back(Term::MakeConst(catalog.dict().Get(view.value)));
        } else {
          VarId var = vq.AddVar("v" + std::to_string(p));
          vq.AddHeadVar(var);
          args.push_back(Term::MakeVar(var));
        }
      }
      // Selection views return the whole tuple: add the selected position
      // as a constant column is enough information-wise, since the
      // constant is fixed by the view definition.
      vq.AddAtom(view.attr.rel, std::move(args));
      view_bundle.queries.push_back(UnionQuery{vq.name(), {vq}});
    }
    QP_ASSERT_OK_AND_ASSIGN(bool fast,
                            SelectionViewsDetermine(db, subset, q));
    QP_ASSERT_OK_AND_ASSIGN(
        bool generic,
        EnumerationDetermines(db, view_bundle, QueryBundle::Of(q)));
    EXPECT_EQ(fast, generic) << "mask=" << mask;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SelectionDeterminacyAgreement,
                         testing::Range(1, 9));

// Ternary relation: the Dmin/Dmax construction over higher-arity column
// products, validated against world enumeration.
TEST(SelectionDeterminacyTernary, MatchesWorldEnumeration) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(seed);
    Catalog catalog;
    RelationId r = *catalog.AddRelation("R", {"X", "Y", "Z"});
    RelationId s = *catalog.AddRelation("S", {"X"});
    std::vector<Value> col = {Value::Str("0"), Value::Str("1")};
    for (int p = 0; p < 3; ++p) {
      QP_ASSERT_OK(catalog.SetColumn(AttrRef{r, p}, col));
    }
    QP_ASSERT_OK(catalog.SetColumn(AttrRef{s, 0}, col));
    Instance db(&catalog);
    for (const Value& a : col) {
      if (rng.NextBool(0.5)) QP_ASSERT_OK(db.Insert("S", {a}).status());
      for (const Value& b : col) {
        for (const Value& c : col) {
          if (rng.NextBool(0.4)) {
            QP_ASSERT_OK(db.Insert("R", {a, b, c}).status());
          }
        }
      }
    }
    QP_ASSERT_OK_AND_ASSIGN(
        ConjunctiveQuery q,
        ParseQuery(catalog.schema(), "Q(x,y,z) :- R(x,y,z), S(x)"));

    // A handful of random view subsets.
    std::vector<SelectionView> all_views;
    for (int p = 0; p < 3; ++p) {
      for (ValueId v : catalog.Column(AttrRef{r, p})) {
        all_views.push_back(SelectionView{AttrRef{r, p}, v});
      }
    }
    for (ValueId v : catalog.Column(AttrRef{s, 0})) {
      all_views.push_back(SelectionView{AttrRef{s, 0}, v});
    }
    for (int trial = 0; trial < 12; ++trial) {
      std::vector<SelectionView> subset;
      QueryBundle view_bundle;
      for (size_t i = 0; i < all_views.size(); ++i) {
        if (!rng.NextBool(0.5)) continue;
        const SelectionView& view = all_views[i];
        subset.push_back(view);
        ConjunctiveQuery vq("V" + std::to_string(i));
        std::vector<Term> args;
        int arity = catalog.schema().arity(view.attr.rel);
        for (int p = 0; p < arity; ++p) {
          if (p == view.attr.pos) {
            args.push_back(
                Term::MakeConst(catalog.dict().Get(view.value)));
          } else {
            VarId var = vq.AddVar("v" + std::to_string(p));
            vq.AddHeadVar(var);
            args.push_back(Term::MakeVar(var));
          }
        }
        vq.AddAtom(view.attr.rel, std::move(args));
        view_bundle.queries.push_back(UnionQuery{vq.name(), {vq}});
      }
      QP_ASSERT_OK_AND_ASSIGN(bool fast,
                              SelectionViewsDetermine(db, subset, q));
      QP_ASSERT_OK_AND_ASSIGN(
          bool generic,
          EnumerationDetermines(db, view_bundle, QueryBundle::Of(q)));
      EXPECT_EQ(fast, generic) << "seed=" << seed << " trial=" << trial;
    }
  }
}

// ---- Lemma 3.1 --------------------------------------------------------------
TEST(Lemma31, SelectionDeterminedIffTrivialOrFullCover) {
  Example38 e = Example38::Make();
  RelationId s = *e.catalog->schema().FindRelation("S");
  ValueId a1 = *e.catalog->dict().Find(Value::Str("a1"));

  SelectionView target{AttrRef{s, 0}, a1};
  // Trivial: the view itself.
  EXPECT_TRUE(
      SelectionViewsDetermineSelection(*e.catalog, {target}, target));
  // Full cover of S.Y determines every selection on S.
  std::vector<SelectionView> cover_y;
  for (ValueId v : e.catalog->Column(AttrRef{s, 1})) {
    cover_y.push_back(SelectionView{AttrRef{s, 1}, v});
  }
  EXPECT_TRUE(
      SelectionViewsDetermineSelection(*e.catalog, cover_y, target));
  // A partial cover does not.
  cover_y.pop_back();
  EXPECT_FALSE(
      SelectionViewsDetermineSelection(*e.catalog, cover_y, target));
  // Views on another relation do not.
  RelationId r = *e.catalog->schema().FindRelation("R");
  std::vector<SelectionView> cover_r;
  for (ValueId v : e.catalog->Column(AttrRef{r, 0})) {
    cover_r.push_back(SelectionView{AttrRef{r, 0}, v});
  }
  EXPECT_FALSE(
      SelectionViewsDetermineSelection(*e.catalog, cover_r, target));
}

// ---- Determinacy axioms (Definition 2.5) ------------------------------------
TEST(DeterminacyAxioms, HoldOnRandomInstances) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Example24 e(seed % 2 == 0);
    QueryBundle v1 = QueryBundle::Of(e.q1);
    QueryBundle v2 = QueryBundle::Of(e.q2);
    QueryBundle both = QueryBundle::Union(v1, v2);

    // Reflexivity: D ⊢ V1,V2 ։ V1.
    QP_ASSERT_OK_AND_ASSIGN(bool reflexive,
                            EnumerationDetermines(*e.db, both, v1));
    EXPECT_TRUE(reflexive);

    // Boundedness: D ⊢ ID ։ V for every bundle V.
    QueryBundle id = IdentityBundle(e.catalog->schema());
    QP_ASSERT_OK_AND_ASSIGN(bool bounded,
                            EnumerationDetermines(*e.db, id, both));
    EXPECT_TRUE(bounded);

    // Transitivity on a chain that holds: (Q1,Q2) ։ Q and ID ։ (Q1,Q2)
    // imply ID ։ Q.
    QP_ASSERT_OK_AND_ASSIGN(
        bool first, EnumerationDetermines(*e.db, id, both));
    QP_ASSERT_OK_AND_ASSIGN(
        bool second,
        EnumerationDetermines(*e.db, both, QueryBundle::Of(e.q)));
    if (first && second) {
      QP_ASSERT_OK_AND_ASSIGN(
          bool third,
          EnumerationDetermines(*e.db, id, QueryBundle::Of(e.q)));
      EXPECT_TRUE(third);
    }

    // Augmentation: V1 ։ V1 implies V1,V2 ։ V1,V2... checked in the
    // upward-closure form: if V1 ։ Q then V1,V2 ։ Q.
    QP_ASSERT_OK_AND_ASSIGN(
        bool v1_q, EnumerationDetermines(*e.db, v1, QueryBundle::Of(e.q)));
    if (v1_q) {
      QP_ASSERT_OK_AND_ASSIGN(
          bool both_q,
          EnumerationDetermines(*e.db, both, QueryBundle::Of(e.q)));
      EXPECT_TRUE(both_q);
    }
  }
}

}  // namespace
}  // namespace qp
