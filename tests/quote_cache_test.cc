// Tests for the versioned quote cache and the canonical query fingerprint
// that keys it: fingerprint invariance under alpha-renaming and atom
// permutation, inequality for structurally distinct queries, and
// generation-based invalidation after DynamicPricer::Insert.

#include "qp/pricing/quote_cache.h"

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/dynamic_pricer.h"
#include "test_fixtures.h"

namespace qp {
namespace {

ConjunctiveQuery Parse(const Schema& schema, std::string_view text) {
  auto q = ParseQuery(schema, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(Fingerprint, InvariantUnderAlphaRenaming) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Other(u,v) :- R(u), S(u,v), T(v)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, InvariantUnderAtomPermutation) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Q(x,y) :- T(y), S(x,y), R(x)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, InvariantUnderRenamingPlusPermutation) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Z(a,b) :- T(b), R(a), S(a,b)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, DistinctQueriesDiffer) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery chain = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  // Fewer atoms.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x,y) :- R(x), S(x,y)").Fingerprint());
  // Different head order is a different query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(y,x) :- R(x), S(x,y), T(y)").Fingerprint());
  // Projection vs full query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x) :- R(x), S(x,y), T(y)").Fingerprint());
  // Boolean version.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q() :- R(x), S(x,y), T(y)").Fingerprint());
  // An added interpreted predicate changes the query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x,y) :- R(x), S(x,y), T(y), x = 'a1'").Fingerprint());
  // Same shape over different relations.
  EXPECT_NE(Parse(s, "Q(x) :- R(x)").Fingerprint(),
            Parse(s, "Q(y) :- T(y)").Fingerprint());
  // A constant in an argument position vs a variable.
  EXPECT_NE(Parse(s, "Q(y) :- S('a1',y)").Fingerprint(),
            Parse(s, "Q(y) :- S(x,y)").Fingerprint());
}

TEST(Fingerprint, PredicateOrderDoesNotMatter) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 =
      Parse(s, "Q(x,y) :- S(x,y), x != 'a3', y != 'b3'");
  ConjunctiveQuery q2 =
      Parse(s, "Q(u,v) :- S(u,v), v != 'b3', u != 'a3'");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(QuoteCache, HitUntilDependencyMutates) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only =
      Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);

  auto hit = cache.Lookup(r_only.Fingerprint(), *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, quote.solution.price);

  // Mutating a relation the query does not read keeps the entry valid.
  QP_ASSERT_OK_AND_ASSIGN(bool t_inserted,
                          e.db->Insert("T", {Value::Str("b2")}));
  EXPECT_TRUE(t_inserted);
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  // Mutating R invalidates and evicts.
  QP_ASSERT_OK_AND_ASSIGN(bool r_inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(r_inserted);
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  QuoteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  // A stale entry counts as an invalidation, not a miss.
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

#if QP_METRICS_ENABLED
TEST(QuoteCache, LookupAndStoreFeedGlobalMetricCounters) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only = Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  MetricsRegistry::Global().Reset();
  QuoteCache cache;
  // Miss, store, two hits, then an invalidation via a mutated dependency.
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  QP_ASSERT_OK_AND_ASSIGN(bool inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("qp.cache.misses"), 1u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.hits"), 2u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.insertions"), 1u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.invalidations"), 1u);
  EXPECT_EQ(snapshot.GaugeValue("qp.cache.size"), 0);
}
#endif  // QP_METRICS_ENABLED

TEST(QuoteCache, ServesAlphaRenamedQuery) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Z(a,b) :- T(b), R(a), S(a,b)");

  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q1));
  cache.Store(q1.Fingerprint(), q1, *e.db, quote);
  auto hit = cache.Lookup(q2.Fingerprint(), *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, 6);  // the Example 3.8 price
}

TEST(QuoteCache, HotQueriesRankByHitCount) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery r_only = Parse(s, "Qr(x) :- R(x)");
  ConjunctiveQuery t_only = Parse(s, "Qt(y) :- T(y)");
  ConjunctiveQuery chain = Parse(s, "Qc(x,y) :- R(x), S(x,y), T(y)");

  QuoteCache cache;
  for (const ConjunctiveQuery* q : {&r_only, &t_only, &chain}) {
    QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(*q));
    cache.Store(q->Fingerprint(), *q, *e.db, quote);
  }
  // Each Store admits its fingerprint at 1 hit; 3 extra lookups for the
  // chain and 1 for T-only leave the counts at 4 / 2 / 1.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(cache.Lookup(chain.Fingerprint(), *e.db).has_value());
  }
  EXPECT_TRUE(cache.Lookup(t_only.Fingerprint(), *e.db).has_value());

  std::vector<HotQuery> top = cache.HotQueries(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].fingerprint, chain.Fingerprint());
  EXPECT_EQ(top[0].hits, 4u);
  EXPECT_EQ(top[1].fingerprint, t_only.Fingerprint());
  // The returned query must be priceable as-is (the warmer depends on it).
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote reprice, engine.Price(top[0].query));
  EXPECT_GT(reprice.solution.price, 0);
  // Asking for more than tracked returns everything, hottest first.
  EXPECT_EQ(cache.HotQueries(10).size(), 3u);
}

TEST(QuoteCache, WarmedStoresAndHitsAreCountedSeparately) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only = Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote, /*warmed=*/true);
  auto hit = cache.Lookup(r_only.Fingerprint(), *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, quote.solution.price);

  QuoteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.warmed_entries, 1u);
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.hits, 1u);  // a warm hit is still a hit

  // A buyer-path Store overwrites the entry; later hits are plain hits.
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  stats = cache.stats();
  EXPECT_EQ(stats.warm_hits, 1u);
  EXPECT_EQ(stats.hits, 2u);
}

TEST(QuoteCache, HasFreshIsAStatFreePeek) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only = Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  QuoteCache cache;
  EXPECT_FALSE(cache.HasFresh(r_only.Fingerprint(), *e.db));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);
  EXPECT_TRUE(cache.HasFresh(r_only.Fingerprint(), *e.db));

  // Mutate R: the entry is stale. HasFresh says so but must not evict —
  // Lookup still sees the entry and records the invalidation itself.
  QP_ASSERT_OK_AND_ASSIGN(bool inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(cache.HasFresh(r_only.Fingerprint(), *e.db));
  EXPECT_EQ(cache.size(), 1u);

  QuoteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(stats.invalidations, 0u);
}

TEST(QuoteCache, StaleWarmStoreIsDroppedNotServed) {
  // The publish-race guard: a warmer that priced against generation g
  // must not clobber an entry already computed against g+1. A second
  // Example38 instance has the same schema with all generations at 0, so
  // it stands in for the warmer's old snapshot view.
  Example38 e = Example38::Make();
  Example38 old_snapshot = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only = Parse(e.catalog->schema(), "Qr(x) :- R(x)");
  const std::string fp = r_only.Fingerprint();

  // Advance R past the old snapshot's generation and cache the fresh quote.
  QP_ASSERT_OK_AND_ASSIGN(bool inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(inserted);
  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote fresh_quote, engine.Price(r_only));
  cache.Store(fp, r_only, *e.db, fresh_quote);

  // The late warmer stores a quote computed against the older generation:
  // dropped, counted, and the fresh entry keeps serving.
  PricingEngine old_engine(old_snapshot.db.get(), &old_snapshot.prices);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote stale_quote, old_engine.Price(r_only));
  cache.Store(fp, r_only, *old_snapshot.db, stale_quote, /*warmed=*/true);
  EXPECT_EQ(cache.stats().stale_store_drops, 1u);
  EXPECT_EQ(cache.stats().warmed_entries, 0u);
  auto hit = cache.Lookup(fp, *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, fresh_quote.solution.price);
  EXPECT_EQ(cache.stats().warm_hits, 0u);
}

TEST(DynamicPricer, InsertInvalidatesOnlyTouchedQueries) {
  Example38 e = Example38::Make();
  DynamicPricer pricer(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery chain = Parse(s, "Qc(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery r_only = Parse(s, "Qr(x) :- R(x)");

  QP_ASSERT_OK_AND_ASSIGN(PriceQuote chain_quote,
                          pricer.Watch("chain", chain));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote r_quote, pricer.Watch("r", r_only));
  (void)chain_quote;

  QuoteCacheStats before = pricer.cache().stats();

  // Insert into T: the chain query reads T, the R-only query does not.
  QP_ASSERT_OK_AND_ASSIGN(
      auto changes, pricer.Insert("T", {{Value::Str("b2")}}));
  ASSERT_EQ(changes.size(), 2u);
  // Changes are keyed by watch name (map order: "chain" < "r").
  EXPECT_EQ(changes[0].query, "chain");
  EXPECT_FALSE(changes[0].from_cache);
  EXPECT_EQ(changes[1].query, "r");
  EXPECT_TRUE(changes[1].from_cache);
  EXPECT_EQ(changes[1].before, changes[1].after);
  EXPECT_EQ(changes[1].after, r_quote.solution.price);

  // The unaffected query was served with zero solver work: exactly one
  // cache hit and one invalidation, no extra solve recorded.
  QuoteCacheStats after = pricer.cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.invalidations, before.invalidations + 1);

  // The repriced chain quote matches a from-scratch engine price.
  PricingEngine fresh(e.db.get(), &e.prices);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote expected, fresh.Price(chain));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote current, pricer.CurrentQuote("chain"));
  EXPECT_EQ(current.solution.price, expected.solution.price);
  EXPECT_EQ(current.solution.support, expected.solution.support);
}

TEST(DynamicPricer, SecondInsertIntoUntouchedRelationIsAllHits) {
  Example38 e = Example38::Make();
  DynamicPricer pricer(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote initial,
                          pricer.Watch("r", Parse(s, "Qr(x) :- R(x)")));
  (void)initial;

  QP_ASSERT_OK_AND_ASSIGN(auto first,
                          pricer.Insert("T", {{Value::Str("b2")}}));
  QP_ASSERT_OK_AND_ASSIGN(auto second,
                          pricer.Insert("S", {{Value::Str("a3"),
                                               Value::Str("b3")}}));
  EXPECT_TRUE(first[0].from_cache);
  EXPECT_TRUE(second[0].from_cache);
  QuoteCacheStats stats = pricer.cache().stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.invalidations, 0u);
}

}  // namespace
}  // namespace qp
