// Tests for the versioned quote cache and the canonical query fingerprint
// that keys it: fingerprint invariance under alpha-renaming and atom
// permutation, inequality for structurally distinct queries, and
// generation-based invalidation after DynamicPricer::Insert.

#include "qp/pricing/quote_cache.h"

#include "gtest/gtest.h"
#include "qp/obs/metrics.h"
#include "qp/pricing/dynamic_pricer.h"
#include "test_fixtures.h"

namespace qp {
namespace {

ConjunctiveQuery Parse(const Schema& schema, std::string_view text) {
  auto q = ParseQuery(schema, text);
  EXPECT_TRUE(q.ok()) << q.status().ToString();
  return *q;
}

TEST(Fingerprint, InvariantUnderAlphaRenaming) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Other(u,v) :- R(u), S(u,v), T(v)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, InvariantUnderAtomPermutation) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Q(x,y) :- T(y), S(x,y), R(x)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, InvariantUnderRenamingPlusPermutation) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Z(a,b) :- T(b), R(a), S(a,b)");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(Fingerprint, DistinctQueriesDiffer) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery chain = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  // Fewer atoms.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x,y) :- R(x), S(x,y)").Fingerprint());
  // Different head order is a different query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(y,x) :- R(x), S(x,y), T(y)").Fingerprint());
  // Projection vs full query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x) :- R(x), S(x,y), T(y)").Fingerprint());
  // Boolean version.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q() :- R(x), S(x,y), T(y)").Fingerprint());
  // An added interpreted predicate changes the query.
  EXPECT_NE(chain.Fingerprint(),
            Parse(s, "Q(x,y) :- R(x), S(x,y), T(y), x = 'a1'").Fingerprint());
  // Same shape over different relations.
  EXPECT_NE(Parse(s, "Q(x) :- R(x)").Fingerprint(),
            Parse(s, "Q(y) :- T(y)").Fingerprint());
  // A constant in an argument position vs a variable.
  EXPECT_NE(Parse(s, "Q(y) :- S('a1',y)").Fingerprint(),
            Parse(s, "Q(y) :- S(x,y)").Fingerprint());
}

TEST(Fingerprint, PredicateOrderDoesNotMatter) {
  Example38 e = Example38::Make();
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 =
      Parse(s, "Q(x,y) :- S(x,y), x != 'a3', y != 'b3'");
  ConjunctiveQuery q2 =
      Parse(s, "Q(u,v) :- S(u,v), v != 'b3', u != 'a3'");
  EXPECT_EQ(q1.Fingerprint(), q2.Fingerprint());
}

TEST(QuoteCache, HitUntilDependencyMutates) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only =
      Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);

  auto hit = cache.Lookup(r_only.Fingerprint(), *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, quote.solution.price);

  // Mutating a relation the query does not read keeps the entry valid.
  QP_ASSERT_OK_AND_ASSIGN(bool t_inserted,
                          e.db->Insert("T", {Value::Str("b2")}));
  EXPECT_TRUE(t_inserted);
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  // Mutating R invalidates and evicts.
  QP_ASSERT_OK_AND_ASSIGN(bool r_inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(r_inserted);
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  QuoteCacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  // A stale entry counts as an invalidation, not a miss.
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.misses, 0u);
  EXPECT_EQ(cache.size(), 0u);
}

#if QP_METRICS_ENABLED
TEST(QuoteCache, LookupAndStoreFeedGlobalMetricCounters) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  ConjunctiveQuery r_only = Parse(e.catalog->schema(), "Qr(x) :- R(x)");

  MetricsRegistry::Global().Reset();
  QuoteCache cache;
  // Miss, store, two hits, then an invalidation via a mutated dependency.
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(r_only));
  cache.Store(r_only.Fingerprint(), r_only, *e.db, quote);
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  EXPECT_TRUE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());
  QP_ASSERT_OK_AND_ASSIGN(bool inserted,
                          e.db->Insert("R", {Value::Str("a3")}));
  EXPECT_TRUE(inserted);
  EXPECT_FALSE(cache.Lookup(r_only.Fingerprint(), *e.db).has_value());

  MetricsSnapshot snapshot = MetricsRegistry::Global().Snapshot();
  EXPECT_EQ(snapshot.CounterValue("qp.cache.misses"), 1u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.hits"), 2u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.insertions"), 1u);
  EXPECT_EQ(snapshot.CounterValue("qp.cache.invalidations"), 1u);
  EXPECT_EQ(snapshot.GaugeValue("qp.cache.size"), 0);
}
#endif  // QP_METRICS_ENABLED

TEST(QuoteCache, ServesAlphaRenamedQuery) {
  Example38 e = Example38::Make();
  PricingEngine engine(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery q1 = Parse(s, "Q(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery q2 = Parse(s, "Z(a,b) :- T(b), R(a), S(a,b)");

  QuoteCache cache;
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote, engine.Price(q1));
  cache.Store(q1.Fingerprint(), q1, *e.db, quote);
  auto hit = cache.Lookup(q2.Fingerprint(), *e.db);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->solution.price, 6);  // the Example 3.8 price
}

TEST(DynamicPricer, InsertInvalidatesOnlyTouchedQueries) {
  Example38 e = Example38::Make();
  DynamicPricer pricer(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  ConjunctiveQuery chain = Parse(s, "Qc(x,y) :- R(x), S(x,y), T(y)");
  ConjunctiveQuery r_only = Parse(s, "Qr(x) :- R(x)");

  QP_ASSERT_OK_AND_ASSIGN(PriceQuote chain_quote,
                          pricer.Watch("chain", chain));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote r_quote, pricer.Watch("r", r_only));
  (void)chain_quote;

  QuoteCacheStats before = pricer.cache().stats();

  // Insert into T: the chain query reads T, the R-only query does not.
  QP_ASSERT_OK_AND_ASSIGN(
      auto changes, pricer.Insert("T", {{Value::Str("b2")}}));
  ASSERT_EQ(changes.size(), 2u);
  // Changes are keyed by watch name (map order: "chain" < "r").
  EXPECT_EQ(changes[0].query, "chain");
  EXPECT_FALSE(changes[0].from_cache);
  EXPECT_EQ(changes[1].query, "r");
  EXPECT_TRUE(changes[1].from_cache);
  EXPECT_EQ(changes[1].before, changes[1].after);
  EXPECT_EQ(changes[1].after, r_quote.solution.price);

  // The unaffected query was served with zero solver work: exactly one
  // cache hit and one invalidation, no extra solve recorded.
  QuoteCacheStats after = pricer.cache().stats();
  EXPECT_EQ(after.hits, before.hits + 1);
  EXPECT_EQ(after.invalidations, before.invalidations + 1);

  // The repriced chain quote matches a from-scratch engine price.
  PricingEngine fresh(e.db.get(), &e.prices);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote expected, fresh.Price(chain));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote current, pricer.CurrentQuote("chain"));
  EXPECT_EQ(current.solution.price, expected.solution.price);
  EXPECT_EQ(current.solution.support, expected.solution.support);
}

TEST(DynamicPricer, SecondInsertIntoUntouchedRelationIsAllHits) {
  Example38 e = Example38::Make();
  DynamicPricer pricer(e.db.get(), &e.prices);
  const Schema& s = e.catalog->schema();
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote initial,
                          pricer.Watch("r", Parse(s, "Qr(x) :- R(x)")));
  (void)initial;

  QP_ASSERT_OK_AND_ASSIGN(auto first,
                          pricer.Insert("T", {{Value::Str("b2")}}));
  QP_ASSERT_OK_AND_ASSIGN(auto second,
                          pricer.Insert("S", {{Value::Str("a3"),
                                               Value::Str("b3")}}));
  EXPECT_TRUE(first[0].from_cache);
  EXPECT_TRUE(second[0].from_cache);
  QuoteCacheStats stats = pricer.cache().stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.invalidations, 0u);
}

}  // namespace
}  // namespace qp
