// Unit tests for qp/util: Status/Result, strings, RNG, hashing, money.

#include <set>

#include "gtest/gtest.h"
#include "qp/pricing/money.h"
#include "qp/util/hash.h"
#include "qp/util/random.h"
#include "qp/util/result.h"
#include "qp/util/status.h"
#include "qp/util/strings.h"

namespace qp {
namespace {

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(Status, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kFailedPrecondition,
        StatusCode::kResourceExhausted, StatusCode::kUnimplemented,
        StatusCode::kInternal}) {
    EXPECT_FALSE(StatusCodeName(code).empty());
  }
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> Doubler(int x) {
  QP_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> ok = Doubler(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);

  Result<int> err = Doubler(-1);
  ASSERT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

TEST(Strings, JoinSplitTrim) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Trim("  x \t"), "x");
  EXPECT_EQ(Trim(""), "");
  std::vector<std::string> parts = SplitAndTrim(" a , b ,c ", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
  EXPECT_TRUE(StartsWith("sigma_R", "sigma"));
  EXPECT_FALSE(StartsWith("sig", "sigma"));
}

TEST(Rng, DeterministicAndInRange) {
  Rng a(123), b(123), c(124);
  EXPECT_EQ(a.Next(), b.Next());
  EXPECT_NE(a.Next(), c.Next());
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = a.NextBelow(7);
    EXPECT_LT(v, 7u);
    int64_t r = a.NextInRange(-3, 3);
    EXPECT_GE(r, -3);
    EXPECT_LE(r, 3);
    double d = a.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(9);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  rng.Shuffle(v);
  std::multiset<int> s(v.begin(), v.end());
  EXPECT_EQ(s, (std::multiset<int>{1, 2, 3, 4, 5, 6}));
}

TEST(Money, FormattingAndSaturation) {
  EXPECT_EQ(MoneyToString(Dollars(199)), "$199.00");
  EXPECT_EQ(MoneyToString(DollarsCents(3, 7)), "$3.07");
  EXPECT_EQ(MoneyToString(kInfiniteMoney), "unpriced");
  EXPECT_TRUE(IsInfinite(AddMoney(kInfiniteMoney, 1)));
  EXPECT_TRUE(IsInfinite(AddMoney(kInfiniteMoney, kInfiniteMoney)));
  EXPECT_EQ(AddMoney(2, 3), 5);
}

TEST(Hash, PackPairIsInjectiveOnSmallValues) {
  std::set<uint64_t> seen;
  for (uint32_t a = 0; a < 30; ++a) {
    for (uint32_t b = 0; b < 30; ++b) {
      EXPECT_TRUE(seen.insert(PackPair(a, b)).second);
    }
  }
}

}  // namespace
}  // namespace qp
