// Unit tests for the datalog-style query parser.

#include "gtest/gtest.h"
#include "qp/query/parser.h"
#include "test_fixtures.h"

namespace qp {
namespace {

Schema MakeSchema() {
  Schema schema;
  EXPECT_TRUE(schema.AddRelation("R", {"X"}).ok());
  EXPECT_TRUE(schema.AddRelation("S", {"X", "Y"}).ok());
  EXPECT_TRUE(schema.AddRelation("T", {"Y"}).ok());
  return schema;
}

TEST(Parser, ParsesChainQuery) {
  Schema schema = MakeSchema();
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(schema, "Q(x,y) :- R(x), S(x,y), T(y)"));
  EXPECT_EQ(q.name(), "Q");
  EXPECT_EQ(q.num_vars(), 2);
  EXPECT_EQ(q.head().size(), 2u);
  EXPECT_EQ(q.atoms().size(), 3u);
  EXPECT_TRUE(q.IsFull());
  EXPECT_FALSE(q.IsBoolean());
  EXPECT_FALSE(q.HasSelfJoin());
  EXPECT_EQ(q.ToString(schema), "Q(x,y) :- R(x), S(x,y), T(y)");
}

TEST(Parser, ParsesConstantsAndPredicates) {
  Schema schema = MakeSchema();
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(schema, "Q(y) :- S('wa', y), y != 'b', T(y)."));
  EXPECT_EQ(q.atoms().size(), 2u);
  EXPECT_FALSE(q.atoms()[0].args[0].is_var());
  EXPECT_EQ(q.atoms()[0].args[0].constant, Value::Str("wa"));
  ASSERT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.predicates()[0].op, CmpOp::kNe);
}

TEST(Parser, ParsesIntegerConstantsAndComparisons) {
  Schema schema;
  QP_ASSERT_OK(schema.AddRelation("N", {"A", "B"}).status());
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(schema, "Q(a,b) :- N(a,b), a > 10, b <= -2"));
  ASSERT_EQ(q.predicates().size(), 2u);
  EXPECT_EQ(q.predicates()[0].op, CmpOp::kGt);
  EXPECT_EQ(q.predicates()[0].rhs, Value::Int(10));
  EXPECT_EQ(q.predicates()[1].op, CmpOp::kLe);
  EXPECT_EQ(q.predicates()[1].rhs, Value::Int(-2));
}

TEST(Parser, ParsesBooleanQuery) {
  Schema schema = MakeSchema();
  QP_ASSERT_OK_AND_ASSIGN(ConjunctiveQuery q,
                          ParseQuery(schema, "B() :- R(x)"));
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_FALSE(q.IsFull() && !q.BodyVars().empty());
}

TEST(Parser, PredicateBeforeBindingAtomIsAllowed) {
  Schema schema = MakeSchema();
  QP_ASSERT_OK_AND_ASSIGN(ConjunctiveQuery q,
                          ParseQuery(schema, "Q(x) :- x = 'a', R(x)"));
  EXPECT_EQ(q.predicates().size(), 1u);
  EXPECT_EQ(q.atoms().size(), 1u);
}

TEST(Parser, Errors) {
  Schema schema = MakeSchema();
  // Unknown relation.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- Nope(x)").ok());
  // Arity mismatch.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- R(x,x)").ok());
  // Head variable not in body.
  EXPECT_FALSE(ParseQuery(schema, "Q(z) :- R(x)").ok());
  // Comparison variable not in any atom.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- R(x), z > 1").ok());
  // Missing body.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :-").ok());
  // No atoms at all.
  EXPECT_FALSE(ParseQuery(schema, "Q() :- x > 1").ok());
  // Trailing garbage.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- R(x) extra").ok());
  // Unterminated string.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- S('a, x)").ok());
  // Bad character.
  EXPECT_FALSE(ParseQuery(schema, "Q(x) :- R(x) % T(y)").ok());
}

TEST(Parser, SelfJoinDetected) {
  Schema schema = MakeSchema();
  QP_ASSERT_OK_AND_ASSIGN(
      ConjunctiveQuery q,
      ParseQuery(schema, "H3(x,y) :- R(x), S(x,y), R(y)"));
  EXPECT_TRUE(q.HasSelfJoin());
}

}  // namespace
}  // namespace qp
