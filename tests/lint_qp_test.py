#!/usr/bin/env python3
"""Golden self-tests for tools/lint_qp.py.

One positive (rule fires) and one negative (clean code passes) fixture per
rule, written to a temp tree and linted through the real CLI entry point —
the same code path CI runs. Keeping these green is what lets the lint job
gate on the linter itself.
"""

import os
import subprocess
import sys
import tempfile
import unittest

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
LINT = os.path.join(REPO, "tools", "lint_qp.py")


def run_lint(tree):
    """Writes `tree` ({relpath: contents}) under a tmpdir/src and lints it.

    Returns (exit_code, stdout). Fixtures live under a `src/` component so
    the header-guard rule computes guards exactly as it does in the repo.
    """
    with tempfile.TemporaryDirectory() as tmp:
        root = os.path.join(tmp, "src")
        for rel, contents in tree.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        proc = subprocess.run(
            [sys.executable, LINT, root],
            capture_output=True, text=True, check=False)
        return proc.returncode, proc.stdout


def guarded(rel, body):
    """Wraps a header body in the include guard lint_qp expects for `rel`."""
    guard = "QP_" + rel.replace("/", "_").replace(".", "_").upper() + "_"
    if guard.startswith("QP_QP_"):
        guard = guard[3:]
    return (f"#ifndef {guard}\n#define {guard}\n{body}\n"
            f"#endif  // {guard}\n")


class LintRuleTest(unittest.TestCase):
    def assert_fires(self, tree, rule, count=None):
        code, out = run_lint(tree)
        self.assertEqual(code, 1, f"expected findings, got none:\n{out}")
        self.assertIn(f"[{rule}]", out)
        if count is not None:
            self.assertEqual(out.count(f"[{rule}]"), count, out)

    def assert_clean(self, tree):
        code, out = run_lint(tree)
        self.assertEqual(code, 0, f"expected clean, got:\n{out}")

    # ---- no-assert ----

    def test_no_assert_fires(self):
        self.assert_fires(
            {"qp/util/a.cc": '#include <cassert>\nvoid F() { assert(1); }\n'},
            "no-assert", count=2)

    def test_no_assert_clean(self):
        self.assert_clean(
            {"qp/util/a.cc": 'void F() { QP_ASSERT(1, "ok"); }\n'})

    # ---- money-float ----

    def test_money_float_fires(self):
        self.assert_fires(
            {"qp/pricing/a.cc": "double Price() { return 1.5; }\n"},
            "money-float")

    def test_money_float_clean_outside_pricing(self):
        # float is legal outside pricing (e.g. metrics percentiles).
        self.assert_clean({"qp/obs/a.cc": "double P99() { return 0.0; }\n"})

    # ---- quote-cache-lock ----

    def test_quote_cache_lock_fires_on_multiline_signature(self):
        self.assert_fires(
            {"qp/pricing/quote_cache.cc":
             "namespace qp {\n"
             "int QuoteCache::Size(\n"
             "    int unused) const {\n"
             "  return entries_.size();\n"
             "}\n"
             "}  // namespace qp\n"},
            "quote-cache-lock")

    def test_quote_cache_lock_clean_with_mutex_lock(self):
        self.assert_clean(
            {"qp/pricing/quote_cache.cc":
             "namespace qp {\n"
             "int QuoteCache::Size() const {\n"
             "  MutexLock lock(&mu_);\n"
             "  return entries_.size();\n"
             "}\n"
             "}  // namespace qp\n"})

    # ---- unchecked-status ----

    def test_unchecked_status_fires(self):
        self.assert_fires(
            {"qp/relational/a.cc":
             "void F(Db& db) {\n"
             "  db.Insert(t);\n"
             "  catalog->SetColumn(rel, attr, vals);\n"
             "}\n"},
            "unchecked-status", count=2)

    def test_unchecked_status_fires_despite_consumer_tokens_in_args(self):
        # Regression: `<<` or `=` inside the ARGUMENT list must not mask a
        # dropped return (the old consumer scan searched the whole line).
        self.assert_fires(
            {"qp/relational/a.cc":
             "void F(Db& db) {\n"
             "  db.Insert(x << 2);\n"
             "  db.Set(key, val = fallback);\n"
             "}\n"},
            "unchecked-status", count=2)

    def test_unchecked_status_clean_when_consumed(self):
        self.assert_clean(
            {"qp/relational/a.cc":
             "Status F(Db& db) {\n"
             "  auto st = db.Insert(t);\n"
             "  QP_RETURN_IF_ERROR(db.Insert(t));\n"
             "  return db.Insert(t);\n"
             "}\n"})

    def test_unchecked_status_nolint(self):
        self.assert_clean(
            {"qp/relational/a.cc":
             "void F(Db& db) { db.Insert(t); }"
             "  // NOLINT(unchecked-status)\n"})

    # ---- header-guard ----

    def test_header_guard_fires(self):
        self.assert_fires(
            {"qp/util/a.h": "#ifndef WRONG_H\n#define WRONG_H\n#endif\n"},
            "header-guard")

    def test_header_guard_clean(self):
        self.assert_clean({"qp/util/a.h": guarded("qp/util/a.h", "")})

    # ---- flow-builder ----

    def test_flow_builder_fires(self):
        self.assert_fires(
            {"qp/pricing/a.cc": "void F() { FlowNetwork net; }\n"},
            "flow-builder")

    def test_flow_builder_clean_via_builder(self):
        self.assert_clean(
            {"qp/pricing/a.cc": "void F() { FlowGraphBuilder builder; }\n"})

    # ---- raw-mutex ----

    def test_raw_mutex_fires(self):
        self.assert_fires(
            {"qp/flow/a.cc":
             "#include <mutex>\n"
             "std::mutex mu;\n"
             "void F() { std::lock_guard<std::mutex> l(mu); }\n"},
            "raw-mutex", count=3)

    def test_raw_mutex_fires_on_condition_variable(self):
        self.assert_fires(
            {"qp/flow/a.cc": "#include <condition_variable>\n"},
            "raw-mutex")

    def test_raw_mutex_allowed_in_wrapper_header(self):
        self.assert_clean(
            {"qp/util/thread_annotations.h": guarded(
                "qp/util/thread_annotations.h",
                "#include <mutex>\nclass Mutex { std::mutex mu_; };")})

    def test_raw_mutex_clean_with_wrapper(self):
        self.assert_clean(
            {"qp/flow/a.cc":
             '#include "qp/util/thread_annotations.h"\n'
             "qp::Mutex mu;\n"
             "void F() { qp::MutexLock l(&mu); }\n"})

    # ---- guarded-by-coverage ----

    BAD_CLASS = (
        "class Registry {\n"
        " public:\n"
        "  void Touch();\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  int hits_ = 0;\n"  # <- unannotated, must fire
        "};\n")

    GOOD_CLASS = (
        "class Registry {\n"
        " public:\n"
        "  void Touch();\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  int hits_ QP_GUARDED_BY(mu_) = 0;\n"
        "  std::atomic<int> live_{0};\n"
        "  const int cap_ = 4;\n"
        "  CondVar ready_;\n"
        "};\n")

    def test_guarded_by_coverage_fires(self):
        self.assert_fires(
            {"qp/obs/a.h": guarded("qp/obs/a.h", self.BAD_CLASS)},
            "guarded-by-coverage", count=1)

    def test_guarded_by_coverage_clean(self):
        self.assert_clean(
            {"qp/obs/a.h": guarded("qp/obs/a.h", self.GOOD_CLASS)})

    def test_guarded_by_coverage_skips_mutexless_class(self):
        # No Mutex member -> no guarding obligation.
        self.assert_clean(
            {"qp/obs/a.h": guarded(
                "qp/obs/a.h", "class Plain {\n  int hits_ = 0;\n};\n")})

    def test_guarded_by_coverage_nolint_region(self):
        body = (
            "class Registry {\n"
            "  Mutex mu_;\n"
            "  // Set once in the constructor, before any thread exists.\n"
            "  // NOLINTBEGIN(guarded-by-coverage)\n"
            "  int boot_a_ = 0;\n"
            "  int boot_b_ = 0;\n"
            "  // NOLINTEND(guarded-by-coverage)\n"
            "  int hot_ QP_GUARDED_BY(mu_) = 0;\n"
            "};\n")
        self.assert_clean({"qp/obs/a.h": guarded("qp/obs/a.h", body)})

    def test_guarded_by_coverage_nolint_line(self):
        body = (
            "class Registry {\n"
            "  Mutex mu_;\n"
            "  int boot_;  // NOLINT(guarded-by-coverage) ctor-only\n"
            "};\n")
        self.assert_clean({"qp/obs/a.h": guarded("qp/obs/a.h", body)})

    def test_guarded_by_coverage_on_server_state(self):
        # The qpricerd serving state is the newest concurrent surface:
        # a SnapshotStore-shaped class (two mutexes, RCU head pointer)
        # must annotate the head; dropping the annotation fires.
        bad = (
            "class SnapshotStore {\n"
            "  Mutex write_mu_;\n"
            "  Mutex mu_;\n"
            "  std::shared_ptr<const CatalogSnapshot> head_;\n"
            "};\n")
        self.assert_fires(
            {"qp/server/store.h": guarded("qp/server/store.h", bad)},
            "guarded-by-coverage", count=1)
        good = (
            "class SnapshotStore {\n"
            "  Mutex write_mu_;\n"
            "  Mutex mu_;\n"
            "  std::shared_ptr<const CatalogSnapshot> head_"
            " QP_GUARDED_BY(mu_);\n"
            "};\n")
        self.assert_clean(
            {"qp/server/store.h": guarded("qp/server/store.h", good)})

    def test_guarded_by_coverage_skips_atomic_server_state(self):
        # PricingServer itself holds no Mutex: its cross-thread state is
        # atomics, which carry their own ordering and need no annotation.
        body = (
            "class PricingServer {\n"
            "  std::atomic<bool> stop_{false};\n"
            "  std::atomic<int> active_connections_{0};\n"
            "};\n")
        self.assert_clean(
            {"qp/server/server.h": guarded("qp/server/server.h", body)})

    # ---- the real tree stays clean ----

    def test_repo_src_is_clean(self):
        proc = subprocess.run(
            [sys.executable, LINT, os.path.join(REPO, "src")],
            capture_output=True, text=True, check=False)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)


if __name__ == "__main__":
    unittest.main()
