// Market-file serialization: parse, round-trip, and error reporting.

#include "gtest/gtest.h"
#include "qp/market/catalog_io.h"
#include "qp/market/marketplace.h"
#include "qp/workload/business.h"
#include "test_fixtures.h"

namespace qp {
namespace {

constexpr char kFig1[] = R"(
# the running example
relation R(X)
relation S(X, Y)
relation T(Y)
column R.X: 'a1', 'a2', 'a3', 'a4'
column S.X: 'a1', 'a2', 'a3', 'a4'
column S.Y: 'b1', 'b2', 'b3'
column T.Y: 'b1', 'b2', 'b3'
row R('a1')
row R('a2')
row S('a1', 'b1')
row S('a1', 'b2')
row S('a2', 'b2')
row S('a4', 'b1')
row T('b1')
row T('b3')
price R.X='a1': $1.00
price R.X='a2': $1.00
price R.X='a3': $1.00
price R.X='a4': $1.00
price S.X='a1': $1.00
price S.X='a2': $1.00
price S.X='a3': $1.00
price S.X='a4': $1.00
price S.Y='b1': $1.00
price S.Y='b2': $1.00
price S.Y='b3': $1.00
price T.Y='b1': $1.00
price T.Y='b2': $1.00
price T.Y='b3': $1.00
)";

TEST(CatalogIo, LoadsFig1AndPricesIt) {
  Seller seller("io");
  QP_ASSERT_OK(LoadSellerFromString(&seller, kFig1));
  EXPECT_EQ(seller.prices().size(), 14u);
  EXPECT_EQ(seller.db().TotalTuples(), 8u);
  Marketplace market(&seller);
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote quote,
                          market.Quote("Q(x,y) :- R(x), S(x,y), T(y)"));
  EXPECT_EQ(quote.solution.price, Dollars(6));
}

TEST(CatalogIo, RoundTripsThroughSaveAndLoad) {
  Seller original("io");
  BusinessMarketParams params;
  params.num_businesses = 12;
  params.business_price = Dollars(20);
  QP_ASSERT_OK(PopulateBusinessMarket(&original, params));

  std::string text = SaveSellerToString(original);
  Seller reloaded("io");  // same name: the save header embeds it
  QP_ASSERT_OK(LoadSellerFromString(&reloaded, text));
  EXPECT_EQ(reloaded.prices().size(), original.prices().size());
  EXPECT_EQ(reloaded.db().TotalTuples(), original.db().TotalTuples());

  // Prices must quote identically after the round trip.
  Marketplace m1(&original), m2(&reloaded);
  const char* query = "Q(b) :- Email(b), InState(b, 'WA')";
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote q1, m1.Quote(query));
  QP_ASSERT_OK_AND_ASSIGN(PriceQuote q2, m2.Quote(query));
  EXPECT_EQ(q1.solution.price, q2.solution.price);

  // And the save is stable (deterministic ordering).
  EXPECT_EQ(SaveSellerToString(reloaded), text);
}

TEST(CatalogIo, IntegerValues) {
  Seller seller("io");
  QP_ASSERT_OK(LoadSellerFromString(&seller, R"(
relation N(A)
column N.A: 1, 2, -3
row N(1)
price N.A=1: $0.50
price N.A=2: $2
price N.A=-3: $1.25
)"));
  EXPECT_EQ(seller.prices().size(), 3u);
  RelationId n = *seller.catalog().schema().FindRelation("N");
  ValueId two = *seller.catalog().dict().Find(Value::Int(2));
  EXPECT_EQ(seller.prices().Get(SelectionView{AttrRef{n, 0}, two}), 200);
}

TEST(CatalogIo, ErrorsCarryLineNumbers) {
  Seller s1("io");
  Status bad_directive = LoadSellerFromString(&s1, "relation R(X)\nnope");
  EXPECT_FALSE(bad_directive.ok());
  EXPECT_NE(bad_directive.message().find("line 2"), std::string::npos);

  Seller s2("io");
  Status bad_row = LoadSellerFromString(&s2, R"(
relation R(X)
column R.X: 'a'
row R('zz')
)");
  EXPECT_FALSE(bad_row.ok());

  Seller s3("io");
  Status bad_price = LoadSellerFromString(&s3, R"(
relation R(X)
column R.X: 'a'
price R.X='a': oops
)");
  EXPECT_FALSE(bad_price.ok());

  Seller s4("io");
  Status missing_rel = LoadSellerFromString(&s4, "column R.X: 'a'");
  EXPECT_FALSE(missing_rel.ok());
}

}  // namespace
}  // namespace qp
